// Package bench is the repository's benchmark harness: one benchmark per
// table and figure of the paper (regenerating the corresponding experiment
// and reporting its headline metric), the design-choice ablations called out
// in DESIGN.md §5, and micro-benchmarks of the hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks execute at ScaleFast sizing so the full suite
// completes in minutes; cmd/experiments -scale full runs the paper-sized
// variants.
package bench

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/traffic"
)

// Shared environments, built once.
var (
	envOnce sync.Once
	podEnv  *experiments.Env
	torEnv  *experiments.Env
	geantPS *te.PathSet
	geantD  []float64
)

func setup(b *testing.B) {
	b.Helper()
	envOnce.Do(func() {
		var err error
		podEnv, err = experiments.NewEnv(graph.TopoPoDDB, experiments.ScaleFast, experiments.EnvOptions{T: 140, Seed: 2})
		if err != nil {
			panic(err)
		}
		torEnv, err = experiments.NewEnv(graph.TopoToRDB, experiments.ScaleFast, experiments.EnvOptions{T: 140, Seed: 2})
		if err != nil {
			panic(err)
		}
		torEnv.UseGradSolver(300)
		geantPS, err = te.NewPathSet(graph.GEANT(), 3, nil)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(11))
		geantD = make([]float64, geantPS.Pairs.Count())
		for i := range geantD {
			geantD[i] = rng.Float64() * 2
		}
	})
}

// --- Figure/table regenerators -----------------------------------------

func BenchmarkFig1_HedgingTradeoff(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Hedging(podEnv, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakNoHedge/res.PeakHedge, "peak-ratio")
	}
}

func BenchmarkFig2_VarianceHeterogeneity(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res := experiments.VarianceHeterogeneity(torEnv)
		b.ReportMetric(res.Heterogeneity, "p90/p50")
	}
}

func BenchmarkFig4_CosineSimilarity(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res := experiments.CosineSimilarity([]*experiments.Env{podEnv, torEnv}, 12)
		if len(res.Entries) != 2 {
			b.Fatal("missing entries")
		}
	}
}

func BenchmarkFig5_TEQuality(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TEQuality(podEnv, experiments.QualityOptions{
			H: 6, Epochs: 6, MaxEval: 15, WithOblivious: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Scheme("FIGRET").AvgMLU, "figret-avg-nmlu")
		b.ReportMetric(res.Scheme("DOTE").AvgMLU, "dote-avg-nmlu")
	}
}

func BenchmarkFig5_TEQualityBursty(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TEQuality(torEnv, experiments.QualityOptions{
			H: 6, Epochs: 8, Gamma: 2, MaxEval: 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Scheme("FIGRET").SevereCongestion, "figret-severe")
		b.ReportMetric(res.Scheme("DOTE").SevereCongestion, "dote-severe")
	}
}

func BenchmarkFig6_RaeckePaths(b *testing.B) {
	env, err := experiments.NewEnv(graph.TopoPoDDB, experiments.ScaleFast, experiments.EnvOptions{
		T: 120, Seed: 2, Selector: baselines.RaeckeSelector(0)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TEQuality(env, experiments.QualityOptions{H: 6, Epochs: 4, MaxEval: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Scheme("FIGRET").AvgMLU, "figret-avg-nmlu")
	}
}

func BenchmarkFig7_Failures(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Failures(podEnv, experiments.FailureOptions{
			H: 6, Epochs: 4, MaxFail: 2, Trials: 2, SnapsPer: 3})
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Row(1); row != nil {
			if s := row.Scheme("FIGRET"); s != nil {
				b.ReportMetric(s.AvgMLU, "figret-avg-nmlu-1fail")
			}
		}
	}
}

func BenchmarkFig8_SensitivityScatter(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.SensitivityAnalysis(podEnv, 6, 8, 6, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FigretCorr, "figret-var-sens-corr")
	}
}

func BenchmarkFig19_PredictionMismatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PredictionMismatch()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MLUA-res.MLUB, "mlu-gap-equal-mse")
	}
}

func BenchmarkTable2_FigretCalc(b *testing.B) {
	setup(b)
	m := figret.New(geantPS, figret.Config{H: 6, Epochs: 1, Seed: 1})
	tr, err := traffic.WAN(23, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(tr); err != nil {
		b.Fatal(err)
	}
	w := tr.Window(tr.Len(), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_LPCalc(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.MLUMin(geantPS, geantD); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_DesTECalc(b *testing.B) {
	setup(b)
	caps := lp.SensitivityCaps(geantPS, lp.ConstantF(2.0/3.0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.MLUMinCapped(geantPS, geantD, caps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_GradSolverCalc(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		solver.MinimizeMLU(geantPS, geantD, solver.Options{Iters: 300})
	}
}

func BenchmarkTable2_ObliviousPrecomp(b *testing.B) {
	setup(b)
	dmax := baselines.PeakDemand(podEnv.Train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baselines.ObliviousConfig(podEnv.PS, dmax, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Perturbation(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Perturbation(podEnv, 6, 1, 4, []float64{0.5, 2}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgDecline[1], "avg-decline-pct-a2")
	}
}

func BenchmarkTable4_Drift(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Drift(podEnv, 6, 1, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgDecline[0], "seg1-decline-pct")
	}
}

func BenchmarkTable5_WorstCase(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Perturbation(podEnv, 6, 1, 4, []float64{2}, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgDecline[0], "avg-decline-pct-a2")
		b.ReportMetric(res.Spearman, "spearman")
	}
}

func BenchmarkAppC_HeuristicF(b *testing.B) {
	setup(b)
	for _, kind := range []string{"linear", "piecewise"} {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.HeuristicF(podEnv, kind, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

func trainedEval(b *testing.B, env *experiments.Env, cfg figret.Config) float64 {
	b.Helper()
	m := figret.New(env.PS, cfg)
	if _, err := m.Train(env.Train); err != nil {
		b.Fatal(err)
	}
	var sum float64
	var n int
	for t := cfg.H; t < env.Test.Len(); t++ {
		c, err := m.PredictAt(env.Test, t)
		if err != nil {
			b.Fatal(err)
		}
		sum += c.MLU(env.Test.At(t))
		n++
	}
	return sum / float64(n)
}

func BenchmarkAblationGamma(b *testing.B) {
	setup(b)
	for _, gamma := range []float64{0, 0.5, 2, 8} {
		b.Run(fmtFloat(gamma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				avg := trainedEval(b, torEnv, figret.Config{H: 6, Gamma: gamma, Epochs: 6, Seed: 2})
				b.ReportMetric(avg, "avg-mlu")
			}
		})
	}
}

func BenchmarkAblationLossTerm(b *testing.B) {
	// The central design choice: variance-weighted (fine-grained) L2 vs a
	// uniform (coarse-grained, Des-TE-like) L2 vs none (DOTE).
	setup(b)
	variants := []struct {
		name string
		cfg  figret.Config
	}{
		{"fine-grained", figret.Config{H: 6, Gamma: 2, Epochs: 6, Seed: 2}},
		{"coarse-grained", figret.Config{H: 6, Gamma: 2, Epochs: 6, Seed: 2, CoarseGrained: true}},
		{"none-dote", figret.Config{H: 6, Gamma: 0, Epochs: 6, Seed: 2}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				avg := trainedEval(b, torEnv, v.cfg)
				b.ReportMetric(avg, "avg-mlu")
			}
		})
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	setup(b)
	for _, h := range []int{1, 6, 12} {
		b.Run(fmtInt(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				avg := trainedEval(b, podEnv, figret.Config{H: h, Gamma: 1, Epochs: 6, Seed: 2})
				b.ReportMetric(avg, "avg-mlu")
			}
		})
	}
}

func BenchmarkAblationPaths(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(fmtInt(k), func(b *testing.B) {
			env, err := experiments.NewEnv(graph.TopoPoDDB, experiments.ScaleFast,
				experiments.EnvOptions{T: 120, Seed: 2, K: k})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				avg := trainedEval(b, env, figret.Config{H: 6, Gamma: 1, Epochs: 5, Seed: 2})
				b.ReportMetric(avg, "avg-mlu")
			}
		})
	}
}

func BenchmarkSolverVsLP(b *testing.B) {
	setup(b)
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, obj, err := lp.MLUMin(geantPS, geantD)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(obj, "mlu")
		}
	})
	b.Run("grad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, obj := solver.MinimizeMLU(geantPS, geantD, solver.Options{Iters: 600})
			b.ReportMetric(obj, "mlu")
		}
	})
}

func BenchmarkAblationWCMP(b *testing.B) {
	// MLU cost of hardware WCMP quantization at different table sizes,
	// relative to ideal real-valued splits.
	setup(b)
	cfg, _ := solver.MinimizeMLU(geantPS, geantD, solver.Options{Iters: 300})
	ideal, _ := geantPS.MLU(geantD, cfg.R)
	for _, size := range []int{4, 16, 64} {
		b.Run(fmtInt(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := te.QuantizeWCMP(cfg, size)
				if err != nil {
					b.Fatal(err)
				}
				m, _ := geantPS.MLU(geantD, q.R)
				b.ReportMetric(m/ideal, "mlu-vs-ideal")
			}
		})
	}
}

func BenchmarkMLUProxySimulation(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.MLUProxy(podEnv, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LossCorr, "mlu-loss-corr")
	}
}

func BenchmarkDriftVisualization(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.VisualizeDrift(podEnv, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Drift[3], "q4-drift")
	}
}

func BenchmarkFig20_DOTEFailureCase(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DOTEFailureCase(torEnv, 6, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DOTEMLU/res.FigretMLU, "dote-vs-figret-mlu")
	}
}

// --- Micro-benchmarks -----------------------------------------------------

// BenchmarkTrainStep measures a five-epoch training run on the ScaleFast
// PoD env: the sequential per-sample reference path ("seq") against the
// batched minibatch engine at batch sizes 1, 8 and 32, and the
// data-parallel engine at batch 64 (4 gradient shards) with worker pools
// of 1, 2 and all CPUs plus a gradient-accumulation macro-batch variant.
// Run with -benchmem: the batched engine must show the allocation
// elimination (scratch reuse makes the steady-state epochs
// allocation-free, leaving only one-time optimizer/scratch setup) and the
// blocked-GEMM wall-clock win, while producing bitwise-identical loss
// trajectories to "seq" at every batch size
// (TestBatchedMatchesSequentialTrajectory); the worker variants must
// produce bitwise-identical trajectories to workers=1 at every pool size
// (TestTrainWorkerCountInvariance), with the multi-worker win scaling in
// GOMAXPROCS.
func BenchmarkTrainStep(b *testing.B) {
	run := func(cfg figret.Config, seq bool) func(b *testing.B) {
		cfg.H, cfg.Gamma, cfg.Epochs, cfg.Seed = 6, 1, 5, 1
		return func(b *testing.B) {
			setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := figret.New(podEnv.PS, cfg)
				b.StartTimer()
				var err error
				if seq {
					_, err = m.TrainSequential(podEnv.Train)
				} else {
					_, err = m.Train(podEnv.Train)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(figret.Config{BatchSize: 1}, true))
	b.Run("batch=1", run(figret.Config{BatchSize: 1}, false))
	b.Run("batch=8", run(figret.Config{BatchSize: 8}, false))
	b.Run("batch=32", run(figret.Config{BatchSize: 32}, false))
	b.Run("batch=64-workers=1", run(figret.Config{BatchSize: 64, TrainWorkers: 1}, false))
	b.Run("batch=64-workers=2", run(figret.Config{BatchSize: 64, TrainWorkers: 2}, false))
	b.Run("batch=64-workers=max", run(figret.Config{BatchSize: 64}, false))
	b.Run("batch=32-macro=2-workers=max", run(figret.Config{BatchSize: 32, MacroBatch: 2}, false))
}

// evalBenchSchemes builds the scheme set for the evaluation-engine
// benchmarks: PredTE (per-snapshot optimal solves of the preceding
// demand), Des TE (per-snapshot capped solves of the peak matrix) and a
// static config — the non-NN slice of a Figure 5 quality run, freshly
// constructed per iteration exactly as an experiment would.
func evalBenchSchemes(solve baselines.SolveFunc) []baselines.Scheme {
	return []baselines.Scheme{
		&baselines.PredTE{PS: podEnv.PS, Solve: solve},
		&baselines.DesTE{PS: podEnv.PS, Solve: solve, H: 6},
		&baselines.FixedScheme{Label: "Uniform", Cfg: te.UniformConfig(podEnv.PS)},
	}
}

// BenchmarkEvaluateParallel compares the pre-refactor sequential
// evaluation path (per-scheme baselines.Evaluate loops, every omniscient
// solve recomputed, PredTE paying for its own solves) against eval.Run on
// the same window with a process-lifetime oracle. The engine's win on a
// quality-style evaluation comes from three stacked effects: (1) the
// oracle base is memoized across runs, (2) PredTE's solves hit the same
// cache (its advice for t is the omniscient solve of t-1), and (3) cells
// evaluate in parallel across however many cores exist. The acceptance
// bar is engine ≥ 3× legacy at steady state.
func BenchmarkEvaluateParallel(b *testing.B) {
	setup(b)
	from, to := 1, 21
	b.Run("legacy-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			omni := &baselines.Omniscient{PS: podEnv.PS, Solve: podEnv.Solve}
			base, err := baselines.Evaluate(omni, podEnv.Test, from, to)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range evalBenchSchemes(podEnv.Solve) {
				series, err := baselines.Evaluate(s, podEnv.Test, from, to)
				if err != nil {
					b.Fatal(err)
				}
				norm := baselines.Normalize(series, base)
				_ = traffic.Summarize(norm)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		orc := eval.NewOracle(podEnv.PS, podEnv.Solve, nil)
		for i := 0; i < b.N; i++ {
			res, err := eval.Run(evalBenchSchemes(orc.CachedSolve), podEnv.Test,
				eval.Window{From: from, To: to},
				eval.Options{Workers: runtime.NumCPU(), Oracle: orc})
			if err != nil {
				b.Fatal(err)
			}
			if res.Scheme("Pred TE") == nil {
				b.Fatal("missing scheme")
			}
		}
		hits, misses := orc.Stats()
		b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
	})
}

// BenchmarkOracleCache isolates the oracle's memoization: a cold Series
// pays one solve per snapshot, a warm Series is pure cache lookups.
func BenchmarkOracleCache(b *testing.B) {
	setup(b)
	from, to := 1, 21
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			orc := eval.NewOracle(podEnv.PS, podEnv.Solve, nil)
			if _, err := orc.Series(podEnv.Test, from, to, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		orc := eval.NewOracle(podEnv.PS, podEnv.Solve, nil)
		if _, err := orc.Series(podEnv.Test, from, to, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := orc.Series(podEnv.Test, from, to, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOracleWarmStart measures the warm-started gradient chain
// against cold full-budget solves over the same window — the oracle's
// steady-state advantage on temporally-correlated traces (the LP-free
// regime, i.e. every ToR-scale topology).
func BenchmarkOracleWarmStart(b *testing.B) {
	setup(b)
	from, to := 1, 21
	b.Run("cold-fullbudget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			orc := eval.NewOracle(torEnv.PS, torEnv.Solve, nil)
			if _, err := orc.Series(torEnv.Test, from, to, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-chain", func(b *testing.B) {
		warm := baselines.GradWarmSolve(solver.Options{Iters: 150})
		for i := 0; i < b.N; i++ {
			orc := eval.NewOracle(torEnv.PS, torEnv.Solve, warm)
			if _, err := orc.Series(torEnv.Test, from, to, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEdgeFlowsCSR exercises the flat CSR incidence walk that is the
// inner loop of both the training loss and the gradient solver, on the
// PoD-scale path set.
func BenchmarkEdgeFlowsCSR(b *testing.B) {
	setup(b)
	ps := podEnv.PS
	d := podEnv.Train.At(0)
	cfg := te.UniformConfig(ps)
	buf := make([]float64, ps.G.NumEdges())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.EdgeFlows(d, cfg.R, buf)
	}
}

func BenchmarkMicroMLUEval(b *testing.B) {
	setup(b)
	cfg := te.UniformConfig(geantPS)
	buf := make([]float64, geantPS.G.NumEdges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geantPS.EdgeFlows(geantD, cfg.R, buf)
	}
}

func BenchmarkMicroYenGEANT(b *testing.B) {
	g := graph.GEANT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := g.KShortestPaths(0, 12, 3, graph.HopWeight); len(ps) != 3 {
			b.Fatal("missing paths")
		}
	}
}

func BenchmarkMicroPathSetGEANT(b *testing.B) {
	g := graph.GEANT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := te.NewPathSet(g, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroReroute(b *testing.B) {
	setup(b)
	cfg := te.UniformConfig(geantPS)
	e := geantPS.G.Edge(0)
	fs := te.NewFailureSet(geantPS.G, [][2]int{{e.From, e.To}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te.Reroute(cfg, fs)
	}
}

func BenchmarkMicroTrainingStep(b *testing.B) {
	setup(b)
	tr, err := traffic.DC(traffic.PoDDB, 4, 30, 1)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := te.NewPathSet(graph.PoDDB(), 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	m := figret.New(ps, figret.Config{H: 4, Gamma: 1, Epochs: 1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func fmtInt(v int) string {
	return fmtFloat(float64(v))
}

func fmtFloat(v float64) string {
	switch {
	case v == float64(int(v)):
		return itoa(int(v))
	default:
		// one decimal
		return itoa(int(v)) + "." + itoa(int(v*10)%10)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkNewPathSetParallel measures whole-topology candidate-path
// precomputation on the large synthetic WAN (220 nodes, 48,180 SD pairs;
// a reduced 60-node WAN in -short mode, which is what the CI smoke runs):
//
//   - seed:       the pre-PathSetOptions cost — an explicit YenSelector,
//     one worker, a fresh Yen solver (and its allocations) per pair;
//   - sequential: one worker with per-worker Yen scratch reuse;
//   - parallel:   all CPUs, scratch reuse (the NewPathSet default). The
//     speedup over `seed` multiplies the scratch-reuse win by ~the core
//     count; the result is bitwise identical to `sequential`;
//   - cached:     reload of the persisted te.PathStore entry, the cost a
//     warm process pays instead of any Yen solve.
func BenchmarkNewPathSetParallel(b *testing.B) {
	var g *graph.Graph
	if testing.Short() {
		small, err := graph.RingWithChords(60, 90, 10, 2201)
		if err != nil {
			b.Fatal(err)
		}
		g = small
	} else {
		g = graph.LargeWAN()
	}

	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{
				Workers: 1, Selector: te.YenSelector, SelectorName: te.SelectorYen,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{Workers: runtime.NumCPU()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		store, err := te.NewPathStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Warm the cache outside the timed region.
		if _, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{Store: store}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{Store: store}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
