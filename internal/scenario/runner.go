package scenario

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/netsim"
	"figret/internal/serve"
	"figret/internal/te"
	"figret/internal/traffic"
)

// Options configures a Runner.
type Options struct {
	// Workers sizes each scenario's evaluation worker pool (<= 0 selects
	// runtime.NumCPU()). Metrics are bitwise identical for any value.
	Workers int
	// ScenarioWorkers is how many scenarios run concurrently (default 1;
	// each scenario already parallelizes its cells). Metrics are bitwise
	// identical for any value — every cell writes only its own slot and
	// the shared caches are content-addressed.
	ScenarioWorkers int
	// TrainWorkers sizes the data-parallel pool used to train substrate
	// models (<= 0 selects GOMAXPROCS). Trained weights — and so every
	// golden-gated metric — are bitwise identical for any value, which is
	// why this is a runner option and not part of the spec or the model
	// cache key.
	TrainWorkers int
	// PathCache, when non-empty, is the directory of an on-disk
	// te.PathStore shared with the trainer and the serving daemon: one
	// candidate-path precomputation per (topology, K) across all cells
	// and processes.
	PathCache string
	// TraceCache, when non-empty, is the directory of an on-disk
	// tracestore (see internal/tracestore): each cell's synthetic trace
	// is generated once, spooled as a columnar store file, and served as
	// zero-copy views of the memory-mapped file. Golden-gated metrics are
	// bitwise identical with the cache on or off.
	TraceCache string
	// Wire replays closed-loop scenarios over the upgraded binary stream
	// protocol (persistent connection, delta-encoded decisions) instead
	// of JSON HTTP. Decisions are bitwise identical either way, so every
	// golden-gated metric is unchanged; the switch exercises the binary
	// data plane in the scenario harness.
	Wire bool
	// Log, when non-nil, receives one progress line per completed
	// scenario.
	Log func(format string, args ...any)
}

// Runner executes scenario specs. Substrate state — the path set, the
// calibrated trace, the omniscient-oracle solve cache and trained NN
// models — is shared across every cell with the same substrate key, so a
// suite of N scenarios on one topology pays for one environment and one
// model, not N.
type Runner struct {
	opt Options

	mu     sync.Mutex
	envs   map[string]*envEntry
	models map[string]*modelEntry
}

type envEntry struct {
	once sync.Once
	env  *experiments.Env
	err  error
}

type modelEntry struct {
	once  sync.Once
	model *figret.Model
	err   error
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	if opt.ScenarioWorkers <= 0 {
		opt.ScenarioWorkers = 1
	}
	return &Runner{
		opt:    opt,
		envs:   make(map[string]*envEntry),
		models: make(map[string]*modelEntry),
	}
}

// Run executes every spec and returns one Metrics per spec, in input
// order. Scenarios run on a worker pool of ScenarioWorkers; each result
// lands in its own slot, so the output — like every other layer of this
// harness — is independent of scheduling. The error is the
// smallest-indexed failing scenario's.
func (r *Runner) Run(specs []*Spec) ([]*Metrics, error) {
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	out := make([]*Metrics, len(specs))
	err := eval.Parallel(len(specs), r.opt.ScenarioWorkers, func(i int) error {
		m, err := r.RunOne(specs[i])
		if err != nil {
			return fmt.Errorf("scenario %s: %w", specs[i].Name, err)
		}
		out[i] = m
		if r.opt.Log != nil {
			r.opt.Log("ran %-32s mode=%-10s schemes=%d window=[%d,%d)",
				m.Scenario, m.Mode, len(m.Schemes), m.From, m.To)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunOne executes a single spec.
func (r *Runner) RunOne(spec *Spec) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sp := spec.withDefaults()
	env, err := r.envFor(sp)
	if err != nil {
		return nil, err
	}

	// Evaluation trace: the environment's calibrated trace, optionally
	// stress-perturbed. Perturb clones, so the shared environment's trace
	// is never touched.
	evTrace := env.Trace
	if p := sp.Perturb; p != nil {
		if p.WorstCase {
			evTrace = traffic.WorstCasePerturb(env.Trace, env.Train, p.Alpha, p.Seed)
		} else {
			evTrace = traffic.Perturb(env.Trace, env.Train, p.Alpha, p.Seed)
		}
	}

	// Evaluated window, absolute within the trace.
	from := env.TestStart
	to := evTrace.Len()
	if w := sp.Window; w != nil {
		from += w.From
		if w.To != 0 {
			to = env.TestStart + w.To
		}
	}
	if to > evTrace.Len() {
		to = evTrace.Len()
	}
	if from >= to {
		return nil, fmt.Errorf("empty evaluation window [%d,%d) (trace length %d)", from, to, evTrace.Len())
	}

	// Failure set: sampled bit-identically from the spec's failure seed,
	// hitting at an absolute snapshot index.
	var fs *te.FailureSet
	failAt := -1
	if f := sp.Failures; f != nil {
		rng := rand.New(rand.NewSource(f.Seed))
		set, ok := experiments.SampleFailures(env.PS, rng, f.Count)
		if !ok {
			return nil, fmt.Errorf("no feasible %d-link failure set found (seed %d)", f.Count, f.Seed)
		}
		fs = set
		failAt = from + f.At
		if failAt >= to {
			return nil, fmt.Errorf("failures.at %d places the failure at snapshot %d, at or beyond the evaluation window [%d,%d) — the scenario would silently run failure-free",
				f.At, failAt, from, to)
		}
	}

	cells, err := r.schemeCells(sp, env, fs, failAt)
	if err != nil {
		return nil, err
	}

	m := &Metrics{Scenario: sp.Name, Mode: sp.Mode, From: from, To: to}
	switch sp.Mode {
	case ModeOffline:
		err = r.runOffline(sp, env, evTrace, cells, m)
	case ModeFluid:
		err = r.runFluid(sp, env, evTrace, cells, m)
	case ModeClosedLoop:
		err = r.runClosedLoop(sp, env, evTrace, m)
	default:
		err = fmt.Errorf("unknown mode %q", sp.Mode)
	}
	if err != nil {
		return nil, err
	}
	m.Seal()
	return m, nil
}

// --- substrate caches ---------------------------------------------------

// envKey identifies a shareable substrate: everything that shapes the
// topology, the trace and the oracle.
func envKey(sp *Spec) string {
	return fmt.Sprintf("%s|%s|T=%d|K=%d|seed=%d|iters=%d", sp.Topo, sp.Scale, sp.T, sp.K, sp.Seed, sp.SolverIters)
}

func (r *Runner) envFor(sp *Spec) (*experiments.Env, error) {
	key := envKey(sp)
	r.mu.Lock()
	e, ok := r.envs[key]
	if !ok {
		e = &envEntry{}
		r.envs[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		scale := experiments.ScaleFast
		if sp.Scale == "full" {
			scale = experiments.ScaleFull
		}
		env, err := experiments.NewEnv(sp.Topo, scale, experiments.EnvOptions{
			T: sp.T, K: sp.K, Seed: sp.Seed, PathCache: r.opt.PathCache,
			TraceCache: r.opt.TraceCache,
		})
		if err != nil {
			e.err = err
			return
		}
		// Scenarios always use the projected-gradient solver: it is
		// deterministic at every scale, and its iteration budget is part
		// of the substrate key so goldens pin it.
		env.UseGradSolver(sp.SolverIters)
		env.Workers = r.opt.Workers
		env.Oracle() // materialize before concurrent use
		e.env = env
	})
	return e.env, e.err
}

func (r *Runner) modelFor(sp *Spec, env *experiments.Env, kind string) (*figret.Model, error) {
	t := *sp.Train
	key := fmt.Sprintf("%s|%s|H=%d|gamma=%g|epochs=%d|hidden=%v|batch=%d",
		envKey(sp), kind, t.H, t.Gamma, t.Epochs, t.Hidden, t.BatchSize)
	r.mu.Lock()
	e, ok := r.models[key]
	if !ok {
		e = &modelEntry{}
		r.models[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		cfg := figret.Config{
			H: t.H, Epochs: t.Epochs, Seed: sp.Seed,
			Hidden: t.Hidden, BatchSize: t.BatchSize,
			TrainWorkers: r.opt.TrainWorkers,
		}
		var m *figret.Model
		if kind == SchemeFIGRET {
			cfg.Gamma = t.Gamma
			m = figret.New(env.PS, cfg)
		} else {
			m = figret.NewDOTE(env.PS, cfg)
		}
		if _, err := m.Train(env.Train); err != nil {
			e.err = err
			return
		}
		e.model = m
	})
	return e.model, e.err
}

// --- scheme construction ------------------------------------------------

// schemeCell binds a scheme to its spec name and the scenario's failure
// response: from snapshot failAt on, every advised configuration is
// rerouted around the failure set (§4.5) before scoring — exactly the
// paper's no-retraining failure policy. Advise stays a pure function of
// (tr, t), so the evaluation engine's determinism contract holds.
type schemeCell struct {
	name   string
	inner  baselines.Scheme
	fs     *te.FailureSet
	failAt int
}

func (c *schemeCell) Name() string { return c.name }

func (c *schemeCell) Warmup() int { return c.inner.Warmup() }

func (c *schemeCell) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	cfg, err := c.inner.Advise(tr, t)
	if err != nil {
		return nil, err
	}
	if c.fs != nil && t >= c.failAt {
		cfg = te.Reroute(cfg, c.fs)
	}
	return cfg, nil
}

func (r *Runner) schemeCells(sp *Spec, env *experiments.Env, fs *te.FailureSet, failAt int) ([]*schemeCell, error) {
	oracle := env.Oracle()
	cells := make([]*schemeCell, 0, len(sp.Schemes))
	for _, name := range sp.Schemes {
		var inner baselines.Scheme
		switch name {
		case SchemeFIGRET, SchemeDOTE:
			m, err := r.modelFor(sp, env, name)
			if err != nil {
				return nil, err
			}
			inner = &baselines.NNScheme{Label: name, Model: m}
		case SchemeDesTE:
			// CachedSolve shares capped peak-matrix solves across cells
			// and scenarios on the same substrate.
			inner = &baselines.DesTE{PS: env.PS, Solve: oracle.CachedSolve, H: sp.Train.H}
		case SchemePredTE:
			// PredTE's advice for t is the omniscient solve of t−1: every
			// call is a hit on the oracle's base series.
			inner = &baselines.PredTE{PS: env.PS, Solve: oracle.CachedSolve}
		case SchemeUniform:
			inner = &baselines.FixedScheme{Label: name, Cfg: te.UniformConfig(env.PS)}
		default:
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
		cells = append(cells, &schemeCell{name: name, inner: inner, fs: fs, failAt: failAt})
	}
	return cells, nil
}

// --- modes --------------------------------------------------------------

func (r *Runner) runOffline(sp *Spec, env *experiments.Env, tr *traffic.Trace, cells []*schemeCell, m *Metrics) error {
	schemes := make([]baselines.Scheme, len(cells))
	for i, c := range cells {
		schemes[i] = c
	}
	res, err := eval.Run(schemes, tr, eval.Window{From: m.From, To: m.To},
		eval.Options{Workers: r.opt.Workers, Oracle: env.Oracle()})
	if err != nil {
		return err
	}
	for i := range res.Schemes {
		ss := &res.Schemes[i]
		m.Schemes = append(m.Schemes, SchemeMetrics{
			Scheme:           ss.Name,
			AvgMLU:           ss.AvgNorm,
			P50MLU:           traffic.Quantile(ss.Norm, 0.5),
			P95MLU:           traffic.Quantile(ss.Norm, 0.95),
			MaxMLU:           traffic.Quantile(ss.Norm, 1),
			SevereCongestion: ss.SevereCongestion,
		})
	}
	return nil
}

// fluidMetrics summarizes a per-interval fluid series into golden-gated
// quantiles.
func fluidMetrics(name string, intervals []*netsim.Result) SchemeMetrics {
	mlu := make([]float64, len(intervals))
	loss := make([]float64, len(intervals))
	delay := make([]float64, len(intervals))
	var mluSum, lossSum float64
	for i, iv := range intervals {
		mlu[i], loss[i], delay[i] = iv.MLU, iv.LossRate, iv.MeanDelay
		mluSum += iv.MLU
		lossSum += iv.LossRate
	}
	n := float64(len(intervals))
	return SchemeMetrics{
		Scheme:   name,
		AvgMLU:   mluSum / n,
		P50MLU:   traffic.Quantile(mlu, 0.5),
		P95MLU:   traffic.Quantile(mlu, 0.95),
		MaxMLU:   traffic.Quantile(mlu, 1),
		MeanLoss: lossSum / n,
		MaxLoss:  traffic.Quantile(loss, 1),
		P50Delay: traffic.Quantile(delay, 0.5),
		P95Delay: traffic.Quantile(delay, 0.95),
	}
}

// runFluid closes the loop with netsim.ControlLoop per scheme: the
// scheme's advice for interval t is computed from history before t and
// installs Delay intervals later, and every interval is scored by the
// fluid simulator. A failure set reroutes the *advised* configurations
// from failAt on — the control plane's response; configurations already
// installed (or in the Delay pipeline) keep their pre-failure routing
// until the rerouted advice lands, which is exactly the staleness the
// paper's §1 control loop exposes.
func (r *Runner) runFluid(sp *Spec, env *experiments.Env, tr *traffic.Trace, cells []*schemeCell, m *Metrics) error {
	results := make([][]*netsim.Result, len(cells))
	err := eval.Parallel(len(cells), r.opt.Workers, func(i int) error {
		cell := cells[i]
		cl := &netsim.ControlLoop{
			Advise:  func(t int) (*te.Config, error) { return cell.Advise(tr, t) },
			Delay:   sp.Delay,
			Initial: te.UniformConfig(env.PS),
		}
		lr, err := cl.Run(tr.At, m.From, m.To)
		if err != nil {
			return err
		}
		results[i] = lr.PerInterval
		return nil
	})
	if err != nil {
		return err
	}
	for i, cell := range cells {
		m.Schemes = append(m.Schemes, fluidMetrics(cell.name, results[i]))
	}
	return nil
}

// runClosedLoop replays the evaluation window through the serving
// subsystem: an in-process HTTP server hosts the trained checkpoint, the
// trace streams through synchronous ingest (serve.Replay), and every
// served interval is scored with the fluid simulator. The replay starts
// H snapshots early so the controller's sliding window is warm by the
// first evaluated interval; those warmup intervals are excluded from the
// metrics.
func (r *Runner) runClosedLoop(sp *Spec, env *experiments.Env, tr *traffic.Trace, m *Metrics) error {
	kind := sp.Schemes[0]
	model, err := r.modelFor(sp, env, kind)
	if err != nil {
		return err
	}
	h := sp.Train.H
	if m.From-h < 0 {
		return fmt.Errorf("closed-loop warmup needs %d snapshots before the window start %d", h, m.From)
	}

	reg := serve.NewRegistry()
	if err := reg.AddTopology(sp.Topo, env.PS); err != nil {
		return err
	}
	srv := serve.NewServer(reg)
	// No drift retraining and no churn clamp: scenario metrics must be a
	// pure function of the spec, and background retraining is
	// wall-clock-dependent.
	if _, err := srv.Add(sp.Topo, serve.ControllerOptions{HistoryCap: 4 * h}); err != nil {
		return err
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if _, err := reg.Install(sp.Topo, model, "scenario:"+sp.Name); err != nil {
		return err
	}

	rr, err := serve.Replay(serve.NewClient(hs.URL), sp.Topo, env.PS, tr, serve.ReplayOptions{
		From: m.From - h, To: m.To, Delay: sp.Delay, Wire: r.opt.Wire,
	})
	if err != nil {
		return err
	}
	// PerInterval[i] describes interval (From−h)+i; drop the h warmup
	// intervals.
	m.Schemes = append(m.Schemes, fluidMetrics(kind+"-served", rr.PerInterval[h:]))
	return nil
}

// Render formats metrics as an aligned text table (one block per
// scenario), the CLI's human-readable output.
func Render(ms []*Metrics) string {
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%s (%s, snapshots [%d,%d), checksum %08x)\n", m.Scenario, m.Mode, m.From, m.To, m.Checksum)
		fmt.Fprintf(&b, "  %-16s %8s %8s %8s %8s %8s %8s %8s\n",
			"scheme", "avgMLU", "p50MLU", "p95MLU", "maxMLU", "severe", "loss", "p95dly")
		for _, s := range m.Schemes {
			fmt.Fprintf(&b, "  %-16s %8.4f %8.4f %8.4f %8.4f %8.4f %8.5f %8.3f\n",
				s.Scheme, s.AvgMLU, s.P50MLU, s.P95MLU, s.MaxMLU, s.SevereCongestion, s.MeanLoss, s.P95Delay)
		}
	}
	return b.String()
}
