package scenario

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultTolerance is the relative degradation a golden diff tolerates
// before failing: metrics are deterministic, so the slack exists only to
// absorb intentional small-impact changes — a 5% MLU regression is well
// past it.
const DefaultTolerance = 0.02

// SchemeMetrics is one scheme's golden-gated summary within a scenario.
// All metrics are lower-is-better. In offline mode the MLU fields
// describe oracle-normalized MLU; in fluid and closed-loop modes they
// describe raw offered-load MLU, and the loss and delay fields are
// populated from the fluid simulation.
type SchemeMetrics struct {
	Scheme string `json:"scheme"`
	// AvgMLU, P50MLU, P95MLU, MaxMLU summarize the per-snapshot MLU
	// series.
	AvgMLU float64 `json:"avgMLU"`
	P50MLU float64 `json:"p50MLU"`
	P95MLU float64 `json:"p95MLU"`
	MaxMLU float64 `json:"maxMLU"`
	// SevereCongestion is the fraction of snapshots with normalized MLU
	// above 2 (offline mode only).
	SevereCongestion float64 `json:"severeCongestion"`
	// MeanLoss and MaxLoss summarize the fluid loss-rate series (fluid
	// and closed-loop modes).
	MeanLoss float64 `json:"meanLoss"`
	MaxLoss  float64 `json:"maxLoss"`
	// P50Delay and P95Delay are quantiles of the per-interval
	// demand-weighted M/M/1 delay proxy (fluid and closed-loop modes).
	P50Delay float64 `json:"p50Delay"`
	P95Delay float64 `json:"p95Delay"`
}

// Metrics is one scenario's full golden record.
type Metrics struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	// From, To is the absolute evaluated snapshot range of the trace.
	From int `json:"from"`
	To   int `json:"to"`
	// Schemes holds one entry per evaluated scheme, in spec order.
	Schemes []SchemeMetrics `json:"schemes"`
	// Checksum is the IEEE CRC-32 of the canonical JSON encoding of this
	// struct with Checksum zeroed — the same self-integrity scheme as
	// te.PathStore, so a hand-edited or truncated golden reads as corrupt
	// instead of silently shifting the gate.
	Checksum uint32 `json:"checksum"`
}

// payload is m's canonical checksummed encoding (Checksum zeroed).
func (m *Metrics) payload() []byte {
	c := *m
	c.Checksum = 0
	data, err := json.Marshal(&c)
	if err != nil {
		// Metrics marshaling cannot fail: fixed struct of floats/strings.
		panic(err)
	}
	return data
}

// Seal computes and stores the checksum.
func (m *Metrics) Seal() { m.Checksum = crc32.ChecksumIEEE(m.payload()) }

// Verify reports whether the stored checksum matches the content.
func (m *Metrics) Verify() bool { return m.Checksum == crc32.ChecksumIEEE(m.payload()) }

// Scheme returns the named scheme's metrics, or nil.
func (m *Metrics) Scheme(name string) *SchemeMetrics {
	for i := range m.Schemes {
		if m.Schemes[i].Scheme == name {
			return &m.Schemes[i]
		}
	}
	return nil
}

// Store is a directory of golden files, one "<scenario>.json" per
// scenario.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a golden directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("scenario: empty golden dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(name string) string {
	return filepath.Join(st.dir, name+".json")
}

// Save seals and writes one golden atomically (write-temp + rename), so
// an interrupted bless never leaves a torn file behind.
func (st *Store) Save(m *Metrics) error {
	m.Seal()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(st.dir, "."+m.Scenario+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), st.path(m.Scenario))
}

// Load reads and integrity-checks one golden. A missing file is
// reported as os.ErrNotExist (callers distinguish "never blessed" from
// "corrupt").
func (st *Store) Load(name string) (*Metrics, error) {
	data, err := os.ReadFile(st.path(name))
	if err != nil {
		return nil, err
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("scenario: golden %s: %w", name, err)
	}
	if m.Scenario != name {
		return nil, fmt.Errorf("scenario: golden %s names scenario %q", name, m.Scenario)
	}
	if !m.Verify() {
		return nil, fmt.Errorf("scenario: golden %s failed its checksum (hand-edited or truncated; re-bless it)", name)
	}
	return &m, nil
}

// List returns the blessed scenario names, sorted.
func (st *Store) List() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		names = append(names, strings.TrimSuffix(filepath.Base(p), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// Diff is the outcome of comparing fresh metrics against a golden.
type Diff struct {
	Scenario string
	// Regressions are tolerance-exceeding degradations (or structural
	// mismatches); any entry fails the gate.
	Regressions []string
	// Improvements are tolerance-exceeding gains — informational, blessed
	// away when intentional.
	Improvements []string
}

// OK reports whether the diff passes the gate.
func (d *Diff) OK() bool { return len(d.Regressions) == 0 }

// String renders the diff for terminal output.
func (d *Diff) String() string {
	var b strings.Builder
	for _, r := range d.Regressions {
		fmt.Fprintf(&b, "REGRESSION %s: %s\n", d.Scenario, r)
	}
	for _, im := range d.Improvements {
		fmt.Fprintf(&b, "improved   %s: %s\n", d.Scenario, im)
	}
	return b.String()
}

// Compare gates fresh metrics against a golden with relative tolerance
// tol (0 selects DefaultTolerance). Every metric is lower-is-better: a
// fresh value above golden·(1+tol) (plus a small absolute epsilon for
// near-zero metrics like loss rates) is a regression; a fresh value
// below golden·(1−tol) is an improvement note. Mode or window changes
// and missing/extra schemes are regressions — they mean the scenario no
// longer measures what was blessed.
func Compare(golden, fresh *Metrics, tol float64) *Diff {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	d := &Diff{Scenario: golden.Scenario}
	if golden.Scenario != fresh.Scenario {
		d.Regressions = append(d.Regressions, fmt.Sprintf("scenario name changed: %q vs %q", golden.Scenario, fresh.Scenario))
		return d
	}
	if golden.Mode != fresh.Mode {
		d.Regressions = append(d.Regressions, fmt.Sprintf("mode changed: %s vs %s", golden.Mode, fresh.Mode))
	}
	if golden.From != fresh.From || golden.To != fresh.To {
		d.Regressions = append(d.Regressions,
			fmt.Sprintf("evaluated window changed: [%d,%d) vs [%d,%d)", golden.From, golden.To, fresh.From, fresh.To))
	}
	for i := range golden.Schemes {
		g := &golden.Schemes[i]
		f := fresh.Scheme(g.Scheme)
		if f == nil {
			d.Regressions = append(d.Regressions, fmt.Sprintf("scheme %s disappeared", g.Scheme))
			continue
		}
		compareScheme(d, g, f, tol)
	}
	for i := range fresh.Schemes {
		if golden.Scheme(fresh.Schemes[i].Scheme) == nil {
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("scheme %s is new (re-bless to accept)", fresh.Schemes[i].Scheme))
		}
	}
	return d
}

// lossEps absorbs relative comparison of near-zero rates: a loss rate
// moving 0 → 1e-9 is numeric noise, not a regression.
const lossEps = 1e-6

func compareScheme(d *Diff, g, f *SchemeMetrics, tol float64) {
	check := func(metric string, gv, fv float64) {
		hi := gv*(1+tol) + lossEps
		lo := gv * (1 - tol)
		switch {
		case fv > hi:
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("%s %s %.6g -> %.6g (+%.1f%%, tolerance %.1f%%)",
					g.Scheme, metric, gv, fv, 100*(fv-gv)/nonzero(gv), 100*tol))
		case fv < lo-lossEps:
			d.Improvements = append(d.Improvements,
				fmt.Sprintf("%s %s %.6g -> %.6g (−%.1f%%)", g.Scheme, metric, gv, fv, 100*(gv-fv)/nonzero(gv)))
		}
	}
	check("avgMLU", g.AvgMLU, f.AvgMLU)
	check("p50MLU", g.P50MLU, f.P50MLU)
	check("p95MLU", g.P95MLU, f.P95MLU)
	check("maxMLU", g.MaxMLU, f.MaxMLU)
	check("severeCongestion", g.SevereCongestion, f.SevereCongestion)
	check("meanLoss", g.MeanLoss, f.MeanLoss)
	check("maxLoss", g.MaxLoss, f.MaxLoss)
	check("p50Delay", g.P50Delay, f.P50Delay)
	check("p95Delay", g.P95Delay, f.P95Delay)
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
