package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func podSpec(name string) *Spec {
	return &Spec{
		Name:    name,
		Topo:    "pod-db",
		Mode:    ModeOffline,
		Schemes: []string{SchemeFIGRET, SchemeDesTE, SchemePredTE, SchemeUniform},
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{},
		{Name: "x"},
		{Name: "has space", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform}},
		{Name: "x", Topo: "geant"},
		{Name: "x", Topo: "geant", Mode: "nope", Schemes: []string{SchemeUniform}},
		{Name: "x", Topo: "geant", Mode: ModeOffline},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{"wat"}},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform, SchemeUniform}},
		{Name: "x", Topo: "geant", Mode: ModeClosedLoop, Schemes: []string{SchemeUniform}},
		{Name: "x", Topo: "geant", Mode: ModeClosedLoop, Schemes: []string{SchemeFIGRET, SchemeDOTE}},
		{Name: "x", Topo: "geant", Mode: ModeClosedLoop, Schemes: []string{SchemeFIGRET}, Failures: &FailureSpec{Count: 1}},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform}, Failures: &FailureSpec{Count: 0}},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform}, Perturb: &PerturbSpec{}},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform}, Window: &WindowSpec{From: 4, To: 2}},
		{Name: "x", Topo: "geant", Mode: ModeOffline, Schemes: []string{SchemeUniform}, Delay: -1},
		{Name: "x", Topo: "geant", Scale: "medium", Mode: ModeOffline, Schemes: []string{SchemeUniform}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d unexpectedly valid: %+v", i, s)
		}
	}
	if err := podSpec("ok").Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestParseSpecUnknownField(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","topo":"geant","mode":"offline","schemes":["uniform"],"topology":"oops"}`))
	if err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseShard(t *testing.T) {
	for _, bad := range []string{"0/3", "4/3", "x", "1/0", "-1/2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("shard %q unexpectedly parsed", bad)
		}
	}
	sh, err := ParseShard("2/3")
	if err != nil || sh != (Shard{2, 3}) {
		t.Fatalf("ParseShard(2/3) = %v, %v", sh, err)
	}
	if sh, _ := ParseShard(""); sh != (Shard{1, 1}) {
		t.Fatalf("empty shard = %v", sh)
	}
}

// TestShardSelectUnion proves the shard invariant: shards are disjoint
// and their union (in canonical order) is exactly the suite.
func TestShardSelectUnion(t *testing.T) {
	specs := []*Spec{podSpec("a"), podSpec("b"), podSpec("c"), podSpec("d"), podSpec("e")}
	const n = 3
	seen := map[string]int{}
	for i := 1; i <= n; i++ {
		for _, s := range (Shard{i, n}).Select(specs) {
			seen[s.Name]++
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("union has %d of %d specs", len(seen), len(specs))
	}
	for _, s := range specs {
		if c := seen[s.Name]; c != 1 {
			t.Fatalf("spec %s selected %d times", s.Name, c)
		}
	}
}

func TestLoadSuite(t *testing.T) {
	dir := t.TempDir()
	write := func(file, name string) {
		spec := podSpec(name)
		data, _ := json.Marshal(spec)
		if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.json", "bbb")
	write("a.json", "aaa")
	specs, err := LoadSuite(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "aaa" || specs[1].Name != "bbb" {
		t.Fatalf("suite not name-sorted: %v, %v", specs[0].Name, specs[1].Name)
	}
	write("c.json", "aaa") // duplicate name
	if _, err := LoadSuite(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name not rejected: %v", err)
	}
}

// TestRunDeterminism is the core contract: metrics are a pure function
// of the spec — identical for any evaluation worker count, scenario
// concurrency, training worker count, and across runner instances
// (fresh caches).
func TestRunDeterminism(t *testing.T) {
	spec := podSpec("det")
	spec.Failures = &FailureSpec{Count: 1, At: 4}
	var got []*Metrics
	for _, opt := range []Options{
		{Workers: 1, ScenarioWorkers: 1, TrainWorkers: 1},
		{Workers: 4, ScenarioWorkers: 2, TrainWorkers: 3},
	} {
		ms, err := NewRunner(opt).Run([]*Spec{spec, podSpec("det2")})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	a, _ := json.Marshal(got[0])
	b, _ := json.Marshal(got[2])
	if string(a) != string(b) {
		t.Fatalf("metrics differ across worker counts:\n%s\n%s", a, b)
	}
	if got[0].Checksum != got[2].Checksum || got[1].Checksum != got[3].Checksum {
		t.Fatal("checksums differ across runner instances")
	}
}

// TestTraceCacheGoldenByteIdentity pins the golden contract for the
// memory-mapped trace store: serving a cell's trace as zero-copy views
// of an on-disk store file — cold (generate → spool → reload) or warm
// (mmap of an existing file) — produces a byte-identical sealed Metrics
// payload to the in-RAM path, so every blessed golden gates the
// store-routed pipeline too.
func TestTraceCacheGoldenByteIdentity(t *testing.T) {
	dir := t.TempDir()
	run := func(cache string) *Metrics {
		spec := podSpec("golden-tc")
		spec.Failures = &FailureSpec{Count: 1, At: 4}
		m, err := NewRunner(Options{TraceCache: cache}).RunOne(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, cold, warm := run(""), run(dir), run(dir)
	pj, _ := json.Marshal(plain)
	for _, c := range []struct {
		name string
		m    *Metrics
	}{{"cold", cold}, {"warm", warm}} {
		cj, _ := json.Marshal(c.m)
		if string(pj) != string(cj) {
			t.Fatalf("%s cache metrics differ from in-RAM:\n%s\n%s", c.name, pj, cj)
		}
		if plain.Checksum != c.m.Checksum {
			t.Fatalf("%s cache checksum differs from in-RAM", c.name)
		}
	}
}

// TestTrainWorkerGoldenByteIdentity pins the golden contract for the
// data-parallel trainer: a substrate model whose minibatch spans several
// gradient shards (BatchSize 48 = 3 shards) trains to bitwise-identical
// weights under any TrainWorkers, so the sealed Metrics payload — and any
// golden blessed from it — is byte-identical across worker counts.
func TestTrainWorkerGoldenByteIdentity(t *testing.T) {
	run := func(workers int) *Metrics {
		spec := podSpec("golden-tw")
		spec.Schemes = []string{SchemeFIGRET}
		spec.Train = &TrainSpec{BatchSize: 48}
		m, err := NewRunner(Options{TrainWorkers: workers}).RunOne(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(1), run(3)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("metrics differ across training worker counts:\n%s\n%s", aj, bj)
	}
	if a.Checksum != b.Checksum {
		t.Fatal("checksums differ across training worker counts")
	}
}

// TestFailureSeedReplay: the failure sequence is pinned by the spec's
// failure seed — same seed, same metrics; a different seed draws a
// different failure set (and on this substrate, different metrics).
func TestFailureSeedReplay(t *testing.T) {
	r := NewRunner(Options{})
	run := func(seed int64) *Metrics {
		s := podSpec("fail")
		s.Failures = &FailureSpec{Count: 2, Seed: seed}
		m, err := r.RunOne(s)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b, c := run(5), run(5), run(6)
	if a.Checksum != b.Checksum {
		t.Fatal("same failure seed produced different metrics")
	}
	if a.Checksum == c.Checksum {
		t.Fatal("different failure seeds produced identical metrics (sampler ignoring seed?)")
	}
}

// TestClosedLoopMatchesFluid cross-validates the serving path against
// the offline control loop: streaming the trace through the HTTP API
// (sync ingest, delayed installation) must reproduce, interval for
// interval, the fluid control-loop metrics of the same model — the
// serving layer adds transport, not behavior.
func TestClosedLoopMatchesFluid(t *testing.T) {
	r := NewRunner(Options{})
	fluid := podSpec("cl-fluid")
	fluid.Mode = ModeFluid
	fluid.Schemes = []string{SchemeFIGRET}
	fluid.Delay = 1
	served := podSpec("cl-served")
	served.Mode = ModeClosedLoop
	served.Schemes = []string{SchemeFIGRET}
	served.Delay = 1
	mf, err := r.RunOne(fluid)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := r.RunOne(served)
	if err != nil {
		t.Fatal(err)
	}
	f, s := mf.Schemes[0], ms.Schemes[0]
	f.Scheme, s.Scheme = "", ""
	if f != s {
		t.Fatalf("closed-loop diverges from fluid control loop:\nfluid:  %+v\nserved: %+v", f, s)
	}
}

// TestFailureBeyondWindowRejected: a failure onset at or past the end
// of the evaluation window would silently disable injection — it must
// be an error, not a failure-free run blessed as a failure scenario.
func TestFailureBeyondWindowRejected(t *testing.T) {
	s := podSpec("late-fail")
	s.Failures = &FailureSpec{Count: 1, At: 999}
	if _, err := NewRunner(Options{}).RunOne(s); err == nil ||
		!strings.Contains(err.Error(), "beyond the evaluation window") {
		t.Fatalf("out-of-window failure onset not rejected: %v", err)
	}
}

func TestRunOneWindowAndPerturb(t *testing.T) {
	r := NewRunner(Options{})
	s := podSpec("win")
	s.Window = &WindowSpec{From: 2, To: 10}
	s.Perturb = &PerturbSpec{Alpha: 0.5}
	m, err := r.RunOne(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.To-m.From != 8 {
		t.Fatalf("window [%d,%d), want 8 snapshots", m.From, m.To)
	}
	base, err := r.RunOne(podSpec("win-base"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schemes[0].AvgMLU == base.Schemes[0].AvgMLU {
		t.Fatal("perturbation had no effect on metrics")
	}
}
