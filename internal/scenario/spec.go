// Package scenario is the declarative scenario-matrix subsystem: a Spec
// names one cell of the paper's evaluation space — (topology × traffic
// model × perturbation × failure pattern × scheme set × evaluation mode)
// — in JSON, a sharded Runner executes whole suites of cells on a worker
// pool that shares one environment (path set, oracle cache, trained
// models) per substrate across cells, and a checksummed golden-metrics
// store with tolerance-checked Compare turns the suite into a regression
// gate: any change that silently degrades a scenario's MLU, loss or
// latency fails CI.
//
// Determinism contract: a Spec's Metrics are a pure function of the spec
// alone — every random draw (traffic, perturbation, failure sampling,
// model initialization) is explicitly seeded, the evaluation engine is
// worker-count independent, and the closed-loop mode streams its trace
// through synchronous ingest. Sharding a suite therefore produces the
// bitwise union of the single-process results, and `bless` → `diff`
// round-trips clean on an unchanged tree.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Evaluation modes.
const (
	// ModeOffline scores schemes with the parallel evaluation engine
	// (eval.Run): per-snapshot MLU normalized by the shared omniscient
	// oracle.
	ModeOffline = "offline"
	// ModeFluid closes the loop with the fluid simulator
	// (netsim.ControlLoop): raw MLU, loss and queueing-delay proxies under
	// delayed installation.
	ModeFluid = "fluid"
	// ModeClosedLoop replays the trace through the serving subsystem's
	// HTTP API (serve.Replay): an in-process server hosts the trained
	// checkpoint and every snapshot is streamed with synchronous ingest.
	ModeClosedLoop = "closedloop"
)

// Scheme names accepted by Spec.Schemes. The NN schemes train on the
// environment's training split under Spec.Train; the rest are
// training-free.
const (
	SchemeFIGRET  = "figret"
	SchemeDOTE    = "dote"
	SchemeDesTE   = "deste"
	SchemePredTE  = "predte"
	SchemeUniform = "uniform"
)

// TrainSpec sizes NN-scheme training. The defaults are deliberately
// small: scenario cells are regression probes that run on every push,
// not paper-grade training runs.
type TrainSpec struct {
	// H is the history window (default 6).
	H int `json:"h,omitempty"`
	// Gamma is FIGRET's robustness weight (default 1).
	Gamma float64 `json:"gamma,omitempty"`
	// Epochs is the training pass count (default 2).
	Epochs int `json:"epochs,omitempty"`
	// Hidden overrides the MLP widths (default [32, 32]).
	Hidden []int `json:"hidden,omitempty"`
	// BatchSize is the minibatch size (default 16).
	BatchSize int `json:"batchSize,omitempty"`
}

func (t TrainSpec) withDefaults() TrainSpec {
	if t.H == 0 {
		t.H = 6
	}
	if t.Gamma == 0 {
		t.Gamma = 1
	}
	if t.Epochs == 0 {
		t.Epochs = 2
	}
	if t.Hidden == nil {
		t.Hidden = []int{32, 32}
	}
	if t.BatchSize == 0 {
		t.BatchSize = 16
	}
	return t
}

// PerturbSpec adds Table 3 / Table 5 style stress noise to the
// evaluation trace: additive Gaussian noise Alpha·N(0, σ²_sd) per pair,
// where σ_sd is measured on the training split.
type PerturbSpec struct {
	// Alpha scales the per-pair noise.
	Alpha float64 `json:"alpha"`
	// Seed drives the noise draw (default: Spec.Seed + 101).
	Seed int64 `json:"seed,omitempty"`
	// WorstCase reverses the per-pair σ ranking (Table 5's adversarial
	// variant).
	WorstCase bool `json:"worstCase,omitempty"`
}

// FailureSpec injects link failures mid-series: Count distinct links
// fail at the At'th evaluated snapshot and stay down for the rest of the
// window. Schemes respond with te.Reroute (§4.5) — no retraining.
type FailureSpec struct {
	// Count is the number of simultaneously failed links (1..).
	Count int `json:"count"`
	// Seed drives failure sampling (default: Spec.Seed + 77). The sampled
	// set is bit-identical for a given (topology, k, seed, count).
	Seed int64 `json:"seed,omitempty"`
	// At is the offset within the evaluation window at which the failure
	// hits (default 0: failed from the first evaluated snapshot).
	At int `json:"at,omitempty"`
}

// WindowSpec narrows the evaluated snapshot range, as offsets into the
// test split (both default to the full split).
type WindowSpec struct {
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"` // 0 = end of test split
}

// Spec declares one scenario. The zero values of the optional fields
// select documented defaults, so a minimal spec is just
// {name, topo, mode, schemes}.
type Spec struct {
	// Name identifies the scenario; golden files and shard assignment key
	// on it. Suite names must be unique.
	Name string `json:"name"`
	// Topo is a graph.Topo* name; the traffic model is the topology's
	// canonical workload (traffic.ForTopology): WAN bursts on geant,
	// gravity on uscarrier/cogentco/large-wan, pFabric flows on pfabric,
	// Meta DC profiles on pod-*/tor-*.
	Topo string `json:"topo"`
	// Scale is "fast" (default) or "full" (the paper's Table 1 sizes).
	Scale string `json:"scale,omitempty"`
	// Mode is one of ModeOffline, ModeFluid, ModeClosedLoop.
	Mode string `json:"mode"`
	// Schemes lists the evaluated schemes (Scheme* constants). The
	// closed-loop mode serves exactly one NN scheme (figret or dote).
	Schemes []string `json:"schemes"`
	// T is the trace length (default 64; the first 75% train, the rest
	// evaluate).
	T int `json:"t,omitempty"`
	// K is the candidate-path count (default 3).
	K int `json:"k,omitempty"`
	// Seed drives the traffic generator and every derived default seed
	// (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SolverIters is the projected-gradient iteration budget of the
	// oracle and the solve-based schemes (default 200; scenarios always
	// use the gradient solver — it is deterministic at every scale).
	SolverIters int `json:"solverIters,omitempty"`
	// Train sizes NN-scheme training (defaults documented on TrainSpec).
	Train *TrainSpec `json:"train,omitempty"`
	// Perturb stresses the evaluation trace (nil = none).
	Perturb *PerturbSpec `json:"perturb,omitempty"`
	// Failures injects mid-series link failures (nil = none). Not
	// supported in closed-loop mode.
	Failures *FailureSpec `json:"failures,omitempty"`
	// Window narrows the evaluated range within the test split.
	Window *WindowSpec `json:"window,omitempty"`
	// Delay is the control-plane installation delay in intervals (fluid
	// and closed-loop modes).
	Delay int `json:"delay,omitempty"`
	// Tolerance overrides the golden-diff relative tolerance for this
	// scenario (default DefaultTolerance).
	Tolerance float64 `json:"tolerance,omitempty"`
}

func (s *Spec) withDefaults() *Spec {
	c := *s
	if c.Scale == "" {
		c.Scale = "fast"
	}
	if c.T == 0 {
		c.T = 64
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SolverIters == 0 {
		c.SolverIters = 200
	}
	t := TrainSpec{}
	if c.Train != nil {
		t = *c.Train
	}
	t = t.withDefaults()
	c.Train = &t
	if c.Perturb != nil {
		p := *c.Perturb
		if p.Seed == 0 {
			p.Seed = c.Seed + 101
		}
		c.Perturb = &p
	}
	if c.Failures != nil {
		f := *c.Failures
		if f.Seed == 0 {
			f.Seed = c.Seed + 77
		}
		c.Failures = &f
	}
	if c.Tolerance == 0 {
		c.Tolerance = DefaultTolerance
	}
	return &c
}

// Validate rejects malformed specs with a descriptive error.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec missing name")
	}
	if strings.ContainsAny(s.Name, "/\\ ") {
		return fmt.Errorf("scenario %s: name must be file-name safe (no slashes or spaces)", s.Name)
	}
	if s.Topo == "" {
		return fmt.Errorf("scenario %s: missing topo", s.Name)
	}
	switch s.Scale {
	case "", "fast", "full":
	default:
		return fmt.Errorf("scenario %s: scale %q (want fast|full)", s.Name, s.Scale)
	}
	switch s.Mode {
	case ModeOffline, ModeFluid, ModeClosedLoop:
	default:
		return fmt.Errorf("scenario %s: mode %q (want %s|%s|%s)", s.Name, s.Mode, ModeOffline, ModeFluid, ModeClosedLoop)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("scenario %s: no schemes", s.Name)
	}
	seen := map[string]bool{}
	for _, sch := range s.Schemes {
		switch sch {
		case SchemeFIGRET, SchemeDOTE, SchemeDesTE, SchemePredTE, SchemeUniform:
		default:
			return fmt.Errorf("scenario %s: unknown scheme %q", s.Name, sch)
		}
		if seen[sch] {
			return fmt.Errorf("scenario %s: duplicate scheme %q", s.Name, sch)
		}
		seen[sch] = true
	}
	if s.Mode == ModeClosedLoop {
		if len(s.Schemes) != 1 || (s.Schemes[0] != SchemeFIGRET && s.Schemes[0] != SchemeDOTE) {
			return fmt.Errorf("scenario %s: closed-loop mode serves exactly one NN scheme (figret or dote)", s.Name)
		}
		if s.Failures != nil {
			return fmt.Errorf("scenario %s: failure injection is not supported in closed-loop mode", s.Name)
		}
	}
	if s.Failures != nil && s.Failures.Count < 1 {
		return fmt.Errorf("scenario %s: failures.count %d must be >= 1", s.Name, s.Failures.Count)
	}
	if s.Failures != nil && s.Failures.At < 0 {
		return fmt.Errorf("scenario %s: failures.at %d must be >= 0", s.Name, s.Failures.At)
	}
	if s.Perturb != nil && s.Perturb.Alpha <= 0 {
		return fmt.Errorf("scenario %s: perturb.alpha %v must be > 0", s.Name, s.Perturb.Alpha)
	}
	if s.Window != nil && (s.Window.From < 0 || (s.Window.To != 0 && s.Window.To <= s.Window.From)) {
		return fmt.Errorf("scenario %s: bad window [%d,%d)", s.Name, s.Window.From, s.Window.To)
	}
	if s.Delay < 0 {
		return fmt.Errorf("scenario %s: negative delay %d", s.Name, s.Delay)
	}
	if s.Tolerance < 0 {
		return fmt.Errorf("scenario %s: negative tolerance %v", s.Name, s.Tolerance)
	}
	return nil
}

// ParseSpec decodes and validates one spec. Unknown fields are errors, so
// a typo in a suite file fails loudly instead of silently selecting a
// default.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSuite reads every *.json spec under dir, validates each, checks
// name uniqueness and returns the suite sorted by name — the canonical
// order sharding and output listing use.
func LoadSuite(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json specs under %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*Spec, 0, len(paths))
	byName := map[string]string{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		s, err := ParseSpec(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if prev, ok := byName[s.Name]; ok {
			return nil, fmt.Errorf("scenario: duplicate name %q in %s and %s", s.Name, prev, p)
		}
		byName[s.Name] = p
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// Shard selects a 1-based slice i/n of a suite: spec j (in canonical
// name order) belongs to shard (j mod n)+1. The union over all shards is
// exactly the full suite.
type Shard struct {
	Index, Count int
}

// ParseShard parses "i/n" (1 <= i <= n). An empty string means the whole
// suite (Shard{1, 1}).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{1, 1}, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return Shard{}, fmt.Errorf("scenario: bad shard %q (want i/n)", s)
	}
	if n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("scenario: shard %d/%d out of range", i, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// Select returns the specs of this shard, preserving canonical order.
// specs must already be in canonical (name-sorted) order, as LoadSuite
// returns them.
func (sh Shard) Select(specs []*Spec) []*Spec {
	if sh.Count <= 1 {
		return specs
	}
	var out []*Spec
	for j, s := range specs {
		if j%sh.Count == sh.Index-1 {
			out = append(out, s)
		}
	}
	return out
}
