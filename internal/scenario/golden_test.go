package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleMetrics() *Metrics {
	m := &Metrics{
		Scenario: "sample",
		Mode:     ModeOffline,
		From:     48, To: 64,
		Schemes: []SchemeMetrics{
			{Scheme: "figret", AvgMLU: 1.20, P50MLU: 1.18, P95MLU: 1.40, MaxMLU: 1.55, SevereCongestion: 0.0},
			{Scheme: "deste", AvgMLU: 1.30, P50MLU: 1.29, P95MLU: 1.45, MaxMLU: 1.60, MeanLoss: 0.01, P95Delay: 12},
		},
	}
	m.Seal()
	return m
}

func TestGoldenRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMetrics()
	if err := st.Save(m); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("sample")
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != m.Checksum || len(got.Schemes) != 2 || got.Schemes[1] != m.Schemes[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	names, err := st.List()
	if err != nil || len(names) != 1 || names[0] != "sample" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if _, err := st.Load("absent"); !os.IsNotExist(err) {
		t.Fatalf("missing golden: want os.ErrNotExist, got %v", err)
	}
}

// TestGoldenTamperDetected: a hand-edited golden (metric nudged without
// resealing) must read as corrupt — the gate cannot be weakened by
// editing numbers in place.
func TestGoldenTamperDetected(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir)
	if err := st.Save(sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "sample.json")
	data, _ := os.ReadFile(p)
	tampered := strings.Replace(string(data), "1.2", "1.1", 1)
	if tampered == string(data) {
		t.Fatal("tamper substitution found nothing to replace")
	}
	if err := os.WriteFile(p, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("sample"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered golden not rejected: %v", err)
	}
}

// TestCompareRegressionGate is the acceptance check of the gate: an
// injected 5% MLU regression in any scheme fails Compare at the default
// tolerance, identical metrics pass, and improvements are notes rather
// than failures.
func TestCompareRegressionGate(t *testing.T) {
	golden := sampleMetrics()

	clean := Compare(golden, sampleMetrics(), 0)
	if !clean.OK() || len(clean.Improvements) != 0 {
		t.Fatalf("identical metrics did not pass clean: %v", clean)
	}

	// 5% worse MLU on one scheme -> regression.
	worse := sampleMetrics()
	worse.Schemes[1].AvgMLU *= 1.05
	worse.Seal()
	d := Compare(golden, worse, 0)
	if d.OK() {
		t.Fatal("5% avgMLU regression passed the gate")
	}
	if !strings.Contains(strings.Join(d.Regressions, "\n"), "deste avgMLU") {
		t.Fatalf("regression not attributed: %v", d.Regressions)
	}

	// 5% better -> improvement note, no failure.
	better := sampleMetrics()
	better.Schemes[0].P95MLU /= 1.05
	better.Seal()
	d = Compare(golden, better, 0)
	if !d.OK() || len(d.Improvements) == 0 {
		t.Fatalf("improvement misclassified: %v", d)
	}

	// Within tolerance -> clean.
	slight := sampleMetrics()
	slight.Schemes[0].AvgMLU *= 1.01
	slight.Seal()
	if d := Compare(golden, slight, 0); !d.OK() {
		t.Fatalf("1%% drift failed the 2%% gate: %v", d.Regressions)
	}
	// ...but a tight per-scenario tolerance catches it.
	if d := Compare(golden, slight, 0.005); d.OK() {
		t.Fatal("0.5% tolerance did not catch 1% drift")
	}
}

func TestCompareStructuralMismatches(t *testing.T) {
	golden := sampleMetrics()

	missing := sampleMetrics()
	missing.Schemes = missing.Schemes[:1]
	missing.Seal()
	if d := Compare(golden, missing, 0); d.OK() {
		t.Fatal("disappeared scheme passed the gate")
	}

	extra := sampleMetrics()
	extra.Schemes = append(extra.Schemes, SchemeMetrics{Scheme: "new"})
	extra.Seal()
	if d := Compare(golden, extra, 0); d.OK() {
		t.Fatal("new scheme passed the gate without a re-bless")
	}

	window := sampleMetrics()
	window.To++
	window.Seal()
	if d := Compare(golden, window, 0); d.OK() {
		t.Fatal("changed window passed the gate")
	}

	mode := sampleMetrics()
	mode.Mode = ModeFluid
	mode.Seal()
	if d := Compare(golden, mode, 0); d.OK() {
		t.Fatal("changed mode passed the gate")
	}
}

// TestNearZeroLossNoise: a loss rate moving 0 -> 1e-9 is numeric noise,
// not a regression (the absolute epsilon term).
func TestNearZeroLossNoise(t *testing.T) {
	golden := sampleMetrics()
	fresh := sampleMetrics()
	fresh.Schemes[0].MeanLoss = 1e-9
	fresh.Seal()
	if d := Compare(golden, fresh, 0); !d.OK() {
		t.Fatalf("1e-9 loss flagged as regression: %v", d.Regressions)
	}
}
