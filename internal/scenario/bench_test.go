package scenario

import "testing"

// BenchmarkScenarioOffline measures the steady-state cost of one offline
// scenario cell once the substrate caches (path set, oracle, trained
// model) are warm — the marginal price of adding a scenario to the
// suite, recorded per commit by CI's benchmark artifact.
func BenchmarkScenarioOffline(b *testing.B) {
	r := NewRunner(Options{})
	spec := podSpec("bench")
	if _, err := r.RunOne(spec); err != nil { // warm the caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunOne(spec); err != nil {
			b.Fatal(err)
		}
	}
}
