package figret

import (
	"encoding/json"
	"math"
	"testing"

	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/te"
	"figret/internal/traffic"
)

func smallSetup(t *testing.T) *te.PathSet {
	t.Helper()
	ps, err := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// burstyTrace builds a trace on 4 nodes where pair (0,1) bursts hard and
// every other pair is almost constant.
func burstyTrace(ps *te.PathSet, T int, burstEvery int, burstSize float64) *traffic.Trace {
	tr := traffic.NewTrace(4)
	k := ps.Pairs.Count()
	hot := ps.Pairs.Index(0, 1)
	for t := 0; t < T; t++ {
		snap := make([]float64, k)
		for i := 0; i < k; i++ {
			snap[i] = 4 + 0.05*math.Sin(float64(t+i))
		}
		if burstEvery > 0 && t%burstEvery == 0 {
			snap[hot] = burstSize
		}
		tr.Append(snap)
	}
	return tr
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.H != 12 || c.LR != 1e-3 || c.Epochs != 15 || len(c.Hidden) != 5 {
		t.Errorf("defaults = %+v", c)
	}
	for _, h := range c.Hidden {
		if h != 128 {
			t.Errorf("hidden width %d, want 128", h)
		}
	}
}

func TestNormalizePerPairForwardBackward(t *testing.T) {
	ps := smallSetup(t)
	y := make([]float64, ps.NumPaths())
	for i := range y {
		y[i] = 0.1 + 0.05*float64(i%7)
	}
	r, back := normalizePerPair(ps, y)
	for _, pp := range ps.PairPaths {
		sum := 0.0
		for _, p := range pp {
			sum += r[p]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("pair ratios sum to %v", sum)
		}
	}
	// Numeric gradient check through the normalization for an arbitrary
	// downstream loss L(r) = Σ a_p r_p².
	a := make([]float64, ps.NumPaths())
	for i := range a {
		a[i] = float64(i%5) - 2
	}
	loss := func(y []float64) float64 {
		r, _ := normalizePerPair(ps, y)
		s := 0.0
		for p := range r {
			s += a[p] * r[p] * r[p]
		}
		return s
	}
	gr := make([]float64, len(r))
	for p := range gr {
		gr[p] = 2 * a[p] * r[p]
	}
	dy := back(gr)
	const h = 1e-7
	for _, idx := range []int{0, 5, len(y) - 1} {
		yp := append([]float64(nil), y...)
		yp[idx] += h
		ym := append([]float64(nil), y...)
		ym[idx] -= h
		want := (loss(yp) - loss(ym)) / (2 * h)
		if math.Abs(dy[idx]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("dy[%d] = %v, numeric %v", idx, dy[idx], want)
		}
	}
}

func TestNormalizePerPairDegenerate(t *testing.T) {
	ps := smallSetup(t)
	y := make([]float64, ps.NumPaths()) // all zero
	r, back := normalizePerPair(ps, y)
	pp := ps.PairPaths[0]
	for _, p := range pp {
		if math.Abs(r[p]-1/float64(len(pp))) > 1e-12 {
			t.Errorf("degenerate pair ratio %v", r[p])
		}
	}
	dy := back(make([]float64, len(y)))
	for _, v := range dy {
		if v != 0 {
			t.Error("degenerate pair should get zero gradient")
		}
	}
}

func TestLossGradientDecreasesMLU(t *testing.T) {
	// A (sub)gradient step from the all-direct config must reduce the true
	// MLU on a demand that overloads one direct path.
	ps := smallSetup(t)
	m := New(ps, Config{H: 2, Seed: 1})
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	d[ps.Pairs.Index(0, 1)] = 8
	cfg := te.NewConfig(ps)
	// Soften: mostly-direct but interior so gradients exist.
	for _, pp := range ps.PairPaths {
		cfg.R[pp[0]] = 0.9
		for _, p := range pp[1:] {
			cfg.R[p] = 0.1 / float64(len(pp)-1)
		}
	}
	s := newLossScratch(ps)
	_, mlu0, gr := m.lossAndGrad(cfg.R, d, s)
	step := cfg.Clone()
	for p := range step.R {
		step.R[p] -= 0.02 * gr[p]
	}
	step.Normalize()
	mlu1 := step.MLU(d)
	if mlu1 >= mlu0 {
		t.Errorf("gradient step did not reduce MLU: %v -> %v", mlu0, mlu1)
	}
}

func TestL2TermTargetsBurstyPair(t *testing.T) {
	ps := smallSetup(t)
	m := New(ps, Config{H: 2, Gamma: 1, Seed: 1})
	hot := ps.Pairs.Index(0, 1)
	m.VarWeights[hot] = 1 // only the hot pair carries variance weight
	d := make([]float64, ps.Pairs.Count())
	cfg := te.UniformConfig(ps)
	// Make the hot pair's first path clearly the sensitivity argmax.
	pp := ps.PairPaths[hot]
	cfg.R[pp[0]] = 0.8
	cfg.R[pp[1]], cfg.R[pp[2]] = 0.1, 0.1
	s := newLossScratch(ps)
	loss, mlu, gr := m.lossAndGrad(cfg.R, d, s)
	if mlu != 0 {
		t.Fatalf("zero demand MLU = %v", mlu)
	}
	if loss <= 0 {
		t.Fatal("L2 term missing from loss")
	}
	if gr[pp[0]] <= 0 {
		t.Errorf("argmax path of bursty pair has gradient %v, want > 0", gr[pp[0]])
	}
	// Paths of stable pairs receive no L2 gradient.
	for pi, qq := range ps.PairPaths {
		if pi == hot {
			continue
		}
		for _, p := range qq {
			if gr[p] != 0 {
				t.Errorf("stable pair %d path %d has gradient %v", pi, p, gr[p])
			}
		}
	}
}

func TestTrainImprovesOverInit(t *testing.T) {
	ps := smallSetup(t)
	tr := burstyTrace(ps, 140, 10, 40)
	train, test := tr.Split(0.75)
	m := New(ps, Config{H: 4, Gamma: 0.5, Epochs: 8, Seed: 2})
	stats, err := m.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EpochMLU) != 8 {
		t.Fatalf("epochs recorded = %d", len(stats.EpochMLU))
	}
	first, last := stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1]
	if last >= first {
		t.Errorf("training did not improve: %v -> %v", first, last)
	}
	// Test-set evaluation: trained model must beat the uniform config on
	// average and be within 2x of omniscient.
	var sumModel, sumUniform, sumOpt float64
	n := 0
	for snap := m.Cfg.H; snap < test.Len(); snap++ {
		cfg, err := m.PredictAt(test, snap)
		if err != nil {
			t.Fatal(err)
		}
		d := test.At(snap)
		sumModel += cfg.MLU(d)
		sumUniform += te.UniformConfig(ps).MLU(d)
		_, opt, err := lp.MLUMin(ps, d)
		if err != nil {
			t.Fatal(err)
		}
		sumOpt += opt
		n++
	}
	if n == 0 {
		t.Fatal("no test snapshots")
	}
	if sumModel >= sumUniform {
		t.Errorf("trained model avg MLU %v not better than uniform %v", sumModel/float64(n), sumUniform/float64(n))
	}
	if sumModel > 2*sumOpt {
		t.Errorf("trained model avg MLU %v more than 2x omniscient %v", sumModel/float64(n), sumOpt/float64(n))
	}
}

func TestFigretHedgesBurstyPairMoreThanDOTE(t *testing.T) {
	// The core fine-grained-robustness claim, in miniature: with a single
	// bursty pair, FIGRET must allocate that pair's traffic with lower
	// maximum path sensitivity than DOTE does, while leaving stable pairs
	// essentially alone (§5.5, Figure 8).
	ps := smallSetup(t)
	tr := burstyTrace(ps, 160, 8, 50)
	train, test := tr.Split(0.75)
	cfg := Config{H: 4, Epochs: 10, Seed: 3}
	fig := New(ps, Config{H: 4, Epochs: 10, Seed: 3, Gamma: 2})
	dote := NewDOTE(ps, cfg)
	if _, err := fig.Train(train); err != nil {
		t.Fatal(err)
	}
	if _, err := dote.Train(train); err != nil {
		t.Fatal(err)
	}
	hot := ps.Pairs.Index(0, 1)
	var figHot, doteHot float64
	n := 0
	for snap := 4; snap < test.Len(); snap++ {
		fc, _ := fig.PredictAt(test, snap)
		dc, _ := dote.PredictAt(test, snap)
		figHot += ps.MaxPairSensitivities(fc.R, true)[hot]
		doteHot += ps.MaxPairSensitivities(dc.R, true)[hot]
		n++
	}
	figHot /= float64(n)
	doteHot /= float64(n)
	if figHot >= doteHot {
		t.Errorf("FIGRET bursty-pair sensitivity %v not below DOTE %v", figHot, doteHot)
	}
}

func TestPredictValidatesWindow(t *testing.T) {
	ps := smallSetup(t)
	m := New(ps, Config{H: 4})
	if _, err := m.Predict(make([]float64, 3)); err == nil {
		t.Error("short window accepted")
	}
	cfg, err := m.Predict(make([]float64, 4*ps.Pairs.Count()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("predicted config invalid: %v", err)
	}
}

func TestPredictorMatchesModelBitwise(t *testing.T) {
	// Predictor is the engine's concurrent inference path; its outputs
	// must be bitwise identical to Model.PredictAt (the batch-1 kernel
	// reproduces the sequential kernel exactly).
	ps := smallSetup(t)
	tr := burstyTrace(ps, 60, 10, 30)
	m := New(ps, Config{H: 4, Gamma: 1, Epochs: 2, Seed: 9})
	if _, err := m.Train(tr); err != nil {
		t.Fatal(err)
	}
	p := m.NewPredictor()
	for _, at := range []int{4, 17, 42, 59} {
		want, err := m.PredictAt(tr, at)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.PredictAt(tr, at)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.R {
			if got.R[i] != want.R[i] {
				t.Fatalf("t=%d path %d: predictor %v vs model %v", at, i, got.R[i], want.R[i])
			}
		}
	}
	if _, err := p.PredictAt(tr, 2); err == nil {
		t.Error("predictor accepted t inside warmup")
	}
	if _, err := p.Predict(make([]float64, 3)); err == nil {
		t.Error("predictor accepted short window")
	}
}

func TestTrainValidation(t *testing.T) {
	ps := smallSetup(t)
	m := New(ps, Config{H: 4})
	short := traffic.NewTrace(4)
	for i := 0; i < 3; i++ {
		short.Append(make([]float64, 12))
	}
	if _, err := m.Train(short); err == nil {
		t.Error("short trace accepted")
	}
	wrong := traffic.NewTrace(5)
	if _, err := m.Train(wrong); err == nil {
		t.Error("mismatched trace accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ps := smallSetup(t)
	tr := burstyTrace(ps, 60, 10, 30)
	m := New(ps, Config{H: 3, Gamma: 1, Epochs: 2, Seed: 4})
	if _, err := m.Train(tr); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(ps, data)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.Window(tr.Len(), 3)
	a, _ := m.Predict(w)
	b, _ := back.Predict(w)
	for i := range a.R {
		if math.Abs(a.R[i]-b.R[i]) > 1e-12 {
			t.Fatal("round-trip changed predictions")
		}
	}
	// Wrong topology rejected.
	other, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(other, data); err == nil {
		t.Error("model loaded onto wrong topology")
	}
}

func TestTrainDeterminism(t *testing.T) {
	ps := smallSetup(t)
	tr := burstyTrace(ps, 60, 10, 30)
	a := New(ps, Config{H: 3, Epochs: 2, Seed: 5})
	b := New(ps, Config{H: 3, Epochs: 2, Seed: 5})
	sa, err := a.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := b.Train(tr)
	for i := range sa.EpochLoss {
		if sa.EpochLoss[i] != sb.EpochLoss[i] {
			t.Fatal("training not deterministic")
		}
	}
}
