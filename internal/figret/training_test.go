package figret

import (
	"math"
	"testing"

	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

func trainSetup(t *testing.T) (*te.PathSet, *traffic.Trace) {
	t.Helper()
	ps, err := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.DC(traffic.PoDDB, 4, 100, 21)
	if err != nil {
		t.Fatal(err)
	}
	return ps, tr
}

func TestBatchSizeDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BatchSize != 1 || c.LRDecay != 1 {
		t.Errorf("defaults: batch=%d decay=%v", c.BatchSize, c.LRDecay)
	}
}

func TestMinibatchTrainingConverges(t *testing.T) {
	ps, tr := trainSetup(t)
	m := New(ps, Config{H: 4, Epochs: 6, Seed: 3, BatchSize: 8})
	stats, err := m.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1]
	if last >= first {
		t.Errorf("minibatch training did not improve: %v -> %v", first, last)
	}
}

func TestMinibatchDiffersFromPerSample(t *testing.T) {
	ps, tr := trainSetup(t)
	a := New(ps, Config{H: 4, Epochs: 2, Seed: 3, BatchSize: 1})
	b := New(ps, Config{H: 4, Epochs: 2, Seed: 3, BatchSize: 16})
	sa, err := a.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sa.EpochLoss[1] == sb.EpochLoss[1] {
		t.Error("batch size had no effect on training trajectory")
	}
}

func TestBatchedMatchesSequentialTrajectory(t *testing.T) {
	// The batched engine must reproduce the sequential per-sample reference
	// path bitwise for identical seeds: at batch=1 (the paper's per-sample
	// protocol) and at batch>1 (gradient accumulation). This is the
	// end-to-end guarantee on top of the nn-level kernel equivalence tests.
	ps, tr := trainSetup(t)
	for _, batch := range []int{1, 8} {
		cfg := Config{H: 4, Epochs: 3, Seed: 9, Gamma: 1, BatchSize: batch}
		a := New(ps, cfg)
		b := New(ps, cfg)
		sa, err := a.Train(tr)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.TrainSequential(tr)
		if err != nil {
			t.Fatal(err)
		}
		for e := range sa.EpochLoss {
			if sa.EpochLoss[e] != sb.EpochLoss[e] || sa.EpochMLU[e] != sb.EpochMLU[e] {
				t.Fatalf("batch=%d epoch %d: batched (%v, %v) != sequential (%v, %v)",
					batch, e, sa.EpochLoss[e], sa.EpochMLU[e], sb.EpochLoss[e], sb.EpochMLU[e])
			}
		}
		// The trained weights must agree too, not just the reported losses.
		for li := range a.Net.Layers {
			for i, w := range a.Net.Layers[li].W {
				if w != b.Net.Layers[li].W[i] {
					t.Fatalf("batch=%d layer %d W[%d]: batched %v != sequential %v",
						batch, li, i, w, b.Net.Layers[li].W[i])
				}
			}
		}
	}
}

func TestBatchLargerThanTrace(t *testing.T) {
	// A batch size exceeding the sample count must clamp, not crash, and
	// still behave like full-batch training.
	ps, tr := trainSetup(t)
	m := New(ps, Config{H: 4, Epochs: 2, Seed: 3, BatchSize: 10000})
	stats, err := m.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.EpochLoss) != 2 {
		t.Fatalf("epochs = %d", len(stats.EpochLoss))
	}
	for _, v := range stats.EpochLoss {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("full-batch training diverged")
		}
	}
}

func TestCoarseGrainedUniformWeights(t *testing.T) {
	ps, tr := trainSetup(t)
	m := New(ps, Config{H: 4, Epochs: 1, Seed: 5, Gamma: 1, CoarseGrained: true})
	if _, err := m.Train(tr); err != nil {
		t.Fatal(err)
	}
	for i, w := range m.VarWeights {
		if w != 1 {
			t.Fatalf("coarse-grained weight[%d] = %v, want 1", i, w)
		}
	}
	fine := New(ps, Config{H: 4, Epochs: 1, Seed: 5, Gamma: 1})
	if _, err := fine.Train(tr); err != nil {
		t.Fatal(err)
	}
	uniform := true
	for _, w := range fine.VarWeights {
		if w != 1 {
			uniform = false
		}
	}
	if uniform {
		t.Error("fine-grained weights unexpectedly uniform")
	}
}

func TestLRDecayApplied(t *testing.T) {
	// With aggressive decay the later epochs barely move the weights, so
	// the loss trajectory must differ from constant-rate training.
	ps, tr := trainSetup(t)
	a := New(ps, Config{H: 4, Epochs: 5, Seed: 4})
	b := New(ps, Config{H: 4, Epochs: 5, Seed: 4, LRDecay: 0.3})
	sa, err := a.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range sa.EpochLoss {
		if sa.EpochLoss[i] != sb.EpochLoss[i] {
			same = false
		}
	}
	if same {
		t.Error("LR decay had no effect")
	}
	// Both still converge to finite losses.
	for _, v := range sb.EpochLoss {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("decayed training diverged")
		}
	}
}
