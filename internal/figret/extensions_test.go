package figret

import (
	"math"
	"testing"

	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

// --- Latency extension (§6) ------------------------------------------------

func TestPathStretch(t *testing.T) {
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := pathStretch(ps)
	for p, v := range st {
		hops := len(ps.Paths[p]) - 1
		switch hops {
		case 1:
			if v != 0 {
				t.Errorf("direct path %d stretch %v", p, v)
			}
		case 2:
			if v != 1 {
				t.Errorf("two-hop path %d stretch %v", p, v)
			}
		default:
			t.Errorf("unexpected hop count %d", hops)
		}
	}
}

func TestLatencyLossGradient(t *testing.T) {
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(ps, Config{H: 2, LatencyWeight: 1, Seed: 1})
	// Zero demand: no latency gradient (demand-share weighting).
	s := newLossScratch(ps)
	cfg := te.UniformConfig(ps)
	_, _, gr := m.lossAndGrad(cfg.R, make([]float64, ps.Pairs.Count()), s)
	for p, g := range gr {
		if g != 0 {
			t.Errorf("zero-demand latency gradient on path %d: %v", p, g)
		}
	}
	// With demand on one pair, only that pair's stretched path gets a
	// latency gradient contribution beyond the MLU part... verify the
	// stretched path's gradient exceeds the direct path's.
	d := make([]float64, ps.Pairs.Count())
	pi := ps.Pairs.Index(0, 1)
	d[pi] = 1
	_, _, gr = m.lossAndGrad(cfg.R, d, s)
	pp := ps.PairPaths[pi]
	var direct, stretched int
	if len(ps.Paths[pp[0]]) == 2 {
		direct, stretched = pp[0], pp[1]
	} else {
		direct, stretched = pp[1], pp[0]
	}
	if gr[stretched] <= gr[direct] {
		t.Errorf("stretched-path gradient %v not above direct %v", gr[stretched], gr[direct])
	}
}

func TestLatencyWeightShortensPaths(t *testing.T) {
	// Training with a strong latency weight must yield configurations with
	// lower demand-weighted stretch than without it.
	ps, err := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace(4)
	for i := 0; i < 80; i++ {
		snap := make([]float64, ps.Pairs.Count())
		for j := range snap {
			snap[j] = 4 + 0.1*math.Sin(float64(i+j))
		}
		tr.Append(snap)
	}
	plain := New(ps, Config{H: 3, Epochs: 6, Seed: 2})
	lat := New(ps, Config{H: 3, Epochs: 6, Seed: 2, LatencyWeight: 20})
	if _, err := plain.Train(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := lat.Train(tr); err != nil {
		t.Fatal(err)
	}
	stretch := pathStretch(ps)
	avgStretch := func(m *Model) float64 {
		cfg, err := m.PredictAt(tr, tr.Len())
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for p, r := range cfg.R {
			s += r * stretch[p]
		}
		return s
	}
	if as, ap := avgStretch(lat), avgStretch(plain); as >= ap {
		t.Errorf("latency-trained stretch %v not below plain %v", as, ap)
	}
}

// --- Drift detector (§6) -----------------------------------------------------

func driftSetup(t *testing.T) (*te.PathSet, *DriftDetector) {
	t.Helper()
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ps, NewDriftDetector(ps)
}

func TestLowerBoundValidity(t *testing.T) {
	// The bound must never exceed the true optimum (checked against the
	// all-direct config, itself an upper bound on the optimum here).
	ps, det := driftSetup(t)
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 1)] = 3
	d[ps.Pairs.Index(1, 2)] = 1
	lb := det.LowerBound(d)
	direct := te.NewConfig(ps).MLU(d)
	if lb > direct+1e-9 {
		t.Errorf("lower bound %v exceeds achievable MLU %v", lb, direct)
	}
	if lb <= 0 {
		t.Errorf("lower bound %v not positive", lb)
	}
	// Pair-capacity bound: pair (0,1) has two paths of capacity 2 -> total 4;
	// demand 3 forces MLU >= 0.75.
	if lb < 0.75-1e-9 {
		t.Errorf("lower bound %v below pair-capacity bound 0.75", lb)
	}
}

func TestDriftDetectorLifecycle(t *testing.T) {
	ps, det := driftSetup(t)
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	// Observing before calibration errors.
	if _, err := det.Observe(1, d); err == nil {
		t.Error("uncalibrated Observe accepted")
	}
	// Calibrate at ratio ~= achieved/lb.
	lb := det.LowerBound(d)
	achieved := make([]float64, 10)
	demands := make([][]float64, 10)
	for i := range achieved {
		achieved[i] = 1.2 * lb
		demands[i] = d
	}
	if err := det.Calibrate(achieved, demands); err != nil {
		t.Fatal(err)
	}
	_, baseline, ok := det.Status()
	if !ok || math.Abs(baseline-1.2) > 1e-9 {
		t.Fatalf("baseline = %v, calibrated = %v", baseline, ok)
	}
	// Healthy operation: no retrain.
	for i := 0; i < 20; i++ {
		retrain, err := det.Observe(1.2*lb, d)
		if err != nil {
			t.Fatal(err)
		}
		if retrain {
			t.Fatal("healthy operation triggered retrain")
		}
	}
	// Sustained degradation: retrain within a bounded number of steps.
	fired := false
	for i := 0; i < 60; i++ {
		retrain, err := det.Observe(2.5*lb, d)
		if err != nil {
			t.Fatal(err)
		}
		if retrain {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("sustained degradation never triggered retrain")
	}
}

func TestDriftDetectorSingleBurstTolerated(t *testing.T) {
	ps, det := driftSetup(t)
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	lb := det.LowerBound(d)
	achieved := []float64{1.1 * lb, 1.1 * lb, 1.1 * lb}
	demands := [][]float64{d, d, d}
	if err := det.Calibrate(achieved, demands); err != nil {
		t.Fatal(err)
	}
	// One huge spike followed by normal operation must not trigger.
	if retrain, _ := det.Observe(10*lb, d); retrain {
		t.Error("single spike triggered retrain immediately")
	}
	for i := 0; i < 30; i++ {
		if retrain, _ := det.Observe(1.1*lb, d); retrain {
			t.Error("retrain triggered during recovery")
		}
	}
}

func TestDriftDetectorCalibrateValidation(t *testing.T) {
	_, det := driftSetup(t)
	if err := det.Calibrate(nil, nil); err == nil {
		t.Error("empty calibration accepted")
	}
	if err := det.Calibrate([]float64{1}, [][]float64{}); err == nil {
		t.Error("mismatched calibration accepted")
	}
}
