package figret

import (
	"fmt"
	"runtime"
	"testing"

	"figret/internal/nn"
	"figret/internal/te"
	"figret/internal/traffic"
)

// trainWith runs Train on a fresh model with the given config and returns
// the stats plus a flat snapshot of the trained weights.
func trainWith(t *testing.T, ps *te.PathSet, cfg Config, tr *traffic.Trace) (TrainStats, []float64) {
	t.Helper()
	m := New(ps, cfg)
	stats, err := m.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	var w []float64
	m.Net.VisitParams(func(params, _ []float64) {
		w = append(w, params...)
	})
	return stats, w
}

func statsEqual(t *testing.T, label string, a, b TrainStats) {
	t.Helper()
	for e := range a.EpochLoss {
		if a.EpochLoss[e] != b.EpochLoss[e] || a.EpochMLU[e] != b.EpochMLU[e] {
			t.Fatalf("%s: epoch %d: (%v, %v) != (%v, %v)",
				label, e, a.EpochLoss[e], a.EpochMLU[e], b.EpochLoss[e], b.EpochMLU[e])
		}
	}
}

func weightsEqual(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d params", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: param %d: %v != %v", label, i, a[i], b[i])
		}
	}
}

// TestTrainWorkerCountInvariance is the end-to-end determinism contract:
// the whole loss trajectory and the trained weights are bitwise identical
// for every TrainWorkers value. BatchSize 48 = 3 shards per minibatch, so
// the shards genuinely run concurrently at workers > 1.
func TestTrainWorkerCountInvariance(t *testing.T) {
	ps, tr := trainSetup(t)
	base := Config{H: 4, Epochs: 3, Seed: 9, Gamma: 1, BatchSize: 3 * nn.GradShardRows}

	ref := base
	ref.TrainWorkers = 1
	refStats, refW := trainWith(t, ps, ref, tr)

	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0) + 5, 0} {
		cfg := base
		cfg.TrainWorkers = w
		stats, weights := trainWith(t, ps, cfg, tr)
		label := fmt.Sprintf("workers=%d", w)
		statsEqual(t, label, refStats, stats)
		weightsEqual(t, label, refW, weights)
	}
}

// TestTrainMacroBatchEqualsFlat pins the macro-batch Adam-schedule
// equivalence: K micro-batches of B rows per step produce bitwise the same
// trajectory as flat batches of K·B rows whenever B is a multiple of
// nn.GradShardRows — same gradient sums (shard layout and tree reduction
// are identical) and the same optimizer step count.
func TestTrainMacroBatchEqualsFlat(t *testing.T) {
	ps, tr := trainSetup(t)
	for _, c := range []struct{ B, K int }{
		{nn.GradShardRows, 2},
		{nn.GradShardRows, 4},
		{2 * nn.GradShardRows, 2},
	} {
		macro := Config{H: 4, Epochs: 2, Seed: 7, Gamma: 1, BatchSize: c.B, MacroBatch: c.K}
		flat := Config{H: 4, Epochs: 2, Seed: 7, Gamma: 1, BatchSize: c.B * c.K}
		ms, mw := trainWith(t, ps, macro, tr)
		fs, fw := trainWith(t, ps, flat, tr)
		label := fmt.Sprintf("B=%d K=%d", c.B, c.K)
		statsEqual(t, label, fs, ms)
		weightsEqual(t, label, fw, mw)
	}
}

// TestTrainWorkersExceedBatch covers the workers > shards edge: a
// single-shard batch with a large worker pool must clamp to one effective
// worker and match the single-worker run bitwise.
func TestTrainWorkersExceedBatch(t *testing.T) {
	ps, tr := trainSetup(t)
	base := Config{H: 4, Epochs: 2, Seed: 5, Gamma: 1, BatchSize: 4}

	ref := base
	ref.TrainWorkers = 1
	refStats, refW := trainWith(t, ps, ref, tr)

	many := base
	many.TrainWorkers = 64
	stats, weights := trainWith(t, ps, many, tr)
	statsEqual(t, "workers=64 batch=4", refStats, stats)
	weightsEqual(t, "workers=64 batch=4", refW, weights)
}

// TestTrainMacroBatchSequentialParity extends the batched≡sequential
// oracle to macro-batches: Train and TrainSequential implement the same
// canonical sharded reduction, so their trajectories agree bitwise with
// MacroBatch > 1 too.
func TestTrainMacroBatchSequentialParity(t *testing.T) {
	ps, tr := trainSetup(t)
	cfg := Config{H: 4, Epochs: 2, Seed: 11, Gamma: 1, BatchSize: nn.GradShardRows, MacroBatch: 3}
	a := New(ps, cfg)
	b := New(ps, cfg)
	sa, err := a.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.TrainSequential(tr)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "macro sequential parity", sa, sb)
	for li := range a.Net.Layers {
		for i, w := range a.Net.Layers[li].W {
			if w != b.Net.Layers[li].W[i] {
				t.Fatalf("layer %d W[%d]: batched %v != sequential %v", li, i, w, b.Net.Layers[li].W[i])
			}
		}
	}
}

// TestTrainWorkersWithBatchOverTrace combines both clamps: worker pool
// larger than the shard count of a batch that itself exceeds the trace.
func TestTrainWorkersWithBatchOverTrace(t *testing.T) {
	ps, tr := trainSetup(t)
	ref := Config{H: 4, Epochs: 2, Seed: 3, BatchSize: 10000, TrainWorkers: 1}
	big := ref
	big.TrainWorkers = 32
	refStats, refW := trainWith(t, ps, ref, tr)
	stats, weights := trainWith(t, ps, big, tr)
	statsEqual(t, "oversized batch", refStats, stats)
	weightsEqual(t, "oversized batch", refW, weights)
}
