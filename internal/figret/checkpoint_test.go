package figret

import (
	"testing"
)

// TestCheckpointRoundTripBitwise pins the invariant the serving
// registry's hot-swap relies on: a model serialized with MarshalJSON and
// restored with LoadModel must produce bitwise-identical Predict output
// — not merely close — for every configuration variant, including the
// DOTE (γ=0) special case. JSON float64 round-tripping is exact ('g'
// formatting emits the shortest uniquely-decoding representation), so
// any divergence here is a serialization bug, and "identical within
// tolerance" would let hot-swapped checkpoints drift from what was
// validated offline.
func TestCheckpointRoundTripBitwise(t *testing.T) {
	ps := smallSetup(t)
	tr := burstyTrace(ps, 60, 10, 30)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"figret", Config{H: 3, Gamma: 1, Epochs: 2, Seed: 4}},
		{"dote", Config{H: 3, Gamma: 0, Epochs: 2, Seed: 5}},
		{"coarse", Config{H: 3, Gamma: 2, Epochs: 2, Seed: 6, CoarseGrained: true}},
		{"latency", Config{H: 3, Gamma: 1, Epochs: 2, Seed: 7, LatencyWeight: 0.5}},
		{"self-target", Config{H: 4, Gamma: 1, Epochs: 2, Seed: 8, SelfTarget: true}},
		{"narrow-net", Config{H: 2, Gamma: 1, Epochs: 2, Seed: 9, Hidden: []int{16}, BatchSize: 8}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			m := New(ps, v.cfg)
			if v.name == "dote" {
				m = NewDOTE(ps, v.cfg)
			}
			if _, err := m.Train(tr); err != nil {
				t.Fatal(err)
			}
			data, err := m.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := LoadModel(ps, data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Scale != m.Scale || back.LossScale != m.LossScale {
				t.Fatalf("normalization state changed: scale %v->%v, loss scale %v->%v",
					m.Scale, back.Scale, m.LossScale, back.LossScale)
			}
			for i, w := range back.VarWeights {
				if w != m.VarWeights[i] {
					t.Fatalf("var weight %d changed: %v -> %v", i, m.VarWeights[i], w)
				}
			}
			h := m.Cfg.H
			pred := back.NewPredictor()
			for ti := h; ti <= tr.Len(); ti += 7 {
				w := tr.Window(ti, h)
				a, err := m.Predict(w)
				if err != nil {
					t.Fatal(err)
				}
				b, err := back.Predict(w)
				if err != nil {
					t.Fatal(err)
				}
				c, err := pred.Predict(w)
				if err != nil {
					t.Fatal(err)
				}
				for p := range a.R {
					if a.R[p] != b.R[p] {
						t.Fatalf("t=%d path %d: original %v, round-trip %v", ti, p, a.R[p], b.R[p])
					}
					if a.R[p] != c.R[p] {
						t.Fatalf("t=%d path %d: original %v, round-trip predictor %v", ti, p, a.R[p], c.R[p])
					}
				}
			}
			// A second round trip is a fixed point: the canonical bytes
			// re-serialize identically, so checkpoint Data is stable across
			// upload/install cycles.
			again, err := back.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Fatal("second serialization differs from the first")
			}
		})
	}
}
