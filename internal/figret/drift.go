package figret

import (
	"fmt"
	"math"

	"figret/internal/te"
)

// DriftDetector implements the retraining trigger sketched in §6 ("When
// should FIGRET be retrained?"): instead of blind periodic retraining, it
// watches the ratio between the MLU the deployed model actually achieves and
// a cheap demand-derived lower bound on the achievable MLU. When the
// exponentially weighted average of that ratio exceeds its calibration level
// by a configurable factor, retraining is advised.
//
// The lower bound needs no solver: for any configuration,
//
//	MLU ≥ max_sd d_sd / Σ_{p∈P_sd} C_p     (a pair's traffic cannot use more
//	                                        than its paths' total capacity)
//	MLU ≥ Σ_sd d_sd·minHops_sd / Σ_e c_e   (volume × shortest hop count must
//	                                        fit into the network)
//
// Both bounds are valid for every feasible configuration, so the ratio is
// always ≥ 1 and drift-free operation keeps it near its calibration value.
type DriftDetector struct {
	ps *te.PathSet
	// Threshold is the multiplicative degradation that triggers retraining
	// (default 1.25: a 25% sustained efficiency drop).
	Threshold float64
	// Alpha is the EWMA smoothing factor (default 0.1).
	Alpha float64
	// Patience is the number of consecutive over-threshold observations
	// required before retraining is advised (default 5), so isolated bursts
	// never trigger.
	Patience int

	pairCapSum []float64
	minHops    []float64
	capTotal   float64

	calibrated bool
	baseline   float64
	ewma       float64
	over       int // consecutive over-threshold observations
}

// NewDriftDetector builds a detector for the model's topology.
func NewDriftDetector(ps *te.PathSet) *DriftDetector {
	d := &DriftDetector{
		ps:        ps,
		Threshold: 1.25,
		Alpha:     0.1,
		Patience:  5,
	}
	d.pairCapSum = make([]float64, ps.Pairs.Count())
	d.minHops = make([]float64, ps.Pairs.Count())
	for pi, pp := range ps.PairPaths {
		min := math.Inf(1)
		for _, p := range pp {
			d.pairCapSum[pi] += ps.Cap[p]
			if h := float64(len(ps.Paths[p]) - 1); h < min {
				min = h
			}
		}
		d.minHops[pi] = min
	}
	for _, e := range ps.G.Edges() {
		d.capTotal += e.Capacity
	}
	return d
}

// LowerBound returns the demand-derived MLU lower bound.
func (d *DriftDetector) LowerBound(demand []float64) float64 {
	var volume float64
	best := 0.0
	for pi, v := range demand {
		if v <= 0 {
			continue
		}
		volume += v * d.minHops[pi]
		if d.pairCapSum[pi] > 0 {
			if b := v / d.pairCapSum[pi]; b > best {
				best = b
			}
		}
	}
	if d.capTotal > 0 {
		if b := volume / d.capTotal; b > best {
			best = b
		}
	}
	return best
}

// Calibrate establishes the healthy ratio level from (achievedMLU, demand)
// observations collected right after training.
func (d *DriftDetector) Calibrate(achieved []float64, demands [][]float64) error {
	if len(achieved) != len(demands) || len(achieved) == 0 {
		return fmt.Errorf("figret: calibration needs matching non-empty series")
	}
	var sum float64
	var n int
	for i, m := range achieved {
		if r, ok := d.ratio(m, demands[i]); ok {
			sum += r
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("figret: no usable calibration samples")
	}
	d.baseline = sum / float64(n)
	d.ewma = d.baseline
	d.calibrated = true
	d.over = 0
	return nil
}

func (d *DriftDetector) ratio(achieved float64, demand []float64) (float64, bool) {
	lb := d.LowerBound(demand)
	if lb <= 0 || achieved <= 0 {
		return 0, false
	}
	return achieved / lb, true
}

// Observe feeds one deployment interval and reports whether retraining is
// advised. It returns an error before calibration.
func (d *DriftDetector) Observe(achievedMLU float64, demand []float64) (retrain bool, err error) {
	if !d.calibrated {
		return false, fmt.Errorf("figret: detector not calibrated")
	}
	r, ok := d.ratio(achievedMLU, demand)
	if !ok {
		return false, nil
	}
	d.ewma = (1-d.Alpha)*d.ewma + d.Alpha*r
	// Only sustained degradation triggers: the instantaneous ratio must
	// exceed the threshold Patience times in a row AND the smoothed ratio
	// must agree. An isolated burst inflates the EWMA briefly but resets
	// the consecutive counter immediately.
	if r > d.baseline*d.Threshold {
		d.over++
	} else {
		d.over = 0
	}
	return d.over >= d.Patience && d.ewma > d.baseline*d.Threshold, nil
}

// Status exposes the current smoothed ratio and the calibration baseline.
func (d *DriftDetector) Status() (ewma, baseline float64, calibrated bool) {
	return d.ewma, d.baseline, d.calibrated
}
