// Package figret implements the paper's primary contribution: a deep-
// learning TE scheme that maps a history window of demand matrices directly
// to a TE configuration, trained with the burst-aware loss
//
//	L(R_t, D_t) = MLU(R_t, D_t) + γ · Σ_{s,d} σ²_sd · S^max_sd(R_t)
//
// (Equations 7 and 8). The first term teaches the network to minimize the
// expected MLU of the upcoming demand; the second imposes variance-weighted
// path-sensitivity pressure, yielding fine-grained robustness: bursty SD
// pairs (large historical variance σ²_sd) are pushed toward low-sensitivity
// (spread, high-capacity) path allocations while stable pairs are left free
// to use their best paths.
//
// Setting γ = 0 recovers DOTE (Perry et al., NSDI'23), which is exactly how
// the DOTE baseline is built in this repository.
package figret

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"figret/internal/nn"
	"figret/internal/te"
	"figret/internal/traffic"
)

// Config holds FIGRET's hyperparameters. Zero values select the paper's
// defaults where the paper specifies them.
type Config struct {
	// H is the history-window length (number of past demand matrices fed to
	// the DNN). Default 12, the paper's evaluation setting.
	H int
	// Gamma weighs the robustness loss term L2. 0 disables it (DOTE).
	Gamma float64
	// Hidden lists hidden-layer widths. Default: five layers of 128
	// (Appendix D.4).
	Hidden []int
	// LR is the Adam learning rate. Default 1e-3.
	LR float64
	// Epochs is the number of training passes. Default 15.
	Epochs int
	// Seed drives weight initialization and sample shuffling.
	Seed int64
	// BetaRel is the smooth-max sharpness used when differentiating the MLU
	// term (see internal/solver). Default 30.
	BetaRel float64
	// BatchSize is the minibatch size of the batched training engine: each
	// Adam step consumes the summed gradients of this many samples,
	// evaluated as one [B][In] matrix pass through the network (default 1,
	// per-sample updates as in the paper's protocol; larger batches trade
	// update frequency for gradient smoothness and throughput). For any
	// fixed BatchSize the trajectory is bitwise identical to sequential
	// per-sample evaluation with gradient accumulation (TrainSequential).
	BatchSize int
	// TrainWorkers sizes the data-parallel training worker pool: minibatch
	// rows are sharded across workers and the per-worker gradients are
	// combined by a fixed-order tree reduction, so the loss trajectory and
	// the trained weights are bitwise identical for every value (DESIGN.md
	// §10). 0 (the default) selects GOMAXPROCS; 1 trains single-threaded.
	// Excluded from model serialization: it is an execution knob of the
	// machine that trains, not a property of the trained model — saved
	// models must be byte-identical for any worker count.
	TrainWorkers int `json:"-"`
	// MacroBatch is the number of micro-batches of BatchSize samples whose
	// gradients accumulate before each Adam step (default 1: one step per
	// minibatch). K micro-batches keep the per-pass working set at
	// BatchSize rows while stepping on K·BatchSize summed gradients; when
	// BatchSize is a multiple of nn.GradShardRows the trajectory is
	// bitwise identical to a flat batch of K·BatchSize.
	MacroBatch int
	// LRDecay multiplies the learning rate after every epoch (default 1:
	// constant rate). Values slightly below 1 (e.g. 0.95) stabilize the
	// final epochs on bursty traces.
	LRDecay float64
	// CoarseGrained replaces the per-pair variance weights of the L2 term
	// with a uniform weight of 1 — the coarse-grained robustness of
	// desensitization-based TE, kept as an ablation of the paper's central
	// fine-grained design choice.
	CoarseGrained bool
	// LatencyWeight enables the §6 latency extension: an additional loss
	// term penalizing demand carried on stretched (longer-than-shortest)
	// paths, λ · Σ_p r_p · stretch_p · d_pair/Σd, where stretch_p is the
	// path's extra hop count over the pair's shortest candidate. 0 disables
	// it. Like Gamma it is made dimensionless via LossScale.
	LatencyWeight float64
	// SelfTarget switches the training objective to TEAL-style per-demand
	// optimization: the input window ends at D_t (inclusive) and the loss is
	// evaluated against that same D_t. The default (false) is the
	// FIGRET/DOTE protocol: the window ends at D_{t-1} and the loss is
	// evaluated against the unseen D_t.
	SelfTarget bool
}

func (c Config) withDefaults() Config {
	if c.H == 0 {
		c.H = 12
	}
	if c.Hidden == nil {
		c.Hidden = []int{128, 128, 128, 128, 128}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 15
	}
	if c.BetaRel == 0 {
		c.BetaRel = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.MacroBatch <= 0 {
		c.MacroBatch = 1
	}
	if c.LRDecay == 0 {
		c.LRDecay = 1
	}
	return c
}

// Model is a trained (or trainable) FIGRET instance bound to a path set.
type Model struct {
	PS  *te.PathSet
	Cfg Config
	Net *nn.MLP

	// VarWeights are the normalized per-pair demand variances measured on
	// the training trace (σ²_sd of Eq. 8, scaled to [0,1]).
	VarWeights []float64
	// Scale normalizes DNN inputs: demands are divided by Scale before the
	// forward pass. Set from the training trace's mean demand.
	Scale float64
	// LossScale makes Gamma dimensionless: the L2 term is multiplied by the
	// training trace's typical MLU (uniform-config average), so the two loss
	// terms stay comparable regardless of the trace's demand units.
	LossScale float64

	// stretch[p] is path p's hop count minus its pair's minimum hop count,
	// used by the latency loss term. Derived from the path set.
	stretch []float64
}

// New constructs an untrained model for ps under cfg.
func New(ps *te.PathSet, cfg Config) *Model {
	cfg = cfg.withDefaults()
	in := cfg.H * ps.Pairs.Count()
	sizes := append([]int{in}, cfg.Hidden...)
	sizes = append(sizes, ps.NumPaths())
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Model{
		PS:         ps,
		Cfg:        cfg,
		Net:        nn.NewMLP(sizes, nn.ReLU, nn.Sigmoid, rng),
		VarWeights: make([]float64, ps.Pairs.Count()),
		Scale:      1,
		LossScale:  1,
		stretch:    pathStretch(ps),
	}
}

// pathStretch returns each path's extra hop count over its pair's shortest
// candidate path.
func pathStretch(ps *te.PathSet) []float64 {
	out := make([]float64, ps.NumPaths())
	for _, pp := range ps.PairPaths {
		min := len(ps.Paths[pp[0]])
		for _, p := range pp {
			if len(ps.Paths[p]) < min {
				min = len(ps.Paths[p])
			}
		}
		for _, p := range pp {
			out[p] = float64(len(ps.Paths[p]) - min)
		}
	}
	return out
}

// NewDOTE constructs the DOTE baseline: identical architecture with the
// robustness term disabled.
func NewDOTE(ps *te.PathSet, cfg Config) *Model {
	cfg.Gamma = 0
	return New(ps, cfg)
}

// TrainStats reports per-epoch averages of the loss components.
type TrainStats struct {
	EpochLoss []float64 // total loss L1 + γ·L2
	EpochMLU  []float64 // L1 alone (hard max)
}

// fitTrace fits input normalization, variance weights and the loss scale
// on the training trace, and validates trace/model compatibility.
func (m *Model) fitTrace(tr *traffic.Trace) error {
	if tr.Pairs.Count() != m.PS.Pairs.Count() {
		return fmt.Errorf("figret: trace has %d pairs, model %d", tr.Pairs.Count(), m.PS.Pairs.Count())
	}
	if tr.Len() <= m.Cfg.H {
		return fmt.Errorf("figret: trace length %d too short for window %d", tr.Len(), m.Cfg.H)
	}
	m.Scale = meanDemand(tr)
	if m.Scale <= 0 {
		m.Scale = 1
	}
	vars := tr.Variances()
	maxV := 0.0
	for _, v := range vars {
		if v > maxV {
			maxV = v
		}
	}
	for i, v := range vars {
		if maxV > 0 {
			m.VarWeights[i] = v / maxV
		} else {
			m.VarWeights[i] = 0
		}
	}
	if m.Cfg.CoarseGrained {
		for i := range m.VarWeights {
			m.VarWeights[i] = 1
		}
	}
	m.LossScale = typicalMLU(m.PS, tr)
	return nil
}

// sampleOrder returns the shuffled-in-place training target order for tr.
// With SelfTarget the window for target t ends at t itself, so targets
// start at H-1; otherwise the window is the H snapshots before t.
func (m *Model) sampleOrder(tr *traffic.Trace) []int {
	first := m.Cfg.H
	if m.Cfg.SelfTarget {
		first = m.Cfg.H - 1
	}
	order := make([]int, tr.Len()-first)
	for i := range order {
		order[i] = i + first
	}
	return order
}

// Train fits the model on tr under the protocol of §4.3 — for every t in
// [H, len), the window {D_{t-H}..D_{t-1}} is the input and the revealed
// D_t scores the output configuration — executed by the deterministic
// data-parallel engine (nn.DataParallel, DESIGN.md §10): each shuffled
// minibatch of Cfg.BatchSize windows is assembled into a row-major
// [B][H·K] matrix in scaled form (scaledWindowInto, single pass, no
// allocation), cut into shards of nn.GradShardRows rows that
// Cfg.TrainWorkers workers forward, score (lossAndGrad on per-lane
// lossScratch state) and backpropagate independently, and the per-lane
// gradients are tree-reduced in fixed order before each Adam step. With
// Cfg.MacroBatch > 1, that many micro-batches accumulate before a step.
// The loss trajectory and final weights are bitwise identical for every
// worker count, and bitwise identical to TrainSequential at every
// (BatchSize, MacroBatch).
func (m *Model) Train(tr *traffic.Trace) (TrainStats, error) {
	if err := m.fitTrace(tr); err != nil {
		return TrainStats{}, err
	}
	batch := m.Cfg.BatchSize
	macro := m.Cfg.MacroBatch
	in := m.Cfg.H * m.PS.Pairs.Count()

	opt := nn.NewAdam(m.Cfg.LR)
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	order := m.sampleOrder(tr)
	if batch > len(order) {
		batch = len(order)
	}

	eng := nn.NewDataParallel(m.Net, m.Cfg.TrainWorkers)
	xb := make([]float64, batch*in)  // minibatch input matrix [B][H·K]
	losses := make([]float64, batch) // per-sample losses, summed in order
	mlus := make([]float64, batch)
	// Loss-evaluation state is lane-indexed: the engine guarantees
	// concurrent score calls carry distinct lanes, so each entry has one
	// user at a time. Allocated on first use per lane.
	var pool [nn.MaxGradLanes]*lossScratch
	var mb []int // targets of the micro-batch currently being scored
	score := func(lane int, y []float64, r0, r1 int, dy []float64) {
		ls := pool[lane]
		if ls == nil {
			ls = newLossScratch(m.PS)
			pool[lane] = ls
		}
		P := m.PS.NumPaths()
		for bi := r0; bi < r1; bi++ {
			yr := y[(bi-r0)*P : (bi-r0+1)*P]
			r := normalizePerPairInto(m.PS, yr, ls)
			loss, mlu, gr := m.lossAndGrad(r, tr.At(mb[bi]), ls)
			normalizeGradInto(m.PS, gr, ls, dy[(bi-r0)*P:(bi-r0+1)*P])
			losses[bi], mlus[bi] = loss, mlu
		}
	}

	stats := TrainStats{}
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumLoss, sumMLU float64
		micros := 0
		for start := 0; start < len(order); start += batch {
			bs := batch
			if rem := len(order) - start; bs > rem {
				bs = rem
			}
			mb = order[start : start+bs]
			for bi, t := range mb {
				wt := t
				if m.Cfg.SelfTarget {
					wt = t + 1
				}
				m.scaledWindowInto(xb[bi*in:(bi+1)*in], tr, wt)
			}
			eng.Accumulate(xb[:bs*in], bs, score)
			micros++
			// An epoch always ends with a step, even on a short macro —
			// gradients never carry across epochs (matches the historical
			// trailing partial step).
			if micros == macro || start+bs == len(order) {
				eng.Reduce()
				opt.Step(m.Net)
				micros = 0
			}
			for bi := 0; bi < bs; bi++ {
				sumLoss += losses[bi]
				sumMLU += mlus[bi]
			}
		}
		opt.LR *= m.Cfg.LRDecay
		n := float64(len(order))
		stats.EpochLoss = append(stats.EpochLoss, sumLoss/n)
		stats.EpochMLU = append(stats.EpochMLU, sumMLU/n)
	}
	return stats, nil
}

// TrainSequential is the single-sample reference trainer: per-sample
// forward/backward, gradients folded through the same canonical shard
// reduction as the data-parallel engine — partials of nn.GradShardRows
// consecutive samples land in lane (shard mod nn.MaxGradLanes) and are
// tree-reduced in fixed order before each Adam step (every BatchSize
// samples, times MacroBatch). It is retained as the equivalence oracle
// for Train (identical seeds must produce bitwise-identical loss
// trajectories) and as the baseline the BenchmarkTrainStep
// micro-benchmarks compare the data-parallel engine against.
func (m *Model) TrainSequential(tr *traffic.Trace) (TrainStats, error) {
	if err := m.fitTrace(tr); err != nil {
		return TrainStats{}, err
	}
	opt := nn.NewAdam(m.Cfg.LR)
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 1))
	order := m.sampleOrder(tr)
	stats := TrainStats{}
	scratch := newLossScratch(m.PS)
	batch := m.Cfg.BatchSize
	if batch > len(order) {
		batch = len(order)
	}
	macro := m.Cfg.MacroBatch

	// Canonical shard reduction, mirroring nn.DataParallel: the network's
	// own gradient buffers accumulate one shard at a time; each closed
	// shard is moved into its lane slot (first shard of a lane copies,
	// later shards add — one rounded add per element), and lanes [0,used)
	// are tree-reduced back into the network before each optimizer step.
	netg := m.Net.GradView()
	var lanes [nn.MaxGradLanes]*nn.Grads
	var dirty [nn.MaxGradLanes]bool
	shards := 0    // shards closed since the last step
	shardRows := 0 // samples in the currently open shard
	closeShard := func() {
		if shardRows == 0 {
			return
		}
		lane := shards % nn.MaxGradLanes
		if lanes[lane] == nil {
			lanes[lane] = nn.NewGrads(m.Net)
		}
		if dirty[lane] {
			lanes[lane].Add(netg)
		} else {
			lanes[lane].CopyFrom(netg)
			dirty[lane] = true
		}
		m.Net.ZeroGrads()
		shards++
		shardRows = 0
	}
	step := func() {
		closeShard()
		used := shards
		if used > nn.MaxGradLanes {
			used = nn.MaxGradLanes
		}
		if used > 0 {
			nn.TreeReduce(lanes[:used])
			netg.Add(lanes[0])
			for i := 0; i < used; i++ {
				lanes[i].Zero()
				dirty[i] = false
			}
		}
		shards = 0
		opt.Step(m.Net)
	}

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumLoss, sumMLU float64
		pending := 0
		micros := 0
		for _, t := range order {
			wt := t
			if m.Cfg.SelfTarget {
				wt = t + 1
			}
			x := m.normalizedWindow(tr, wt)
			y := m.Net.Forward(x)
			r, dRtoY := normalizePerPair(m.PS, y)
			loss, mlu, gr := m.lossAndGrad(r, tr.At(t), scratch)
			dy := dRtoY(gr)
			m.Net.Backward(dy)
			shardRows++
			if shardRows == nn.GradShardRows {
				closeShard()
			}
			pending++
			if pending == batch {
				closeShard()
				pending = 0
				micros++
				if micros == macro {
					step()
					micros = 0
				}
			}
			sumLoss += loss
			sumMLU += mlu
		}
		if pending > 0 || micros > 0 {
			step()
		}
		opt.LR *= m.Cfg.LRDecay
		n := float64(len(order))
		stats.EpochLoss = append(stats.EpochLoss, sumLoss/n)
		stats.EpochMLU = append(stats.EpochMLU, sumMLU/n)
	}
	return stats, nil
}

// Predict maps a raw (unscaled) history window to a feasible TE
// configuration. The window layout is H consecutive snapshots, oldest first,
// as produced by traffic.Trace.Window.
func (m *Model) Predict(window []float64) (*te.Config, error) {
	want := m.Cfg.H * m.PS.Pairs.Count()
	if len(window) != want {
		return nil, fmt.Errorf("figret: window has %d entries, want %d", len(window), want)
	}
	x := make([]float64, len(window))
	scaleInto(x, window, 1/m.Scale)
	y := m.Net.Forward(x)
	cfg := te.NewConfig(m.PS)
	copy(cfg.R, y)
	cfg.Normalize()
	return cfg, nil
}

// PredictAt is a convenience wrapper: configuration for snapshot t of tr
// from the window ending at t-1.
func (m *Model) PredictAt(tr *traffic.Trace, t int) (*te.Config, error) {
	return m.Predict(tr.Window(t, m.Cfg.H))
}

// Predictor is a goroutine-confined inference context for a Model. The
// Model's own Forward path caches activations inside the network layers,
// so concurrent Predict/PredictAt calls on one Model race; a Predictor
// owns every buffer the forward pass touches (an nn.Scratch plus an input
// window), so one Predictor per goroutine evaluates the same trained
// weights in parallel safely and without per-call allocations. Outputs
// are bitwise identical to Model.Predict (the batch-1 kernel reproduces
// the sequential kernel exactly; see internal/nn). A Predictor must not
// be shared between goroutines; the Model's weights must not be trained
// while Predictors are in flight.
type Predictor struct {
	m       *Model
	scratch *nn.Scratch
	x       []float64
}

// NewPredictor returns an inference context for m.
func (m *Model) NewPredictor() *Predictor {
	return &Predictor{
		m:       m,
		scratch: nn.NewScratch(m.Net, 1),
		x:       make([]float64, m.Cfg.H*m.PS.Pairs.Count()),
	}
}

// Predict maps a raw history window to a TE configuration, exactly as
// Model.Predict does.
func (p *Predictor) Predict(window []float64) (*te.Config, error) {
	if len(window) != len(p.x) {
		return nil, fmt.Errorf("figret: window has %d entries, want %d", len(window), len(p.x))
	}
	scaleInto(p.x, window, 1/p.m.Scale)
	return p.forward(), nil
}

// PredictAt returns the configuration for snapshot t of tr from the
// window ending at t-1, exactly as Model.PredictAt does.
func (p *Predictor) PredictAt(tr *traffic.Trace, t int) (*te.Config, error) {
	if t < p.m.Cfg.H || t > tr.Len() {
		return nil, fmt.Errorf("figret: snapshot %d outside predictable range [%d,%d]", t, p.m.Cfg.H, tr.Len())
	}
	p.m.scaledWindowInto(p.x, tr, t)
	return p.forward(), nil
}

// forward runs the batch-1 forward pass on the already-scaled p.x using
// the predictor-owned scratch and converts the outputs to a feasible
// configuration.
func (p *Predictor) forward() *te.Config {
	y := p.m.Net.BatchForward(p.x, 1, p.scratch)
	cfg := te.NewConfig(p.m.PS)
	copy(cfg.R, y)
	cfg.Normalize()
	return cfg
}

// scaleInto writes dst[i] = src[i]·f in one pass — the shared fusion of
// copy and input scaling used by window assembly and inference. dst must
// be at least len(src) long; exactly len(src) entries are written.
func scaleInto(dst, src []float64, f float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = v * f
	}
}

// scaledWindowInto assembles the H-snapshot window ending before t (the
// layout of traffic.Trace.WindowInto) directly in input-scaled form: each
// snapshot is copied and divided by Scale in a single fused pass, so
// minibatch assembly touches every row of xb exactly once.
func (m *Model) scaledWindowInto(dst []float64, tr *traffic.Trace, t int) {
	H := m.Cfg.H
	if t < H || t > tr.Len() {
		panic(fmt.Sprintf("figret: window t=%d H=%d len=%d", t, H, tr.Len()))
	}
	k := tr.Pairs.Count()
	if len(dst) != H*k {
		panic(fmt.Sprintf("figret: window dst has %d entries, want %d", len(dst), H*k))
	}
	inv := 1 / m.Scale
	for i := 0; i < H; i++ {
		scaleInto(dst[i*k:(i+1)*k], tr.At(t-H+i), inv)
	}
}

// normalizedWindow returns the scaled input vector for snapshot t.
func (m *Model) normalizedWindow(tr *traffic.Trace, t int) []float64 {
	w := make([]float64, m.Cfg.H*tr.Pairs.Count())
	m.scaledWindowInto(w, tr, t)
	return w
}

// lossScratch holds every reusable buffer one loss-evaluation worker
// needs; the batched trainer keeps a pool of these so minibatch samples
// can be scored in parallel without any per-step allocation.
type lossScratch struct {
	flows []float64
	util  []float64
	w     []float64
	gr    []float64
	r     []float64 // per-pair-normalized split ratios
	sums  []float64 // per-pair raw-output sums (for the backward map)
}

func newLossScratch(ps *te.PathSet) *lossScratch {
	return &lossScratch{
		flows: make([]float64, ps.G.NumEdges()),
		util:  make([]float64, ps.G.NumEdges()),
		w:     make([]float64, ps.G.NumEdges()),
		gr:    make([]float64, ps.NumPaths()),
		r:     make([]float64, ps.NumPaths()),
		sums:  make([]float64, ps.Pairs.Count()),
	}
}

// normalizePerPairInto is the allocation-free counterpart of
// normalizePerPair: it writes the feasible ratios into ls.r (recording the
// pair sums in ls.sums for normalizeGradInto) and returns ls.r. The math
// matches normalizePerPair operation for operation.
func normalizePerPairInto(ps *te.PathSet, y []float64, ls *lossScratch) []float64 {
	r, sums := ls.r, ls.sums
	for pi, pp := range ps.PairPaths {
		var s float64
		for _, p := range pp {
			s += y[p]
		}
		sums[pi] = s
		if s < 1e-12 {
			w := 1 / float64(len(pp))
			for _, p := range pp {
				r[p] = w
			}
			continue
		}
		inv := 1 / s
		for _, p := range pp {
			r[p] = y[p] * inv
		}
	}
	return r
}

// normalizeGradInto maps dL/dr back to dL/dy through the per-pair
// normalization recorded by the preceding normalizePerPairInto on ls,
// writing into dy (every entry is set, so dy may hold stale values).
func normalizeGradInto(ps *te.PathSet, gr []float64, ls *lossScratch, dy []float64) {
	r, sums := ls.r, ls.sums
	for pi, pp := range ps.PairPaths {
		s := sums[pi]
		if s < 1e-12 {
			for _, p := range pp {
				dy[p] = 0 // degenerate pair: no gradient
			}
			continue
		}
		var mean float64
		for _, p := range pp {
			mean += r[p] * gr[p]
		}
		inv := 1 / s
		for _, p := range pp {
			dy[p] = inv * (gr[p] - mean)
		}
	}
}

// lossAndGrad evaluates L = L1 + γ·L2 at split ratios r against the revealed
// demand d, returning (total loss, hard-max MLU, dL/dr).
//
// L1 uses the log-sum-exp smooth max for a dense gradient; the reported MLU
// is the exact hard max. L2 = Σ_sd σ̂²_sd · max_{p∈sd} r_p/Ĉ_p with the
// subgradient routed through each pair's arg-max path; Ĉ_p is the path
// capacity normalized by the topology's minimum edge capacity.
func (m *Model) lossAndGrad(r, d []float64, s *lossScratch) (loss, mlu float64, gr []float64) {
	ps := m.PS
	caps := ps.EdgeCaps()
	ps.EdgeFlows(d, r, s.flows)
	maxU := 0.0
	for e := range s.flows {
		s.util[e] = s.flows[e] / caps[e]
		if s.util[e] > maxU {
			maxU = s.util[e]
		}
	}
	for p := range s.gr {
		s.gr[p] = 0
	}
	mlu = maxU
	loss = maxU
	if maxU > 0 {
		// Smooth-max weights, pre-divided by edge capacity so the CSR
		// gradient sweep below is a single multiply-accumulate per edge.
		beta := m.Cfg.BetaRel / maxU
		var sumW float64
		for e := range s.util {
			s.w[e] = math.Exp(beta * (s.util[e] - maxU))
			sumW += s.w[e]
		}
		inv := 1 / sumW
		for e := range s.w {
			s.w[e] = s.w[e] * inv / caps[e]
		}
		ids, start := ps.EdgeCSR()
		for p := range s.gr {
			dp := d[ps.PairOf[p]]
			if dp == 0 {
				continue
			}
			var g float64
			for _, e := range ids[start[p]:start[p+1]] {
				g += s.w[e] * dp
			}
			s.gr[p] = g
		}
	}
	if m.Cfg.Gamma > 0 {
		gamma := m.Cfg.Gamma * m.LossScale
		minCap := ps.G.MinCapacity()
		if minCap <= 0 {
			minCap = 1
		}
		// The Eq. 8 sum is averaged over pairs so that γ's scale is
		// topology-independent: the raw sum grows with |V|², which would
		// drown the MLU term on large fabrics for any fixed γ.
		invK := 1 / float64(ps.Pairs.Count())
		var l2 float64
		for pi, pp := range ps.PairPaths {
			wv := m.VarWeights[pi]
			if wv == 0 {
				continue
			}
			bestP, bestS := -1, -1.0
			for _, p := range pp {
				if sp := r[p] * minCap / ps.Cap[p]; sp > bestS {
					bestS, bestP = sp, p
				}
			}
			if bestP >= 0 {
				l2 += wv * bestS * invK
				s.gr[bestP] += gamma * wv * invK * minCap / ps.Cap[bestP]
			}
		}
		loss += gamma * l2
	}
	if m.Cfg.LatencyWeight > 0 {
		lw := m.Cfg.LatencyWeight * m.LossScale
		var total float64
		for _, v := range d {
			total += v
		}
		if total > 0 {
			var l3 float64
			inv := 1 / total
			for p, st := range m.stretch {
				if st == 0 {
					continue
				}
				share := d[ps.PairOf[p]] * inv
				if share == 0 {
					continue
				}
				l3 += r[p] * st * share
				s.gr[p] += lw * st * share
			}
			loss += lw * l3
		}
	}
	return loss, mlu, s.gr
}

// normalizePerPair converts raw sigmoid outputs y to feasible ratios r and
// returns a closure mapping dL/dr back to dL/dy through the normalization
// r_p = y_p / Σ_{q∈pair} y_q. Pairs whose outputs sum to ~0 fall back to a
// uniform split with zero gradient.
func normalizePerPair(ps *te.PathSet, y []float64) (r []float64, backward func(gr []float64) []float64) {
	P := ps.NumPaths()
	r = make([]float64, P)
	sums := make([]float64, ps.Pairs.Count())
	for pi, pp := range ps.PairPaths {
		var s float64
		for _, p := range pp {
			s += y[p]
		}
		sums[pi] = s
		if s < 1e-12 {
			w := 1 / float64(len(pp))
			for _, p := range pp {
				r[p] = w
			}
			continue
		}
		inv := 1 / s
		for _, p := range pp {
			r[p] = y[p] * inv
		}
	}
	backward = func(gr []float64) []float64 {
		dy := make([]float64, P)
		for pi, pp := range ps.PairPaths {
			s := sums[pi]
			if s < 1e-12 {
				continue // degenerate pair: no gradient
			}
			var mean float64
			for _, p := range pp {
				mean += r[p] * gr[p]
			}
			inv := 1 / s
			for _, p := range pp {
				dy[p] = inv * (gr[p] - mean)
			}
		}
		return dy
	}
	return r, backward
}

func meanDemand(tr *traffic.Trace) float64 {
	var sum float64
	var n int
	for _, s := range tr.Snapshots {
		for _, v := range s {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// typicalMLU estimates the trace's MLU magnitude: the uniform-split MLU
// averaged over up to 32 evenly spaced snapshots. Used to scale the L2 loss
// term so Gamma is independent of demand units.
func typicalMLU(ps *te.PathSet, tr *traffic.Trace) float64 {
	cfg := te.UniformConfig(ps)
	step := tr.Len() / 32
	if step == 0 {
		step = 1
	}
	var sum float64
	var n int
	for t := 0; t < tr.Len(); t += step {
		m, _ := ps.MLU(tr.At(t), cfg.R)
		sum += m
		n++
	}
	if n == 0 || sum == 0 {
		return 1
	}
	return sum / float64(n)
}

// modelJSON is the serialization schema for Save/Load.
type modelJSON struct {
	Cfg        Config    `json:"cfg"`
	Net        *nn.MLP   `json:"net"`
	VarWeights []float64 `json:"var_weights"`
	Scale      float64   `json:"scale"`
	LossScale  float64   `json:"loss_scale"`
}

// MarshalJSON serializes hyperparameters, weights and normalization state.
// The path set is not serialized; Load requires the same topology.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{Cfg: m.Cfg, Net: m.Net, VarWeights: m.VarWeights, Scale: m.Scale, LossScale: m.LossScale})
}

// LoadModel restores a model serialized by MarshalJSON onto ps.
func LoadModel(ps *te.PathSet, data []byte) (*Model, error) {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	if j.Net == nil || len(j.VarWeights) != ps.Pairs.Count() {
		return nil, fmt.Errorf("figret: serialized model does not match topology")
	}
	out := j.Net.Layers[len(j.Net.Layers)-1].Out
	if out != ps.NumPaths() {
		return nil, fmt.Errorf("figret: model outputs %d paths, topology has %d", out, ps.NumPaths())
	}
	if j.LossScale == 0 {
		j.LossScale = 1
	}
	return &Model{PS: ps, Cfg: j.Cfg, Net: j.Net, VarWeights: j.VarWeights, Scale: j.Scale, LossScale: j.LossScale, stretch: pathStretch(ps)}, nil
}
