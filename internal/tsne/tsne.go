// Package tsne implements t-distributed Stochastic Neighbor Embedding
// (van der Maaten & Hinton 2008; the paper cites the original SNE of Hinton
// & Roweis 2002) — the dimensionality-reduction method Appendix F uses to
// visualize how traffic demands drift over time (Figures 16 and 17).
//
// This is the exact O(n²) variant with perplexity-calibrated Gaussian input
// affinities, early exaggeration, and momentum gradient descent — sufficient
// for the hundreds-of-snapshots embeddings the experiments need.
package tsne

import (
	"fmt"
	"math"
	"math/rand"
)

// Options configures Run. Zero values select standard defaults.
type Options struct {
	// Perplexity is the effective neighbor count (default 30, clamped to
	// (n-1)/3 for small inputs).
	Perplexity float64
	// Iters is the number of gradient-descent iterations (default 400).
	Iters int
	// LearningRate is the gradient step (default 100).
	LearningRate float64
	// Seed drives the initial embedding.
	Seed int64
	// OutDims is the embedding dimensionality (default 2).
	OutDims int
}

func (o Options) withDefaults(n int) Options {
	if o.Perplexity == 0 {
		o.Perplexity = 30
	}
	if max := float64(n-1) / 3; o.Perplexity > max && max >= 2 {
		o.Perplexity = max
	}
	if o.Iters == 0 {
		o.Iters = 400
	}
	if o.LearningRate == 0 {
		o.LearningRate = 100
	}
	if o.OutDims == 0 {
		o.OutDims = 2
	}
	return o
}

// Run embeds the n input vectors xs (each the same length) into OutDims
// dimensions and returns an n×OutDims matrix.
func Run(xs [][]float64, opt Options) ([][]float64, error) {
	n := len(xs)
	if n < 4 {
		return nil, fmt.Errorf("tsne: need at least 4 points, got %d", n)
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("tsne: point %d has %d dims, want %d", i, len(x), dim)
		}
	}
	opt = opt.withDefaults(n)

	P := inputAffinities(xs, opt.Perplexity)
	// Symmetrize and normalize.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (P[i*n+j] + P[j*n+i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			P[i*n+j] = v
			P[j*n+i] = v
		}
		P[i*n+i] = 1e-12
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	d := opt.OutDims
	y := make([]float64, n*d)
	for i := range y {
		y[i] = rng.NormFloat64() * 1e-2
	}
	vel := make([]float64, n*d)
	grad := make([]float64, n*d)
	q := make([]float64, n*n)

	exaggeration := 4.0
	for it := 0; it < opt.Iters; it++ {
		if it == opt.Iters/4 {
			exaggeration = 1
		}
		// Student-t output affinities.
		var qSum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var dist float64
				for k := 0; k < d; k++ {
					diff := y[i*d+k] - y[j*d+k]
					dist += diff * diff
				}
				v := 1 / (1 + dist)
				q[i*n+j] = v
				q[j*n+i] = v
				qSum += 2 * v
			}
		}
		if qSum < 1e-12 {
			qSum = 1e-12
		}
		// Gradient: 4 Σ_j (p_ij − q_ij) (y_i − y_j) / (1 + |y_i−y_j|²).
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				pij := P[i*n+j] * exaggeration
				qij := q[i*n+j] / qSum
				mult := 4 * (pij - qij) * q[i*n+j]
				for k := 0; k < d; k++ {
					grad[i*d+k] += mult * (y[i*d+k] - y[j*d+k])
				}
			}
		}
		momentum := 0.5
		if it > 100 {
			momentum = 0.8
		}
		for i := range y {
			vel[i] = momentum*vel[i] - opt.LearningRate*grad[i]
			y[i] += vel[i]
		}
		// Recenter.
		for k := 0; k < d; k++ {
			var mean float64
			for i := 0; i < n; i++ {
				mean += y[i*d+k]
			}
			mean /= float64(n)
			for i := 0; i < n; i++ {
				y[i*d+k] -= mean
			}
		}
	}

	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), y[i*d:(i+1)*d]...)
	}
	return out, nil
}

// inputAffinities computes row-conditional Gaussian affinities p_{j|i} with
// per-point bandwidths calibrated to the target perplexity via binary search
// on beta = 1/(2σ²).
func inputAffinities(xs [][]float64, perplexity float64) []float64 {
	n := len(xs)
	d2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var dist float64
			for k := range xs[i] {
				diff := xs[i][k] - xs[j][k]
				dist += diff * diff
			}
			d2[i*n+j] = dist
			d2[j*n+i] = dist
		}
	}
	logU := math.Log(perplexity)
	P := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		beta := 1.0
		lo, hi := 0.0, math.Inf(1)
		for iter := 0; iter < 50; iter++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2[i*n+j] * beta)
				sum += row[j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			// Shannon entropy of the row distribution.
			var H float64
			for j := 0; j < n; j++ {
				if j == i || row[j] == 0 {
					continue
				}
				pj := row[j] / sum
				H -= pj * math.Log(pj)
			}
			diff := H - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				// Too entropic: narrow the Gaussian.
				lo = beta
				if math.IsInf(hi, 1) {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			P[i*n+j] = row[j] / sum
		}
	}
	return P
}

// PairwiseSpread returns the mean pairwise Euclidean distance of an
// embedding — the scalar the drift experiment compares across time quarters
// ("ToR-level data is more dispersed" in Appendix F).
func PairwiseSpread(ys [][]float64) float64 {
	n := len(ys)
	if n < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d float64
			for k := range ys[i] {
				diff := ys[i][k] - ys[j][k]
				d += diff * diff
			}
			sum += math.Sqrt(d)
			cnt++
		}
	}
	return sum / float64(cnt)
}

// CentroidDistance returns the distance between the centroids of two point
// sets (used to quantify inter-quarter drift in the embedding space).
func CentroidDistance(a, b [][]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := len(a[0])
	ca := make([]float64, d)
	cb := make([]float64, d)
	for _, p := range a {
		for k := 0; k < d; k++ {
			ca[k] += p[k]
		}
	}
	for _, p := range b {
		for k := 0; k < d; k++ {
			cb[k] += p[k]
		}
	}
	var dist float64
	for k := 0; k < d; k++ {
		diff := ca[k]/float64(len(a)) - cb[k]/float64(len(b))
		dist += diff * diff
	}
	return math.Sqrt(dist)
}
