package tsne

import (
	"math"
	"math/rand"
	"testing"
)

// clusters builds two well-separated Gaussian blobs in 10 dimensions.
func clusters(n int, seed int64) (xs [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := make([]float64, 10)
		label := i % 2
		for k := range p {
			p[k] = rng.NormFloat64() * 0.3
			if label == 1 {
				p[k] += 8
			}
		}
		xs = append(xs, p)
		labels = append(labels, label)
	}
	return xs, labels
}

func TestRunSeparatesClusters(t *testing.T) {
	xs, labels := clusters(40, 1)
	ys, err := Run(xs, Options{Iters: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != len(xs) || len(ys[0]) != 2 {
		t.Fatalf("embedding shape %dx%d", len(ys), len(ys[0]))
	}
	// Within-cluster distances must be far smaller than between-cluster.
	var within, between float64
	var nw, nb int
	for i := range ys {
		for j := i + 1; j < len(ys); j++ {
			d := dist(ys[i], ys[j])
			if labels[i] == labels[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)
	if between < 2*within {
		t.Errorf("clusters not separated: within %v, between %v", within, between)
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestRunDeterministic(t *testing.T) {
	xs, _ := clusters(20, 2)
	a, err := Run(xs, Options{Iters: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(xs, Options{Iters: 100, Seed: 7})
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatal("same seed produced different embeddings")
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run([][]float64{{1}, {2}}, Options{}); err == nil {
		t.Error("too few points accepted")
	}
	bad := [][]float64{{1, 2}, {1}, {3, 4}, {5, 6}}
	if _, err := Run(bad, Options{}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestRunFiniteOutput(t *testing.T) {
	xs, _ := clusters(24, 3)
	ys, err := Run(xs, Options{Iters: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ys {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite embedding coordinate")
			}
		}
	}
	// Output is centered.
	for k := 0; k < 2; k++ {
		var mean float64
		for _, p := range ys {
			mean += p[k]
		}
		mean /= float64(len(ys))
		if math.Abs(mean) > 1e-6 {
			t.Errorf("dimension %d not centered: %v", k, mean)
		}
	}
}

func TestPerplexityCalibration(t *testing.T) {
	// Affinity rows must be valid distributions.
	xs, _ := clusters(16, 4)
	P := inputAffinities(xs, 5)
	n := len(xs)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := P[i*n+j]
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad affinity P[%d,%d]=%v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if P[i*n+i] != 0 {
			t.Fatalf("self affinity %v", P[i*n+i])
		}
	}
}

func TestPairwiseSpread(t *testing.T) {
	a := [][]float64{{0, 0}, {0, 1}}
	if s := PairwiseSpread(a); math.Abs(s-1) > 1e-12 {
		t.Errorf("spread = %v, want 1", s)
	}
	if s := PairwiseSpread(a[:1]); s != 0 {
		t.Errorf("single-point spread = %v", s)
	}
	// Spread grows with scale.
	b := [][]float64{{0, 0}, {0, 5}, {5, 0}}
	c := [][]float64{{0, 0}, {0, 1}, {1, 0}}
	if PairwiseSpread(b) <= PairwiseSpread(c) {
		t.Error("spread not monotone in scale")
	}
}

func TestCentroidDistance(t *testing.T) {
	a := [][]float64{{0, 0}, {2, 0}}
	b := [][]float64{{10, 0}, {12, 0}}
	if d := CentroidDistance(a, b); math.Abs(d-10) > 1e-12 {
		t.Errorf("centroid distance = %v, want 10", d)
	}
	if d := CentroidDistance(nil, b); d != 0 {
		t.Errorf("empty set distance = %v", d)
	}
}
