package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// testdataImportBase is the synthetic import-path prefix of the corpus
// packages.
const testdataImportBase = "figret/internal/analysis/testdata/src/"

// goldenSuites configures each analyzer for its corpus package: the
// same constructors as DefaultSuite, scoped to the testdata import path.
func goldenSuites() map[string]func(path string) *Suite {
	one := func(a *Analyzer) *Suite { return &Suite{Analyzers: []*Analyzer{a}} }
	return map[string]func(path string) *Suite{
		"detrange":  func(p string) *Suite { return one(NewDetRange([]string{p})) },
		"detsource": func(p string) *Suite { return one(NewDetSource([]string{p})) },
		"nilrecv": func(p string) *Suite {
			return one(NewNilRecv(map[string][]string{p: {"Counter", "Tracer"}}))
		},
		"viewsafe": func(p string) *Suite {
			return one(NewViewSafe([]ViewFunc{
				{Pkg: p, Recv: "Buf", Name: "View", Fields: []string{"Items"}},
				{Pkg: p, Name: "MakeView"},
			}))
		},
		"errwire": func(p string) *Suite { return one(NewErrWire(p)) },
	}
}

// TestGoldenDiagnostics runs every analyzer over its corpus package and
// diffs the produced diagnostics exactly against the // want
// expectations: every diagnostic must be expected, every expectation
// must fire, one-to-one per (file, line, check).
func TestGoldenDiagnostics(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	suites := goldenSuites()
	var checks []string
	for c := range suites {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, check := range checks {
		t.Run(check, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "analysis", "testdata", "src", check)
			path := testdataImportBase + check
			pkgs, err := loader.LoadDir(dir, path)
			if err != nil {
				t.Fatal(err)
			}
			diags := suites[check](path).Run(pkgs)
			wants := parseWants(t, pkgs)
			diffExact(t, diags, wants)
		})
	}
}

// want is one parsed expectation.
type want struct {
	file    string
	line    int
	check   string
	pattern *regexp.Regexp
	source  string
	matched bool
}

// wantToken matches one check:"regexp" token.
var wantToken = regexp.MustCompile(`([a-z]+):"((?:[^"\\]|\\.)*)"`)

// parseWants extracts // want expectations from the corpus sources. A
// comment has the form
//
//	// want [@±N] check:"regexp" [check:"regexp" ...]
//
// where the optional @±N offsets the expected line relative to the
// comment (for diagnostics that land on directive lines, which consume
// their whole source line).
func parseWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	seenFile := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, "// want ")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(line[idx+len("// want "):])
				offset := 0
				if strings.HasPrefix(rest, "@") {
					sp := strings.IndexByte(rest, ' ')
					if sp < 0 {
						t.Fatalf("%s:%d: malformed want offset %q", name, i+1, rest)
					}
					off, err := strconv.Atoi(rest[1:sp])
					if err != nil {
						t.Fatalf("%s:%d: malformed want offset %q: %v", name, i+1, rest, err)
					}
					offset = off
					rest = strings.TrimSpace(rest[sp+1:])
				}
				toks := wantToken.FindAllStringSubmatch(rest, -1)
				if len(toks) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", name, i+1, rest)
				}
				for _, tok := range toks {
					src, err := strconv.Unquote(`"` + tok[2] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, tok[2], err)
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, src, err)
					}
					wants = append(wants, &want{
						file: name, line: i + 1 + offset, check: tok[1],
						pattern: re, source: src,
					})
				}
			}
		}
	}
	return wants
}

// diffExact matches diagnostics against wants one-to-one and fails on
// any unmatched entry on either side.
func diffExact(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line || w.check != d.Check {
				continue
			}
			if !w.pattern.MatchString(d.Message) {
				t.Errorf("%s:%d: [%s] message %q does not match want %q",
					relFile(d.Pos.Filename), d.Pos.Line, d.Check, d.Message, w.source)
			}
			w.matched = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s:%d:%d: [%s] %s",
				relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: [%s] want %q fired nothing",
				relFile(w.file), w.line, w.check, w.source)
		}
	}
}

// relFile shortens a corpus path for failure output.
func relFile(name string) string {
	if i := strings.Index(name, "testdata"+string(filepath.Separator)); i >= 0 {
		return name[i:]
	}
	return name
}

// moduleRoot locates the repository root from the test's working
// directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
