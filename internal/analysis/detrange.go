package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewDetRange returns the detrange analyzer: no ranging over a map in
// the deterministic packages (scope, by import path). Go randomizes map
// iteration order, so any map range feeding numeric state — a float
// accumulation, an output ordering, an RNG consumption order — breaks
// the bitwise-determinism contracts of DESIGN.md §6/§10.
//
// The one recognized idiom is sorted key extraction: a range whose body
// does nothing but append the keys to a slice that is subsequently
// sorted (sort.Strings / sort.Ints / sort.Slice / slices.Sort / ... in
// the same function). Everything else needs a //figret:allow(detrange)
// with a reason arguing order-independence (e.g. an integer count).
func NewDetRange(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "detrange",
		Doc:  "no range over a map in the deterministic packages unless keys are extracted and sorted",
	}
	a.Run = func(pass *Pass) {
		if !pathIn(pass.Path, scope) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fn := funcBody(n)
				if fn == nil {
					return true
				}
				checkMapRanges(pass, fn)
				return true
			})
		}
	}
	return a
}

// funcBody returns the body of a function declaration or literal, or
// nil for other nodes.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRanges flags every map range in one function body (nested
// function literals are visited separately and skipped here, so each
// range is matched against the sorts of its own function).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	// Gather the function's own map ranges and sort calls.
	var ranges []*ast.RangeStmt
	var sorts []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			if t := pass.Info.Types[st.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					ranges = append(ranges, st)
				}
			}
		case *ast.CallExpr:
			if obj, arg := sortedSlice(pass.Info, st); obj != nil {
				sorts = append(sorts, sortCall{obj: obj, pos: st.Pos(), arg: arg})
			}
		}
		return true
	})
	for _, r := range ranges {
		if obj := keyExtraction(pass.Info, r); obj != nil {
			sorted := false
			for _, s := range sorts {
				if s.obj == obj && s.pos > r.End() {
					sorted = true
					break
				}
			}
			if sorted {
				continue
			}
			pass.Reportf(r.For, "map iteration extracts keys into %q but never sorts them; sort before use or annotate with //figret:allow(detrange)", obj.Name())
			continue
		}
		pass.Reportf(r.For, "range over a map in a deterministic package: iteration order is randomized; extract and sort the keys first, or annotate with //figret:allow(detrange) and a reason")
	}
}

type sortCall struct {
	obj types.Object
	pos token.Pos
	arg ast.Expr
}

// sortedSlice matches a call to one of the recognized sorting functions
// (sort.Strings/Ints/Float64s/Slice/SliceStable/Sort/Stable,
// slices.Sort/SortFunc/SortStableFunc) and returns the object of its
// first argument when that is a plain identifier.
func sortedSlice(info *types.Info, call *ast.CallExpr) (types.Object, ast.Expr) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || len(call.Args) == 0 {
		return nil, nil
	}
	pkg, name := f.Pkg().Path(), f.Name()
	ok := false
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			ok = true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			ok = true
		}
	}
	if !ok {
		return nil, nil
	}
	id, okID := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !okID {
		return nil, nil
	}
	return info.Uses[id], call.Args[0]
}

// keyExtraction matches the sorted-key-extraction loop shape
//
//	for k := range m { keys = append(keys, k) }
//
// (value variable absent or blank, body exactly one append of the key
// into a slice variable) and returns the keys variable's object.
func keyExtraction(info *types.Info, r *ast.RangeStmt) types.Object {
	if r.Key == nil {
		return nil
	}
	keyID, ok := r.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return nil
	}
	if r.Value != nil {
		if v, ok := r.Value.(*ast.Ident); !ok || v.Name != "_" {
			return nil
		}
	}
	if len(r.Body.List) != 1 {
		return nil
	}
	as, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" || info.Uses[fn] != types.Universe.Lookup("append") {
		return nil
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || info.Uses[dst] != info.Uses[lhs] {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return nil
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil || info.Uses[arg] != keyObj {
		return nil
	}
	return info.Uses[lhs]
}
