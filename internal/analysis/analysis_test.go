package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectedViolationCaught proves the gate has teeth: a seeded
// violation (the corpus's map-range shape) written into a package that
// claims a real deterministic import path is flagged by the production
// DefaultSuite, and the identical code under a non-deterministic path is
// not.
func TestInjectedViolationCaught(t *testing.T) {
	const src = `package nn

func sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "injected.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}

	pkgs, err := loader.LoadDir(dir, "figret/internal/nn")
	if err != nil {
		t.Fatal(err)
	}
	diags := DefaultSuite().Run(pkgs)
	if len(diags) != 1 || diags[0].Check != "detrange" {
		t.Fatalf("injected map range into figret/internal/nn: got %v, want one detrange diagnostic", diags)
	}

	pkgs, err = loader.LoadDir(dir, "figret/internal/unscoped")
	if err != nil {
		t.Fatal(err)
	}
	if diags := DefaultSuite().Run(pkgs); len(diags) != 0 {
		t.Fatalf("same code outside the deterministic scope: got %v, want none", diags)
	}
}

// TestInjectedWireDiscardCaught seeds a discarded wire decode error in a
// package under any path: errwire is module-wide.
func TestInjectedWireDiscardCaught(t *testing.T) {
	const src = `package anywhere

import "figret/internal/wire"

func drop(p []byte) {
	var m wire.Hello
	_ = wire.DecodeHello(p, &m)
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "drop.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(dir, "figret/internal/anywhere")
	if err != nil {
		t.Fatal(err)
	}
	diags := DefaultSuite().Run(pkgs)
	if len(diags) != 1 || diags[0].Check != "errwire" {
		t.Fatalf("injected wire discard: got %v, want one errwire diagnostic", diags)
	}
	if !strings.Contains(diags[0].Message, "DecodeHello") {
		t.Fatalf("diagnostic does not name the callee: %s", diags[0].Message)
	}
}

// TestDirectiveScope pins the suppression rules: a directive covers its
// own line and the next, requires a reason, must name a known check, and
// must suppress something.
func TestDirectiveScope(t *testing.T) {
	const src = `package nn

func a(m map[int]int) int {
	n := 0
	//figret:allow(detrange) order-independent integer count
	for range m {
		n++
	}
	return n
}

func b(m map[int]int) int {
	n := 0
	for range m { //figret:allow(detrange) same-line form also covers
		n++
	}
	return n
}

func c(m map[int]int) int {
	n := 0
	//figret:allow(detrange) too far away: one line of reach only

	for range m {
		n++
	}
	return n
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scope.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir(dir, "figret/internal/nn")
	if err != nil {
		t.Fatal(err)
	}
	diags := DefaultSuite().Run(pkgs)
	// Function c: the detrange hit survives (directive out of reach) and
	// the directive itself is reported unused.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (stale directive + uncovered range): %v", len(diags), diags)
	}
	if diags[0].Check != AllowCheck || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want unused-allow first, got %v", diags[0])
	}
	if diags[1].Check != "detrange" {
		t.Fatalf("want surviving detrange hit, got %v", diags[1])
	}
}

// TestLoadModule loads every package of the module the way cmd/figretvet
// does and requires the tree to be clean — the in-repo version of the CI
// gate, so `go test` alone catches a violation before CI runs the CLI.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the walker is missing directories", len(pkgs))
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	for _, must := range []string{"figret/internal/nn", "figret/internal/wire", "figret/internal/serve", "figret/cmd/figretvet", "figret"} {
		found := false
		for _, p := range paths {
			if p == must {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("package %s not loaded; have %v", must, paths)
		}
	}
	if diags := DefaultSuite().Run(pkgs); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
		t.Fatal("the tree must be figretvet-clean (fix or annotate with //figret:allow)")
	}
}
