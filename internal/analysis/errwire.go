package analysis

import (
	"go/ast"
	"go/types"
)

// NewErrWire returns the errwire analyzer: no call site anywhere in the
// module may discard an error returned by a function or method of the
// wire package (wirePkg) — the §11 contract is that decoders never
// panic on hostile input *because* every caller checks the error; a
// dropped error silently turns corrupt frames into stale or zeroed
// state. Flagged shapes: a bare expression statement, go/defer
// statements, and assignments of the error result to the blank
// identifier.
func NewErrWire(wirePkg string) *Analyzer {
	a := &Analyzer{
		Name: "errwire",
		Doc:  "errors from wire decode/apply calls must not be discarded",
	}
	report := func(pass *Pass, call *ast.CallExpr, how string) {
		f := funcObj(pass.Info, call)
		pass.Reportf(call.Pos(), "%s error from wire.%s discarded: wire decoders report corruption only through their error (§11)", how, f.Name())
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok && wireErrCall(pass, call, wirePkg) {
						report(pass, call, "unchecked")
					}
				case *ast.GoStmt:
					if wireErrCall(pass, st.Call, wirePkg) {
						report(pass, st.Call, "unchecked")
					}
				case *ast.DeferStmt:
					if wireErrCall(pass, st.Call, wirePkg) {
						report(pass, st.Call, "unchecked")
					}
				case *ast.AssignStmt:
					checkWireAssign(pass, st, wirePkg, report)
				}
				return true
			})
		}
	}
	return a
}

// wireErrCall reports whether call invokes a wirePkg function or method
// whose results include an error.
func wireErrCall(pass *Pass, call *ast.CallExpr, wirePkg string) bool {
	f := funcObj(pass.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != wirePkg {
		return false
	}
	return errResultIndex(f) >= 0
}

// errResultIndex returns the index of the error result of f's signature,
// or -1.
func errResultIndex(f *types.Func) int {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

// checkWireAssign flags assignments that bind a wire call's error result
// to the blank identifier.
func checkWireAssign(pass *Pass, as *ast.AssignStmt, wirePkg string, report func(*Pass, *ast.CallExpr, string)) {
	// Multi-value form: x, err := call().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !wireErrCall(pass, call, wirePkg) {
			return
		}
		idx := errResultIndex(funcObj(pass.Info, call))
		if idx < len(as.Lhs) && isBlank(as.Lhs[idx]) {
			report(pass, call, "blank-assigned")
		}
		return
	}
	// One-to-one form: _ = call().
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && wireErrCall(pass, call, wirePkg) {
			// Only flag when the discarded value IS the error (a
			// single-result error function).
			f := funcObj(pass.Info, call)
			if sig, ok := f.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
				report(pass, call, "blank-assigned")
			}
		}
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
