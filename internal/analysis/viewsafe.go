package analysis

import (
	"go/ast"
	"go/types"
)

// ViewFunc registers one view-returning function for the viewsafe
// analyzer: results alias state owned by someone else (the parent trace,
// the caller's buffer, the network's gradient buffers), so appending to
// them or assigning through their elements mutates shared state.
type ViewFunc struct {
	// Pkg is the defining package's import path.
	Pkg string
	// Recv is the receiver type name ("" for plain functions).
	Recv string
	// Name is the function or method name.
	Name string
	// Fields names pointer-result struct fields that carry the aliased
	// storage (e.g. Trace.Snapshots): appends to and element assignments
	// through view.Field are flagged too.
	Fields []string
}

// NewViewSafe returns the viewsafe analyzer: the result of a registered
// view-returning call must not be the first argument of append and must
// not have elements assigned through it (directly or via a local
// variable bound to the call) without a //figret:allow(viewsafe)
// directive — the PR 3 view contract: views are for reading; owners
// mutate.
func NewViewSafe(funcs []ViewFunc) *Analyzer {
	a := &Analyzer{
		Name: "viewsafe",
		Doc:  "results of view-returning functions must not be appended to or written through",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				body := funcBody(n)
				if body == nil {
					return true
				}
				checkViews(pass, body, funcs)
				return true
			})
		}
	}
	return a
}

// viewCall matches a call expression against the registry, returning the
// matched registration.
func viewCall(pass *Pass, call *ast.CallExpr, funcs []ViewFunc) (ViewFunc, bool) {
	fo := funcObj(pass.Info, call)
	if fo == nil || fo.Pkg() == nil {
		return ViewFunc{}, false
	}
	recvName := ""
	if recv := namedRecv(fo); recv != nil {
		recvName = recv.Obj().Name()
	}
	for _, vf := range funcs {
		if fo.Pkg().Path() == vf.Pkg && fo.Name() == vf.Name && recvName == vf.Recv {
			return vf, true
		}
	}
	return ViewFunc{}, false
}

// checkViews flags view-mutation hazards within one function body
// (nested function literals are checked separately).
func checkViews(pass *Pass, body *ast.BlockStmt, funcs []ViewFunc) {
	// Pass 1: collect local variables bound to view calls.
	views := map[types.Object]ViewFunc{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			vf, ok := viewCall(pass, call, funcs)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					views[obj] = vf
				} else if obj := pass.Info.Uses[id]; obj != nil {
					views[obj] = vf
				}
			}
		}
		return true
	})
	describe := func(e ast.Expr) (ViewFunc, bool) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			return viewCall(pass, call, funcs)
		}
		if id, ok := e.(*ast.Ident); ok {
			vf, ok := views[pass.Info.Uses[id]]
			return vf, ok
		}
		return ViewFunc{}, false
	}
	// isViewStorage reports whether e denotes view-aliased storage: the
	// view expression itself, or view.Field for a registered field.
	isViewStorage := func(e ast.Expr) (ViewFunc, bool) {
		if vf, ok := describe(e); ok {
			return vf, true
		}
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if vf, ok := describe(sel.X); ok && pathIn(sel.Sel.Name, vf.Fields) {
				return vf, true
			}
		}
		return ViewFunc{}, false
	}
	// Pass 2: flag hazards.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" &&
				pass.Info.Uses[id] == types.Universe.Lookup("append") && len(st.Args) > 0 {
				if vf, ok := isViewStorage(st.Args[0]); ok {
					pass.Reportf(st.Pos(), "append to the result of %s: views are capacity-clipped reads, the owner appends (PR 3 view contract)", viewName(vf))
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if vf, ok := isViewStorage(ix.X); ok {
					pass.Reportf(lhs.Pos(), "assignment through the result of %s mutates shared state (PR 3 view contract)", viewName(vf))
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(st.X).(*ast.IndexExpr); ok {
				if vf, ok := isViewStorage(ix.X); ok {
					pass.Reportf(st.Pos(), "mutation through the result of %s mutates shared state (PR 3 view contract)", viewName(vf))
				}
			}
		}
		return true
	})
}

// viewName renders a registration for diagnostics.
func viewName(vf ViewFunc) string {
	if vf.Recv != "" {
		return vf.Recv + "." + vf.Name
	}
	return vf.Name
}
