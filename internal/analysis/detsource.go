package analysis

import (
	"go/ast"
	"go/types"
)

// NewDetSource returns the detsource analyzer: no nondeterministic value
// sources in the deterministic packages (scope, by import path), outside
// _test.go files. Flagged sources:
//
//   - time.Now (and its derived time.Since / time.Until): wall-clock
//     reads feeding numeric state make reruns diverge;
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...): the global generator is randomly
//     seeded since Go 1.20. Explicitly seeded generators
//     (rand.New(rand.NewSource(seed)) and the New* constructors) are
//     deterministic and stay allowed;
//   - (*sync.Map).Range: map-keyed iteration with unspecified order.
func NewDetSource(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "detsource",
		Doc:  "no time.Now, global math/rand or sync.Map iteration in the deterministic packages",
	}
	a.Run = func(pass *Pass) {
		if !pathIn(pass.Path, scope) {
			return
		}
		for _, f := range pass.Files {
			if pass.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(sel.Pos(), "time.%s in a deterministic package: wall-clock reads make reruns diverge; thread an explicit timestamp in, or annotate with //figret:allow(detsource)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil &&
						!isRandConstructor(obj.Name()) {
						pass.Reportf(sel.Pos(), "global %s.%s in a deterministic package: the shared generator is randomly seeded; use an explicitly seeded rand.New(rand.NewSource(seed)), or annotate with //figret:allow(detsource)", obj.Pkg().Name(), obj.Name())
					}
				case "sync":
					if fn, ok := obj.(*types.Func); ok && fn.Name() == "Range" {
						if recv := namedRecv(fn); recv != nil && recv.Obj().Name() == "Map" {
							pass.Reportf(sel.Pos(), "sync.Map.Range in a deterministic package: iteration order is unspecified; collect and sort the keys, or annotate with //figret:allow(detsource)")
						}
					}
				}
				return true
			})
		}
	}
	return a
}

// isRandConstructor reports whether a math/rand package-level function
// constructs an explicitly seeded source rather than consuming the
// global one.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
