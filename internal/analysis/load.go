package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked analysis unit: a module package
// together with its in-package _test.go files (external
// <pkg>_test packages become their own unit).
type Package struct {
	// Path is the import path ("figret/internal/nn"; external test
	// packages carry a ".test" suffix).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed syntax trees in filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records type-checker results for Files.
	Info *types.Info

	testFiles map[*ast.File]bool
}

// Loader loads and type-checks the module's packages using only the
// standard library: module-internal imports are type-checked from source
// recursively, and everything else (the standard library) goes through
// go/importer's source importer, so no build cache or export data is
// required.
//
// A Loader is single-use and not safe for concurrent use.
type Loader struct {
	// ModRoot is the absolute module root directory (where go.mod lives).
	ModRoot string
	// ModPath is the module path from go.mod ("figret").
	ModPath string

	fset *token.FileSet
	std  types.Importer
	// pure caches the no-test-file version of each module package, the
	// version other packages see when they import it.
	pure map[string]*types.Package
	// loading guards against import cycles during pure loads.
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot. The module
// path is read from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// sources; with cgo disabled it picks the pure-Go variants (netgo,
	// os/user stubs), which is all the analysis needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pure:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load loads the packages matching the patterns: "./..." (or "all") for
// every package under the module root, or "./rel/path" for single
// directories. Every returned package is fully type-checked with its
// in-package test files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			all, err := l.walkDirs(l.ModRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModRoot, strings.TrimSuffix(pat, "/..."))
			all, err := l.walkDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		default:
			d := filepath.Join(l.ModRoot, pat)
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.LoadDir(dir, l.importPath(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// walkDirs returns every directory under root holding .go files,
// skipping testdata, hidden and underscore-prefixed directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir loads the package in dir as import path path, returning one
// analysis unit for the package (with in-package test files) and, when
// present, one for its external _test package.
func (l *Loader) LoadDir(dir, path string) ([]*Package, error) {
	prod, intest, extest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(prod) == 0 && len(intest) == 0 && len(extest) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var units []*Package
	if len(prod)+len(intest) > 0 {
		unit, err := l.check(dir, path, append(append([]*ast.File(nil), prod...), intest...), intest)
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
	}
	if len(extest) > 0 {
		unit, err := l.check(dir, path+".test", extest, extest)
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
	}
	return units, nil
}

// parseDir parses every .go file of dir into production, in-package test
// and external-test file groups, each in filename order. Files are
// filtered through the host build context (//go:build lines and
// GOOS/GOARCH filename suffixes), so platform-gated pairs — e.g. the
// tracestore's mmap_unix.go / mmap_other.go — contribute exactly the
// declarations `go build` would compile here, not both halves at once.
func (l *Loader) parseDir(dir string) (prod, intest, extest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		match, err := build.Default.MatchFile(dir, e.Name())
		if err != nil {
			return nil, nil, nil, err
		}
		if match {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var pkgName string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			if pkgName == "" {
				pkgName = f.Name.Name
			}
			prod = append(prod, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extest = append(extest, f)
		default:
			intest = append(intest, f)
		}
	}
	return prod, intest, extest, nil
}

// check type-checks one analysis unit.
func (l *Loader) check(dir, path string, files []*ast.File, testFiles []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	tf := make(map[*ast.File]bool, len(testFiles))
	for _, f := range testFiles {
		tf[f] = true
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		testFiles: tf,
	}, nil
}

// Import resolves an import during type-checking: module-internal paths
// are type-checked from source (without test files, memoized), all
// others go to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pure[path]; ok {
		return p, nil
	}
	if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.std.Import(path)
		if err != nil {
			return nil, err
		}
		l.pure[path] = p
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := filepath.Join(l.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/"))
	prod, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(prod) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, prod, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking import %s: %w", path, err)
	}
	l.pure[path] = tpkg
	return tpkg, nil
}
