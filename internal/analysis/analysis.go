// Package analysis is the project's static-analysis suite: a
// dependency-free (stdlib go/ast + go/parser + go/types only, the same
// ethos as internal/obs) driver that loads and type-checks every package
// in the module and runs project-specific analyzers enforcing the
// contracts the repository's correctness rests on — bitwise-deterministic
// training/eval/serving (DESIGN.md §6/§10), nil-receiver-safe telemetry
// instruments (§12), the capacity-clipped view contract of
// traffic.Trace.Slice (§7), and never-panic error-returning wire decoders
// (§11).
//
// Each analyzer reports file:line diagnostics. A diagnostic is suppressed
// by a directive comment on the flagged line or the line directly above:
//
//	//figret:allow(<check>) <reason>
//
// The reason is mandatory — an unexplained suppression is itself an
// error — and so are directives naming an unknown check or suppressing
// nothing (stale allows must be deleted, not accumulated). The directive
// errors are reported under the reserved check name "allow" and cannot
// themselves be suppressed.
//
// DESIGN.md §13 documents every enforced invariant and how to add an
// analyzer; cmd/figretvet is the CLI gate (`figretvet ./...`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllowCheck is the reserved check name under which directive hygiene
// errors (missing reason, unknown check, unused allow) are reported.
// Diagnostics of this check cannot be suppressed.
const AllowCheck = "allow"

// directivePrefix introduces a suppression comment.
const directivePrefix = "//figret:allow("

// Analyzer is one project-invariant check. Analyzers are stateless: Run
// is called once per package and reports through the pass.
type Analyzer struct {
	// Name is the check name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one type-checked package.
	Run func(*Pass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Path is the package's import path (e.g. "figret/internal/nn").
	Path string
	// Files are the package's syntax trees, test files included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// testFiles marks which of Files are _test.go files.
	testFiles map[*ast.File]bool

	diags *[]Diagnostic
}

// IsTestFile reports whether f is a _test.go file of the package.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Check names the analyzer (or AllowCheck for directive errors).
	Check string
	// Pos locates the violation.
	Pos token.Position
	// Message states the violated contract.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Suite is an ordered set of analyzers run together over packages.
type Suite struct {
	Analyzers []*Analyzer
}

// checkNames returns the set of valid check names.
func (s *Suite) checkNames() map[string]bool {
	names := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		names[a.Name] = true
	}
	return names
}

// Run executes every analyzer over every package, applies the allow
// directives, appends directive-hygiene errors, and returns the
// surviving diagnostics sorted by position then check.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	var raw []Diagnostic
	var dirs []*directive
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Path:      pkg.Path,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				testFiles: pkg.testFiles,
				diags:     &raw,
			}
			a.Run(pass)
		}
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(pkg.Fset, f)...)
		}
	}
	return s.apply(raw, dirs)
}

// apply filters raw diagnostics through the directives and appends
// directive-hygiene errors.
func (s *Suite) apply(raw []Diagnostic, dirs []*directive) []Diagnostic {
	valid := s.checkNames()
	// Index directives by (file, line, check); a directive covers its own
	// line and the one below it.
	type key struct {
		file  string
		line  int
		check string
	}
	byLine := make(map[key][]*directive)
	for _, d := range dirs {
		if !valid[d.check] && d.check != "" {
			continue // reported as unknown below, never matches
		}
		k := key{d.pos.Filename, d.pos.Line, d.check}
		byLine[k] = append(byLine[k], d)
		k.line++
		byLine[k] = append(byLine[k], d)
	}
	var out []Diagnostic
	for _, d := range raw {
		if d.Check == AllowCheck {
			out = append(out, d)
			continue
		}
		matched := false
		for _, dir := range byLine[key{d.Pos.Filename, d.Pos.Line, d.Check}] {
			dir.used = true
			matched = true
		}
		if !matched {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		switch {
		case dir.malformed:
			out = append(out, Diagnostic{Check: AllowCheck, Pos: dir.pos,
				Message: "malformed directive: want //figret:allow(<check>) <reason>"})
		case !valid[dir.check]:
			out = append(out, Diagnostic{Check: AllowCheck, Pos: dir.pos,
				Message: fmt.Sprintf("unknown check %q in allow directive", dir.check)})
		case dir.reason == "":
			out = append(out, Diagnostic{Check: AllowCheck, Pos: dir.pos,
				Message: fmt.Sprintf("allow(%s) without a reason: every suppression must be justified", dir.check)})
		case !dir.used:
			out = append(out, Diagnostic{Check: AllowCheck, Pos: dir.pos,
				Message: fmt.Sprintf("unused allow(%s): nothing on this or the next line triggers it; delete the directive", dir.check)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// directive is one parsed //figret:allow comment.
type directive struct {
	check     string
	reason    string
	pos       token.Position
	malformed bool
	used      bool
}

// parseDirectives extracts the allow directives of one file.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			d := &directive{pos: fset.Position(c.Pos())}
			rest := text[len(directivePrefix):]
			close := strings.IndexByte(rest, ')')
			if close < 0 {
				d.malformed = true
				out = append(out, d)
				continue
			}
			d.check = strings.TrimSpace(rest[:close])
			d.reason = strings.TrimSpace(rest[close+1:])
			if d.check == "" {
				d.malformed = true
			}
			out = append(out, d)
		}
	}
	return out
}

// --- shared analyzer helpers ---------------------------------------------

// pathIn reports whether path is one of the configured package paths
// (external test units, suffixed ".test", inherit their package's
// scope).
func pathIn(path string, set []string) bool {
	path = scopePath(path)
	for _, s := range set {
		if s == path {
			return true
		}
	}
	return false
}

// funcObj resolves a call expression's callee to a *types.Func (function
// or method), or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// namedRecv returns the named type of a method's receiver, unwrapping
// one pointer, or nil for plain functions.
func namedRecv(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
