package analysis

import (
	"go/ast"
	"go/token"
)

// NewNilRecv returns the nilrecv analyzer: every pointer-receiver method
// on a registered instrument type must begin with a nil-receiver guard —
// the DESIGN.md §12 contract that disabled telemetry costs exactly one
// branch and never panics. targets maps package import paths to the type
// names whose methods carry the contract.
//
// Accepted guard shapes, as the first statement of the body:
//
//	if r == nil { ... return ... }   // early exit, rest may use r
//	if r != nil { ... }              // guarded body; the rest of the
//	                                 // function must not use r
//
// Methods with an unnamed receiver cannot dereference it and are exempt.
func NewNilRecv(targets map[string][]string) *Analyzer {
	a := &Analyzer{
		Name: "nilrecv",
		Doc:  "pointer-receiver methods on instrument types must begin with a nil-receiver guard",
	}
	a.Run = func(pass *Pass) {
		typeNames := targets[pass.Path]
		if len(typeNames) == 0 {
			return
		}
		for _, f := range pass.Files {
			if pass.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 {
					continue
				}
				star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
				if !ok {
					continue
				}
				base, ok := ast.Unparen(star.X).(*ast.Ident)
				if !ok || !pathIn(base.Name, typeNames) {
					continue
				}
				names := fn.Recv.List[0].Names
				if len(names) == 0 || names[0].Name == "_" {
					continue // receiver never dereferenced
				}
				if fn.Body == nil {
					continue
				}
				if !startsWithNilGuard(pass, fn.Body, names[0].Name) {
					pass.Reportf(fn.Name.Pos(), "method (*%s).%s must begin with an `if %s == nil` guard (§12: every instrument is nil-receiver-safe)", base.Name, fn.Name.Name, names[0].Name)
				}
			}
		}
	}
	return a
}

// startsWithNilGuard reports whether body's first statement is a valid
// nil guard for the named receiver.
func startsWithNilGuard(pass *Pass, body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // empty body cannot dereference
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var other ast.Expr
	switch {
	case isIdentFor(pass, bin.X, recvName):
		other = bin.Y
	case isIdentFor(pass, bin.Y, recvName):
		other = bin.X
	default:
		return false
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return false
	}
	switch bin.Op {
	case token.EQL:
		// if r == nil { ... } — the guard body must leave the function.
		return endsInReturn(ifs.Body)
	case token.NEQ:
		// if r != nil { ... } — nothing after the guard may use r.
		for _, st := range body.List[1:] {
			if usesIdent(pass, st, recvName) {
				return false
			}
		}
		return true
	}
	return false
}

// isIdentFor reports whether e is a plain identifier named name.
func isIdentFor(pass *Pass, e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// endsInReturn reports whether a block's final statement is a return (or
// a panic call).
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// usesIdent reports whether the statement mentions an identifier with
// the given name (shadowing is rare enough in guard tails that a name
// match is the right strictness: a shadowed use still reads as a
// dereference to a reviewer).
func usesIdent(pass *Pass, st ast.Stmt, name string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
