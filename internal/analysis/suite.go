package analysis

import "strings"

// Deterministic packages: everything whose outputs are covered by a
// bitwise contract — training and inference (nn, figret), the TE
// substrate and solver, the evaluation engine, the scenario matrix with
// its CRC-sealed goldens, the wire codec whose frames must encode
// identically on every run, and the trace store whose writer must emit
// byte-identical files for identical traces (the fuzz seed corpus is
// pinned to its output).
var detPackages = []string{
	"figret/internal/nn",
	"figret/internal/te",
	"figret/internal/solver",
	"figret/internal/figret",
	"figret/internal/eval",
	"figret/internal/scenario",
	"figret/internal/wire",
	"figret/internal/tracestore",
}

// Instrument types under the §12 nil-receiver contract. obs.Span is
// deliberately absent: its contract is zero-*value* inertness (spans are
// threaded by value), not nil-pointer safety.
var nilRecvTargets = map[string][]string{
	"figret/internal/obs":   {"Counter", "Gauge", "Histogram", "Tracer"},
	"figret/internal/serve": {"Telemetry", "StreamTelemetry"},
}

// View-returning functions under the PR 3 aliasing contract. The
// tracestore reader's Trace and At return windows into the mmap'd file
// (capacity-clipped, but still aliases of the mapping), so call sites
// must not retain them past the reader's Close.
var viewFuncs = []ViewFunc{
	{Pkg: "figret/internal/traffic", Recv: "Trace", Name: "Slice", Fields: []string{"Snapshots"}},
	{Pkg: "figret/internal/traffic", Recv: "Trace", Name: "WindowInto"},
	{Pkg: "figret/internal/nn", Recv: "MLP", Name: "GradView"},
	{Pkg: "figret/internal/tracestore", Recv: "Reader", Name: "Trace", Fields: []string{"Snapshots"}},
	{Pkg: "figret/internal/tracestore", Recv: "Reader", Name: "At"},
}

// wirePackage is the binary codec whose errors must never be discarded.
const wirePackage = "figret/internal/wire"

// DefaultSuite returns the project's analyzer suite with its production
// configuration — the one cmd/figretvet runs and CI gates on.
func DefaultSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		NewDetRange(detPackages),
		NewDetSource(detPackages),
		NewNilRecv(nilRecvTargets),
		NewViewSafe(viewFuncs),
		NewErrWire(wirePackage),
	}}
}

// scopePath canonicalizes an analysis unit's path for scope matching:
// external test packages (path + ".test") inherit the scope of the
// package they test.
func scopePath(path string) string {
	return strings.TrimSuffix(path, ".test")
}
