// Package detrange is the golden-diagnostic corpus for the detrange
// analyzer: map ranges in a deterministic package are flagged unless the
// keys are extracted and sorted, or the statement carries a justified
// allow directive.
package detrange

import (
	"sort"
)

func sumValues(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want detrange:"range over a map in a deterministic package"
		s += v
	}
	return s
}

func sortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSortSlice(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func extractedButUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want detrange:"extracts keys into \"keys\" but never sorts them"
		keys = append(keys, k)
	}
	return keys
}

func sortBeforeLoopDoesNotCount(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	sort.Strings(keys)
	for k := range m { // want detrange:"never sorts them"
		keys = append(keys, k)
	}
	return keys
}

func insideClosure(m map[string]int) func() int {
	return func() int {
		n := 0
		for range m { // want detrange:"range over a map in a deterministic package"
			n++
		}
		return n
	}
}

func sliceRangeIsFine(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

func allowedCount(m map[string]int) int {
	n := 0
	//figret:allow(detrange) integer count, addition is order-independent
	for range m {
		n++
	}
	return n
}

func unexplainedAllow(m map[int]int) int {
	s := 0
	// want @+1 allow:"allow\\(detrange\\) without a reason"
	//figret:allow(detrange)
	for k := range m {
		s += k
	}
	return s
}

// want @+1 allow:"unknown check \"nosuchcheck\""
//figret:allow(nosuchcheck) this check does not exist

func staleAllow(xs []int) int {
	n := 0
	// want @+1 allow:"unused allow\\(detrange\\)"
	//figret:allow(detrange) stale: a slice range never triggers detrange
	for _, v := range xs {
		n += v
	}
	return n
}
