// Package nilrecv is the golden-diagnostic corpus for the nilrecv
// analyzer: every pointer-receiver method on a registered instrument
// type must begin with a nil-receiver guard (the §12 one-branch
// contract).
package nilrecv

// Counter is a registered instrument type.
type Counter struct{ n uint64 }

// Inc uses the guarded-body form: the guard is the whole method.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Value uses the early-return form.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// ValueFlipped writes the early-return guard with nil first.
func (c *Counter) ValueFlipped() uint64 {
	if nil == c {
		return 0
	}
	return c.n
}

// Unguarded dereferences a possibly-nil receiver.
func (c *Counter) Unguarded() uint64 { // want nilrecv:"must begin with an `if c == nil` guard"
	return c.n
}

// GuardNotFirst guards too late: the first statement already counts.
func (c *Counter) GuardNotFirst() uint64 { // want nilrecv:"must begin with an `if c == nil` guard"
	x := uint64(1)
	if c == nil {
		return x
	}
	return c.n + x
}

// TailUse guards a prefix of the body but touches the receiver after.
func (c *Counter) TailUse() { // want nilrecv:"must begin with an `if c == nil` guard"
	if c != nil {
		c.n++
	}
	c.n = 0
}

// FallthroughGuard's == nil branch does not leave the function.
func (c *Counter) FallthroughGuard() { // want nilrecv:"must begin with an `if c == nil` guard"
	if c == nil {
		_ = 0
	}
	c.n++
}

// PanicGuard leaves the function by panicking; that counts.
func (c *Counter) PanicGuard() uint64 {
	if c == nil {
		panic("nil counter")
	}
	return c.n
}

// Anon has no receiver name, so it cannot dereference one.
func (*Counter) Anon() {}

// ByValue receives a copy; nil-receiver safety does not apply.
func (c Counter) ByValue() uint64 { return c.n }

//figret:allow(nilrecv) constructor helper, documented never called on nil
func (c *Counter) Reset() { c.n = 0 }

// Tracer is a second registered type.
type Tracer struct{ id int }

// Next is guarded.
func (t *Tracer) Next() int {
	if t == nil {
		return 0
	}
	t.id++
	return t.id
}

// Unregistered types carry no contract.
type Unregistered struct{ n int }

// Bump has no guard and needs none.
func (u *Unregistered) Bump() { u.n++ }
