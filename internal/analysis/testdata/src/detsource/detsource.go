// Package detsource is the golden-diagnostic corpus for the detsource
// analyzer: wall-clock reads, globally seeded math/rand and sync.Map
// iteration are flagged in deterministic packages, outside _test.go.
package detsource

import (
	"math/rand"
	"sync"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want detsource:"time.Now in a deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want detsource:"time.Since in a deterministic package"
}

func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want detsource:"time.Until in a deterministic package"
}

func explicitTimestampIsFine(nowUnixNanos int64) time.Time {
	return time.Unix(0, nowUnixNanos)
}

func globalRand() float64 {
	return rand.Float64() // want detsource:"global rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want detsource:"global rand.Shuffle"
}

func seededRandIsFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func syncMapRange(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool { // want detsource:"sync.Map.Range in a deterministic package"
		n++
		return true
	})
	return n
}

func syncMapLoadIsFine(m *sync.Map) (any, bool) {
	return m.Load("k")
}

//figret:allow(detsource) process start stamp, never feeds numeric decision state
var bootTime = time.Now()
