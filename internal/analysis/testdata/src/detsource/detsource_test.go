package detsource

import (
	"testing"
	"time"
)

// Test files are outside the detsource contract: benchmarks and tests
// may read the wall clock freely.
func TestClockIsFineHere(t *testing.T) {
	if time.Since(time.Now()) > time.Second {
		t.Fatal("impossible")
	}
}
