// Package viewsafe is the golden-diagnostic corpus for the viewsafe
// analyzer: results of registered view-returning functions must not be
// appended to or written through (the PR 3 capacity-clipped view
// contract) without an allow directive.
package viewsafe

// Buf owns a slice; View hands out capacity-clipped views of it.
type Buf struct{ Items []int }

// View returns a view sharing b's backing array (Items is a registered
// view field).
func (b *Buf) View(from, to int) *Buf {
	return &Buf{Items: b.Items[from:to:to]}
}

// MakeView is a registered plain view-returning function.
func MakeView(xs []int) []int { return xs[:len(xs):len(xs)] }

func appendToCallResult(xs []int) []int {
	return append(MakeView(xs), 1) // want viewsafe:"append to the result of MakeView"
}

func appendToViewVar(xs []int) []int {
	v := MakeView(xs)
	return append(v, 2) // want viewsafe:"append to the result of MakeView"
}

func appendToViewField(b *Buf) {
	v := b.View(0, 1)
	v.Items = append(v.Items, 3) // want viewsafe:"append to the result of Buf.View"
}

func writeThroughField(b *Buf) {
	v := b.View(0, 2)
	v.Items[0] = 9 // want viewsafe:"assignment through the result of Buf.View"
}

func writeThroughCallResult(xs []int) {
	MakeView(xs)[0] = 3 // want viewsafe:"assignment through the result of MakeView"
}

func incrementThroughView(xs []int) {
	v := MakeView(xs)
	v[0]++ // want viewsafe:"mutation through the result of MakeView"
}

func readingIsFine(b *Buf) int {
	v := b.View(0, 1)
	return v.Items[0] + len(v.Items)
}

func ownerMutationIsFine(b *Buf) {
	b.Items = append(b.Items, 7)
	b.Items[0] = 1
}

func unregisteredCallIsFine(xs []int) []int {
	clone := func(x []int) []int { return append([]int(nil), x...) }
	c := clone(xs)
	c[0] = 5
	return append(c, 6)
}

func allowedHandOver(xs []int) []int {
	v := MakeView(xs)
	//figret:allow(viewsafe) xs is scratch whose ownership is handed over by contract
	return append(v, 4)
}
