// Package errwire is the golden-diagnostic corpus for the errwire
// analyzer: errors returned by the wire package's decode/apply functions
// must never be discarded. For the corpus this package plays the role of
// the wire package itself (the analyzer is configured with this path).
package errwire

import "errors"

var errBad = errors.New("bad")

// DecodeThing stands in for a single-error-result wire decoder.
func DecodeThing(p []byte) error {
	if len(p) == 0 {
		return errBad
	}
	return nil
}

// DecodeTwo stands in for a (value, error) wire decoder.
func DecodeTwo(p []byte) (int, error) { return len(p), nil }

// Size has no error result; discarding its result is fine.
func Size(p []byte) int { return len(p) }

func exprStatement(p []byte) {
	DecodeThing(p) // want errwire:"unchecked error from wire.DecodeThing"
}

func blankSingle(p []byte) {
	_ = DecodeThing(p) // want errwire:"blank-assigned error from wire.DecodeThing"
}

func blankMulti(p []byte) int {
	n, _ := DecodeTwo(p) // want errwire:"blank-assigned error from wire.DecodeTwo"
	return n
}

func goStatement(p []byte) {
	go DecodeThing(p) // want errwire:"unchecked error from wire.DecodeThing"
}

func deferStatement(p []byte) {
	defer DecodeThing(p) // want errwire:"unchecked error from wire.DecodeThing"
}

func checkedIsFine(p []byte) error {
	if err := DecodeThing(p); err != nil {
		return err
	}
	n, err := DecodeTwo(p)
	if n < 0 {
		return errBad
	}
	return err
}

func usedInConditionIsFine(p []byte) bool {
	return DecodeThing(p) == nil
}

func noErrorResultIsFine(p []byte) {
	Size(p)
}

func allowedDiscard(p []byte) {
	_ = DecodeThing(p) //figret:allow(errwire) harness only exercises the panic-freedom contract
}
