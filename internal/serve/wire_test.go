package serve

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"figret/internal/wire"
)

// wireFixture boots a served PoD topology with an installed checkpoint
// and returns the JSON client (the server URL rides on it).
func wireFixture(t *testing.T) (*Client, *Server) {
	t.Helper()
	ps, tr, m := fixture(t, 60, 1)
	client, srv, reg := startServer(t, "pod", ps, ControllerOptions{HistoryCap: 16})
	if _, err := reg.Install("pod", m, "test"); err != nil {
		t.Fatal(err)
	}
	// Warm the controller past the model's history window.
	for i := 0; i < 8; i++ {
		if _, err := client.PostSnapshot("pod", tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	return client, srv
}

func sameDecision(t *testing.T, name string, a, b *RoutingResponse) {
	t.Helper()
	sameDecisionAt(t, name, a, b, true)
}

func sameDecisionAt(t *testing.T, name string, a, b *RoutingResponse, checkAt bool) {
	t.Helper()
	if a.Seq != b.Seq || a.Snapshot != b.Snapshot || a.Version != b.Version ||
		a.Rerouted != b.Rerouted || a.ChurnLimited != b.ChurnLimited || a.Warming != b.Warming {
		t.Fatalf("%s: headers differ: %+v vs %+v", name, a, b)
	}
	if checkAt && !a.At.Equal(b.At) {
		t.Fatalf("%s: At %v vs %v", name, a.At, b.At)
	}
	if len(a.Ratios) != len(b.Ratios) {
		t.Fatalf("%s: %d vs %d ratios", name, len(a.Ratios), len(b.Ratios))
	}
	for i := range a.Ratios {
		if math.Float64bits(a.Ratios[i]) != math.Float64bits(b.Ratios[i]) {
			t.Fatalf("%s: ratio %d differs bitwise: %v vs %v", name, i, a.Ratios[i], b.Ratios[i])
		}
	}
}

// TestWireHTTPNegotiation: the content-negotiated binary codec on the
// plain HTTP endpoints returns responses bitwise identical to the JSON
// surface.
func TestWireHTTPNegotiation(t *testing.T) {
	jsonClient, _ := wireFixture(t)
	binClient := NewClient(jsonClient.BaseURL)
	binClient.Binary = true

	j, err := jsonClient.Routing("pod")
	if err != nil {
		t.Fatal(err)
	}
	b, err := binClient.Routing("pod")
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, "routing", j, b)

	ps, tr, _ := fixture(t, 60, 1)
	_ = ps
	// Sync ingest over the binary codec: the served decision advances and
	// comes back in wire form.
	d, err := binClient.PostSnapshot("pod", tr.At(9))
	if err != nil {
		t.Fatal(err)
	}
	if d.Warming || d.Seq <= j.Seq || len(d.Ratios) == 0 {
		t.Fatalf("binary ingest decision %+v", d)
	}
	// And the JSON surface sees exactly what the binary one produced.
	j2, err := jsonClient.Routing("pod")
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, "after-binary-ingest", j2, d)

	if err := binClient.PostSnapshotAsync("pod", tr.At(10)); err != nil {
		t.Fatal(err)
	}

	// Unknown topology errors stay JSON (and typed) on the binary path.
	if _, err := binClient.Routing("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown topo over binary: %v", err)
	}
}

// TestWireStream exercises the upgraded persistent stream end to end:
// hello validation, sync decisions, delta encoding on stable demand,
// failure reports, async acks, and the routing query.
func TestWireStream(t *testing.T) {
	client, _ := wireFixture(t)
	ps, tr, _ := fixture(t, 60, 1)

	// Unknown topology: the server answers the hello with a 404 error
	// frame and the dial fails.
	if _, err := DialBin(client.BaseURL, "nope", ps, BinClientOptions{RedialAttempts: 1}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("dial to unknown topology: %v", err)
	}

	bin, err := DialBin(client.BaseURL, "pod", ps, BinClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	// First decision over the stream is full (no base yet).
	d1, err := bin.PostSnapshot(tr.At(10))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Warming || len(d1.Ratios) != ps.NumPaths() {
		t.Fatalf("stream decision %+v", d1)
	}
	if s := bin.Stats(); s.Fulls == 0 {
		t.Fatalf("first decision not counted full: %+v", s)
	}

	// Stable demand saturates the window with identical snapshots; the
	// decisions converge and the server switches to (tiny) delta frames.
	for i := 0; i < 12; i++ {
		if _, err := bin.PostSnapshot(tr.At(10)); err != nil {
			t.Fatal(err)
		}
	}
	if s := bin.Stats(); s.Deltas == 0 {
		t.Fatalf("no delta frames on stable demand: %+v", s)
	}

	// The stream's decision equals the JSON surface's routing view.
	last, err := bin.Routing()
	if err != nil {
		t.Fatal(err)
	}
	j, err := client.Routing("pod")
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, "stream-vs-json", j, last)

	// Async ingest acks without a decision.
	if err := bin.PostSnapshotAsync(tr.At(11)); err != nil {
		t.Fatal(err)
	}

	// Failure report (clearing an empty set) republishes a decision.
	fd, err := bin.ReportFailures(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Ratios) != ps.NumPaths() {
		t.Fatalf("failures decision %+v", fd)
	}

	// An application error (malformed demand) comes back as a typed
	// error frame and the stream stays usable.
	if _, err := bin.PostSnapshot([]float64{1, 2, 3}); err == nil ||
		!strings.Contains(err.Error(), "status 400") {
		t.Fatalf("short demand: %v", err)
	}
	if s := bin.Stats(); s.Redials != 0 {
		t.Fatalf("application error forced a redial: %+v", s)
	}
	if _, err := bin.PostSnapshot(tr.At(12)); err != nil {
		t.Fatalf("stream unusable after application error: %v", err)
	}
}

// TestWireStreamResync forces a delta gap (the client's base is
// corrupted behind the server's back) and checks the client recovers
// with a full-decision resync rather than failing.
func TestWireStreamResync(t *testing.T) {
	client, _ := wireFixture(t)
	ps, tr, _ := fixture(t, 60, 1)
	bin, err := DialBin(client.BaseURL, "pod", ps, BinClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	// Establish a delta chain on stable demand.
	for i := 0; i < 10; i++ {
		if _, err := bin.PostSnapshot(tr.At(20)); err != nil {
			t.Fatal(err)
		}
	}
	if bin.Stats().Deltas == 0 {
		t.Fatal("no delta chain established")
	}

	// Sabotage the client's cached base: the next delta no longer
	// applies (ErrDeltaGap) and must trigger an inline TResync.
	bin.last.Seq -= 5
	d, err := bin.PostSnapshot(tr.At(20))
	if err != nil {
		t.Fatal(err)
	}
	if d.Warming || len(d.Ratios) != ps.NumPaths() {
		t.Fatalf("post-resync decision %+v", d)
	}
	if s := bin.Stats(); s.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1 (%+v)", s.Resyncs, s)
	}
	// The chain continues (deltas resume against the resynced base).
	before := bin.Stats().Deltas
	if _, err := bin.PostSnapshot(tr.At(20)); err != nil {
		t.Fatal(err)
	}
	if bin.Stats().Deltas == before {
		t.Fatal("delta chain did not resume after resync")
	}
}

// TestWireStreamPipelined runs the adaptive-window Stream and checks
// ordering, decision counts and the RTT/window bookkeeping.
func TestWireStreamPipelined(t *testing.T) {
	client, _ := wireFixture(t)
	ps, tr, _ := fixture(t, 60, 1)
	bin, err := DialBin(client.BaseURL, "pod", ps, BinClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	const n = 64
	var seqs []int64
	stats, err := bin.Stream(n,
		func(i int) []float64 { return tr.At(i % tr.Len()) },
		func(i int, d *wire.Decision) { seqs = append(seqs, d.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != n || stats.Decisions != n || stats.Acks != 0 {
		t.Fatalf("stream stats %+v", stats)
	}
	if len(seqs) != n {
		t.Fatalf("observed %d decisions", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("decisions out of order at %d: %v -> %v", i, seqs[i-1], seqs[i])
		}
	}
	if stats.MeanRTTMicros <= 0 || stats.P99RTTMicros < stats.P50RTTMicros {
		t.Fatalf("rtt stats %+v", stats)
	}
	if stats.MinWindow < 1 || stats.MaxWindow < stats.MinWindow || stats.FinalWindow < 1 {
		t.Fatalf("window stats %+v", stats)
	}
	if stats.BytesSent == 0 || stats.BytesReceived == 0 {
		t.Fatalf("byte counts %+v", stats)
	}

	// Async streaming acks everything.
	astats, err := bin.StreamAsync(16, func(i int) []float64 { return tr.At(i % tr.Len()) })
	if err != nil {
		t.Fatal(err)
	}
	if astats.Acks != 16 || astats.Decisions != 0 {
		t.Fatalf("async stream stats %+v", astats)
	}
}

// TestWireServerClose: Server.Close reaches hijacked stream connections
// (they are outside the HTTP server's connection tracking), so clients
// fail fast instead of hanging.
func TestWireServerClose(t *testing.T) {
	client, srv := wireFixture(t)
	ps, tr, _ := fixture(t, 60, 1)
	bin, err := DialBin(client.BaseURL, "pod", ps, BinClientOptions{
		RedialAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	if _, err := bin.PostSnapshot(tr.At(10)); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if _, err := bin.PostSnapshot(tr.At(11)); err == nil {
		t.Fatal("stream op succeeded after server close")
	}
}

// TestWireReplayBitwise is the tentpole identity contract: a closed-loop
// replay over the binary transports — the content-negotiated HTTP codec
// and the upgraded delta-encoded stream — must produce decisions and
// simulated per-interval results bitwise identical to the JSON replay of
// the same trace against the same checkpoint. Only publication
// timestamps (wall clock) may differ across runs.
func TestWireReplayBitwise(t *testing.T) {
	ps, tr, m := fixture(t, 60, 1)
	run := func(mode string) *ReplayResult {
		t.Helper()
		client, _, reg := startServer(t, "pod", ps, ControllerOptions{HistoryCap: 16})
		if _, err := reg.Install("pod", m, "test"); err != nil {
			t.Fatal(err)
		}
		opt := ReplayOptions{To: 30, Delay: 1}
		switch mode {
		case "binhttp":
			client.Binary = true
		case "wire":
			opt.Wire = true
		}
		rr, err := Replay(client, "pod", ps, tr, opt)
		if err != nil {
			t.Fatalf("%s replay: %v", mode, err)
		}
		return rr
	}

	base := run("json")
	if len(base.Decisions) != 30 {
		t.Fatalf("json replay produced %d decisions", len(base.Decisions))
	}
	for _, mode := range []string{"binhttp", "wire"} {
		rr := run(mode)
		if len(rr.Decisions) != len(base.Decisions) {
			t.Fatalf("%s: %d decisions, json %d", mode, len(rr.Decisions), len(base.Decisions))
		}
		for i := range base.Decisions {
			sameDecisionAt(t, mode, base.Decisions[i], rr.Decisions[i], false)
		}
		if len(rr.PerInterval) != len(base.PerInterval) {
			t.Fatalf("%s: %d intervals, json %d", mode, len(rr.PerInterval), len(base.PerInterval))
		}
		for i := range base.PerInterval {
			if math.Float64bits(rr.PerInterval[i].MLU) != math.Float64bits(base.PerInterval[i].MLU) ||
				math.Float64bits(rr.PerInterval[i].LossRate) != math.Float64bits(base.PerInterval[i].LossRate) {
				t.Fatalf("%s interval %d: MLU %v/%v loss %v/%v", mode, i,
					rr.PerInterval[i].MLU, base.PerInterval[i].MLU,
					rr.PerInterval[i].LossRate, base.PerInterval[i].LossRate)
			}
		}
		if math.Float64bits(rr.MeanMLU) != math.Float64bits(base.MeanMLU) ||
			math.Float64bits(rr.PeakMLU) != math.Float64bits(base.PeakMLU) ||
			math.Float64bits(rr.MeanLoss) != math.Float64bits(base.MeanLoss) {
			t.Fatalf("%s summary (%v %v %v) != json (%v %v %v)", mode,
				rr.MeanMLU, rr.PeakMLU, rr.MeanLoss, base.MeanMLU, base.PeakMLU, base.MeanLoss)
		}
		if len(rr.Versions) != len(base.Versions) || rr.Versions[0] != base.Versions[0] {
			t.Fatalf("%s versions %v != %v", mode, rr.Versions, base.Versions)
		}
	}
}

// TestLoadGen drives the load generator end to end against a served
// topology and sanity-checks its throughput report.
func TestLoadGen(t *testing.T) {
	client, _ := wireFixture(t)
	ps, tr, _ := fixture(t, 60, 1)
	res, err := LoadGen(client.BaseURL, "pod", ps, tr, LoadOptions{Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream.Decisions != 50 || res.DecisionsPerSec <= 0 {
		t.Fatalf("load result %+v", res)
	}
	if res.Bin.Fulls+res.Bin.Deltas == 0 {
		t.Fatalf("no decisions counted: %+v", res.Bin)
	}

	ares, err := LoadGen(client.BaseURL, "pod", ps, tr, LoadOptions{Requests: 20, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Stream.Acks != 20 || ares.RequestsPerSec <= 0 {
		t.Fatalf("async load result %+v", ares)
	}
}

// TestClientTransportDefaults: a Client without an explicit http.Client
// gets the shared tuned transport (timeouts + keep-alive pool), not
// http.DefaultClient.
func TestClientTransportDefaults(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	hc := c.http()
	if hc == http.DefaultClient {
		t.Fatal("fell back to http.DefaultClient")
	}
	if hc.Timeout <= 0 {
		t.Fatal("no overall request timeout")
	}
	tr, ok := hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T", hc.Transport)
	}
	if tr.MaxIdleConnsPerHost < 2 || tr.ResponseHeaderTimeout <= 0 || tr.IdleConnTimeout <= 0 {
		t.Fatalf("transport not tuned: %+v", tr)
	}
	override := &http.Client{}
	c.HTTP = override
	if c.http() != override {
		t.Fatal("explicit client not honored")
	}
}
