package serve

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/netsim"
	"figret/internal/te"
	"figret/internal/traffic"
)

// startServer wires a registry + server around one topology and returns
// an HTTP client against it.
func startServer(t *testing.T, topo string, ps *te.PathSet, opt ControllerOptions) (*Client, *Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.AddTopology(topo, ps); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	if _, err := srv.Add(topo, opt); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return NewClient(hs.URL), srv, reg
}

// TestClosedLoopReplayMatchesOffline is the acceptance check of the
// serving subsystem: a WAN trace replayed through the HTTP API must
// yield, snapshot for snapshot, routing configs bitwise identical to
// offline Predictor inference on the same windows — and the closed-loop
// (delayed-installation) MLU series must equal an offline control loop
// over the same decisions.
func TestClosedLoopReplayMatchesOffline(t *testing.T) {
	const h = 4
	g := graph.GEANT()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.WAN(g.NumVertices(), 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test := tr.Split(0.75)
	m := figret.New(ps, figret.Config{H: h, Gamma: 1, Hidden: []int{64, 64}, Epochs: 2, Seed: 7, BatchSize: 16})
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}

	client, _, _ := startServer(t, "geant", ps, ControllerOptions{HistoryCap: 64})

	// Install the offline-trained model through the upload path.
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := client.UploadCheckpoint("geant", data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 1 {
		t.Fatalf("uploaded version = %d", ck.Version)
	}

	const delay = 2
	res, err := Replay(client, "geant", ps, test, ReplayOptions{To: 30, Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 30 {
		t.Fatalf("replayed %d decisions, want 30", len(res.Decisions))
	}

	// (1) Bitwise equality with offline inference on the same windows.
	for i, dec := range res.Decisions {
		if i < h-1 {
			if !dec.Warming {
				t.Fatalf("t=%d: decision before warmup", i)
			}
			continue
		}
		if dec.Warming {
			t.Fatalf("t=%d: still warming", i)
		}
		want, err := m.Predict(test.Window(i+1, h))
		if err != nil {
			t.Fatal(err)
		}
		if len(dec.Ratios) != len(want.R) {
			t.Fatalf("t=%d: %d ratios, want %d", i, len(dec.Ratios), len(want.R))
		}
		for p := range want.R {
			if dec.Ratios[p] != want.R[p] {
				t.Fatalf("t=%d path %d: served %v, offline %v", i, p, dec.Ratios[p], want.R[p])
			}
		}
	}
	if len(res.Versions) != 1 || res.Versions[0] != 1 {
		t.Fatalf("served versions %v, want [1]", res.Versions)
	}

	// (2) The closed loop equals an offline delayed-installation loop over
	// the same decisions.
	installed := te.UniformConfig(ps)
	var pending []*te.Config
	for i := 0; i < 30; i++ {
		if len(pending) > delay {
			installed = pending[0]
			pending = pending[1:]
		}
		sim, err := netsim.Simulate(installed, test.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.PerInterval[i].MLU; got != sim.MLU {
			t.Fatalf("interval %d: closed-loop MLU %v, offline loop %v", i, got, sim.MLU)
		}
		if i >= h-1 {
			cfg, err := m.Predict(test.Window(i+1, h))
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, cfg)
		}
	}
	if res.MeanMLU <= 0 || res.PeakMLU < res.MeanMLU {
		t.Fatalf("degenerate loop summary: %+v", res)
	}
}

// TestHotSwapMidStream drives the drift-triggered retrain lifecycle
// end-to-end under load: a hair-trigger detector fires mid-stream, the
// background retrainer shadow-evaluates against the shared oracle and
// swaps a new checkpoint in, and every request before, during and after
// the swap is answered with a valid configuration of the version it
// reports (no drops, no misrouting). Run it with -race: the swap is
// exactly the concurrency hazard the registry's atomic pointer protects.
func TestHotSwapMidStream(t *testing.T) {
	ps, tr, m := fixture(t, 200, 11)
	oracle := eval.NewOracle(ps, baselines.AutoSolve(ps), nil)
	client, srv, reg := startServer(t, "pod", ps, ControllerOptions{
		HistoryCap: 32,
		Drift: &DriftOptions{
			// Hair trigger: any post-calibration observation counts as
			// drifted, so the retrain fires deterministically early.
			Threshold:          1e-9,
			Alpha:              0.5,
			Patience:           2,
			CalibrationSamples: 4,
			Epochs:             2,
			ShadowWindow:       4,
			Tolerance:          1e9, // accept the candidate unconditionally
			Oracle:             oracle,
		},
	})
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}

	// Concurrent readers: routing must stay valid through the swap.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	readErr := make(chan error, 1)
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				rr, err := client.Routing("pod")
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				if _, err := te.FromRatios(ps, append([]float64(nil), rr.Ratios...)); err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
			}
		}()
	}

	type served struct {
		snapshot int64
		version  int
		ratios   []float64
	}
	var log []served
	deadline := time.Now().Add(60 * time.Second)
	swapped := false
	for i := 0; !swapped; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no hot swap within deadline")
		}
		d := tr.At(i % tr.Len())
		rr, err := client.PostSnapshot("pod", d)
		if err != nil {
			t.Fatalf("request %d dropped: %v", i, err)
		}
		if rr.Warming {
			if i >= 4 {
				t.Fatalf("request %d: warming after warmup", i)
			}
			continue
		}
		log = append(log, served{snapshot: rr.Snapshot, version: rr.Version, ratios: append([]float64(nil), rr.Ratios...)})
		if rr.Version > 1 {
			swapped = true
		}
	}
	close(stopReads)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("concurrent routing read failed: %v", err)
	default:
	}

	// Post-hoc misrouting audit: every decision must be exactly what the
	// checkpoint version it reports computes on the window it saw. The
	// served demand stream cycled tr, so rebuild it to recover windows.
	replayed := traffic.NewTrace(ps.Pairs.N())
	for i := int64(0); i <= log[len(log)-1].snapshot; i++ {
		replayed.Append(tr.At(int(i) % tr.Len()))
	}
	for _, s := range log {
		ck := reg.Get("pod", s.version)
		if ck == nil {
			t.Fatalf("snapshot %d served retired version %d", s.snapshot, s.version)
		}
		h := ck.Model.Cfg.H
		want, err := ck.Model.Predict(replayed.Window(int(s.snapshot)+1, h))
		if err != nil {
			t.Fatal(err)
		}
		for p := range want.R {
			if s.ratios[p] != want.R[p] {
				t.Fatalf("snapshot %d (version %d) path %d: served %v, model %v — misrouted",
					s.snapshot, s.version, p, s.ratios[p], want.R[p])
			}
		}
	}

	// The swap is visible in the registry and the metrics.
	if v := reg.Active("pod").Version; v < 2 {
		t.Fatalf("active version %d after swap", v)
	}
	if got := srv.Controller("pod").Metrics(); got.Retrains == 0 {
		t.Fatalf("metrics recorded no retrain: %+v", got)
	}
	// The oracle actually backed the shadow evaluation.
	if hits, misses := oracle.Stats(); hits+misses == 0 {
		t.Fatal("shadow evaluation never consulted the oracle")
	}
}

func TestServerEndpoints(t *testing.T) {
	ps, tr, m := fixture(t, 60, 21)
	client, _, _ := startServer(t, "pod", ps, ControllerOptions{})

	topos, err := client.Topologies()
	if err != nil || len(topos) != 1 || topos[0] != "pod" {
		t.Fatalf("topologies = %v, %v", topos, err)
	}

	// Routing before any checkpoint: the bootstrap uniform fallback.
	rr, err := client.Routing("pod")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Version != 0 || rr.Seq != 0 {
		t.Fatalf("bootstrap decision = %+v", rr)
	}
	if _, err := te.FromRatios(ps, append([]float64(nil), rr.Ratios...)); err != nil {
		t.Fatalf("bootstrap config invalid: %v", err)
	}

	// Upload two checkpoints, then roll back.
	data1, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadCheckpoint("pod", data1); err != nil {
		t.Fatal(err)
	}
	m2 := figret.New(ps, figret.Config{H: 4, Epochs: 1, Seed: 99})
	if _, err := m2.Train(tr); err != nil {
		t.Fatal(err)
	}
	data2, err := m2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := client.UploadCheckpoint("pod", data2)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Version != 2 {
		t.Fatalf("second upload version = %d", ck2.Version)
	}
	cks, err := client.Checkpoints("pod")
	if err != nil || len(cks) != 2 {
		t.Fatalf("checkpoints = %+v, %v", cks, err)
	}
	back, err := client.Rollback("pod")
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Fatalf("rollback to version %d, want 1", back.Version)
	}

	// Async ingest path + metrics.
	for i := 0; i < 6; i++ {
		if err := client.PostSnapshotAsync("pod", tr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A sync snapshot serializes behind the async burst.
	rr, err = client.PostSnapshot("pod", tr.At(6))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Warming || rr.Version != 1 {
		t.Fatalf("post-burst decision = %+v", rr)
	}
	ms, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if ms["pod"].Snapshots != 7 || ms["pod"].Decisions == 0 {
		t.Fatalf("metrics = %+v", ms["pod"])
	}
	if ms["pod"].P50Micros <= 0 || ms["pod"].P99Micros < ms["pod"].P50Micros {
		t.Fatalf("latency quantiles = %+v", ms["pod"])
	}

	// Failure report over HTTP.
	e := ps.G.Edge(0)
	rr, err = client.ReportFailures("pod", [][2]int{{e.From, e.To}})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Rerouted {
		t.Fatalf("failure report not rerouted: %+v", rr)
	}
	if _, err = client.ReportFailures("pod", nil); err != nil {
		t.Fatal(err)
	}

	// Unknown topology and malformed demand errors.
	if _, err := client.Routing("nope"); err == nil {
		t.Fatal("unknown topology served")
	}
	if _, err := client.PostSnapshot("pod", []float64{1}); err == nil {
		t.Fatal("short demand vector accepted")
	}
}
