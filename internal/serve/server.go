package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"figret/internal/wire"
)

// maxBodyBytes bounds request bodies (checkpoints for large fabrics are
// a few MB of JSON weights).
const maxBodyBytes = 64 << 20

// Server shards the HTTP/JSON API across per-topology controllers: every
// request is routed by its {topo} path element to that topology's
// controller, so topologies never contend — one topology's retrain or
// ingest burst cannot delay another's decisions.
//
// API surface (all JSON):
//
//	GET  /v1/topologies                           list served topologies
//	POST /v1/topologies/{topo}/snapshots          ingest a demand snapshot
//	GET  /v1/topologies/{topo}/routing            current routing decision
//	POST /v1/topologies/{topo}/failures           report failed links ([] clears)
//	GET  /v1/topologies/{topo}/checkpoints        list model checkpoints
//	POST /v1/topologies/{topo}/checkpoints        upload + activate a checkpoint
//	POST /v1/topologies/{topo}/checkpoints/rollback  roll back to the previous one
//	GET  /v1/metrics                              per-topology serving metrics
//
// Snapshot ingest is synchronous by default — the response carries the
// decision computed from the window ending at the posted snapshot —
// matching offline inference snapshot for snapshot. With "async": true
// the server acknowledges immediately and bursts coalesce into one
// decision on the newest window.
//
// Next to the JSON surface the server speaks the compact binary wire
// protocol (internal/wire) on the same listener, content-negotiated:
// the snapshot and routing endpoints accept binary request bodies
// (Content-Type wire.MediaType) and answer in kind (Accept
// wire.MediaType), and GET /v1/wire upgrades the connection to the
// persistent pipelined stream with delta-encoded decisions that
// BinClient drives. The JSON API is byte-for-byte untouched — binary is
// a purely additive fast path.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	tel *Telemetry

	mu          sync.RWMutex
	controllers map[string]*Controller
	wireConns   map[net.Conn]struct{}
	wireClosed  bool
}

// NewServer builds a server over reg. Topologies are added with Add.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:         reg,
		mux:         http.NewServeMux(),
		controllers: make(map[string]*Controller),
	}
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("POST /v1/topologies/{topo}/snapshots", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/topologies/{topo}/routing", s.handleRouting)
	s.mux.HandleFunc("POST /v1/topologies/{topo}/failures", s.handleFailures)
	s.mux.HandleFunc("GET /v1/topologies/{topo}/checkpoints", s.handleListCheckpoints)
	s.mux.HandleFunc("POST /v1/topologies/{topo}/checkpoints", s.handleUploadCheckpoint)
	s.mux.HandleFunc("POST /v1/topologies/{topo}/checkpoints/rollback", s.handleRollback)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/wire", s.handleWire)
	return s
}

// UseTelemetry attaches the observability instrument set: transport
// request timing on the server, install/rollback counters on the
// registry, and — for controllers added afterwards without their own
// Telemetry option — the full per-topology decision instrumentation.
// Call before Add. A nil Telemetry (the default) leaves the serving
// path unobserved and unchanged.
func (s *Server) UseTelemetry(t *Telemetry) {
	s.mu.Lock()
	s.tel = t
	s.mu.Unlock()
	s.reg.SetTelemetry(t)
}

// Add starts a controller for a topology already registered in the
// registry (see Registry.AddTopology) and shards the API to it.
func (s *Server) Add(topo string, opt ControllerOptions) (*Controller, error) {
	if opt.Telemetry == nil {
		s.mu.RLock()
		opt.Telemetry = s.tel
		s.mu.RUnlock()
	}
	c, err := NewController(topo, s.reg, opt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.controllers[topo]; ok {
		c.Close()
		return nil, fmt.Errorf("serve: topology %q already served", topo)
	}
	s.controllers[topo] = c
	return c, nil
}

// Controller returns the named topology's controller, or nil.
func (s *Server) Controller(topo string) *Controller {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.controllers[topo]
}

// Close stops every controller and drops every upgraded wire stream.
// It is Shutdown without a deadline.
func (s *Server) Close() { _ = s.Shutdown(context.Background()) }

// Shutdown gracefully drains the server: upgraded wire streams are
// closed first (hijacked connections live outside the HTTP server's
// lifecycle, so they must be reached explicitly), then every controller
// is closed concurrently — each finishes the message it is processing
// and answers queued sync requests with ErrClosed so no client hangs.
// The drain is bounded by ctx; on deadline the controllers keep
// draining in the background and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeWireConns()
	s.mu.Lock()
	ctrls := s.controllers
	s.controllers = make(map[string]*Controller)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, c := range ctrls {
			wg.Add(1)
			go func(c *Controller) {
				defer wg.Done()
				c.Close()
			}(c)
		}
		wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ready reports whether the server is ready to serve real decisions:
// every expected topology (every currently served one when none are
// named) must have a controller that has published at least one
// non-bootstrap decision. The returned error names the first unready
// topology — the body of the daemon's 503 /readyz response.
func (s *Server) Ready(expected ...string) error {
	s.mu.RLock()
	if len(expected) == 0 {
		expected = make([]string, 0, len(s.controllers))
		for name := range s.controllers {
			expected = append(expected, name)
		}
		sort.Strings(expected)
	}
	ctrls := make([]*Controller, len(expected))
	for i, name := range expected {
		ctrls[i] = s.controllers[name]
	}
	s.mu.RUnlock()
	if len(expected) == 0 {
		return errors.New("no topologies served")
	}
	for i, c := range ctrls {
		if c == nil {
			return fmt.Errorf("topology %q not serving yet", expected[i])
		}
		if !c.Ready() {
			return fmt.Errorf("topology %q has not served a decision yet", expected[i])
		}
	}
	return nil
}

// Handler returns the HTTP handler (the server itself is not a handler
// so construction stays explicit).
func (s *Server) Handler() http.Handler { return s.mux }

// --- wire types ---------------------------------------------------------

// SnapshotRequest is the ingest body.
type SnapshotRequest struct {
	// Demand is the flat pair-indexed demand vector (te.Pairs layout).
	Demand []float64 `json:"demand"`
	// Async acknowledges without waiting for the decision.
	Async bool `json:"async,omitempty"`
}

// RoutingResponse describes a published decision (and doubles as the
// sync-ingest response).
type RoutingResponse struct {
	Topology     string    `json:"topology"`
	Seq          int64     `json:"seq"`
	Snapshot     int64     `json:"snapshot"`
	Version      int       `json:"version"`
	Ratios       []float64 `json:"ratios,omitempty"`
	Rerouted     bool      `json:"rerouted,omitempty"`
	ChurnLimited bool      `json:"churn_limited,omitempty"`
	Warming      bool      `json:"warming,omitempty"`
	At           time.Time `json:"at"`
}

// FailuresRequest reports failed undirected links by vertex pair.
type FailuresRequest struct {
	Links [][2]int `json:"links"`
}

// CheckpointResponse acknowledges an upload or rollback.
type CheckpointResponse struct {
	Topology string `json:"topology"`
	Version  int    `json:"version"`
	Source   string `json:"source"`
}

func routingResponse(topo string, d *Decision, withRatios bool) RoutingResponse {
	out := RoutingResponse{
		Topology:     topo,
		Seq:          d.Seq,
		Snapshot:     d.Snapshot,
		Version:      d.Version,
		Rerouted:     d.Rerouted,
		ChurnLimited: d.ChurnLimited,
		At:           d.At,
	}
	if withRatios {
		out.Ratios = d.Config.R // immutable by the Decision contract
	}
	return out
}

// --- handlers -----------------------------------------------------------

// telemetry returns the attached instrument set (nil when unobserved).
func (s *Server) telemetry() *Telemetry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel
}

func (s *Server) controllerOr404(w http.ResponseWriter, r *http.Request) *Controller {
	topo := r.PathValue("topo")
	c := s.Controller(topo)
	if c == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown topology %q", topo))
	}
	return c
}

func (s *Server) handleTopologies(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.controllers))
	for name := range s.controllers {
		names = append(names, name)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string][]string{"topologies": names})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	if tel := s.telemetry(); tel != nil {
		name := transportJSON
		if isWireRequest(r) || wantsWire(r) {
			name = transportBinHTTP
		}
		defer func(start time.Time) {
			tel.transport(name).observe(time.Since(start))
		}(time.Now())
	}
	var req SnapshotRequest
	if isWireRequest(r) {
		if !readWireSnapshot(w, r, &req) {
			return
		}
	} else if !readJSON(w, r, &req) {
		return
	}
	res, err := c.Ingest(req.Demand, !req.Async)
	if err != nil {
		// Only caller faults (malformed demand) are 4xx; lifecycle and
		// configuration conditions are the server's.
		httpError(w, ingestErrCode(err), err.Error())
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, map[string]bool{"queued": true})
		return
	}
	if res.Decision == nil {
		if wantsWire(r) {
			writeWireDecision(w, http.StatusOK, &wire.Decision{Snapshot: res.Snapshot, Warming: true})
			return
		}
		writeJSON(w, http.StatusOK, RoutingResponse{Topology: c.Topology(), Snapshot: res.Snapshot, Warming: true})
		return
	}
	if wantsWire(r) {
		writeWireDecision(w, http.StatusOK, wireDecision(res.Decision))
		return
	}
	writeJSON(w, http.StatusOK, routingResponse(c.Topology(), res.Decision, true))
}

func (s *Server) handleRouting(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	if wantsWire(r) {
		writeWireDecision(w, http.StatusOK, wireDecision(c.Decision()))
		return
	}
	writeJSON(w, http.StatusOK, routingResponse(c.Topology(), c.Decision(), true))
}

func (s *Server) handleFailures(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	var req FailuresRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := c.ReportFailures(req.Links); err != nil {
		// ErrClosed is the documented lifecycle condition (see
		// Controller), mapped to 503 exactly as on the snapshot path.
		if errors.Is(err, ErrClosed) {
			httpError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, routingResponse(c.Topology(), c.Decision(), true))
}

func (s *Server) handleListCheckpoints(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string][]CheckpointInfo{"checkpoints": s.reg.List(c.Topology())})
}

func (s *Server) handleUploadCheckpoint(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		// MaxBytesReader makes oversized bodies an explicit error rather
		// than a silent truncation that would surface as a baffling
		// parse failure.
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	ck, err := s.reg.Upload(c.Topology(), data, "upload")
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, CheckpointResponse{Topology: c.Topology(), Version: ck.Version, Source: ck.Source})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	c := s.controllerOr404(w, r)
	if c == nil {
		return
	}
	ck, err := s.reg.Rollback(c.Topology())
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Topology: c.Topology(), Version: ck.Version, Source: ck.Source})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make(map[string]Metrics, len(s.controllers))
	for name, c := range s.controllers {
		out[name] = c.Metrics()
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// --- JSON + wire plumbing -----------------------------------------------

// bodyBufPool recycles request-read and response-encode buffers: a
// burst of large snapshot posts reuses a handful of buffers instead of
// allocating per request. Buffers that ballooned (multi-MB checkpoint
// uploads) are dropped rather than pinned.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func putBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bodyBufPool.Put(buf)
	}
}

// readBody reads a bounded request body into a pooled buffer (callers
// must return it with putBodyBuf).
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, error) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		putBodyBuf(buf)
		return nil, err
	}
	return buf, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	buf, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	err = json.Unmarshal(buf.Bytes(), v)
	putBodyBuf(buf)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		putBodyBuf(buf)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	putBodyBuf(buf)
}

// isWireRequest reports a binary-framed request body.
func isWireRequest(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.MediaType)
}

// wantsWire reports that the client negotiated a binary response.
func wantsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.MediaType)
}

// readWireSnapshot decodes a binary snapshot-ingest body into req.
func readWireSnapshot(w http.ResponseWriter, r *http.Request, req *SnapshotRequest) bool {
	buf, err := readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	defer putBodyBuf(buf)
	t, payload, err := wire.DecodeFrame(buf.Bytes())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	if t != wire.TSnapshot {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("expected %s frame, got %s", wire.TSnapshot, t))
		return false
	}
	var m wire.Snapshot
	if err := wire.DecodeSnapshot(payload, &m); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	req.Demand = m.Demand
	req.Async = m.Async
	return true
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
