package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a thin typed wrapper over the serving API, used by the
// closed-loop replay harness, cmd/served's drive mode and the serving
// example.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil).
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Topologies lists served topology names.
func (c *Client) Topologies() ([]string, error) {
	var out struct {
		Topologies []string `json:"topologies"`
	}
	err := c.do(http.MethodGet, "/v1/topologies", nil, &out)
	return out.Topologies, err
}

// PostSnapshot ingests one demand snapshot synchronously and returns the
// decision computed from the window ending at it.
func (c *Client) PostSnapshot(topo string, demand []float64) (*RoutingResponse, error) {
	var out RoutingResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", SnapshotRequest{Demand: demand}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// PostSnapshotAsync ingests one demand snapshot without waiting for the
// decision.
func (c *Client) PostSnapshotAsync(topo string, demand []float64) error {
	return c.do(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", SnapshotRequest{Demand: demand, Async: true}, nil)
}

// Routing returns the topology's currently published decision.
func (c *Client) Routing(topo string) (*RoutingResponse, error) {
	var out RoutingResponse
	err := c.do(http.MethodGet, "/v1/topologies/"+topo+"/routing", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ReportFailures installs the failed-link set (empty clears) and returns
// the rerouted decision.
func (c *Client) ReportFailures(topo string, links [][2]int) (*RoutingResponse, error) {
	if links == nil {
		links = [][2]int{}
	}
	var out RoutingResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/failures", FailuresRequest{Links: links}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadCheckpoint uploads serialized model JSON (figret.MarshalJSON)
// and activates it.
func (c *Client) UploadCheckpoint(topo string, model []byte) (*CheckpointResponse, error) {
	var out CheckpointResponse
	// RawMessage passes the already-serialized checkpoint through do's
	// marshal step verbatim.
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/checkpoints", json.RawMessage(model), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Rollback re-activates the checkpoint preceding the active one.
func (c *Client) Rollback(topo string) (*CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/checkpoints/rollback", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Checkpoints lists the topology's registered checkpoints.
func (c *Client) Checkpoints(topo string) ([]CheckpointInfo, error) {
	var out struct {
		Checkpoints []CheckpointInfo `json:"checkpoints"`
	}
	err := c.do(http.MethodGet, "/v1/topologies/"+topo+"/checkpoints", nil, &out)
	return out.Checkpoints, err
}

// Metrics returns every topology's serving counters.
func (c *Client) Metrics() (map[string]Metrics, error) {
	var out map[string]Metrics
	err := c.do(http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}
