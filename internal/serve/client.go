package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"figret/internal/wire"
)

// defaultHTTPClient is the shared transport for clients without an
// explicit one: dial and response-header timeouts, an overall request
// deadline, and a keep-alive pool sized for replay-rate request streams.
// http.DefaultClient has none of these — a hung server would hang the
// caller forever and every closed-loop request could pay a fresh dial.
var defaultHTTPClient = &http.Client{
	Timeout: 2 * time.Minute,
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          128,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: 1 * time.Minute,
		ExpectContinueTimeout: 1 * time.Second,
	},
}

// Client is a thin typed wrapper over the serving API, used by the
// closed-loop replay harness, cmd/served's drive mode and the serving
// example.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (a shared client with sane timeouts and a
	// keep-alive pool when nil).
	HTTP *http.Client
	// Binary switches the snapshot and routing hot paths to the
	// content-negotiated wire codec over plain HTTP requests (the same
	// endpoints; bodies and responses are binary frames instead of
	// JSON). Checkpoint, metrics and topology management stay JSON.
	Binary bool
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil).
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(method, path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// apiError decodes the server's JSON error body (errors are JSON on
// every surface, binary included).
func apiError(method, path string, status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("serve: %s %s: %s (status %d)", method, path, e.Error, status)
	}
	return fmt.Errorf("serve: %s %s: status %d", method, path, status)
}

// doWire issues one content-negotiated binary request: build (when
// non-nil) borrows a pooled encoder for the request frame, and the
// response body is decoded as a full decision frame. A 202 (async ack)
// returns (nil, nil).
func (c *Client) doWire(method, path, topo string, build func(e *wire.Encoder) []byte) (*RoutingResponse, error) {
	e := wireEncPool.Get().(*wire.Encoder)
	var rd io.Reader
	if build != nil {
		rd = bytes.NewReader(build(e))
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		wireEncPool.Put(e)
		return nil, err
	}
	if build != nil {
		req.Header.Set("Content-Type", wire.MediaType)
	}
	req.Header.Set("Accept", wire.MediaType)
	resp, err := c.http().Do(req)
	// Do has fully consumed the request body (a bytes.Reader) by the
	// time it returns, so the encoder's buffer is free again.
	wireEncPool.Put(e)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, apiError(method, path, resp.StatusCode, data)
	}
	if resp.StatusCode == http.StatusAccepted {
		return nil, nil
	}
	t, payload, err := wire.DecodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	if t != wire.TDecision {
		return nil, fmt.Errorf("serve: %s %s: unexpected %s frame", method, path, t)
	}
	var d wire.Decision
	if err := wire.DecodeDecision(payload, &d); err != nil {
		return nil, fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	return wireToRouting(topo, &d), nil
}

// wireToRouting converts a decoded wire decision into the JSON
// surface's response type. Ratios are copied (wire decode buffers are
// reused); a zero AtUnixNanos maps back to the zero time so warming
// responses match the JSON path field for field.
func wireToRouting(topo string, d *wire.Decision) *RoutingResponse {
	out := &RoutingResponse{
		Topology:     topo,
		Seq:          d.Seq,
		Snapshot:     d.Snapshot,
		Version:      d.Version,
		Rerouted:     d.Rerouted,
		ChurnLimited: d.ChurnLimited,
		Warming:      d.Warming,
	}
	if len(d.Ratios) > 0 {
		out.Ratios = append([]float64(nil), d.Ratios...)
	}
	if d.AtUnixNanos != 0 {
		out.At = time.Unix(0, d.AtUnixNanos)
	}
	return out
}

// Topologies lists served topology names.
func (c *Client) Topologies() ([]string, error) {
	var out struct {
		Topologies []string `json:"topologies"`
	}
	err := c.do(http.MethodGet, "/v1/topologies", nil, &out)
	return out.Topologies, err
}

// PostSnapshot ingests one demand snapshot synchronously and returns the
// decision computed from the window ending at it.
func (c *Client) PostSnapshot(topo string, demand []float64) (*RoutingResponse, error) {
	if c.Binary {
		out, err := c.doWire(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", topo,
			func(e *wire.Encoder) []byte { return e.Snapshot(&wire.Snapshot{Demand: demand}) })
		if err != nil {
			return nil, err
		}
		if out == nil {
			return nil, fmt.Errorf("serve: sync snapshot answered with an ack")
		}
		return out, nil
	}
	var out RoutingResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", SnapshotRequest{Demand: demand}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// PostSnapshotAsync ingests one demand snapshot without waiting for the
// decision.
func (c *Client) PostSnapshotAsync(topo string, demand []float64) error {
	if c.Binary {
		_, err := c.doWire(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", topo,
			func(e *wire.Encoder) []byte { return e.Snapshot(&wire.Snapshot{Demand: demand, Async: true}) })
		return err
	}
	return c.do(http.MethodPost, "/v1/topologies/"+topo+"/snapshots", SnapshotRequest{Demand: demand, Async: true}, nil)
}

// Routing returns the topology's currently published decision.
func (c *Client) Routing(topo string) (*RoutingResponse, error) {
	if c.Binary {
		return c.doWire(http.MethodGet, "/v1/topologies/"+topo+"/routing", topo, nil)
	}
	var out RoutingResponse
	err := c.do(http.MethodGet, "/v1/topologies/"+topo+"/routing", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ReportFailures installs the failed-link set (empty clears) and returns
// the rerouted decision.
func (c *Client) ReportFailures(topo string, links [][2]int) (*RoutingResponse, error) {
	if links == nil {
		links = [][2]int{}
	}
	var out RoutingResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/failures", FailuresRequest{Links: links}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadCheckpoint uploads serialized model JSON (figret.MarshalJSON)
// and activates it.
func (c *Client) UploadCheckpoint(topo string, model []byte) (*CheckpointResponse, error) {
	var out CheckpointResponse
	// RawMessage passes the already-serialized checkpoint through do's
	// marshal step verbatim.
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/checkpoints", json.RawMessage(model), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Rollback re-activates the checkpoint preceding the active one.
func (c *Client) Rollback(topo string) (*CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.do(http.MethodPost, "/v1/topologies/"+topo+"/checkpoints/rollback", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Checkpoints lists the topology's registered checkpoints.
func (c *Client) Checkpoints(topo string) ([]CheckpointInfo, error) {
	var out struct {
		Checkpoints []CheckpointInfo `json:"checkpoints"`
	}
	err := c.do(http.MethodGet, "/v1/topologies/"+topo+"/checkpoints", nil, &out)
	return out.Checkpoints, err
}

// Metrics returns every topology's serving counters.
func (c *Client) Metrics() (map[string]Metrics, error) {
	var out map[string]Metrics
	err := c.do(http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}
