// Package serve is the online TE serving subsystem: it wraps the offline
// stack — trained figret models, the te reroute machinery, the drift
// detector and the memoized omniscient oracle — into a running controller
// service. A Registry holds versioned model checkpoints per topology with
// atomic hot-swap and rollback; a Controller (one goroutine per topology)
// ingests streamed demand snapshots into a sliding window, serves routing
// decisions through pooled predictors, reroutes around reported link
// failures, rate-limits configuration churn, and triggers background
// retraining when the drift detector fires; Server exposes the whole thing
// over an HTTP/JSON API that Replay can drive closed-loop from a recorded
// trace. The offline components are used unchanged — the server is purely
// additive, so anything trained or evaluated offline serves verbatim.
//
// The path sets registered with AddTopology are the serving side of the
// shared candidate-path precomputation layer (te.NewPathSetOpt +
// te.PathStore, DESIGN.md §8): cmd/served builds them through the same
// parallel, cache-backed constructor as the trainer and the evaluation
// engine, so a daemon restarting against a warm cache skips the Yen solves
// that otherwise dominate startup.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"figret/internal/figret"
	"figret/internal/te"
	"figret/internal/traffic"
)

// Checkpoint is one immutable registry entry: a model version plus its
// serialized form. The Model must never be trained after registration —
// decision paths read its weights concurrently through pooled predictors.
type Checkpoint struct {
	// Version is the registry-assigned monotonically increasing id (1-based
	// per topology).
	Version int
	// Source records how the checkpoint arrived: "bootstrap", "upload" or
	// "retrain".
	Source string
	// Data is the canonical serialized form (figret.MarshalJSON). The
	// served Model is always LoadModel(Data), so what the registry serves
	// is bitwise the checkpoint's round-trip — the invariant the figret
	// checkpoint round-trip tests pin down.
	Data []byte
	// Model is the deserialized model this checkpoint serves.
	Model *figret.Model

	// pool recycles goroutine-confined predictors for Model. Each borrow
	// owns every buffer its forward pass touches, so concurrent Predict
	// calls on one checkpoint are race-free and the forward pass costs no
	// per-call allocations at steady state (the returned decision config
	// is a fresh, immutable allocation by design).
	pool sync.Pool
}

// Predict runs one inference on a pooled predictor. Safe for concurrent
// use; output is bitwise identical to figret.Model.Predict on the same
// window.
func (c *Checkpoint) Predict(window []float64) (*te.Config, error) {
	p, _ := c.pool.Get().(*figret.Predictor)
	if p == nil {
		p = c.Model.NewPredictor()
	}
	cfg, err := p.Predict(window)
	c.pool.Put(p)
	return cfg, err
}

// PredictAt is the decision hot path: inference for snapshot t of tr
// from the window ending at t-1, assembled directly into the pooled
// predictor's input buffer — no window allocation or extra copy. Output
// is bitwise identical to Predict on tr.Window(t, H).
func (c *Checkpoint) PredictAt(tr *traffic.Trace, t int) (*te.Config, error) {
	p, _ := c.pool.Get().(*figret.Predictor)
	if p == nil {
		p = c.Model.NewPredictor()
	}
	cfg, err := p.PredictAt(tr, t)
	c.pool.Put(p)
	return cfg, err
}

// CheckpointInfo is the exported metadata of one registry entry.
type CheckpointInfo struct {
	Version int    `json:"version"`
	Source  string `json:"source"`
	Bytes   int    `json:"bytes"`
	Active  bool   `json:"active"`
}

// topoModels is one topology's version stack.
type topoModels struct {
	ps       *te.PathSet
	versions []*Checkpoint
	next     int
	active   atomic.Pointer[Checkpoint]
}

// Registry holds versioned model checkpoints for every served topology.
// Reads of the active checkpoint are a single atomic load (the decision
// hot path); installs, uploads and rollbacks are serialized per registry
// and swap the active pointer atomically, so a decision in flight keeps
// the checkpoint it grabbed and the next decision sees the new one —
// hot-swap never blocks or drops a request.
type Registry struct {
	mu    sync.Mutex
	topos map[string]*topoModels
	tel   *Telemetry
}

// SetTelemetry attaches the observability instrument set: checkpoint
// installs and rollbacks are counted per topology and source. A nil
// Telemetry (the default) keeps the registry unobserved.
func (r *Registry) SetTelemetry(t *Telemetry) {
	r.mu.Lock()
	r.tel = t
	r.mu.Unlock()
}

// telemetry returns the attached instrument set (nil-safe for callers).
func (r *Registry) telemetry() *Telemetry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{topos: make(map[string]*topoModels)}
}

// AddTopology registers a topology's path set. Checkpoints can only be
// installed for registered topologies, and every install is validated
// against this path set.
func (r *Registry) AddTopology(name string, ps *te.PathSet) error {
	if ps == nil {
		return fmt.Errorf("serve: nil path set for topology %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.topos[name]; ok {
		return fmt.Errorf("serve: topology %q already registered", name)
	}
	r.topos[name] = &topoModels{ps: ps, next: 1}
	return nil
}

// Topologies lists registered topology names (unordered).
func (r *Registry) Topologies() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.topos))
	for name := range r.topos {
		out = append(out, name)
	}
	return out
}

// PathSet returns the registered path set for a topology, or nil.
func (r *Registry) PathSet(topo string) *te.PathSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tm := r.topos[topo]; tm != nil {
		return tm.ps
	}
	return nil
}

// Install serializes m, round-trips it through LoadModel and activates the
// result as the topology's next version. Serving the round-trip (rather
// than m itself) guarantees the served weights are exactly what Data
// records — uploads and in-process installs behave identically.
func (r *Registry) Install(topo string, m *figret.Model, source string) (*Checkpoint, error) {
	data, err := m.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("serve: serialize model for %q: %w", topo, err)
	}
	return r.install(topo, data, source, nil)
}

// InstallIf is Install gated on the active checkpoint: the new version is
// only activated while expect is still serving, so a slow background
// producer (the drift retrainer) cannot silently supersede a checkpoint
// installed while it was working. It returns ErrSuperseded otherwise.
func (r *Registry) InstallIf(topo string, m *figret.Model, source string, expect *Checkpoint) (*Checkpoint, error) {
	data, err := m.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("serve: serialize model for %q: %w", topo, err)
	}
	return r.install(topo, data, source, expect)
}

// ErrSuperseded reports an InstallIf whose expected incumbent was no
// longer the active checkpoint.
var ErrSuperseded = errors.New("active checkpoint changed")

// Upload validates a serialized checkpoint against the topology's path set
// and atomically activates it as the next version.
func (r *Registry) Upload(topo string, data []byte, source string) (*Checkpoint, error) {
	return r.install(topo, data, source, nil)
}

// install deserializes and activates one checkpoint. Deserialization —
// the expensive part for multi-MB checkpoints — runs outside the
// registry lock, so an upload for one topology never stalls another
// topology's Active reads (the decision hot path). When expect is
// non-nil the activation is conditional on it still being active.
func (r *Registry) install(topo string, data []byte, source string, expect *Checkpoint) (*Checkpoint, error) {
	r.mu.Lock()
	tm := r.topos[topo]
	r.mu.Unlock()
	if tm == nil {
		return nil, fmt.Errorf("serve: unknown topology %q", topo)
	}
	m, err := figret.LoadModel(tm.ps, data) // tm.ps is immutable after AddTopology
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint rejected for %q: %w", topo, err)
	}
	ck := &Checkpoint{
		Source: source,
		Data:   append([]byte(nil), data...),
		Model:  m,
	}
	r.mu.Lock()
	if expect != nil && tm.active.Load() != expect {
		r.mu.Unlock()
		return nil, fmt.Errorf("serve: %q: %w", topo, ErrSuperseded)
	}
	ck.Version = tm.next
	tm.next++
	tm.versions = append(tm.versions, ck)
	tm.active.Store(ck)
	// Retention: drop the oldest retired versions beyond the bound so a
	// long-running daemon with drift retraining cannot grow without
	// limit. The active checkpoint is never pruned.
	if over := len(tm.versions) - retainVersions; over > 0 {
		kept := tm.versions[:0]
		for _, v := range tm.versions {
			if over > 0 && v != ck {
				over--
				continue
			}
			kept = append(kept, v)
		}
		tm.versions = kept
	}
	tel := r.tel
	r.mu.Unlock()
	tel.topo(topo).install(source)
	return ck, nil
}

// retainVersions bounds each topology's checkpoint stack; older retired
// versions are pruned on install (rollback targets beyond it are gone,
// which is the price of bounded memory on multi-MB checkpoints).
const retainVersions = 16

// Active returns the topology's currently served checkpoint (nil when none
// is installed). This is the decision hot path: a brief lookup in the
// append-only topology map plus one atomic load — never blocked by
// checkpoint deserialization (see Upload).
func (r *Registry) Active(topo string) *Checkpoint {
	r.mu.Lock()
	tm := r.topos[topo]
	r.mu.Unlock()
	if tm == nil {
		return nil
	}
	return tm.active.Load()
}

// Get returns the topology's checkpoint with the given version, or nil.
// Retired (rolled-back) versions are not found.
func (r *Registry) Get(topo string, version int) *Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	tm := r.topos[topo]
	if tm == nil {
		return nil
	}
	for _, ck := range tm.versions {
		if ck.Version == version {
			return ck
		}
	}
	return nil
}

// Rollback retires the active checkpoint and re-activates its predecessor
// on the version stack. The retired version is removed (a rollback is a
// statement that the checkpoint is bad); it errors when fewer than two
// versions exist.
func (r *Registry) Rollback(topo string) (*Checkpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tm := r.topos[topo]
	if tm == nil {
		return nil, fmt.Errorf("serve: unknown topology %q", topo)
	}
	cur := tm.active.Load()
	if cur == nil {
		return nil, fmt.Errorf("serve: %q has no active checkpoint", topo)
	}
	idx := -1
	for i, ck := range tm.versions {
		if ck == cur {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return nil, fmt.Errorf("serve: %q has no earlier checkpoint to roll back to", topo)
	}
	prev := tm.versions[idx-1]
	tm.versions = append(tm.versions[:idx], tm.versions[idx+1:]...)
	tm.active.Store(prev)
	r.tel.topo(topo).rollback()
	return prev, nil
}

// List returns the topology's checkpoint metadata in version order.
func (r *Registry) List(topo string) []CheckpointInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	tm := r.topos[topo]
	if tm == nil {
		return nil
	}
	cur := tm.active.Load()
	out := make([]CheckpointInfo, len(tm.versions))
	for i, ck := range tm.versions {
		out[i] = CheckpointInfo{
			Version: ck.Version,
			Source:  ck.Source,
			Bytes:   len(ck.Data),
			Active:  ck == cur,
		}
	}
	return out
}
