package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"figret/internal/obs"
	"figret/internal/te"
	"figret/internal/traffic"
)

// replayDecisions runs a sync replay and strips the wall-clock stamps so
// two runs are comparable bitwise.
func replayDecisions(t *testing.T, tel *Telemetry, wireTransport bool, ps *te.PathSet, tr *traffic.Trace, data []byte) []RoutingResponse {
	t.Helper()
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	srv.UseTelemetry(tel)
	if _, err := srv.Add("pod", ControllerOptions{HistoryCap: 64, MaxChurn: 0.4}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()
	client := NewClient(hs.URL)
	if _, err := client.UploadCheckpoint("pod", data); err != nil {
		t.Fatal(err)
	}
	var bin BinClientOptions
	if tel != nil {
		bin.Telemetry = tel.Stream("pod")
	}
	res, err := Replay(client, "pod", ps, tr, ReplayOptions{Wire: wireTransport, Bin: bin})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]RoutingResponse, len(res.Decisions))
	for i, d := range res.Decisions {
		out[i] = *d
		out[i].At = time.Time{}
	}
	return out
}

// TestTelemetryZeroImpact is the tentpole's no-perturbation guarantee:
// the same trace replayed with full telemetry attached and with none
// must produce bitwise-identical decision sequences, on both the JSON
// and the upgraded wire transport.
func TestTelemetryZeroImpact(t *testing.T) {
	ps, tr, m := fixture(t, 40, 5)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, wire := range []bool{false, true} {
		name := "json"
		if wire {
			name = "wire"
		}
		t.Run(name, func(t *testing.T) {
			bare := replayDecisions(t, nil, wire, ps, tr, data)
			tel := NewTelemetry(obs.NewRegistry())
			observed := replayDecisions(t, tel, wire, ps, tr, data)
			if !reflect.DeepEqual(bare, observed) {
				t.Fatal("decisions with telemetry differ from decisions without")
			}
		})
	}
}

// TestTelemetryCountersDuringReplay checks the wiring end to end: after
// replays over both transports, the scraped Prometheus page must carry
// non-zero decision, stage, transport and wire-stream series.
func TestTelemetryCountersDuringReplay(t *testing.T) {
	ps, tr, m := fixture(t, 30, 6)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	replayDecisions(t, tel, false, ps, tr, data)
	replayDecisions(t, tel, true, ps, tr, data)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, want := range []string{
		`figret_serve_snapshots_total{topology="pod"}`,
		`figret_serve_decisions_total{topology="pod"}`,
		`figret_serve_decision_duration_seconds_count{topology="pod"}`,
		`figret_serve_stage_duration_seconds_count{stage="predict",topology="pod"}`,
		`figret_serve_transport_requests_total{transport="json"}`,
		`figret_serve_transport_requests_total{transport="wire"}`,
		`figret_serve_checkpoint_installs_total{source="upload",topology="pod"}`,
		`figret_wire_connections_total`,
		`figret_stream_decisions_total{encoding="full",topology="pod"}`,
	} {
		idx := strings.Index(page, want)
		if idx < 0 {
			t.Fatalf("scrape missing %s\n%s", want, page)
		}
		rest := page[idx+len(want):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		if v := strings.TrimSpace(rest); v == "0" {
			t.Errorf("%s stayed zero after replay", want)
		}
	}
}

// TestServerShutdownDrains is the graceful-exit regression test: with
// sync ingests in flight, Shutdown must complete within its deadline and
// every pending caller must get an answer — a decision or ErrClosed,
// never a hang — and the server must refuse work afterwards.
func TestServerShutdownDrains(t *testing.T) {
	ps, tr, m := fixture(t, 20, 7)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	c, err := srv.Add("pod", ControllerOptions{HistoryCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}

	const ingesters = 8
	var wg sync.WaitGroup
	errs := make([]error, ingesters)
	started := make(chan struct{}, ingesters)
	for i := 0; i < ingesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var once sync.Once
			for s := 0; ; s = (s + 1) % tr.Len() {
				_, err := c.Ingest(tr.At(s), true)
				once.Do(func() { started <- struct{}{} })
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	for i := 0; i < ingesters; i++ {
		<-started
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain within deadline: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("ingester %d exited with %v, want ErrClosed", i, err)
		}
	}
	if _, err := c.Ingest(tr.At(0), true); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after shutdown: %v, want ErrClosed", err)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServerReady pins the readiness contract: not ready before any real
// decision, ready once every expected topology has served one, and
// unknown expected topologies stay not-ready.
func TestServerReady(t *testing.T) {
	ps, tr, m := fixture(t, 20, 8)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	defer srv.Close()
	if err := srv.Ready(); err == nil {
		t.Fatal("empty server reported ready")
	}
	if err := srv.Ready("pod"); err == nil {
		t.Fatal("ready before the topology was added")
	}
	c, err := srv.Add("pod", ControllerOptions{HistoryCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Ready(); err == nil {
		t.Fatal("ready before any decision (bootstrap fallback must not count)")
	}
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	// Warm the window past H and force one sync decision.
	for s := 0; s < 5; s++ {
		if _, err := c.Ingest(tr.At(s), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Ready(); err != nil {
		t.Fatalf("not ready after serving a decision: %v", err)
	}
	if err := srv.Ready("pod", "ghost"); err == nil {
		t.Fatal("ready with an unknown expected topology")
	}
}
