package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/textproto"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"figret/internal/te"
	"figret/internal/wire"
)

// BinClientOptions tunes the binary stream client.
type BinClientOptions struct {
	// NoDelta disables delta-encoded decisions (the zero value
	// negotiates them: decisions arrive as changed-pairs deltas whenever
	// that is smaller than the full vector).
	NoDelta bool
	// Window tunes the adaptive in-flight window used by Stream.
	Window WindowOptions
	// DialTimeout bounds one TCP connect + upgrade handshake (default
	// 5s).
	DialTimeout time.Duration
	// RedialAttempts is how many times a broken connection is redialed
	// with exponential backoff before an operation fails (default 4).
	RedialAttempts int
	// RedialBackoff is the initial backoff between redials, doubling per
	// attempt up to 2s (default 50ms).
	RedialBackoff time.Duration
	// ReadTimeout bounds one blocking response read (default 30s).
	ReadTimeout time.Duration
	// Telemetry, when non-nil, exports the stream's adaptive state
	// (window, RTT estimator, congestion/redial/resync counters, the
	// delta-vs-full mix) through the obs registry. Purely observational.
	Telemetry *StreamTelemetry
}

func (o BinClientOptions) withDefaults() BinClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 4
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 50 * time.Millisecond
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	return o
}

// BinClient drives the binary wire protocol over one persistent
// upgraded connection: an HTTP Upgrade handshake on the JSON API's own
// listener, then length-prefixed wire frames both ways. Requests
// pipeline (Stream keeps an adaptive, RTT-estimated CUBIC-style window
// of them in flight), responses arrive strictly in request order, and
// decisions may be delta-encoded against the previous one, with
// automatic full-decision resync.
//
// A broken connection redials with exponential backoff (and a fresh
// delta base — reconnecting is the coarse resync). Snapshot ingest is
// therefore at-least-once across redials: a request whose response was
// lost may have been ingested.
//
// A BinClient is not safe for concurrent use; replay and load
// generation are single-driver loops by construction.
type BinClient struct {
	hostport string
	topo     string
	ps       *te.PathSet
	opt      BinClientOptions
	tel      *StreamTelemetry

	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  wire.Encoder
	dec  wire.Decoder

	// Delta state: last holds the latest full decision (the delta
	// base), spare is the decode/apply target they swap through.
	last, spare *wire.Decision
	delta       wire.Delta
	haveLast    bool

	// Counters (see BinStats).
	deltas, fulls, resyncs, redials uint64
	bytesIn                         int64
}

// BinStats reports a client's transport counters.
type BinStats struct {
	// Deltas and Fulls count decision encodings received.
	Deltas, Fulls uint64
	// Resyncs counts full-decision resyncs forced by delta gaps.
	Resyncs uint64
	// Redials counts reconnects after broken connections.
	Redials uint64
}

// DialBin connects the binary stream client to the server at baseURL
// (the JSON client's BaseURL, e.g. "http://127.0.0.1:8080") and binds
// it to topo. ps must be the topology's path set — decisions are
// validated and delta-decoded against its layout.
func DialBin(baseURL, topo string, ps *te.PathSet, opt BinClientOptions) (*BinClient, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: bin client: %w", err)
	}
	host := u.Host
	if host == "" {
		host = baseURL // tolerate a bare host:port
	}
	if !strings.Contains(host, ":") {
		host += ":80"
	}
	c := &BinClient{
		hostport: host,
		topo:     topo,
		ps:       ps,
		opt:      opt.withDefaults(),
		tel:      opt.Telemetry,
		last:     &wire.Decision{},
		spare:    &wire.Decision{},
	}
	if err := c.dial(); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats returns the transport counters.
func (c *BinClient) Stats() BinStats {
	return BinStats{Deltas: c.deltas, Fulls: c.fulls, Resyncs: c.resyncs, Redials: c.redials}
}

// Topology returns the bound topology name.
func (c *BinClient) Topology() string { return c.topo }

// Close drops the connection.
func (c *BinClient) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// dial establishes one connection: TCP connect, HTTP upgrade, hello.
func (c *BinClient) dial() error {
	d := net.Dialer{Timeout: c.opt.DialTimeout}
	conn, err := d.Dial("tcp", c.hostport)
	if err != nil {
		return fmt.Errorf("serve: bin client: %w", err)
	}
	conn.SetDeadline(time.Now().Add(c.opt.DialTimeout))
	br := bufio.NewReaderSize(conn, wireWriteBufSize)
	if _, err := fmt.Fprintf(conn, "GET /v1/wire HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		c.hostport, wire.UpgradeProtocol); err != nil {
		conn.Close()
		return fmt.Errorf("serve: bin client: %w", err)
	}
	tp := textproto.NewReader(br)
	status, err := tp.ReadLine()
	if err != nil {
		conn.Close()
		return fmt.Errorf("serve: bin client: %w", err)
	}
	if !strings.Contains(status, " 101 ") {
		conn.Close()
		return fmt.Errorf("serve: bin client: upgrade refused: %q", status)
	}
	if _, err := tp.ReadMIMEHeader(); err != nil {
		conn.Close()
		return fmt.Errorf("serve: bin client: %w", err)
	}
	// Bind to the topology.
	if _, err := conn.Write(c.enc.Hello(&wire.Hello{Topo: c.topo, Delta: !c.opt.NoDelta})); err != nil {
		conn.Close()
		return fmt.Errorf("serve: bin client: %w", err)
	}
	t, payload, err := c.dec.ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("serve: bin client: hello: %w", err)
	}
	switch t {
	case wire.THelloAck:
		var ack wire.HelloAck
		if err := wire.DecodeHelloAck(payload, &ack); err != nil {
			conn.Close()
			return fmt.Errorf("serve: bin client: %w", err)
		}
		if ack.Pairs != c.ps.Pairs.Count() || ack.Paths != c.ps.NumPaths() {
			conn.Close()
			return fmt.Errorf("serve: bin client: topology %q serves %d pairs / %d paths, local path set has %d / %d",
				c.topo, ack.Pairs, ack.Paths, c.ps.Pairs.Count(), c.ps.NumPaths())
		}
	case wire.TError:
		var em wire.ErrorMsg
		if wire.DecodeError(payload, &em) == nil {
			conn.Close()
			return fmt.Errorf("serve: bin client: %s (status %d)", em.Msg, em.Code)
		}
		conn.Close()
		return fmt.Errorf("serve: bin client: malformed error reply")
	default:
		conn.Close()
		return fmt.Errorf("serve: bin client: unexpected %s reply to hello", t)
	}
	conn.SetDeadline(time.Time{})
	c.conn = conn
	c.br = br
	c.bw = bufio.NewWriterSize(conn, wireWriteBufSize)
	c.haveLast = false // fresh connection, fresh delta chain
	return nil
}

// redial re-establishes a broken connection with exponential backoff.
func (c *BinClient) redial() error {
	c.Close()
	backoff := c.opt.RedialBackoff
	var err error
	for i := 0; i < c.opt.RedialAttempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		if err = c.dial(); err == nil {
			c.redials++
			c.tel.onRedial()
			return nil
		}
	}
	return fmt.Errorf("serve: bin client: redial failed after %d attempts: %w", c.opt.RedialAttempts, err)
}

func (c *BinClient) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	return c.redial()
}

// wireError is an application-level error answered by the server.
type wireError struct {
	Code int
	Msg  string
}

func (e *wireError) Error() string {
	return fmt.Sprintf("serve: wire: %s (status %d)", e.Msg, e.Code)
}

// readReply reads one response frame and resolves it into either a
// decision (full or delta-applied), an ack (nil decision), or an
// error. Delta gaps trigger an inline resync only when resync is set
// (safe when nothing else is in flight); otherwise they surface as
// errors and the caller reconnects.
func (c *BinClient) readReply(deadline time.Time, resync bool) (*wire.Decision, error) {
	c.conn.SetReadDeadline(deadline)
	t, payload, err := c.dec.ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("serve: bin client: %w", err)
	}
	c.bytesIn += int64(len(payload)) + wire.FrameOverhead
	switch t {
	case wire.TAck:
		return nil, nil
	case wire.TError:
		var em wire.ErrorMsg
		if err := wire.DecodeError(payload, &em); err != nil {
			return nil, err
		}
		return nil, &wireError{Code: em.Code, Msg: em.Msg}
	case wire.TDecision:
		if err := wire.DecodeDecision(payload, c.spare); err != nil {
			return nil, err
		}
		c.fulls++
		c.tel.onDecision(false)
		if c.spare.Warming {
			// Warming carries no ratios; the delta base stays put.
			return c.spare, nil
		}
		c.last, c.spare = c.spare, c.last
		c.haveLast = true
		return c.last, nil
	case wire.TDelta:
		if err := wire.DecodeDelta(payload, &c.delta); err != nil {
			return nil, err
		}
		base := c.last
		if !c.haveLast {
			base = nil
		}
		if err := wire.ApplyDelta(base, &c.delta, wire.Layout(c.ps.PairPaths), c.spare); err != nil {
			if errors.Is(err, wire.ErrDeltaGap) && resync {
				return c.resyncFull(deadline)
			}
			return nil, err
		}
		c.deltas++
		c.tel.onDecision(true)
		c.last, c.spare = c.spare, c.last
		return c.last, nil
	default:
		return nil, fmt.Errorf("serve: bin client: unexpected %s reply", t)
	}
}

// resyncFull recovers from a delta gap: request a full decision and
// adopt it as the new base.
func (c *BinClient) resyncFull(deadline time.Time) (*wire.Decision, error) {
	c.resyncs++
	c.tel.onResync()
	if _, err := c.bw.Write(c.enc.Resync()); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(deadline)
	t, payload, err := c.dec.ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("serve: bin client: resync: %w", err)
	}
	if t != wire.TDecision {
		return nil, fmt.Errorf("serve: bin client: resync answered with %s", t)
	}
	if err := wire.DecodeDecision(payload, c.spare); err != nil {
		return nil, err
	}
	c.fulls++
	c.tel.onDecision(false)
	if !c.spare.Warming {
		c.last, c.spare = c.spare, c.last
		c.haveLast = true
		return c.last, nil
	}
	return c.spare, nil
}

// roundTrip sends one request frame and reads its reply, redialing once
// on a transport failure. frame is consumed before redial (it aliases
// the encoder buffer), so build is re-run via the build closure.
func (c *BinClient) roundTrip(build func() []byte) (*wire.Decision, error) {
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		err := c.writeFlush(build())
		var d *wire.Decision
		if err == nil {
			d, err = c.readReply(time.Now().Add(c.opt.ReadTimeout), true)
		}
		if err == nil {
			return d, nil
		}
		var we *wireError
		if errors.As(err, &we) {
			return nil, err // application error: the connection is fine
		}
		if attempt > 0 {
			return nil, err
		}
		// Transport fault: redial once and retry (at-least-once ingest).
		if rerr := c.redial(); rerr != nil {
			return nil, rerr
		}
	}
}

func (c *BinClient) writeFlush(frame []byte) error {
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// toRoutingResponse copies a wire decision into the JSON surface's
// response type, so both paths hand callers the same shape.
func (c *BinClient) toRoutingResponse(d *wire.Decision) *RoutingResponse {
	return wireToRouting(c.topo, d)
}

// PostSnapshot ingests one demand snapshot synchronously over the
// stream and returns the decision for the window ending at it.
func (c *BinClient) PostSnapshot(demand []float64) (*RoutingResponse, error) {
	d, err := c.roundTrip(func() []byte {
		return c.enc.Snapshot(&wire.Snapshot{Demand: demand})
	})
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("serve: bin client: ack for a sync snapshot")
	}
	return c.toRoutingResponse(d), nil
}

// PostSnapshotAsync ingests one snapshot without waiting for a
// decision.
func (c *BinClient) PostSnapshotAsync(demand []float64) error {
	d, err := c.roundTrip(func() []byte {
		return c.enc.Snapshot(&wire.Snapshot{Demand: demand, Async: true})
	})
	if err != nil {
		return err
	}
	if d != nil {
		return fmt.Errorf("serve: bin client: decision for an async snapshot")
	}
	return nil
}

// Routing returns the currently published decision.
func (c *BinClient) Routing() (*RoutingResponse, error) {
	d, err := c.roundTrip(func() []byte { return c.enc.Routing() })
	if err != nil {
		return nil, err
	}
	return c.toRoutingResponse(d), nil
}

// ReportFailures installs the failed-link set (empty clears) and
// returns the rerouted decision.
func (c *BinClient) ReportFailures(links [][2]int) (*RoutingResponse, error) {
	if links == nil {
		links = [][2]int{}
	}
	d, err := c.roundTrip(func() []byte { return c.enc.Failures(&wire.Failures{Links: links}) })
	if err != nil {
		return nil, err
	}
	return c.toRoutingResponse(d), nil
}

// StreamStats summarizes one pipelined Stream run.
type StreamStats struct {
	// Requests is how many snapshots were sent; Decisions how many
	// decision responses arrived (ack responses to async ingests are
	// counted in Acks).
	Requests, Decisions, Acks int
	// Elapsed is the wall-clock span from first send to last response.
	Elapsed time.Duration
	// MeanRTTMicros / P50RTTMicros / P99RTTMicros summarize per-request
	// round-trip times.
	MeanRTTMicros, P50RTTMicros, P99RTTMicros float64
	// MinWindow / MaxWindow / FinalWindow trace the adaptive in-flight
	// window; CongestionEvents counts multiplicative backoffs.
	MinWindow, MaxWindow, FinalWindow int
	CongestionEvents                  int
	// BytesSent / BytesReceived are wire-level frame byte counts.
	BytesSent, BytesReceived int64
}

// Stream pipelines n snapshot ingests through the connection under the
// adaptive window: requests are sent while fewer than the current
// window are unanswered, responses are consumed concurrently in request
// order, each response's RTT feeds the estimator, and an RTT above the
// current RTO backs the window off multiplicatively (at most once per
// smoothed RTT — one congestion episode is one event). demand(i) must
// return the i'th snapshot; onDecision, when non-nil, observes every
// decision in order (the pointee is reused — copy to retain).
//
// Stream does not redial mid-run: any transport fault aborts with an
// error, so a load measurement is never silently split across
// connections.
func (c *BinClient) Stream(n int, demand func(i int) []float64, onDecision func(i int, d *wire.Decision)) (*StreamStats, error) {
	return c.stream(n, demand, onDecision, false)
}

// StreamAsync pipelines n asynchronous ingests (the server acks each
// without computing a per-request decision; bursts coalesce
// server-side).
func (c *BinClient) StreamAsync(n int, demand func(i int) []float64) (*StreamStats, error) {
	return c.stream(n, demand, nil, true)
}

func (c *BinClient) stream(n int, demand func(i int) []float64, onDecision func(i int, d *wire.Decision), async bool) (*StreamStats, error) {
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	win := newCubicWindow(c.opt.Window)
	est := rttEstimator{MinRTO: c.opt.Window.MinRTO, MaxRTO: c.opt.Window.MaxRTO}
	stats := &StreamStats{MinWindow: win.size(), MaxWindow: win.size()}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		done     int
		rdErr    error
		lastCong time.Time
	)
	sendTimes := make([]time.Time, n)
	rtts := make([]time.Duration, 0, n)
	bytesInBase := c.bytesIn

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			d, err := c.readReply(time.Now().Add(c.opt.ReadTimeout), false)
			now := time.Now()
			mu.Lock()
			if err != nil {
				rdErr = err
				cond.Signal()
				mu.Unlock()
				return
			}
			sample := now.Sub(sendTimes[i])
			rtts = append(rtts, sample)
			est.observe(sample)
			if sample > est.rto() && now.Sub(lastCong) > est.sRTT() {
				win.onCongestion(now)
				lastCong = now
				stats.CongestionEvents++
				c.tel.onCongestion()
			} else {
				win.onAck(now)
			}
			c.tel.observeRTT(sample, &est, win.size())
			if w := win.size(); w < stats.MinWindow {
				stats.MinWindow = w
			} else if w > stats.MaxWindow {
				stats.MaxWindow = w
			}
			done++
			cond.Signal()
			mu.Unlock()
			if d == nil {
				stats.Acks++
			} else {
				stats.Decisions++
				if onDecision != nil {
					onDecision(i, d)
				}
			}
		}
	}()

	start := time.Now()
	sendErr := error(nil)
	for i := 0; i < n && sendErr == nil; i++ {
		mu.Lock()
		for i-done >= win.size() && rdErr == nil {
			// The window is full: push buffered requests to the server
			// before blocking on its responses.
			mu.Unlock()
			if err := c.bw.Flush(); err != nil {
				sendErr = err
			}
			mu.Lock()
			if sendErr != nil {
				break
			}
			if i-done >= win.size() && rdErr == nil {
				cond.Wait()
			}
		}
		if rdErr != nil {
			mu.Unlock()
			break
		}
		sendTimes[i] = time.Now()
		mu.Unlock()
		if sendErr != nil {
			break
		}
		frame := c.enc.Snapshot(&wire.Snapshot{Demand: demand(i), Async: async})
		stats.BytesSent += int64(len(frame))
		if _, err := c.bw.Write(frame); err != nil {
			sendErr = err
		}
	}
	if sendErr == nil {
		sendErr = c.bw.Flush()
	}
	if sendErr != nil {
		// Unblock the reader: it will fail its next read promptly.
		c.conn.Close()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stats.FinalWindow = win.size()
	stats.BytesReceived = c.bytesIn - bytesInBase

	if rdErr != nil || sendErr != nil {
		c.Close() // the stream is desynchronized; next op redials
		err := rdErr
		if err == nil {
			err = sendErr
		}
		return stats, fmt.Errorf("serve: bin client: stream aborted after %d/%d responses: %w", done, n, err)
	}
	stats.Requests = n
	fillRTTStats(stats, rtts)
	return stats, nil
}

// fillRTTStats computes the RTT summary (nearest-rank quantiles, the
// metrics.go convention).
func fillRTTStats(stats *StreamStats, rtts []time.Duration) {
	if len(rtts) == 0 {
		return
	}
	var sum time.Duration
	for _, r := range rtts {
		sum += r
	}
	stats.MeanRTTMicros = micros(sum / time.Duration(len(rtts)))
	sorted := append([]time.Duration(nil), rtts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	stats.P50RTTMicros = micros(quantileDur(sorted, 0.50))
	stats.P99RTTMicros = micros(quantileDur(sorted, 0.99))
}
