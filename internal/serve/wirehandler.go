package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"figret/internal/wire"
)

// wireWriteBufSize sizes the per-connection buffered writer of the
// upgraded stream; pipelined responses coalesce into few syscalls and
// flush when the inbound pipeline drains.
const wireWriteBufSize = 64 << 10

// handleWire upgrades the HTTP connection to the persistent binary
// stream protocol (Upgrade: figret-wire) and serves pipelined wire
// frames on it until the peer disconnects or the server closes. The
// stream rides the same listener as the JSON API, so deployment is one
// port and the JSON surface stays untouched.
func (s *Server) handleWire(w http.ResponseWriter, r *http.Request) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), wire.UpgradeProtocol) {
		w.Header().Set("Upgrade", wire.UpgradeProtocol)
		httpError(w, http.StatusUpgradeRequired, fmt.Sprintf("upgrade to %q required", wire.UpgradeProtocol))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		httpError(w, http.StatusInternalServerError, "connection cannot be hijacked")
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The HTTP server's read/write deadlines belong to the request
	// cycle, not the long-lived stream.
	conn.SetDeadline(time.Time{})
	if _, err := brw.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		wire.UpgradeProtocol + "\r\nConnection: Upgrade\r\n\r\n"); err != nil {
		conn.Close()
		return
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return
	}
	if !s.trackWireConn(conn) {
		conn.Close() // server already closed
		return
	}
	defer s.untrackWireConn(conn)
	s.serveWire(conn, brw.Reader)
}

// trackWireConn registers an upgraded connection for shutdown; it
// reports false when the server is already closed (hijacked conns are
// outside the HTTP server's lifecycle, so Server.Close must reach them
// explicitly).
func (s *Server) trackWireConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wireClosed {
		return false
	}
	if s.wireConns == nil {
		s.wireConns = make(map[net.Conn]struct{})
	}
	s.wireConns[conn] = struct{}{}
	return true
}

func (s *Server) untrackWireConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.wireConns, conn)
	s.mu.Unlock()
	conn.Close()
}

// closeWireConns force-closes every upgraded stream (called by
// Server.Close; their serveWire loops then return on read error).
func (s *Server) closeWireConns() {
	s.mu.Lock()
	s.wireClosed = true
	conns := make([]net.Conn, 0, len(s.wireConns))
	for c := range s.wireConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// wireSession is one upgraded connection's state: reusable codec
// buffers (per-connection buffer reuse — zero steady-state allocations
// on the snapshot→decision hot path) and the delta base, the last
// decision whose ratios the client holds, against which the next
// decision is delta-encoded.
type wireSession struct {
	s   *Server
	c   *Controller
	tel *Telemetry
	enc wire.Encoder
	dec wire.Decoder

	// Reused decode targets.
	snap  wire.Snapshot
	fails wire.Failures

	// Delta state. last.Ratios aliases the published decision's
	// immutable Config.R, so keeping the base costs no copy.
	wantDelta bool
	haveBase  bool
	last      wire.Decision
}

// serveWire runs the frame loop on an upgraded connection: frames are
// processed strictly in order (pipelined requests get pipelined
// responses, one frame each), and the write buffer flushes when the
// inbound pipeline drains — a full pipeline pays one syscall per batch,
// an idle one flushes per response.
func (s *Server) serveWire(conn net.Conn, br *bufio.Reader) {
	defer conn.Close()
	tel := s.telemetry()
	tel.wireConnOpen()
	defer tel.wireConnClose()
	bw := bufio.NewWriterSize(conn, wireWriteBufSize)
	ws := &wireSession{s: s, tel: tel}
	for {
		t, payload, err := ws.dec.ReadFrame(br)
		if err != nil {
			// Clean EOF, peer reset, or a corrupt frame: a framing error
			// leaves the stream unsynchronized, so the only safe answer
			// is to drop the connection (the client redials).
			return
		}
		frame, fatal := ws.handle(t, payload)
		if frame != nil {
			if _, err := bw.Write(frame); err != nil {
				return
			}
		}
		if fatal || br.Buffered() == 0 {
			if bw.Flush() != nil {
				return
			}
		}
		if fatal {
			return
		}
	}
}

// handle processes one frame and returns the response frame (a view
// into ws.enc, valid until the next call) plus whether the connection
// must close after writing it.
func (ws *wireSession) handle(t wire.MsgType, payload []byte) (frame []byte, fatal bool) {
	switch t {
	case wire.THello:
		var h wire.Hello
		if err := wire.DecodeHello(payload, &h); err != nil {
			return ws.errorFrame(http.StatusBadRequest, err.Error()), true
		}
		if ws.c != nil {
			return ws.errorFrame(http.StatusBadRequest, "connection already bound"), true
		}
		c := ws.s.Controller(h.Topo)
		if c == nil {
			return ws.errorFrame(http.StatusNotFound, fmt.Sprintf("unknown topology %q", h.Topo)), true
		}
		ws.c = c
		ws.wantDelta = h.Delta
		return ws.enc.HelloAck(&wire.HelloAck{Pairs: c.ps.Pairs.Count(), Paths: c.ps.NumPaths()}), false

	case wire.TSnapshot:
		if ws.c == nil {
			return ws.errorFrame(http.StatusBadRequest, "hello required before requests"), true
		}
		if err := wire.DecodeSnapshot(payload, &ws.snap); err != nil {
			return ws.errorFrame(http.StatusBadRequest, err.Error()), true
		}
		start := time.Now()
		res, err := ws.c.Ingest(ws.snap.Demand, !ws.snap.Async)
		if err != nil {
			return ws.errorFrame(ingestErrCode(err), err.Error()), errors.Is(err, ErrClosed)
		}
		if ws.snap.Async {
			ws.tel.transport(transportWire).observe(time.Since(start))
			return ws.enc.Ack(), false
		}
		if res.Decision == nil {
			// Warming: no ratios yet, and no delta base update.
			ws.tel.transport(transportWire).observe(time.Since(start))
			return ws.enc.Decision(&wire.Decision{Snapshot: res.Snapshot, Warming: true}), false
		}
		frame := ws.decisionFrame(res.Decision)
		ws.tel.transport(transportWire).observe(time.Since(start))
		return frame, false

	case wire.TRouting:
		if ws.c == nil {
			return ws.errorFrame(http.StatusBadRequest, "hello required before requests"), true
		}
		return ws.decisionFrame(ws.c.Decision()), false

	case wire.TFailures:
		if ws.c == nil {
			return ws.errorFrame(http.StatusBadRequest, "hello required before requests"), true
		}
		if err := wire.DecodeFailures(payload, &ws.fails); err != nil {
			return ws.errorFrame(http.StatusBadRequest, err.Error()), true
		}
		if err := ws.c.ReportFailures(ws.fails.Links); err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				code = http.StatusServiceUnavailable
			}
			return ws.errorFrame(code, err.Error()), errors.Is(err, ErrClosed)
		}
		return ws.decisionFrame(ws.c.Decision()), false

	case wire.TResync:
		if ws.c == nil {
			return ws.errorFrame(http.StatusBadRequest, "hello required before requests"), true
		}
		// Drop the delta base: the reply and the next decision are full.
		ws.haveBase = false
		ws.tel.wireResync()
		return ws.decisionFrame(ws.c.Decision()), false

	default:
		return ws.errorFrame(http.StatusBadRequest, fmt.Sprintf("unexpected %s frame", t)), true
	}
}

// decisionFrame encodes a published decision, delta-encoded against the
// connection's base when the client asked for deltas and the delta is
// strictly smaller (never across versions or warming states — those
// resync with a full decision, per the wire package contract).
func (ws *wireSession) decisionFrame(d *Decision) []byte {
	next := wire.Decision{
		Seq:          d.Seq,
		Snapshot:     d.Snapshot,
		Version:      d.Version,
		Rerouted:     d.Rerouted,
		ChurnLimited: d.ChurnLimited,
		AtUnixNanos:  d.At.UnixNano(),
		Ratios:       d.Config.R, // immutable by the Decision contract
	}
	var frame []byte
	ok := false
	if ws.wantDelta && ws.haveBase {
		frame, ok = ws.enc.DecisionDelta(&ws.last, &next, wire.Layout(ws.c.ps.PairPaths))
	}
	if !ok {
		frame = ws.enc.Decision(&next)
	}
	ws.tel.wireDecision(ok)
	ws.last = next
	ws.haveBase = true
	return frame
}

func (ws *wireSession) errorFrame(code int, msg string) []byte {
	return ws.enc.Error(&wire.ErrorMsg{Code: code, Msg: msg})
}

// ingestErrCode mirrors handleSnapshot's HTTP status mapping so the
// stream and JSON surfaces classify faults identically.
func ingestErrCode(err error) int {
	switch {
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNeverServable):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// wireEncPool recycles encoders for the content-negotiated HTTP binary
// endpoints (per-request borrow; across keep-alive connections this is
// per-connection buffer reuse without per-conn bookkeeping).
var wireEncPool = sync.Pool{New: func() any { return new(wire.Encoder) }}

// writeWireDecision writes a full binary decision frame as an HTTP
// response body. The stateless HTTP surface never delta-encodes —
// deltas need the per-connection base only the upgraded stream has.
func writeWireDecision(w http.ResponseWriter, status int, m *wire.Decision) {
	e := wireEncPool.Get().(*wire.Encoder)
	frame := e.Decision(m)
	w.Header().Set("Content-Type", wire.MediaType)
	w.WriteHeader(status)
	w.Write(frame)
	wireEncPool.Put(e)
}

func wireDecision(d *Decision) *wire.Decision {
	return &wire.Decision{
		Seq:          d.Seq,
		Snapshot:     d.Snapshot,
		Version:      d.Version,
		Rerouted:     d.Rerouted,
		ChurnLimited: d.ChurnLimited,
		AtUnixNanos:  d.At.UnixNano(),
		Ratios:       d.Config.R,
	}
}
