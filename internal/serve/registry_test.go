package serve

import (
	"fmt"
	"sync"
	"testing"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

// fixture builds a tiny served topology: the 4-PoD full mesh with a
// briefly trained model.
func fixture(tb testing.TB, T int, seed int64) (*te.PathSet, *traffic.Trace, *figret.Model) {
	tb.Helper()
	ps, err := te.NewPathSet(graph.PoDDB(), 3, nil)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := traffic.DC(traffic.PoDDB, 4, T, seed)
	if err != nil {
		tb.Fatal(err)
	}
	m := figret.New(ps, figret.Config{H: 4, Gamma: 1, Epochs: 2, Seed: seed, BatchSize: 8})
	if _, err := m.Train(tr); err != nil {
		tb.Fatal(err)
	}
	return ps, tr, m
}

func TestRegistryInstallRollback(t *testing.T) {
	ps, _, m1 := fixture(t, 40, 1)
	_, _, m2 := fixture(t, 40, 2)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	if ck := reg.Active("pod"); ck != nil {
		t.Fatalf("active before any install: %+v", ck)
	}

	ck1, err := reg.Install("pod", m1, "bootstrap")
	if err != nil {
		t.Fatal(err)
	}
	if ck1.Version != 1 || reg.Active("pod") != ck1 {
		t.Fatalf("v1 not active: %+v", ck1)
	}
	ck2, err := reg.Install("pod", m2, "retrain")
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Version != 2 || reg.Active("pod") != ck2 {
		t.Fatalf("v2 not active: %+v", ck2)
	}

	list := reg.List("pod")
	if len(list) != 2 || !list[1].Active || list[0].Active {
		t.Fatalf("list = %+v", list)
	}

	back, err := reg.Rollback("pod")
	if err != nil {
		t.Fatal(err)
	}
	if back != ck1 || reg.Active("pod") != ck1 {
		t.Fatalf("rollback did not restore v1: %+v", back)
	}
	if len(reg.List("pod")) != 1 {
		t.Fatalf("rolled-back version still listed: %+v", reg.List("pod"))
	}
	if _, err := reg.Rollback("pod"); err == nil {
		t.Fatal("rollback below the first version succeeded")
	}
}

func TestRegistryUploadValidation(t *testing.T) {
	ps, _, _ := fixture(t, 40, 1)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Upload("pod", []byte("{not json"), "upload"); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// A model trained for a different topology (different path count) must
	// be rejected.
	other, err := te.NewPathSet(graph.PoDWEB(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := figret.New(other, figret.Config{H: 4, Epochs: 1, Seed: 1})
	data, err := wrong.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Upload("pod", data, "upload"); err == nil {
		t.Fatal("wrong-topology checkpoint accepted")
	}
	if _, err := reg.Upload("nope", nil, "upload"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestCheckpointPredictMatchesModel pins the serving hot path to offline
// inference: pooled concurrent Checkpoint.Predict calls are bitwise
// identical to Model.Predict, which the closed-loop test then extends
// across the HTTP API.
func TestCheckpointPredictMatchesModel(t *testing.T) {
	ps, tr, m := fixture(t, 60, 3)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	ck, err := reg.Install("pod", m, "bootstrap")
	if err != nil {
		t.Fatal(err)
	}
	h := m.Cfg.H
	// Reference outputs first, serially: Model.Predict itself is not
	// concurrency-safe — that is precisely what the predictor pool is for.
	want := make(map[int]*te.Config)
	for ti := h; ti <= tr.Len(); ti++ {
		cfg, err := m.Predict(tr.Window(ti, h))
		if err != nil {
			t.Fatal(err)
		}
		want[ti] = cfg
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := h + w; ti <= tr.Len(); ti += 8 {
				got, err := ck.Predict(tr.Window(ti, h))
				if err != nil {
					errs <- err
					return
				}
				for p := range want[ti].R {
					if got.R[p] != want[ti].R[p] {
						errs <- fmt.Errorf("t=%d path %d: pooled %v, model %v", ti, p, got.R[p], want[ti].R[p])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
