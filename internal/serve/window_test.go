package serve

import (
	"testing"
	"time"
)

func TestRTTEstimator(t *testing.T) {
	var r rttEstimator
	if r.rto() != defaultMaxRTO {
		t.Fatalf("rto before any sample = %v, want MaxRTO %v", r.rto(), defaultMaxRTO)
	}

	r.observe(10 * time.Millisecond)
	if r.sRTT() != 10*time.Millisecond {
		t.Fatalf("first sample srtt = %v", r.sRTT())
	}
	// RFC 6298 initialization: RTTVAR = R/2, RTO = SRTT + 4·RTTVAR.
	if r.rto() != 30*time.Millisecond {
		t.Fatalf("first-sample rto = %v, want 30ms", r.rto())
	}

	// A steady stream of identical samples drives the variance to zero
	// and the RTO to the minimum clamp over SRTT.
	for i := 0; i < 200; i++ {
		r.observe(10 * time.Millisecond)
	}
	if got := r.sRTT(); got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Fatalf("converged srtt = %v", got)
	}
	if r.rto() >= 30*time.Millisecond {
		t.Fatalf("rto did not tighten: %v", r.rto())
	}

	// The clamps hold at both ends.
	fast := rttEstimator{}
	fast.observe(time.Microsecond)
	for i := 0; i < 100; i++ {
		fast.observe(time.Microsecond)
	}
	if fast.rto() != defaultMinRTO {
		t.Fatalf("min clamp: rto = %v, want %v", fast.rto(), defaultMinRTO)
	}
	slow := rttEstimator{MaxRTO: 50 * time.Millisecond}
	slow.observe(10 * time.Second)
	if slow.rto() != 50*time.Millisecond {
		t.Fatalf("max clamp: rto = %v", slow.rto())
	}

	// Negative samples (clock weirdness) must not poison the estimator.
	var neg rttEstimator
	neg.observe(-time.Second)
	if neg.sRTT() != 0 {
		t.Fatalf("negative sample srtt = %v", neg.sRTT())
	}
}

func TestCubicWindowSlowStart(t *testing.T) {
	w := newCubicWindow(WindowOptions{})
	if w.size() != 4 {
		t.Fatalf("initial window = %d, want 4", w.size())
	}
	now := time.Unix(0, 0)
	// Without congestion, slow start climbs one per ack to the max.
	for i := 0; i < 1000; i++ {
		w.onAck(now.Add(time.Duration(i) * time.Millisecond))
	}
	if w.size() != 256 {
		t.Fatalf("uncongested window = %d, want the 256 cap", w.size())
	}
}

func TestCubicWindowBackoffAndRecovery(t *testing.T) {
	w := newCubicWindow(WindowOptions{Initial: 100})
	now := time.Unix(0, 0)

	w.onCongestion(now)
	if got := w.size(); got != 70 {
		t.Fatalf("after backoff from 100: %d, want 70 (beta 0.7)", got)
	}
	backedOff := w.size()

	// Cubic recovery: acks with advancing time climb back toward the
	// pre-backoff plateau (wmax=100) and then past it.
	for i := 0; i < 400; i++ {
		now = now.Add(50 * time.Millisecond)
		w.onAck(now)
	}
	if w.size() <= backedOff {
		t.Fatalf("no recovery: window still %d", w.size())
	}
	if w.size() > 256 {
		t.Fatalf("window exceeded max: %d", w.size())
	}

	// Repeated congestion floors at Min, never below 1 in flight.
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond)
		w.onCongestion(now)
	}
	if w.size() != 1 {
		t.Fatalf("floor = %d, want 1", w.size())
	}
	// And the floor still recovers.
	for i := 0; i < 2000; i++ {
		now = now.Add(50 * time.Millisecond)
		w.onAck(now)
	}
	if w.size() < 2 {
		t.Fatalf("no recovery from floor: %d", w.size())
	}
}

func TestWindowOptionsDefaults(t *testing.T) {
	o := WindowOptions{}.withDefaults()
	if o.Initial != 4 || o.Min != 1 || o.Max != 256 || o.C != 0.4 || o.Beta != 0.7 {
		t.Fatalf("defaults = %+v", o)
	}
	// Initial is clamped into [Min, Max].
	o = WindowOptions{Initial: 500}.withDefaults()
	if o.Initial != 256 {
		t.Fatalf("initial above max = %v", o.Initial)
	}
}
