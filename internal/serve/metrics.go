package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRingSize bounds the decision-latency sample ring the quantiles
// are computed over; 1024 recent decisions give stable p50/p99 without
// unbounded memory.
const latencyRingSize = 1024

// Metrics is one topology's serving counters, exported by the metrics
// endpoint.
type Metrics struct {
	// Snapshots is the number of demand snapshots ingested.
	Snapshots uint64 `json:"snapshots"`
	// Decisions is the number of routing decisions published.
	Decisions uint64 `json:"decisions"`
	// Coalesced counts ingested snapshots that entered the demand window
	// without their own decision because newer snapshots were already
	// queued (async burst coalescing).
	Coalesced uint64 `json:"coalesced"`
	// Retrains counts drift-triggered retrains that swapped a checkpoint
	// in; RetrainsRejected counts candidates that lost the shadow
	// evaluation; RetrainsFailed counts retrains that errored outright
	// (training, shadow scoring or install), with the most recent error
	// in LastRetrainError.
	Retrains         uint64 `json:"retrains"`
	RetrainsRejected uint64 `json:"retrains_rejected"`
	RetrainsFailed   uint64 `json:"retrains_failed,omitempty"`
	LastRetrainError string `json:"last_retrain_error,omitempty"`
	// DecisionsPerSec is Decisions over the collector's uptime.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// P50/P99 are decision-latency quantiles in microseconds over the most
	// recent latencyRingSize decisions (0 before any decision).
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// ConfigError reports a standing misconfiguration that prevents
	// decisions (e.g. a history cap below the active checkpoint's
	// window) — the only way async ingesters, which never see per-request
	// errors, learn why routing is stuck on the fallback. Cleared by the
	// next successful decision.
	ConfigError string `json:"config_error,omitempty"`
}

// metricsRecorder collects one controller's counters. All methods are
// safe for concurrent use, and the hot-path writers (ingest, decision)
// are lock-free: a metrics scrape in flight can never stall the decision
// path, and the decision path can never tear a scrape. The latency ring
// holds each sample in its own atomic slot, so a snapshot reads every
// slot individually valid even while decisions land concurrently — the
// scrape's view is each-sample-consistent rather than
// whole-ring-consistent, which is exactly what quantiles over recent
// samples need.
type metricsRecorder struct {
	start     time.Time
	snapshots atomic.Uint64
	coalesced atomic.Uint64
	decisions atomic.Uint64
	ring      [latencyRingSize]atomic.Int64 // latency nanos; slot i holds decision (k*ring+i)

	// Retrain bookkeeping and the config-error string are cold paths
	// (background retrains, misconfigurations); they stay under a mutex.
	mu          sync.Mutex
	retrains    uint64
	rejected    uint64
	failed      uint64
	lastRetrain string
	configErr   string
}

func newMetricsRecorder() *metricsRecorder {
	return &metricsRecorder{start: time.Now()}
}

func (m *metricsRecorder) ingest(coalesced bool) {
	m.snapshots.Add(1)
	if coalesced {
		m.coalesced.Add(1)
	}
}

func (m *metricsRecorder) decision(latency time.Duration) {
	n := m.decisions.Add(1)
	m.ring[(n-1)%latencyRingSize].Store(int64(latency))
}

// configError records (or, with "", clears) the standing
// misconfiguration message. Clearing is tied to successful *model*
// decisions only — a failure-report republish of the fallback must not
// hide a still-present misconfiguration.
func (m *metricsRecorder) configError(msg string) {
	m.mu.Lock()
	m.configErr = msg
	m.mu.Unlock()
}

func (m *metricsRecorder) retrain(accepted bool) {
	m.mu.Lock()
	if accepted {
		m.retrains++
	} else {
		m.rejected++
	}
	m.mu.Unlock()
}

func (m *metricsRecorder) retrainFailed(err error) {
	m.mu.Lock()
	m.failed++
	m.lastRetrain = err.Error()
	m.mu.Unlock()
}

// snapshot returns a copy of the counters with quantiles computed over
// the latency ring. It never blocks a concurrent decision: ring slots
// are read atomically one by one, so a decision landing mid-snapshot
// contributes either its fresh sample or the slot's previous valid
// sample — never a torn value.
func (m *metricsRecorder) snapshot() Metrics {
	m.mu.Lock()
	out := Metrics{
		Retrains:         m.retrains,
		RetrainsRejected: m.rejected,
		RetrainsFailed:   m.failed,
		LastRetrainError: m.lastRetrain,
		ConfigError:      m.configErr,
	}
	m.mu.Unlock()
	out.Snapshots = m.snapshots.Load()
	out.Coalesced = m.coalesced.Load()
	out.Decisions = m.decisions.Load()

	n := out.Decisions
	if n > latencyRingSize {
		n = latencyRingSize
	}
	lat := make([]time.Duration, n)
	for i := range lat {
		lat[i] = time.Duration(m.ring[i].Load())
	}
	if elapsed := time.Since(m.start).Seconds(); elapsed > 0 {
		out.DecisionsPerSec = float64(out.Decisions) / elapsed
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		out.P50Micros = micros(quantileDur(lat, 0.50))
		out.P99Micros = micros(quantileDur(lat, 0.99))
	}
	return out
}

// quantileDur returns the q'th quantile of sorted durations by
// nearest-rank (ceil(q·n) ranks from the bottom): p99 of two samples is
// the larger one, so tail quantiles are never under-reported.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
