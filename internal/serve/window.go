package serve

import (
	"math"
	"time"
)

// This file is the congestion-control state of the adaptive pipelined
// client: an RFC 6298-style RTT estimator and a CUBIC-style in-flight
// window (the on-line end-to-end congestion-control shape of ndn-dpdk's
// segmented fetcher). Both are pure state machines — time enters only
// through explicit arguments — so their dynamics are unit-testable
// without sockets or sleeps.

// rttEstimator tracks smoothed RTT and variance (RFC 6298: SRTT/RTTVAR
// with gains 1/8 and 1/4) and derives a retransmission-style timeout
// used as the congestion signal threshold.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	n      int
	// MinRTO and MaxRTO clamp the timeout (defaults when zero:
	// defaultMinRTO/defaultMaxRTO).
	MinRTO, MaxRTO time.Duration
}

const (
	defaultMinRTO = 2 * time.Millisecond
	defaultMaxRTO = 10 * time.Second
)

// observe folds one RTT sample in.
func (r *rttEstimator) observe(rtt time.Duration) {
	if rtt < 0 {
		rtt = 0
	}
	if r.n == 0 {
		r.srtt = rtt
		r.rttvar = rtt / 2
	} else {
		d := r.srtt - rtt
		if d < 0 {
			d = -d
		}
		r.rttvar += (d - r.rttvar) / 4
		r.srtt += (rtt - r.srtt) / 8
	}
	r.n++
}

// sRTT returns the smoothed RTT (0 before any sample).
func (r *rttEstimator) sRTT() time.Duration { return r.srtt }

// rto returns the current timeout: SRTT + 4·RTTVAR, clamped to
// [MinRTO, MaxRTO]. Before any sample it returns MaxRTO — without an
// estimate there is no basis to call anything slow.
func (r *rttEstimator) rto() time.Duration {
	minRTO, maxRTO := r.MinRTO, r.MaxRTO
	if minRTO <= 0 {
		minRTO = defaultMinRTO
	}
	if maxRTO <= 0 {
		maxRTO = defaultMaxRTO
	}
	if r.n == 0 {
		return maxRTO
	}
	rto := r.srtt + 4*r.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// WindowOptions tunes the adaptive in-flight window.
type WindowOptions struct {
	// Initial is the starting window (default 4).
	Initial float64
	// Min and Max clamp the window (defaults 1 and 256).
	Min, Max float64
	// C is the CUBIC aggressiveness constant (default 0.4, the RFC 8312
	// value).
	C float64
	// Beta is the multiplicative-decrease factor applied on a congestion
	// event (default 0.7, the CUBIC value).
	Beta float64
	// MinRTO and MaxRTO clamp the RTT-estimated congestion threshold
	// (defaults 2ms and 10s).
	MinRTO, MaxRTO time.Duration
}

func (o WindowOptions) withDefaults() WindowOptions {
	if o.Initial <= 0 {
		o.Initial = 4
	}
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max <= 0 {
		o.Max = 256
	}
	if o.C <= 0 {
		o.C = 0.4
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = 0.7
	}
	if o.Initial < o.Min {
		o.Initial = o.Min
	}
	if o.Initial > o.Max {
		o.Initial = o.Max
	}
	return o
}

// cubicWindow is a CUBIC-style congestion window over request count:
// slow start doubles per RTT until the first congestion event, then
// window growth follows the cubic W(t) = C·(t−K)³ + Wmax curve —
// concave recovery toward the pre-backoff plateau Wmax, then convex
// probing past it. A congestion event backs the window off
// multiplicatively (×Beta) and starts a new epoch.
type cubicWindow struct {
	opt WindowOptions

	cwnd     float64
	wmax     float64
	ssthresh float64
	k        float64 // seconds to climb back to wmax on the cubic curve
	epoch    time.Time
}

func newCubicWindow(opt WindowOptions) *cubicWindow {
	opt = opt.withDefaults()
	return &cubicWindow{
		opt:      opt,
		cwnd:     opt.Initial,
		ssthresh: math.Inf(1),
	}
}

// size returns the integer window: how many requests may be in flight.
func (c *cubicWindow) size() int {
	n := int(c.cwnd)
	if n < 1 {
		n = 1
	}
	return n
}

// onAck advances the window for one acknowledged request at time now.
func (c *cubicWindow) onAck(now time.Time) {
	if c.cwnd < c.ssthresh {
		// Slow start: one window per window per RTT.
		c.cwnd += 1
		if c.cwnd > c.opt.Max {
			c.cwnd = c.opt.Max
		}
		return
	}
	if c.epoch.IsZero() {
		c.epoch = now
		wd := c.wmax
		if wd < c.cwnd {
			wd = c.cwnd
		}
		c.k = math.Cbrt(wd * (1 - c.opt.Beta) / c.opt.C)
	}
	t := now.Sub(c.epoch).Seconds()
	target := c.opt.C*math.Pow(t-c.k, 3) + c.wmax
	if target > c.cwnd {
		// Per-ack increment spreads the climb to the target across one
		// window of acks (the ndn-dpdk fetcher shape).
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		// Below the curve (e.g. right after backoff): probe gently.
		c.cwnd += 0.01 / c.cwnd
	}
	if c.cwnd > c.opt.Max {
		c.cwnd = c.opt.Max
	}
}

// onCongestion applies the multiplicative decrease at time now and
// starts a new cubic epoch. Callers rate-limit events (at most one per
// RTT), since every response of an over-full pipeline would otherwise
// signal the same congestion episode.
func (c *cubicWindow) onCongestion(now time.Time) {
	c.wmax = c.cwnd
	c.cwnd *= c.opt.Beta
	if c.cwnd < c.opt.Min {
		c.cwnd = c.opt.Min
	}
	c.ssthresh = c.cwnd
	c.epoch = time.Time{}
}
