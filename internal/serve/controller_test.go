package serve

import (
	"math"
	"testing"

	"figret/internal/figret"
	"figret/internal/te"
	"figret/internal/traffic"
)

// startController is the common controller fixture: a registered PoD
// topology with a trained bootstrap checkpoint.
func startController(t *testing.T, opt ControllerOptions) (*Controller, *Registry, *controllerFixture) {
	t.Helper()
	ps, tr, m := fixture(t, 60, 1)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	c, err := NewController("pod", reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, reg, &controllerFixture{ps: ps, tr: tr, m: m}
}

type controllerFixture struct {
	ps *te.PathSet
	tr *traffic.Trace
	m  *figret.Model
}

func TestControllerWarmingThenBitwiseDecisions(t *testing.T) {
	c, _, fx := startController(t, ControllerOptions{})
	h := 4
	for i := 0; i < fx.tr.Len(); i++ {
		res, err := c.Ingest(fx.tr.At(i), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot != int64(i) {
			t.Fatalf("snapshot index %d, want %d", res.Snapshot, i)
		}
		if i < h-1 {
			if !res.Warming || res.Decision != nil {
				t.Fatalf("t=%d: expected warming, got %+v", i, res)
			}
			continue
		}
		if res.Decision == nil {
			t.Fatalf("t=%d: no decision after warmup", i)
		}
		// The decision after ingesting snapshot i must equal offline
		// inference on the window ending at i — bitwise.
		want, err := fx.m.Predict(fx.tr.Window(i+1, h))
		if err != nil {
			t.Fatal(err)
		}
		for p := range want.R {
			if res.Decision.Config.R[p] != want.R[p] {
				t.Fatalf("t=%d path %d: served %v, offline %v", i, p, res.Decision.Config.R[p], want.R[p])
			}
		}
		if res.Decision.Version != 1 {
			t.Fatalf("t=%d: version %d", i, res.Decision.Version)
		}
		if pub := c.Decision(); pub.Seq != res.Decision.Seq {
			t.Fatalf("published seq %d, returned %d", pub.Seq, res.Decision.Seq)
		}
	}
}

func TestControllerHistoryCapBelowModelWindowErrors(t *testing.T) {
	// A history cap below the model's H can never leave warming; the
	// misconfiguration must surface as an ingest error, not an eternal
	// silent "warming" response.
	c, _, fx := startController(t, ControllerOptions{HistoryCap: 3}) // model H = 4
	for i := 0; i < 6; i++ {
		_, err := c.Ingest(fx.tr.At(i), true)
		if err == nil {
			t.Fatalf("t=%d: miscapped controller ingested without error", i)
		}
	}
}

func TestControllerSlidingWindowEviction(t *testing.T) {
	// A history cap of exactly H must still serve: eviction keeps the
	// newest H snapshots, and the decision matches offline inference on
	// them.
	c, _, fx := startController(t, ControllerOptions{HistoryCap: 4})
	var last *IngestResult
	var err error
	for i := 0; i < 12; i++ {
		last, err = c.Ingest(fx.tr.At(i), true)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := fx.m.Predict(fx.tr.Window(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	for p := range want.R {
		if last.Decision.Config.R[p] != want.R[p] {
			t.Fatalf("path %d: served %v, offline %v", p, last.Decision.Config.R[p], want.R[p])
		}
	}
}

func TestControllerFailureReroute(t *testing.T) {
	c, _, fx := startController(t, ControllerOptions{})
	for i := 0; i < 8; i++ {
		if _, err := c.Ingest(fx.tr.At(i), true); err != nil {
			t.Fatal(err)
		}
	}
	e := fx.ps.G.Edge(0)
	if err := c.ReportFailures([][2]int{{e.From, e.To}}); err != nil {
		t.Fatal(err)
	}
	dec := c.Decision()
	if !dec.Rerouted {
		t.Fatal("decision not marked rerouted")
	}
	fs := te.NewFailureSet(fx.ps.G, [][2]int{{e.From, e.To}})
	for p := range dec.Config.R {
		if fs.PathDown(fx.ps, p) && dec.Config.R[p] != 0 {
			t.Fatalf("failed path %d still carries ratio %v", p, dec.Config.R[p])
		}
	}
	if err := dec.Config.Validate(); err != nil {
		t.Fatalf("rerouted config invalid: %v", err)
	}
	// New snapshots keep rerouting until the failure clears.
	res, err := c.Ingest(fx.tr.At(8), true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Rerouted {
		t.Fatal("post-failure decision not rerouted")
	}
	if err := c.ReportFailures(nil); err != nil {
		t.Fatal(err)
	}
	res, err = c.Ingest(fx.tr.At(9), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision.Rerouted {
		t.Fatal("decision still rerouted after failures cleared")
	}
	want, err := fx.m.Predict(fx.tr.Window(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	for p := range want.R {
		if res.Decision.Config.R[p] != want.R[p] {
			t.Fatalf("path %d differs after failure clear", p)
		}
	}
}

func TestFailureClearWhileWarmingRestoresCleanBase(t *testing.T) {
	// Without a checkpoint the controller serves the uniform fallback;
	// failure handling must reroute from (and on clear return to) that
	// clean base rather than stacking reroutes on published decisions.
	ps, _, _ := fixture(t, 40, 1)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	c, err := NewController("pod", reg, ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	uniform := te.UniformConfig(ps)
	e := ps.G.Edge(0)
	if err := c.ReportFailures([][2]int{{e.From, e.To}}); err != nil {
		t.Fatal(err)
	}
	if dec := c.Decision(); !dec.Rerouted {
		t.Fatal("failure report on fallback not rerouted")
	}
	// Replace the failure set: the reroute must start from the clean
	// base, so paths over the healed first link carry mass again.
	e2 := ps.G.Edge(2)
	if err := c.ReportFailures([][2]int{{e2.From, e2.To}}); err != nil {
		t.Fatal(err)
	}
	fs1 := te.NewFailureSet(ps.G, [][2]int{{e.From, e.To}})
	fs2 := te.NewFailureSet(ps.G, [][2]int{{e2.From, e2.To}})
	dec := c.Decision()
	healedCarries := false
	for p := range dec.Config.R {
		if fs2.PathDown(ps, p) && dec.Config.R[p] != 0 {
			t.Fatalf("newly failed path %d carries %v", p, dec.Config.R[p])
		}
		if fs1.PathDown(ps, p) && !fs2.PathDown(ps, p) && dec.Config.R[p] > 0 {
			healedCarries = true
		}
	}
	if !healedCarries {
		t.Fatal("healed link still avoided: reroutes stacked instead of rebasing")
	}
	// Clearing restores the clean base exactly.
	if err := c.ReportFailures(nil); err != nil {
		t.Fatal(err)
	}
	dec = c.Decision()
	if dec.Rerouted {
		t.Fatal("cleared decision still marked rerouted")
	}
	for p := range dec.Config.R {
		if dec.Config.R[p] != uniform.R[p] {
			t.Fatalf("path %d: %v after clear, want uniform %v", p, dec.Config.R[p], uniform.R[p])
		}
	}
}

func TestControllerChurnLimit(t *testing.T) {
	const maxChurn = 0.05
	c, _, fx := startController(t, ControllerOptions{MaxChurn: maxChurn})
	var prev *te.Config
	for i := 0; i < 20; i++ {
		res, err := c.Ingest(fx.tr.At(i), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == nil {
			continue
		}
		cfg := res.Decision.Config
		if err := cfg.Validate(); err != nil {
			t.Fatalf("t=%d: churn-limited config invalid: %v", i, err)
		}
		if prev != nil {
			var churn float64
			for p := range cfg.R {
				churn += math.Abs(cfg.R[p] - prev.R[p])
			}
			if churn > maxChurn+1e-9 {
				t.Fatalf("t=%d: churn %v exceeds limit %v", i, churn, maxChurn)
			}
		}
		prev = cfg
	}
}

func TestChurnNeverBlendsOntoFailedPaths(t *testing.T) {
	// The reroute must run after the hysteresis blend: even under a tight
	// churn limit, the decision following a failure report carries zero
	// mass on every failed path — connectivity beats smoothness.
	c, _, fx := startController(t, ControllerOptions{MaxChurn: 0.01})
	for i := 0; i < 8; i++ {
		if _, err := c.Ingest(fx.tr.At(i), true); err != nil {
			t.Fatal(err)
		}
	}
	e := fx.ps.G.Edge(0)
	if err := c.ReportFailures([][2]int{{e.From, e.To}}); err != nil {
		t.Fatal(err)
	}
	fs := te.NewFailureSet(fx.ps.G, [][2]int{{e.From, e.To}})
	for i := 8; i < 12; i++ {
		res, err := c.Ingest(fx.tr.At(i), true)
		if err != nil {
			t.Fatal(err)
		}
		for p := range res.Decision.Config.R {
			if fs.PathDown(fx.ps, p) && res.Decision.Config.R[p] != 0 {
				t.Fatalf("t=%d: churn blend put %v back on failed path %d", i, res.Decision.Config.R[p], p)
			}
		}
		if err := res.Decision.Config.Validate(); err != nil {
			t.Fatalf("t=%d: %v", i, err)
		}
	}
}

func TestLimitChurn(t *testing.T) {
	ps, _, m := fixture(t, 40, 5)
	a := te.UniformConfig(ps)
	b, err := m.Predict(make([]float64, 4*ps.Pairs.Count()))
	if err != nil {
		t.Fatal(err)
	}
	var full float64
	for p := range b.R {
		full += math.Abs(b.R[p] - a.R[p])
	}
	if full == 0 {
		t.Skip("degenerate fixture: model output equals uniform")
	}
	// Below the limit: returned unchanged.
	out, limited := LimitChurn(a, b, full+1)
	if limited || out != b {
		t.Fatal("under-limit transition was clamped")
	}
	// Above the limit: exactly half the mass moves, feasibility holds.
	out, limited = LimitChurn(a, b, full/2)
	if !limited {
		t.Fatal("over-limit transition not clamped")
	}
	var moved float64
	for p := range out.R {
		moved += math.Abs(out.R[p] - a.R[p])
	}
	if math.Abs(moved-full/2) > 1e-9 {
		t.Fatalf("moved %v, want %v", moved, full/2)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("blended config invalid: %v", err)
	}
}

func TestControllerAsyncCoalescing(t *testing.T) {
	c, _, fx := startController(t, ControllerOptions{})
	// Queue a burst of async snapshots; all must enter the window even
	// when their decisions coalesce.
	for i := 0; i < 11; i++ {
		if _, err := c.Ingest(fx.tr.At(i), false); err != nil {
			t.Fatal(err)
		}
	}
	// A final sync ingest orders after the burst and proves the window
	// absorbed every snapshot: its decision matches offline inference on
	// the full 12-snapshot history.
	res, err := c.Ingest(fx.tr.At(11), true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.m.Predict(fx.tr.Window(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	for p := range want.R {
		if res.Decision.Config.R[p] != want.R[p] {
			t.Fatalf("path %d: burst ingest corrupted the window", p)
		}
	}
	m := c.Metrics()
	if m.Snapshots != 12 {
		t.Fatalf("snapshots = %d, want 12", m.Snapshots)
	}
	// Batch boundaries depend on scheduling, so the coalesced count is
	// only bounded, not exact: warming snapshots and coalesced snapshots
	// produce no decision, and the final sync ingest always decides.
	if m.Decisions == 0 || m.Decisions+m.Coalesced > 12 {
		t.Fatalf("decisions %d / coalesced %d inconsistent with 12 snapshots", m.Decisions, m.Coalesced)
	}
}
