package serve

import (
	"sync"
	"testing"
	"time"
)

// TestMetricsRecorderConcurrentSnapshot race-exercises the latency
// ring: decision/ingest writers hammer the recorder while snapshot
// readers scrape concurrently. Every scraped quantile must be a value
// some decision actually recorded (slots are atomic, so a torn read
// would surface as a nonsense latency), and the final counts must be
// exact. Run under -race this is the satellite's regression test for
// the lock-free-read snapshot contract.
func TestMetricsRecorderConcurrentSnapshot(t *testing.T) {
	m := newMetricsRecorder()
	const writers, perWriter = 4, 3000
	// Writers record only latencies from this fixed set, so any value
	// outside it observed by a reader is a torn or invented sample.
	// Zero is legal: a reader can observe the decision count before the
	// claimed ring slot's store lands (the slot then still reads as its
	// zero/previous value — valid, just not this decision's sample).
	valid := map[time.Duration]bool{
		0:                      true,
		5 * time.Microsecond:   true,
		50 * time.Microsecond:  true,
		500 * time.Microsecond: true,
	}
	latencies := []time.Duration{5 * time.Microsecond, 50 * time.Microsecond, 500 * time.Microsecond}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					got := m.snapshot()
					if got.Decisions > 0 {
						for _, q := range []float64{got.P50Micros, got.P99Micros} {
							if !valid[time.Duration(q*1e3)*time.Nanosecond] {
								t.Errorf("scraped quantile %vµs is not a recorded latency", q)
								return
							}
						}
					}
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				m.ingest(i%3 == 0)
				m.decision(latencies[i%len(latencies)])
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	got := m.snapshot()
	if want := uint64(writers * perWriter); got.Snapshots != want || got.Decisions != want {
		t.Fatalf("snapshots/decisions = %d/%d, want %d each", got.Snapshots, got.Decisions, want)
	}
	if want := uint64(writers * perWriter / 3); got.Coalesced != want {
		t.Fatalf("coalesced = %d, want %d", got.Coalesced, want)
	}
	if got.P50Micros == 0 || got.P99Micros < got.P50Micros {
		t.Fatalf("quantiles p50=%v p99=%v malformed", got.P50Micros, got.P99Micros)
	}
}

// TestMetricsRecorderRingQuantiles pins the quantile math on a quiet
// recorder: nearest-rank over the most recent ring contents.
func TestMetricsRecorderRingQuantiles(t *testing.T) {
	m := newMetricsRecorder()
	for i := 1; i <= 100; i++ {
		m.decision(time.Duration(i) * time.Microsecond)
	}
	got := m.snapshot()
	if got.P50Micros != 50 {
		t.Fatalf("p50 = %v, want 50", got.P50Micros)
	}
	if got.P99Micros != 99 {
		t.Fatalf("p99 = %v, want 99", got.P99Micros)
	}
	// Overflow the ring: the oldest samples fall out, quantiles follow
	// the most recent latencyRingSize decisions.
	for i := 0; i < latencyRingSize; i++ {
		m.decision(time.Millisecond)
	}
	got = m.snapshot()
	if got.P50Micros != 1000 || got.P99Micros != 1000 {
		t.Fatalf("post-overflow quantiles p50=%v p99=%v, want 1000 each", got.P50Micros, got.P99Micros)
	}
	if got.Decisions != 100+latencyRingSize {
		t.Fatalf("decisions = %d, want %d", got.Decisions, 100+latencyRingSize)
	}
}
