package serve

import (
	"log/slog"
	"sync"
	"time"

	"figret/internal/obs"
)

// Decision-span stages, in pipeline order. A span opens when a snapshot
// is enqueued (Ingest) and marks each stage as the controller pushes it
// through the pipeline; the per-stage latencies land in the
// figret_serve_stage_duration_seconds{topology,stage} histograms, so
// queueing delay is attributable separately from inference or reroute
// cost — the L4Span-style visibility the drift loop and the adaptive
// stream client fly by.
const (
	stageIngest  = iota // queue wait: enqueue → controller pickup
	stageWindow         // window append + trim + drift observation
	stagePredict        // pooled model inference over the window
	stageReroute        // churn limiting + failure reroute
	stagePublish        // atomic publish + latency bookkeeping
	numStages
)

var stageNames = [numStages]string{"ingest", "window", "predict", "reroute", "publish"}

// Telemetry is the serving subsystem's view into an obs.Registry. It is
// entirely optional: a nil *Telemetry (the default everywhere) disables
// every instrument at the cost of one branch per call site, and the
// decision values themselves are never touched — replays with telemetry
// on and off are bitwise identical (TestTelemetryZeroImpact).
type Telemetry struct {
	reg      *obs.Registry
	traceLog *slog.Logger

	mu     sync.Mutex
	topos  map[string]*topoTelemetry
	stream map[string]*StreamTelemetry

	transports map[string]*transportTelemetry

	wireConnsActive *obs.Gauge
	wireConnsTotal  *obs.Counter
	wireDeltas      *obs.Counter
	wireFulls       *obs.Counter
	wireResyncs     *obs.Counter
}

// Transport labels of the three serving surfaces.
const (
	transportJSON    = "json"
	transportBinHTTP = "binhttp"
	transportWire    = "wire"
)

// NewTelemetry builds the serving instrument set over reg.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	t := &Telemetry{
		reg:        reg,
		topos:      make(map[string]*topoTelemetry),
		stream:     make(map[string]*StreamTelemetry),
		transports: make(map[string]*transportTelemetry, 3),
		wireConnsActive: reg.Gauge("figret_wire_connections_active",
			"Upgraded wire streams currently open."),
		wireConnsTotal: reg.Counter("figret_wire_connections_total",
			"Upgraded wire streams accepted since start."),
		wireDeltas: reg.Counter("figret_wire_decisions_total",
			"Decisions sent on wire streams by encoding.", obs.L("encoding", "delta")),
		wireFulls: reg.Counter("figret_wire_decisions_total",
			"Decisions sent on wire streams by encoding.", obs.L("encoding", "full")),
		wireResyncs: reg.Counter("figret_wire_resyncs_total",
			"Full-decision resyncs forced by client delta gaps."),
	}
	for _, tr := range []string{transportJSON, transportBinHTTP, transportWire} {
		t.transports[tr] = &transportTelemetry{
			requests: reg.Counter("figret_serve_transport_requests_total",
				"Decision-path requests per transport.", obs.L("transport", tr)),
			latency: reg.Histogram("figret_serve_transport_duration_seconds",
				"Ingest-to-response latency per transport.", obs.DefaultLatencyBuckets(),
				obs.L("transport", tr)),
		}
	}
	return t
}

// LogSpans attaches a structured trace log: every span stage of every
// topology tracer (existing and future) emits a Debug record. Expensive
// at decision rate — meant for targeted debugging, not steady state.
func (t *Telemetry) LogSpans(l *slog.Logger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceLog = l
	for _, tt := range t.topos {
		tt.tracer.LogSpans(l)
	}
}

// RegisterCacheStats exports a cache's monotonic hit/miss counters
// (oracle solves, path stores) as scrape-time counters.
func (t *Telemetry) RegisterCacheStats(cache, topo string, stats func() (hits, misses uint64)) {
	if t == nil {
		return
	}
	labels := []obs.Label{obs.L("cache", cache)}
	if topo != "" {
		labels = append(labels, obs.L("topology", topo))
	}
	t.reg.CounterFunc("figret_cache_hits_total", "Cache hits by cache and topology.",
		func() float64 { h, _ := stats(); return float64(h) }, labels...)
	t.reg.CounterFunc("figret_cache_misses_total", "Cache misses by cache and topology.",
		func() float64 { _, m := stats(); return float64(m) }, labels...)
}

// topoTelemetry is one topology's instrument set. All methods are safe
// on a nil receiver, which is how an untelemetered controller runs.
type topoTelemetry struct {
	snapshots    *obs.Counter
	coalesced    *obs.Counter
	decisions    *obs.Counter
	rerouted     *obs.Counter
	churnLimited *obs.Counter
	warming      *obs.Counter
	rollbacks    *obs.Counter
	retrains     map[string]*obs.Counter // outcome → counter
	latency      *obs.Histogram
	tracer       *obs.Tracer
	spoolBytes   *obs.Gauge
	spoolErrors  *obs.Counter

	reg  *obs.Registry
	topo string
}

// topo returns (creating on first use) the named topology's instrument
// set; nil on a nil Telemetry.
func (t *Telemetry) topo(name string) *topoTelemetry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tt := t.topos[name]
	if tt != nil {
		return tt
	}
	reg := t.reg
	l := obs.L("topology", name)
	tt = &topoTelemetry{
		reg:  reg,
		topo: name,
		snapshots: reg.Counter("figret_serve_snapshots_total",
			"Demand snapshots ingested.", l),
		coalesced: reg.Counter("figret_serve_snapshots_coalesced_total",
			"Async snapshots that entered the window without their own decision.", l),
		decisions: reg.Counter("figret_serve_decisions_total",
			"Routing decisions published.", l),
		rerouted: reg.Counter("figret_serve_decisions_rerouted_total",
			"Published decisions that applied a failure reroute.", l),
		churnLimited: reg.Counter("figret_serve_decisions_churn_limited_total",
			"Published decisions clamped by the churn limit.", l),
		warming: reg.Counter("figret_serve_warming_total",
			"Sync ingests answered while warming (no decision yet).", l),
		rollbacks: reg.Counter("figret_serve_rollbacks_total",
			"Checkpoint rollbacks.", l),
		retrains: make(map[string]*obs.Counter, 3),
		spoolBytes: reg.Gauge("figret_serve_spool_bytes",
			"Durable bytes of the on-disk ingest spool.", l),
		spoolErrors: reg.Counter("figret_serve_spool_errors_total",
			"Spool append failures (spooling disables itself after the first).", l),
		latency: reg.Histogram("figret_serve_decision_duration_seconds",
			"End-to-end decision latency (ingest pickup to publish).",
			obs.DefaultLatencyBuckets(), l),
		tracer: obs.NewTracer(reg, "figret_serve_stage_duration_seconds",
			"Decision pipeline stage latency.", stageNames[:],
			obs.DefaultLatencyBuckets(), l),
	}
	for _, outcome := range []string{"accepted", "rejected", "failed"} {
		tt.retrains[outcome] = reg.Counter("figret_serve_retrains_total",
			"Drift-triggered retrains by outcome.", l, obs.L("outcome", outcome))
	}
	tt.tracer.LogSpans(t.traceLog)
	t.topos[name] = tt
	return tt
}

func (tt *topoTelemetry) span() obs.Span {
	if tt == nil {
		return obs.Span{}
	}
	return tt.tracer.Start()
}

func (tt *topoTelemetry) ingest(coalesced bool) {
	if tt == nil {
		return
	}
	tt.snapshots.Inc()
	if coalesced {
		tt.coalesced.Inc()
	}
}

func (tt *topoTelemetry) decision(d *Decision, latency time.Duration) {
	if tt == nil {
		return
	}
	tt.decisions.Inc()
	tt.latency.Observe(latency.Seconds())
	if d.Rerouted {
		tt.rerouted.Inc()
	}
	if d.ChurnLimited {
		tt.churnLimited.Inc()
	}
}

func (tt *topoTelemetry) spool(durableBytes int64) {
	if tt != nil {
		tt.spoolBytes.Set(float64(durableBytes))
	}
}

func (tt *topoTelemetry) spoolError() {
	if tt != nil {
		tt.spoolErrors.Inc()
	}
}

func (tt *topoTelemetry) warm() {
	if tt != nil {
		tt.warming.Inc()
	}
}

func (tt *topoTelemetry) retrain(outcome string) {
	if tt != nil {
		tt.retrains[outcome].Inc()
	}
}

// install counts a checkpoint activation; sources are unbounded
// operator strings, so the counter is created on demand.
func (tt *topoTelemetry) install(source string) {
	if tt == nil {
		return
	}
	tt.reg.Counter("figret_serve_checkpoint_installs_total",
		"Checkpoint activations by source.",
		obs.L("topology", tt.topo), obs.L("source", source)).Inc()
}

func (tt *topoTelemetry) rollback() {
	if tt != nil {
		tt.rollbacks.Inc()
	}
}

// transportTelemetry times the decision path of one serving surface.
type transportTelemetry struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

func (tr *transportTelemetry) observe(d time.Duration) {
	if tr == nil {
		return
	}
	tr.requests.Inc()
	tr.latency.Observe(d.Seconds())
}

// transport returns the named transport's instruments; nil on a nil
// Telemetry.
func (t *Telemetry) transport(name string) *transportTelemetry {
	if t == nil {
		return nil
	}
	return t.transports[name]
}

// Wire-stream lifecycle hooks (nil-safe).

func (t *Telemetry) wireConnOpen() {
	if t == nil {
		return
	}
	t.wireConnsTotal.Inc()
	t.wireConnsActive.Add(1)
}

func (t *Telemetry) wireConnClose() {
	if t != nil {
		t.wireConnsActive.Add(-1)
	}
}

func (t *Telemetry) wireDecision(delta bool) {
	if t == nil {
		return
	}
	if delta {
		t.wireDeltas.Inc()
	} else {
		t.wireFulls.Inc()
	}
}

func (t *Telemetry) wireResync() {
	if t != nil {
		t.wireResyncs.Inc()
	}
}

// StreamTelemetry instruments one BinClient's adaptive stream: the
// in-flight window, RTT estimator state, congestion backoffs and the
// delta/full/resync/redial mix. Attach via BinClientOptions.Telemetry.
// All methods are safe on a nil receiver.
type StreamTelemetry struct {
	window     *obs.Gauge
	srtt       *obs.Gauge
	rto        *obs.Gauge
	rtt        *obs.Histogram
	congestion *obs.Counter
	redials    *obs.Counter
	resyncs    *obs.Counter
	deltas     *obs.Counter
	fulls      *obs.Counter
}

// Stream returns (creating on first use) the stream instrument set for
// a topology; nil on a nil Telemetry.
func (t *Telemetry) Stream(topo string) *StreamTelemetry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stream[topo]
	if st != nil {
		return st
	}
	reg := t.reg
	l := obs.L("topology", topo)
	st = &StreamTelemetry{
		window: reg.Gauge("figret_stream_window",
			"Current adaptive in-flight window of the pipelined stream client.", l),
		srtt: reg.Gauge("figret_stream_srtt_seconds",
			"Smoothed RTT of the stream client's RFC 6298 estimator.", l),
		rto: reg.Gauge("figret_stream_rto_seconds",
			"Current timeout threshold (congestion signal) of the stream client.", l),
		rtt: reg.Histogram("figret_stream_rtt_seconds",
			"Per-request round-trip time of the pipelined stream.",
			obs.DefaultLatencyBuckets(), l),
		congestion: reg.Counter("figret_stream_congestion_events_total",
			"Multiplicative window backoffs.", l),
		redials: reg.Counter("figret_stream_redials_total",
			"Reconnects after broken stream connections.", l),
		resyncs: reg.Counter("figret_stream_resyncs_total",
			"Client-requested full-decision resyncs after delta gaps.", l),
		deltas: reg.Counter("figret_stream_decisions_total",
			"Decisions received by encoding.", l, obs.L("encoding", "delta")),
		fulls: reg.Counter("figret_stream_decisions_total",
			"Decisions received by encoding.", l, obs.L("encoding", "full")),
	}
	t.stream[topo] = st
	return st
}

func (st *StreamTelemetry) observeRTT(sample time.Duration, est *rttEstimator, window int) {
	if st == nil {
		return
	}
	st.rtt.Observe(sample.Seconds())
	st.srtt.Set(est.sRTT().Seconds())
	st.rto.Set(est.rto().Seconds())
	st.window.Set(float64(window))
}

func (st *StreamTelemetry) onCongestion() {
	if st != nil {
		st.congestion.Inc()
	}
}

func (st *StreamTelemetry) onRedial() {
	if st != nil {
		st.redials.Inc()
	}
}

func (st *StreamTelemetry) onDecision(delta bool) {
	if st == nil {
		return
	}
	if delta {
		st.deltas.Inc()
	} else {
		st.fulls.Inc()
	}
}

func (st *StreamTelemetry) onResync() {
	if st != nil {
		st.resyncs.Inc()
	}
}
