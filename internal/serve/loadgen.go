package serve

import (
	"fmt"

	"figret/internal/te"
	"figret/internal/traffic"
)

// LoadOptions configures a load-generation run over the binary stream.
type LoadOptions struct {
	// Requests is the total snapshot count to drive; the trace window
	// cycles to fill it (default: one pass over the window).
	Requests int
	// From, To is the half-open trace window the demands cycle through
	// (clamped like Replay).
	From, To int
	// Async ingests without per-request decisions (burst-coalescing
	// throughput rather than decision throughput).
	Async bool
	// Bin tunes the binary client.
	Bin BinClientOptions
}

// LoadResult summarizes one load-generation run.
type LoadResult struct {
	// Stream carries the pipelining measurements (RTT quantiles,
	// adaptive-window trace, byte counts).
	Stream StreamStats
	// Bin carries the transport counters (delta vs full decisions,
	// resyncs, redials).
	Bin BinStats
	// DecisionsPerSec is decision responses over elapsed wall clock —
	// the serving data plane's sustained throughput as observed by one
	// pipelined client.
	DecisionsPerSec float64
	// RequestsPerSec counts every response (acks included).
	RequestsPerSec float64
}

// LoadGen drives the server's binary stream at maximum sustainable rate:
// it dials the upgraded protocol, pipelines Requests snapshot ingests
// from the trace window under the adaptive window, and reports
// decisions/sec plus the transport's delta and RTT statistics. This is
// the load-generator mode behind cmd/served -drive and
// BenchmarkServeThroughput.
func LoadGen(baseURL, topo string, ps *te.PathSet, tr *traffic.Trace, opt LoadOptions) (*LoadResult, error) {
	from, to := opt.From, opt.To
	if to <= 0 || to > tr.Len() {
		to = tr.Len()
	}
	if from < 0 || from >= to {
		return nil, fmt.Errorf("serve: empty load window [%d,%d) of trace length %d", from, to, tr.Len())
	}
	span := to - from
	n := opt.Requests
	if n <= 0 {
		n = span
	}
	bin, err := DialBin(baseURL, topo, ps, opt.Bin)
	if err != nil {
		return nil, err
	}
	defer bin.Close()

	demand := func(i int) []float64 { return tr.At(from + i%span) }
	var stats *StreamStats
	if opt.Async {
		stats, err = bin.StreamAsync(n, demand)
	} else {
		stats, err = bin.Stream(n, demand, nil)
	}
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Stream: *stats, Bin: bin.Stats()}
	if s := stats.Elapsed.Seconds(); s > 0 {
		res.DecisionsPerSec = float64(stats.Decisions) / s
		res.RequestsPerSec = float64(stats.Decisions+stats.Acks) / s
	}
	return res, nil
}
