package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/obs"
	"figret/internal/te"
	"figret/internal/tracestore"
	"figret/internal/traffic"
)

// ErrClosed marks requests against a stopped controller (a server-side
// lifecycle condition, not a caller fault — the HTTP layer maps it to
// 503).
var ErrClosed = errors.New("controller closed")

// ErrNeverServable marks a standing misconfiguration: the active
// checkpoint's history window exceeds the controller's HistoryCap, so
// warming can never complete (mapped to 500 by the HTTP layer and
// surfaced to async ingesters via Metrics.ConfigError).
var ErrNeverServable = errors.New("history cap below checkpoint window")

// Decision is one published routing decision. Decisions are immutable
// once published: readers must not modify Config.R.
type Decision struct {
	// Seq numbers published decisions (1-based; 0 is the bootstrap
	// fallback published before any snapshot arrives).
	Seq int64
	// Snapshot is the absolute index of the newest demand snapshot the
	// decision saw (-1 for the bootstrap fallback).
	Snapshot int64
	// Version is the model checkpoint that produced the decision (0 when
	// no checkpoint was active and the fallback config is serving).
	Version int
	// Config is the routing configuration (split ratio per candidate
	// path).
	Config *te.Config
	// Rerouted reports that a link-failure reroute (te.Reroute) was
	// applied.
	Rerouted bool
	// ChurnLimited reports that the hysteresis limit clamped this
	// decision toward its predecessor.
	ChurnLimited bool
	// At is the publication time.
	At time.Time
}

// IngestResult is the outcome of one ingested snapshot.
type IngestResult struct {
	// Snapshot is the absolute index assigned to the ingested snapshot.
	Snapshot int64
	// Decision is the decision computed from the window ending at this
	// snapshot (nil for async ingests and while warming).
	Decision *Decision
	// Warming reports that no decision could be computed yet: no active
	// checkpoint, or fewer than H snapshots ingested.
	Warming bool
}

// DriftOptions configures drift-triggered background retraining.
type DriftOptions struct {
	// Threshold, Alpha, Patience tune the underlying
	// figret.DriftDetector (zero values keep its defaults).
	Threshold float64
	Alpha     float64
	Patience  int
	// CalibrationSamples is the number of (achieved MLU, demand)
	// observations collected before the detector calibrates (default 8).
	CalibrationSamples int
	// Epochs is the retraining epoch budget (default 4; retrains favor
	// fast turnaround over squeezing out the last fraction of loss).
	Epochs int
	// TrainWorkers overrides the retraining worker-pool size (0 inherits
	// the incumbent model's setting). Retrained weights are bitwise
	// identical for any value, so this only trades latency for CPU.
	TrainWorkers int
	// ShadowWindow is how many recent snapshots the candidate is
	// shadow-evaluated on before it may replace the incumbent (default 8).
	ShadowWindow int
	// Tolerance is the acceptance slack: the candidate is installed when
	// its shadow score is at most (1+Tolerance)× the incumbent's
	// (default 0.05).
	Tolerance float64
	// Oracle, when set, normalizes shadow-evaluation MLUs by the
	// memoized omniscient solve of each snapshot. The solves run in the
	// background retrain goroutine and hit the shared cache, so shadow
	// evaluation never blocks the decision path. Nil compares raw MLUs.
	Oracle *eval.Oracle
}

func (d DriftOptions) withDefaults() DriftOptions {
	if d.CalibrationSamples <= 0 {
		d.CalibrationSamples = 8
	}
	if d.Epochs <= 0 {
		d.Epochs = 4
	}
	if d.ShadowWindow <= 0 {
		d.ShadowWindow = 8
	}
	if d.Tolerance == 0 {
		d.Tolerance = 0.05
	}
	return d
}

// ControllerOptions tunes one topology's controller.
type ControllerOptions struct {
	// HistoryCap bounds the sliding demand window (default 256). It must
	// comfortably exceed the active model's history length H — snapshots
	// beyond the cap are forgotten oldest-first — and bounds the trace
	// drift-triggered retraining learns from.
	HistoryCap int
	// MaxChurn caps the total L1 split-ratio movement per decision
	// interval (Σ_p |r_p − r'_p|): when a fresh model decision would move
	// more than this, it is blended toward the previous decision's
	// pre-reroute configuration so exactly MaxChurn mass moves. 0
	// disables hysteresis. The limit applies between consecutive model
	// decisions; failure reroutes are never clamped (restoring
	// connectivity beats smoothness).
	MaxChurn float64
	// Drift enables drift-triggered background retraining when non-nil.
	Drift *DriftOptions
	// Telemetry, when non-nil, exports this controller's counters, stage
	// spans and latency histograms through the obs registry. Telemetry
	// observes decisions; it never alters them — replays with and
	// without it are bitwise identical.
	Telemetry *Telemetry
	// Spool, when non-empty, is a directory where every ingested snapshot
	// is appended to an on-disk trace store (<dir>/<topo>.fgt) as it
	// arrives. The in-RAM window stays bounded by HistoryCap regardless —
	// the spool is the durable full history it spills to. On restart the
	// controller recovers the spool (truncating any torn tail), preloads
	// the most recent HistoryCap snapshots into the window, and resumes
	// absolute snapshot numbering where the previous process stopped, so
	// replayed decision sequences continue rather than restart. A spool
	// append failure disables spooling for the controller's lifetime
	// (counted in telemetry) instead of failing the decision path.
	Spool string
}

func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.HistoryCap <= 0 {
		o.HistoryCap = 256
	}
	return o
}

// ctrlMsg is one message into the controller goroutine.
type ctrlMsg struct {
	// demand is set for snapshot ingests (already copied, correct
	// length).
	demand []float64
	// links is set for failure reports (empty slice clears failures).
	links   [][2]int
	failure bool
	// span traces the snapshot through the decision pipeline (inert when
	// telemetry is off). It opens at enqueue, so its first stage is the
	// queue wait.
	span obs.Span
	// reply, when non-nil, receives the result once the message is fully
	// processed (sync ingest / failure report).
	reply chan ingestReply
}

type ingestReply struct {
	res *IngestResult
	err error
}

// Controller serves one topology: a single goroutine owns the sliding
// demand window and processes ingests, failure reports and retrain
// completions strictly in arrival order, so decisions are deterministic
// for a given message sequence. Reads of the current decision and the
// metrics are lock-free and never touch the goroutine.
type Controller struct {
	topo string
	ps   *te.PathSet
	reg  *Registry
	opt  ControllerOptions

	ch       chan ctrlMsg
	retctl   chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	decided  atomic.Pointer[Decision]
	metrics  *metricsRecorder
	tel      *topoTelemetry

	// Goroutine-owned state below (never touched outside run).
	spool      *tracestore.Writer // nil when spooling is off or failed
	history    *traffic.Trace
	nSnapshots int64 // absolute count of ingested snapshots
	seq        int64
	failures   *te.FailureSet
	// base is the latest pre-reroute configuration (the bootstrap uniform
	// split until a model decides). Failure handling always reroutes from
	// this clean base, so clearing or replacing a failure set never
	// leaves stale reroutes behind.
	base       *te.Config
	detector   *figret.DriftDetector
	detVersion int // checkpoint version the detector was calibrated for
	calMLU     []float64
	calDemand  [][]float64
	retraining bool
}

// NewController builds and starts a controller for a topology registered
// in reg. Close must be called to stop its goroutine.
func NewController(topo string, reg *Registry, opt ControllerOptions) (*Controller, error) {
	ps := reg.PathSet(topo)
	if ps == nil {
		return nil, fmt.Errorf("serve: topology %q not registered", topo)
	}
	opt = opt.withDefaults()
	if opt.Drift != nil {
		d := opt.Drift.withDefaults()
		opt.Drift = &d
	}
	c := &Controller{
		topo:    topo,
		ps:      ps,
		reg:     reg,
		opt:     opt,
		ch:      make(chan ctrlMsg, 64),
		retctl:  make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		metrics: newMetricsRecorder(),
		tel:     opt.Telemetry.topo(topo),
		history: traffic.NewTrace(ps.Pairs.N()),
	}
	if opt.Spool != "" {
		if err := c.openSpool(); err != nil {
			return nil, err
		}
	}
	// Bootstrap fallback: routing reads always answer, even before the
	// first snapshot or checkpoint, with the maximal-hedging uniform
	// split.
	c.base = te.UniformConfig(ps)
	c.publish(&Decision{Seq: 0, Snapshot: -1, Version: 0, Config: c.base, At: time.Now()})
	go c.run()
	return c, nil
}

// openSpool opens — recovering, when the previous process crashed — the
// controller's on-disk ingest spool and warm-starts the in-RAM window
// from its tail: the newest HistoryCap snapshots are copied out of the
// memory-mapped store, and absolute snapshot numbering resumes at the
// spool's durable length. Runs before the controller goroutine starts,
// so it may touch goroutine-owned state.
func (c *Controller) openSpool() error {
	fail := func(err error) error { return fmt.Errorf("serve: %s spool: %w", c.topo, err) }
	if err := os.MkdirAll(c.opt.Spool, 0o755); err != nil {
		return fail(err)
	}
	path := filepath.Join(c.opt.Spool, c.topo+".fgt")
	w, err := tracestore.OpenAppend(path, c.ps.Pairs.N(), tracestore.Options{})
	if err != nil {
		return fail(err)
	}
	if w.Len() > 0 {
		// OpenAppend leaves exactly its durable snapshots on disk (torn
		// tails are truncated), so a fresh reader sees the same history the
		// writer will extend.
		r, err := tracestore.Open(path)
		if err != nil {
			w.Close()
			return fail(err)
		}
		from := r.Len() - int64(c.opt.HistoryCap)
		if from < 0 {
			from = 0
		}
		for i := from; i < r.Len(); i++ {
			s, err := r.At(i)
			if err != nil {
				r.Close()
				w.Close()
				return fail(err)
			}
			c.history.Append(s) // copies out of the mapping
		}
		if err := r.Close(); err != nil {
			w.Close()
			return fail(err)
		}
		c.nSnapshots = w.Len()
	}
	c.spool = w
	c.tel.spool(w.DurableBytes())
	return nil
}

// spoolSnapshot lands one ingested snapshot in the spool. The decision
// path never fails on spool errors: the first failure counts in
// telemetry and turns spooling off for this controller's lifetime.
func (c *Controller) spoolSnapshot(demand []float64) {
	if c.spool == nil {
		return
	}
	err := c.spool.Append(demand)
	if err == nil {
		err = c.spool.Flush()
	}
	if err != nil {
		c.tel.spoolError()
		c.spool.Close()
		c.spool = nil
		return
	}
	c.tel.spool(c.spool.DurableBytes())
}

// Topology returns the served topology name.
func (c *Controller) Topology() string { return c.topo }

// Decision returns the currently published routing decision (never nil
// after NewController). The returned value is immutable.
func (c *Controller) Decision() *Decision { return c.decided.Load() }

// Metrics returns a snapshot of the serving counters.
func (c *Controller) Metrics() Metrics { return c.metrics.snapshot() }

// Ready reports whether this controller has published at least one real
// decision (model inference or failure republish — not the bootstrap
// fallback). This is the per-topology readiness condition of the
// daemon's /readyz probe, read from an atomic counter so probes never
// touch the controller goroutine.
func (c *Controller) Ready() bool { return c.metrics.decisions.Load() > 0 }

// Close stops the controller goroutine. Pending sync requests are
// answered with an error. Safe to call multiple times, concurrently.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Ingest streams one demand snapshot into the controller. The slice is
// copied before handoff, so callers may reuse it. With wait set the call
// blocks until the decision for the window ending at this snapshot is
// published and returns it; without, the snapshot enters the window and
// the next published decision covers it (bursts coalesce: queued async
// snapshots all extend the window but only the newest triggers a
// decision).
func (c *Controller) Ingest(demand []float64, wait bool) (*IngestResult, error) {
	if len(demand) != c.ps.Pairs.Count() {
		return nil, fmt.Errorf("serve: %s snapshot has %d entries, want %d", c.topo, len(demand), c.ps.Pairs.Count())
	}
	msg := ctrlMsg{demand: append([]float64(nil), demand...), span: c.tel.span()}
	if wait {
		msg.reply = make(chan ingestReply, 1)
	}
	select {
	case c.ch <- msg:
	case <-c.stop:
		return nil, fmt.Errorf("serve: %s: %w", c.topo, ErrClosed)
	}
	if !wait {
		return nil, nil
	}
	select {
	case r := <-msg.reply:
		return r.res, r.err
	case <-c.done:
		return nil, fmt.Errorf("serve: %s: %w", c.topo, ErrClosed)
	}
}

// ReportFailures installs the set of failed undirected links (replacing
// any previous report; an empty set clears all failures) and immediately
// republishes a rerouted decision, without waiting for the next snapshot.
func (c *Controller) ReportFailures(links [][2]int) error {
	cp := make([][2]int, len(links))
	copy(cp, links)
	msg := ctrlMsg{links: cp, failure: true, reply: make(chan ingestReply, 1)}
	select {
	case c.ch <- msg:
	case <-c.stop:
		return fmt.Errorf("serve: %s: %w", c.topo, ErrClosed)
	}
	select {
	case r := <-msg.reply:
		return r.err
	case <-c.done:
		return fmt.Errorf("serve: %s: %w", c.topo, ErrClosed)
	}
}

// run is the controller goroutine: it drains queued messages in batches
// and processes them in order, giving every sync ingest its own decision
// while coalescing runs of async snapshots into the final decision of
// the batch.
func (c *Controller) run() {
	defer close(c.done)
	defer func() {
		if c.spool != nil {
			c.spool.Close()
		}
	}()
	for {
		select {
		case <-c.stop:
			c.drainOnStop()
			return
		case <-c.retctl:
			c.finishRetrain()
		case msg := <-c.ch:
			batch := []ctrlMsg{msg}
		drain:
			for {
				select {
				case m := <-c.ch:
					batch = append(batch, m)
				default:
					break drain
				}
			}
			// Coalescing is over snapshots only: the newest snapshot of
			// the batch always gets a decision, even when a failure
			// report drained in behind it.
			lastSnap := -1
			for i, m := range batch {
				if !m.failure {
					lastSnap = i
				}
			}
			for i, m := range batch {
				if m.failure {
					c.handleFailures(m)
					continue
				}
				c.handleSnapshot(m, i == lastSnap)
			}
		}
	}
}

// drainOnStop answers queued sync requests with a closed error so no
// caller hangs across Close.
func (c *Controller) drainOnStop() {
	for {
		select {
		case m := <-c.ch:
			if m.reply != nil {
				m.reply <- ingestReply{err: fmt.Errorf("serve: %s: %w", c.topo, ErrClosed)}
			}
		default:
			return
		}
	}
}

// handleSnapshot appends one snapshot to the sliding window, feeds the
// drift detector and — for sync ingests or the newest snapshot of a
// batch — computes and publishes a fresh decision.
func (c *Controller) handleSnapshot(m ctrlMsg, last bool) {
	m.span.Mark(stageIngest) // queue wait: enqueue → pickup
	idx := c.nSnapshots
	c.nSnapshots++
	// m.demand is already controller-owned (Ingest copied it), so it
	// enters the window without a second copy.
	c.history.AppendOwned(m.demand)
	if over := c.history.Len() - c.opt.HistoryCap; over > 0 {
		c.history.Snapshots = c.history.Snapshots[over:]
	}
	c.spoolSnapshot(m.demand)
	c.observeDrift(m.demand)
	m.span.Mark(stageWindow)

	sync := m.reply != nil
	if !sync && !last {
		c.metrics.ingest(true)
		c.tel.ingest(true)
		return
	}
	c.metrics.ingest(false)
	c.tel.ingest(false)
	dec, warming, err := c.decide(idx, &m.span)
	if err != nil {
		// Async ingesters never see per-request errors; a standing
		// misconfiguration surfaces through the metrics endpoint.
		c.metrics.configError(err.Error())
	}
	if warming {
		c.tel.warm()
	}
	if sync {
		m.reply <- ingestReply{res: &IngestResult{Snapshot: idx, Decision: dec, Warming: warming}, err: err}
	}
}

// decide runs inference on the active checkpoint over the current window
// and publishes the resulting decision, recording its latency. It
// returns (nil, true, nil) while warming — no active checkpoint, or not
// enough history for its window yet — and an error when the controller
// can never leave warming because the history cap is below the model's
// window.
func (c *Controller) decide(snapshot int64, span *obs.Span) (*Decision, bool, error) {
	start := time.Now()
	ck := c.reg.Active(c.topo)
	if ck == nil {
		return nil, true, nil
	}
	h := ck.Model.Cfg.H
	if h > c.opt.HistoryCap {
		return nil, true, fmt.Errorf("serve: %s history cap %d vs checkpoint v%d window H=%d: %w",
			c.topo, c.opt.HistoryCap, ck.Version, h, ErrNeverServable)
	}
	if c.history.Len() < h {
		return nil, true, nil
	}
	cfg, err := ck.PredictAt(c.history, c.history.Len())
	if err != nil {
		// PredictAt only fails on a window-range mismatch, which the
		// length check above rules out; keep serving the installed
		// decision.
		return nil, true, nil
	}
	span.Mark(stagePredict)
	dec := &Decision{
		Snapshot: snapshot,
		Version:  ck.Version,
		Config:   cfg,
	}
	// Hysteresis blends toward the previous pre-reroute base — always a
	// feasible per-pair distribution, unlike a published rerouted
	// decision, whose fully-disconnected pairs sum to 0 and would make
	// the blend infeasible. The reroute runs last so no blend can put
	// mass back onto a failed path: connectivity beats smoothness.
	if prev := c.Decision(); c.opt.MaxChurn > 0 && prev.Version > 0 {
		dec.Config, dec.ChurnLimited = LimitChurn(c.base, dec.Config, c.opt.MaxChurn)
	}
	c.base = dec.Config // clean pre-reroute base for failure handling
	if c.failures != nil {
		dec.Config = te.Reroute(dec.Config, c.failures)
		dec.Rerouted = true
	}
	span.Mark(stageReroute)
	c.publish(dec)
	c.metrics.decision(time.Since(start))
	c.metrics.configError("") // a model decision proves the config serves
	span.Mark(stagePublish)
	c.tel.decision(dec, time.Since(start))
	return dec, false, nil
}

// handleFailures swaps the failure set and immediately republishes the
// clean pre-reroute base rerouted around it, so traffic leaves failed
// links before the next snapshot arrives. Failure handling is pure
// post-processing (the §4.5 policy): no fresh model decision is
// computed, so repeated failure reports cannot advance the churn budget
// between snapshots, and clearing or replacing a failure set never
// leaves stale reroutes behind (the base is never itself rerouted).
func (c *Controller) handleFailures(m ctrlMsg) {
	if len(m.links) == 0 {
		c.failures = nil
	} else {
		c.failures = te.NewFailureSet(c.ps.G, m.links)
	}
	start := time.Now()
	prev := c.Decision()
	dec := &Decision{
		Snapshot: prev.Snapshot,
		Version:  prev.Version,
		Config:   c.base,
	}
	if c.failures != nil {
		dec.Config = te.Reroute(c.base, c.failures)
		dec.Rerouted = true
	}
	c.publish(dec)
	c.metrics.decision(time.Since(start))
	c.tel.decision(dec, time.Since(start))
	m.reply <- ingestReply{}
}

// publish stamps and atomically installs a decision.
func (c *Controller) publish(d *Decision) {
	c.seq++
	d.Seq = c.seq - 1 // bootstrap fallback gets Seq 0
	if d.At.IsZero() {
		d.At = time.Now()
	}
	c.decided.Store(d)
}

// observeDrift feeds the drift detector with the MLU the installed
// configuration achieves on the just-revealed demand. Before enough
// samples exist the detector calibrates its healthy level; once a
// sustained degradation is flagged, a background retrain starts (at most
// one in flight).
func (c *Controller) observeDrift(demand []float64) {
	if c.opt.Drift == nil {
		return
	}
	if c.failures != nil {
		// During an outage the achieved MLU reflects rerouting around
		// dead links, not model quality; observing it would mistake the
		// failure for drift and retrain in a loop that cannot help.
		return
	}
	prev := c.Decision()
	if prev.Version == 0 {
		return // only model decisions define the serving quality level
	}
	if c.detector == nil || c.detVersion != prev.Version {
		// New serving version (bootstrap, upload or retrain swap): start a
		// fresh calibration at this version's quality level.
		c.detector = figret.NewDriftDetector(c.ps)
		if c.opt.Drift.Threshold > 0 {
			c.detector.Threshold = c.opt.Drift.Threshold
		}
		if c.opt.Drift.Alpha > 0 {
			c.detector.Alpha = c.opt.Drift.Alpha
		}
		if c.opt.Drift.Patience > 0 {
			c.detector.Patience = c.opt.Drift.Patience
		}
		c.detVersion = prev.Version
		c.calMLU = c.calMLU[:0]
		c.calDemand = c.calDemand[:0]
	}
	achieved := prev.Config.MLU(demand)
	_, _, calibrated := c.detector.Status()
	if !calibrated {
		c.calMLU = append(c.calMLU, achieved)
		c.calDemand = append(c.calDemand, demand)
		if len(c.calMLU) >= c.opt.Drift.CalibrationSamples {
			// Calibration fails only on degenerate all-zero demand runs;
			// drop the window and collect a fresh one.
			if err := c.detector.Calibrate(c.calMLU, c.calDemand); err != nil {
				c.calMLU = c.calMLU[:0]
				c.calDemand = c.calDemand[:0]
			}
		}
		return
	}
	retrain, err := c.detector.Observe(achieved, demand)
	if err != nil || !retrain || c.retraining {
		return
	}
	ck := c.reg.Active(c.topo)
	// The candidate trains on history with the shadow window held out
	// (see retrain), so both must fit before a retrain can launch.
	if ck == nil || c.history.Len() <= ck.Model.Cfg.H+1+c.opt.Drift.ShadowWindow {
		return
	}
	c.retraining = true
	go c.retrain(c.history.Clone(), ck)
}

// retrain trains a candidate on the recent window, shadow-evaluates it
// against the incumbent and — when it holds up — installs it as the next
// checkpoint. It runs outside the controller goroutine, so serving
// continues at full rate; the swap itself is the registry's atomic
// pointer store.
func (c *Controller) retrain(hist *traffic.Trace, incumbent *Checkpoint) {
	opt := *c.opt.Drift
	cfg := incumbent.Model.Cfg
	cfg.Epochs = opt.Epochs
	cfg.Seed = cfg.Seed + int64(incumbent.Version) // decorrelate restarts
	if opt.TrainWorkers > 0 {
		// Worker count never changes the trained bits, so overriding it
		// here cannot perturb the accept/reject decision.
		cfg.TrainWorkers = opt.TrainWorkers
	}
	cand := figret.New(c.ps, cfg)
	// Hold the shadow window out of training: the candidate is accepted
	// on snapshots neither model trained on, so an overfit candidate
	// cannot buy its way past the incumbent with memorized data.
	if _, err := cand.Train(hist.Slice(0, hist.Len()-opt.ShadowWindow)); err != nil {
		c.retrainFailed(err)
		return
	}
	candScore, incScore, err := c.shadowScores(hist, cand, incumbent.Model, opt)
	if err != nil {
		c.retrainFailed(err)
		return
	}
	if candScore > incScore*(1+opt.Tolerance) {
		c.metrics.retrain(false)
		c.tel.retrain("rejected")
		c.retctl <- struct{}{}
		return
	}
	// The install is conditional on the incumbent still serving: an
	// operator upload that landed mid-retrain must not be silently
	// superseded by a candidate that was never compared against it.
	if _, err := c.reg.InstallIf(c.topo, cand, "retrain", incumbent); err != nil {
		c.retrainFailed(err)
		return
	}
	c.metrics.retrain(true)
	c.tel.retrain("accepted")
	c.retctl <- struct{}{}
}

func (c *Controller) retrainFailed(err error) {
	c.metrics.retrainFailed(err)
	c.tel.retrain("failed")
	c.retctl <- struct{}{}
}

// shadowScores evaluates candidate and incumbent on the most recent
// ShadowWindow predictable snapshots of hist, returning their mean
// (oracle-normalized, when an oracle is shared) MLUs. Oracle solves are
// memoized and content-addressed, so repeated retrains over overlapping
// windows hit the cache.
func (c *Controller) shadowScores(hist *traffic.Trace, cand, inc *figret.Model, opt DriftOptions) (candScore, incScore float64, err error) {
	h := cand.Cfg.H
	if ih := inc.Cfg.H; ih > h {
		h = ih
	}
	from := hist.Len() - opt.ShadowWindow
	if from < h {
		from = h
	}
	if from >= hist.Len() {
		return 0, 0, fmt.Errorf("serve: shadow window empty (history %d, H %d)", hist.Len(), h)
	}
	cp, ip := cand.NewPredictor(), inc.NewPredictor()
	var cSum, iSum float64
	n := 0
	for t := from; t < hist.Len(); t++ {
		ccfg, err := cp.PredictAt(hist, t)
		if err != nil {
			return 0, 0, err
		}
		icfg, err := ip.PredictAt(hist, t)
		if err != nil {
			return 0, 0, err
		}
		d := hist.At(t)
		cm, im := ccfg.MLU(d), icfg.MLU(d)
		if opt.Oracle != nil {
			// A snapshot whose omniscient solve fails is skipped for both
			// models: mixing raw and normalized MLUs in one mean would
			// weight snapshots inconsistently around the accept boundary.
			base, err := opt.Oracle.MLU(d)
			if err != nil || base <= 0 {
				continue
			}
			cm /= base
			im /= base
		}
		cSum += cm
		iSum += im
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("serve: no scorable shadow snapshots (every oracle solve failed)")
	}
	return cSum / float64(n), iSum / float64(n), nil
}

// finishRetrain clears the in-flight flag and always resets the
// detector: its EWMA and patience counter reflect the pre-retrain model,
// and observeDrift runs before the next decision publishes the new
// version — leaving the latched state live would immediately launch a
// duplicate retrain of the model that was just installed. The next
// observed decision recalibrates at the serving version's quality level
// (see observeDrift).
func (c *Controller) finishRetrain() {
	c.retraining = false
	c.detector = nil
}

// LimitChurn enforces the per-interval hysteresis limit: when moving from
// prev to next would shift more than maxChurn total split-ratio mass
// (Σ_p |next_p − prev_p|), the returned configuration is the convex blend
// prev + α·(next−prev) with α chosen so exactly maxChurn mass moves.
// Blending preserves per-pair ratio sums, so the result is always
// feasible. The second return reports whether clamping occurred.
func LimitChurn(prev, next *te.Config, maxChurn float64) (*te.Config, bool) {
	var churn float64
	for p, r := range next.R {
		d := r - prev.R[p]
		if d < 0 {
			d = -d
		}
		churn += d
	}
	if churn <= maxChurn {
		return next, false
	}
	alpha := maxChurn / churn
	out := prev.Clone()
	for p := range out.R {
		out.R[p] += alpha * (next.R[p] - prev.R[p])
	}
	return out, true
}
