package serve

import (
	"net/http/httptest"
	"testing"
)

// BenchmarkServeDecision measures the serving decision path on the PoD
// fixture: "controller" is the in-process cost of one synchronous ingest
// (window update + pooled inference + publish) — the per-snapshot budget
// of the control loop — and "http" adds the full API round trip the
// closed-loop harness pays.
func BenchmarkServeDecision(b *testing.B) {
	ps, tr, m := fixture(b, 60, 1)

	b.Run("controller", func(b *testing.B) {
		reg := NewRegistry()
		if err := reg.AddTopology("pod", ps); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
			b.Fatal(err)
		}
		c, err := NewController("pod", reg, ControllerOptions{HistoryCap: 16})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 8; i++ {
			if _, err := c.Ingest(tr.At(i), true); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Ingest(tr.At(i%tr.Len()), true)
			if err != nil {
				b.Fatal(err)
			}
			if res.Decision == nil {
				b.Fatal("warming mid-benchmark")
			}
		}
	})

	b.Run("http", func(b *testing.B) {
		reg := NewRegistry()
		if err := reg.AddTopology("pod", ps); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
			b.Fatal(err)
		}
		srv := NewServer(reg)
		if _, err := srv.Add("pod", ControllerOptions{HistoryCap: 16}); err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		defer func() {
			hs.Close()
			srv.Close()
		}()
		client := NewClient(hs.URL)
		for i := 0; i < 8; i++ {
			if _, err := client.PostSnapshot("pod", tr.At(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rr, err := client.PostSnapshot("pod", tr.At(i%tr.Len()))
			if err != nil {
				b.Fatal(err)
			}
			if rr.Warming {
				b.Fatal("warming mid-benchmark")
			}
		}
	})
}
