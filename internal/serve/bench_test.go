package serve

import (
	"net/http/httptest"
	"testing"
	"time"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/obs"
	"figret/internal/te"
	"figret/internal/traffic"
)

// BenchmarkServeDecision measures the serving decision path on the PoD
// fixture: "controller" is the in-process cost of one synchronous ingest
// (window update + pooled inference + publish) — the per-snapshot budget
// of the control loop — and "http" adds the full API round trip the
// closed-loop harness pays.
func BenchmarkServeDecision(b *testing.B) {
	ps, tr, m := fixture(b, 60, 1)

	b.Run("controller", func(b *testing.B) {
		reg := NewRegistry()
		if err := reg.AddTopology("pod", ps); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
			b.Fatal(err)
		}
		c, err := NewController("pod", reg, ControllerOptions{HistoryCap: 16})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 8; i++ {
			if _, err := c.Ingest(tr.At(i), true); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Ingest(tr.At(i%tr.Len()), true)
			if err != nil {
				b.Fatal(err)
			}
			if res.Decision == nil {
				b.Fatal("warming mid-benchmark")
			}
		}
	})

	b.Run("http", func(b *testing.B) {
		reg := NewRegistry()
		if err := reg.AddTopology("pod", ps); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
			b.Fatal(err)
		}
		srv := NewServer(reg)
		if _, err := srv.Add("pod", ControllerOptions{HistoryCap: 16}); err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		defer func() {
			hs.Close()
			srv.Close()
		}()
		client := NewClient(hs.URL)
		for i := 0; i < 8; i++ {
			if _, err := client.PostSnapshot("pod", tr.At(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rr, err := client.PostSnapshot("pod", tr.At(i%tr.Len()))
			if err != nil {
				b.Fatal(err)
			}
			if rr.Warming {
				b.Fatal("warming mid-benchmark")
			}
		}
	})
}

// BenchmarkServeThroughput measures the serving data plane's sustained
// decision throughput on a GEANT WAN replay workload, one sub-benchmark
// per transport:
//
//   - json: the baseline — sequential JSON round trips over HTTP.
//   - binhttp: the content-negotiated binary codec on the same HTTP
//     request/response shape (codec win without pipelining).
//   - wire: the upgraded persistent stream — pipelined, delta-encoded
//     decisions under the adaptive window (the full data plane).
//
// Each reports decisions/s; cmd/benchjson carries the metric into
// BENCH_scenarios.json. The model is deliberately small so transport
// cost, not inference, dominates — the quantity under test.
//
// The "-telemetry" variants run the identical workload with the full
// obs instrument set attached (counters, histograms, stage tracer),
// so the observability overhead is a recorded delta per commit — the
// tentpole's <=5% budget is checkable from the artifact.
func BenchmarkServeThroughput(b *testing.B) {
	const h = 4
	g := graph.GEANT()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traffic.WAN(g.NumVertices(), 60, 7)
	if err != nil {
		b.Fatal(err)
	}
	m := figret.New(ps, figret.Config{H: h, Gamma: 1, Hidden: []int{16}, Epochs: 1, Seed: 7, BatchSize: 16})
	if _, err := m.Train(tr); err != nil {
		b.Fatal(err)
	}

	// startSrv builds a fresh server (optionally instrumented) and warms
	// it past the model's history window so every measured request yields
	// a real decision.
	startSrv := func(b *testing.B, tel *Telemetry) *httptest.Server {
		b.Helper()
		reg := NewRegistry()
		if err := reg.AddTopology("geant", ps); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Install("geant", m, "bench"); err != nil {
			b.Fatal(err)
		}
		srv := NewServer(reg)
		srv.UseTelemetry(tel)
		if _, err := srv.Add("geant", ControllerOptions{HistoryCap: 16}); err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
		warmup := NewClient(hs.URL)
		for i := 0; i < 2*h; i++ {
			if _, err := warmup.PostSnapshot("geant", tr.At(i)); err != nil {
				b.Fatal(err)
			}
		}
		return hs
	}

	runHTTP := func(b *testing.B, client *Client) {
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			rr, err := client.PostSnapshot("geant", tr.At(i%tr.Len()))
			if err != nil {
				b.Fatal(err)
			}
			if rr.Warming {
				b.Fatal("warming mid-benchmark")
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "decisions/s")
	}
	runWire := func(b *testing.B, hs *httptest.Server, bin BinClientOptions) {
		client, err := DialBin(hs.URL, "geant", ps, bin)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		b.ReportAllocs()
		b.ResetTimer()
		stats, err := client.Stream(b.N, func(i int) []float64 { return tr.At(i % tr.Len()) }, nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Decisions != b.N {
			b.Fatalf("streamed %d decisions, want %d", stats.Decisions, b.N)
		}
		b.ReportMetric(float64(stats.Decisions)/stats.Elapsed.Seconds(), "decisions/s")
	}

	b.Run("json", func(b *testing.B) { runHTTP(b, NewClient(startSrv(b, nil).URL)) })
	b.Run("json-telemetry", func(b *testing.B) {
		tel := NewTelemetry(obs.NewRegistry())
		runHTTP(b, NewClient(startSrv(b, tel).URL))
	})
	b.Run("binhttp", func(b *testing.B) {
		c := NewClient(startSrv(b, nil).URL)
		c.Binary = true
		runHTTP(b, c)
	})
	b.Run("wire", func(b *testing.B) { runWire(b, startSrv(b, nil), BinClientOptions{}) })
	b.Run("wire-telemetry", func(b *testing.B) {
		tel := NewTelemetry(obs.NewRegistry())
		runWire(b, startSrv(b, tel), BinClientOptions{Telemetry: tel.Stream("geant")})
	})
}
