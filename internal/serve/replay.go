package serve

import (
	"fmt"
	"math"

	"figret/internal/netsim"
	"figret/internal/te"
	"figret/internal/traffic"
)

// ReplayOptions configures a closed-loop trace replay against a serving
// API.
type ReplayOptions struct {
	// From, To is the half-open snapshot range of the trace to stream
	// (To <= 0 or > Len is clamped to the trace length).
	From, To int
	// Delay is the control-plane installation delay in intervals, with
	// netsim.ControlLoop semantics: the decision computed from the window
	// ending at snapshot t starts forwarding traffic at interval
	// t+1+Delay. With Delay 0 the freshest decision serves each interval
	// (interval t is served by the decision that saw everything up to
	// t-1).
	Delay int
	// Initial serves intervals before the first delayed decision lands
	// (default: the uniform split over the replayed configs' path set).
	Initial *te.Config
	// Wire streams snapshots over the upgraded binary protocol (one
	// persistent connection, delta-encoded decisions) instead of JSON
	// HTTP requests. The decisions are the same bitwise; only the
	// transport changes.
	Wire bool
	// Bin tunes the binary client when Wire is set.
	Bin BinClientOptions
}

// ReplayResult aggregates a closed-loop replay.
type ReplayResult struct {
	// Decisions holds the server's response per streamed snapshot of
	// [From, To), in order.
	Decisions []*RoutingResponse
	// PerInterval is the fluid-simulation result of every interval served
	// by an installed (possibly stale, per Delay) configuration.
	PerInterval []*netsim.Result
	// MeanMLU, PeakMLU and MeanLoss summarize the simulated intervals.
	MeanMLU, PeakMLU, MeanLoss float64
	// Versions lists the distinct model versions that served, in first-
	// use order — a hot swap mid-replay shows up as a second entry.
	Versions []int
}

// Replay streams tr's snapshots [From, To) through the serving API one
// at a time (synchronous ingest: each POST returns the decision for the
// window ending at that snapshot) and closes the loop like
// netsim.ControlLoop: the configuration serving interval t is the
// decision computed after snapshot t-1, delayed by Delay intervals.
// Each served interval is scored with the fluid simulator, so the
// result is directly comparable to an offline control-loop run over the
// same windows — the serving path is benchmarkable and testable
// end-to-end.
func Replay(client *Client, topo string, ps *te.PathSet, tr *traffic.Trace, opt ReplayOptions) (*ReplayResult, error) {
	from, to := opt.From, opt.To
	if to <= 0 || to > tr.Len() {
		to = tr.Len()
	}
	if from < 0 || from >= to {
		return nil, fmt.Errorf("serve: empty replay window [%d,%d) of trace length %d", from, to, tr.Len())
	}
	if opt.Delay < 0 {
		return nil, fmt.Errorf("serve: negative replay delay %d", opt.Delay)
	}
	installed := opt.Initial
	if installed == nil {
		installed = te.UniformConfig(ps)
	}
	post := func(demand []float64) (*RoutingResponse, error) {
		return client.PostSnapshot(topo, demand)
	}
	if opt.Wire {
		bin, err := DialBin(client.BaseURL, topo, ps, opt.Bin)
		if err != nil {
			return nil, err
		}
		defer bin.Close()
		post = bin.PostSnapshot
	}

	res := &ReplayResult{}
	seen := make(map[int]bool)
	// pending[i] is the configuration computed after snapshot from+i-1,
	// which starts serving at interval from+i-1+Delay; before the first
	// decision lands, installed serves.
	var pending []*te.Config
	for t := from; t < to; t++ {
		// Interval t is served by whatever is installed when its demand
		// arrives.
		if len(pending) > opt.Delay {
			installed = pending[0]
			pending = pending[1:]
		}
		sim, err := netsim.Simulate(installed, tr.At(t))
		if err != nil {
			return nil, err
		}
		res.PerInterval = append(res.PerInterval, sim)

		// Snapshot t is now revealed: stream it and collect the decision
		// for the window ending at t (it can serve interval t+Delay at the
		// earliest).
		dec, err := post(tr.At(t))
		if err != nil {
			return nil, fmt.Errorf("serve: replay at t=%d: %w", t, err)
		}
		res.Decisions = append(res.Decisions, dec)
		if dec.Warming {
			continue
		}
		cfg, err := decisionConfig(ps, dec.Ratios)
		if err != nil {
			return nil, fmt.Errorf("serve: replay at t=%d: invalid decision: %w", t, err)
		}
		pending = append(pending, cfg)
		if !seen[dec.Version] {
			seen[dec.Version] = true
			res.Versions = append(res.Versions, dec.Version)
		}
	}

	var mluSum, lossSum float64
	for _, r := range res.PerInterval {
		mluSum += r.MLU
		lossSum += r.LossRate
		if r.MLU > res.PeakMLU {
			res.PeakMLU = r.MLU
		}
	}
	n := float64(len(res.PerInterval))
	res.MeanMLU = mluSum / n
	res.MeanLoss = lossSum / n
	return res, nil
}

// decisionConfig wraps served ratios in a te.Config. It cannot use
// te.Config.Validate: a rerouted decision legitimately leaves a fully
// disconnected pair's ratios all zero (te.Reroute's documented policy),
// which Validate's sum-to-1 check would reject. Pair sums must instead
// be 1 or 0.
func decisionConfig(ps *te.PathSet, ratios []float64) (*te.Config, error) {
	if len(ratios) != ps.NumPaths() {
		return nil, fmt.Errorf("serve: decision has %d ratios, path set %d", len(ratios), ps.NumPaths())
	}
	cfg := te.NewConfig(ps)
	copy(cfg.R, ratios)
	for pi, pp := range ps.PairPaths {
		var sum float64
		for _, p := range pp {
			r := cfg.R[p]
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				return nil, fmt.Errorf("serve: decision ratio[%d] = %v invalid", p, r)
			}
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 && sum != 0 {
			return nil, fmt.Errorf("serve: decision pair %d ratios sum to %v, want 1 (or 0 if disconnected)", pi, sum)
		}
	}
	return cfg, nil
}
