package serve

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"figret/internal/tracestore"
)

// TestControllerSpoolRestartRecovery is the acceptance bar for the
// bounded-history fix: every ingested snapshot lands durably in the
// spool while the in-RAM window stays capped, and a restarted
// controller recovers the spool — resuming absolute snapshot numbering
// and preloading the window, so its first post-restart decision matches
// offline inference over the uninterrupted trace bitwise.
func TestControllerSpoolRestartRecovery(t *testing.T) {
	ps, tr, m := fixture(t, 60, 1)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := ControllerOptions{HistoryCap: 8, Spool: dir}

	c1, err := NewController("pod", reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	const firstRun = 10
	for i := 0; i < firstRun; i++ {
		res, err := c1.Ingest(tr.At(i), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot != int64(i) {
			t.Fatalf("snapshot index %d, want %d", res.Snapshot, i)
		}
	}
	c1.Close()

	// The spool holds every ingested snapshot bitwise — not just the
	// capped window.
	r, err := tracestore.Open(filepath.Join(dir, "pod.fgt"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != firstRun {
		t.Fatalf("spool holds %d snapshots, want %d", r.Len(), firstRun)
	}
	for i := 0; i < firstRun; i++ {
		s, err := r.At(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range tr.At(i) {
			if math.Float64bits(s[j]) != math.Float64bits(v) {
				t.Fatalf("spooled snapshot %d entry %d: %x vs %x", i, j, math.Float64bits(s[j]), math.Float64bits(v))
			}
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against the same spool: numbering resumes at firstRun and
	// the preloaded window makes the very first decision equal offline
	// inference on the window ending at the new snapshot — impossible
	// without recovered history, which would leave it warming.
	c2, err := NewController("pod", reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	res, err := c2.Ingest(tr.At(firstRun), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != firstRun {
		t.Fatalf("post-restart snapshot index %d, want %d", res.Snapshot, firstRun)
	}
	if res.Warming || res.Decision == nil {
		t.Fatalf("post-restart controller warming despite preloaded window: %+v", res)
	}
	want, err := m.Predict(tr.Window(firstRun+1, m.Cfg.H))
	if err != nil {
		t.Fatal(err)
	}
	for p := range want.R {
		if res.Decision.Config.R[p] != want.R[p] {
			t.Fatalf("path %d: post-restart %v, offline %v", p, res.Decision.Config.R[p], want.R[p])
		}
	}
}

// TestControllerSpoolTornTailRecovered: a crash mid-append leaves a torn
// tail block; the restarted controller truncates it and carries on from
// the last durable snapshot instead of refusing to start.
func TestControllerSpoolTornTailRecovered(t *testing.T) {
	ps, tr, m := fixture(t, 60, 1)
	reg := NewRegistry()
	if err := reg.AddTopology("pod", ps); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("pod", m, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := ControllerOptions{HistoryCap: 8, Spool: dir}

	c1, err := NewController("pod", reg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c1.Ingest(tr.At(i), true); err != nil {
			t.Fatal(err)
		}
	}
	c1.Close()

	// Tear the tail: chop bytes off the end, as a crashed write would.
	path := filepath.Join(dir, "pod.fgt")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-40); err != nil {
		t.Fatal(err)
	}

	c2, err := NewController("pod", reg, opt)
	if err != nil {
		t.Fatalf("torn spool tail was fatal: %v", err)
	}
	t.Cleanup(c2.Close)
	if _, err := c2.Ingest(tr.At(6), true); err != nil {
		t.Fatal(err)
	}
}
