package netsim

import (
	"testing"

	"figret/internal/te"
	"figret/internal/traffic"
)

// failureSetup builds the substrate the mid-series failure tests share:
// the PoD fabric, a calibrated trace and a failure set taking down one
// link (both directions).
func failureSetup(t *testing.T) (*te.PathSet, *traffic.Trace, *te.FailureSet) {
	t.Helper()
	ps, tr := loopSetup(t)
	fs := te.NewFailureSet(ps.G, [][2]int{{0, 1}})
	return ps, tr, fs
}

// TestSimulateSeriesMidFailure injects a failure halfway through a
// series: configs before the cut are the clean uniform split, configs
// from the cut on are the rerouted ones. Pre-cut results must be
// bitwise identical to a failure-free series, and post-cut results must
// match simulating the rerouted config directly — SimulateSeries has no
// hidden cross-snapshot state.
func TestSimulateSeriesMidFailure(t *testing.T) {
	ps, tr, fs := failureSetup(t)
	uni := te.UniformConfig(ps)
	rerouted := te.Reroute(uni, fs)

	const n, cut = 20, 10
	cfgs := make([]*te.Config, n)
	clean := make([]*te.Config, n)
	demands := make([][]float64, n)
	for i := 0; i < n; i++ {
		demands[i] = tr.At(i)
		clean[i] = uni
		if i < cut {
			cfgs[i] = uni
		} else {
			cfgs[i] = rerouted
		}
	}

	got, err := SimulateSeries(cfgs, demands)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateSeries(clean, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i := 0; i < cut; i++ {
		if got[i].MLU != want[i].MLU || got[i].Delivered != want[i].Delivered {
			t.Fatalf("pre-failure interval %d diverged from failure-free series", i)
		}
	}
	for i := cut; i < n; i++ {
		direct, err := Simulate(rerouted, demands[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i].MLU != direct.MLU || got[i].Delivered != direct.Delivered || got[i].LossRate != direct.LossRate {
			t.Fatalf("post-failure interval %d does not match direct simulation", i)
		}
		// The rerouted config concentrates the failed paths' mass on the
		// survivors; every pair must still deliver (PoD stays connected
		// under one link failure with k=3 candidate paths).
		if got[i].Offered <= 0 {
			t.Fatalf("post-failure interval %d offered nothing", i)
		}
	}

	// Rerouted configs route strictly around the failed link: its two
	// directed edges carry zero offered load, so the rerouted MLU must
	// differ from the clean one whenever the failed link was the
	// bottleneck or its traffic moved (sanity: the series actually
	// changed at the cut).
	changed := false
	for i := cut; i < n; i++ {
		if got[i].MLU != want[i].MLU {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("failure injection left the series untouched (reroute was a no-op?)")
	}
}

func TestSimulateSeriesLengthMismatch(t *testing.T) {
	ps, tr, _ := failureSetup(t)
	uni := te.UniformConfig(ps)
	if _, err := SimulateSeries([]*te.Config{uni}, [][]float64{tr.At(0), tr.At(1)}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestControlLoopMidSeriesFailure drives the control loop with an
// advisor that learns of a failure at interval failAt: advice from then
// on is rerouted. With installation delay d, the network must keep
// forwarding with pre-failure configurations for exactly d intervals
// after the cut — the staleness window the paper's §1 control loop
// exposes — and every interval must equal the hand-computed fixed-point
// simulation of whatever configuration is installed at that time.
func TestControlLoopMidSeriesFailure(t *testing.T) {
	ps, tr, fs := failureSetup(t)
	uni := te.UniformConfig(ps)
	rerouted := te.Reroute(uni, fs)
	const from, to, failAt, delay = 5, 35, 20, 3

	cl := &ControlLoop{
		Advise: func(t int) (*te.Config, error) {
			if t >= failAt {
				return rerouted, nil
			}
			return uni, nil
		},
		Delay:   delay,
		Initial: uni,
	}
	res, err := cl.Run(tr.At, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInterval) != to-from {
		t.Fatalf("intervals = %d, want %d", len(res.PerInterval), to-from)
	}

	// installedAt mirrors the loop's pipeline: advice computed at
	// interval t takes effect at t+delay.
	installedAt := func(t int) *te.Config {
		if t-delay >= failAt {
			return rerouted
		}
		return uni
	}
	for t_ := from; t_ < to; t_++ {
		want, err := Simulate(installedAt(t_), tr.At(t_))
		if err != nil {
			t.Fatal(err)
		}
		got := res.PerInterval[t_-from]
		if got.MLU != want.MLU || got.Delivered != want.Delivered || got.MeanDelay != want.MeanDelay {
			t.Fatalf("interval %d: loop result diverges from installed-config simulation (MLU %v vs %v)",
				t_, got.MLU, want.MLU)
		}
	}

	// The staleness window [failAt, failAt+delay) must still run the
	// pre-failure configuration — the rerouted one lands exactly at
	// failAt+delay.
	pre, err := Simulate(uni, tr.At(failAt+delay-1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerInterval[failAt+delay-1-from].MLU != pre.MLU {
		t.Fatal("stale window rerouted early")
	}
	post, err := Simulate(rerouted, tr.At(failAt+delay))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerInterval[failAt+delay-from].MLU != post.MLU {
		t.Fatal("rerouted configuration did not land at failAt+delay")
	}
}

// TestControlLoopZeroDelayFailure: with Delay 0 the rerouted advice
// takes effect in the same interval the advisor learns of the failure —
// no staleness window at all.
func TestControlLoopZeroDelayFailure(t *testing.T) {
	ps, tr, fs := failureSetup(t)
	uni := te.UniformConfig(ps)
	rerouted := te.Reroute(uni, fs)
	const from, to, failAt = 5, 25, 12

	cl := &ControlLoop{
		Advise: func(t int) (*te.Config, error) {
			if t >= failAt {
				return rerouted, nil
			}
			return uni, nil
		},
		Delay:   0,
		Initial: uni,
	}
	res, err := cl.Run(tr.At, from, to)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(rerouted, tr.At(failAt))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerInterval[failAt-from].MLU != want.MLU {
		t.Fatal("zero-delay loop did not install rerouted advice immediately")
	}
}
