// Package netsim is a fluid-level network simulator used to validate the
// paper's premise that MLU is "a reasonable proxy metric for throughput as
// well as for resilience against traffic pattern variation" (§3, quoting
// Google's Jupiter experience): given a topology, a TE configuration and a
// demand matrix, it computes per-pair delivered throughput, loss and a
// queueing-delay proxy under proportional fair sharing of overloaded links.
//
// The model is deliberately simple and deterministic:
//
//   - each (pair, path) flow offers d_pair · r_p;
//   - an overloaded link (load > capacity) delivers each crossing flow the
//     fraction capacity/load of its arrival rate (proportional sharing);
//   - flows traverse links in path order, so loss upstream reduces load
//     downstream; the fixed point is computed by sweeping until loads
//     stabilize;
//   - the delay proxy of a link is 1/(1−u) for utilization u < 1 (M/M/1
//     shape), clamped at MaxDelayFactor for saturated links.
package netsim

import (
	"fmt"
	"math"

	"figret/internal/te"
)

// MaxDelayFactor caps the per-link M/M/1 delay proxy for links at or beyond
// capacity.
const MaxDelayFactor = 100.0

// Result summarizes one simulated interval.
type Result struct {
	// Offered and Delivered are total traffic volumes.
	Offered, Delivered float64
	// LossRate = 1 − Delivered/Offered (0 when nothing is offered).
	LossRate float64
	// PairDelivered[i] is pair i's delivered volume.
	PairDelivered []float64
	// MLU is the max link utilization of the *offered* load (the quantity
	// TE optimizes).
	MLU float64
	// MeanDelay is the demand-weighted average of path delay proxies.
	MeanDelay float64
	// MaxLinkLoss is the highest per-link drop fraction.
	MaxLinkLoss float64
}

// Simulate runs the fluid model for demand d under configuration cfg.
func Simulate(cfg *te.Config, d []float64) (*Result, error) {
	ps := cfg.PathSet()
	if len(d) != ps.Pairs.Count() {
		return nil, fmt.Errorf("netsim: demand has %d entries, want %d", len(d), ps.Pairs.Count())
	}
	ne := ps.G.NumEdges()

	// Offered per-flow rates (flow = path with positive ratio and demand).
	type flow struct {
		path int
		rate float64
	}
	var flows []flow
	var offered float64
	for p, r := range cfg.R {
		if r <= 0 {
			continue
		}
		dp := d[ps.PairOf[p]]
		if dp <= 0 {
			continue
		}
		flows = append(flows, flow{path: p, rate: dp * r})
		offered += dp * r
	}

	// MLU of offered load.
	res := &Result{
		Offered:       offered,
		PairDelivered: make([]float64, ps.Pairs.Count()),
	}
	mlu, _ := ps.MLU(d, cfg.R)
	res.MLU = mlu
	if offered == 0 {
		return res, nil
	}

	// Fixed point of per-link pass fractions: start from pass=1 everywhere,
	// recompute link loads with upstream losses applied, update pass
	// fractions, repeat.
	pass := make([]float64, ne)
	for e := range pass {
		pass[e] = 1
	}
	load := make([]float64, ne)
	for iter := 0; iter < 50; iter++ {
		for e := range load {
			load[e] = 0
		}
		for _, f := range flows {
			rate := f.rate
			for _, e := range ps.EdgeIDs[f.path] {
				load[e] += rate
				rate *= pass[e]
			}
		}
		maxChange := 0.0
		for e := range pass {
			want := 1.0
			if c := ps.G.Edge(e).Capacity; load[e] > c {
				want = c / load[e]
			}
			if ch := math.Abs(want - pass[e]); ch > maxChange {
				maxChange = ch
			}
			pass[e] = want
		}
		if maxChange < 1e-9 {
			break
		}
	}

	// Delivered volume, delay proxies and per-link loss.
	var weightedDelay float64
	for _, f := range flows {
		rate := f.rate
		delay := 0.0
		for _, e := range ps.EdgeIDs[f.path] {
			u := load[e] / ps.G.Edge(e).Capacity
			if u >= 1 {
				delay += MaxDelayFactor
			} else {
				delay += 1 / (1 - u)
			}
			rate *= pass[e]
		}
		res.Delivered += rate
		res.PairDelivered[ps.PairOf[f.path]] += rate
		weightedDelay += f.rate * delay
	}
	res.LossRate = 1 - res.Delivered/res.Offered
	if res.LossRate < 0 {
		res.LossRate = 0
	}
	res.MeanDelay = weightedDelay / res.Offered
	for e := range pass {
		if l := 1 - pass[e]; l > res.MaxLinkLoss {
			res.MaxLinkLoss = l
		}
	}
	return res, nil
}

// SimulateSeries runs Simulate over a sequence of demands and returns the
// per-snapshot results.
func SimulateSeries(cfgs []*te.Config, demands [][]float64) ([]*Result, error) {
	if len(cfgs) != len(demands) {
		return nil, fmt.Errorf("netsim: %d configs vs %d demands", len(cfgs), len(demands))
	}
	out := make([]*Result, len(cfgs))
	for i := range cfgs {
		r, err := Simulate(cfgs[i], demands[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Correlation returns the Pearson correlation between two equal-length
// series; it is used to validate MLU as a proxy for loss and delay.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	n := float64(len(a))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
