package netsim

import (
	"fmt"

	"figret/internal/te"
)

// ControlLoop models the TE control plane of §1: a centralized controller
// periodically computes a configuration from historical demands, but —
// because of collection, computation and rule-installation latency — the
// configuration only takes effect Delay intervals later. Until then the
// network keeps forwarding with the previously installed configuration.
//
// Running the loop over a demand sequence with the fluid simulator exposes
// exactly the failure mode the paper opens with: the longer the delay, the
// staler the installed configuration when a burst arrives.
type ControlLoop struct {
	// Advise produces the configuration the controller would install based
	// on everything up to (and including) snapshot t-1.
	Advise func(t int) (*te.Config, error)
	// Delay is the number of intervals between computing a configuration
	// and it taking effect (>= 0; 0 means same-interval installation).
	Delay int
	// Initial is the configuration installed before the first controller
	// output lands.
	Initial *te.Config
}

// LoopResult aggregates a control-loop run.
type LoopResult struct {
	// PerInterval holds the fluid-simulation result of every interval.
	PerInterval []*Result
	// MeanMLU and PeakMLU summarize the offered-load MLU series.
	MeanMLU, PeakMLU float64
	// MeanLoss is the average loss rate.
	MeanLoss float64
}

// Run executes the loop over demands[from:to) (indices into the demand
// accessor) and simulates each interval with whatever configuration is
// installed at that time.
func (cl *ControlLoop) Run(demand func(t int) []float64, from, to int) (*LoopResult, error) {
	if cl.Advise == nil || cl.Initial == nil {
		return nil, fmt.Errorf("netsim: control loop needs Advise and Initial")
	}
	if cl.Delay < 0 {
		return nil, fmt.Errorf("netsim: negative delay %d", cl.Delay)
	}
	if from >= to {
		return nil, fmt.Errorf("netsim: empty interval range [%d,%d)", from, to)
	}
	// pending[i] is the configuration computed at interval from+i, which
	// becomes active at interval from+i+Delay.
	installed := cl.Initial
	pending := make([]*te.Config, 0, cl.Delay+1)
	res := &LoopResult{}
	for t := from; t < to; t++ {
		// Controller output for this interval (computed from history).
		cfg, err := cl.Advise(t)
		if err != nil {
			return nil, fmt.Errorf("netsim: advise at t=%d: %w", t, err)
		}
		pending = append(pending, cfg)
		if len(pending) > cl.Delay {
			installed = pending[0]
			pending = pending[1:]
		}
		sim, err := Simulate(installed, demand(t))
		if err != nil {
			return nil, err
		}
		res.PerInterval = append(res.PerInterval, sim)
	}
	var mluSum, lossSum float64
	for _, r := range res.PerInterval {
		mluSum += r.MLU
		lossSum += r.LossRate
		if r.MLU > res.PeakMLU {
			res.PeakMLU = r.MLU
		}
	}
	n := float64(len(res.PerInterval))
	res.MeanMLU = mluSum / n
	res.MeanLoss = lossSum / n
	return res, nil
}
