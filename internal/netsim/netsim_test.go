package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"figret/internal/graph"
	"figret/internal/te"
)

func triangleSetup(t *testing.T) (*te.PathSet, *te.Config) {
	t.Helper()
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ps, te.NewConfig(ps)
}

func demand(ps *te.PathSet, ab, ac, bc float64) []float64 {
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 1)] = ab
	d[ps.Pairs.Index(0, 2)] = ac
	d[ps.Pairs.Index(1, 2)] = bc
	return d
}

func TestNoLossBelowCapacity(t *testing.T) {
	ps, cfg := triangleSetup(t)
	d := demand(ps, 1, 1, 1) // direct paths, capacity 2 each
	res, err := Simulate(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate != 0 {
		t.Errorf("loss = %v below capacity", res.LossRate)
	}
	if math.Abs(res.Delivered-res.Offered) > 1e-9 {
		t.Errorf("delivered %v != offered %v", res.Delivered, res.Offered)
	}
	if math.Abs(res.MLU-0.5) > 1e-9 {
		t.Errorf("MLU = %v", res.MLU)
	}
	if res.MeanDelay < 1 {
		t.Errorf("delay proxy %v below 1", res.MeanDelay)
	}
}

func TestProportionalLossWhenOverloaded(t *testing.T) {
	ps, cfg := triangleSetup(t)
	// A->B demand 4 on a capacity-2 link: half must be dropped.
	d := demand(ps, 4, 0, 0)
	res, err := Simulate(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LossRate-0.5) > 1e-9 {
		t.Errorf("loss = %v, want 0.5", res.LossRate)
	}
	if math.Abs(res.PairDelivered[ps.Pairs.Index(0, 1)]-2) > 1e-9 {
		t.Errorf("delivered = %v, want 2", res.PairDelivered[ps.Pairs.Index(0, 1)])
	}
	if math.Abs(res.MaxLinkLoss-0.5) > 1e-9 {
		t.Errorf("max link loss = %v", res.MaxLinkLoss)
	}
	if res.MLU != 2 {
		t.Errorf("offered MLU = %v, want 2", res.MLU)
	}
}

func TestUpstreamLossReducesDownstreamLoad(t *testing.T) {
	// Chain 0->1->2 where the first hop is the bottleneck: the second hop
	// sees only the surviving traffic and drops nothing.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 1, 2)
	ps, err := te.NewPathSet(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := te.NewConfig(ps)
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 2)] = 3 // path 0->1->2, bottleneck cap 1
	res, err := Simulate(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 // only 1 unit passes hop 1; hop 2 has headroom
	if math.Abs(res.PairDelivered[ps.Pairs.Index(0, 2)]-want) > 1e-6 {
		t.Errorf("delivered %v, want %v", res.PairDelivered[ps.Pairs.Index(0, 2)], want)
	}
	// Loss must be attributed to the first hop only.
	if math.Abs(res.MaxLinkLoss-(1-1.0/3)) > 1e-6 {
		t.Errorf("max link loss %v", res.MaxLinkLoss)
	}
}

func TestZeroDemand(t *testing.T) {
	ps, cfg := triangleSetup(t)
	res, err := Simulate(cfg, make([]float64, ps.Pairs.Count()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 0 || res.LossRate != 0 || res.MLU != 0 {
		t.Errorf("zero demand result %+v", res)
	}
}

func TestSimulateValidation(t *testing.T) {
	ps, cfg := triangleSetup(t)
	_ = ps
	if _, err := Simulate(cfg, []float64{1}); err == nil {
		t.Error("wrong demand size accepted")
	}
	if _, err := SimulateSeries([]*te.Config{cfg}, nil); err == nil {
		t.Error("mismatched series accepted")
	}
}

// Property: delivered <= offered, per-pair delivered <= per-pair offered,
// and loss is 0 iff MLU <= 1 (within tolerance).
func TestConservationProperty(t *testing.T) {
	ps, err := te.NewPathSet(graph.GEANT(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := te.NewConfig(ps)
		for i := range cfg.R {
			cfg.R[i] = rng.Float64()
		}
		cfg.Normalize()
		d := make([]float64, ps.Pairs.Count())
		for i := range d {
			d[i] = rng.Float64() * 3
		}
		res, err := Simulate(cfg, d)
		if err != nil {
			return false
		}
		if res.Delivered > res.Offered+1e-9 {
			return false
		}
		for pi, v := range res.PairDelivered {
			if v > d[pi]+1e-9 {
				return false
			}
		}
		if res.MLU <= 1 && res.LossRate > 1e-9 {
			return false
		}
		if res.MLU > 1.01 && res.LossRate == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMLUCorrelatesWithLoss(t *testing.T) {
	// The §3 premise: across overload levels, higher MLU means more loss
	// and delay.
	ps, cfg := triangleSetup(t)
	var mlus, losses, delays []float64
	for _, scale := range []float64{0.5, 1, 2, 4, 8} {
		d := demand(ps, scale, scale, scale)
		res, err := Simulate(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		mlus = append(mlus, res.MLU)
		losses = append(losses, res.LossRate)
		delays = append(delays, res.MeanDelay)
	}
	if c := Correlation(mlus, losses); c < 0.8 {
		t.Errorf("MLU/loss correlation %v too weak", c)
	}
	if c := Correlation(mlus, delays); c < 0.6 {
		t.Errorf("MLU/delay correlation %v too weak", c)
	}
}

func TestCorrelationEdgeCases(t *testing.T) {
	if c := Correlation([]float64{1, 2}, []float64{1}); c != 0 {
		t.Errorf("length mismatch = %v", c)
	}
	if c := Correlation([]float64{1, 1}, []float64{2, 3}); c != 0 {
		t.Errorf("constant series = %v", c)
	}
	if c := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
}

func TestHedgingReducesSimulatedLoss(t *testing.T) {
	// End-to-end tie-in with the TE story: under a burst, the spread config
	// loses less traffic than the all-direct config.
	ps, direct := triangleSetup(t)
	spread := te.UniformConfig(ps)
	d := demand(ps, 4, 1, 1) // burst on A->B
	rd, err := Simulate(direct, d)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(spread, d)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LossRate >= rd.LossRate {
		t.Errorf("spread loss %v not below direct loss %v", rs.LossRate, rd.LossRate)
	}
}
