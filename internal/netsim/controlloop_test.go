package netsim

import (
	"testing"

	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/te"
	"figret/internal/traffic"
)

func loopSetup(t *testing.T) (*te.PathSet, *traffic.Trace) {
	t.Helper()
	ps, err := te.NewPathSet(graph.PoDDB(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.DC(traffic.PoDDB, 4, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scale so the mean uniform MLU is near 1 (losses become visible).
	mean := tr.Means()
	u := te.UniformConfig(ps)
	m, _ := ps.MLU(mean, u.R)
	tr.Scale(1.0 / m)
	return ps, tr
}

func TestControlLoopValidation(t *testing.T) {
	ps, tr := loopSetup(t)
	cl := &ControlLoop{}
	if _, err := cl.Run(tr.At, 0, 5); err == nil {
		t.Error("missing Advise/Initial accepted")
	}
	cl = &ControlLoop{
		Advise:  func(t int) (*te.Config, error) { return te.UniformConfig(ps), nil },
		Initial: te.UniformConfig(ps),
		Delay:   -1,
	}
	if _, err := cl.Run(tr.At, 0, 5); err == nil {
		t.Error("negative delay accepted")
	}
	cl.Delay = 0
	if _, err := cl.Run(tr.At, 5, 5); err == nil {
		t.Error("empty range accepted")
	}
}

func TestControlLoopStaticEqualsDirect(t *testing.T) {
	// With a constant advisor, delay must not matter.
	ps, tr := loopSetup(t)
	uni := te.UniformConfig(ps)
	mk := func(delay int) *ControlLoop {
		return &ControlLoop{
			Advise:  func(int) (*te.Config, error) { return uni, nil },
			Initial: uni,
			Delay:   delay,
		}
	}
	a, err := mk(0).Run(tr.At, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(3).Run(tr.At, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMLU != b.MeanMLU || a.MeanLoss != b.MeanLoss {
		t.Errorf("delay changed static results: %v vs %v", a.MeanMLU, b.MeanMLU)
	}
}

func TestControlLoopDelayHurts(t *testing.T) {
	// An adaptive advisor (LP on the previous demand) must degrade as the
	// installation delay grows: stale configurations meet newer traffic.
	ps, tr := loopSetup(t)
	advise := func(t int) (*te.Config, error) {
		cfg, _, err := lp.MLUMin(ps, tr.At(t-1))
		return cfg, err
	}
	run := func(delay int) float64 {
		cl := &ControlLoop{Advise: advise, Initial: te.UniformConfig(ps), Delay: delay}
		res, err := cl.Run(tr.At, 12, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanMLU
	}
	fresh := run(0)
	stale := run(8)
	if stale < fresh {
		t.Errorf("8-interval delay improved MLU: fresh %v, stale %v", fresh, stale)
	}
}

func TestControlLoopPerIntervalCount(t *testing.T) {
	ps, tr := loopSetup(t)
	cl := &ControlLoop{
		Advise:  func(int) (*te.Config, error) { return te.UniformConfig(ps), nil },
		Initial: te.UniformConfig(ps),
		Delay:   2,
	}
	res, err := cl.Run(tr.At, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInterval) != 20 {
		t.Errorf("intervals = %d, want 20", len(res.PerInterval))
	}
	if res.PeakMLU < res.MeanMLU {
		t.Error("peak below mean")
	}
}
