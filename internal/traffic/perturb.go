package traffic

import (
	"math/rand"
	"sort"
)

// Perturb implements the Table 3 stress test: for each SD pair, every test
// snapshot receives additive Gaussian noise α·N(0, σ²_sd), where σ_sd is the
// pair's standard deviation measured on refStats (typically the training
// trace). Demands are clamped at 0. The input trace is not modified.
func Perturb(t *Trace, refStats *Trace, alpha float64, seed int64) *Trace {
	sigma := refStats.Stddevs()
	return perturbWith(t, sigma, alpha, seed)
}

// WorstCasePerturb implements the Table 5 adversarial variant: the
// per-pair noise scales are the reference σ values with their variance
// ranking reversed, so historically stable pairs receive the largest
// fluctuations ("we intentionally reverse the order of the magnitude of
// temporal traffic fluctuations among SD pairs").
func WorstCasePerturb(t *Trace, refStats *Trace, alpha float64, seed int64) *Trace {
	sigma := refStats.Stddevs()
	reversed := reverseRankMap(sigma)
	return perturbWith(t, reversed, alpha, seed)
}

// reverseRankMap returns a vector where the pair holding rank i of xs
// (ascending) is assigned the value at rank n-1-i: the largest value goes
// to the historically smallest pair, and so on. Equal values (duplicated σ
// across pairs) are ranked by ascending pair index, making the comparator a
// total order — the ranking, and therefore WorstCasePerturb's noise
// assignment, is fully determined by xs rather than by sort internals.
func reverseRankMap(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] < xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]float64, len(xs))
	for rank, i := range idx {
		out[i] = xs[idx[len(idx)-1-rank]]
	}
	return out
}

func perturbWith(t *Trace, sigma []float64, alpha float64, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	out := t.Clone()
	for _, snap := range out.Snapshots {
		for i := range snap {
			snap[i] += alpha * sigma[i] * rng.NormFloat64()
			if snap[i] < 0 {
				snap[i] = 0
			}
		}
	}
	return out
}
