// Package traffic provides demand matrices, the synthetic workload
// generators standing in for the paper's datasets (GEANT WAN traces, Meta
// PoD/ToR data-center traces, the pFabric flow workload, and gravity-model
// WAN traffic), traffic statistics (per-pair variance, cosine-similarity
// burstiness analysis), and the perturbation machinery behind Tables 3 and 5.
//
// A demand snapshot is a flat []float64 indexed by te.Pairs pair index; a
// Trace is an ordered sequence of snapshots.
package traffic

import (
	"fmt"

	"figret/internal/te"
)

// Trace is a time-ordered sequence of demand matrices over a fixed vertex
// set. Snapshots share the pair indexing of Pairs.
//
// View contract: Slice (and Split, built on it) returns a *view* — the
// snapshot vectors are shared with the parent, so mutating a demand entry
// through a view is visible in the parent and vice versa. The snapshot
// *index structure* is not shared in the other direction: appending to a
// view never alters the parent (views are capacity-clipped, so Append
// reallocates the view's index instead of clobbering the parent's backing
// array). Use Clone for a fully independent copy.
type Trace struct {
	Pairs     te.Pairs
	Snapshots [][]float64
}

// NewTrace allocates an empty trace for n vertices.
func NewTrace(n int) *Trace {
	return &Trace{Pairs: te.NewPairs(n)}
}

// Len returns the number of snapshots.
func (t *Trace) Len() int { return len(t.Snapshots) }

// At returns snapshot i (not a copy).
func (t *Trace) At(i int) []float64 { return t.Snapshots[i] }

// Append adds a copy of snapshot d; it must have Pairs.Count() entries.
// Copying makes Append safe for streaming ingesters that reuse their read
// buffer between snapshots — the trace never retains a caller's slice, so
// later writes to d cannot corrupt history. Use At to mutate a stored
// snapshot in place, and AppendOwned to hand over a freshly-built slice
// without the copy.
func (t *Trace) Append(d []float64) error {
	if len(d) != t.Pairs.Count() {
		return fmt.Errorf("traffic: snapshot has %d entries, want %d", len(d), t.Pairs.Count())
	}
	return t.AppendOwned(append([]float64(nil), d...))
}

// AppendOwned adds snapshot d transferring ownership: the trace retains d
// itself, so the caller must not write to it afterwards. It is the
// zero-copy path for producers that build a fresh slice per snapshot
// (generators, deserializers, ingest queues that already copied).
func (t *Trace) AppendOwned(d []float64) error {
	if len(d) != t.Pairs.Count() {
		return fmt.Errorf("traffic: snapshot has %d entries, want %d", len(d), t.Pairs.Count())
	}
	t.Snapshots = append(t.Snapshots, d)
	return nil
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Pairs: t.Pairs, Snapshots: make([][]float64, len(t.Snapshots))}
	for i, s := range t.Snapshots {
		c.Snapshots[i] = append([]float64(nil), s...)
	}
	return c
}

// Slice returns a view of snapshots [from, to). Snapshot vectors are
// shared with the parent (see the Trace view contract); the view's
// capacity is clipped to its length, so appending to the view reallocates
// instead of overwriting the parent's snapshots past to.
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 || to > t.Len() || from > to {
		panic(fmt.Sprintf("traffic: bad slice [%d,%d) of %d", from, to, t.Len()))
	}
	return &Trace{Pairs: t.Pairs, Snapshots: t.Snapshots[from:to:to]}
}

// Split divides the trace chronologically: the first frac (0..1) of the
// snapshots become train, the rest test — the paper's protocol ("we sorted
// the data chronologically, using the first 75% for training").
func (t *Trace) Split(frac float64) (train, test *Trace) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("traffic: split fraction %v out of [0,1]", frac))
	}
	cut := int(float64(t.Len()) * frac)
	return t.Slice(0, cut), t.Slice(cut, t.Len())
}

// Scale multiplies every demand by f in place and returns t.
func (t *Trace) Scale(f float64) *Trace {
	for _, s := range t.Snapshots {
		for i := range s {
			s[i] *= f
		}
	}
	return t
}

// MaxDemand returns the largest single demand entry in the trace.
func (t *Trace) MaxDemand() float64 {
	m := 0.0
	for _, s := range t.Snapshots {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Window returns the H snapshots strictly before index t as a flat vector
// (oldest first), the input layout consumed by the history-window models.
// It panics unless H <= t <= Len().
func (tr *Trace) Window(t, H int) []float64 {
	return tr.WindowInto(make([]float64, H*tr.Pairs.Count()), t, H)
}

// WindowInto is the allocation-free variant of Window: it copies the H
// snapshots strictly before index t into dst (which must have exactly
// H·Pairs.Count() entries) and returns dst. The batched training loop uses
// it to assemble minibatch input rows in place.
func (tr *Trace) WindowInto(dst []float64, t, H int) []float64 {
	if t < H || t > tr.Len() {
		panic(fmt.Sprintf("traffic: window t=%d H=%d len=%d", t, H, tr.Len()))
	}
	k := tr.Pairs.Count()
	if len(dst) != H*k {
		panic(fmt.Sprintf("traffic: window dst has %d entries, want %d", len(dst), H*k))
	}
	for i := 0; i < H; i++ {
		copy(dst[i*k:(i+1)*k], tr.Snapshots[t-H+i])
	}
	return dst
}

// PeakMatrix returns the entrywise maximum over the last H snapshots before
// index t — the "anticipated matrix composed of the peak values for each
// source-destination pair within a time window" used by the
// desensitization-based (Jupiter hedging) baseline.
func (tr *Trace) PeakMatrix(t, H int) []float64 {
	if t < 1 {
		panic("traffic: PeakMatrix needs t >= 1")
	}
	start := t - H
	if start < 0 {
		start = 0
	}
	k := tr.Pairs.Count()
	out := make([]float64, k)
	for i := start; i < t; i++ {
		for j, v := range tr.Snapshots[i] {
			if v > out[j] {
				out[j] = v
			}
		}
	}
	return out
}
