package traffic

import (
	"math"
	"sort"
)

// Means returns the per-pair mean demand over the trace.
func (t *Trace) Means() []float64 {
	k := t.Pairs.Count()
	out := make([]float64, k)
	if t.Len() == 0 {
		return out
	}
	for _, s := range t.Snapshots {
		for i, v := range s {
			out[i] += v
		}
	}
	inv := 1 / float64(t.Len())
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Variances returns the per-pair population variance σ²_sd over the trace —
// the traffic-characteristic signal FIGRET's L2 loss weights by (Eq. 8) and
// the quantity plotted in Figure 2.
func (t *Trace) Variances() []float64 {
	k := t.Pairs.Count()
	out := make([]float64, k)
	if t.Len() == 0 {
		return out
	}
	means := t.Means()
	for _, s := range t.Snapshots {
		for i, v := range s {
			d := v - means[i]
			out[i] += d * d
		}
	}
	inv := 1 / float64(t.Len())
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Stddevs returns per-pair standard deviations.
func (t *Trace) Stddevs() []float64 {
	v := t.Variances()
	for i := range v {
		v[i] = math.Sqrt(v[i])
	}
	return v
}

// NormalizedVariances returns variances scaled to [0,1] by the maximum
// (the normalization used in Figure 2's heatmaps).
func (t *Trace) NormalizedVariances() []float64 {
	v := t.Variances()
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if m > 0 {
		for i := range v {
			v[i] /= m
		}
	}
	return v
}

// CosineSimilarity returns the cosine similarity of two demand vectors,
// or 0 if either is all-zero.
func CosineSimilarity(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// WindowSimilarities implements the Figure 4 analysis: for every snapshot
// t >= H, the maximum cosine similarity between D_t and any of the previous
// H snapshots. Values near 1 indicate stable, predictable traffic; low
// outliers indicate bursts.
func (t *Trace) WindowSimilarities(H int) []float64 {
	var out []float64
	for i := H; i < t.Len(); i++ {
		best := -1.0
		for j := i - H; j < i; j++ {
			if c := CosineSimilarity(t.Snapshots[i], t.Snapshots[j]); c > best {
				best = c
			}
		}
		out = append(out, best)
	}
	return out
}

// Quantile returns the q'th quantile (0..1) of xs by linear interpolation.
// It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("traffic: quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Candlestick summarizes a distribution the way Figure 4's candlesticks do.
type Candlestick struct {
	Min, P25, Median, P75, Max, Mean float64
}

// Summarize computes a Candlestick over xs.
func Summarize(xs []float64) Candlestick {
	c := Candlestick{
		Min:    Quantile(xs, 0),
		P25:    Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		P75:    Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
	for _, x := range xs {
		c.Mean += x
	}
	c.Mean /= float64(len(xs))
	return c
}

// SpearmanRank returns the Spearman rank correlation coefficient between two
// equal-length samples (used by the Table 5 analysis of variance-rank
// stability between train and test sets).
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	// Pearson correlation of the ranks (robust to ties).
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	n := float64(len(ra))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks returns average ranks (1-based) with ties sharing the mean rank.
func ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1].v == s[i].v {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[s[k].i] = avg
		}
		i = j + 1
	}
	return out
}
