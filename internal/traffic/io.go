package traffic

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// traceJSON is the portable on-disk trace representation used by the CLI
// and the loaders below.
type traceJSON struct {
	N         int         `json:"n"`
	Snapshots [][]float64 `json:"snapshots"`
}

// MarshalJSON serializes the trace with its vertex count.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceJSON{N: t.Pairs.N(), Snapshots: t.Snapshots})
}

// UnmarshalJSON restores a trace, validating snapshot widths.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var j traceJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.N < 2 {
		return fmt.Errorf("traffic: invalid vertex count %d", j.N)
	}
	restored := NewTrace(j.N)
	for i, s := range j.Snapshots {
		if err := restored.AppendOwned(s); err != nil {
			return fmt.Errorf("traffic: snapshot %d: %w", i, err)
		}
	}
	*t = *restored
	return nil
}

// WriteCSV emits the trace as CSV with a header row
// (t, src, dst, demand), one row per nonzero demand entry — the sparse
// format commonly used for public TM datasets.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "src", "dst", "demand"}); err != nil {
		return err
	}
	for ti, snap := range t.Snapshots {
		for pi, v := range snap {
			if v == 0 {
				continue
			}
			s, d := t.Pairs.SD(pi)
			rec := []string{
				strconv.Itoa(ti),
				strconv.Itoa(s),
				strconv.Itoa(d),
				strconv.FormatFloat(v, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format into a trace over n vertices. Rows may
// arrive in any order; missing entries are zero. The snapshot count is
// 1 + the largest t seen.
func ReadCSV(r io.Reader, n int) (*Trace, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: invalid vertex count %d", n)
	}
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return NewTrace(n), nil
	}
	start := 0
	if records[0][0] == "t" {
		start = 1
	}
	type entry struct {
		t, pair int
		v       float64
	}
	tr := NewTrace(n)
	var entries []entry
	maxT := -1
	for i := start; i < len(records); i++ {
		rec := records[i]
		if len(rec) != 4 {
			return nil, fmt.Errorf("traffic: row %d has %d fields, want 4", i, len(rec))
		}
		ti, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad t %q", i, rec[0])
		}
		s, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad src %q", i, rec[1])
		}
		d, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad dst %q", i, rec[2])
		}
		v, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: row %d: bad demand %q", i, rec[3])
		}
		if ti < 0 || s < 0 || s >= n || d < 0 || d >= n || s == d || v < 0 {
			return nil, fmt.Errorf("traffic: row %d out of range: %v", i, rec)
		}
		entries = append(entries, entry{t: ti, pair: tr.Pairs.Index(s, d), v: v})
		if ti > maxT {
			maxT = ti
		}
	}
	for ti := 0; ti <= maxT; ti++ {
		tr.AppendOwned(make([]float64, tr.Pairs.Count()))
	}
	for _, e := range entries {
		tr.Snapshots[e.t][e.pair] = e.v
	}
	return tr, nil
}
