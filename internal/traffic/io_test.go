package traffic

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := DC(PoDDB, 4, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pairs.N() != 4 || back.Len() != orig.Len() {
		t.Fatalf("shape changed: n=%d len=%d", back.Pairs.N(), back.Len())
	}
	for i := range orig.Snapshots {
		for j := range orig.Snapshots[i] {
			if back.Snapshots[i][j] != orig.Snapshots[i][j] {
				t.Fatalf("value changed at (%d,%d)", i, j)
			}
		}
	}
}

func TestJSONValidation(t *testing.T) {
	var tr Trace
	if err := json.Unmarshal([]byte(`{"n":1,"snapshots":[]}`), &tr); err == nil {
		t.Error("n=1 accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":3,"snapshots":[[1,2]]}`), &tr); err == nil {
		t.Error("short snapshot accepted")
	}
	if err := json.Unmarshal([]byte(`{bad`), &tr); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := NewTrace(3)
	orig.Append([]float64{1, 0, 2.5, 0, 0, 3})
	orig.Append([]float64{0, 0, 0, 0, 0, 0})
	orig.Append([]float64{7, 0, 0, 0, 1e-3, 0})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("len = %d, want 3 (zero snapshot preserved via max t)", back.Len())
	}
	for i := range orig.Snapshots {
		for j := range orig.Snapshots[i] {
			if back.Snapshots[i][j] != orig.Snapshots[i][j] {
				t.Fatalf("(%d,%d): %v vs %v", i, j, back.Snapshots[i][j], orig.Snapshots[i][j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		n    int
	}{
		{"bad n", "t,src,dst,demand\n", 1},
		{"short row", "0,1\n", 3},
		{"bad t", "x,0,1,5\n", 3},
		{"bad src", "0,x,1,5\n", 3},
		{"bad dst", "0,0,x,5\n", 3},
		{"bad demand", "0,0,1,x\n", 3},
		{"self loop", "0,1,1,5\n", 3},
		{"negative demand", "0,0,1,-2\n", 3},
		{"out of range dst", "0,0,9,5\n", 3},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), c.n); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Empty input is fine.
	tr, err := ReadCSV(strings.NewReader(""), 3)
	if err != nil || tr.Len() != 0 {
		t.Errorf("empty input: %v len %d", err, tr.Len())
	}
	// Headerless input is fine too.
	tr, err = ReadCSV(strings.NewReader("0,0,1,5\n"), 3)
	if err != nil || tr.Len() != 1 {
		t.Fatalf("headerless: %v", err)
	}
	if tr.At(0)[tr.Pairs.Index(0, 1)] != 5 {
		t.Error("headerless value lost")
	}
}
