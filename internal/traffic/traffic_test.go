package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTraceBasics(t *testing.T) {
	tr := NewTrace(3)
	if tr.Pairs.Count() != 6 {
		t.Fatalf("pairs = %d", tr.Pairs.Count())
	}
	if err := tr.Append(make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(make([]float64, 5)); err == nil {
		t.Error("wrong-size snapshot accepted")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestAppendCopiesSnapshot(t *testing.T) {
	// A streaming ingester reuses its read buffer between snapshots; the
	// trace must not retain the caller's slice.
	tr := NewTrace(2)
	buf := []float64{1, 2}
	tr.Append(buf)
	buf[0], buf[1] = 77, 88
	tr.Append(buf)
	if got := tr.At(0); got[0] != 1 || got[1] != 2 {
		t.Errorf("snapshot 0 corrupted by buffer reuse: %v", got)
	}
	if got := tr.At(1); got[0] != 77 || got[1] != 88 {
		t.Errorf("snapshot 1 = %v, want [77 88]", got)
	}
}

func TestAppendToViewDoesNotClobberParent(t *testing.T) {
	parent := NewTrace(2)
	for i := 0; i < 5; i++ {
		parent.Append([]float64{float64(i), 0})
	}
	view := parent.Slice(1, 3)
	view.Append([]float64{99, 99})
	// The append must land only in the view: parent snapshot 3 (the entry
	// just past the view) keeps its value, and the parent's length is
	// unchanged.
	if got := parent.At(3)[0]; got != 3 {
		t.Errorf("parent snapshot 3 clobbered by view append: %v", got)
	}
	if parent.Len() != 5 {
		t.Errorf("parent length = %d after view append", parent.Len())
	}
	if view.Len() != 3 || view.At(2)[0] != 99 {
		t.Errorf("view after append: len %d, last %v", view.Len(), view.At(view.Len()-1))
	}
	// Demand entries remain shared parent<->view (the documented view
	// contract): mutation through the view is visible in the parent.
	view.At(0)[1] = 42
	if parent.At(1)[1] != 42 {
		t.Error("view lost snapshot-vector sharing with parent")
	}
}

func TestTraceCloneIndependence(t *testing.T) {
	tr := NewTrace(2)
	tr.Append([]float64{1, 2})
	c := tr.Clone()
	c.Snapshots[0][0] = 99
	if tr.Snapshots[0][0] != 1 {
		t.Error("clone shares storage")
	}
}

func TestSplit(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 10; i++ {
		tr.Append([]float64{float64(i), 0})
	}
	train, test := tr.Split(0.75)
	if train.Len() != 7 || test.Len() != 3 {
		t.Errorf("split = %d/%d, want 7/3", train.Len(), test.Len())
	}
	if test.At(0)[0] != 7 {
		t.Errorf("test starts at %v", test.At(0)[0])
	}
}

func TestWindow(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Append([]float64{float64(i), float64(10 * i)})
	}
	w := tr.Window(3, 2)
	want := []float64{1, 10, 2, 20}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window = %v, want %v", w, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Window(1,2) should panic")
		}
	}()
	tr.Window(1, 2)
}

func TestWindowInto(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Append([]float64{float64(i), float64(10 * i)})
	}
	buf := make([]float64, 4)
	buf[0] = 99 // stale content must be overwritten
	got := tr.WindowInto(buf, 3, 2)
	if &got[0] != &buf[0] {
		t.Fatal("WindowInto did not reuse dst")
	}
	want := tr.Window(3, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WindowInto = %v, Window = %v", got, want)
		}
	}
	for name, fn := range map[string]func(){
		"bad t":    func() { tr.WindowInto(buf, 1, 2) },
		"bad size": func() { tr.WindowInto(make([]float64, 3), 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPeakMatrix(t *testing.T) {
	tr := NewTrace(2)
	tr.Append([]float64{1, 9})
	tr.Append([]float64{5, 2})
	tr.Append([]float64{3, 3})
	p := tr.PeakMatrix(3, 2) // over snapshots 1,2
	if p[0] != 5 || p[1] != 3 {
		t.Errorf("peak = %v, want [5 3]", p)
	}
	p = tr.PeakMatrix(1, 5) // clamps to start
	if p[0] != 1 || p[1] != 9 {
		t.Errorf("peak = %v, want [1 9]", p)
	}
}

func TestVariancesExact(t *testing.T) {
	tr := NewTrace(2)
	tr.Append([]float64{1, 5})
	tr.Append([]float64{3, 5})
	v := tr.Variances()
	if math.Abs(v[0]-1) > 1e-12 { // mean 2, deviations ±1
		t.Errorf("var[0] = %v, want 1", v[0])
	}
	if v[1] != 0 {
		t.Errorf("var[1] = %v, want 0", v[1])
	}
	nv := tr.NormalizedVariances()
	if nv[0] != 1 || nv[1] != 0 {
		t.Errorf("normalized = %v", nv)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Errorf("identical = %v", c)
	}
	if c := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Errorf("orthogonal = %v", c)
	}
	if c := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Errorf("zero vector = %v", c)
	}
	if c := CosineSimilarity([]float64{2, 2}, []float64{5, 5}); math.Abs(c-1) > 1e-12 {
		t.Errorf("parallel = %v", c)
	}
}

func TestWindowSimilaritiesStableVsBursty(t *testing.T) {
	stable, err := Gravity(6, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := DC(ToRWEB, 6, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss := Summarize(stable.WindowSimilarities(12))
	bs := Summarize(bursty.WindowSimilarities(12))
	if ss.Median <= bs.Median {
		t.Errorf("stable median %v should exceed bursty %v", ss.Median, bs.Median)
	}
	if ss.Median < 0.99 {
		t.Errorf("gravity traffic should be near-identical over time, median %v", ss.Median)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %v", q)
	}
	// Input not mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input")
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if r := SpearmanRank(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone increasing = %v", r)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if r := SpearmanRank(a, rev); math.Abs(r+1) > 1e-12 {
		t.Errorf("monotone decreasing = %v", r)
	}
	if r := SpearmanRank(a, []float64{1}); r != 0 {
		t.Errorf("length mismatch = %v", r)
	}
	tied := []float64{1, 1, 1, 1, 1}
	if r := SpearmanRank(a, tied); r != 0 {
		t.Errorf("constant sample = %v", r)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := DC(ToRDB, 5, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DC(ToRDB, 5, 50, 42)
	for i := range a.Snapshots {
		for j := range a.Snapshots[i] {
			if a.Snapshots[i][j] != b.Snapshots[i][j] {
				t.Fatalf("nondeterministic at (%d,%d)", i, j)
			}
		}
	}
	c, _ := DC(ToRDB, 5, 50, 43)
	same := true
	for i := range a.Snapshots {
		for j := range a.Snapshots[i] {
			if a.Snapshots[i][j] != c.Snapshots[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{N: 1, T: 10}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Generate(GenConfig{N: 3, T: 0}); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := Generate(GenConfig{N: 3, T: 1, BurstyFraction: 2}); err == nil {
		t.Error("BurstyFraction=2 accepted")
	}
	if _, err := DC(DCProfile(99), 3, 1, 0); err == nil {
		t.Error("bad profile accepted")
	}
	if _, err := PFabric(PFabricConfig{N: 1, T: 5}); err == nil {
		t.Error("pfabric N=1 accepted")
	}
	if _, err := ForTopology("nope", 3, 1, 0); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestGeneratePositivity(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := DC(PoDWEB, 4, 30, seed)
		if err != nil {
			return false
		}
		for _, s := range tr.Snapshots {
			for _, v := range s {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBurstinessOrdering(t *testing.T) {
	// The Figure 4 property: WAN more stable than PoD, PoD more stable
	// than ToR, measured by the 25th percentile of window similarity.
	n, T, H := 8, 200, 12
	wan, err := WAN(n, T, 3)
	if err != nil {
		t.Fatal(err)
	}
	pod, err := DC(PoDDB, n, T, 3)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := DC(ToRDB, n, T, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := Quantile(wan.WindowSimilarities(H), 0.25)
	p := Quantile(pod.WindowSimilarities(H), 0.25)
	r := Quantile(tor.WindowSimilarities(H), 0.25)
	if !(w > p && p > r) {
		t.Errorf("burstiness ordering broken: wan %v, pod %v, tor %v", w, p, r)
	}
}

func TestPFabricTrace(t *testing.T) {
	tr, err := PFabric(PFabricConfig{N: 9, T: 50, Seed: 1, ArrivalRate: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("len = %d", tr.Len())
	}
	total := 0.0
	for _, s := range tr.Snapshots {
		for _, v := range s {
			if v < 0 {
				t.Fatal("negative demand")
			}
			total += v
		}
	}
	if total == 0 {
		t.Error("pfabric trace empty")
	}
}

func TestPerturbZeroAlphaIsIdentity(t *testing.T) {
	tr, _ := DC(PoDDB, 4, 30, 9)
	out := Perturb(tr, tr, 0, 1)
	for i := range tr.Snapshots {
		for j := range tr.Snapshots[i] {
			if out.Snapshots[i][j] != tr.Snapshots[i][j] {
				t.Fatal("alpha=0 changed the trace")
			}
		}
	}
}

func TestPerturbGrowsWithAlpha(t *testing.T) {
	tr, _ := DC(PoDDB, 4, 100, 9)
	small := Perturb(tr, tr, 0.2, 7)
	big := Perturb(tr, tr, 2.0, 7)
	dev := func(a, b *Trace) float64 {
		s := 0.0
		for i := range a.Snapshots {
			for j := range a.Snapshots[i] {
				s += math.Abs(a.Snapshots[i][j] - b.Snapshots[i][j])
			}
		}
		return s
	}
	if dev(big, tr) <= dev(small, tr) {
		t.Error("larger alpha should deviate more")
	}
	// Original untouched, outputs non-negative.
	for i := range big.Snapshots {
		for j := range big.Snapshots[i] {
			if big.Snapshots[i][j] < 0 {
				t.Fatal("negative demand after perturbation")
			}
		}
	}
}

func TestWorstCaseReversesRanking(t *testing.T) {
	// Build a trace where pair 0 is volatile and pair 1 constant; worst-case
	// perturbation must hit pair 1 harder than Perturb does.
	tr := NewTrace(2)
	for i := 0; i < 200; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 9
		}
		tr.Append([]float64{v, 5})
	}
	sig := tr.Stddevs()
	if !(sig[0] > sig[1]) {
		t.Fatal("setup broken")
	}
	rev := reverseRankMap(sig)
	if !(rev[1] > rev[0]) {
		t.Errorf("reverse map = %v, expected pair 1 to get the larger sigma", rev)
	}
	if rev[1] != sig[0] || rev[0] != sig[1] {
		t.Errorf("reverse map should swap values: %v vs %v", rev, sig)
	}
}

func TestReverseRankMapPermutation(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 13)
		s := seed
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = float64(uint64(s)%1000) / 7
		}
		rev := reverseRankMap(xs)
		// Must be a permutation of xs: same multiset.
		a := append([]float64(nil), xs...)
		b := append([]float64(nil), rev...)
		sortFloats(a)
		sortFloats(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestForTopologyAll(t *testing.T) {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"geant", 23}, {"uscarrier", 10}, {"cogentco", 10}, {"pfabric", 9},
		{"pod-db", 4}, {"pod-web", 8}, {"tor-db", 12}, {"tor-web", 12},
	} {
		tr, err := ForTopology(c.name, c.n, 20, 1)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if tr.Len() != 20 {
			t.Errorf("%s: len %d", c.name, tr.Len())
		}
	}
}

func TestScaleAndMaxDemand(t *testing.T) {
	tr := NewTrace(2)
	tr.Append([]float64{1, 2})
	tr.Scale(3)
	if tr.Snapshots[0][1] != 6 {
		t.Errorf("scale failed: %v", tr.Snapshots[0])
	}
	if tr.MaxDemand() != 6 {
		t.Errorf("MaxDemand = %v", tr.MaxDemand())
	}
}

// TestReverseRankMapTies pins tie handling: equal values rank by ascending
// pair index, so the reversed assignment is a pure function of the input.
func TestReverseRankMapTies(t *testing.T) {
	xs := []float64{2, 1, 1, 3}
	// Ascending ranks with index tie-break: 1(idx1), 1(idx2), 2(idx0),
	// 3(idx3); reversing hands idx1 the value at rank 3, idx2 rank 2, etc.
	want := []float64{1, 3, 2, 1}
	for trial := 0; trial < 10; trial++ {
		got := reverseRankMap(xs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: reverseRankMap(%v) = %v, want %v", trial, xs, got, want)
			}
		}
	}
}

// TestWorstCasePerturbDeterministicWithTies is the regression test for the
// duplicated-stddev case: two pairs with identical histories (equal sigma)
// must not make WorstCasePerturb's output depend on sort internals.
func TestWorstCasePerturbDeterministicWithTies(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 120; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 7
		}
		// Pairs 0 and 1 are bitwise identical histories (tied sigma);
		// pair 2 is constant.
		tr.Append([]float64{v, v, 3})
	}
	sig := tr.Stddevs()
	if sig[0] != sig[1] {
		t.Fatalf("setup: sigmas %v should tie", sig)
	}
	want := WorstCasePerturb(tr, tr, 0.5, 11)
	for trial := 0; trial < 5; trial++ {
		got := WorstCasePerturb(tr, tr, 0.5, 11)
		for s := range want.Snapshots {
			for i := range want.Snapshots[s] {
				if got.Snapshots[s][i] != want.Snapshots[s][i] {
					t.Fatalf("trial %d: snapshot %d pair %d differs: %v vs %v",
						trial, s, i, got.Snapshots[s][i], want.Snapshots[s][i])
				}
			}
		}
	}
	// The constant pair receives the tied maximum; the tied pairs split
	// the remaining {sigma, 0} deterministically by index.
	rev := reverseRankMap(sig)
	if rev[2] != sig[0] {
		t.Errorf("stable pair should receive the tied maximum: rev=%v sig=%v", rev, sig)
	}
	if rev[0] != sig[0] || rev[1] != 0 {
		t.Errorf("tied pairs should split {sigma, 0} by index: rev=%v sig=%v", rev, sig)
	}
}
