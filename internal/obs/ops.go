package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Ops is the operational HTTP surface of a daemon, served on its own
// listener so scrapes and probes never contend with the data plane:
//
//	GET /metrics      Prometheus text exposition of Metrics
//	GET /healthz      liveness: 200 once the process serves, 503 after
//	                  shutdown begins (Healthz hook)
//	GET /readyz       readiness: 200 when Readyz returns nil, 503 with
//	                  the error text otherwise
//	GET /debug/pprof  the standard Go profiling endpoints
//
// Probe handlers answer from in-process state only — a probe can never
// be slowed by a busy data plane or a slow disk.
type Ops struct {
	// Metrics is the registry /metrics exports. Nil serves an empty page.
	Metrics *Registry
	// Healthz, when non-nil, gates liveness; return an error to fail the
	// probe (e.g. once draining has begun). Nil is always live.
	Healthz func() error
	// Readyz, when non-nil, gates readiness; the error text is the probe
	// body, so `kubectl describe`-style tooling shows why. Nil is always
	// ready.
	Readyz func() error
	// Logger, when non-nil, logs each probe state transition.
	Logger *slog.Logger
}

// Handler returns the ops mux.
func (o *Ops) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", o.handleMetrics)
	mux.HandleFunc("GET /healthz", probe("healthz", o.Healthz))
	mux.HandleFunc("GET /readyz", probe("readyz", o.Readyz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Ops) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if o.Metrics != nil {
		if err := o.Metrics.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", TextContentType)
	w.Write(buf.Bytes())
}

func probe(name string, check func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, name+": "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	}
}

// RegisterRuntimeMetrics adds process-level gauges (goroutines, heap,
// GC, uptime) to r. Values are read at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("figret_process_uptime_seconds",
		"Seconds since the process registered its runtime metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("go_memstats_gc_cycles",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
