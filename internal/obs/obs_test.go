package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("y", "help", L("topology", "geant"))
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Same name, different labels: distinct series, same family.
	g2 := r.Gauge("y", "help", L("topology", "pod"))
	if g2 == g {
		t.Fatal("distinct label sets shared a series")
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s := tr.Start()
	s.Mark(0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || s.ID() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two types must panic")
		}
	}()
	r.Gauge("z_total", "help")
}

// TestHistogramBucketBoundaries pins the bucket-assignment contract: an
// observation equal to a bound lands in that bound's bucket (le is an
// inclusive upper bound), one just above lands in the next, and
// overflow lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", []float64{0.001, 0.01, 0.1})

	h.Observe(0.001)                    // == bound 0 → bucket 0
	h.Observe(math.Nextafter(0.001, 1)) // just above → bucket 1
	h.Observe(0.0005)                   // below first bound → bucket 0
	h.Observe(0.1)                      // == last bound → bucket 2
	h.Observe(5)                        // above all bounds → +Inf

	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	wantSum := 0.001 + math.Nextafter(0.001, 1) + 0.0005 + 0.1 + 5
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(10e-6, 2, 4)
	want := []float64{10e-6, 20e-6, 40e-6, 80e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor <= 1 must panic")
		}
	}()
	ExpBuckets(1, 1, 3)
}

// TestConcurrentObservations hammers one histogram and one counter from
// many goroutines while scraping concurrently; totals must be exact and
// the race detector must stay quiet.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "help", ExpBuckets(1e-6, 4, 8))
	c := r.Counter("n_total", "help")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 1e-5)
				c.Inc()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "stage_seconds", "help", []string{"a", "b"}, ExpBuckets(1e-9, 10, 12),
		L("topology", "geant"))
	s1 := tr.Start()
	s1.Mark(0)
	s1.Mark(1)
	s2 := tr.Start()
	s2.Mark(1)
	if s1.ID() == 0 || s2.ID() <= s1.ID() {
		t.Fatalf("span IDs not monotonic: %d then %d", s1.ID(), s2.ID())
	}
	if got := tr.stages[0].Count(); got != 1 {
		t.Fatalf("stage a observations = %d, want 1", got)
	}
	if got := tr.stages[1].Count(); got != 2 {
		t.Fatalf("stage b observations = %d, want 2", got)
	}
}
