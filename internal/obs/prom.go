package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format served by WritePrometheus.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format. Output is deterministic: families sort by name,
// series by their canonical label rendering — two scrapes of the same
// state are byte-identical, which is what the golden-file test pins.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(bw *bufio.Writer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ss := make([]*series, 0, len(keys))
	for _, k := range keys {
		ss = append(ss, f.series[k])
	}
	f.mu.Unlock()

	bw.WriteString("# HELP ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(f.help)
	bw.WriteString("\n# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(string(f.kind))
	bw.WriteByte('\n')
	for _, s := range ss {
		s.write(bw, f)
	}
}

func (s *series) write(bw *bufio.Writer, f *family) {
	switch {
	case s.fn != nil:
		writeSample(bw, f.name, s.labels, "", formatFloat(s.fn()))
	case s.c != nil:
		writeSample(bw, f.name, s.labels, "", strconv.FormatUint(s.c.Value(), 10))
	case s.g != nil:
		writeSample(bw, f.name, s.labels, "", formatFloat(s.g.Value()))
	case s.h != nil:
		s.writeHistogram(bw, f)
	}
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count. Bucket counts are loaded once each; the totals are whatever
// was current at each load — the standard Prometheus relaxed-atomicity
// contract for concurrent observation.
func (s *series) writeHistogram(bw *bufio.Writer, f *family) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(bw, f.name+"_bucket", s.labels, `le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(bw, f.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSample(bw, f.name+"_sum", s.labels, "", formatFloat(h.Sum()))
	writeSample(bw, f.name+"_count", s.labels, "", strconv.FormatUint(h.Count(), 10))
}

func writeSample(bw *bufio.Writer, name, labels, extraLabel, value string) {
	bw.WriteString(name)
	if labels != "" || extraLabel != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extraLabel != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extraLabel)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
