package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Tracer assigns monotonic span IDs and records per-stage latencies into
// one histogram per stage (same metric name, a "stage" label per stage).
// A span is threaded through a pipeline by value — ingest → window
// assembly → predict → reroute → publish in the serving daemon — and
// each Mark records the time since the previous mark into that stage's
// histogram. With a logger attached, every mark additionally emits a
// structured trace line (span id, stage, duration), turning the
// histograms' aggregate view into a per-decision log when needed.
//
// A nil *Tracer is fully inert: Start returns the zero Span, whose Mark
// is a single branch — tracing that is compiled in but switched off
// costs nothing measurable on the decision path.
type Tracer struct {
	ids    atomic.Uint64
	stages []*Histogram
	names  []string
	logger *slog.Logger
	attrs  []slog.Attr
}

// NewTracer builds a tracer whose stage latencies land in the histogram
// family `metric` with a "stage" label per stage name, plus any extra
// labels (e.g. the topology).
func NewTracer(r *Registry, metric, help string, stages []string, bounds []float64, labels ...Label) *Tracer {
	t := &Tracer{
		stages: make([]*Histogram, len(stages)),
		names:  append([]string(nil), stages...),
	}
	for i, st := range stages {
		ls := append(append([]Label(nil), labels...), L("stage", st))
		t.stages[i] = r.Histogram(metric, help, bounds, ls...)
	}
	for _, l := range labels {
		t.attrs = append(t.attrs, slog.String(l.Name, l.Value))
	}
	return t
}

// LogSpans attaches a structured trace log: every Mark emits one
// Debug-level record. Pass nil to detach.
func (t *Tracer) LogSpans(l *slog.Logger) {
	if t != nil {
		t.logger = l
	}
}

// Span is one traced unit of work. The zero Span (from a nil tracer) is
// inert.
type Span struct {
	tr   *Tracer
	id   uint64
	last time.Time
}

// Start opens a span with a fresh monotonic ID, clocked from now.
func (t *Tracer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, id: t.ids.Add(1), last: time.Now()}
}

// ID returns the span's monotonic ID (0 for an inert span).
func (s *Span) ID() uint64 { return s.id }

// Mark closes one stage: the time since the span's previous mark (or
// Start) is recorded into the stage's histogram, and the clock advances.
// Stages may be skipped or repeated; each Mark stands alone.
func (s *Span) Mark(stage int) {
	t := s.tr
	if t == nil {
		return
	}
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	t.stages[stage].Observe(d.Seconds())
	if l := t.logger; l != nil {
		attrs := make([]slog.Attr, 0, len(t.attrs)+3)
		attrs = append(attrs, slog.Uint64("span", s.id), slog.String("stage", t.names[stage]),
			slog.Duration("took", d))
		attrs = append(attrs, t.attrs...)
		l.LogAttrs(context.Background(), slog.LevelDebug, "span", attrs...)
	}
}
