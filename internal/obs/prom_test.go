package obs

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exposition golden file")

// goldenRegistry builds a deterministic registry shaped like the served
// daemon's: counters, gauges, scrape-time functions, a histogram and a
// stage tracer, with fixed values so the exposition page is stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	for topo, n := range map[string]uint64{"geant": 42, "pod-db": 7} {
		r.Counter("figret_serve_decisions_total",
			"Routing decisions published.", L("topology", topo)).Add(n)
		r.Counter("figret_serve_snapshots_total",
			"Demand snapshots ingested.", L("topology", topo)).Add(n + 3)
	}
	r.Counter("figret_wire_resyncs_total", "Full-decision resyncs served.").Add(2)
	r.Gauge("figret_wire_connections_active", "Upgraded wire streams currently open.").Set(3)
	r.GaugeFunc("figret_oracle_cache_hit_ratio",
		"Oracle solve cache hit ratio.", func() float64 { return 0.9375 })
	r.CounterFunc("figret_paths_cache_hits_total",
		"PathStore cache hits.", func() float64 { return 12 })

	h := r.Histogram("figret_serve_decision_duration_seconds",
		"Decision latency.", []float64{0.0001, 0.001, 0.01}, L("topology", "geant"))
	h.Observe(0.00005)
	h.Observe(0.0001)
	h.Observe(0.002)
	h.Observe(3)

	// An instrumented-but-idle histogram must still export its zeroed
	// bucket scaffold (so dashboards exist before traffic does).
	r.Histogram("figret_serve_transport_duration_seconds",
		"Ingest-to-response latency per transport.", []float64{0.001, 0.01}, L("transport", "wire"))
	return r
}

// TestPrometheusExpositionGolden pins the full /metrics page byte for
// byte: family ordering, HELP/TYPE lines, label rendering, cumulative
// histogram buckets, _sum/_count. Run with -update to rebless.
func TestPrometheusExpositionGolden(t *testing.T) {
	ops := &Ops{Metrics: goldenRegistry()}
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, TextContentType)
	}
	got := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, err := res.Body.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}

	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs -run Golden -update` to bless): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition page diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// A second scrape of unchanged state must be byte-identical — stable
	// ordering is load-bearing for the golden contract.
	res2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	got2 := make([]byte, 0, len(got))
	for {
		n, err := res2.Body.Read(buf)
		got2 = append(got2, buf[:n]...)
		if err != nil {
			break
		}
	}
	if string(got2) != string(got) {
		t.Fatal("two scrapes of unchanged state differ")
	}
}

func TestOpsProbes(t *testing.T) {
	ready := false
	ops := &Ops{
		Readyz: func() error {
			if !ready {
				return errTest("warming")
			}
			return nil
		},
	}
	srv := httptest.NewServer(ops.Handler())
	defer srv.Close()

	if code := probeCode(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code := probeCode(t, srv.URL+"/readyz"); code != 503 {
		t.Fatalf("readyz before ready = %d, want 503", code)
	}
	ready = true
	if code := probeCode(t, srv.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz after ready = %d, want 200", code)
	}
	if code := probeCode(t, srv.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d, want 200", code)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func probeCode(t *testing.T, url string) int {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	return res.StatusCode
}
