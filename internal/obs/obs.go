// Package obs is the production observability layer: a dependency-free
// typed metric registry (counters, gauges, histograms with fixed
// exponential buckets) exported in Prometheus text exposition format,
// lightweight span tracing with monotonic span IDs recorded as
// per-stage latency histograms, and an ops HTTP handler serving
// /metrics, /healthz, /readyz and /debug/pprof.
//
// The design goal is provably-zero impact on the paths it observes:
// every instrument method is safe on a nil receiver (a disabled
// instrument costs one branch), the hot-path operations are single
// atomic updates (no locks, no allocations), and nothing in this
// package ever touches decision state — it only counts and times.
//
// Metric naming follows the Prometheus conventions: a `figret_` prefix,
// `_total` suffix on counters, base units in names
// (`..._duration_seconds`, `..._bytes`), and label dimensions for
// topology, stage, transport and outcome rather than name explosions.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind is the exported TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and hands out instruments. Instrument
// registration is idempotent: asking twice for the same (name, labels)
// returns the same instrument, so call sites never need to coordinate.
// Registering one name under two different types is a programming error
// and panics.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is all series sharing one metric name (one HELP/TYPE pair).
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series map[string]*series // keyed by canonical label rendering
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // canonical rendering, e.g. `topology="geant"`
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // counterFunc / gaugeFunc read at scrape
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// renderLabels canonicalizes a label set: sorted by name, values escaped
// per the exposition format (backslash, double-quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// --- counter ------------------------------------------------------------

// Counter is a monotonically increasing count. All methods are safe on a
// nil receiver (no-ops), so disabled telemetry costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.family(name, help, kindCounter).get(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from f at scrape
// time (for sources that already keep their own monotonic counts, like
// cache hit counters). Re-registering the same (name, labels) replaces
// the function.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	s := r.family(name, help, kindCounter).get(labels)
	s.fn = f
}

// --- gauge --------------------------------------------------------------

// Gauge is a value that can go up and down. Safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (atomically, CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.family(name, help, kindGauge).get(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge read from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	s := r.family(name, help, kindGauge).get(labels)
	s.fn = f
}

// --- histogram ----------------------------------------------------------

// Histogram counts observations into fixed buckets (cumulative at
// export, per the Prometheus histogram contract). Observe is a binary
// search plus two atomic updates — no locks, no allocations. Safe on a
// nil receiver.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, in
	// increasing order; an implicit +Inf bucket follows.
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// ExpBuckets returns n exponential bucket upper bounds: start,
// start*factor, ..., start*factor^(n-1). It panics on a non-positive
// start, a factor ≤ 1 or n < 1 (programming errors).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets spans 10µs to ~84s in ×2 steps — wide enough
// for both in-process decision stages (tens of µs) and full transport
// round trips.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(10e-6, 2, 23) }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Histogram returns the histogram for (name, labels) with the given
// finite bucket bounds (strictly increasing; a +Inf bucket is implicit),
// creating it on first use. The bounds of an existing histogram are kept
// (first registration wins).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not increasing at %d", name, i))
		}
	}
	s := r.family(name, help, kindHistogram).get(labels)
	if s.h == nil {
		s.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.h
}
