package experiments

import (
	"fmt"
	"math"
	"strings"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/traffic"
)

// SchemeStats summarizes one scheme's normalized-MLU distribution over the
// test window, plus the severe-congestion rate (fraction of snapshots whose
// normalized MLU exceeds 2 — the paper's congestion-incident criterion).
type SchemeStats struct {
	Name             string
	Stats            traffic.Candlestick
	SevereCongestion float64
	AvgMLU           float64 // mean normalized MLU
}

// QualityResult is a Figure 5/6-style comparison on one topology.
type QualityResult struct {
	Topo    string
	Schemes []SchemeStats
	N       int // snapshots evaluated
}

// QualityOptions configures TEQuality.
type QualityOptions struct {
	H              int     // history window (default 12)
	Gamma          float64 // FIGRET robustness weight (default 1)
	Epochs         int     // training epochs (default per scale)
	WithOblivious  bool    // include Oblivious & COPE (small topologies only)
	MaxEval        int     // cap on evaluated snapshots (default 60)
	ObliviousIters int     // cutting-plane iterations (default 5)
	CopeSet        int     // COPE predicted-set size (default 4)
}

// TEQuality reproduces Figure 5 (and, with a Räcke-selector environment,
// Figure 6): normalized MLU distributions of FIGRET against the baselines.
func TEQuality(env *Env, opt QualityOptions) (*QualityResult, error) {
	if opt.H == 0 {
		opt.H = 12
	}
	if opt.MaxEval == 0 {
		opt.MaxEval = 60
	}
	if opt.ObliviousIters == 0 {
		opt.ObliviousIters = 5
	}
	if opt.CopeSet == 0 {
		opt.CopeSet = 4
	}
	fig, dote, err := env.TrainModels(opt.H, opt.Gamma, opt.Epochs)
	if err != nil {
		return nil, err
	}
	teal := baselines.NewTEAL(env.PS, maxInt(4, opt.Epochs/2), env.Seed)
	if _, err := teal.Train(env.Train); err != nil {
		return nil, err
	}

	// Solver-backed schemes route through the oracle cache: PredTE's
	// advice for snapshot t is the omniscient solve of snapshot t-1 — free
	// once the engine has computed the normalization base — and Des TE's
	// capped peak-matrix solves are shared across repeated runs.
	schemes := []baselines.Scheme{
		&baselines.NNScheme{Label: "FIGRET", Model: fig},
		&baselines.NNScheme{Label: "DOTE", Model: dote},
		&baselines.DesTE{PS: env.PS, Solve: env.Oracle().CachedSolve, H: opt.H},
		&baselines.PredTE{PS: env.PS, Solve: env.Oracle().CachedSolve},
		&baselines.NNScheme{Label: "TEAL", Model: teal},
	}
	if opt.WithOblivious {
		dmax := baselines.PeakDemand(env.Train)
		obl, _, err := baselines.ObliviousConfig(env.PS, dmax, opt.ObliviousIters)
		if err != nil {
			return nil, fmt.Errorf("oblivious: %w", err)
		}
		cope, _, err := baselines.COPEConfig(env.PS, baselines.RecentDemands(env.Train, opt.CopeSet), dmax, 2.0, opt.ObliviousIters)
		if err != nil {
			return nil, fmt.Errorf("cope: %w", err)
		}
		schemes = append(schemes,
			&baselines.FixedScheme{Label: "Oblivious", Cfg: obl},
			&baselines.FixedScheme{Label: "COPE", Cfg: cope},
		)
	}

	from := opt.H // warmup within the test split
	to := env.Test.Len()
	if to-from > opt.MaxEval {
		to = from + opt.MaxEval
	}
	run, err := eval.Run(schemes, env.Test, eval.Window{From: from, To: to}, env.EvalOptions())
	if err != nil {
		return nil, err
	}

	res := &QualityResult{Topo: env.Topo, N: len(run.Base)}
	for _, ss := range run.Schemes {
		res.Schemes = append(res.Schemes, SchemeStats{
			Name:             ss.Name,
			Stats:            ss.Stats,
			SevereCongestion: ss.SevereCongestion,
			AvgMLU:           ss.AvgNorm,
		})
	}
	return res, nil
}

// String renders the result as a paper-shaped table.
func (r *QualityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TE quality on %s (normalized MLU over %d test snapshots; 1.0 = omniscient)\n", r.Topo, r.N)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s %9s\n",
		"scheme", "avg", "min", "p25", "median", "p75", "max", ">2 (sev)")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.1f%%\n",
			s.Name, s.AvgMLU, s.Stats.Min, s.Stats.P25, s.Stats.Median, s.Stats.P75, s.Stats.Max,
			100*s.SevereCongestion)
	}
	return b.String()
}

// Scheme returns the named scheme's stats, or nil.
func (r *QualityResult) Scheme(name string) *SchemeStats {
	for i := range r.Schemes {
		if r.Schemes[i].Name == name {
			return &r.Schemes[i]
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HedgingResult is the Figure 1 study: per-snapshot MLU of the no-hedging
// strategy (optimize for the previous demand, no burst protection) versus
// the hedging strategy (Jupiter-style sensitivity caps), both normalized by
// the series maximum as in the paper's plots.
type HedgingResult struct {
	Topo           string
	NoHedge, Hedge []float64 // normalized MLU time series
	NoHedgeSt      traffic.Candlestick
	HedgeSt        traffic.Candlestick
	PeakNoHedge    float64 // pre-normalization peaks
	PeakHedge      float64
	TroughNoHedge  float64
	TroughHedge    float64
}

// Hedging reproduces Figure 1 on one environment.
func Hedging(env *Env, maxEval int) (*HedgingResult, error) {
	if maxEval == 0 {
		maxEval = 60
	}
	from, to := 1, env.Test.Len()
	if to-from > maxEval {
		to = from + maxEval
	}
	noHedge := &baselines.PredTE{PS: env.PS, Solve: env.Oracle().CachedSolve}
	hedge := &baselines.DesTE{PS: env.PS, Solve: env.Oracle().CachedSolve, H: 12}
	// Raw MLUs only (the figure normalizes by the series max itself), so
	// the engine runs without an oracle base.
	run, err := eval.Run([]baselines.Scheme{noHedge, hedge}, env.Test,
		eval.Window{From: from, To: to}, eval.Options{Workers: env.Workers})
	if err != nil {
		return nil, err
	}
	a, h := run.Schemes[0].Raw, run.Schemes[1].Raw
	mx := 0.0
	for i := range a {
		mx = math.Max(mx, math.Max(a[i], h[i]))
	}
	res := &HedgingResult{Topo: env.Topo,
		PeakNoHedge: traffic.Quantile(a, 1), PeakHedge: traffic.Quantile(h, 1),
		TroughNoHedge: traffic.Quantile(a, 0), TroughHedge: traffic.Quantile(h, 0)}
	for i := range a {
		res.NoHedge = append(res.NoHedge, a[i]/mx)
		res.Hedge = append(res.Hedge, h[i]/mx)
	}
	res.NoHedgeSt = traffic.Summarize(res.NoHedge)
	res.HedgeSt = traffic.Summarize(res.Hedge)
	return res, nil
}

// String renders the Figure 1 findings.
func (r *HedgingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hedging trade-off on %s (MLU normalized to series max, %d snapshots)\n", r.Topo, len(r.NoHedge))
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", "strategy", "trough", "median", "peak")
	fmt.Fprintf(&b, "%-10s %8.3f %8.3f %8.3f\n", "no-hedge", r.NoHedgeSt.Min, r.NoHedgeSt.Median, r.NoHedgeSt.Max)
	fmt.Fprintf(&b, "%-10s %8.3f %8.3f %8.3f\n", "hedging", r.HedgeSt.Min, r.HedgeSt.Median, r.HedgeSt.Max)
	fmt.Fprintf(&b, "expected shape: no-hedge has higher peaks AND lower troughs than hedging\n")
	return b.String()
}
