package experiments

import (
	"math"
	"strings"
	"testing"

	"figret/internal/baselines"
	"figret/internal/graph"
)

// Small shared environments for the integration tests. Sizes are trimmed so
// the whole package tests in well under a minute.

func podEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(graph.TopoPoDDB, ScaleFast, EnvOptions{T: 140, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvAllTopologiesFast(t *testing.T) {
	for _, topo := range graph.AllTopologies() {
		env, err := NewEnv(topo, ScaleFast, EnvOptions{T: 30})
		if err != nil {
			t.Errorf("%s: %v", topo, err)
			continue
		}
		if env.Trace.Len() != 30 {
			t.Errorf("%s: trace len %d", topo, env.Trace.Len())
		}
		if env.Train.Len() == 0 || env.Test.Len() == 0 {
			t.Errorf("%s: empty split", topo)
		}
		if !env.G.Connected() {
			t.Errorf("%s: disconnected fast graph", topo)
		}
	}
	if _, err := NewEnv("nope", ScaleFast, EnvOptions{}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestCalibration(t *testing.T) {
	env := podEnv(t)
	// Mean-demand uniform MLU should be ~0.5 after calibration.
	mean := make([]float64, env.PS.Pairs.Count())
	for _, s := range env.Trace.Snapshots {
		for i, v := range s {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(env.Trace.Len())
	}
	u := 0.0
	cfg := env.PS
	uc := teUniform(env)
	u, _ = cfg.MLU(mean, uc)
	if math.Abs(u-0.5) > 1e-6 {
		t.Errorf("calibrated uniform MLU = %v, want 0.5", u)
	}
}

func teUniform(env *Env) []float64 {
	r := make([]float64, env.PS.NumPaths())
	for _, pp := range env.PS.PairPaths {
		w := 1 / float64(len(pp))
		for _, p := range pp {
			r[p] = w
		}
	}
	return r
}

func TestHedgingShape(t *testing.T) {
	env := podEnv(t)
	res, err := Hedging(env, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 1 trade-off: hedging trims the no-hedge peak.
	if res.PeakHedge >= res.PeakNoHedge {
		t.Errorf("hedging peak %v not below no-hedge peak %v", res.PeakHedge, res.PeakNoHedge)
	}
	if !strings.Contains(res.String(), "no-hedge") {
		t.Error("render missing strategies")
	}
}

func TestVarianceHeterogeneity(t *testing.T) {
	env := podEnv(t)
	res := VarianceHeterogeneity(env)
	if res.Heterogeneity <= 1 {
		t.Errorf("heterogeneity %v should exceed 1 on a bursty DC trace", res.Heterogeneity)
	}
	if res.TopShare <= 0.1 {
		t.Errorf("top-10%% share %v too small for heavy-tailed variance", res.TopShare)
	}
	if !strings.Contains(res.String(), "heatmap") {
		t.Error("small topology should render heatmap")
	}
}

func TestCosineSimilarityOrdering(t *testing.T) {
	geant, err := NewEnv(graph.TopoGEANT, ScaleFast, EnvOptions{T: 160})
	if err != nil {
		t.Fatal(err)
	}
	tor, err := NewEnv(graph.TopoToRDB, ScaleFast, EnvOptions{T: 160})
	if err != nil {
		t.Fatal(err)
	}
	res := CosineSimilarity([]*Env{geant, tor}, 12)
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if res.Entries[0].Stats.P25 <= res.Entries[1].Stats.P25 {
		t.Errorf("WAN p25 %v should exceed ToR p25 %v",
			res.Entries[0].Stats.P25, res.Entries[1].Stats.P25)
	}
}

func TestTEQualityShape(t *testing.T) {
	env := podEnv(t)
	res, err := TEQuality(env, QualityOptions{H: 6, Epochs: 6, MaxEval: 20, WithOblivious: true})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"FIGRET", "DOTE", "Des TE", "Pred TE", "TEAL", "Oblivious", "COPE"}
	for _, n := range names {
		if res.Scheme(n) == nil {
			t.Fatalf("scheme %s missing", n)
		}
	}
	// Normalized MLU is >= 1 up to small solver noise.
	for _, s := range res.Schemes {
		if s.Stats.Min < 0.98 {
			t.Errorf("%s: normalized min %v < 1", s.Name, s.Stats.Min)
		}
	}
	// On this near-stable PoD profile FIGRET must beat the constant-cap
	// Des TE on average and stay in DOTE's band (the paper's "performs at
	// least as well as DOTE" holds at full training scale; the toy-scale
	// band is wider).
	figret := res.Scheme("FIGRET").AvgMLU
	if figret > res.Scheme("Des TE").AvgMLU {
		t.Errorf("FIGRET avg %v worse than Des TE %v", figret, res.Scheme("Des TE").AvgMLU)
	}
	if figret > 1.3*res.Scheme("DOTE").AvgMLU {
		t.Errorf("FIGRET avg %v far above DOTE %v", figret, res.Scheme("DOTE").AvgMLU)
	}
	if !strings.Contains(res.String(), "FIGRET") {
		t.Error("render broken")
	}
}

func TestTEQualityBurstyHeadline(t *testing.T) {
	// The paper's headline claim (§5.2): on highly dynamic ToR-level
	// traffic, FIGRET lowers both the average normalized MLU and the
	// severe-congestion rate (normalized MLU > 2) relative to DOTE.
	env, err := NewEnv(graph.TopoToRDB, ScaleFast, EnvOptions{T: 140, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	env.Solve = env.GradSolve(300) // LP would dominate runtime here
	res, err := TEQuality(env, QualityOptions{H: 6, Epochs: 8, Gamma: 2, MaxEval: 15})
	if err != nil {
		t.Fatal(err)
	}
	fig, dote := res.Scheme("FIGRET"), res.Scheme("DOTE")
	if fig.AvgMLU >= dote.AvgMLU {
		t.Errorf("FIGRET avg %v not below DOTE %v on bursty traffic", fig.AvgMLU, dote.AvgMLU)
	}
	if fig.SevereCongestion >= dote.SevereCongestion {
		t.Errorf("FIGRET severe rate %v not below DOTE %v", fig.SevereCongestion, dote.SevereCongestion)
	}
}

func TestTEQualityRaeckePaths(t *testing.T) {
	// Figure 6: the same comparison with Räcke-style path selection.
	env, err := NewEnv(graph.TopoPoDDB, ScaleFast, EnvOptions{
		T: 140, Seed: 2, Selector: baselines.RaeckeSelector(0)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TEQuality(env, QualityOptions{H: 6, Epochs: 5, MaxEval: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme("FIGRET") == nil {
		t.Fatal("missing FIGRET")
	}
}

func TestFailuresShape(t *testing.T) {
	env := podEnv(t)
	res, err := Failures(env, FailureOptions{H: 6, Epochs: 5, MaxFail: 2, Trials: 3, SnapsPer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		fig := row.Scheme("FIGRET")
		if fig == nil {
			t.Fatal("FIGRET row missing")
		}
		if fig.AvgMLU < 1-1e-6 {
			t.Errorf("normalized failure MLU %v < 1", fig.AvgMLU)
		}
	}
	if !strings.Contains(res.String(), "failure") {
		t.Error("render broken")
	}
}

func TestSensitivityAnalysisShape(t *testing.T) {
	env := podEnv(t)
	res, err := SensitivityAnalysis(env, 6, 8, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 8 signatures: (a) under FIGRET, variance and sensitivity
	// are negatively correlated; (b) FIGRET's high-variance pairs sit at
	// lower sensitivity than its low-variance pairs; (c) FIGRET pushes
	// bursty pairs well below the hedge baseline's realized sensitivity.
	if res.FigretCorr >= 0 {
		t.Errorf("FIGRET variance/sensitivity correlation %v not negative", res.FigretCorr)
	}
	if res.FigretBins[2] >= res.FigretBins[0] {
		t.Errorf("FIGRET high-var sensitivity %v not below low-var %v",
			res.FigretBins[2], res.FigretBins[0])
	}
	if res.FigretBins[2] >= res.HedgeBins[2] {
		t.Errorf("FIGRET high-var sensitivity %v not below hedge's %v",
			res.FigretBins[2], res.HedgeBins[2])
	}
}

func TestPerturbationTables(t *testing.T) {
	env := podEnv(t)
	res, err := Perturbation(env, 6, 1, 5, []float64{0.2, 2.0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgDecline) != 2 {
		t.Fatalf("entries = %d", len(res.AvgDecline))
	}
	// Larger alpha must hurt at least as much as smaller (Table 3 trend).
	if res.AvgDecline[1] < res.AvgDecline[0]-2 {
		t.Errorf("alpha=2 decline %v below alpha=0.2 %v", res.AvgDecline[1], res.AvgDecline[0])
	}
	worst, err := Perturbation(env, 6, 1, 5, []float64{2.0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Spearman < 0.5 {
		t.Errorf("train/test variance Spearman %v unexpectedly low", worst.Spearman)
	}
	if !strings.Contains(worst.String(), "worst case") {
		t.Error("render broken")
	}
}

func TestDriftTable(t *testing.T) {
	env := podEnv(t)
	res, err := Drift(env, 6, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 3 {
		t.Fatalf("segments = %d", len(res.Segments))
	}
	// Table 4's point: drift degradation is mild. Allow a loose band.
	for i, v := range res.AvgDecline {
		if v > 50 {
			t.Errorf("segment %s: %v%% degradation too large", res.Segments[i], v)
		}
	}
}

func TestTimingTable(t *testing.T) {
	env := podEnv(t)
	res, err := Timing(env, TimingOptions{H: 6, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LPFeasible {
		t.Fatal("PoD should be LP-feasible")
	}
	if res.FigretCalc <= 0 || res.LPCalc <= 0 || res.DesTECalc <= 0 {
		t.Fatalf("missing timings: %+v", res)
	}
	// At PoD scale the LP is tiny, so we only sanity-check the ratio; the
	// paper's 35x-1800x gap is asserted at GEANT scale below.
	if res.Speedup() <= 0 {
		t.Errorf("speedup %vx not positive", res.Speedup())
	}
	if res.FigretPrecomp <= 0 {
		t.Error("missing precomputation time")
	}
	if !strings.Contains(res.String(), "speedup") {
		t.Error("render broken")
	}
}

func TestTimingSpeedupGrowsWithScale(t *testing.T) {
	if testing.Short() {
		t.Skip("GEANT LP timing is slow")
	}
	env, err := NewEnv(graph.TopoGEANT, ScaleFast, EnvOptions{T: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Timing(env, TimingOptions{H: 6, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LPFeasible {
		t.Fatal("GEANT should be LP-feasible")
	}
	// The Table 2 shape: at WAN scale the DNN inference is already far
	// faster than the sensitivity-capped LP.
	if res.Speedup() < 5 {
		t.Errorf("GEANT speedup %.1fx, want >= 5x", res.Speedup())
	}
}

func TestHeuristicFStudy(t *testing.T) {
	env := podEnv(t)
	res, err := HeuristicF(env, "linear", 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(paramsLinear) {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	pw, err := HeuristicF(env, "piecewise", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw.Entries) != len(paramsPiecewise) {
		t.Fatalf("piecewise entries = %d", len(pw.Entries))
	}
	if _, err := HeuristicF(env, "cubic", 5); err == nil {
		t.Error("unknown kind accepted")
	}
	if !strings.Contains(res.String(), "normal-case") {
		t.Error("render broken")
	}
}

func TestPredictionMismatch(t *testing.T) {
	res, err := PredictionMismatch()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MSEA-res.MSEB) > 1e-9 {
		t.Fatalf("MSEs differ: %v vs %v", res.MSEA, res.MSEB)
	}
	if math.Abs(res.MLUA-res.MLUB) < 1e-6 {
		t.Errorf("MLUs should differ: %v vs %v", res.MLUA, res.MLUB)
	}
	// Figure 19's direction: mispredicting t2 (fat path) is cheaper, so
	// prediction B (accurate on t1) achieves the lower MLU.
	if res.MLUB >= res.MLUA {
		t.Errorf("expected MLU(B) < MLU(A): %v vs %v", res.MLUB, res.MLUA)
	}
	if !strings.Contains(res.String(), "MSE") {
		t.Error("render broken")
	}
}
