package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/lp"
	"figret/internal/te"
	"figret/internal/traffic"
)

// FailureResult is the Figure 7 (and Appendix E Figures 14/15) study:
// normalized MLU under 1..3 random link failures for FIGRET, DOTE, Des TE
// (all rerouting around failures per §4.5) and the fault-aware Des TE
// oracle, normalized by an oracle that knows both demand and failures.
type FailureResult struct {
	Topo string
	// Rows[k] holds stats for k+1 simultaneous failures.
	Rows []FailureRow
}

// FailureRow aggregates one failure count.
type FailureRow struct {
	Failures int
	Schemes  []SchemeStats
}

// FailureOptions configures the study.
type FailureOptions struct {
	H        int // window (default 12)
	Gamma    float64
	Epochs   int
	MaxFail  int // failure counts 1..MaxFail (default 3)
	Trials   int // failure sets sampled per count (default 5)
	SnapsPer int // test snapshots per trial (default 6)
	// Seed, when non-zero, drives failure-set sampling explicitly so a
	// given (Seed, MaxFail, Trials) replays a bit-identical failure
	// sequence regardless of the environment seed; 0 keeps the historical
	// default of env.Seed+77.
	Seed int64
}

// Failures reproduces Figure 7 on the environment.
func Failures(env *Env, opt FailureOptions) (*FailureResult, error) {
	if opt.H == 0 {
		opt.H = 12
	}
	if opt.MaxFail == 0 {
		opt.MaxFail = 3
	}
	if opt.Trials == 0 {
		opt.Trials = 5
	}
	if opt.SnapsPer == 0 {
		opt.SnapsPer = 6
	}
	fig, dote, err := env.TrainModels(opt.H, opt.Gamma, opt.Epochs)
	if err != nil {
		return nil, err
	}
	// Concurrency-safe advisors for the parallel cells below: NNScheme
	// pools goroutine-confined predictors, DesTE computes its caps once.
	// DesTE routes through the oracle cache — its advice depends only on
	// t, and the same t recurs across failure sets and failure counts, so
	// each capped peak-matrix solve is paid once.
	figS := &baselines.NNScheme{Label: "FIGRET", Model: fig}
	doteS := &baselines.NNScheme{Label: "DOTE", Model: dote}
	des := &baselines.DesTE{PS: env.PS, Solve: env.Oracle().CachedSolve, H: opt.H}
	faCaps := lp.SensitivityCaps(env.PS, lp.ConstantF(2.0/3.0))
	seed := opt.Seed
	if seed == 0 {
		seed = env.Seed + 77
	}
	rng := rand.New(rand.NewSource(seed))

	// Failure sets are drawn sequentially up front (the rng is a chain),
	// then every (failure-set × snapshot) cell runs on the engine's worker
	// pool. Cells write only their own slot, so aggregation order — and
	// with it every reported statistic — is worker-count independent.
	schemeNames := []string{"FIGRET", "DOTE", "Des TE", "FA Des TE"}
	type cell struct {
		fs *te.FailureSet
		t  int
	}
	res := &FailureResult{Topo: env.Topo}
	for nf := 1; nf <= opt.MaxFail; nf++ {
		var cells []cell
		for trial := 0; trial < opt.Trials; trial++ {
			fs, ok := SampleFailures(env.PS, rng, nf)
			if !ok {
				continue
			}
			for s := 0; s < opt.SnapsPer; s++ {
				t := opt.H + (trial*opt.SnapsPer+s)%(env.Test.Len()-opt.H)
				cells = append(cells, cell{fs, t})
			}
		}
		type cellResult struct {
			ok   bool // fault-aware oracle solved and positive
			faOK bool
			vals [4]float64 // normalized MLU per schemeNames entry
		}
		results := make([]cellResult, len(cells))
		err := eval.Parallel(len(cells), env.Workers, func(i int) error {
			c := cells[i]
			d := env.Test.At(c.t)
			// Oracle: fault-aware omniscient.
			_, oracle, err := lp.FaultAwareMLUMin(env.PS, d, c.fs, nil)
			if err != nil || oracle <= 0 {
				return nil // infeasible draw: skip the cell
			}
			// FIGRET / DOTE / Des TE: advise then reroute around failures.
			fc, err := figS.Advise(env.Test, c.t)
			if err != nil {
				return err
			}
			dc, err := doteS.Advise(env.Test, c.t)
			if err != nil {
				return err
			}
			sc, err := des.Advise(env.Test, c.t)
			if err != nil {
				return err
			}
			r := cellResult{ok: true}
			r.vals[0] = te.MLUUnderFailure(fc, c.fs, d) / oracle
			r.vals[1] = te.MLUUnderFailure(dc, c.fs, d) / oracle
			r.vals[2] = te.MLUUnderFailure(sc, c.fs, d) / oracle
			// FA Des TE: knows the failures, solves only over alive paths
			// (with hedging caps) for the peak matrix.
			peak := env.Test.PeakMatrix(c.t, opt.H)
			fa, _, err := lp.FaultAwareMLUMin(env.PS, peak, c.fs, faCaps)
			if err != nil {
				// Caps may be infeasible after failures; retry uncapped.
				fa, _, err = lp.FaultAwareMLUMin(env.PS, peak, c.fs, nil)
			}
			if err == nil {
				r.faOK = true
				r.vals[3] = fa.MLU(d) / oracle
			}
			results[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		agg := map[string][]float64{}
		for _, r := range results {
			if !r.ok {
				continue
			}
			for vi, name := range schemeNames {
				if vi == 3 && !r.faOK {
					continue
				}
				agg[name] = append(agg[name], r.vals[vi])
			}
		}
		row := FailureRow{Failures: nf}
		for _, name := range schemeNames {
			xs := agg[name]
			if len(xs) == 0 {
				continue
			}
			st := SchemeStats{Name: name, Stats: traffic.Summarize(xs)}
			sum := 0.0
			severe := 0
			for _, v := range xs {
				sum += v
				if v > 2 {
					severe++
				}
			}
			st.AvgMLU = sum / float64(len(xs))
			st.SevereCongestion = float64(severe) / float64(len(xs))
			row.Schemes = append(row.Schemes, st)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// SampleFailures draws nf distinct link failures that leave every SD pair
// with at least one surviving candidate path, so rerouting and the
// fault-aware LP both remain well-defined. The draw is a pure function of
// (ps, rng state, nf): seeding rng explicitly replays a bit-identical
// failure sequence, which the scenario harness relies on for golden
// metrics. The second return is false when no feasible set was found in
// 200 attempts.
func SampleFailures(ps *te.PathSet, rng *rand.Rand, nf int) (*te.FailureSet, bool) {
	edges := ps.G.Edges()
	for attempt := 0; attempt < 200; attempt++ {
		seen := map[[2]int]bool{}
		var links [][2]int
		for len(links) < nf {
			e := edges[rng.Intn(len(edges))]
			a, b := e.From, e.To
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			links = append(links, [2]int{a, b})
		}
		fs := te.NewFailureSet(ps.G, links)
		ok := true
		for _, pp := range ps.PairPaths {
			alive := false
			for _, p := range pp {
				if !fs.PathDown(ps, p) {
					alive = true
					break
				}
			}
			if !alive {
				ok = false
				break
			}
		}
		if ok {
			return fs, true
		}
	}
	return nil, false
}

// String renders the per-failure-count comparison.
func (r *FailureResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Link failures on %s (MLU normalized by demand+failure-aware oracle)\n", r.Topo)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "-- %d failure(s)\n", row.Failures)
		fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "scheme", "avg", "median", "max")
		for _, s := range row.Schemes {
			fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f\n", s.Name, s.AvgMLU, s.Stats.Median, s.Stats.Max)
		}
	}
	b.WriteString("expected shape: FIGRET ≈ FA Des TE, both better than DOTE and Des TE\n")
	return b.String()
}

// Row returns stats for a given failure count, or nil.
func (r *FailureResult) Row(failures int) *FailureRow {
	for i := range r.Rows {
		if r.Rows[i].Failures == failures {
			return &r.Rows[i]
		}
	}
	return nil
}

// Scheme returns the named scheme's stats within a row, or nil.
func (row *FailureRow) Scheme(name string) *SchemeStats {
	for i := range row.Schemes {
		if row.Schemes[i].Name == name {
			return &row.Schemes[i]
		}
	}
	return nil
}
