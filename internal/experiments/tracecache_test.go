package experiments

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestTraceCacheBitwiseIdentity is the acceptance bar for routing
// environment traces through the memory-mapped store: the trace —
// post-calibration, split into train/test — must be bitwise identical
// whether the cache is off, cold (generate → spool → reload) or warm
// (mmap of the file the cold run wrote).
func TestTraceCacheBitwiseIdentity(t *testing.T) {
	dir := t.TempDir()
	build := func(cache string) *Env {
		env, err := NewEnv("geant", ScaleFast, EnvOptions{T: 24, Seed: 3, TraceCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	plain := build("")
	cold := build(dir)
	warm := build(dir)
	defer cold.Close()
	defer warm.Close()

	for _, c := range []struct {
		name string
		env  *Env
	}{{"cold", cold}, {"warm", warm}} {
		if c.env.Trace.Len() != plain.Trace.Len() || c.env.TestStart != plain.TestStart {
			t.Fatalf("%s: shape mismatch: len %d vs %d, test start %d vs %d",
				c.name, c.env.Trace.Len(), plain.Trace.Len(), c.env.TestStart, plain.TestStart)
		}
		for i := 0; i < plain.Trace.Len(); i++ {
			a, b := plain.Trace.At(i), c.env.Trace.At(i)
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("%s: snapshot %d entry %d: %x vs %x",
						c.name, i, j, math.Float64bits(a[j]), math.Float64bits(b[j]))
				}
			}
		}
	}

	hits, misses := TraceCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache counters did not move: hits %d, misses %d", hits, misses)
	}
}

// TestTraceCacheCorruptEntryRegenerates: a damaged cache file is a miss
// (regenerated and overwritten), never a fatal error — the PathStore
// contract.
func TestTraceCacheCorruptEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	plain, err := NewEnv("geant", ScaleFast, EnvOptions{T: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := NewEnv("geant", ScaleFast, EnvOptions{T: 8, Seed: 5, TraceCache: dir})
	if err != nil {
		t.Fatal(err)
	}
	seeded.Close()
	entries, err := filepath.Glob(filepath.Join(dir, "*.fgt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want one cache entry, got %v (%v)", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[4096+64+3] ^= 0x40 // flip a bit inside the first block's checksummed payload
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	env2, err := NewEnv("geant", ScaleFast, EnvOptions{T: 8, Seed: 5, TraceCache: dir})
	if err != nil {
		t.Fatalf("corrupt cache entry was fatal: %v", err)
	}
	defer env2.Close()
	for i := 0; i < plain.Trace.Len(); i++ {
		a, b := plain.Trace.At(i), env2.Trace.At(i)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("regenerated trace diverged at snapshot %d entry %d", i, j)
			}
		}
	}
}
