package experiments

import (
	"fmt"
	"strings"

	"figret/internal/te"
)

// DOTECaseResult is the Appendix G.2 (Figure 20) failure-case study: DOTE,
// seeing a stable low window for an SD pair, concentrates that pair on a
// high-sensitivity allocation; when the pair bursts in the next snapshot the
// MLU spikes. The study locates the worst DOTE snapshot on a bursty trace
// and inspects the responsible pair.
type DOTECaseResult struct {
	Topo string
	// N is the topology's vertex count (for pair-index rendering).
	N int
	// Snapshot is the test index where DOTE's MLU (normalized by FIGRET's)
	// peaked.
	Snapshot int
	// DOTEMLU and FigretMLU are the raw MLUs at that snapshot.
	DOTEMLU, FigretMLU float64
	// Pair is the SD pair with the largest demand jump at that snapshot.
	Pair int
	// WindowMean is the pair's mean demand over the preceding window, and
	// Upcoming its demand at the snapshot (the "stable then burst" pattern).
	WindowMean, Upcoming float64
	// DOTESens and FigretSens are the pair's max path sensitivities.
	DOTESens, FigretSens float64
}

// DOTEFailureCase reproduces the Figure 20 narrative on the environment.
func DOTEFailureCase(env *Env, h int, gamma float64, epochs int) (*DOTECaseResult, error) {
	if h == 0 {
		h = 6
	}
	if gamma == 0 {
		gamma = 2
	}
	fig, dote, err := env.TrainModels(h, gamma, epochs)
	if err != nil {
		return nil, err
	}
	res := &DOTECaseResult{Topo: env.Topo, N: env.G.NumVertices(), Snapshot: -1}
	worstRatio := 0.0
	for t := h; t < env.Test.Len(); t++ {
		d := env.Test.At(t)
		dc, err := dote.PredictAt(env.Test, t)
		if err != nil {
			return nil, err
		}
		fc, err := fig.PredictAt(env.Test, t)
		if err != nil {
			return nil, err
		}
		dm := dc.MLU(d)
		fm := fc.MLU(d)
		if fm <= 0 {
			continue
		}
		if ratio := dm / fm; ratio > worstRatio {
			worstRatio = ratio
			res.Snapshot = t
			res.DOTEMLU = dm
			res.FigretMLU = fm
		}
	}
	if res.Snapshot < 0 {
		return nil, fmt.Errorf("experiments: no snapshots evaluated")
	}

	// Identify the pair with the largest absolute demand jump vs its window.
	t := res.Snapshot
	d := env.Test.At(t)
	k := env.PS.Pairs.Count()
	bestJump := -1.0
	for pi := 0; pi < k; pi++ {
		var mean float64
		for i := t - h; i < t; i++ {
			mean += env.Test.At(i)[pi]
		}
		mean /= float64(h)
		if jump := d[pi] - mean; jump > bestJump {
			bestJump = jump
			res.Pair = pi
			res.WindowMean = mean
			res.Upcoming = d[pi]
		}
	}
	dc, _ := dote.PredictAt(env.Test, t)
	fc, _ := fig.PredictAt(env.Test, t)
	res.DOTESens = env.PS.MaxPairSensitivities(dc.R, true)[res.Pair]
	res.FigretSens = env.PS.MaxPairSensitivities(fc.R, true)[res.Pair]
	return res, nil
}

// String renders the case study.
func (r *DOTECaseResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DOTE failure case on %s (worst DOTE/FIGRET snapshot %d)\n", r.Topo, r.Snapshot)
	fmt.Fprintf(&b, "MLU: DOTE %.3f vs FIGRET %.3f\n", r.DOTEMLU, r.FigretMLU)
	s, d := te.NewPairs(r.N).SD(r.Pair)
	fmt.Fprintf(&b, "burst pair (%d->%d): window mean %.3f, upcoming %.3f (%.1fx)\n",
		s, d, r.WindowMean, r.Upcoming, safeRatio(r.Upcoming, r.WindowMean))
	fmt.Fprintf(&b, "pair max path sensitivity: DOTE %.3f vs FIGRET %.3f\n", r.DOTESens, r.FigretSens)
	b.WriteString("DOTE, seeing a calm window, left the pair on sensitive paths;\n")
	b.WriteString("FIGRET's variance-weighted loss had pre-hedged it\n")
	return b.String()
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
