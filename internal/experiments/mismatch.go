package experiments

import (
	"fmt"
	"strings"

	"figret/internal/eval"
	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/te"
)

// MismatchResult is the Appendix G.1 (Figure 19) worked example: two traffic
// predictions with identical mean-squared error lead to different MLUs once
// their LP-optimal configurations meet the real demand — the objective
// mismatch that motivates end-to-end TE.
type MismatchResult struct {
	// PredA/PredB are the two predictions (d1, d2); Real is the upcoming
	// demand.
	PredA, PredB, Real [2]float64
	MSEA, MSEB         float64
	MLUA, MLUB         float64
}

// PredictionMismatch builds Figure 19's topology — source s, relay r and
// destinations t1, t2, with the t1-side capacities at 50 and the t2-side at
// 100 — and evaluates the two equal-MSE predictions (50,60) and (60,50)
// against the real demand (60,60).
func PredictionMismatch() (*MismatchResult, error) {
	// Vertices: s=0, r=1, t1=2, t2=3.
	g := graph.New(4)
	g.MustAddEdge(0, 2, 50)  // s -> t1
	g.MustAddEdge(0, 3, 100) // s -> t2
	g.MustAddEdge(0, 1, 50)  // s -> r
	g.MustAddEdge(1, 2, 50)  // r -> t1
	g.MustAddEdge(1, 3, 100) // r -> t2
	// Reverse edges so every pair keeps a candidate path (required by the
	// path-set builder); reverse capacities mirror the forward ones.
	g.MustAddEdge(2, 0, 50)
	g.MustAddEdge(3, 0, 100)
	g.MustAddEdge(1, 0, 50)
	g.MustAddEdge(2, 1, 50)
	g.MustAddEdge(3, 1, 100)

	ps, err := te.NewPathSet(g, 2, nil)
	if err != nil {
		return nil, err
	}
	res := &MismatchResult{
		PredA: [2]float64{50, 60},
		PredB: [2]float64{60, 50},
		Real:  [2]float64{60, 60},
	}
	mse := func(p [2]float64) float64 {
		da := p[0] - res.Real[0]
		db := p[1] - res.Real[1]
		return (da*da + db*db) / 2
	}
	res.MSEA, res.MSEB = mse(res.PredA), mse(res.PredB)

	demand := func(d1, d2 float64) []float64 {
		d := make([]float64, ps.Pairs.Count())
		d[ps.Pairs.Index(0, 2)] = d1
		d[ps.Pairs.Index(0, 3)] = d2
		return d
	}
	real := demand(res.Real[0], res.Real[1])
	// The two predictions' solves are independent cells on the engine's
	// worker-pool primitive: each writes only its own slot, so the worked
	// example is as deterministic as the big studies.
	preds := [][2]float64{res.PredA, res.PredB}
	mlus := make([]float64, len(preds))
	err = eval.Parallel(len(preds), 0, func(i int) error {
		cfg, _, err := lp.MLUMin(ps, demand(preds[i][0], preds[i][1]))
		if err != nil {
			return err
		}
		mlus[i] = cfg.MLU(real)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.MLUA, res.MLUB = mlus[0], mlus[1]
	return res, nil
}

// String renders the example.
func (r *MismatchResult) String() string {
	var b strings.Builder
	b.WriteString("Prediction-accuracy vs MLU mismatch (Figure 19 example)\n")
	fmt.Fprintf(&b, "real demand (d1,d2) = (%.0f,%.0f)\n", r.Real[0], r.Real[1])
	fmt.Fprintf(&b, "prediction A (%.0f,%.0f): MSE %.1f -> real MLU %.4f\n",
		r.PredA[0], r.PredA[1], r.MSEA, r.MLUA)
	fmt.Fprintf(&b, "prediction B (%.0f,%.0f): MSE %.1f -> real MLU %.4f\n",
		r.PredB[0], r.PredB[1], r.MSEB, r.MLUB)
	b.WriteString("equal prediction error, different MLU: mispredicting the fat-path\n")
	b.WriteString("destination (t2, capacity 100) is cheaper than mispredicting t1\n")
	return b.String()
}
