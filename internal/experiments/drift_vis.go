package experiments

import (
	"fmt"
	"strings"

	"figret/internal/tsne"
)

// DriftVisualization is the Appendix F study (Figures 16/17): a t-SNE
// embedding of the demand snapshots, partitioned into the four time
// quarters, summarized by per-quarter spread and inter-quarter centroid
// drift.
type DriftVisualization struct {
	Topo string
	// Spread[q] is the mean pairwise embedding distance within quarter q.
	Spread [4]float64
	// TotalSpread is the spread of the whole embedding (dispersion proxy:
	// higher for ToR than PoD traffic).
	TotalSpread float64
	// Drift[q] is the centroid distance between quarter q and quarter 0,
	// normalized by the total spread.
	Drift [4]float64
	// Quarters holds the embedded points per quarter (for plotting).
	Quarters [4][][]float64
}

// VisualizeDrift embeds up to maxPoints snapshots of the environment's trace
// with t-SNE and quantifies the temporal drift across quarters.
func VisualizeDrift(env *Env, maxPoints int) (*DriftVisualization, error) {
	if maxPoints == 0 {
		maxPoints = 120
	}
	tr := env.Trace
	stride := tr.Len() / maxPoints
	if stride == 0 {
		stride = 1
	}
	var xs [][]float64
	var quarter []int
	for t := 0; t < tr.Len(); t += stride {
		xs = append(xs, tr.At(t))
		q := 4 * t / tr.Len()
		if q > 3 {
			q = 3
		}
		quarter = append(quarter, q)
	}
	ys, err := tsne.Run(xs, tsne.Options{Iters: 300, Seed: env.Seed, Perplexity: 20})
	if err != nil {
		return nil, err
	}
	res := &DriftVisualization{Topo: env.Topo}
	for i, y := range ys {
		q := quarter[i]
		res.Quarters[q] = append(res.Quarters[q], y)
	}
	res.TotalSpread = tsne.PairwiseSpread(ys)
	for q := 0; q < 4; q++ {
		res.Spread[q] = tsne.PairwiseSpread(res.Quarters[q])
		if res.TotalSpread > 0 {
			res.Drift[q] = tsne.CentroidDistance(res.Quarters[0], res.Quarters[q]) / res.TotalSpread
		}
	}
	return res, nil
}

// SingleCluster reports the Appendix F conclusion "traffic patterns do not
// undergo drastic changes over time": every quarter's centroid stays within
// the embedding's own spread.
func (r *DriftVisualization) SingleCluster() bool {
	for _, d := range r.Drift {
		if d > 1 {
			return false
		}
	}
	return true
}

// String renders per-quarter statistics and a coarse scatter.
func (r *DriftVisualization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-SNE drift visualization on %s (embedding spread %.2f)\n", r.Topo, r.TotalSpread)
	fmt.Fprintf(&b, "%-10s %10s %16s\n", "quarter", "spread", "drift vs Q1")
	for q := 0; q < 4; q++ {
		fmt.Fprintf(&b, "%-10s %10.2f %16.2f\n",
			fmt.Sprintf("%d-%d%%", q*25, (q+1)*25), r.Spread[q], r.Drift[q])
	}
	if r.SingleCluster() {
		b.WriteString("single cluster: traffic patterns do not change drastically over time\n")
	} else {
		b.WriteString("WARNING: quarters form separate clusters — strong temporal drift\n")
	}
	b.WriteString(r.scatter())
	return b.String()
}

// scatter renders the embedding as a small ASCII plot with quarter digits.
func (r *DriftVisualization) scatter() string {
	const W, H = 56, 18
	grid := make([][]byte, H)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", W))
	}
	minX, maxX, minY, maxY := 1e300, -1e300, 1e300, -1e300
	for q := 0; q < 4; q++ {
		for _, p := range r.Quarters[q] {
			if p[0] < minX {
				minX = p[0]
			}
			if p[0] > maxX {
				maxX = p[0]
			}
			if p[1] < minY {
				minY = p[1]
			}
			if p[1] > maxY {
				maxY = p[1]
			}
		}
	}
	if maxX <= minX || maxY <= minY {
		return ""
	}
	for q := 0; q < 4; q++ {
		for _, p := range r.Quarters[q] {
			x := int((p[0] - minX) / (maxX - minX) * float64(W-1))
			y := int((p[1] - minY) / (maxY - minY) * float64(H-1))
			grid[y][x] = byte('1' + q)
		}
	}
	var b strings.Builder
	b.WriteString("embedding (digits = time quarter):\n")
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}
