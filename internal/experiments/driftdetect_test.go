package experiments

import (
	"testing"

	"figret/internal/figret"
	"figret/internal/traffic"
)

// TestDriftDetectorEndToEnd exercises the §6 retraining trigger across the
// whole stack: train FIGRET, calibrate the detector on healthy test
// intervals, verify silence under normal operation, then inject adversarial
// drift (variance-rank-reversed perturbation, the Table 5 stressor) and
// verify the trigger fires.
func TestDriftDetectorEndToEnd(t *testing.T) {
	env := podEnv(t)
	const h = 6
	m := figret.New(env.PS, figret.Config{H: h, Gamma: 1, Epochs: 6, Seed: 2})
	if _, err := m.Train(env.Train); err != nil {
		t.Fatal(err)
	}
	det := figret.NewDriftDetector(env.PS)

	achieve := func(tr *traffic.Trace, snap int) float64 {
		cfg, err := m.PredictAt(tr, snap)
		if err != nil {
			t.Fatal(err)
		}
		return cfg.MLU(tr.At(snap))
	}

	// Calibrate on the first healthy stretch of the test split.
	var achieved []float64
	var demands [][]float64
	for snap := h; snap < h+15 && snap < env.Test.Len(); snap++ {
		achieved = append(achieved, achieve(env.Test, snap))
		demands = append(demands, env.Test.At(snap))
	}
	if err := det.Calibrate(achieved, demands); err != nil {
		t.Fatal(err)
	}

	// Healthy operation stays silent.
	for snap := h + 15; snap < env.Test.Len(); snap++ {
		fired, err := det.Observe(achieve(env.Test, snap), env.Test.At(snap))
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatalf("trigger fired on healthy traffic at snapshot %d", snap)
		}
	}

	// Inject heavy adversarial drift; the model's efficiency collapses and
	// the detector must eventually advise retraining.
	drifted := traffic.WorstCasePerturb(env.Test, env.Train, 6.0, 99)
	fired := false
	for snap := h; snap < drifted.Len(); snap++ {
		ok, err := det.Observe(achieve(drifted, snap), drifted.At(snap))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("detector never advised retraining under heavy drift")
	}
}
