package experiments

import (
	"fmt"
	"strings"

	"figret/internal/baselines"
	"figret/internal/traffic"
)

// SensitivityScatter is the Figure 8 interpretability study: for each SD
// pair, its historical demand variance (x-axis) against the average maximum
// path sensitivity its paths receive (y-axis), for hedge-based TE versus
// FIGRET.
type SensitivityScatter struct {
	Topo string
	// Variance is the normalized per-pair variance.
	Variance []float64
	// HedgeS and FigretS are avg max path sensitivities per pair.
	HedgeS, FigretS []float64
	// Correlations: FIGRET should show a strong negative variance-vs-
	// sensitivity rank correlation (bursty pairs pushed to low
	// sensitivity); hedging should show none (uniform cap).
	HedgeCorr, FigretCorr float64
	// Binned averages (low/mid/high variance terciles) for rendering.
	HedgeBins, FigretBins [3]float64
}

// SensitivityAnalysis reproduces Figure 8 on the environment.
func SensitivityAnalysis(env *Env, h int, gamma float64, epochs int, maxEval int) (*SensitivityScatter, error) {
	if h == 0 {
		h = 12
	}
	if maxEval == 0 {
		maxEval = 25
	}
	fig, _, err := env.TrainModels(h, gamma, epochs)
	if err != nil {
		return nil, err
	}
	des := &baselines.DesTE{PS: env.PS, Solve: env.Solve, H: h}
	k := env.PS.Pairs.Count()
	hedgeSum := make([]float64, k)
	figSum := make([]float64, k)
	n := 0
	to := env.Test.Len()
	if to-h > maxEval {
		to = h + maxEval
	}
	for t := h; t < to; t++ {
		fc, err := fig.PredictAt(env.Test, t)
		if err != nil {
			return nil, err
		}
		dc, err := des.Advise(env.Test, t)
		if err != nil {
			return nil, err
		}
		fs := env.PS.MaxPairSensitivities(fc.R, true)
		ds := env.PS.MaxPairSensitivities(dc.R, true)
		for i := 0; i < k; i++ {
			figSum[i] += fs[i]
			hedgeSum[i] += ds[i]
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: no snapshots evaluated")
	}
	for i := 0; i < k; i++ {
		figSum[i] /= float64(n)
		hedgeSum[i] /= float64(n)
	}
	res := &SensitivityScatter{
		Topo:     env.Topo,
		Variance: env.Train.NormalizedVariances(),
		HedgeS:   hedgeSum,
		FigretS:  figSum,
	}
	res.HedgeCorr = traffic.SpearmanRank(res.Variance, res.HedgeS)
	res.FigretCorr = traffic.SpearmanRank(res.Variance, res.FigretS)
	res.HedgeBins = binByVariance(res.Variance, res.HedgeS)
	res.FigretBins = binByVariance(res.Variance, res.FigretS)
	return res, nil
}

// binByVariance averages ys within the low/mid/high terciles of variance.
func binByVariance(variance, ys []float64) [3]float64 {
	q1 := traffic.Quantile(variance, 1.0/3)
	q2 := traffic.Quantile(variance, 2.0/3)
	var sums, counts [3]float64
	for i, v := range variance {
		b := 0
		if v > q2 {
			b = 2
		} else if v > q1 {
			b = 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	var out [3]float64
	for b := range sums {
		if counts[b] > 0 {
			out[b] = sums[b] / counts[b]
		}
	}
	return out
}

// String renders the scatter as binned averages plus correlations.
func (r *SensitivityScatter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Path sensitivity vs traffic variance on %s\n", r.Topo)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %14s\n", "scheme", "low-var avg", "mid-var avg", "high-var avg", "spearman corr")
	fmt.Fprintf(&b, "%-12s %12.3f %12.3f %12.3f %14.2f\n", "Hedge TE",
		r.HedgeBins[0], r.HedgeBins[1], r.HedgeBins[2], r.HedgeCorr)
	fmt.Fprintf(&b, "%-12s %12.3f %12.3f %12.3f %14.2f\n", "FIGRET",
		r.FigretBins[0], r.FigretBins[1], r.FigretBins[2], r.FigretCorr)
	b.WriteString("expected shape: FIGRET's high-variance pairs get the lowest sensitivity (negative correlation);\n")
	b.WriteString("hedge-based TE caps all pairs uniformly regardless of variance\n")
	return b.String()
}
