package experiments

import (
	"fmt"
	"strings"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/lp"
	"figret/internal/traffic"
)

// HeuristicFResult is the Appendix C study (Tables 7/8, Figures 10/12):
// desensitization-based TE with hand-designed fine-grained sensitivity
// functions F, compared against the fixed-bound original.
type HeuristicFResult struct {
	Topo    string
	Entries []HeuristicFEntry
}

// HeuristicFEntry is one parameterization's outcome.
type HeuristicFEntry struct {
	Label string
	// NormalCase is the mean normalized MLU at or below the 75th percentile
	// (the paper's "normal-case performance").
	NormalCase float64
	// Peak is the maximum normalized MLU (burst-handling capability).
	Peak float64
}

// paramsLinear mirrors Table 7 (Min/Max of the linear F). The 'Original'
// entry is the constant-bound Des TE.
var paramsLinear = []struct {
	label    string
	min, max float64
	constant bool
}{
	{"1:strict(1/3..1/2)", 1.0 / 3, 1.0 / 2, false},
	{"2:strict(1/3..2/3)", 1.0 / 3, 2.0 / 3, false},
	{"3:original(2/3)", 2.0 / 3, 2.0 / 3, true},
	{"4:relaxed(2/3..5/6)", 2.0 / 3, 5.0 / 6, false},
	{"5:both(1/3..5/6)", 1.0 / 3, 5.0 / 6, false},
}

// paramsPiecewise mirrors Table 8 (Min/Max/breakpoint of the piecewise F).
var paramsPiecewise = []struct {
	label      string
	min, max   float64
	breakpoint float64
	constant   bool
}{
	{"1:strict bp=0.5", 1.0 / 2, 2.0 / 3, 0.5, false},
	{"2:strict bp=0.65", 1.0 / 2, 2.0 / 3, 0.65, false},
	{"3:strict bp=0.8", 1.0 / 2, 2.0 / 3, 0.8, false},
	{"4:original(2/3)", 2.0 / 3, 2.0 / 3, 0, true},
	{"5:relaxed bp=0.5", 2.0 / 3, 5.0 / 6, 0.5, false},
	{"6:relaxed bp=0.65", 2.0 / 3, 5.0 / 6, 0.65, false},
	{"7:relaxed bp=0.8", 2.0 / 3, 5.0 / 6, 0.8, false},
}

// HeuristicF runs the Appendix C parameter study. kind is "linear" or
// "piecewise".
func HeuristicF(env *Env, kind string, maxEval int) (*HeuristicFResult, error) {
	if maxEval == 0 {
		maxEval = 40
	}
	vars := env.Train.Variances()
	res := &HeuristicFResult{Topo: env.Topo}

	type param struct {
		label string
		f     func(pair int) float64
	}
	var params []param
	switch kind {
	case "linear":
		for _, p := range paramsLinear {
			if p.constant {
				params = append(params, param{p.label, lp.ConstantF(p.min)})
			} else {
				params = append(params, param{p.label, lp.LinearF(vars, p.min, p.max)})
			}
		}
	case "piecewise":
		for _, p := range paramsPiecewise {
			if p.constant {
				params = append(params, param{p.label, lp.ConstantF(p.min)})
			} else {
				params = append(params, param{p.label, lp.PiecewiseF(vars, p.min, p.max, p.breakpoint)})
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown heuristic kind %q", kind)
	}

	from := 1
	to := env.Test.Len()
	if to-from > maxEval {
		to = from + maxEval
	}
	schemes := make([]baselines.Scheme, len(params))
	for i, p := range params {
		schemes[i] = &baselines.FineGrainedDesTE{PS: env.PS, Solve: env.Oracle().CachedSolve, H: 12, F: p.f, Label: p.label}
	}
	run, err := eval.Run(schemes, env.Test, eval.Window{From: from, To: to}, env.EvalOptions())
	if err != nil {
		return nil, err
	}
	for _, ss := range run.Schemes {
		norm := ss.Norm
		p75 := traffic.Quantile(norm, 0.75)
		var sum float64
		var n int
		peak := 0.0
		for _, v := range norm {
			if v <= p75 {
				sum += v
				n++
			}
			if v > peak {
				peak = v
			}
		}
		res.Entries = append(res.Entries, HeuristicFEntry{
			Label:      ss.Name,
			NormalCase: sum / float64(n),
			Peak:       peak,
		})
	}
	return res, nil
}

// Entry returns the labeled entry, or nil.
func (r *HeuristicFResult) Entry(label string) *HeuristicFEntry {
	for i := range r.Entries {
		if r.Entries[i].Label == label {
			return &r.Entries[i]
		}
	}
	return nil
}

// String renders the parameter study.
func (r *HeuristicFResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heuristic fine-grained F study on %s (normalized MLU)\n", r.Topo)
	fmt.Fprintf(&b, "%-22s %12s %8s\n", "parameters", "normal-case", "peak")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-22s %12.3f %8.3f\n", e.Label, e.NormalCase, e.Peak)
	}
	b.WriteString("expected shape: relaxing stable-pair caps lowers normal-case MLU;\n")
	b.WriteString("tightening bursty-pair caps lowers the peak\n")
	return b.String()
}
