package experiments

import (
	"fmt"
	"strings"

	"figret/internal/baselines"
	"figret/internal/netsim"
	"figret/internal/te"
)

// MLUProxyResult validates the paper's §3 premise — "Google found MLU to be
// a reasonable proxy metric for throughput as well as for resilience against
// traffic pattern variation. High MLU indicates many links are in danger of
// overloading, causing packet losses, increasing flow-completion time, and
// reducing throughput" — by running the fluid simulator over scaled demand
// levels and correlating MLU with simulated loss and delay.
type MLUProxyResult struct {
	Topo string
	// Scales are the demand multipliers swept.
	Scales []float64
	// MLU, Loss, Delay are per-scale series.
	MLU, Loss, Delay []float64
	// LossCorr and DelayCorr are the Pearson correlations of MLU with loss
	// and delay across the sweep.
	LossCorr, DelayCorr float64
	// SchemeLoss compares simulated loss of the omniscient config vs the
	// uniform config at the highest scale (better MLU ⇒ less loss).
	OmniLoss, UniformLoss float64
}

// MLUProxy runs the validation on one environment.
func MLUProxy(env *Env, snapshots int) (*MLUProxyResult, error) {
	if snapshots <= 0 {
		snapshots = 20
	}
	if snapshots > env.Test.Len() {
		snapshots = env.Test.Len()
	}
	res := &MLUProxyResult{
		Topo:   env.Topo,
		Scales: []float64{0.5, 1, 2, 4, 8},
	}
	omni := &baselines.Omniscient{PS: env.PS, Solve: env.Solve}
	for _, scale := range res.Scales {
		var mluSum, lossSum, delaySum float64
		var n int
		for t := 0; t < snapshots; t++ {
			base := env.Test.At(t)
			d := make([]float64, len(base))
			for i, v := range base {
				d[i] = v * scale
			}
			cfg, err := omni.Advise(env.Test, t)
			if err != nil {
				return nil, err
			}
			sim, err := netsim.Simulate(cfg, d)
			if err != nil {
				return nil, err
			}
			mluSum += sim.MLU
			lossSum += sim.LossRate
			delaySum += sim.MeanDelay
			n++
		}
		res.MLU = append(res.MLU, mluSum/float64(n))
		res.Loss = append(res.Loss, lossSum/float64(n))
		res.Delay = append(res.Delay, delaySum/float64(n))
	}
	res.LossCorr = netsim.Correlation(res.MLU, res.Loss)
	res.DelayCorr = netsim.Correlation(res.MLU, res.Delay)

	// Scheme comparison at the stress level: the MLU-optimal config should
	// also lose less traffic than the naive uniform config.
	stress := res.Scales[len(res.Scales)-1]
	var omniLoss, uniLoss float64
	var n int
	uni := te.UniformConfig(env.PS)
	for t := 0; t < snapshots; t++ {
		base := env.Test.At(t)
		d := make([]float64, len(base))
		for i, v := range base {
			d[i] = v * stress
		}
		cfg, err := omni.Advise(env.Test, t)
		if err != nil {
			return nil, err
		}
		a, err := netsim.Simulate(cfg, d)
		if err != nil {
			return nil, err
		}
		b, err := netsim.Simulate(uni, d)
		if err != nil {
			return nil, err
		}
		omniLoss += a.LossRate
		uniLoss += b.LossRate
		n++
	}
	res.OmniLoss = omniLoss / float64(n)
	res.UniformLoss = uniLoss / float64(n)
	return res, nil
}

// String renders the sweep and correlations.
func (r *MLUProxyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MLU-as-proxy validation on %s (fluid simulator)\n", r.Topo)
	fmt.Fprintf(&b, "%-8s %8s %8s %8s\n", "scale", "MLU", "loss", "delay")
	for i := range r.Scales {
		fmt.Fprintf(&b, "%-8.1f %8.3f %8.3f %8.2f\n", r.Scales[i], r.MLU[i], r.Loss[i], r.Delay[i])
	}
	fmt.Fprintf(&b, "corr(MLU, loss) = %.2f, corr(MLU, delay) = %.2f\n", r.LossCorr, r.DelayCorr)
	fmt.Fprintf(&b, "loss at stress: MLU-optimal %.3f vs uniform %.3f\n", r.OmniLoss, r.UniformLoss)
	b.WriteString("high MLU tracks loss and delay; lower-MLU configurations lose less traffic\n")
	return b.String()
}
