package experiments

import (
	"fmt"
	"strings"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/traffic"
)

// PerturbationResult covers Tables 3 and 5: FIGRET's degradation under
// increasing synthetic fluctuations, in the paper's two regimes (variance-
// aligned noise for Table 3, variance-rank-reversed noise for Table 5).
type PerturbationResult struct {
	Topo      string
	WorstCase bool
	Alphas    []float64
	// AvgDecline[i] and P90Decline[i] are percentage increases of the mean
	// and 90th-percentile MLU at Alphas[i] relative to the unperturbed run.
	AvgDecline []float64
	P90Decline []float64
	// Spearman is the train/test variance-rank correlation (reported with
	// Table 5 to show how unlikely the worst case is).
	Spearman float64
}

// Perturbation reproduces Table 3 (worstCase=false) or Table 5
// (worstCase=true) on the environment.
func Perturbation(env *Env, h int, gamma float64, epochs int, alphas []float64, worstCase bool) (*PerturbationResult, error) {
	if h == 0 {
		h = 12
	}
	if len(alphas) == 0 {
		alphas = []float64{0.2, 0.5, 1.0, 2.0}
	}
	fig, _, err := env.TrainModels(h, gamma, epochs)
	if err != nil {
		return nil, err
	}
	baseAvg, baseP90, err := evalModel(fig, env.Test, h, env.Workers)
	if err != nil {
		return nil, err
	}
	res := &PerturbationResult{Topo: env.Topo, WorstCase: worstCase, Alphas: alphas}
	res.Spearman = traffic.SpearmanRank(env.Train.Variances(), env.Test.Variances())
	for i, a := range alphas {
		var pert *traffic.Trace
		if worstCase {
			pert = traffic.WorstCasePerturb(env.Test, env.Train, a, env.Seed+int64(100+i))
		} else {
			pert = traffic.Perturb(env.Test, env.Train, a, env.Seed+int64(100+i))
		}
		avg, p90, err := evalModel(fig, pert, h, env.Workers)
		if err != nil {
			return nil, err
		}
		res.AvgDecline = append(res.AvgDecline, 100*(avg-baseAvg)/baseAvg)
		res.P90Decline = append(res.P90Decline, 100*(p90-baseP90)/baseP90)
	}
	return res, nil
}

// evalModel runs a trained model over a trace on the evaluation engine
// (raw MLUs, snapshots in parallel) and returns (mean, p90) MLU.
func evalModel(m *figret.Model, tr *traffic.Trace, h, workers int) (avg, p90 float64, err error) {
	if tr.Len() <= h {
		return 0, 0, fmt.Errorf("experiments: no snapshots to evaluate")
	}
	run, err := eval.Run(
		[]baselines.Scheme{&baselines.NNScheme{Label: "model", Model: m}},
		tr, eval.Window{From: h, To: tr.Len()}, eval.Options{Workers: workers})
	if err != nil {
		return 0, 0, err
	}
	avg, p90 = eval.MeanQuantile(run.Schemes[0].Raw, 0.9)
	return avg, p90, nil
}

// String renders the table.
func (r *PerturbationResult) String() string {
	var b strings.Builder
	kind := "variance-aligned (Table 3)"
	if r.WorstCase {
		kind = "variance-rank-reversed worst case (Table 5)"
	}
	fmt.Fprintf(&b, "FIGRET degradation on %s under %s fluctuations\n", r.Topo, kind)
	fmt.Fprintf(&b, "%-8s", "alpha")
	for _, a := range r.Alphas {
		fmt.Fprintf(&b, " %8.1f", a)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "avg %")
	for _, v := range r.AvgDecline {
		fmt.Fprintf(&b, " %+8.1f", v)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "p90 %")
	for _, v := range r.P90Decline {
		fmt.Fprintf(&b, " %+8.1f", v)
	}
	b.WriteString("\n")
	if r.WorstCase {
		fmt.Fprintf(&b, "train/test variance-rank Spearman correlation: %.2f (high ⇒ worst case is rare)\n", r.Spearman)
	}
	return b.String()
}

// DriftResult is the Table 4 study: training on older data segments and
// testing on the final 25%.
type DriftResult struct {
	Topo     string
	Segments []string
	// AvgDecline / P90Decline are percentage changes vs the 0–75% model.
	AvgDecline []float64
	P90Decline []float64
}

// Drift reproduces Table 4.
func Drift(env *Env, h int, gamma float64, epochs int) (*DriftResult, error) {
	if h == 0 {
		h = 12
	}
	n := env.Trace.Len()
	q := n / 4
	test := env.Trace.Slice(3*q, n)
	segs := []struct {
		name     string
		from, to int
	}{
		{"0-75% (ref)", 0, 3 * q},
		{"0-25%", 0, q},
		{"25-50%", q, 2 * q},
		{"50-75%", 2 * q, 3 * q},
	}
	var refAvg, refP90 float64
	res := &DriftResult{Topo: env.Topo}
	for i, sg := range segs {
		m := figret.New(env.PS, figret.Config{H: h, Gamma: orDefault(gamma, 1), Epochs: orDefaultInt(epochs, 8), Seed: env.Seed})
		if _, err := m.Train(env.Trace.Slice(sg.from, sg.to)); err != nil {
			return nil, fmt.Errorf("segment %s: %w", sg.name, err)
		}
		avg, p90, err := evalModel(m, test, h, env.Workers)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			refAvg, refP90 = avg, p90
			continue
		}
		res.Segments = append(res.Segments, sg.name)
		res.AvgDecline = append(res.AvgDecline, 100*(avg-refAvg)/refAvg)
		res.P90Decline = append(res.P90Decline, 100*(p90-refP90)/refP90)
	}
	return res, nil
}

func orDefault(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

// String renders Table 4.
func (r *DriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGRET under natural traffic drift on %s (vs model trained on 0-75%%)\n", r.Topo)
	fmt.Fprintf(&b, "%-10s", "segment")
	for _, s := range r.Segments {
		fmt.Fprintf(&b, " %10s", s)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "avg %")
	for _, v := range r.AvgDecline {
		fmt.Fprintf(&b, " %+10.1f", v)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s", "p90 %")
	for _, v := range r.P90Decline {
		fmt.Fprintf(&b, " %+10.1f", v)
	}
	b.WriteString("\n")
	return b.String()
}
