package experiments

import (
	"fmt"
	"strings"

	"figret/internal/traffic"
)

// VarianceResult is the Figure 2 study: per-pair demand-variance
// heterogeneity for one topology's workload.
type VarianceResult struct {
	Topo string
	N    int
	// Normalized is the per-pair variance scaled to [0,1].
	Normalized []float64
	// Heterogeneity is the ratio p90/p50 of the variance distribution — a
	// scalar proxy for "SD pairs differ strongly in burstiness".
	Heterogeneity float64
	// TopShare is the share of total variance carried by the top 10% pairs.
	TopShare float64
}

// VarianceHeterogeneity reproduces Figure 2 for an environment.
func VarianceHeterogeneity(env *Env) *VarianceResult {
	v := env.Trace.NormalizedVariances()
	res := &VarianceResult{Topo: env.Topo, N: env.G.NumVertices(), Normalized: v}
	p50 := traffic.Quantile(v, 0.5)
	p90 := traffic.Quantile(v, 0.9)
	if p50 > 0 {
		res.Heterogeneity = p90 / p50
	} else {
		res.Heterogeneity = p90 * 1e9
	}
	total := 0.0
	for _, x := range v {
		total += x
	}
	thresh := traffic.Quantile(v, 0.9)
	top := 0.0
	for _, x := range v {
		if x >= thresh {
			top += x
		}
	}
	if total > 0 {
		res.TopShare = top / total
	}
	return res
}

// String renders a coarse text heatmap for small topologies and summary
// scalars for all.
func (r *VarianceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-pair variance heterogeneity on %s: p90/p50 = %.2f, top-10%% pairs carry %.0f%% of variance\n",
		r.Topo, r.Heterogeneity, 100*r.TopShare)
	if r.N <= 10 {
		// Text heatmap with the diagonal as '-'.
		chars := []byte(" .:-=+*#%@")
		idx := 0
		b.WriteString("variance heatmap (rows=src, cols=dst):\n")
		for s := 0; s < r.N; s++ {
			for d := 0; d < r.N; d++ {
				if s == d {
					b.WriteByte('|')
					continue
				}
				v := r.Normalized[idx]
				idx++
				c := int(v * float64(len(chars)-1))
				b.WriteByte(chars[c])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SimilarityResult is the Figure 4 / Figure 18 study: the distribution of
// max cosine similarity between each demand and its preceding window.
type SimilarityResult struct {
	H       int
	Entries []SimilarityEntry
}

// SimilarityEntry is one topology's candlestick.
type SimilarityEntry struct {
	Topo  string
	Stats traffic.Candlestick
}

// CosineSimilarity reproduces Figure 4 (H=12) and Figure 18 (H=64) across
// the provided environments.
func CosineSimilarity(envs []*Env, H int) *SimilarityResult {
	if H == 0 {
		H = 12
	}
	res := &SimilarityResult{H: H}
	for _, e := range envs {
		sims := e.Trace.WindowSimilarities(H)
		if len(sims) == 0 {
			continue
		}
		res.Entries = append(res.Entries, SimilarityEntry{
			Topo:  e.Topo,
			Stats: traffic.Summarize(sims),
		})
	}
	return res
}

// String renders the candlesticks.
func (r *SimilarityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cosine similarity of each TM vs best match in previous %d TMs\n", r.H)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s\n", "topology", "min", "p25", "median", "p75", "max")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			e.Topo, e.Stats.Min, e.Stats.P25, e.Stats.Median, e.Stats.P75, e.Stats.Max)
	}
	b.WriteString("expected shape: WAN > PoD-level > ToR-level similarity; gravity ≈ 1\n")
	return b.String()
}
