// Package experiments reproduces every table and figure of the paper's
// evaluation (§5, Appendices C, E, F, G) on the synthetic substrates of this
// repository. Each experiment is a function returning a typed result that
// renders the paper's rows/series as text; cmd/experiments and the top-level
// benchmark suite drive them.
//
// Experiments run at two scales:
//
//   - ScaleFull uses the paper's exact topology sizes (Table 1). Fine for
//     topology/LP benchmarks, but DNN training on the ToR-level fabrics is
//     slow in pure Go.
//   - ScaleFast keeps every topology family's *shape* (full mesh, random
//     regular, ring+chords) but reduces node counts so the complete
//     experiment suite runs in minutes. EXPERIMENTS.md records which scale
//     produced each number.
package experiments

import (
	"fmt"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/tracestore"
	"figret/internal/traffic"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleFast shrinks topologies for quick end-to-end runs.
	ScaleFast Scale = iota
	// ScaleFull uses the paper's Table 1 sizes.
	ScaleFull
)

// Env bundles everything an experiment needs for one topology/workload.
type Env struct {
	Topo  string
	Scale Scale
	G     *graph.Graph
	PS    *te.PathSet
	Trace *traffic.Trace
	Train *traffic.Trace
	Test  *traffic.Trace
	Solve baselines.SolveFunc
	Seed  int64
	Paths int
	// TestStart is Test's offset within Trace (snapshots before it are
	// training history usable for window warmup).
	TestStart int
	// Workers sizes the evaluation engine's worker pool (0 selects
	// runtime.NumCPU()); results are bitwise identical for any value.
	Workers int
	// WarmIters, when positive, enables warm-started oracle solves with
	// this iteration budget (set by UseGradSolver; meaningless for the
	// exact LP).
	WarmIters int

	oracle *eval.Oracle
	// store owns the memory mapping behind Trace when the environment was
	// built with a TraceCache; nil for heap-backed environments.
	store *tracestore.Reader
}

// Close releases the memory-mapped trace store backing this environment,
// if any. After Close the environment's Trace/Train/Test views must not
// be used. Heap-backed environments make it a no-op.
func (e *Env) Close() error {
	if e.store == nil {
		return nil
	}
	s := e.store
	e.store = nil
	return s.Close()
}

// Oracle returns the environment's shared omniscient-solve cache. Every
// experiment on this environment shares the cache, so the omniscient base
// for a window is solved once per process. The oracle's cold solve
// delegates to the CURRENT e.Solve on every call, so reassigning Solve
// after the oracle exists affects future solves — but entries already
// cached were computed by the previous solver; switch solvers with
// UseGradSolver (which resets the cache) rather than reassigning Solve
// mid-run.
func (e *Env) Oracle() *eval.Oracle {
	if e.oracle == nil {
		var warm baselines.WarmSolveFunc
		if e.WarmIters > 0 {
			warm = baselines.GradWarmSolve(solver.Options{Iters: e.WarmIters})
		}
		cold := func(ps *te.PathSet, d, caps []float64) (*te.Config, float64, error) {
			return e.Solve(ps, d, caps)
		}
		e.oracle = eval.NewOracle(e.PS, cold, warm)
	}
	return e.oracle
}

// EvalOptions returns the engine options every experiment on this
// environment shares: its worker pool size and its oracle.
func (e *Env) EvalOptions() eval.Options {
	return eval.Options{Workers: e.Workers, Oracle: e.Oracle()}
}

// UseGradSolver switches per-snapshot solves to the projected-gradient
// solver (iters 0 → 300) — the LP substitute at scales where dense
// simplex would dominate runtime — and enables warm-started oracle solves
// at a reduced iteration budget. It resets the oracle, so call it before
// running experiments.
func (e *Env) UseGradSolver(iters int) {
	if iters == 0 {
		iters = 300
	}
	e.Solve = baselines.GradSolve(solver.Options{Iters: iters})
	e.WarmIters = iters / 2
	if e.WarmIters < 100 {
		e.WarmIters = 100
	}
	e.oracle = nil
}

// fastGraph returns the reduced-size counterpart of a named topology.
func fastGraph(name string) (*graph.Graph, error) {
	switch name {
	case graph.TopoGEANT:
		return graph.GEANT(), nil // already small
	case graph.TopoUsCarrier:
		return graph.RingWithChords(30, 38, 10, 1581)
	case graph.TopoCogentco:
		return graph.RingWithChords(36, 45, 10, 1971)
	case graph.TopoPFabric:
		return graph.PFabric(), nil
	case graph.TopoPoDDB:
		return graph.PoDDB(), nil
	case graph.TopoPoDWEB:
		return graph.PoDWEB(), nil
	case graph.TopoToRDB:
		return graph.RandomRegularish(20, 60, 10, 155)
	case graph.TopoToRWEB:
		return graph.RandomRegularish(26, 91, 10, 324)
	case graph.TopoLargeWAN:
		return graph.RingWithChords(44, 66, 10, 2201)
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q", name)
	}
}

// EnvOptions tweaks environment construction.
type EnvOptions struct {
	// T is the trace length (default 200 fast / 400 full).
	T int
	// K is the candidate-path count (default 3, the paper's setting).
	K int
	// Seed defaults to 1.
	Seed int64
	// Selector overrides path selection (default Yen; Figure 6 passes the
	// Räcke-style selector). Custom selectors must be safe for concurrent
	// use (path precomputation runs on a worker pool).
	Selector te.PathSelector
	// SelectorName content-addresses a custom Selector in the path cache;
	// leaving it empty with a custom Selector disables caching for that
	// environment (see te.PathSetOptions).
	SelectorName string
	// PathWorkers sizes the candidate-path precomputation worker pool
	// (0 = runtime.NumCPU()). The path set is bitwise identical for any
	// value.
	PathWorkers int
	// PathCache, when non-empty, is the directory of an on-disk
	// te.PathStore: the trainer, the evaluation engine and the serving
	// daemon then share one Yen precomputation per (topology, K,
	// selector) across processes instead of each recomputing at startup.
	PathCache string
	// TraceCache, when non-empty, is a directory of on-disk tracestore
	// files: the synthetic trace for (topology, n, T, seed) is generated
	// once, spooled there in the columnar store format, and every
	// environment — including the one that generated it — serves
	// snapshots as zero-copy views of the memory-mapped file. Results are
	// bitwise identical with the cache on or off, warm or cold.
	TraceCache string
}

// NewEnv builds the evaluation environment for a named topology.
func NewEnv(topo string, scale Scale, opt EnvOptions) (*Env, error) {
	if opt.T == 0 {
		if scale == ScaleFast {
			opt.T = 200
		} else {
			opt.T = 400
		}
	}
	if opt.K == 0 {
		opt.K = 3
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	var g *graph.Graph
	var err error
	if scale == ScaleFull {
		g, err = graph.ByName(topo)
	} else {
		g, err = fastGraph(topo)
	}
	if err != nil {
		return nil, err
	}
	pso := te.PathSetOptions{
		Workers:      opt.PathWorkers,
		Selector:     opt.Selector,
		SelectorName: opt.SelectorName,
	}
	if opt.PathCache != "" {
		store, err := te.NewPathStore(opt.PathCache)
		if err != nil {
			return nil, err
		}
		pso.Store = store
	}
	ps, err := te.NewPathSetOpt(g, opt.K, pso)
	if err != nil {
		return nil, err
	}
	var tr *traffic.Trace
	var store *tracestore.Reader
	if opt.TraceCache != "" {
		tr, store, err = traceFromCache(opt.TraceCache, topo, g.NumVertices(), opt.T, opt.Seed)
	} else {
		tr, err = traffic.ForTopology(topo, g.NumVertices(), opt.T, opt.Seed)
	}
	if err != nil {
		return nil, err
	}
	// Scale traffic so the omniscient MLU sits in a realistic band (~0.5):
	// normalize by the mean-demand-driven uniform-config MLU. For a
	// store-backed trace this writes through the private mapping:
	// copy-on-write pages diverge in this process only, the durable file
	// keeps the raw generated demands.
	calibrate(ps, tr)
	train, test := tr.Split(0.75)
	return &Env{
		Topo:      topo,
		Scale:     scale,
		G:         g,
		PS:        ps,
		Trace:     tr,
		Train:     train,
		Test:      test,
		Solve:     baselines.AutoSolve(ps),
		Seed:      opt.Seed,
		Paths:     opt.K,
		TestStart: train.Len(),
		store:     store,
	}, nil
}

// calibrate rescales the trace so the mean-demand uniform-split MLU is 0.5,
// keeping every topology's utilization in a comparable band regardless of
// generator units.
func calibrate(ps *te.PathSet, tr *traffic.Trace) {
	mean := make([]float64, tr.Pairs.Count())
	for _, s := range tr.Snapshots {
		for i, v := range s {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(tr.Len())
	}
	u := te.UniformConfig(ps)
	m, _ := ps.MLU(mean, u.R)
	if m > 0 {
		tr.Scale(0.5 / m)
	}
}

// TrainModels trains FIGRET and DOTE on the environment's training split
// with shared hyperparameters. Gamma and epochs default per scale.
func (e *Env) TrainModels(h int, gamma float64, epochs int) (fig, dote *figret.Model, err error) {
	if h == 0 {
		h = 12
	}
	if epochs == 0 {
		if e.Scale == ScaleFast {
			epochs = 8
		} else {
			epochs = 15
		}
	}
	if gamma == 0 {
		gamma = 1
	}
	fig = figret.New(e.PS, figret.Config{H: h, Gamma: gamma, Epochs: epochs, Seed: e.Seed})
	if _, err = fig.Train(e.Train); err != nil {
		return nil, nil, err
	}
	dote = figret.NewDOTE(e.PS, figret.Config{H: h, Epochs: epochs, Seed: e.Seed})
	if _, err = dote.Train(e.Train); err != nil {
		return nil, nil, err
	}
	return fig, dote, nil
}

// GradSolve returns a gradient-based SolveFunc sized for this environment
// (used where LP would dominate runtime, e.g. per-snapshot hedging series).
func (e *Env) GradSolve(iters int) baselines.SolveFunc {
	if iters == 0 {
		iters = 300
	}
	return baselines.GradSolve(solver.Options{Iters: iters})
}
