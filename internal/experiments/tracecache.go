package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"figret/internal/tracestore"
	"figret/internal/traffic"
)

var traceCacheHits, traceCacheMisses atomic.Uint64

// TraceCacheStats returns the process-wide trace-cache load totals: hits
// (environments whose trace was memory-mapped from an existing store
// file) and misses (generated, spooled to disk, then reloaded). Package-
// level for the same reason as te.PathCacheStats: every environment in a
// process shares the counters, and cmd/served exports them as gauges.
func TraceCacheStats() (hits, misses uint64) {
	return traceCacheHits.Load(), traceCacheMisses.Load()
}

// traceCachePath names the store file for one generated trace. The key
// is the full input of traffic.ForTopology — topology name, vertex
// count, length, seed — so distinct workloads never collide; the store
// format's own magic/version guards against foreign files.
func traceCachePath(dir, topo string, n, T int, seed int64) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, topo)
	return filepath.Join(dir, fmt.Sprintf("trace_%s_n%d_T%d_s%d.fgt", safe, n, T, seed))
}

// traceFromCache returns the topology's generated trace via an on-disk
// tracestore: a valid cache entry is memory-mapped directly; otherwise
// the trace is generated, written (atomic temp+rename), and reloaded
// from the written file. Reloading on miss — rather than returning the
// freshly generated heap trace — makes cold and warm runs serve bytes
// through the identical mmap-backed path, so enabling the cache can
// never change results between the first run and the second. Corrupt,
// truncated or foreign-version entries count as misses and are
// regenerated, mirroring te.PathStore.
//
// The returned Reader owns the mapping; it must stay reachable while the
// trace's snapshot views are in use, and Close unmaps them.
func traceFromCache(dir, topo string, n, T int, seed int64) (*traffic.Trace, *tracestore.Reader, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("experiments: trace cache: %w", err)
	}
	path := traceCachePath(dir, topo, n, T, seed)
	if tr, r, err := tracestore.Load(path); err == nil {
		if tr.Pairs.N() == n && tr.Len() == T {
			traceCacheHits.Add(1)
			return tr, r, nil
		}
		// A well-formed store with the wrong geometry under this key means
		// a hand-edited or colliding file: a miss, not a fault.
		r.Close()
	} else if !errors.Is(err, os.ErrNotExist) && !tracestore.IsFormatError(err) {
		// I/O faults (permissions, unreadable disk) are real errors;
		// format damage is a miss and gets overwritten below.
		return nil, nil, err
	}
	traceCacheMisses.Add(1)
	gen, err := traffic.ForTopology(topo, n, T, seed)
	if err != nil {
		return nil, nil, err
	}
	if err := tracestore.WriteTrace(path, gen, tracestore.Options{}); err != nil {
		return nil, nil, err
	}
	tr, r, err := tracestore.Load(path)
	if err != nil {
		return nil, nil, err
	}
	return tr, r, nil
}
