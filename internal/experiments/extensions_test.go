package experiments

import (
	"strings"
	"testing"

	"figret/internal/graph"
)

func TestVisualizeDrift(t *testing.T) {
	env := podEnv(t)
	res, err := VisualizeDrift(env, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpread <= 0 {
		t.Fatalf("spread = %v", res.TotalSpread)
	}
	// Appendix F finding: traffic forms a single cluster over time on
	// stable DC traces.
	if !res.SingleCluster() {
		t.Errorf("quarters drifted apart: %v", res.Drift)
	}
	out := res.String()
	if !strings.Contains(out, "quarter") || !strings.Contains(out, "embedding") {
		t.Error("render broken")
	}
	for q := 0; q < 4; q++ {
		if len(res.Quarters[q]) == 0 {
			t.Errorf("quarter %d empty", q)
		}
	}
}

func TestDOTEFailureCase(t *testing.T) {
	env, err := NewEnv(graph.TopoToRDB, ScaleFast, EnvOptions{T: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DOTEFailureCase(env, 6, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot < 6 || res.Snapshot >= env.Test.Len() {
		t.Errorf("snapshot %d out of range", res.Snapshot)
	}
	// The located pair must exhibit the stable-then-burst pattern.
	if res.Upcoming <= res.WindowMean {
		t.Errorf("pair did not burst: window %v, upcoming %v", res.WindowMean, res.Upcoming)
	}
	if !strings.Contains(res.String(), "burst pair") {
		t.Error("render broken")
	}
}

func TestMLUProxy(t *testing.T) {
	env := podEnv(t)
	res, err := MLUProxy(env, 8)
	if err != nil {
		t.Fatal(err)
	}
	// MLU must track loss strongly across the overload sweep.
	if res.LossCorr < 0.8 {
		t.Errorf("MLU/loss correlation %v too weak", res.LossCorr)
	}
	if res.DelayCorr < 0.5 {
		t.Errorf("MLU/delay correlation %v too weak", res.DelayCorr)
	}
	// MLU increases monotonically with scale.
	for i := 1; i < len(res.MLU); i++ {
		if res.MLU[i] < res.MLU[i-1] {
			t.Errorf("MLU not monotone in scale: %v", res.MLU)
		}
	}
	// The MLU-optimal configuration loses no more than uniform at stress.
	if res.OmniLoss > res.UniformLoss+1e-9 {
		t.Errorf("omniscient loss %v above uniform %v", res.OmniLoss, res.UniformLoss)
	}
	if !strings.Contains(res.String(), "corr(MLU, loss)") {
		t.Error("render broken")
	}
}
