package experiments

import (
	"fmt"
	"strings"
	"time"

	"figret/internal/baselines"
	"figret/internal/figret"
	"figret/internal/lp"
	"figret/internal/solver"
)

// TimingResult is the Table 2 study: per-scheme calculation time (time to
// produce a configuration for one new demand matrix) and precomputation
// time (training / cutting-plane solving).
type TimingResult struct {
	Topo          string
	Nodes, Edges  int
	FigretCalc    time.Duration // one DNN forward + normalization
	LPCalc        time.Duration // plain MLU LP (0 if skipped as infeasible)
	DesTECalc     time.Duration // sensitivity-capped LP (0 if skipped)
	GradCalc      time.Duration // gradient solver (the LP substitute at scale)
	GradWarmCalc  time.Duration // warm-started gradient solve (the oracle's steady state)
	LPFeasible    bool          // dense LP attempted at this scale
	FigretPrecomp time.Duration // training time
	ObliviousPre  time.Duration // cutting-plane time (0 if skipped)
	ObliviousOK   bool
}

// TimingOptions configures the Table 2 run.
type TimingOptions struct {
	H         int
	Epochs    int // figret training epochs for the precomputation column
	LPMaxRows int // dense-LP feasibility cutoff (default 1200 rows)
	GradIters int
}

// Timing reproduces Table 2 on one environment.
func Timing(env *Env, opt TimingOptions) (*TimingResult, error) {
	if opt.H == 0 {
		opt.H = 12
	}
	if opt.Epochs == 0 {
		opt.Epochs = 3
	}
	if opt.LPMaxRows == 0 {
		opt.LPMaxRows = 1200
	}
	if opt.GradIters == 0 {
		opt.GradIters = 300
	}
	res := &TimingResult{
		Topo:  env.Topo,
		Nodes: env.G.NumVertices(),
		Edges: env.G.NumEdges(),
	}
	d := env.Test.At(env.Test.Len() - 1)

	// FIGRET: train briefly, then time inference.
	m := figret.New(env.PS, figret.Config{H: opt.H, Gamma: 1, Epochs: opt.Epochs, Seed: env.Seed})
	start := time.Now()
	if _, err := m.Train(env.Train); err != nil {
		return nil, err
	}
	res.FigretPrecomp = time.Since(start)
	w := env.Test.Window(env.Test.Len(), opt.H)
	start = time.Now()
	const reps = 5
	for i := 0; i < reps; i++ {
		if _, err := m.Predict(w); err != nil {
			return nil, err
		}
	}
	res.FigretCalc = time.Since(start) / reps

	// LP and Des TE (capped LP), only at dense-simplex-feasible scale.
	rows := env.PS.Pairs.Count() + env.G.NumEdges()
	res.LPFeasible = rows <= opt.LPMaxRows
	if res.LPFeasible {
		start = time.Now()
		if _, _, err := lp.MLUMin(env.PS, d); err != nil {
			return nil, err
		}
		res.LPCalc = time.Since(start)
		caps := lp.SensitivityCaps(env.PS, lp.ConstantF(2.0/3.0))
		start = time.Now()
		if _, _, err := lp.MLUMinCapped(env.PS, d, caps); err != nil {
			return nil, err
		}
		res.DesTECalc = time.Since(start)
	}

	// Gradient solver (LP substitute at any scale), cold and warm-started:
	// the warm solve seeds the previous snapshot's optimum and runs a
	// fraction of the iterations — the per-snapshot cost of the evaluation
	// engine's oracle on temporally-correlated traces.
	dPrev := d
	if env.Test.Len() >= 2 {
		dPrev = env.Test.At(env.Test.Len() - 2)
	}
	prevCfg, _ := solver.MinimizeMLU(env.PS, dPrev, solver.Options{Iters: opt.GradIters})
	start = time.Now()
	solver.MinimizeMLU(env.PS, d, solver.Options{Iters: opt.GradIters})
	res.GradCalc = time.Since(start)
	start = time.Now()
	solver.MinimizeMLU(env.PS, d, solver.Options{Iters: maxInt(100, opt.GradIters/3), InitR: prevCfg.R})
	res.GradWarmCalc = time.Since(start)

	// Oblivious precomputation, small scale only (as in the paper, where it
	// is infeasible beyond GEANT/pFabric/PoD).
	if rows <= 300 {
		dmax := baselines.PeakDemand(env.Train)
		start = time.Now()
		if _, _, err := baselines.ObliviousConfig(env.PS, dmax, 6); err == nil {
			res.ObliviousPre = time.Since(start)
			res.ObliviousOK = true
		}
	}
	return res, nil
}

// Speedup returns the Des-TE-vs-FIGRET calculation-time ratio (the paper's
// headline 35×–1800×); it uses the gradient solve when the LP was skipped.
func (r *TimingResult) Speedup() float64 {
	des := r.DesTECalc
	if des == 0 {
		des = r.GradCalc
	}
	if r.FigretCalc == 0 {
		return 0
	}
	return float64(des) / float64(r.FigretCalc)
}

// String renders one Table 2 row set.
func (r *TimingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Solver timing on %s (#nodes %d, #edges %d)\n", r.Topo, r.Nodes, r.Edges)
	fmt.Fprintf(&b, "  FIGRET calc:  %12v\n", r.FigretCalc)
	if r.LPFeasible {
		fmt.Fprintf(&b, "  LP calc:      %12v\n", r.LPCalc)
		fmt.Fprintf(&b, "  Des TE calc:  %12v\n", r.DesTECalc)
	} else {
		fmt.Fprintf(&b, "  LP calc:      infeasible at this scale (dense simplex)\n")
		fmt.Fprintf(&b, "  grad-solver:  %12v (LP substitute)\n", r.GradCalc)
	}
	fmt.Fprintf(&b, "  grad warm-start: %9v (oracle steady state)\n", r.GradWarmCalc)
	fmt.Fprintf(&b, "  speedup (Des TE / FIGRET): %.0fx\n", r.Speedup())
	fmt.Fprintf(&b, "  FIGRET precomp: %10v\n", r.FigretPrecomp)
	if r.ObliviousOK {
		fmt.Fprintf(&b, "  Oblivious precomp: %7v\n", r.ObliviousPre)
	} else {
		fmt.Fprintf(&b, "  Oblivious precomp: infeasible at this scale\n")
	}
	return b.String()
}
