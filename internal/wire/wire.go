// Package wire is the compact binary serving protocol: a
// length-prefixed, version-tagged, CRC-32-checksummed frame codec for
// demand snapshots, routing decisions and failure reports, built on the
// same engineering pattern as te.PathStore (explicit little-endian
// framing, checksum-first validation, bounds-checked decoding that
// errors instead of panicking on any corrupt, truncated or
// foreign-format input).
//
// The JSON API stays the compatibility surface; wire is the
// incrementally-deployable fast path next to it. Frames travel either
// as content-negotiated HTTP bodies (Content-Type / Accept
// wire.MediaType) or over a persistent upgraded stream
// (Upgrade: figret-wire) that supports request pipelining and
// delta-encoded decisions.
//
// # Frame layout
//
// Every frame is
//
//	u32  length   — byte count of everything after this field
//	u8   version  — wire.Version
//	u8   type     — MsgType
//	...  payload  — type-specific, little-endian
//	u32  crc      — CRC-32 (IEEE) over [version, type, payload]
//
// Floats are IEEE-754 bit patterns (math.Float64bits), so every value
// round-trips bitwise — the property the serving subsystem's
// bitwise-identity contracts are built on.
//
// Encoding and decoding are zero-allocation at steady state: an Encoder
// appends into one reusable buffer (valid until its next call), a
// Decoder reads frames into one reusable buffer, and the typed decode
// helpers fill caller-owned message structs whose slices are grown once
// and then reused.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Version tags every frame; decoders reject anything else.
	Version = 1
	// MediaType is the content-negotiation token for binary frames over
	// HTTP (Content-Type on requests, Accept on responses).
	MediaType = "application/x-figret-wire"
	// UpgradeProtocol is the HTTP Upgrade token for the persistent
	// pipelined stream.
	UpgradeProtocol = "figret-wire"
	// MaxFrame bounds a frame's post-length byte count; larger lengths
	// are rejected before any allocation (a corrupt length prefix must
	// not balloon memory).
	MaxFrame = 64 << 20
	// minFrame is version + type + trailing crc.
	minFrame = 2 + 4
	// FrameOverhead is a frame's fixed cost beyond its payload: the
	// length prefix plus version, type and crc.
	FrameOverhead = 4 + minFrame
)

// MsgType identifies a frame's payload schema.
type MsgType uint8

const (
	// THello binds a stream connection to a topology (client → server;
	// first frame on a stream).
	THello MsgType = 1 + iota
	// THelloAck confirms the binding and carries the topology's pair and
	// path counts for client-side validation.
	THelloAck
	// TSnapshot ingests one demand snapshot.
	TSnapshot
	// TDecision is a full routing decision.
	TDecision
	// TDelta is a delta-encoded routing decision: a base sequence number
	// plus only the pairs whose splits changed.
	TDelta
	// TFailures installs the failed-link set (empty clears).
	TFailures
	// TRouting requests the currently published decision.
	TRouting
	// TResync requests a full (non-delta) decision, resetting the
	// server's delta base.
	TResync
	// TAck acknowledges a request with no decision payload (async
	// ingest).
	TAck
	// TError carries an error code and message.
	TError
)

func (t MsgType) String() string {
	switch t {
	case THello:
		return "hello"
	case THelloAck:
		return "hello-ack"
	case TSnapshot:
		return "snapshot"
	case TDecision:
		return "decision"
	case TDelta:
		return "delta"
	case TFailures:
		return "failures"
	case TRouting:
		return "routing"
	case TResync:
		return "resync"
	case TAck:
		return "ack"
	case TError:
		return "error"
	}
	return fmt.Sprintf("wire.MsgType(%d)", uint8(t))
}

// --- messages -----------------------------------------------------------

// Hello binds a stream connection to one topology.
type Hello struct {
	// Topo is the topology every subsequent request on the connection
	// addresses.
	Topo string
	// Delta requests delta-encoded decisions (the server still sends
	// full decisions whenever a delta would not be smaller, on version
	// changes, and after a resync).
	Delta bool
}

// HelloAck confirms a Hello.
type HelloAck struct {
	// Pairs and Paths are the topology's SD-pair and candidate-path
	// counts; clients validate them against their local path set before
	// trusting decoded ratios.
	Pairs, Paths int
}

// Snapshot is one ingested demand snapshot.
type Snapshot struct {
	// Async acknowledges without waiting for a decision.
	Async bool
	// Demand is the flat pair-indexed demand vector.
	Demand []float64
}

// Decision is a full routing decision (the wire form of
// serve.RoutingResponse).
type Decision struct {
	Seq      int64
	Snapshot int64
	Version  int
	Rerouted bool
	// ChurnLimited reports hysteresis clamping.
	ChurnLimited bool
	// Warming reports that no decision could be computed yet; Ratios is
	// empty.
	Warming bool
	// AtUnixNanos is the publication time.
	AtUnixNanos int64
	// Ratios is the per-path split-ratio vector (empty while warming).
	Ratios []float64
}

// Delta is a delta-encoded decision: everything a Decision carries, but
// with only the changed pairs' ratios, relative to the base decision
// identified by BaseSeq.
type Delta struct {
	// BaseSeq is the Seq of the decision this delta applies to. Applying
	// against any other base is a gap (ErrDeltaGap) and requires a full
	// resync.
	BaseSeq      int64
	Seq          int64
	Snapshot     int64
	Version      int
	Rerouted     bool
	ChurnLimited bool
	AtUnixNanos  int64
	// Pairs lists the changed pairs with their full per-pair ratio
	// blocks.
	Pairs []DeltaPair

	// flat backs the DeltaPair ratio slices so repeated decodes reuse
	// one allocation.
	flat []float64
}

// DeltaPair is one changed pair's new split ratios.
type DeltaPair struct {
	// Pair is the SD-pair index.
	Pair int
	// Ratios are the pair's split ratios, aligned with the layout's path
	// list for the pair.
	Ratios []float64
}

// Failures reports failed undirected links by vertex pair (empty
// clears).
type Failures struct {
	Links [][2]int
}

// ErrorMsg is a wire-level error response.
type ErrorMsg struct {
	// Code is an HTTP-style status code (400, 404, 500, 503, ...), so
	// the stream and the JSON surface classify faults identically.
	Code int
	Msg  string
}

// --- encoder ------------------------------------------------------------

// Encoder builds frames into one reusable buffer. Each EncodeX call
// returns a view of that buffer valid until the next call; callers that
// need the frame beyond that must copy. The zero Encoder is ready to
// use. Not safe for concurrent use.
type Encoder struct {
	buf []byte
}

func (e *Encoder) begin(t MsgType) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, Version, byte(t))
}

func (e *Encoder) seal() []byte {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf[4:]))
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

func (e *Encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *Encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *Encoder) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, f := range v {
		e.f64(f)
	}
}

func (e *Encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// decision flag bits.
const (
	flagRerouted     = 1 << 0
	flagChurnLimited = 1 << 1
	flagWarming      = 1 << 2
)

// Hello encodes a stream-binding request.
func (e *Encoder) Hello(m *Hello) []byte {
	e.begin(THello)
	e.u8(boolByte(m.Delta))
	e.str(m.Topo)
	return e.seal()
}

// HelloAck encodes a binding confirmation.
func (e *Encoder) HelloAck(m *HelloAck) []byte {
	e.begin(THelloAck)
	e.u32(uint32(m.Pairs))
	e.u32(uint32(m.Paths))
	return e.seal()
}

// Snapshot encodes a demand-snapshot ingest.
func (e *Encoder) Snapshot(m *Snapshot) []byte {
	e.begin(TSnapshot)
	e.u8(boolByte(m.Async))
	e.floats(m.Demand)
	return e.seal()
}

func (e *Encoder) decisionHeader(seq, snapshot int64, version int, flags uint8, at int64) {
	e.i64(seq)
	e.i64(snapshot)
	e.u32(uint32(version))
	e.u8(flags)
	e.i64(at)
}

func decisionFlags(rerouted, churnLimited, warming bool) uint8 {
	var f uint8
	if rerouted {
		f |= flagRerouted
	}
	if churnLimited {
		f |= flagChurnLimited
	}
	if warming {
		f |= flagWarming
	}
	return f
}

// Decision encodes a full decision.
func (e *Encoder) Decision(m *Decision) []byte {
	e.begin(TDecision)
	e.decisionHeader(m.Seq, m.Snapshot, m.Version, decisionFlags(m.Rerouted, m.ChurnLimited, m.Warming), m.AtUnixNanos)
	e.floats(m.Ratios)
	return e.seal()
}

// DecisionDelta encodes next as a delta against prev over layout when
// that is strictly smaller than the full encoding; ok reports whether a
// delta was produced (callers fall back to Decision otherwise). Deltas
// are never produced across versions, from or to warming decisions, or
// against a mismatched ratio count — those are exactly the conditions
// that force a full-decision resync. Ratio comparison is bitwise
// (math.Float64bits), preserving the serving subsystem's bitwise
// contracts even across +0/−0.
func (e *Encoder) DecisionDelta(prev, next *Decision, layout Layout) ([]byte, bool) {
	if prev == nil || prev.Warming || next.Warming ||
		prev.Version != next.Version ||
		len(prev.Ratios) != len(next.Ratios) || len(next.Ratios) != layout.NumPaths() {
		return nil, false
	}
	// Pass 1: size the delta. Per changed pair: pair index, ratio count,
	// ratios. A pair changes when any of its ratios' bit patterns do.
	changed := 0
	deltaBytes := 0
	for _, pp := range layout {
		for _, p := range pp {
			if math.Float64bits(prev.Ratios[p]) != math.Float64bits(next.Ratios[p]) {
				changed++
				deltaBytes += 4 + 4 + 8*len(pp)
				break
			}
		}
	}
	// The delta payload replaces the full ratio vector (4 + 8n bytes)
	// with a base seq (8) + changed-pair count (4) + per-pair blocks.
	if 8+4+deltaBytes >= 4+8*len(next.Ratios) {
		return nil, false
	}
	e.begin(TDelta)
	e.i64(prev.Seq)
	e.decisionHeader(next.Seq, next.Snapshot, next.Version, decisionFlags(next.Rerouted, next.ChurnLimited, false), next.AtUnixNanos)
	e.u32(uint32(changed))
	for pi, pp := range layout {
		diff := false
		for _, p := range pp {
			if math.Float64bits(prev.Ratios[p]) != math.Float64bits(next.Ratios[p]) {
				diff = true
				break
			}
		}
		if !diff {
			continue
		}
		e.u32(uint32(pi))
		e.u32(uint32(len(pp)))
		for _, p := range pp {
			e.f64(next.Ratios[p])
		}
	}
	return e.seal(), true
}

// Failures encodes a failed-link report.
func (e *Encoder) Failures(m *Failures) []byte {
	e.begin(TFailures)
	e.u32(uint32(len(m.Links)))
	for _, l := range m.Links {
		e.u32(uint32(l[0]))
		e.u32(uint32(l[1]))
	}
	return e.seal()
}

// Routing encodes a current-decision request.
func (e *Encoder) Routing() []byte {
	e.begin(TRouting)
	return e.seal()
}

// Resync encodes a full-decision resync request.
func (e *Encoder) Resync() []byte {
	e.begin(TResync)
	return e.seal()
}

// Ack encodes a payload-free acknowledgement.
func (e *Encoder) Ack() []byte {
	e.begin(TAck)
	return e.seal()
}

// Error encodes an error response.
func (e *Encoder) Error(m *ErrorMsg) []byte {
	e.begin(TError)
	e.u32(uint32(m.Code))
	e.str(m.Msg)
	return e.seal()
}

// --- frame decoding -----------------------------------------------------

// ErrFrame wraps every framing-level decode failure (truncation,
// checksum mismatch, bad version, oversized length), so transports can
// distinguish corrupt streams from application errors.
var ErrFrame = errors.New("wire: bad frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// Decoder reads frames from a stream into one reusable buffer. The
// payload returned by ReadFrame is valid until the next call. The zero
// Decoder is ready to use. Not safe for concurrent use.
type Decoder struct {
	buf  []byte
	head [4]byte
}

// ReadFrame reads one frame from r, validates it, and returns its type
// and payload view. io.EOF is returned verbatim at a clean frame
// boundary; mid-frame truncation is an ErrFrame.
func (d *Decoder) ReadFrame(r io.Reader) (MsgType, []byte, error) {
	if _, err := io.ReadFull(r, d.head[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, frameErr("short header: %v", err)
	}
	n := binary.LittleEndian.Uint32(d.head[:])
	if n < minFrame || n > MaxFrame {
		return 0, nil, frameErr("length %d out of range [%d, %d]", n, minFrame, MaxFrame)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(r, d.buf); err != nil {
		return 0, nil, frameErr("truncated body: %v", err)
	}
	return validateFrame(d.buf)
}

// DecodeFrame validates a complete frame held in memory (an HTTP body)
// and returns its type and payload view into data. The frame starts at
// the length prefix and must span data exactly.
func DecodeFrame(data []byte) (MsgType, []byte, error) {
	if len(data) < 4 {
		return 0, nil, frameErr("short frame (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[:4])
	if n < minFrame || n > MaxFrame {
		return 0, nil, frameErr("length %d out of range [%d, %d]", n, minFrame, MaxFrame)
	}
	if int(n) != len(data)-4 {
		return 0, nil, frameErr("length %d, have %d bytes", n, len(data)-4)
	}
	return validateFrame(data[4:])
}

// validateFrame checks crc and version of a body (everything after the
// length prefix) and returns the payload view.
func validateFrame(body []byte) (MsgType, []byte, error) {
	if len(body) < minFrame {
		return 0, nil, frameErr("body too short (%d bytes)", len(body))
	}
	payload, sum := body[:len(body)-4], binary.LittleEndian.Uint32(body[len(body)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, frameErr("checksum mismatch")
	}
	if payload[0] != Version {
		return 0, nil, frameErr("version %d, want %d", payload[0], Version)
	}
	return MsgType(payload[1]), payload[2:], nil
}

// --- payload decoding ---------------------------------------------------

// reader is a bounds-checked little-endian cursor (the te.PathStore
// idiom): out-of-range reads set failed and return zeros instead of
// panicking, so decoders validate once at the end.
type reader struct {
	data   []byte
	off    int
	failed bool
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		r.failed = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) done() bool   { return !r.failed && r.off == len(r.data) }
func (r *reader) str() string  { return string(r.bytes(int(r.u32()))) }

// floats decodes a count-prefixed float vector into dst (reused when
// capacity allows). The count is validated against the remaining bytes
// before any allocation.
func (r *reader) floats(dst []float64) []float64 {
	n := int(r.u32())
	if n < 0 || r.off+8*n > len(r.data) || 8*n < 0 {
		r.failed = true
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = r.f64()
	}
	return dst
}

func payloadErr(t MsgType, r *reader) error {
	if !r.done() {
		return frameErr("%s payload malformed at offset %d", t, r.off)
	}
	return nil
}

// DecodeHello decodes a THello payload into m.
func DecodeHello(p []byte, m *Hello) error {
	r := &reader{data: p}
	m.Delta = r.u8() != 0
	m.Topo = r.str()
	return payloadErr(THello, r)
}

// DecodeHelloAck decodes a THelloAck payload into m.
func DecodeHelloAck(p []byte, m *HelloAck) error {
	r := &reader{data: p}
	m.Pairs = int(r.u32())
	m.Paths = int(r.u32())
	return payloadErr(THelloAck, r)
}

// DecodeSnapshot decodes a TSnapshot payload into m, reusing m.Demand's
// capacity.
func DecodeSnapshot(p []byte, m *Snapshot) error {
	r := &reader{data: p}
	m.Async = r.u8() != 0
	m.Demand = r.floats(m.Demand)
	return payloadErr(TSnapshot, r)
}

func decodeDecisionHeader(r *reader) (seq, snapshot int64, version int, flags uint8, at int64) {
	seq = r.i64()
	snapshot = r.i64()
	version = int(r.u32())
	flags = r.u8()
	at = r.i64()
	return
}

// DecodeDecision decodes a TDecision payload into m, reusing m.Ratios'
// capacity.
func DecodeDecision(p []byte, m *Decision) error {
	r := &reader{data: p}
	var flags uint8
	m.Seq, m.Snapshot, m.Version, flags, m.AtUnixNanos = decodeDecisionHeader(r)
	m.Rerouted = flags&flagRerouted != 0
	m.ChurnLimited = flags&flagChurnLimited != 0
	m.Warming = flags&flagWarming != 0
	m.Ratios = r.floats(m.Ratios)
	return payloadErr(TDecision, r)
}

// DecodeDelta decodes a TDelta payload into m, reusing its backing
// storage. The payload is self-describing (per-pair ratio counts are
// encoded), so decoding needs no layout; ApplyDelta validates against
// one.
func DecodeDelta(p []byte, m *Delta) error {
	r := &reader{data: p}
	m.BaseSeq = r.i64()
	var flags uint8
	m.Seq, m.Snapshot, m.Version, flags, m.AtUnixNanos = decodeDecisionHeader(r)
	m.Rerouted = flags&flagRerouted != 0
	m.ChurnLimited = flags&flagChurnLimited != 0
	n := int(r.u32())
	// Each pair block is at least pair index + count (8 bytes), bounding
	// n before allocation.
	if n < 0 || r.off+8*n > len(r.data) {
		return frameErr("%s claims %d pairs with %d bytes left", TDelta, n, len(r.data)-r.off)
	}
	if cap(m.Pairs) < n {
		m.Pairs = make([]DeltaPair, n)
	}
	m.Pairs = m.Pairs[:n]
	m.flat = m.flat[:0]
	// Two-pass fill: decode counts and values into the shared flat
	// buffer, then slice it per pair (append may reallocate mid-loop, so
	// per-pair views are taken after all values are in place).
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		m.Pairs[i].Pair = int(r.u32())
		k := int(r.u32())
		if k <= 0 || r.off+8*k > len(r.data) {
			return frameErr("%s pair %d has %d ratios with %d bytes left", TDelta, i, k, len(r.data)-r.off)
		}
		for j := 0; j < k; j++ {
			m.flat = append(m.flat, r.f64())
		}
		offs[i+1] = len(m.flat)
	}
	for i := 0; i < n; i++ {
		m.Pairs[i].Ratios = m.flat[offs[i]:offs[i+1]]
	}
	if err := payloadErr(TDelta, r); err != nil {
		return err
	}
	return nil
}

// DecodeFailures decodes a TFailures payload into m.
func DecodeFailures(p []byte, m *Failures) error {
	r := &reader{data: p}
	n := int(r.u32())
	if n < 0 || r.off+8*n > len(r.data) {
		return frameErr("%s claims %d links with %d bytes left", TFailures, n, len(r.data)-r.off)
	}
	if cap(m.Links) < n {
		m.Links = make([][2]int, n)
	}
	m.Links = m.Links[:n]
	for i := range m.Links {
		m.Links[i][0] = int(r.u32())
		m.Links[i][1] = int(r.u32())
	}
	return payloadErr(TFailures, r)
}

// DecodeError decodes a TError payload into m.
func DecodeError(p []byte, m *ErrorMsg) error {
	r := &reader{data: p}
	m.Code = int(r.u32())
	m.Msg = r.str()
	return payloadErr(TError, r)
}
