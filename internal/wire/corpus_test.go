package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// seedFrames builds one well-formed frame per message type, plus a
// deliberately truncated frame, as the checked-in seed corpus for
// FuzzDecodeFrame. Each entry becomes
// testdata/fuzz/FuzzDecodeFrame/<name>.
func seedFrames() map[string][]byte {
	var e Encoder
	frames := map[string][]byte{}
	add := func(name string, b []byte) { frames[name] = append([]byte(nil), b...) }

	add("hello", e.Hello(&Hello{Topo: "toy", Delta: true}))
	add("hello_ack", e.HelloAck(&HelloAck{Pairs: 6, Paths: 18}))
	add("snapshot", e.Snapshot(&Snapshot{Async: true, Demand: []float64{1, 2.5, 0, 4096}}))
	add("decision", e.Decision(&Decision{
		Seq: 7, Snapshot: 7, Version: 2, Rerouted: true,
		AtUnixNanos: 1700000000000000000,
		Ratios:      []float64{0.25, 0.75, 1, 0, 0.5, 0.5},
	}))

	// A genuine delta: 8 pairs x 2 paths, one pair changed, so the delta
	// is strictly smaller than the full decision and DecisionDelta
	// actually produces one.
	layout := make(Layout, 8)
	prevR := make([]float64, 16)
	for i := range layout {
		layout[i] = []int{2 * i, 2*i + 1}
		prevR[2*i] = 0.5
		prevR[2*i+1] = 0.5
	}
	nextR := append([]float64(nil), prevR...)
	nextR[4], nextR[5] = 0.9, 0.1
	prev := &Decision{Seq: 7, Snapshot: 7, Version: 2, AtUnixNanos: 1, Ratios: prevR}
	next := &Decision{Seq: 8, Snapshot: 8, Version: 2, AtUnixNanos: 2, Ratios: nextR}
	delta, ok := e.DecisionDelta(prev, next, layout)
	if !ok {
		panic("seed delta unexpectedly fell back to a full decision")
	}
	add("delta", delta)

	add("failures", e.Failures(&Failures{Links: [][2]int{{0, 3}, {2, 5}}}))
	add("routing", e.Routing())
	add("resync", e.Resync())
	add("ack", e.Ack())
	add("error", e.Error(&ErrorMsg{Code: 503, Msg: "solver warming"}))

	// A frame whose length prefix promises more bytes than follow: the
	// short-read path every transport hits on a torn connection.
	full := e.Ack()
	add("truncated", full[:len(full)-3])

	return frames
}

// corpusFile renders one seed in the native Go fuzzing corpus encoding.
func corpusFile(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

// TestFuzzSeedCorpus pins the checked-in corpus byte-for-byte to
// seedFrames, so the seeds can never drift from the codec they exercise.
// Regenerate after a deliberate wire-format change with
//
//	WIRE_SEED_REGEN=1 go test ./internal/wire -run TestFuzzSeedCorpus
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	frames := seedFrames()
	var names []string
	for name := range frames {
		names = append(names, name)
	}
	sort.Strings(names)
	if os.Getenv("WIRE_SEED_REGEN") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if err := os.WriteFile(filepath.Join(dir, name), corpusFile(frames[name]), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range names {
		data := frames[name]
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("seed %s missing (regenerate with WIRE_SEED_REGEN=1): %v", name, err)
		}
		if want := corpusFile(data); string(got) != string(want) {
			t.Errorf("seed %s stale: corpus file does not match the current encoder (regenerate with WIRE_SEED_REGEN=1)", name)
		}
		// Every seed must hold its advertised property: well-formed frames
		// decode, the truncated one reports an error without panicking.
		_, _, err = DecodeFrame(data)
		if name == "truncated" {
			if err == nil {
				t.Errorf("seed %s: truncated frame decoded cleanly", name)
			}
		} else if err != nil {
			t.Errorf("seed %s: well-formed frame rejected: %v", name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if _, ok := frames[ent.Name()]; !ok {
			t.Errorf("unexpected corpus file %s: add it to seedFrames or delete it", ent.Name())
		}
	}
}
