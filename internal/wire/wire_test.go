package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// layout2 is a tiny two-pair layout: pair 0 owns paths {0,1}, pair 1
// owns paths {2,3,4}.
var layout2 = Layout{{0, 1}, {2, 3, 4}}

func decision(seq int64, ratios ...float64) *Decision {
	return &Decision{
		Seq: seq, Snapshot: seq + 100, Version: 3,
		Rerouted: seq%2 == 0, ChurnLimited: seq%3 == 0,
		AtUnixNanos: 1723000000000000000 + seq,
		Ratios:      ratios,
	}
}

// TestRoundTrip encodes every message type and checks the decoded
// struct is bitwise identical — the property the serving subsystem's
// JSON-vs-binary identity contracts rest on.
func TestRoundTrip(t *testing.T) {
	var e Encoder

	check := func(name string, frame []byte, wantType MsgType, decode func(p []byte) (any, error), want any) {
		t.Helper()
		// The encoder's buffer is reused; a retained frame must be copied,
		// exactly as documented.
		frame = append([]byte(nil), frame...)
		typ, payload, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if typ != wantType {
			t.Fatalf("%s: decoded type %s, want %s", name, typ, wantType)
		}
		got, err := decode(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: decoded %+v, want %+v", name, got, want)
		}
	}

	hello := &Hello{Topo: "geant", Delta: true}
	check("hello", e.Hello(hello), THello, func(p []byte) (any, error) {
		var m Hello
		err := DecodeHello(p, &m)
		return &m, err
	}, hello)

	ack := &HelloAck{Pairs: 462, Paths: 1386}
	check("hello-ack", e.HelloAck(ack), THelloAck, func(p []byte) (any, error) {
		var m HelloAck
		err := DecodeHelloAck(p, &m)
		return &m, err
	}, ack)

	// Adversarial float values: negative zero, denormals, NaN bit
	// patterns and huge magnitudes must all survive bitwise.
	snap := &Snapshot{Async: true, Demand: []float64{0, math.Copysign(0, -1), 5e-324, 1.7976931348623157e308, 1.0 / 3.0}}
	check("snapshot", e.Snapshot(snap), TSnapshot, func(p []byte) (any, error) {
		var m Snapshot
		err := DecodeSnapshot(p, &m)
		return &m, err
	}, snap)

	dec := decision(42, 0.25, 0.75, 1.0/3, 1.0/3, 1.0/3)
	check("decision", e.Decision(dec), TDecision, func(p []byte) (any, error) {
		var m Decision
		err := DecodeDecision(p, &m)
		return &m, err
	}, dec)

	warm := &Decision{Snapshot: 2, Warming: true, Ratios: []float64{}}
	check("warming", e.Decision(warm), TDecision, func(p []byte) (any, error) {
		var m Decision
		m.Ratios = make([]float64, 0) // decode reuses capacity; keep nil-vs-empty out of DeepEqual
		err := DecodeDecision(p, &m)
		return &m, err
	}, warm)

	fails := &Failures{Links: [][2]int{{0, 3}, {7, 9}}}
	check("failures", e.Failures(fails), TFailures, func(p []byte) (any, error) {
		var m Failures
		err := DecodeFailures(p, &m)
		return &m, err
	}, fails)

	em := &ErrorMsg{Code: 503, Msg: "controller closed"}
	check("error", e.Error(em), TError, func(p []byte) (any, error) {
		var m ErrorMsg
		err := DecodeError(p, &m)
		return &m, err
	}, em)

	// The frames must be copied one call at a time: all three encode
	// calls share e's reusable buffer.
	for _, tc := range []struct {
		name  string
		frame []byte
		typ   MsgType
	}{
		{"routing", append([]byte(nil), e.Routing()...), TRouting},
		{"resync", append([]byte(nil), e.Resync()...), TResync},
		{"ack", append([]byte(nil), e.Ack()...), TAck},
	} {
		typ, payload, err := DecodeFrame(tc.frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if typ != tc.typ || len(payload) != 0 {
			t.Fatalf("%s: decoded (%s, %d payload bytes)", tc.name, typ, len(payload))
		}
	}
}

// TestReadFrameStream checks stream framing: back-to-back frames decode
// in order, a clean boundary yields io.EOF verbatim, and mid-frame
// truncation is an ErrFrame.
func TestReadFrameStream(t *testing.T) {
	var e Encoder
	var buf bytes.Buffer
	buf.Write(e.Snapshot(&Snapshot{Demand: []float64{1, 2, 3}}))
	buf.Write(e.Ack())
	buf.Write(e.Routing())
	full := append([]byte(nil), buf.Bytes()...)

	var d Decoder
	r := bytes.NewReader(full)
	for i, want := range []MsgType{TSnapshot, TAck, TRouting} {
		typ, _, err := d.ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("frame %d: %s, want %s", i, typ, want)
		}
	}
	if _, _, err := d.ReadFrame(r); err != io.EOF {
		t.Fatalf("clean boundary returned %v, want io.EOF", err)
	}

	// Every strict prefix that cuts into a frame must error (ErrFrame),
	// except length-0 prefixes of the stream head (clean EOF).
	frameLen := len(e.Snapshot(&Snapshot{Demand: []float64{1, 2, 3}}))
	for cut := 1; cut < frameLen; cut++ {
		var d2 Decoder
		_, _, err := d2.ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("truncation at %d returned %v, want ErrFrame", cut, err)
		}
	}
}

// TestDecodeCorrupt flips every byte of a valid frame and truncates it
// at every length: decoding must return an error (never panic, never
// succeed) — except the payload-only flips the checksum is there to
// catch, which must fail the checksum.
func TestDecodeCorrupt(t *testing.T) {
	var e Encoder
	frame := append([]byte(nil), e.Decision(decision(7, 0.5, 0.5, 1, 0, 0))...)

	if _, _, err := DecodeFrame(frame); err != nil {
		t.Fatalf("pristine frame: %v", err)
	}
	for i := range frame {
		for _, bit := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), frame...)
			corrupt[i] ^= bit
			if _, _, err := DecodeFrame(corrupt); err == nil {
				t.Fatalf("flipped bit %#x of byte %d: decode succeeded", bit, i)
			}
		}
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrFrame) {
			t.Fatalf("truncation at %d returned no ErrFrame", cut)
		}
	}
	// Trailing garbage must not pass either: the frame must span exactly.
	if _, _, err := DecodeFrame(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrFrame) {
		t.Fatal("frame with trailing byte decoded")
	}
}

// TestDecodeWrongVersion rejects a frame whose version tag is foreign
// even when its checksum is valid.
func TestDecodeWrongVersion(t *testing.T) {
	var e Encoder
	frame := append([]byte(nil), e.Ack()...)
	frame[4] = Version + 1 // version byte, after the u32 length prefix
	// Recompute the crc so only the version check can reject.
	reseal(frame)
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrame) {
		t.Fatalf("foreign version decoded: %v", err)
	}
}

// reseal recomputes a test frame's trailing checksum after mutation.
func reseal(frame []byte) {
	var e Encoder
	e.buf = frame[:len(frame)-4]
	e.seal()
}

// TestDecodeHostile feeds decoders adversarial payloads whose counts
// claim more data than present; every path must error before allocating
// or reading out of bounds.
func TestDecodeHostile(t *testing.T) {
	var e Encoder
	// A snapshot frame claiming 2^31 floats in a 13-byte payload.
	frame := append([]byte(nil), e.Snapshot(&Snapshot{Demand: []float64{1}})...)
	// Payload layout: [async u8][count u32][floats...]; count sits at
	// offset 4 (len) + 2 (ver,type) + 1 (async).
	frame[7], frame[8], frame[9], frame[10] = 0xff, 0xff, 0xff, 0x7f
	reseal(frame)
	var m Snapshot
	_, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeSnapshot(payload, &m); !errors.Is(err, ErrFrame) {
		t.Fatalf("hostile count decoded: %v", err)
	}

	// An oversized length prefix must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, Version, byte(TAck)}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrame) {
		t.Fatal("oversized length accepted")
	}
	var d Decoder
	if _, _, err := d.ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Fatal("oversized length accepted by stream reader")
	}
}

// FuzzDecodeFrame asserts the only contract that matters for untrusted
// input: arbitrary bytes never panic any decode path.
func FuzzDecodeFrame(f *testing.F) {
	var e Encoder
	f.Add(append([]byte(nil), e.Decision(decision(1, 0.5, 0.5, 1, 0, 0))...))
	f.Add(append([]byte(nil), e.Snapshot(&Snapshot{Demand: []float64{1, 2}})...))
	f.Add(append([]byte(nil), e.Hello(&Hello{Topo: "x", Delta: true})...))
	f.Add(append([]byte(nil), e.Failures(&Failures{Links: [][2]int{{1, 2}}})...))
	f.Add([]byte{})
	f.Add([]byte{6, 0, 0, 0, Version, byte(TAck), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// A frame that passes checksum+version still carries an untrusted
		// payload; every typed decoder must fail gracefully on it.
		switch typ {
		case THello:
			var m Hello
			_ = DecodeHello(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		case THelloAck:
			var m HelloAck
			_ = DecodeHelloAck(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		case TSnapshot:
			var m Snapshot
			_ = DecodeSnapshot(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		case TDecision:
			var m Decision
			_ = DecodeDecision(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		case TDelta:
			var m Delta
			if DecodeDelta(payload, &m) == nil {
				var base, out Decision
				base.Ratios = []float64{0.5, 0.5, 1, 0, 0}
				base.Seq = m.BaseSeq
				base.Version = m.Version
				_ = ApplyDelta(&base, &m, layout2, &out) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
			}
		case TFailures:
			var m Failures
			_ = DecodeFailures(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		case TError:
			var m ErrorMsg
			_ = DecodeError(payload, &m) //figret:allow(errwire) fuzz contract is absence of panics, the error value is immaterial
		}
		var d Decoder
		if _, _, err := d.ReadFrame(bytes.NewReader(data)); err == nil {
			// Stream framing accepts a prefix of data; no further checks —
			// the point is absence of panics.
			_ = payload
		}
	})
}
