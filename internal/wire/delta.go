package wire

import (
	"errors"
	"fmt"
)

// Layout maps SD-pair indices to the path indices of their candidate
// paths — te.PathSet.PairPaths, passed down without importing te so the
// codec stays dependency-free. Delta encoding and application are
// defined over a layout: a "pair's ratios" are the entries of the flat
// ratio vector the layout assigns to it.
type Layout [][]int

// NumPaths returns the total path count across all pairs.
func (l Layout) NumPaths() int {
	n := 0
	for _, pp := range l {
		n += len(pp)
	}
	return n
}

// ErrDeltaGap reports a delta whose base does not match the decision it
// is being applied to — the client's cache is behind (or ahead of) the
// server's delta chain, and only a full-decision resync (TResync, or a
// reconnect) can recover. Gaps never corrupt state: ApplyDelta returns
// before touching out.
var ErrDeltaGap = errors.New("wire: delta base mismatch, full resync required")

// ApplyDelta reconstructs the full decision a delta describes by
// patching the changed pairs onto prev (the client's cached full
// decision), writing the result into out (whose Ratios capacity is
// reused). prev and out may not alias.
//
// It fails with ErrDeltaGap when prev is not the delta's base —
// mismatched sequence number, a version gap, or a warming/ratio-less
// base — and with a framing error when the delta is malformed against
// the layout. On any error out is left untouched.
func ApplyDelta(prev *Decision, d *Delta, layout Layout, out *Decision) error {
	if prev == nil || prev.Warming || len(prev.Ratios) == 0 {
		return fmt.Errorf("%w (no base decision)", ErrDeltaGap)
	}
	if d.BaseSeq != prev.Seq {
		return fmt.Errorf("%w (base seq %d, have %d)", ErrDeltaGap, d.BaseSeq, prev.Seq)
	}
	if d.Version != prev.Version {
		return fmt.Errorf("%w (version %d, base %d)", ErrDeltaGap, d.Version, prev.Version)
	}
	if len(prev.Ratios) != layout.NumPaths() {
		return fmt.Errorf("%w (base has %d ratios, layout %d)", ErrDeltaGap, len(prev.Ratios), layout.NumPaths())
	}
	for i := range d.Pairs {
		dp := &d.Pairs[i]
		if dp.Pair < 0 || dp.Pair >= len(layout) {
			return frameErr("delta pair %d out of range [0, %d)", dp.Pair, len(layout))
		}
		if len(dp.Ratios) != len(layout[dp.Pair]) {
			return frameErr("delta pair %d has %d ratios, layout %d", dp.Pair, len(dp.Ratios), len(layout[dp.Pair]))
		}
	}
	out.Seq = d.Seq
	out.Snapshot = d.Snapshot
	out.Version = d.Version
	out.Rerouted = d.Rerouted
	out.ChurnLimited = d.ChurnLimited
	out.Warming = false
	out.AtUnixNanos = d.AtUnixNanos
	if cap(out.Ratios) < len(prev.Ratios) {
		out.Ratios = make([]float64, len(prev.Ratios))
	}
	out.Ratios = out.Ratios[:len(prev.Ratios)]
	copy(out.Ratios, prev.Ratios)
	for i := range d.Pairs {
		dp := &d.Pairs[i]
		for j, p := range layout[dp.Pair] {
			out.Ratios[p] = dp.Ratios[j]
		}
	}
	return nil
}
