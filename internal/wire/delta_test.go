package wire

import (
	"errors"
	"math"
	"testing"
)

// bigLayout builds a layout of n pairs with k paths each.
func bigLayout(n, k int) Layout {
	l := make(Layout, n)
	p := 0
	for i := range l {
		pp := make([]int, k)
		for j := range pp {
			pp[j] = p
			p++
		}
		l[i] = pp
	}
	return l
}

func fullDecision(seq int64, layout Layout) *Decision {
	d := decision(seq)
	d.Ratios = make([]float64, layout.NumPaths())
	for i := range d.Ratios {
		d.Ratios[i] = 1 / float64(len(layout[0]))
	}
	return d
}

// TestDeltaRoundTrip changes one pair of a large decision, encodes the
// delta, and checks (a) the delta frame is much smaller than the full
// frame, (b) decode+apply reconstructs the next decision bitwise.
func TestDeltaRoundTrip(t *testing.T) {
	layout := bigLayout(100, 3)
	prev := fullDecision(10, layout)
	next := fullDecision(11, layout)
	next.Snapshot = 111
	next.Rerouted = true
	// Change pair 42's splits, including a bitwise-only change (-0).
	next.Ratios[layout[42][0]] = 0.9
	next.Ratios[layout[42][1]] = 0.1
	next.Ratios[layout[42][2]] = math.Copysign(0, -1)

	var e Encoder
	fullLen := len(e.Decision(next))
	frame, ok := e.DecisionDelta(prev, next, layout)
	if !ok {
		t.Fatal("single-pair change produced no delta")
	}
	if len(frame) >= fullLen/4 {
		t.Fatalf("delta frame %dB vs full %dB: not compact", len(frame), fullLen)
	}

	typ, payload, err := DecodeFrame(append([]byte(nil), frame...))
	if err != nil {
		t.Fatal(err)
	}
	if typ != TDelta {
		t.Fatalf("decoded %s, want %s", typ, TDelta)
	}
	var d Delta
	if err := DecodeDelta(payload, &d); err != nil {
		t.Fatal(err)
	}
	if d.BaseSeq != prev.Seq || d.Seq != next.Seq || len(d.Pairs) != 1 || d.Pairs[0].Pair != 42 {
		t.Fatalf("decoded delta %+v", d)
	}

	var out Decision
	if err := ApplyDelta(prev, &d, layout, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != next.Seq || out.Snapshot != next.Snapshot || out.Version != next.Version ||
		out.Rerouted != next.Rerouted || out.ChurnLimited != next.ChurnLimited ||
		out.AtUnixNanos != next.AtUnixNanos || out.Warming {
		t.Fatalf("applied header %+v, want %+v", out, next)
	}
	for i := range next.Ratios {
		if math.Float64bits(out.Ratios[i]) != math.Float64bits(next.Ratios[i]) {
			t.Fatalf("ratio %d: %x, want %x", i, math.Float64bits(out.Ratios[i]), math.Float64bits(next.Ratios[i]))
		}
	}
}

// TestDeltaIdentical: a decision identical to its base (new seq, same
// ratios) encodes as an empty-pair delta — the smallest possible frame.
func TestDeltaIdentical(t *testing.T) {
	layout := bigLayout(50, 3)
	prev := fullDecision(1, layout)
	next := fullDecision(2, layout)

	var e Encoder
	frame, ok := e.DecisionDelta(prev, next, layout)
	if !ok {
		t.Fatal("identical ratios produced no delta")
	}
	var d Delta
	_, payload, err := DecodeFrame(append([]byte(nil), frame...))
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeDelta(payload, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Pairs) != 0 {
		t.Fatalf("identical decisions yielded %d changed pairs", len(d.Pairs))
	}
	var out Decision
	if err := ApplyDelta(prev, &d, layout, &out); err != nil {
		t.Fatal(err)
	}
	for i := range next.Ratios {
		if out.Ratios[i] != next.Ratios[i] {
			t.Fatalf("ratio %d drifted", i)
		}
	}
}

// TestDeltaRefusals: deltas are never produced across versions, from or
// to warming decisions, on layout mismatch, or when everything changed
// (a full frame is smaller).
func TestDeltaRefusals(t *testing.T) {
	layout := bigLayout(10, 3)
	prev := fullDecision(1, layout)
	var e Encoder

	across := fullDecision(2, layout)
	across.Version = prev.Version + 1
	if _, ok := e.DecisionDelta(prev, across, layout); ok {
		t.Fatal("delta across versions")
	}

	warm := &Decision{Seq: 2, Warming: true}
	if _, ok := e.DecisionDelta(prev, warm, layout); ok {
		t.Fatal("delta to a warming decision")
	}
	if _, ok := e.DecisionDelta(warm, prev, layout); ok {
		t.Fatal("delta from a warming base")
	}
	if _, ok := e.DecisionDelta(nil, prev, layout); ok {
		t.Fatal("delta from a nil base")
	}

	// Everything changed: the full encoding wins and DecisionDelta must
	// decline rather than emit a larger frame.
	allNew := fullDecision(2, layout)
	for i := range allNew.Ratios {
		allNew.Ratios[i] += 0.001 * float64(i+1)
	}
	if _, ok := e.DecisionDelta(prev, allNew, layout); ok {
		t.Fatal("delta larger than full encoding was produced")
	}
}

// TestApplyDeltaGap: every base mismatch fails with ErrDeltaGap and
// leaves out untouched.
func TestApplyDeltaGap(t *testing.T) {
	layout := bigLayout(10, 3)
	prev := fullDecision(5, layout)
	next := fullDecision(6, layout)
	next.Ratios[0] = 0.9
	next.Ratios[1] = 0.1
	next.Ratios[2] = 0

	var e Encoder
	frame, ok := e.DecisionDelta(prev, next, layout)
	if !ok {
		t.Fatal("no delta")
	}
	var d Delta
	_, payload, err := DecodeFrame(append([]byte(nil), frame...))
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeDelta(payload, &d); err != nil {
		t.Fatal(err)
	}

	sentinel := Decision{Seq: -99, Ratios: []float64{-1}}
	for _, tc := range []struct {
		name string
		base *Decision
	}{
		{"nil base", nil},
		{"warming base", &Decision{Seq: 5, Warming: true}},
		{"seq mismatch", fullDecision(4, layout)},
		{"version gap", func() *Decision {
			b := fullDecision(5, layout)
			b.Version++
			return b
		}()},
		{"layout mismatch", func() *Decision {
			b := fullDecision(5, layout)
			b.Ratios = b.Ratios[:len(b.Ratios)-1]
			return b
		}()},
	} {
		name, base := tc.name, tc.base
		out := sentinel
		out.Ratios = append([]float64(nil), sentinel.Ratios...)
		if err := ApplyDelta(base, &d, layout, &out); !errors.Is(err, ErrDeltaGap) {
			t.Fatalf("%s: %v, want ErrDeltaGap", name, err)
		}
		if out.Seq != sentinel.Seq || out.Ratios[0] != -1 {
			t.Fatalf("%s: out mutated on error: %+v", name, out)
		}
	}

	// Malformed against the layout (pair out of range) is a framing
	// error, not a gap.
	bad := d
	bad.Pairs = append([]DeltaPair(nil), d.Pairs...)
	bad.Pairs[0].Pair = len(layout)
	var out Decision
	if err := ApplyDelta(prev, &bad, layout, &out); !errors.Is(err, ErrFrame) {
		t.Fatalf("out-of-range pair: %v, want ErrFrame", err)
	}
}

// TestDeltaChain applies a chain of deltas, each against the previous
// reconstruction, as the stream client does with its double buffer.
func TestDeltaChain(t *testing.T) {
	layout := bigLayout(40, 3)
	var e Encoder
	cur := fullDecision(1, layout)
	last, spare := &Decision{}, &Decision{}
	*last = *cur
	last.Ratios = append([]float64(nil), cur.Ratios...)

	for step := 0; step < 20; step++ {
		next := fullDecision(cur.Seq+1, layout)
		copy(next.Ratios, cur.Ratios)
		pi := (step * 7) % len(layout)
		next.Ratios[layout[pi][0]] = float64(step+1) / 100
		next.Ratios[layout[pi][1]] = 1 - float64(step+1)/100
		next.Ratios[layout[pi][2]] = 0

		frame, ok := e.DecisionDelta(cur, next, layout)
		if !ok {
			t.Fatalf("step %d: no delta", step)
		}
		var d Delta
		_, payload, err := DecodeFrame(append([]byte(nil), frame...))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := DecodeDelta(payload, &d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := ApplyDelta(last, &d, layout, spare); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		last, spare = spare, last
		for i := range next.Ratios {
			if last.Ratios[i] != next.Ratios[i] {
				t.Fatalf("step %d ratio %d: %v != %v", step, i, last.Ratios[i], next.Ratios[i])
			}
		}
		cur = next
	}
}
