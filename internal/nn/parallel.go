package nn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the deterministic data-parallel training engine
// (DESIGN.md §10). A minibatch is cut into fixed-size shards of
// GradShardRows consecutive rows; shard g (counted from the last Reduce,
// i.e. within the current macro-batch) accumulates its gradient partial
// into lane g mod MaxGradLanes. Lanes — not goroutines — are the unit of
// state: the partial held by a lane is a pure function of the minibatch
// rows and the shard layout, and the final sum is produced by a
// fixed-order pairwise tree over the lanes, so the reduced gradient is
// bitwise identical for every worker count (including 1, which runs
// inline with no goroutines at all). Worker scheduling only decides
// *when* a lane's shards are processed, never *what* they contain.

const (
	// GradShardRows is the number of consecutive minibatch rows per
	// gradient shard. It equals tileRows, and — deliberately — the
	// default figret batch size: any batch of ≤ GradShardRows rows is a
	// single shard, whose partial is accumulated in row order exactly
	// like the pre-engine sequential sum, so historical trajectories
	// (and the blessed scenario goldens) are preserved bit-for-bit.
	GradShardRows = tileRows

	// MaxGradLanes caps the number of lane partials (and so the memory
	// overhead: at most MaxGradLanes gradient-sized buffers). Shards
	// beyond MaxGradLanes wrap onto existing lanes in shard order.
	// Power of two, so tree(2n) = tree(n)+tree(n) holds at every level
	// up to a full macro-batch — the property behind macro≡flat bitwise
	// equivalence for aligned batch sizes.
	MaxGradLanes = 16
)

// ScoreFunc computes per-row losses for one shard during Accumulate. It
// receives the lane index (distinct concurrent calls always carry
// distinct lanes, so lane-indexed caller state needs no locking), the
// shard's forward output y of shape [r1-r0][Out], the shard's absolute
// row range [r0, r1) within the minibatch, and must fill dy (same shape
// as y) with dL/dy. It may record per-row losses into caller state
// indexed by absolute row — rows of distinct concurrent shards never
// collide.
type ScoreFunc func(lane int, y []float64, r0, r1 int, dy []float64)

// dpLane is one gradient lane: a scratch sized for a single shard, the
// lane's running partial, and (lazily, only once a lane receives a second
// shard within a macro-batch) a buffer for computing later shard partials
// before adding them in.
type dpLane struct {
	scratch *Scratch
	dy      []float64
	grads   *Grads // running partial; zeroed by Reduce
	shard   *Grads // scratch for shards after the first; lazily allocated
	dirty   bool   // grads holds at least one shard since the last Reduce
}

// DataParallel shards minibatch forward/backward passes across a worker
// pool with bitwise worker-count-independent gradient sums. Typical use:
//
//	eng := NewDataParallel(m, workers)
//	for each micro-batch {
//		eng.Accumulate(x, b, score)  // forward + score + backward
//	}
//	eng.Reduce()                     // tree-reduce partials into m's GW/GB
//	opt.Step(m)
//
// Accumulate may be called several times before Reduce (macro-batches):
// the shard counter runs on across calls, so K micro-batches of B rows
// produce the same shard layout — and, after the tree reduction, the same
// bits — as one flat batch of K·B rows whenever B is a multiple of
// GradShardRows.
//
// A DataParallel is not safe for concurrent use; it parallelizes
// internally.
type DataParallel struct {
	m       *MLP
	workers int
	out     int
	lanes   [MaxGradLanes]*dpLane
	shards  int // shards accumulated since the last Reduce
}

// NewDataParallel builds an engine over m. workers <= 0 selects
// GOMAXPROCS. Lane buffers are allocated on demand, so a single-worker
// engine over small batches costs one scratch plus one gradient set.
func NewDataParallel(m *MLP, workers int) *DataParallel {
	if len(m.Layers) == 0 {
		panic("nn: data-parallel engine over empty MLP")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &DataParallel{m: m, workers: workers, out: m.Layers[len(m.Layers)-1].Out}
}

// Workers returns the resolved worker-pool size.
func (e *DataParallel) Workers() int { return e.workers }

func (e *DataParallel) lane(i int) *dpLane {
	ln := e.lanes[i]
	if ln == nil {
		ln = &dpLane{
			scratch: NewScratch(e.m, GradShardRows),
			dy:      make([]float64, GradShardRows*e.out),
			grads:   NewGrads(e.m),
		}
		e.lanes[i] = ln
	}
	return ln
}

// Accumulate runs forward, scoring, and backward for one micro-batch x of
// shape [b][In], adding its gradient into the engine's lane partials. The
// input is consumed before Accumulate returns (workers read it but never
// write), so the caller may reuse x immediately. Nothing is applied to
// the network until Reduce.
func (e *DataParallel) Accumulate(x []float64, b int, score ScoreFunc) {
	in := e.m.Layers[0].In
	if b <= 0 {
		panic(fmt.Sprintf("nn: accumulate batch %d must be positive", b))
	}
	if len(x) != b*in {
		panic(fmt.Sprintf("nn: accumulate input size %d, want %d×%d", len(x), b, in))
	}
	n := (b + GradShardRows - 1) / GradShardRows
	base := e.shards
	// Work item k ∈ [0, active) owns lane (base+k) mod MaxGradLanes and
	// processes, in ascending order, every local shard j ≡ k (mod
	// MaxGradLanes). Lane ownership is exclusive within this call, so
	// each lane's partial grows in shard order no matter which goroutine
	// runs it — or whether any goroutines run at all.
	active := n
	if active > MaxGradLanes {
		active = MaxGradLanes
	}
	run := func(k int) {
		laneIdx := (base + k) % MaxGradLanes
		ln := e.lane(laneIdx)
		for j := k; j < n; j += MaxGradLanes {
			r0 := j * GradShardRows
			r1 := r0 + GradShardRows
			if r1 > b {
				r1 = b
			}
			rows := r1 - r0
			y := e.m.batchForward(x[r0*in:r1*in], rows, ln.scratch, true)
			dy := ln.dy[:rows*e.out]
			score(laneIdx, y, r0, r1, dy)
			// The first shard of a lane accumulates straight into the
			// (zeroed) lane partial; later shards are computed into a
			// zeroed side buffer and folded in with one rounded add per
			// element — the canonical reduction order.
			tgt := ln.grads
			if ln.dirty {
				if ln.shard == nil {
					ln.shard = NewGrads(e.m)
				} else {
					ln.shard.Zero()
				}
				tgt = ln.shard
			}
			e.m.batchBackward(dy, rows, ln.scratch, tgt, true)
			if ln.dirty {
				ln.grads.Add(ln.shard)
			} else {
				ln.dirty = true
			}
		}
	}
	workers := e.workers
	if workers > active {
		workers = active
	}
	if workers <= 1 {
		for k := 0; k < active; k++ {
			run(k)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= active {
						return
					}
					run(k)
				}
			}()
		}
		wg.Wait()
	}
	e.shards += n
}

// Reduce folds the lane partials into the network's GW/GB by the fixed
// pairwise tree over lanes [0, used) and resets the engine for the next
// macro-batch. It is a no-op if nothing was accumulated. The network's
// gradient buffers are expected to be zero on entry (optimizer Steps end
// with ZeroGrads), so after Reduce they hold exactly the reduced sum.
func (e *DataParallel) Reduce() {
	used := e.shards
	if used > MaxGradLanes {
		used = MaxGradLanes
	}
	if used == 0 {
		return
	}
	// The shard counter resets every Reduce, so the dirty lanes are
	// exactly [0, used).
	var parts [MaxGradLanes]*Grads
	for i := 0; i < used; i++ {
		parts[i] = e.lanes[i].grads
	}
	TreeReduce(parts[:used])
	e.m.GradView().Add(parts[0])
	for i := 0; i < used; i++ {
		e.lanes[i].grads.Zero()
		e.lanes[i].dirty = false
	}
	e.shards = 0
}
