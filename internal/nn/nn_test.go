package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivations(t *testing.T) {
	if ReLU.apply(-3) != 0 || ReLU.apply(2) != 2 {
		t.Error("ReLU wrong")
	}
	if s := Sigmoid.apply(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if Identity.apply(7) != 7 {
		t.Error("Identity wrong")
	}
	// Derivative-from-output identities.
	if ReLU.derivFromOutput(0) != 0 || ReLU.derivFromOutput(5) != 1 {
		t.Error("ReLU derivative wrong")
	}
	y := Sigmoid.apply(1.3)
	if d := Sigmoid.derivFromOutput(y); math.Abs(d-y*(1-y)) > 1e-12 {
		t.Errorf("Sigmoid derivative %v", d)
	}
}

func TestDenseForwardExact(t *testing.T) {
	d := &Dense{In: 2, Out: 1, Act: Identity,
		W: []float64{2, 3}, B: []float64{1},
		GW: make([]float64, 2), GB: make([]float64, 1)}
	y := d.Forward([]float64{4, 5})
	if y[0] != 2*4+3*5+1 {
		t.Errorf("forward = %v", y[0])
	}
}

// numericGrad estimates dL/dθ by central differences for loss L(net(x)).
func numericGrad(net *MLP, x []float64, loss func([]float64) float64, param []float64, i int) float64 {
	const h = 1e-6
	orig := param[i]
	param[i] = orig + h
	lp := loss(net.Forward(x))
	param[i] = orig - h
	lm := loss(net.Forward(x))
	param[i] = orig
	return (lp - lm) / (2 * h)
}

func TestBackpropMatchesNumericGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewMLP([]int{3, 5, 4, 2}, ReLU, Sigmoid, rng)
	x := []float64{0.3, -0.7, 1.1}
	target := []float64{0.2, 0.9}
	loss := func(y []float64) float64 {
		s := 0.0
		for i := range y {
			d := y[i] - target[i]
			s += 0.5 * d * d
		}
		return s
	}
	y := net.Forward(x)
	dOut := make([]float64, len(y))
	for i := range y {
		dOut[i] = y[i] - target[i]
	}
	net.ZeroGrads()
	net.Backward(dOut)

	checked := 0
	for li, l := range net.Layers {
		for _, idx := range []int{0, len(l.W) / 2, len(l.W) - 1} {
			want := numericGrad(net, x, loss, l.W, idx)
			got := l.GW[idx]
			if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("layer %d W[%d]: analytic %v numeric %v", li, idx, got, want)
			}
			checked++
		}
		want := numericGrad(net, x, loss, l.B, 0)
		if got := l.GB[0]; math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("layer %d B[0]: analytic %v numeric %v", li, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestBackwardInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP([]int{4, 6, 3}, ReLU, Identity, rng)
	x := []float64{0.1, 0.2, -0.3, 0.4}
	sumLoss := func(y []float64) float64 {
		s := 0.0
		for _, v := range y {
			s += v
		}
		return s
	}
	_ = net.Forward(x)
	dOut := []float64{1, 1, 1}
	dx := net.Backward(dOut)
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += h
		xm := append([]float64(nil), x...)
		xm[i] -= h
		want := (sumLoss(net.Forward(xp)) - sumLoss(net.Forward(xm))) / (2 * h)
		if math.Abs(dx[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("dx[%d]: analytic %v numeric %v", i, dx[i], want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// A layer big enough to trigger the parallel path must match a small
	// equivalent computation.
	rng := rand.New(rand.NewSource(3))
	in, out := 400, 256 // 102400 > parallelThreshold
	d := NewDense(in, out, Identity, rng)
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := append([]float64(nil), d.Forward(x)...)
	for o := 0; o < out; o += 37 {
		want := d.B[o]
		for i := 0; i < in; i++ {
			want += d.W[o*in+i] * x[i]
		}
		if math.Abs(y[o]-want) > 1e-9 {
			t.Fatalf("parallel forward row %d: %v vs %v", o, y[o], want)
		}
	}
	// Parallel backward gradient check on a few entries.
	dy := make([]float64, out)
	for i := range dy {
		dy[i] = rng.NormFloat64()
	}
	d.ZeroGrads()
	dx := d.Backward(dy)
	for _, i := range []int{0, 100, in - 1} {
		want := 0.0
		for o := 0; o < out; o++ {
			want += dy[o] * d.W[o*in+i]
		}
		if math.Abs(dx[i]-want) > 1e-9 {
			t.Fatalf("parallel backward dx[%d]: %v vs %v", i, dx[i], want)
		}
	}
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// Fit y = sigmoid(2x1 - x2) with a small net; loss must fall sharply.
	rng := rand.New(rand.NewSource(4))
	net := NewMLP([]int{2, 16, 1}, ReLU, Sigmoid, rng)
	opt := NewAdam(0.01)
	sample := func() ([]float64, float64) {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		return x, 1 / (1 + math.Exp(-(2*x[0] - x[1])))
	}
	avgLoss := func() float64 {
		s := 0.0
		r2 := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			x := []float64{r2.NormFloat64(), r2.NormFloat64()}
			want := 1 / (1 + math.Exp(-(2*x[0] - x[1])))
			y := net.Forward(x)[0]
			s += (y - want) * (y - want)
		}
		return s / 200
	}
	before := avgLoss()
	for it := 0; it < 2000; it++ {
		x, want := sample()
		y := net.Forward(x)
		net.Backward([]float64{y[0] - want})
		opt.Step(net)
	}
	after := avgLoss()
	if after > before/10 {
		t.Errorf("Adam failed to converge: %v -> %v", before, after)
	}
	if after > 0.001 {
		t.Errorf("final loss too high: %v", after)
	}
}

func TestSGDStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP([]int{1, 1}, Identity, Identity, rng)
	l := net.Layers[0]
	l.W[0], l.B[0] = 1, 0
	y := net.Forward([]float64{2})
	_ = y
	net.Backward([]float64{1}) // dL/dy = 1 -> dW = x = 2, dB = 1
	SGD{LR: 0.1}.Step(net)
	if math.Abs(l.W[0]-0.8) > 1e-12 || math.Abs(l.B[0]+0.1) > 1e-12 {
		t.Errorf("SGD update: W=%v B=%v", l.W[0], l.B[0])
	}
	if l.GW[0] != 0 || l.GB[0] != 0 {
		t.Error("grads not cleared after step")
	}
}

func TestMLPJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP([]int{3, 7, 2}, ReLU, Sigmoid, rng)
	x := []float64{0.5, -0.5, 1}
	want := append([]float64(nil), net.Forward(x)...)
	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Forward(x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round-trip output differs: %v vs %v", got, want)
		}
	}
	// Malformed JSON rejected.
	var bad MLP
	if err := json.Unmarshal([]byte(`{"sizes":[2],"acts":[],"w":[],"b":[]}`), &bad); err == nil {
		t.Error("malformed MLP accepted")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP([]int{4, 8, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(7)))
	b := NewMLP([]int{4, 8, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(7)))
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestNumParams(t *testing.T) {
	net := NewMLP([]int{3, 5, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(8)))
	want := 3*5 + 5 + 5*2 + 2
	if net.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", net.NumParams(), want)
	}
}

func TestPaperMLPShape(t *testing.T) {
	net := PaperMLP(10, 4, rand.New(rand.NewSource(9)))
	if len(net.Layers) != 6 {
		t.Fatalf("layers = %d, want 6", len(net.Layers))
	}
	for i, l := range net.Layers[:5] {
		if l.Out != 128 || l.Act != ReLU {
			t.Errorf("hidden layer %d: out=%d act=%v", i, l.Out, l.Act)
		}
	}
	outL := net.Layers[5]
	if outL.Out != 4 || outL.Act != Sigmoid {
		t.Errorf("output layer: out=%d act=%v", outL.Out, outL.Act)
	}
	y := net.Forward(make([]float64, 10))
	for _, v := range y {
		if v <= 0 || v >= 1 {
			t.Errorf("sigmoid output %v out of (0,1)", v)
		}
	}
}

// Property: sigmoid outputs always lie in [0,1] for any finite input
// (saturation to exactly 0 or 1 is possible in float64 for extreme
// pre-activations and is acceptable: Normalize repairs all-zero pairs).
func TestSigmoidRangeProperty(t *testing.T) {
	net := PaperMLP(6, 3, rand.New(rand.NewSource(10)))
	f := func(a, b, c, d, e, g float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		x := []float64{clamp(a), clamp(b), clamp(c), clamp(d), clamp(e), clamp(g)}
		for _, v := range net.Forward(x) {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDense(0, 1, ReLU, rand.New(rand.NewSource(1))) },
		func() { NewMLP([]int{3}, ReLU, Sigmoid, rand.New(rand.NewSource(1))) },
		func() { NewAdam(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
