package nn

import (
	"fmt"
	"runtime"
)

// This file implements the batched minibatch engine (DESIGN.md §3): a
// minibatch is a row-major [B][In] matrix, and Forward/Backward become
// blocked GEMM-style products. Every per-(sample, output) dot product
// accumulates in exactly the order of dot(), so a batch of B samples is
// bitwise identical to B sequential single-sample calls; the speedup comes
// from register blocking (four independent accumulator chains instead of
// one latency-bound chain), cache blocking (each weight row is reused
// across the batch rows of a tile), and the complete absence of per-step
// allocations once a Scratch has been built.

// Tile sizes for the blocked kernels: a tile spans up to tileRows batch
// rows × tileOuts output rows. Tiles keep the batch-row block of the input
// resident in cache while a block of weight rows streams through, and they
// are the sharding unit for parallelFor on multi-core machines.
const (
	tileRows = 16
	tileOuts = 64
)

// Scratch holds every intermediate buffer a batched forward/backward pass
// over an MLP needs: per-layer activation matrices and gradient matrices,
// all row-major [B][width]. A Scratch is built once per training loop
// (NewScratch), reused for every minibatch, and eliminates all per-step
// allocations — including the dL/dx buffer the pre-batching Backward
// allocated on every call. It is tied to the layer shapes of the MLP it
// was built for and supports any batch size up to its capacity.
//
// A Scratch is not safe for concurrent use; use one per training goroutine.
type Scratch struct {
	batch int         // capacity in batch rows
	sizes []int       // layer widths: sizes[0] = input, sizes[i+1] = Layers[i].Out
	acts  [][]float64 // acts[i]: input to layer i (acts[0] is an owned copy of the minibatch)
	grads [][]float64 // grads[i]: dL/d acts[i]
}

// NewScratch allocates a scratch sized for minibatches of up to batch rows
// through m. The total footprint is batch × Σ layer widths × 2 float64s.
func NewScratch(m *MLP, batch int) *Scratch {
	if batch <= 0 {
		panic(fmt.Sprintf("nn: scratch batch %d must be positive", batch))
	}
	if len(m.Layers) == 0 {
		panic("nn: scratch for empty MLP")
	}
	s := &Scratch{
		batch: batch,
		sizes: make([]int, len(m.Layers)+1),
		acts:  make([][]float64, len(m.Layers)+1),
		grads: make([][]float64, len(m.Layers)+1),
	}
	s.sizes[0] = m.Layers[0].In
	for i, l := range m.Layers {
		s.sizes[i+1] = l.Out
	}
	for i, w := range s.sizes {
		s.acts[i] = make([]float64, batch*w)
		s.grads[i] = make([]float64, batch*w)
	}
	return s
}

// Batch returns the scratch's batch-row capacity.
func (s *Scratch) Batch() int { return s.batch }

func (s *Scratch) check(m *MLP, b int) {
	if b <= 0 || b > s.batch {
		panic(fmt.Sprintf("nn: batch %d outside scratch capacity %d", b, s.batch))
	}
	if len(s.sizes) != len(m.Layers)+1 {
		panic("nn: scratch built for a different architecture")
	}
	if s.sizes[0] != m.Layers[0].In || s.sizes[len(s.sizes)-1] != m.Layers[len(m.Layers)-1].Out {
		panic("nn: scratch built for a different architecture")
	}
}

// BatchForward runs the network on a row-major minibatch x of shape
// [b][In], caching per-layer activations in s for BatchBackward. x is
// copied into an owned buffer, so the caller may reuse it immediately. The
// returned [b][Out] matrix is owned by s and valid until the next call.
func (m *MLP) BatchForward(x []float64, b int, s *Scratch) []float64 {
	return m.batchForward(x, b, s, false)
}

// batchForward is BatchForward with a serial switch: serial forces the
// per-layer kernels single-threaded, which the data-parallel engine uses
// so its worker goroutines never nest another parallelFor.
func (m *MLP) batchForward(x []float64, b int, s *Scratch, serial bool) []float64 {
	s.check(m, b)
	in := s.sizes[0]
	if len(x) != b*in {
		panic(fmt.Sprintf("nn: batch input size %d, want %d×%d", len(x), b, in))
	}
	copy(s.acts[0][:b*in], x)
	for i, l := range m.Layers {
		l.batchForward(s.acts[i][:b*l.In], s.acts[i+1][:b*l.Out], b, serial)
	}
	return s.acts[len(m.Layers)][:b*s.sizes[len(s.sizes)-1]]
}

// BatchBackward propagates dL/d(output) for the minibatch of the preceding
// BatchForward, accumulating parameter gradients exactly as b sequential
// Backward calls would (bitwise-identical sums, samples in row order). It
// returns dL/d(input), owned by s. dOut is not modified.
func (m *MLP) BatchBackward(dOut []float64, b int, s *Scratch) []float64 {
	return m.batchBackward(dOut, b, s, nil, false)
}

// batchBackward is BatchBackward with two extensions for the data-parallel
// engine: g selects an alternate gradient-accumulation target (nil means
// the network's own GW/GB), and serial forces single-threaded kernels.
// Tensor i of g pairs with VisitParams order: g.t[2i] = layer i weights,
// g.t[2i+1] = layer i biases.
func (m *MLP) batchBackward(dOut []float64, b int, s *Scratch, g *Grads, serial bool) []float64 {
	s.check(m, b)
	L := len(m.Layers)
	out := s.sizes[L]
	if len(dOut) != b*out {
		panic(fmt.Sprintf("nn: batch grad size %d, want %d×%d", len(dOut), b, out))
	}
	copy(s.grads[L][:b*out], dOut)
	for i := L - 1; i >= 0; i-- {
		l := m.Layers[i]
		gw, gb := l.GW, l.GB
		if g != nil {
			gw, gb = g.t[2*i], g.t[2*i+1]
		}
		l.batchBackward(s.acts[i][:b*l.In], s.acts[i+1][:b*l.Out],
			s.grads[i+1][:b*l.Out], s.grads[i][:b*l.In], gw, gb, b, serial)
	}
	return s.grads[0][:b*s.sizes[0]]
}

// BatchForward computes y = act(x·Wᵀ + bias) for a row-major batch x of
// shape [b][In] into y of shape [b][Out]. It retains no references to its
// arguments. Equivalent to b Forward calls, bitwise.
func (d *Dense) BatchForward(x, y []float64, b int) {
	d.batchForward(x, y, b, false)
}

func (d *Dense) batchForward(x, y []float64, b int, serial bool) {
	if len(x) != b*d.In {
		panic(fmt.Sprintf("nn: batch input size %d, want %d×%d", len(x), b, d.In))
	}
	if len(y) != b*d.Out {
		panic(fmt.Sprintf("nn: batch output size %d, want %d×%d", len(y), b, d.Out))
	}
	if b*d.In*d.Out < parallelThreshold {
		d.forwardBlock(x, y, 0, b, 0, d.Out)
		return
	}
	if serial || runtime.GOMAXPROCS(0) <= 1 {
		// Serial but still tiled for cache; no closure allocations.
		for b0 := 0; b0 < b; b0 += tileRows {
			b1 := min(b0+tileRows, b)
			for o0 := 0; o0 < d.Out; o0 += tileOuts {
				d.forwardBlock(x, y, b0, b1, o0, min(o0+tileOuts, d.Out))
			}
		}
		return
	}
	nb := (b + tileRows - 1) / tileRows
	no := (d.Out + tileOuts - 1) / tileOuts
	parallelFor(nb*no, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			b0 := (t / no) * tileRows
			o0 := (t % no) * tileOuts
			d.forwardBlock(x, y, b0, min(b0+tileRows, b), o0, min(o0+tileOuts, d.Out))
		}
	})
}

// forwardBlock fills y for batch rows [b0,b1) × output rows [o0,o1) using
// 2×2 register blocking: four dot-product chains run concurrently, each
// accumulating in dot()'s exact order.
func (d *Dense) forwardBlock(x, y []float64, b0, b1, o0, o1 int) {
	in, out := d.In, d.Out
	o := o0
	for ; o+2 <= o1; o += 2 {
		w0 := d.W[o*in : o*in+in]
		w1 := d.W[(o+1)*in : (o+1)*in+in]
		c0, c1 := d.B[o], d.B[o+1]
		bi := b0
		for ; bi+2 <= b1; bi += 2 {
			x0 := x[bi*in : bi*in+in]
			x1 := x[(bi+1)*in : (bi+1)*in+in]
			s00, s01, s10, s11 := dot2x2(w0, w1, x0, x1)
			y[bi*out+o] = d.Act.apply(s00 + c0)
			y[bi*out+o+1] = d.Act.apply(s10 + c1)
			y[(bi+1)*out+o] = d.Act.apply(s01 + c0)
			y[(bi+1)*out+o+1] = d.Act.apply(s11 + c1)
		}
		if bi < b1 {
			x0 := x[bi*in : bi*in+in]
			y[bi*out+o] = d.Act.apply(dot(w0, x0) + c0)
			y[bi*out+o+1] = d.Act.apply(dot(w1, x0) + c1)
		}
	}
	if o < o1 {
		w0 := d.W[o*in : o*in+in]
		c0 := d.B[o]
		for bi := b0; bi < b1; bi++ {
			y[bi*out+o] = d.Act.apply(dot(w0, x[bi*in:bi*in+in]) + c0)
		}
	}
}

// BatchBackward consumes dy = dL/dy of shape [b][Out] for the minibatch
// whose forward pass saw inputs x and produced outputs y. It accumulates
// dL/dW and dL/dB into GW, GB and writes dL/dx into dx ([b][In]). dy is
// clobbered (overwritten with the post-activation deltas). Gradient sums
// are bitwise identical to b sequential Backward calls in row order.
func (d *Dense) BatchBackward(x, y, dy, dx []float64, b int) {
	d.batchBackward(x, y, dy, dx, d.GW, d.GB, b, false)
}

// batchBackward is BatchBackward with an explicit gradient target (gw, gb)
// — the data-parallel engine points it at per-worker shard buffers — and a
// serial switch that keeps worker goroutines from nesting parallelFor.
func (d *Dense) batchBackward(x, y, dy, dx, gw, gb []float64, b int, forceSerial bool) {
	if len(x) != b*d.In || len(y) != b*d.Out || len(dy) != b*d.Out || len(dx) != b*d.In {
		panic(fmt.Sprintf("nn: batch backward shapes x=%d y=%d dy=%d dx=%d for b=%d (%d×%d layer)",
			len(x), len(y), len(dy), len(dx), b, d.In, d.Out))
	}
	if len(gw) != d.Out*d.In || len(gb) != d.Out {
		panic(fmt.Sprintf("nn: batch backward grad target gw=%d gb=%d for %d×%d layer",
			len(gw), len(gb), d.In, d.Out))
	}
	serial := forceSerial || b*d.In*d.Out < parallelThreshold || runtime.GOMAXPROCS(0) <= 1
	// Pass 1 — deltas and parameter gradients, sharded over output rows so
	// every gw row and gb entry has a single writer. Within a row, samples
	// accumulate in batch order, matching sequential execution.
	if serial {
		d.backwardGradBlock(x, y, dy, gw, gb, 0, d.Out, b)
	} else {
		parallelFor((d.Out+tileOuts-1)/tileOuts, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				o0 := t * tileOuts
				d.backwardGradBlock(x, y, dy, gw, gb, o0, min(o0+tileOuts, d.Out), b)
			}
		})
	}
	// Pass 2 — dL/dx, sharded over batch rows so every dx row has a single
	// writer. Within a row, output rows accumulate in ascending order,
	// matching sequential execution.
	if serial {
		d.backwardInputBlock(dy, dx, 0, b)
	} else {
		parallelFor((b+tileRows-1)/tileRows, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				b0 := t * tileRows
				d.backwardInputBlock(dy, dx, b0, min(b0+tileRows, b))
			}
		})
	}
}

// backwardGradBlock handles pass 1 for output rows [o0,o1): it rewrites
// dy entries as post-activation deltas g = dy·σ′(y) and accumulates into
// the bias-gradient target gbuf and the rank-b weight-gradient row updates
// of gwbuf, two batch rows per sweep.
func (d *Dense) backwardGradBlock(x, y, dy, gwbuf, gbuf []float64, o0, o1, b int) {
	in, out := d.In, d.Out
	for o := o0; o < o1; o++ {
		grow := gwbuf[o*in : o*in+in]
		gb := gbuf[o]
		bi := 0
		for ; bi+2 <= b; bi += 2 {
			g0 := dy[bi*out+o] * d.Act.derivFromOutput(y[bi*out+o])
			g1 := dy[(bi+1)*out+o] * d.Act.derivFromOutput(y[(bi+1)*out+o])
			dy[bi*out+o] = g0
			dy[(bi+1)*out+o] = g1
			if g0 != 0 {
				gb += g0
			}
			if g1 != 0 {
				gb += g1
			}
			switch {
			case g0 != 0 && g1 != 0:
				axpy2(grow, x[bi*in:bi*in+in], x[(bi+1)*in:(bi+1)*in+in], g0, g1)
			case g0 != 0:
				axpy(grow, x[bi*in:bi*in+in], g0)
			case g1 != 0:
				axpy(grow, x[(bi+1)*in:(bi+1)*in+in], g1)
			}
		}
		if bi < b {
			g := dy[bi*out+o] * d.Act.derivFromOutput(y[bi*out+o])
			dy[bi*out+o] = g
			if g != 0 {
				gb += g
				axpy(grow, x[bi*in:bi*in+in], g)
			}
		}
		gbuf[o] = gb
	}
}

// backwardInputBlock handles pass 2 for batch rows [b0,b1): dx[bi] =
// Σ_o g[bi][o]·W[o], output rows applied in ascending order, two per sweep.
func (d *Dense) backwardInputBlock(dy, dx []float64, b0, b1 int) {
	in, out := d.In, d.Out
	for bi := b0; bi < b1; bi++ {
		dxrow := dx[bi*in : bi*in+in]
		for i := range dxrow {
			dxrow[i] = 0
		}
		o := 0
		for ; o+2 <= out; o += 2 {
			g0 := dy[bi*out+o]
			g1 := dy[bi*out+o+1]
			switch {
			case g0 != 0 && g1 != 0:
				axpy2(dxrow, d.W[o*in:o*in+in], d.W[(o+1)*in:(o+1)*in+in], g0, g1)
			case g0 != 0:
				axpy(dxrow, d.W[o*in:o*in+in], g0)
			case g1 != 0:
				axpy(dxrow, d.W[(o+1)*in:(o+1)*in+in], g1)
			}
		}
		if o < out {
			if g := dy[bi*out+o]; g != 0 {
				axpy(dxrow, d.W[o*in:o*in+in], g)
			}
		}
	}
}

// dot2x2 computes the four dot products {w0,w1}·{x0,x1}. Each of the four
// accumulators follows dot()'s 4-wide grouping, so every result is bitwise
// identical to the corresponding dot(w, x) — but the four chains are
// independent, hiding floating-point add latency. Reslicing every operand
// to n lets the compiler prove all indices in-bounds (zero bounds checks
// in the loops; verify with go build -gcflags=-d=ssa/check_bce).
func dot2x2(w0, w1, x0, x1 []float64) (s00, s01, s10, s11 float64) {
	n := len(w0)
	w1 = w1[:n]
	x0 = x0[:n]
	x1 = x1[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, a1, a2, a3 := w0[i], w0[i+1], w0[i+2], w0[i+3]
		b0, b1, b2, b3 := w1[i], w1[i+1], w1[i+2], w1[i+3]
		p0, p1, p2, p3 := x0[i], x0[i+1], x0[i+2], x0[i+3]
		q0, q1, q2, q3 := x1[i], x1[i+1], x1[i+2], x1[i+3]
		s00 += a0*p0 + a1*p1 + a2*p2 + a3*p3
		s01 += a0*q0 + a1*q1 + a2*q2 + a3*q3
		s10 += b0*p0 + b1*p1 + b2*p2 + b3*p3
		s11 += b0*q0 + b1*q1 + b2*q2 + b3*q3
	}
	for ; i < n; i++ {
		a, b2, p, q := w0[i], w1[i], x0[i], x1[i]
		s00 += a * p
		s01 += a * q
		s10 += b2 * p
		s11 += b2 * q
	}
	return
}

// axpy computes dst[i] += a·src[i], 4-way unrolled. Element updates are
// independent, so unrolling cannot change results. src is resliced to
// len(dst) so both loops run bounds-check-free.
func axpy(dst, src []float64, a float64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// axpy2 computes dst[i] += a·u[i]; dst[i] += b·v[i] as two separate adds
// per element (preserving sequential rounding) while loading and storing
// dst only once. u and v are resliced to len(dst) so both loops run
// bounds-check-free.
func axpy2(dst, u, v []float64, a, b float64) {
	n := len(dst)
	u = u[:n]
	v = v[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		t0 := dst[i] + a*u[i]
		t1 := dst[i+1] + a*u[i+1]
		t2 := dst[i+2] + a*u[i+2]
		t3 := dst[i+3] + a*u[i+3]
		dst[i] = t0 + b*v[i]
		dst[i+1] = t1 + b*v[i+1]
		dst[i+2] = t2 + b*v[i+2]
		dst[i+3] = t3 + b*v[i+3]
	}
	for ; i < n; i++ {
		t := dst[i] + a*u[i]
		dst[i] = t + b*v[i]
	}
}
