// Package nn is a small, dependency-free neural-network library sufficient
// to reproduce the FIGRET/DOTE models: fully connected layers with manual
// backpropagation, ReLU/Sigmoid activations, He/Xavier initialization, and
// the Adam optimizer. It substitutes for PyTorch in the original artifact
// (see DESIGN.md §2); everything is float64 and deterministic given a seed.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Activation selects the nonlinearity applied after a Dense layer.
type Activation int

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// ReLU applies max(0, x).
	ReLU
	// Sigmoid applies 1/(1+e^-x).
	Sigmoid
)

func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed through the activation output y.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Dense is a fully connected layer y = act(Wx + b) with weight matrix W of
// shape [Out][In] stored row-major.
type Dense struct {
	In, Out int
	Act     Activation
	W       []float64 // len Out*In
	B       []float64 // len Out

	// Gradients accumulated by Backward.
	GW []float64
	GB []float64

	// Cached forward state for backprop (single-sample path). x is an
	// owned copy of the input: callers may reuse their input buffer
	// between Forward and Backward without corrupting gradients.
	x  []float64 // owned copy of input
	y  []float64 // post-activation output
	g  []float64 // owned copy of dL/dy (clobbered by the batch kernel)
	dx []float64 // reusable dL/dx buffer
}

// NewDense returns a Dense layer initialized with He initialization (scaled
// for ReLU) or Xavier for other activations, using rng for determinism.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %dx%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  make([]float64, out*in),
		B:  make([]float64, out),
		GW: make([]float64, out*in),
		GB: make([]float64, out),
	}
	var scale float64
	if act == ReLU {
		scale = math.Sqrt(2 / float64(in)) // He
	} else {
		scale = math.Sqrt(1 / float64(in)) // Xavier-ish
	}
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// parallelThreshold is the work size above which Forward/Backward shard
// across goroutines. Chosen so small nets stay single-threaded.
const parallelThreshold = 1 << 16

// Forward computes the layer output for x, caching state for Backward. It
// is a thin wrapper over BatchForward with batch size 1: x is copied into
// an owned buffer, so the caller may reuse its input buffer between
// Forward and Backward. The returned slice is owned by the layer and valid
// until the next call.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), d.In))
	}
	if d.x == nil {
		d.x = make([]float64, d.In)
		d.y = make([]float64, d.Out)
	}
	copy(d.x, x)
	d.BatchForward(d.x, d.y, 1)
	return d.y
}

// Backward takes dL/dy (post-activation) and accumulates dL/dW, dL/dB into
// GW, GB; it returns dL/dx. It is a thin wrapper over BatchBackward with
// batch size 1; dy is not modified, and the returned slice is owned by the
// layer (reused across calls — no per-step allocation).
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: grad size %d, want %d", len(dy), d.Out))
	}
	if d.g == nil {
		d.g = make([]float64, d.Out)
		d.dx = make([]float64, d.In)
	}
	copy(d.g, dy)
	d.BatchBackward(d.x, d.y, d.g, d.dx, 1)
	return d.dx
}

// ZeroGrads clears accumulated gradients.
func (d *Dense) ZeroGrads() {
	for i := range d.GW {
		d.GW[i] = 0
	}
	for i := range d.GB {
		d.GB[i] = 0
	}
}

func dot(a, b []float64) float64 {
	var s float64
	n := len(a)
	// 4-way unrolled; reslicing b to n makes both loops bounds-check-free.
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func parallelFor(n int, f func(lo, hi int)) {
	nsh := runtime.GOMAXPROCS(0)
	if nsh > n {
		nsh = n
	}
	if nsh <= 1 {
		f(0, n)
		return
	}
	chunk := (n + nsh - 1) / nsh
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MLP is a feed-forward stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes (len >= 2): hidden layers
// use hiddenAct, the output layer uses outAct. The paper's architecture is
// sizes = [input, 128, 128, 128, 128, 128, output], hiddenAct = ReLU,
// outAct = Sigmoid (Appendix D.4).
func NewMLP(sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// PaperMLP builds the exact FIGRET/DOTE architecture: five hidden layers of
// 128 ReLU units and a Sigmoid output layer.
func PaperMLP(in, out int, rng *rand.Rand) *MLP {
	return NewMLP([]int{in, 128, 128, 128, 128, 128, out}, ReLU, Sigmoid, rng)
}

// Forward runs the network on a single input vector.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/d(output) through the network, accumulating
// parameter gradients; it returns dL/d(input).
func (m *MLP) Backward(dOut []float64) []float64 {
	g := dOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
	return g
}

// ZeroGrads clears all accumulated gradients.
func (m *MLP) ZeroGrads() {
	for _, l := range m.Layers {
		l.ZeroGrads()
	}
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// VisitParams calls f once per (params, grads) tensor pair; used by
// optimizers to avoid copying.
func (m *MLP) VisitParams(f func(params, grads []float64)) {
	for _, l := range m.Layers {
		f(l.W, l.GW)
		f(l.B, l.GB)
	}
}

// mlpJSON is the serialization schema.
type mlpJSON struct {
	Sizes []int        `json:"sizes"`
	Acts  []Activation `json:"acts"`
	W     [][]float64  `json:"w"`
	B     [][]float64  `json:"b"`
}

// MarshalJSON serializes architecture and weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	j := mlpJSON{}
	for i, l := range m.Layers {
		if i == 0 {
			j.Sizes = append(j.Sizes, l.In)
		}
		j.Sizes = append(j.Sizes, l.Out)
		j.Acts = append(j.Acts, l.Act)
		j.W = append(j.W, l.W)
		j.B = append(j.B, l.B)
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores architecture and weights.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 || len(j.W) != len(j.Sizes)-1 || len(j.Acts) != len(j.W) || len(j.B) != len(j.W) {
		return fmt.Errorf("nn: malformed MLP JSON")
	}
	m.Layers = nil
	for i := 0; i+1 < len(j.Sizes); i++ {
		in, out := j.Sizes[i], j.Sizes[i+1]
		if len(j.W[i]) != in*out || len(j.B[i]) != out {
			return fmt.Errorf("nn: layer %d weight shape mismatch", i)
		}
		d := &Dense{
			In: in, Out: out, Act: j.Acts[i],
			W: j.W[i], B: j.B[i],
			GW: make([]float64, in*out),
			GB: make([]float64, out),
		}
		m.Layers = append(m.Layers, d)
	}
	return nil
}
