package nn

import (
	"math"
	"math/rand"
	"testing"
)

// randVec fills a fresh vector with standard normals.
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// cloneNet deep-copies an MLP (weights only; gradients start zeroed).
func cloneNet(m *MLP) *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W:  append([]float64(nil), l.W...),
			B:  append([]float64(nil), l.B...),
			GW: make([]float64, len(l.GW)),
			GB: make([]float64, len(l.GB)),
		})
	}
	return c
}

func TestBatchForwardMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes chosen so hidden layers cross parallelThreshold at B=8 and the
	// tiled path (including odd remainder rows) is exercised.
	net := NewMLP([]int{37, 129, 64, 5}, ReLU, Sigmoid, rng)
	const B = 9
	x := randVec(rng, B*37)
	s := NewScratch(net, B)
	got := net.BatchForward(x, B, s)
	for b := 0; b < B; b++ {
		want := net.Forward(x[b*37 : (b+1)*37])
		for o := range want {
			if got[b*5+o] != want[o] {
				t.Fatalf("sample %d output %d: batch %v, sequential %v", b, o, got[b*5+o], want[o])
			}
		}
	}
}

func TestBatchBackwardMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP([]int{23, 130, 67, 4}, ReLU, Sigmoid, rng)
	ref := cloneNet(net)
	const B = 11
	x := randVec(rng, B*23)
	dOut := randVec(rng, B*4)

	// Reference: B sequential forward/backward calls accumulating grads.
	dxWant := make([][]float64, B)
	for b := 0; b < B; b++ {
		ref.Forward(x[b*23 : (b+1)*23])
		dxWant[b] = append([]float64(nil), ref.Backward(dOut[b*4:(b+1)*4])...)
	}

	s := NewScratch(net, B)
	net.BatchForward(x, B, s)
	dx := net.BatchBackward(dOut, B, s)

	// Gradient accumulation must be bitwise identical to the sequential
	// sample-order sums.
	for li := range net.Layers {
		for i, g := range net.Layers[li].GW {
			if g != ref.Layers[li].GW[i] {
				t.Fatalf("layer %d GW[%d]: batch %v, sequential %v", li, i, g, ref.Layers[li].GW[i])
			}
		}
		for i, g := range net.Layers[li].GB {
			if g != ref.Layers[li].GB[i] {
				t.Fatalf("layer %d GB[%d]: batch %v, sequential %v", li, i, g, ref.Layers[li].GB[i])
			}
		}
	}
	for b := 0; b < B; b++ {
		for i, v := range dxWant[b] {
			if dx[b*23+i] != v {
				t.Fatalf("sample %d dx[%d]: batch %v, sequential %v", b, i, dx[b*23+i], v)
			}
		}
	}
}

func TestBatchBackwardFiniteDifference(t *testing.T) {
	// One layer, batch loss L = Σ_b ½‖y_b − t_b‖²: analytic batch gradient
	// must match central differences.
	rng := rand.New(rand.NewSource(3))
	d := NewDense(7, 5, Sigmoid, rng)
	const B = 6
	x := randVec(rng, B*7)
	target := randVec(rng, B*5)
	y := make([]float64, B*5)
	dy := make([]float64, B*5)
	dx := make([]float64, B*7)

	loss := func() float64 {
		d.BatchForward(x, y, B)
		s := 0.0
		for i := range y {
			diff := y[i] - target[i]
			s += 0.5 * diff * diff
		}
		return s
	}
	loss()
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	d.ZeroGrads()
	d.BatchBackward(x, y, dy, dx, B)

	const h = 1e-6
	for _, idx := range []int{0, 3, 17, len(d.W) - 1} {
		orig := d.W[idx]
		d.W[idx] = orig + h
		lp := loss()
		d.W[idx] = orig - h
		lm := loss()
		d.W[idx] = orig
		want := (lp - lm) / (2 * h)
		if got := d.GW[idx]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("GW[%d]: analytic %v, numeric %v", idx, got, want)
		}
	}
	for _, idx := range []int{0, len(d.B) - 1} {
		orig := d.B[idx]
		d.B[idx] = orig + h
		lp := loss()
		d.B[idx] = orig - h
		lm := loss()
		d.B[idx] = orig
		want := (lp - lm) / (2 * h)
		if got := d.GB[idx]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("GB[%d]: analytic %v, numeric %v", idx, got, want)
		}
	}
	// dL/dx against input perturbation.
	loss()
	for _, idx := range []int{0, 11, B*7 - 1} {
		orig := x[idx]
		x[idx] = orig + h
		lp := loss()
		x[idx] = orig - h
		lm := loss()
		x[idx] = orig
		want := (lp - lm) / (2 * h)
		if got := dx[idx]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("dx[%d]: analytic %v, numeric %v", idx, got, want)
		}
	}
}

func TestForwardInputBufferReuseSafe(t *testing.T) {
	// Regression test for the aliasing hazard: Forward used to cache the
	// caller's input slice by reference, so mutating it before Backward
	// silently corrupted the weight gradients.
	rng := rand.New(rand.NewSource(4))
	net := NewMLP([]int{4, 8, 2}, ReLU, Identity, rng)
	ref := cloneNet(net)
	x := []float64{0.5, -1, 2, 0.25}
	dy := []float64{1, -1}

	ref.Forward(append([]float64(nil), x...))
	ref.Backward(dy)

	buf := append([]float64(nil), x...)
	net.Forward(buf)
	for i := range buf {
		buf[i] = 1e9 // caller reuses its buffer before Backward
	}
	net.Backward(dy)

	for li := range net.Layers {
		for i, g := range net.Layers[li].GW {
			if g != ref.Layers[li].GW[i] {
				t.Fatalf("layer %d GW[%d] corrupted by input-buffer reuse: %v vs %v",
					li, i, g, ref.Layers[li].GW[i])
			}
		}
	}
}

func TestBackwardDoesNotClobberCallerGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP([]int{3, 6, 2}, ReLU, Sigmoid, rng)
	net.Forward([]float64{1, 2, 3})
	dy := []float64{0.3, -0.7}
	want := append([]float64(nil), dy...)
	net.Backward(dy)
	for i := range dy {
		if dy[i] != want[i] {
			t.Fatalf("Backward modified caller's gradient slice: %v vs %v", dy, want)
		}
	}
}

func TestScratchSmallerBatches(t *testing.T) {
	// A scratch sized for B must serve any batch size 1..B.
	rng := rand.New(rand.NewSource(6))
	net := NewMLP([]int{5, 9, 3}, ReLU, Sigmoid, rng)
	s := NewScratch(net, 8)
	if s.Batch() != 8 {
		t.Fatalf("Batch() = %d, want 8", s.Batch())
	}
	for _, b := range []int{1, 3, 8} {
		x := randVec(rng, b*5)
		y := net.BatchForward(x, b, s)
		if len(y) != b*3 {
			t.Fatalf("batch %d output len %d", b, len(y))
		}
		want := net.Forward(x[:5])
		for o := range want {
			if y[o] != want[o] {
				t.Fatalf("batch %d sample 0 mismatch", b)
			}
		}
	}
}

func TestScratchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewMLP([]int{4, 6, 2}, ReLU, Sigmoid, rng)
	other := NewMLP([]int{5, 6, 2}, ReLU, Sigmoid, rng)
	s := NewScratch(net, 2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero batch", func() { NewScratch(net, 0) }},
		{"over capacity", func() { net.BatchForward(make([]float64, 3*4), 3, s) }},
		{"wrong arch", func() { other.BatchForward(make([]float64, 2*5), 2, s) }},
		{"wrong input", func() { net.BatchForward(make([]float64, 7), 2, s) }},
		{"wrong gradient", func() { net.BatchBackward(make([]float64, 3), 2, s) }},
	} {
		name, fn := tc.name, tc.fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
