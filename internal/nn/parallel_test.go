package nn

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// testNet builds a small deterministic MLP for engine tests.
func testNet(t *testing.T, seed int64) *MLP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return NewMLP([]int{7, 11, 5}, ReLU, Sigmoid, rng)
}

// testBatch builds a deterministic [b][in] input matrix.
func testBatch(b, in int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, b*in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// quadScore is a deterministic ScoreFunc: dy is a pure function of the
// row's output alone (not of the row's position), so the gradient of a
// set of rows is independent of how they are split into micro-batches.
func quadScore(out int) ScoreFunc {
	return func(_ int, y []float64, r0, r1 int, dy []float64) {
		for k := 0; k < (r1-r0)*out; k++ {
			dy[k] = y[k] - 0.25
		}
	}
}

// snapshotGrads copies the network's accumulated GW/GB.
func snapshotGrads(m *MLP) [][]float64 {
	var out [][]float64
	m.VisitParams(func(_, grads []float64) {
		out = append(out, append([]float64(nil), grads...))
	})
	return out
}

func gradsEqual(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d tensors", label, len(a), len(b))
	}
	for ti := range a {
		for i := range a[ti] {
			if a[ti][i] != b[ti][i] {
				t.Fatalf("%s: tensor %d element %d: %v vs %v", label, ti, i, a[ti][i], b[ti][i])
			}
		}
	}
}

// runEngine accumulates the given micro-batches on a fresh engine over a
// fresh net and returns the reduced gradient snapshot.
func runEngine(t *testing.T, workers int, micros [][]float64, rows []int) [][]float64 {
	t.Helper()
	m := testNet(t, 1)
	eng := NewDataParallel(m, workers)
	score := quadScore(5)
	for i, x := range micros {
		eng.Accumulate(x, rows[i], score)
	}
	eng.Reduce()
	return snapshotGrads(m)
}

// TestDataParallelWorkerCountInvariance is the core determinism contract:
// the reduced gradient is bitwise identical for every worker count,
// including worker counts above the shard count and above GOMAXPROCS.
func TestDataParallelWorkerCountInvariance(t *testing.T) {
	for _, b := range []int{1, 3, GradShardRows, GradShardRows + 1, 53, 16 * MaxGradLanes, 16*MaxGradLanes + 7} {
		x := testBatch(b, 7, 42)
		ref := runEngine(t, 1, [][]float64{x}, []int{b})
		for _, w := range []int{2, 3, 8, MaxGradLanes, MaxGradLanes + 9, runtime.GOMAXPROCS(0)} {
			got := runEngine(t, w, [][]float64{x}, []int{b})
			gradsEqual(t, fmt.Sprintf("b=%d workers=%d", b, w), ref, got)
		}
	}
}

// TestDataParallelSingleShardMatchesBatchBackward pins the compatibility
// guarantee: a batch of at most GradShardRows rows is one shard, whose
// reduced gradient is bitwise identical to a plain BatchForward +
// BatchBackward on the network — i.e. to the pre-engine batched trainer.
func TestDataParallelSingleShardMatchesBatchBackward(t *testing.T) {
	for _, b := range []int{1, 2, GradShardRows} {
		x := testBatch(b, 7, 7)

		ref := testNet(t, 1)
		s := NewScratch(ref, b)
		y := ref.BatchForward(x, b, s)
		dy := make([]float64, b*5)
		quadScore(5)(0, y, 0, b, dy)
		ref.BatchBackward(dy, b, s)
		want := snapshotGrads(ref)

		got := runEngine(t, 4, [][]float64{x}, []int{b})
		gradsEqual(t, fmt.Sprintf("single-shard b=%d", b), want, got)
	}
}

// TestDataParallelMacroEqualsFlat pins the macro-batch alignment
// guarantee: accumulating K micro-batches of B rows (B a multiple of
// GradShardRows) before one Reduce produces bitwise the same gradient as
// one flat batch of K·B rows.
func TestDataParallelMacroEqualsFlat(t *testing.T) {
	for _, c := range []struct{ B, K int }{{GradShardRows, 2}, {2 * GradShardRows, 2}, {2 * GradShardRows, 4}, {GradShardRows, 17}} {
		flat := testBatch(c.B*c.K, 7, 99)
		micros := make([][]float64, c.K)
		rows := make([]int, c.K)
		for i := range micros {
			micros[i] = flat[i*c.B*7 : (i+1)*c.B*7]
			rows[i] = c.B
		}
		want := runEngine(t, 3, [][]float64{flat}, []int{c.B * c.K})
		got := runEngine(t, 3, micros, rows)
		gradsEqual(t, fmt.Sprintf("macro B=%d K=%d", c.B, c.K), want, got)
	}
}

// TestDataParallelReduceResets verifies a second macro-batch after Reduce
// starts from clean lanes: two identical Accumulate+Reduce rounds yield
// identical per-round gradients.
func TestDataParallelReduceResets(t *testing.T) {
	m := testNet(t, 1)
	eng := NewDataParallel(m, 4)
	x := testBatch(40, 7, 5)
	score := quadScore(5)

	eng.Accumulate(x, 40, score)
	eng.Reduce()
	first := snapshotGrads(m)
	m.ZeroGrads()

	eng.Accumulate(x, 40, score)
	eng.Reduce()
	second := snapshotGrads(m)
	gradsEqual(t, "second round", first, second)
}

// TestTreeReduceOrder checks the reduction combines lanes in the fixed
// pairwise pattern ((0+1)+(2+3))+((4)...) rather than a left fold.
func TestTreeReduceOrder(t *testing.T) {
	m := testNet(t, 2)
	mk := func(v float64) *Grads {
		g := NewGrads(m)
		for ti := 0; ti < len(g.t); ti++ {
			for i := range g.t[ti] {
				g.t[ti][i] = v
			}
		}
		return g
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		gs := make([]*Grads, n)
		vals := make([]float64, n)
		for i := range gs {
			vals[i] = 1 / float64(i+3)
			gs[i] = mk(vals[i])
		}
		got := TreeReduce(gs).t[0][0]
		want := treeSumRef(vals)
		if got != want {
			t.Fatalf("n=%d: tree sum %v, want %v", n, got, want)
		}
	}
}

// treeSumRef mirrors TreeReduce's grouping on plain float64s.
func treeSumRef(v []float64) float64 {
	v = append([]float64(nil), v...)
	for stride := 1; stride < len(v); stride *= 2 {
		for i := 0; i+stride < len(v); i += 2 * stride {
			v[i] += v[i+stride]
		}
	}
	return v[0]
}

// TestGradsAliasView verifies GradView aliases the live gradient buffers.
func TestGradsAliasView(t *testing.T) {
	m := testNet(t, 3)
	view := m.GradView()
	m.Layers[0].GW[2] = 42
	if view.Tensor(0)[2] != 42 {
		t.Fatal("GradView does not alias GW")
	}
	view.Zero()
	if m.Layers[0].GW[2] != 0 {
		t.Fatal("Zero through view did not clear GW")
	}
}
