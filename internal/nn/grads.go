package nn

import "fmt"

// Grads is an index-addressed set of gradient buffers, one per parameter
// tensor of an MLP in VisitParams order (layer 0 weights, layer 0 biases,
// layer 1 weights, ...). It is the unit of the data-parallel training
// engine's determinism contract: every worker accumulates into its own
// Grads, and partial sums are combined by TreeReduce in a fixed pairwise
// order, so the summed gradient is a pure function of the minibatch —
// never of worker count or goroutine scheduling. The same index-addressed
// layout keys the Adam optimizer's moment buffers, replacing the old
// pointer-keyed maps.
type Grads struct {
	t [][]float64
}

// NewGrads allocates a zeroed gradient set shaped like m's parameters.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	m.VisitParams(func(params, _ []float64) {
		g.t = append(g.t, make([]float64, len(params)))
	})
	return g
}

// GradView returns a Grads whose tensors alias the network's own GW/GB
// buffers (no copy): the target the reduced gradient sum is applied to
// before an optimizer step, and the source the sequential reference
// trainer snapshots shard partials from.
func (m *MLP) GradView() *Grads {
	g := &Grads{}
	for _, l := range m.Layers {
		g.t = append(g.t, l.GW, l.GB)
	}
	return g
}

// NumTensors returns the number of parameter tensors (2 per layer).
func (m *MLP) NumTensors() int { return 2 * len(m.Layers) }

// Tensor returns buffer i (VisitParams order).
func (g *Grads) Tensor(i int) []float64 { return g.t[i] }

// Zero clears every buffer.
func (g *Grads) Zero() {
	for _, t := range g.t {
		for i := range t {
			t[i] = 0
		}
	}
}

// Add accumulates o into g elementwise: tensors in index order, elements
// in ascending order — one addition per element, the only rounding the
// reduction introduces.
func (g *Grads) Add(o *Grads) {
	if len(g.t) != len(o.t) {
		panic(fmt.Sprintf("nn: grads shape mismatch: %d vs %d tensors", len(g.t), len(o.t)))
	}
	for ti, dst := range g.t {
		src := o.t[ti]
		if len(src) != len(dst) {
			panic(fmt.Sprintf("nn: grads tensor %d length mismatch: %d vs %d", ti, len(dst), len(src)))
		}
		src = src[:len(dst)]
		for i := range dst {
			dst[i] += src[i]
		}
	}
}

// CopyFrom overwrites g with o.
func (g *Grads) CopyFrom(o *Grads) {
	if len(g.t) != len(o.t) {
		panic(fmt.Sprintf("nn: grads shape mismatch: %d vs %d tensors", len(g.t), len(o.t)))
	}
	for ti, dst := range g.t {
		copy(dst, o.t[ti])
	}
}

// TreeReduce sums gs into gs[0] by a fixed-order pairwise tree: round r
// combines gs[i] += gs[i+2^r] for i ≡ 0 (mod 2^(r+1)). The grouping
// depends only on len(gs) — not on worker count or completion order — so
// the reduced sum is bitwise reproducible. For a power-of-two length the
// tree has the property tree(2n) = tree(first n) + tree(second n), which
// is what makes macro-batch accumulation bitwise-equivalent to an aligned
// flat batch (see DESIGN.md §10).
func TreeReduce(gs []*Grads) *Grads {
	if len(gs) == 0 {
		return nil
	}
	for stride := 1; stride < len(gs); stride *= 2 {
		for i := 0; i+stride < len(gs); i += 2 * stride {
			gs[i].Add(gs[i+stride])
		}
	}
	return gs[0]
}
