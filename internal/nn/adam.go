package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba 2014), the optimizer
// FIGRET trains with (Appendix D.4).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*float64][]float64 // first-moment buffers keyed by tensor head
	v map[*float64][]float64 // second-moment buffers
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: learning rate %v must be positive", lr))
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*float64][]float64),
		v: make(map[*float64][]float64),
	}
}

// Step applies one Adam update to every parameter tensor of net using the
// gradients accumulated since the last ZeroGrads, then clears them.
func (a *Adam) Step(net *MLP) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	net.VisitParams(func(params, grads []float64) {
		key := &params[0]
		mBuf, ok := a.m[key]
		if !ok {
			mBuf = make([]float64, len(params))
			a.m[key] = mBuf
			a.v[key] = make([]float64, len(params))
		}
		vBuf := a.v[key]
		for i := range params {
			g := grads[i]
			mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*g
			vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*g*g
			mh := mBuf[i] / c1
			vh := vBuf[i] / c2
			params[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	})
	net.ZeroGrads()
}

// SGD is a plain stochastic-gradient-descent optimizer, provided as a
// baseline for the optimizer ablation.
type SGD struct {
	LR float64
}

// Step applies one SGD update and clears gradients.
func (s SGD) Step(net *MLP) {
	net.VisitParams(func(params, grads []float64) {
		for i := range params {
			params[i] -= s.LR * grads[i]
		}
	})
	net.ZeroGrads()
}
