package nn

import (
	"fmt"
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba 2014), the optimizer
// FIGRET trains with (Appendix D.4). Moment buffers are index-addressed
// per-tensor slices in VisitParams order, allocated on the first Step —
// the same layout as Grads — so the hot loop touches no maps and the
// optimizer's identity contract is positional (tensor i of the visited
// network) rather than the old fragile pointer-to-first-element keying.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m [][]float64 // first-moment buffers, VisitParams order
	v [][]float64 // second-moment buffers
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) and the given learning rate.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: learning rate %v must be positive", lr))
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to every parameter tensor of net using the
// gradients accumulated since the last ZeroGrads, then clears them. The
// first Step binds the optimizer to net's shape; reusing it on a
// different architecture panics instead of silently re-keying.
func (a *Adam) Step(net *MLP) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	if a.m == nil {
		net.VisitParams(func(params, _ []float64) {
			a.m = append(a.m, make([]float64, len(params)))
			a.v = append(a.v, make([]float64, len(params)))
		})
	}
	ti := 0
	net.VisitParams(func(params, grads []float64) {
		if ti >= len(a.m) || len(a.m[ti]) != len(params) {
			panic("nn: Adam state bound to a different architecture")
		}
		mBuf, vBuf := a.m[ti], a.v[ti]
		ti++
		n := len(params)
		grads = grads[:n]
		mBuf = mBuf[:n]
		vBuf = vBuf[:n]
		for i := range params {
			g := grads[i]
			mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*g
			vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*g*g
			mh := mBuf[i] / c1
			vh := vBuf[i] / c2
			params[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	})
	if ti != len(a.m) {
		panic("nn: Adam state bound to a different architecture")
	}
	net.ZeroGrads()
}

// SGD is a plain stochastic-gradient-descent optimizer, provided as a
// baseline for the optimizer ablation.
type SGD struct {
	LR float64
}

// Step applies one SGD update and clears gradients.
func (s SGD) Step(net *MLP) {
	net.VisitParams(func(params, grads []float64) {
		for i := range params {
			params[i] -= s.LR * grads[i]
		}
	})
	net.ZeroGrads()
}
