package nn

import (
	"math"
	"math/rand"
	"testing"
)

// mapAdam is a verbatim copy of the pre-flattening Adam implementation
// (moment buffers in map[*float64][]float64 keyed by each tensor's first
// element), kept as the regression oracle: the index-addressed optimizer
// must produce bitwise-identical parameter updates.
type mapAdam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*float64][]float64
	v map[*float64][]float64
}

func newMapAdam(lr float64) *mapAdam {
	return &mapAdam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*float64][]float64),
		v: make(map[*float64][]float64),
	}
}

func (a *mapAdam) Step(net *MLP) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	net.VisitParams(func(params, grads []float64) {
		key := &params[0]
		mBuf, ok := a.m[key]
		if !ok {
			mBuf = make([]float64, len(params))
			a.m[key] = mBuf
			a.v[key] = make([]float64, len(params))
		}
		vBuf := a.v[key]
		for i := range params {
			g := grads[i]
			mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*g
			vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*g*g
			mh := mBuf[i] / c1
			vh := vBuf[i] / c2
			params[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	})
	net.ZeroGrads()
}

// TestAdamMatchesMapImplementation drives two identical networks through
// the same gradient sequence, one stepped by the flattened Adam and one
// by the historical map-keyed version, and requires bitwise-equal
// parameters after every step.
func TestAdamMatchesMapImplementation(t *testing.T) {
	a := testNet(t, 11)
	b := testNet(t, 11)
	optA := NewAdam(3e-3)
	optB := newMapAdam(3e-3)
	rng := rand.New(rand.NewSource(4))

	setGrads := func(m *MLP, seed int64) {
		r := rand.New(rand.NewSource(seed))
		m.VisitParams(func(_, grads []float64) {
			for i := range grads {
				grads[i] = r.NormFloat64()
			}
		})
	}

	for step := 0; step < 25; step++ {
		seed := rng.Int63()
		setGrads(a, seed)
		setGrads(b, seed)
		optA.Step(a)
		optB.Step(b)
		for li := range a.Layers {
			la, lb := a.Layers[li], b.Layers[li]
			for i := range la.W {
				if la.W[i] != lb.W[i] {
					t.Fatalf("step %d layer %d W[%d]: %v vs %v", step, li, i, la.W[i], lb.W[i])
				}
			}
			for i := range la.B {
				if la.B[i] != lb.B[i] {
					t.Fatalf("step %d layer %d B[%d]: %v vs %v", step, li, i, la.B[i], lb.B[i])
				}
			}
		}
	}
}

// TestAdamRejectsArchitectureChange verifies the positional binding is
// checked: an optimizer bound to one network panics on a differently
// shaped one instead of silently mixing moment buffers.
func TestAdamRejectsArchitectureChange(t *testing.T) {
	a := testNet(t, 1)
	opt := NewAdam(1e-3)
	opt.Step(a)

	other := NewMLP([]int{3, 4, 2}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic stepping a different architecture")
		}
	}()
	opt.Step(other)
}
