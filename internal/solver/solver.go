// Package solver provides a projected-gradient MLU minimizer: split ratios
// are parameterized as per-pair softmaxes over logits and optimized with
// Adam against a smooth-max (log-sum-exp) relaxation of the MLU objective.
//
// It serves as the scalable counterpart of the exact simplex LP in
// internal/lp: on ToR-scale topologies — where the paper itself reports LP
// becoming impractically slow — every baseline that needs "solve MLU for
// this demand" uses this solver instead. On small instances the two agree
// to within a percent (cross-checked in tests and the SolverVsLP ablation
// bench).
package solver

import (
	"fmt"
	"math"
	"math/rand"

	"figret/internal/te"
)

// Options configures the solver. Zero values select sensible defaults.
type Options struct {
	// Iters is the number of Adam iterations (default 400).
	Iters int
	// LR is the Adam learning rate (default 0.05).
	LR float64
	// BetaRel scales the softmax-temperature used by the smooth max: the
	// effective temperature is BetaRel / currentMaxUtilization, making the
	// relaxation scale-invariant (default 30).
	BetaRel float64
	// Seed initializes the logits jitter (default 0: start uniform).
	Seed int64
	// InitR, if non-nil, warm-starts the solve: the logits are initialized
	// so the first iterate reproduces these split ratios (per-pair softmax
	// inverse, ratios floored at 1e-9). Warm starts let temporally-
	// correlated demands reuse the previous snapshot's solution with far
	// fewer iterations; InitR takes precedence over Seed jitter. The
	// best-iterate tracking guarantees the result is never worse than
	// InitR itself evaluated on d.
	InitR []float64
	// Caps, if non-nil, are per-path upper bounds on split ratios, enforced
	// by a quadratic penalty (entries may be +Inf).
	Caps []float64
	// PenaltyWeight scales the cap-violation penalty (default 50).
	PenaltyWeight float64
}

func (o Options) withDefaults() Options {
	if o.Iters == 0 {
		o.Iters = 400
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.BetaRel == 0 {
		o.BetaRel = 30
	}
	if o.PenaltyWeight == 0 {
		o.PenaltyWeight = 50
	}
	return o
}

// MinimizeMLU returns a near-optimal TE configuration for demand d and its
// exact (hard-max) MLU. The returned configuration always satisfies the
// split-ratio simplex constraints exactly (softmax parameterization); caps
// are satisfied approximately, to within the penalty's tolerance.
func MinimizeMLU(ps *te.PathSet, d []float64, opt Options) (*te.Config, float64) {
	opt = opt.withDefaults()
	P := ps.NumPaths()
	z := make([]float64, P)
	switch {
	case opt.InitR != nil:
		if len(opt.InitR) != P {
			panic(fmt.Sprintf("solver: InitR has %d entries, want %d", len(opt.InitR), P))
		}
		// Softmax inverse up to a per-pair constant: z_p = ln r_p.
		for p, r := range opt.InitR {
			if r < 1e-9 {
				r = 1e-9
			}
			z[p] = math.Log(r)
		}
	case opt.Seed != 0:
		rng := rand.New(rand.NewSource(opt.Seed))
		for i := range z {
			z[i] = 0.01 * rng.NormFloat64()
		}
	}

	r := make([]float64, P)
	gr := make([]float64, P) // dL/dr
	gz := make([]float64, P) // dL/dz
	flows := make([]float64, ps.G.NumEdges())
	util := make([]float64, ps.G.NumEdges())
	w := make([]float64, ps.G.NumEdges())
	edgeIDs, edgeStart := ps.EdgeCSR()
	caps := ps.EdgeCaps()

	ad := newAdam(P, opt.LR)

	best := math.Inf(1)
	bestR := make([]float64, P)

	for it := 0; it < opt.Iters; it++ {
		softmaxPerPair(ps, z, r)
		ps.EdgeFlows(d, r, flows)
		maxU := 0.0
		for e := range flows {
			util[e] = flows[e] / caps[e]
			if util[e] > maxU {
				maxU = util[e]
			}
		}
		// Track the best hard-max iterate (with caps feasibility preferred).
		score := maxU
		if opt.Caps != nil {
			score += opt.PenaltyWeight * capViolation(r, opt.Caps)
		}
		if score < best {
			best = score
			copy(bestR, r)
		}
		if maxU == 0 {
			break // zero demand: any config is optimal
		}

		// Smooth-max weights: w_e = softmax(beta * util), pre-divided by
		// edge capacity so the per-path gradient loop below is a single
		// multiply-accumulate over the flat CSR edge list.
		beta := opt.BetaRel / maxU
		var sumW float64
		for e := range util {
			w[e] = math.Exp(beta * (util[e] - maxU))
			sumW += w[e]
		}
		inv := 1 / sumW
		for e := range w {
			w[e] = w[e] * inv / caps[e]
		}
		// dL/dr_p = Σ_{e∈p} w_e · d_pair / c_e.
		for p := range gr {
			dp := d[ps.PairOf[p]]
			if dp == 0 {
				gr[p] = 0
				continue
			}
			var g float64
			for _, e := range edgeIDs[edgeStart[p]:edgeStart[p+1]] {
				g += w[e] * dp
			}
			gr[p] = g
		}
		// Cap penalty gradient.
		if opt.Caps != nil {
			for p, c := range opt.Caps {
				if math.IsInf(c, 1) {
					continue
				}
				if v := r[p] - c; v > 0 {
					gr[p] += 2 * opt.PenaltyWeight * v
				}
			}
		}
		// Chain through per-pair softmax: dz_p = r_p (gr_p − Σ_q r_q gr_q).
		for _, pp := range ps.PairPaths {
			var mean float64
			for _, p := range pp {
				mean += r[p] * gr[p]
			}
			for _, p := range pp {
				gz[p] = r[p] * (gr[p] - mean)
			}
		}
		ad.step(z, gz)
	}

	cfg := te.NewConfig(ps)
	copy(cfg.R, bestR)
	if opt.Caps != nil {
		projectCaps(ps, cfg, opt.Caps)
	}
	m, _ := ps.MLU(d, cfg.R)
	return cfg, m
}

// capViolation returns Σ_p max(0, r_p − cap_p)².
func capViolation(r, caps []float64) float64 {
	s := 0.0
	for p, c := range caps {
		if math.IsInf(c, 1) {
			continue
		}
		if v := r[p] - c; v > 0 {
			s += v * v
		}
	}
	return s
}

// projectCaps redistributes ratio mass exceeding caps onto the pair's
// uncapped headroom, making the configuration exactly cap-feasible when the
// pair's caps sum to at least 1.
func projectCaps(ps *te.PathSet, cfg *te.Config, caps []float64) {
	for _, pp := range ps.PairPaths {
		for iter := 0; iter < 4; iter++ {
			var excess, headroom float64
			for _, p := range pp {
				c := caps[p]
				if !math.IsInf(c, 1) && cfg.R[p] > c {
					excess += cfg.R[p] - c
					cfg.R[p] = c
				}
			}
			if excess <= 1e-12 {
				break
			}
			for _, p := range pp {
				c := caps[p]
				if math.IsInf(c, 1) {
					headroom += 1 // effectively unlimited
				} else if cfg.R[p] < c {
					headroom += c - cfg.R[p]
				}
			}
			if headroom <= 0 {
				break // caps sum < 1; leave as close as possible
			}
			for _, p := range pp {
				c := caps[p]
				var h float64
				if math.IsInf(c, 1) {
					h = 1
				} else if cfg.R[p] < c {
					h = c - cfg.R[p]
				}
				if h > 0 {
					cfg.R[p] += excess * h / headroom
				}
			}
		}
	}
}

// softmaxPerPair fills r with softmax(z) computed independently per pair.
func softmaxPerPair(ps *te.PathSet, z, r []float64) {
	for _, pp := range ps.PairPaths {
		mx := math.Inf(-1)
		for _, p := range pp {
			if z[p] > mx {
				mx = z[p]
			}
		}
		var sum float64
		for _, p := range pp {
			r[p] = math.Exp(z[p] - mx)
			sum += r[p]
		}
		inv := 1 / sum
		for _, p := range pp {
			r[p] *= inv
		}
	}
}

// adam is a flat-vector Adam optimizer.
type adam struct {
	lr, b1, b2, eps float64
	t               int
	m, v            []float64
}

func newAdam(n int, lr float64) *adam {
	return &adam{lr: lr, b1: 0.9, b2: 0.999, eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n)}
}

func (a *adam) step(x, g []float64) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	for i := range x {
		a.m[i] = a.b1*a.m[i] + (1-a.b1)*g[i]
		a.v[i] = a.b2*a.v[i] + (1-a.b2)*g[i]*g[i]
		x[i] -= a.lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + a.eps)
	}
}
