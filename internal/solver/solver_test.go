package solver

import (
	"math"
	"math/rand"
	"testing"

	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/te"
)

func geantSetup(t *testing.T) (*te.PathSet, []float64) {
	t.Helper()
	ps, err := te.NewPathSet(graph.GEANT(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = rng.Float64() * 2
	}
	return ps, d
}

func TestSolverMatchesLPOnTriangle(t *testing.T) {
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	_, lpObj, err := lp.MLUMin(ps, d)
	if err != nil {
		t.Fatal(err)
	}
	cfg, obj := MinimizeMLU(ps, d, Options{})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if obj > lpObj*1.02+1e-9 {
		t.Errorf("solver MLU %v vs LP %v (>2%% gap)", obj, lpObj)
	}
}

func TestSolverMatchesLPOnGEANT(t *testing.T) {
	ps, d := geantSetup(t)
	_, lpObj, err := lp.MLUMin(ps, d)
	if err != nil {
		t.Fatal(err)
	}
	cfg, obj := MinimizeMLU(ps, d, Options{Iters: 800})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if obj > lpObj*1.05+1e-9 {
		t.Errorf("solver MLU %v vs LP %v (>5%% gap)", obj, lpObj)
	}
	if obj < lpObj-1e-7 {
		t.Errorf("solver MLU %v beat the LP optimum %v — LP must be wrong", obj, lpObj)
	}
}

func TestSolverRespectsCaps(t *testing.T) {
	ps, d := geantSetup(t)
	caps := lp.SensitivityCaps(ps, lp.ConstantF(0.4))
	cfg, _ := MinimizeMLU(ps, d, Options{Iters: 500, Caps: caps})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for p, r := range cfg.R {
		if math.IsInf(caps[p], 1) {
			continue
		}
		if r > caps[p]+1e-6 {
			t.Errorf("path %d ratio %v exceeds cap %v", p, r, caps[p])
		}
	}
}

func TestSolverZeroDemand(t *testing.T) {
	ps, _ := geantSetup(t)
	d := make([]float64, ps.Pairs.Count())
	cfg, obj := MinimizeMLU(ps, d, Options{Iters: 5})
	if obj != 0 {
		t.Errorf("zero-demand MLU = %v", obj)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolverDeterministic(t *testing.T) {
	ps, d := geantSetup(t)
	a, objA := MinimizeMLU(ps, d, Options{Iters: 100, Seed: 3})
	b, objB := MinimizeMLU(ps, d, Options{Iters: 100, Seed: 3})
	if objA != objB {
		t.Fatalf("objectives differ: %v vs %v", objA, objB)
	}
	for i := range a.R {
		if a.R[i] != b.R[i] {
			t.Fatal("ratios differ across identical runs")
		}
	}
}

func TestSolverWarmStart(t *testing.T) {
	ps, d := geantSetup(t)
	cold, _ := MinimizeMLU(ps, d, Options{Iters: 400})
	// A correlated demand: small multiplicative drift from d.
	d2 := make([]float64, len(d))
	for i, v := range d {
		d2[i] = v * (1 + 0.05*math.Sin(float64(i)))
	}
	_, cold2 := MinimizeMLU(ps, d2, Options{Iters: 400})
	// Warm-starting from the neighbor's optimum with a quarter of the
	// iterations must land within a few percent of the cold solve.
	warmCfg, warm2 := MinimizeMLU(ps, d2, Options{Iters: 100, InitR: cold.R})
	if err := warmCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if warm2 > cold2*1.05+1e-9 {
		t.Errorf("warm solve %v vs cold %v (>5%% gap)", warm2, cold2)
	}
	// Best-iterate tracking: the warm solve can never be worse than the
	// seed itself evaluated on the new demand.
	seedMLU, _ := ps.MLU(d2, cold.R)
	if warm2 > seedMLU+1e-9 {
		t.Errorf("warm solve %v worse than its own seed %v", warm2, seedMLU)
	}
	// Warm starts are deterministic and honored exactly at iteration 0:
	// two identical warm solves agree bitwise.
	a, objA := MinimizeMLU(ps, d2, Options{Iters: 50, InitR: cold.R})
	b, objB := MinimizeMLU(ps, d2, Options{Iters: 50, InitR: cold.R})
	if objA != objB {
		t.Fatalf("warm objectives differ: %v vs %v", objA, objB)
	}
	for i := range a.R {
		if a.R[i] != b.R[i] {
			t.Fatal("warm ratios differ across identical runs")
		}
	}
}

func TestSolverImprovesOverIterations(t *testing.T) {
	ps, d := geantSetup(t)
	_, few := MinimizeMLU(ps, d, Options{Iters: 10})
	_, many := MinimizeMLU(ps, d, Options{Iters: 600})
	if many > few+1e-9 {
		t.Errorf("more iterations worsened MLU: %v -> %v", few, many)
	}
}

func TestProjectCapsExact(t *testing.T) {
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := te.NewConfig(ps) // all mass on direct paths
	caps := make([]float64, ps.NumPaths())
	for p := range caps {
		caps[p] = 0.6
	}
	projectCaps(ps, cfg, caps)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for p, r := range cfg.R {
		if r > caps[p]+1e-9 {
			t.Errorf("path %d ratio %v exceeds cap after projection", p, r)
		}
	}
}

func TestSoftmaxPerPair(t *testing.T) {
	ps, err := te.NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, ps.NumPaths())
	r := make([]float64, ps.NumPaths())
	softmaxPerPair(ps, z, r)
	for _, pp := range ps.PairPaths {
		sum := 0.0
		for _, p := range pp {
			if math.Abs(r[p]-0.5) > 1e-12 {
				t.Errorf("uniform logits should give 0.5, got %v", r[p])
			}
			sum += r[p]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("pair softmax sums to %v", sum)
		}
	}
	// Extreme logits must not overflow.
	for i := range z {
		z[i] = 1e4 * float64(i%3)
	}
	softmaxPerPair(ps, z, r)
	for _, v := range r {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflow")
		}
	}
}
