//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// mapFile memory-maps the whole file privately: PROT_READ|PROT_WRITE
// with MAP_PRIVATE gives zero-copy reads with copy-on-write isolation —
// a write through a view dirties only this process's page, never the
// durable file. When the kernel refuses (e.g. a filesystem without mmap
// support), it falls back to reading the file into the heap, which
// keeps the same semantics at the cost of residency.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return readFallback(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
