package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync/atomic"
	"unsafe"

	"figret/internal/te"
	"figret/internal/traffic"
)

// hostLittleEndian reports the native byte order. On little-endian
// hosts (every first-class Go target) the stored float64 payload
// reinterprets in place; on big-endian hosts the reader decodes blocks
// into heap copies instead — correct, just not zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Reader serves a store file as zero-copy snapshot views. Open maps the
// file privately (copy-on-write — a stray write through a view diverges
// only this process's pages, never the durable file) and validates the
// header and every block's structure eagerly; block payload checksums
// verify lazily, at most once each, on first access, so opening a
// bigger-than-RAM store touches only its block headers.
//
// Every accessor returns errors for corrupt, truncated or
// foreign-version content — never panics (the internal/wire hardening
// bar). The returned snapshot slices are views under the PR 3 contract
// (capacity-clipped; reading only), registered with the viewsafe
// analyzer alongside Trace.Slice.
//
// A Reader is safe for concurrent use; views stay valid until Close.
type Reader struct {
	g       geometry
	data    []byte // whole file: header page + blocks
	unmap   func() error
	nBlocks int
	nSnaps  int64
	// verified[i] is nonzero once block i's payload checksum passed.
	// Concurrent first accesses may both verify — same answer, benign.
	verified []atomic.Bool
	// decoded holds per-block heap copies on big-endian hosts (filled
	// by verify); nil slots elsewhere.
	decoded []atomic.Pointer[[]float64]
	closed  atomic.Bool
}

// Open maps the store file at path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if fi.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("tracestore: %s is too large to map on this platform", path)
	}
	data, unmap, err := mapFile(f, int(fi.Size()))
	if err != nil {
		return nil, fmt.Errorf("tracestore: map %s: %w", path, err)
	}
	r, err := openBytes(data)
	if err != nil {
		unmap()
		return nil, err
	}
	r.unmap = unmap
	statBytesMapped.Add(uint64(len(data)))
	statOpens.Add(1)
	return r, nil
}

// openBytes builds a reader over a complete store image. It validates
// the header and the structure (magic, header CRC, index chain, counts,
// exact size) of every block; payload checksums stay lazy.
func openBytes(data []byte) (*Reader, error) {
	if len(data) < headerBytes {
		return nil, corruptf("file holds %d bytes, header needs %d", len(data), headerBytes)
	}
	g, err := decodeHeader(data[:headerBytes])
	if err != nil {
		return nil, err
	}
	body := len(data) - headerBytes
	if body%g.blockBytes != 0 {
		return nil, corruptf("%d bytes after the header is not a whole number of %d-byte blocks", body, g.blockBytes)
	}
	r := &Reader{g: g, data: data, nBlocks: body / g.blockBytes}
	r.verified = make([]atomic.Bool, r.nBlocks)
	if !hostLittleEndian {
		r.decoded = make([]atomic.Pointer[[]float64], r.nBlocks)
	}
	for i := 0; i < r.nBlocks; i++ {
		hdr := r.block(i)[:blockHeaderBytes]
		count, _, err := decodeBlockHeader(hdr, g, int64(i)*int64(g.snapsPerBlock))
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		if i < r.nBlocks-1 && count != g.snapsPerBlock {
			return nil, corruptf("block %d holds %d snapshots but is not the tail", i, count)
		}
		if i == r.nBlocks-1 {
			r.nSnaps = int64(i)*int64(g.snapsPerBlock) + int64(count)
		}
	}
	return r, nil
}

// block returns block i's raw bytes (header + padded payload).
func (r *Reader) block(i int) []byte {
	off := int(r.g.blockOffset(i))
	return r.data[off : off+r.g.blockBytes]
}

// blockCount returns block i's snapshot count from its
// already-validated header.
func (r *Reader) blockCount(i int) int {
	return int(binary.LittleEndian.Uint32(r.block(i)[12:16]))
}

// verify checks block i's payload checksum once and — on big-endian
// hosts — decodes the payload into a heap copy.
func (r *Reader) verify(i int) error {
	if r.verified[i].Load() {
		return nil
	}
	b := r.block(i)
	count := r.blockCount(i)
	payload := b[blockHeaderBytes : blockHeaderBytes+count*r.g.pairCount*8]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[16:20]) {
		return corruptf("block %d payload checksum mismatch", i)
	}
	if r.decoded != nil {
		vals := make([]float64, count*r.g.pairCount)
		for j := range vals {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[j*8:]))
		}
		r.decoded[i].Store(&vals)
	}
	statBlocksVerified.Add(1)
	r.verified[i].Store(true)
	return nil
}

// floats returns block i's payload as float64s — a zero-copy
// reinterpretation of the mapping on little-endian hosts, the decoded
// heap copy elsewhere. verify(i) must have succeeded.
func (r *Reader) floats(i int) []float64 {
	if r.decoded != nil {
		return *r.decoded[i].Load()
	}
	count := r.blockCount(i)
	payload := r.block(i)[blockHeaderBytes:]
	// Blocks start page-aligned and the block header is 64 bytes, so the
	// payload is 8-byte-aligned and the cast is legal.
	return unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), count*r.g.pairCount)
}

// N returns the vertex count of the stored trace.
func (r *Reader) N() int { return r.g.n }

// PairCount returns the snapshot width in demand entries.
func (r *Reader) PairCount() int { return r.g.pairCount }

// Len returns the number of snapshots in the store.
func (r *Reader) Len() int64 { return r.nSnaps }

// At returns snapshot i as a capacity-clipped view into the mapping.
// The view is for reading (PR 3 contract); it stays valid until Close.
func (r *Reader) At(i int64) ([]float64, error) {
	if i < 0 || i >= r.nSnaps {
		return nil, fmt.Errorf("tracestore: snapshot %d out of range [0,%d)", i, r.nSnaps)
	}
	b := int(i / int64(r.g.snapsPerBlock))
	j := int(i % int64(r.g.snapsPerBlock))
	if err := r.verify(b); err != nil {
		return nil, err
	}
	pc := r.g.pairCount
	f := r.floats(b)
	return f[j*pc : (j+1)*pc : (j+1)*pc], nil
}

// WindowInto copies the H snapshots strictly before index t into dst
// (H·pairCount entries) — the streaming counterpart of
// traffic.Trace.WindowInto for stores too large to materialize, with
// corrupt blocks surfacing as errors.
func (r *Reader) WindowInto(dst []float64, t, H int64) ([]float64, error) {
	if t < H || t > r.nSnaps {
		return nil, fmt.Errorf("tracestore: window t=%d H=%d len=%d", t, H, r.nSnaps)
	}
	pc := int64(r.g.pairCount)
	if int64(len(dst)) != H*pc {
		return nil, fmt.Errorf("tracestore: window dst has %d entries, want %d", len(dst), H*pc)
	}
	for i := int64(0); i < H; i++ {
		s, err := r.At(t - H + i)
		if err != nil {
			return nil, err
		}
		copy(dst[i*pc:(i+1)*pc], s)
	}
	return dst, nil
}

// Trace materializes the whole store as a traffic.Trace of zero-copy
// snapshot views, verifying every block's checksum on the way — the
// fully-validated path the scenario substrate cache and environment
// construction use. The trace shares the mapping: it is valid until
// Close, and its snapshots follow the view contract (read, don't
// mutate; mutations are process-private copy-on-write either way).
func (r *Reader) Trace() (*traffic.Trace, error) {
	snaps := make([][]float64, r.nSnaps)
	pc := r.g.pairCount
	idx := 0
	for b := 0; b < r.nBlocks; b++ {
		if err := r.verify(b); err != nil {
			return nil, err
		}
		f := r.floats(b)
		count := r.blockCount(b)
		for j := 0; j < count; j++ {
			snaps[idx] = f[j*pc : (j+1)*pc : (j+1)*pc]
			idx++
		}
	}
	return &traffic.Trace{Pairs: te.NewPairs(r.g.n), Snapshots: snaps}, nil
}

// Close unmaps the file. Views handed out before Close become invalid;
// accessing them afterwards faults. Safe to call more than once.
func (r *Reader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	if r.unmap != nil {
		return r.unmap()
	}
	return nil
}

// Load opens path and materializes its trace in one step. The returned
// reader owns the mapping: the trace is valid until Reader.Close (or
// process exit for callers that hold it for the process lifetime).
func Load(path string) (*traffic.Trace, *Reader, error) {
	r, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	tr, err := r.Trace()
	if err != nil {
		r.Close()
		return nil, nil, err
	}
	return tr, r, nil
}
