package tracestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"figret/internal/traffic"
)

// seedImages builds the checked-in seed corpus for FuzzReadBlock: one
// well-formed store image per interesting shape, plus truncated,
// bit-flipped and foreign-version variants — each produced by the live
// Writer, so the corpus can never drift from the format it exercises
// (the wire-corpus discipline). Each entry becomes
// testdata/fuzz/FuzzReadBlock/<name>.
func seedImages(t *testing.T) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	build := func(n, T, snapsPerBlock int) []byte {
		tr := traffic.NewTrace(n)
		for i := 0; i < T; i++ {
			d := make([]float64, tr.Pairs.Count())
			for j := range d {
				d[j] = float64(i*100+j) / 8
			}
			tr.AppendOwned(d)
		}
		path := filepath.Join(dir, fmt.Sprintf("seed-%d-%d-%d.fgt", n, T, snapsPerBlock))
		if err := WriteTrace(path, tr, Options{SnapsPerBlock: snapsPerBlock}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	images := map[string][]byte{}
	images["empty"] = build(3, 0, 2)
	images["single"] = build(3, 1, 2)
	images["full_block"] = build(3, 2, 2)
	multi := build(3, 5, 2) // two full blocks + one partial tail
	images["multi"] = multi

	truncated := append([]byte(nil), multi...)
	images["truncated"] = truncated[:len(truncated)-100]

	flipped := append([]byte(nil), multi...)
	flipped[headerBytes+blockHeaderBytes+9] ^= 0x10 // payload bit
	images["bitflip_payload"] = flipped

	flippedHdr := append([]byte(nil), multi...)
	flippedHdr[headerBytes+6] ^= 0x01 // block header bit
	images["bitflip_block_header"] = flippedHdr

	images["foreign_version"] = foreignVersion(append([]byte(nil), multi...))
	return images
}

// corpusFile renders one seed in the native Go fuzzing corpus encoding.
func corpusFile(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

// TestFuzzSeedCorpus pins the checked-in corpus byte-for-byte to
// seedImages, so the seeds can never drift from the writer they
// exercise. Regenerate after a deliberate format change with
//
//	TRACESTORE_SEED_REGEN=1 go test ./internal/tracestore -run TestFuzzSeedCorpus
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReadBlock")
	images := seedImages(t)
	var names []string
	for name := range images {
		names = append(names, name)
	}
	sort.Strings(names)
	if os.Getenv("TRACESTORE_SEED_REGEN") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if err := os.WriteFile(filepath.Join(dir, name), corpusFile(images[name]), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range names {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("seed %s missing (regenerate with TRACESTORE_SEED_REGEN=1): %v", name, err)
		}
		if want := corpusFile(images[name]); string(got) != string(want) {
			t.Errorf("seed %s stale: corpus file does not match the current writer (regenerate with TRACESTORE_SEED_REGEN=1)", name)
		}
		// Every seed must hold its advertised property: intact images read
		// fully, damaged ones error without panicking.
		err = readWholeImage(images[name])
		switch name {
		case "truncated", "bitflip_payload", "bitflip_block_header", "foreign_version":
			if err == nil {
				t.Errorf("seed %s: damaged image read cleanly", name)
			}
		default:
			if err != nil {
				t.Errorf("seed %s: well-formed image rejected: %v", name, err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if _, ok := images[ent.Name()]; !ok {
			t.Errorf("unexpected corpus file %s: add it to seedImages or delete it", ent.Name())
		}
	}
}

// readWholeImage drives every reader path over a store image: open,
// per-block verification via Trace, per-snapshot access, and window
// assembly. It must return an error or succeed — never panic — for any
// input whatsoever.
func readWholeImage(data []byte) error {
	r, err := openBytes(data)
	if err != nil {
		return err
	}
	tr, err := r.Trace()
	if err != nil {
		return err
	}
	for i := int64(0); i < r.Len(); i++ {
		s, err := r.At(i)
		if err != nil {
			return err
		}
		if len(s) != tr.Pairs.Count() {
			return fmt.Errorf("snapshot %d has %d entries, want %d", i, len(s), tr.Pairs.Count())
		}
	}
	if r.Len() > 0 {
		h := r.Len()
		if h > 4 {
			h = 4
		}
		dst := make([]float64, h*int64(r.PairCount()))
		if _, err := r.WindowInto(dst, r.Len(), h); err != nil {
			return err
		}
	}
	return nil
}

// FuzzReadBlock feeds arbitrary bytes through the whole reader:
// structural validation, lazy block verification, zero-copy snapshot
// views and window assembly. The invariant is the wire decoder's:
// corrupt, truncated, hostile or foreign-version input surfaces as an
// error, never a panic or an out-of-bounds access.
func FuzzReadBlock(f *testing.F) {
	// Seeds beyond the checked-in corpus: pathological tiny inputs.
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = readWholeImage(data)
	})
}
