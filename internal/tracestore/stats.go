package tracestore

import "sync/atomic"

// Process-wide store counters, aggregated across every Writer and
// Reader (stores are created ad hoc — env construction, spooling
// controllers, CLI conversions — and not retained, so per-store
// counters would be unreachable by the time a metrics scrape wants
// them; same rationale as te.PathCacheStats).
var (
	statBlocksWritten  atomic.Uint64
	statBytesWritten   atomic.Uint64
	statBlocksVerified atomic.Uint64
	statBytesMapped    atomic.Uint64
	statOpens          atomic.Uint64
)

// CounterStats is a snapshot of the process-wide store counters.
type CounterStats struct {
	// BlocksWritten counts block writes, including tail-block rewrites.
	BlocksWritten uint64
	// BytesWritten counts bytes handed to the OS by block writes.
	BytesWritten uint64
	// BlocksVerified counts blocks whose payload checksum was validated
	// (each block verifies at most once per Reader).
	BlocksVerified uint64
	// BytesMapped counts bytes memory-mapped (or heap-loaded on
	// platforms without mmap) by Readers.
	BytesMapped uint64
	// Opens counts successfully-opened Readers.
	Opens uint64
}

// Stats returns the process-wide trace-store totals. Monotonic; safe
// for concurrent use. cmd/served exports them as figret_tracestore_*
// metrics.
func Stats() CounterStats {
	return CounterStats{
		BlocksWritten:  statBlocksWritten.Load(),
		BytesWritten:   statBytesWritten.Load(),
		BlocksVerified: statBlocksVerified.Load(),
		BytesMapped:    statBytesMapped.Load(),
		Opens:          statOpens.Load(),
	}
}
