package tracestore

import (
	"io"
	"os"
)

// readFallback loads the whole file into an 8-byte-aligned heap buffer —
// the portable stand-in for a private mapping. Go's allocator aligns
// []byte backing arrays of this size to at least 8 bytes, which the
// zero-copy float64 reinterpretation relies on.
func readFallback(f *os.File, size int) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
