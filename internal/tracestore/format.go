// Package tracestore is the on-disk columnar trace store: a versioned,
// CRC-32-checksummed binary format for demand traces that a streaming
// Writer appends to durably and a Reader memory-maps back as zero-copy
// traffic.Trace views. It is the engineering pattern of te.PathStore
// applied to trace data, built so traces no longer have to fit in RAM:
// the serving daemon spools its ingest history through a Writer, the
// scenario runner's substrate cache mmaps calibrated traces instead of
// regenerating them, and training and evaluation read month-scale
// traces through window views that never materialize the whole series.
//
// # File layout
//
// A store file is one page-aligned header followed by fixed-size,
// page-aligned snapshot blocks (DESIGN.md §14):
//
//	page 0      header: magic "FIGTRCS1", version, n, pairCount,
//	            snapsPerBlock, header CRC-32; zero padding to 4 KiB
//	page 1..    block 0, block 1, ... each blockBytes long
//
// Each block is a 64-byte block header (magic, first snapshot index,
// snapshot count, payload CRC-32) followed by the payload: count
// snapshots of pairCount little-endian IEEE-754 float64s each, zero
// padding to the fixed block size. Thinking of the trace as the
// pairs × time demand matrix, the payload is stored column-major — each
// snapshot (one column) is contiguous — which is exactly what makes the
// sliding windows behind online decisions zero-copy: a mapped block's
// bytes reinterpret directly as the []float64 snapshot vectors of a
// traffic.Trace, and every float lands 8-byte-aligned because blocks
// are page-aligned and the block header is 64 bytes.
//
// Only the tail block may hold fewer than snapsPerBlock snapshots. The
// header is written once at create time and never updated — the
// snapshot count is derived from the file size and the tail block's
// header — so a crash can tear at most the tail block, which its CRC
// detects and OpenAppend truncates away (crash recovery loses at most
// the snapshots of one unflushed block, never the prefix).
//
// # Ownership and the view contract
//
// Reader.Trace and Reader.At return views over the mapping, extending
// the PR 3 capacity-clipped view contract (enforced by the viewsafe
// analyzer): views are for reading, owners mutate. The mapping is
// private (copy-on-write), so a stray write through a view can never
// corrupt the durable file — it only diverges that process's copy.
//
// Corrupt, truncated or foreign-version input — on open or in any
// block — surfaces as an error, never a panic: the same hardening bar
// as internal/wire's frame decoders.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// magic identifies a trace store file; the trailing digit is the
	// major layout generation (bumped only with the version field).
	magic = "FIGTRCS1"
	// version is the format version; readers reject anything else.
	version = 1
	// pageSize is the alignment unit of the header and every block.
	// 4 KiB matches every platform Go targets; larger hardware pages
	// still align, since they are multiples of it.
	pageSize = 4096
	// headerBytes is the reserved on-disk size of the file header.
	headerBytes = pageSize
	// blockHeaderBytes is the fixed per-block header size. 64 keeps the
	// payload 8-byte-aligned (blocks start on page boundaries) with room
	// for the fields below.
	blockHeaderBytes = 64
	// defaultBlockPayload targets ~1 MiB of payload per block when the
	// caller does not pin snapsPerBlock: big enough to amortize the
	// header and CRC, small enough that a partial tail rewrite is cheap.
	defaultBlockPayload = 1 << 20
	// maxSnapsPerBlock bounds the block geometry a reader will accept,
	// so a hostile header cannot make size arithmetic overflow.
	maxSnapsPerBlock = 1 << 20
	// maxVertices bounds n on read; pairCount = n·(n−1) stays far from
	// overflow and rejects absurd headers before any allocation.
	maxVertices = 1 << 16
)

// ErrCorrupt wraps every integrity failure (bad magic, checksum
// mismatch, impossible geometry, torn block). errors.Is(err, ErrCorrupt)
// distinguishes damage from I/O faults.
var ErrCorrupt = errors.New("tracestore: corrupt store")

// ErrVersion marks a structurally-valid file of a foreign format
// version: not damage, but not readable either.
var ErrVersion = errors.New("tracestore: unsupported format version")

// IsFormatError reports whether err indicates damaged or foreign store
// bytes (ErrCorrupt or ErrVersion) rather than an I/O fault. Cache
// layers use it to classify a bad entry as a miss to regenerate instead
// of a fatal error.
func IsFormatError(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion)
}

// corruptf builds an ErrCorrupt with a located reason.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// geometry is the fixed shape of one store file, derived from its
// header.
type geometry struct {
	n             int // vertices
	pairCount     int // n·(n−1), snapshot width in float64s
	snapsPerBlock int // snapshots per full block
	blockBytes    int // fixed on-disk size of every block (page-aligned)
}

// newGeometry validates and completes a shape.
func newGeometry(n, snapsPerBlock int) (geometry, error) {
	if n < 2 || n > maxVertices {
		return geometry{}, fmt.Errorf("tracestore: invalid vertex count %d", n)
	}
	pairCount := n * (n - 1)
	if snapsPerBlock <= 0 {
		snapsPerBlock = defaultBlockPayload / (pairCount * 8)
		if snapsPerBlock < 1 {
			snapsPerBlock = 1
		}
	}
	if snapsPerBlock > maxSnapsPerBlock {
		return geometry{}, fmt.Errorf("tracestore: snapsPerBlock %d exceeds limit %d", snapsPerBlock, maxSnapsPerBlock)
	}
	payload := blockHeaderBytes + snapsPerBlock*pairCount*8
	blockBytes := (payload + pageSize - 1) / pageSize * pageSize
	return geometry{n: n, pairCount: pairCount, snapsPerBlock: snapsPerBlock, blockBytes: blockBytes}, nil
}

// blockOffset returns block i's byte offset in the file.
func (g geometry) blockOffset(i int) int64 {
	return int64(headerBytes) + int64(i)*int64(g.blockBytes)
}

// File header layout (within the first headerBytes):
//
//	[0:8)   magic
//	[8:12)  version          u32 LE
//	[12:16) n                u32 LE
//	[16:20) pairCount        u32 LE (redundant; cross-checked)
//	[20:24) snapsPerBlock    u32 LE
//	[24:28) reserved (zero)
//	[28:32) CRC-32/IEEE over [0:28)
//	[32:headerBytes) zero padding
const headerUsed = 32

// encodeHeader renders the header page.
func encodeHeader(g geometry) []byte {
	buf := make([]byte, headerBytes)
	copy(buf, magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], version)
	le.PutUint32(buf[12:], uint32(g.n))
	le.PutUint32(buf[16:], uint32(g.pairCount))
	le.PutUint32(buf[20:], uint32(g.snapsPerBlock))
	le.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	return buf
}

// decodeHeader validates a header page and returns the file geometry.
func decodeHeader(buf []byte) (geometry, error) {
	if len(buf) < headerUsed {
		return geometry{}, corruptf("header truncated at %d bytes", len(buf))
	}
	if string(buf[:8]) != magic {
		return geometry{}, corruptf("bad magic %q", buf[:8])
	}
	le := binary.LittleEndian
	if crc32.ChecksumIEEE(buf[:28]) != le.Uint32(buf[28:32]) {
		return geometry{}, corruptf("header checksum mismatch")
	}
	if v := le.Uint32(buf[8:12]); v != version {
		return geometry{}, fmt.Errorf("%w: file version %d, reader speaks %d", ErrVersion, v, version)
	}
	n := int(le.Uint32(buf[12:16]))
	snaps := int(le.Uint32(buf[20:24]))
	if snaps <= 0 {
		return geometry{}, corruptf("snapsPerBlock %d", snaps)
	}
	g, err := newGeometry(n, snaps)
	if err != nil {
		return geometry{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if pc := int(le.Uint32(buf[16:20])); pc != g.pairCount {
		return geometry{}, corruptf("pairCount %d, want %d for n=%d", pc, g.pairCount, n)
	}
	return g, nil
}

// Block header layout (within the first blockHeaderBytes of a block):
//
//	[0:4)   block magic "FTBK"
//	[4:12)  first snapshot index   u64 LE
//	[12:16) snapshot count         u32 LE (1..snapsPerBlock)
//	[16:20) CRC-32/IEEE over the count·pairCount·8 payload bytes
//	[20:24) CRC-32/IEEE over [0:20)
//	[24:blockHeaderBytes) zero padding
const blockMagic = "FTBK"

// encodeBlockHeader renders a block header into dst (blockHeaderBytes
// long) for a block holding count snapshots starting at snapshot first,
// whose payload checksum is payloadCRC.
func encodeBlockHeader(dst []byte, first int64, count int, payloadCRC uint32) {
	for i := range dst[:blockHeaderBytes] {
		dst[i] = 0
	}
	copy(dst, blockMagic)
	le := binary.LittleEndian
	le.PutUint64(dst[4:], uint64(first))
	le.PutUint32(dst[12:], uint32(count))
	le.PutUint32(dst[16:], payloadCRC)
	le.PutUint32(dst[20:], crc32.ChecksumIEEE(dst[:20]))
}

// decodeBlockHeader validates a block header against the geometry and
// the expected first-snapshot index, returning the snapshot count and
// payload CRC. It checks only the header; payload verification is the
// caller's (lazy) job.
func decodeBlockHeader(buf []byte, g geometry, wantFirst int64) (count int, payloadCRC uint32, err error) {
	if len(buf) < blockHeaderBytes {
		return 0, 0, corruptf("block header truncated at %d bytes", len(buf))
	}
	le := binary.LittleEndian
	if crc32.ChecksumIEEE(buf[:20]) != le.Uint32(buf[20:24]) {
		return 0, 0, corruptf("block header checksum mismatch")
	}
	if string(buf[:4]) != blockMagic {
		return 0, 0, corruptf("bad block magic %q", buf[:4])
	}
	if first := int64(le.Uint64(buf[4:12])); first != wantFirst {
		return 0, 0, corruptf("block claims first snapshot %d, want %d", first, wantFirst)
	}
	count = int(le.Uint32(buf[12:16]))
	if count < 1 || count > g.snapsPerBlock {
		return 0, 0, corruptf("block holds %d snapshots, geometry allows 1..%d", count, g.snapsPerBlock)
	}
	return count, le.Uint32(buf[16:20]), nil
}
