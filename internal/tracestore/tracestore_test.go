package tracestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"figret/internal/traffic"
)

// synthTrace builds a deterministic trace over n vertices with T
// snapshots, including exact-binary-awkward values (negative zero is
// excluded: demands are non-negative by construction everywhere).
func synthTrace(n, T int, seed int64) *traffic.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := traffic.NewTrace(n)
	for t := 0; t < T; t++ {
		d := make([]float64, tr.Pairs.Count())
		for i := range d {
			d[i] = rng.Float64() * 1000
		}
		if t%7 == 3 {
			d[0] = 0 // sparse entries survive the round trip too
		}
		tr.AppendOwned(d)
	}
	return tr
}

// bitwiseEqual reports whether two traces carry identical float bits.
func bitwiseEqual(a, b *traffic.Trace) bool {
	if a.Len() != b.Len() || a.Pairs.Count() != b.Pairs.Count() {
		return false
	}
	for t := 0; t < a.Len(); t++ {
		sa, sb := a.At(t), b.At(t)
		for i := range sa {
			if math.Float64bits(sa[i]) != math.Float64bits(sb[i]) {
				return false
			}
		}
	}
	return true
}

func TestRoundTripBitwise(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n, T  int
		snaps int // SnapsPerBlock (0 = default)
	}{
		{"empty", 4, 0, 0},
		{"single", 4, 1, 0},
		{"partial_block", 4, 3, 8},
		{"exact_block", 4, 8, 8},
		{"multi_block", 5, 23, 4},
		{"default_geometry", 6, 40, 0},
		{"one_snap_blocks", 3, 5, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := synthTrace(tc.n, tc.T, 42)
			path := filepath.Join(t.TempDir(), "trace.fgt")
			if err := WriteTrace(path, tr, Options{SnapsPerBlock: tc.snaps}); err != nil {
				t.Fatal(err)
			}
			got, r, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if !bitwiseEqual(tr, got) {
				t.Fatal("store round trip is not bitwise identical")
			}
			if int(r.Len()) != tc.T || r.N() != tc.n {
				t.Fatalf("reader reports len=%d n=%d, want %d/%d", r.Len(), r.N(), tc.T, tc.n)
			}
		})
	}
}

func TestWindowViewsMatchInMemory(t *testing.T) {
	tr := synthTrace(5, 30, 7)
	path := filepath.Join(t.TempDir(), "trace.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	stored, r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	H := 6
	pc := tr.Pairs.Count()
	for at := H; at <= tr.Len(); at++ {
		want := tr.Window(at, H)
		// Through the materialized zero-copy trace.
		got := stored.Window(at, H)
		if !bytes.Equal(floatBytes(want), floatBytes(got)) {
			t.Fatalf("trace window at %d differs", at)
		}
		// Through the streaming reader path.
		dst := make([]float64, H*pc)
		if _, err := r.WindowInto(dst, int64(at), int64(H)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(floatBytes(want), floatBytes(dst)) {
			t.Fatalf("reader window at %d differs", at)
		}
	}
}

func floatBytes(f []float64) []byte {
	out := make([]byte, 0, len(f)*8)
	for _, v := range f {
		bits := math.Float64bits(v)
		out = append(out, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return out
}

// TestWriterDeterministicBytes pins the determinism contract: the same
// appends produce byte-identical files, regardless of flush cadence.
func TestWriterDeterministicBytes(t *testing.T) {
	tr := synthTrace(4, 11, 3)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.fgt"), filepath.Join(dir, "b.fgt")
	if err := WriteTrace(a, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	// Same snapshots, but flushed after every single append.
	w, err := Create(b, 4, Options{SnapsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		if err := w.Append(tr.At(i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("flush cadence changed the emitted bytes")
	}
}

// TestAppendReuseBuffer proves Append does not retain the caller's
// slice: the encode happens before return.
func TestAppendReuseBuffer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.fgt")
	w, err := Create(path, 3, Options{SnapsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, w.PairCount())
	want := make([][]float64, 5)
	for i := range want {
		for j := range buf {
			buf[j] = float64(i*10 + j)
		}
		want[i] = append([]float64(nil), buf...)
		if err := w.Append(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, wv := range want {
		gv := got.At(i)
		for j := range wv {
			if wv[j] != gv[j] {
				t.Fatalf("snapshot %d entry %d: got %v want %v", i, j, gv[j], wv[j])
			}
		}
	}
}

// TestOpenAppendContinues writes a trace in two sessions and requires
// the result to be byte-identical to a single-session write.
func TestOpenAppendContinues(t *testing.T) {
	tr := synthTrace(4, 13, 9)
	dir := t.TempDir()
	oneShot, twoShot := filepath.Join(dir, "one.fgt"), filepath.Join(dir, "two.fgt")
	if err := WriteTrace(oneShot, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 4, 5, 12, 13} {
		w, err := Create(twoShot, 4, Options{SnapsPerBlock: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendTrace(tr.Slice(0, cut)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w, err = OpenAppend(twoShot, 4, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if w.Len() != int64(cut) {
			t.Fatalf("cut %d: reopened writer reports %d snapshots", cut, w.Len())
		}
		if err := w.AppendTrace(tr.Slice(cut, tr.Len())); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		a, _ := os.ReadFile(oneShot)
		b, _ := os.ReadFile(twoShot)
		if !bytes.Equal(a, b) {
			t.Fatalf("cut %d: two-session file differs from one-session file", cut)
		}
	}
}

// TestOpenAppendRecoversTornTail crashes mid-block (simulated by
// truncating into the tail block) and requires OpenAppend to resume at
// the last intact snapshot while a strict Reader refuses the torn file.
func TestOpenAppendRecoversTornTail(t *testing.T) {
	tr := synthTrace(4, 11, 5)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail block: cut 100 bytes out of the last block slot.
	if err := os.Truncate(path, fi.Size()-100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reader accepted a torn file: %v", err)
	}
	w, err := OpenAppend(path, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 11 snapshots at 4/block = 2 full blocks + torn tail of 3: recovery
	// keeps the 8 durable ones.
	if w.Len() != 8 {
		t.Fatalf("recovered writer reports %d snapshots, want 8", w.Len())
	}
	if err := w.AppendTrace(tr.Slice(8, tr.Len())); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !bitwiseEqual(tr, got) {
		t.Fatal("recovered + re-appended trace differs from the original")
	}
}

// TestCorruptionSurfacesAsErrors flips bits and mangles framing; every
// damage mode must surface as an error (ErrCorrupt or ErrVersion), and
// never a panic.
func TestCorruptionSurfacesAsErrors(t *testing.T) {
	tr := synthTrace(4, 9, 6)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := []struct {
		name  string
		mut   func([]byte) []byte
		openE bool // error expected at Open (vs at Trace/At)
	}{
		{"empty_file", func(b []byte) []byte { return nil }, true},
		{"short_header", func(b []byte) []byte { return b[:16] }, true},
		{"bad_magic", flipByte(0), true},
		{"header_bitflip", flipByte(13), true},
		{"block_header_bitflip", flipByte(headerBytes + 5), true},
		{"payload_bitflip", flipByte(headerBytes + blockHeaderBytes + 17), false},
		{"tail_payload_bitflip", flipByte(3*pageSize + blockHeaderBytes + 3), false},
		{"truncated_mid_block", func(b []byte) []byte { return b[:len(b)-50] }, true},
		{"trailing_garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 1, 2, 3) }, true},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			bad := d.mut(append([]byte(nil), pristine...))
			p := filepath.Join(t.TempDir(), "bad.fgt")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(p)
			if d.openE {
				if err == nil {
					r.Close()
					t.Fatal("Open accepted damaged file")
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("want ErrCorrupt, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("structural open should succeed (payload damage is lazy): %v", err)
			}
			defer r.Close()
			if _, err := r.Trace(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Trace on flipped payload: want ErrCorrupt, got %v", err)
			}
		})
	}
}

func flipByte(off int) func([]byte) []byte {
	return func(b []byte) []byte {
		b[off] ^= 0x40
		return b
	}
}

// foreignVersion rewrites a store image's header to claim format
// version+1, re-checksummed so decode reaches the version check.
func foreignVersion(b []byte) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[8:12], version+1)
	binary.LittleEndian.PutUint32(out[28:32], crc32.ChecksumIEEE(out[:28]))
	return out
}

// TestForeignVersion rejects a structurally-valid file of a newer
// format version with ErrVersion, not ErrCorrupt.
func TestForeignVersion(t *testing.T) {
	tr := synthTrace(4, 3, 1)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, foreignVersion(b), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a foreign version is not corruption")
	}
}

// TestMismatchedVertexCount: OpenAppend refuses to append snapshots of
// the wrong width.
func TestMismatchedVertexCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, synthTrace(4, 2, 1), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppend(path, 5, Options{}); err == nil {
		t.Fatal("OpenAppend accepted a store of a different vertex count")
	}
}

// TestViewCapacityClipped: appending to a loaded trace must reallocate
// its index, never write into the mapping past the views.
func TestViewCapacityClipped(t *testing.T) {
	tr := synthTrace(4, 6, 2)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 3}); err != nil {
		t.Fatal(err)
	}
	got, r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Each snapshot view is capacity-clipped: growing it cannot reach the
	// neighbouring snapshot in the block.
	s0 := got.At(0)
	if cap(s0) != len(s0) {
		t.Fatalf("snapshot view capacity %d exceeds length %d", cap(s0), len(s0))
	}
	// Slice views of the loaded trace behave exactly like in-memory ones.
	view := got.Slice(0, 2)
	if err := view.Append(make([]float64, got.Pairs.Count())); err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(tr.Slice(2, 3), got.Slice(2, 3)) {
		t.Fatal("append to a view clobbered the parent's snapshot 2")
	}
}

// TestCSVStoreRoundTrip is the satellite gate: CSV → store → windows is
// bitwise equal to CSV → in-memory Trace, including the empty-trace and
// single-snapshot edge cases.
func TestCSVStoreRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		tr   *traffic.Trace
	}{
		{"empty", traffic.NewTrace(4)},
		{"single_snapshot", synthTrace(4, 1, 11)},
		{"typical", synthTrace(5, 17, 12)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var csv bytes.Buffer
			if err := tc.tr.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			direct, err := traffic.ReadCSV(bytes.NewReader(csv.Bytes()), tc.tr.Pairs.N())
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "t.fgt")
			if err := WriteTrace(path, direct, Options{SnapsPerBlock: 4}); err != nil {
				t.Fatal(err)
			}
			stored, r, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if !bitwiseEqual(direct, stored) {
				t.Fatal("CSV → store differs from CSV → memory")
			}
			if direct.Len() == 0 {
				return
			}
			H := direct.Len()
			wa := direct.Window(direct.Len(), H)
			wb := stored.Window(stored.Len(), H)
			if !bytes.Equal(floatBytes(wa), floatBytes(wb)) {
				t.Fatal("windows over the stored trace differ from the in-memory ones")
			}
		})
	}
}

// TestConcurrentReaders exercises the lazy per-block verification under
// concurrency (run with -race in CI's tracestore job).
func TestConcurrentReaders(t *testing.T) {
	tr := synthTrace(5, 40, 8)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := int64(0); i < r.Len(); i++ {
				s, err := r.At(i)
				if err != nil {
					done <- err
					return
				}
				if len(s) != r.PairCount() {
					done <- errors.New("short snapshot")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsAdvance sanity-checks the process-wide counters move.
func TestStatsAdvance(t *testing.T) {
	before := Stats()
	tr := synthTrace(4, 9, 3)
	path := filepath.Join(t.TempDir(), "t.fgt")
	if err := WriteTrace(path, tr, Options{SnapsPerBlock: 4}); err != nil {
		t.Fatal(err)
	}
	if _, r, err := Load(path); err != nil {
		t.Fatal(err)
	} else {
		r.Close()
	}
	after := Stats()
	if after.BlocksWritten <= before.BlocksWritten || after.BytesWritten <= before.BytesWritten {
		t.Fatal("write counters did not advance")
	}
	if after.BlocksVerified <= before.BlocksVerified || after.Opens <= before.Opens || after.BytesMapped <= before.BytesMapped {
		t.Fatal("read counters did not advance")
	}
}
