//go:build !unix

package tracestore

import "os"

// mapFile on platforms without syscall.Mmap reads the file into the
// heap: same validated views, no page-cache sharing.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	return readFallback(f, size)
}
