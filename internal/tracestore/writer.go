package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"figret/internal/traffic"
)

// Options tunes a store file's fixed geometry at create time.
type Options struct {
	// SnapsPerBlock pins the snapshots per block. <= 0 picks the
	// default: as many as fit ~1 MiB of payload, at least 1. The value
	// is baked into the header; appends to an existing file inherit it.
	SnapsPerBlock int
}

// Writer streams snapshots into a store file. Appends buffer one block
// in memory; a full block is written (with its checksum) at its final
// offset and never touched again, while Flush persists the partial tail
// block, rewriting it in place as it fills. The header never changes
// after Create, so the only bytes a crash can tear are the tail
// block's — which its CRC detects and OpenAppend truncates away.
//
// The emitted bytes are a pure function of (n, SnapsPerBlock, the
// appended snapshots): unused payload is zeroed before every block
// write, so two writers given the same appends produce byte-identical
// files.
//
// A Writer is single-owner: it is not safe for concurrent use.
type Writer struct {
	f    *os.File
	path string
	g    geometry

	nBlocks   int    // full blocks durably at their final offsets
	buf       []byte // one block: header + payload, blockBytes long
	bufCount  int    // snapshots currently in buf
	total     int64  // snapshots appended (durable + buffered)
	fileBytes int64  // file size as of the last write (header + landed blocks)
	dirty     bool   // buf holds appends not yet flushed
	closed    bool
}

// Create creates (truncating any existing file) a store for traces over
// n vertices and writes its header.
func Create(path string, n int, opt Options) (*Writer, error) {
	g, err := newGeometry(n, opt.SnapsPerBlock)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	w := &Writer{f: f, path: path, g: g, buf: make([]byte, g.blockBytes), fileBytes: headerBytes}
	if _, err := f.WriteAt(encodeHeader(g), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracestore: write header: %w", err)
	}
	statBytesWritten.Add(headerBytes)
	return w, nil
}

// OpenAppend opens path for appending, creating it (with opt geometry)
// when absent. An existing file must be a store over n vertices; its
// blocks are validated front to back and anything after the last intact
// block — a torn tail write, trailing garbage — is truncated away, so a
// crashed writer's file reopens cleanly at the last durable snapshot.
func OpenAppend(path string, n int, opt Options) (*Writer, error) {
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return Create(path, n, opt)
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	w, err := recoverAppend(f, fi.Size(), n)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.path = path
	return w, nil
}

// recoverAppend validates an existing store front to back and positions
// a writer after its last intact snapshot.
func recoverAppend(f *os.File, size int64, n int) (*Writer, error) {
	hdr := make([]byte, headerUsed)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, corruptf("header unreadable: %v", err)
	}
	g, err := decodeHeader(hdr)
	if err != nil {
		return nil, err
	}
	if g.n != n {
		return nil, fmt.Errorf("tracestore: store holds %d-vertex traces, want %d", g.n, n)
	}
	w := &Writer{f: f, g: g, buf: make([]byte, g.blockBytes)}
	block := make([]byte, g.blockBytes)
	good := int64(headerBytes) // prefix known intact
	for i := 0; ; i++ {
		off := g.blockOffset(i)
		if off+int64(g.blockBytes) > size {
			break // no complete block slot left; anything beyond is torn
		}
		if _, err := f.ReadAt(block, off); err != nil {
			break
		}
		count, payloadCRC, err := decodeBlockHeader(block, g, int64(i)*int64(g.snapsPerBlock))
		if err != nil {
			break
		}
		payload := block[blockHeaderBytes : blockHeaderBytes+count*g.pairCount*8]
		if crc32.ChecksumIEEE(payload) != payloadCRC {
			break
		}
		if count == g.snapsPerBlock {
			w.nBlocks = i + 1
			w.total = int64(w.nBlocks) * int64(g.snapsPerBlock)
			good = off + int64(g.blockBytes)
			continue
		}
		// Partial tail: pull it into the buffer and keep filling it.
		copy(w.buf[blockHeaderBytes:], payload)
		w.bufCount = count
		w.total += int64(count)
		good = off + int64(g.blockBytes)
		break
	}
	if good != size {
		if err := f.Truncate(good); err != nil {
			return nil, fmt.Errorf("tracestore: truncating torn tail: %w", err)
		}
	}
	w.fileBytes = good
	return w, nil
}

// Geometry accessors.

// N returns the vertex count of the stored traces.
func (w *Writer) N() int { return w.g.n }

// PairCount returns the snapshot width in demand entries.
func (w *Writer) PairCount() int { return w.g.pairCount }

// Len returns the number of snapshots appended so far (durable plus
// buffered; Flush or Close makes them all durable).
func (w *Writer) Len() int64 { return w.total }

// Path returns the file the writer appends to.
func (w *Writer) Path() string { return w.path }

// DurableBytes returns how many bytes of the store sit durably at their
// final offsets — the file size after the last flush. Buffered appends
// are excluded until Flush/Close lands them; cmd/served exports this as
// its spool-size gauge.
func (w *Writer) DurableBytes() int64 { return w.fileBytes }

// Append adds one snapshot (pairCount demand entries). The slice is
// encoded immediately; the caller may reuse it. A full block is written
// out synchronously; partial blocks stay buffered until Flush or Close.
func (w *Writer) Append(d []float64) error {
	if w.closed {
		return fmt.Errorf("tracestore: append on closed writer")
	}
	if len(d) != w.g.pairCount {
		return fmt.Errorf("tracestore: snapshot has %d entries, want %d", len(d), w.g.pairCount)
	}
	off := blockHeaderBytes + w.bufCount*w.g.pairCount*8
	le := binary.LittleEndian
	for _, v := range d {
		le.PutUint64(w.buf[off:], math.Float64bits(v))
		off += 8
	}
	w.bufCount++
	w.total++
	w.dirty = true
	if w.bufCount == w.g.snapsPerBlock {
		return w.flushBlock()
	}
	return nil
}

// AppendTrace appends every snapshot of tr.
func (w *Writer) AppendTrace(tr *traffic.Trace) error {
	if tr.Pairs.Count() != w.g.pairCount {
		return fmt.Errorf("tracestore: trace has %d pairs, store wants %d", tr.Pairs.Count(), w.g.pairCount)
	}
	for i := 0; i < tr.Len(); i++ {
		if err := w.Append(tr.At(i)); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock writes the buffered block at its slot. It zeroes the
// unused payload first (deterministic bytes), stamps the block header,
// and resets the buffer when the block is full — a full block's slot is
// final and never rewritten.
func (w *Writer) flushBlock() error {
	used := blockHeaderBytes + w.bufCount*w.g.pairCount*8
	tail := w.buf[used:]
	for i := range tail {
		tail[i] = 0
	}
	payload := w.buf[blockHeaderBytes:used]
	encodeBlockHeader(w.buf, int64(w.nBlocks)*int64(w.g.snapsPerBlock), w.bufCount, crc32.ChecksumIEEE(payload))
	if _, err := w.f.WriteAt(w.buf, w.g.blockOffset(w.nBlocks)); err != nil {
		return fmt.Errorf("tracestore: write block %d: %w", w.nBlocks, err)
	}
	statBlocksWritten.Add(1)
	statBytesWritten.Add(uint64(len(w.buf)))
	w.fileBytes = w.g.blockOffset(w.nBlocks) + int64(len(w.buf))
	w.dirty = false
	if w.bufCount == w.g.snapsPerBlock {
		w.nBlocks++
		w.bufCount = 0
	}
	return nil
}

// Flush writes the partial tail block, if any appends are buffered.
// After Flush every appended snapshot is in the file (durability
// against process crash; call Sync for durability against power loss).
func (w *Writer) Flush() error {
	if w.closed {
		return fmt.Errorf("tracestore: flush on closed writer")
	}
	if !w.dirty || w.bufCount == 0 {
		return nil
	}
	return w.flushBlock()
}

// Sync flushes buffered appends and fsyncs the file.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, syncs and closes the file. The writer is unusable
// afterwards. Safe to call once.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	err := w.Sync()
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTrace writes tr as a complete store file at path, atomically: it
// builds the file under a temporary name in the same directory and
// renames it into place, so concurrent readers (and crashed writers)
// never observe a partial file — the PathStore publication discipline.
func WriteTrace(path string, tr *traffic.Trace, opt Options) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "trace-*.tmp")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmpName := tmp.Name()
	tmp.Close()
	w, err := Create(tmpName, tr.Pairs.N(), opt)
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := w.AppendTrace(tr); err != nil {
		w.Close()
		os.Remove(tmpName)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}
