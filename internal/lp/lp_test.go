package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"figret/internal/graph"
	"figret/internal/te"
)

func TestSolveSimpleLE(t *testing.T) {
	// maximize x+y s.t. x+2y<=4, 3x+y<=6  ==  minimize -x-y.
	p := &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 6},
		S: []Sense{LE, LE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum at intersection: x=8/5, y=6/5, obj=-14/5.
	if math.Abs(x[0]-1.6) > 1e-7 || math.Abs(x[1]-1.2) > 1e-7 {
		t.Errorf("x = %v", x)
	}
	if math.Abs(obj+2.8) > 1e-7 {
		t.Errorf("obj = %v", obj)
	}
}

func TestSolveEquality(t *testing.T) {
	// minimize x+2y s.t. x+y = 3, x<=1.
	p := &Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}, {1, 0}},
		B: []float64{3, 1},
		S: []Sense{EQ, LE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-7 || math.Abs(x[1]-2) > 1e-7 || math.Abs(obj-5) > 1e-7 {
		t.Errorf("x=%v obj=%v", x, obj)
	}
}

func TestSolveGEAndNegativeRHS(t *testing.T) {
	// minimize 2x+y s.t. x+y >= 2, -x >= -5 (i.e. x<=5).
	p := &Problem{
		C: []float64{2, 1},
		A: [][]float64{{1, 1}, {-1, 0}},
		B: []float64{2, -5},
		S: []Sense{GE, GE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-2) > 1e-7 || math.Abs(x[1]-2) > 1e-7 {
		t.Errorf("x=%v obj=%v", x, obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		C: []float64{1},
		A: [][]float64{{1}, {1}},
		B: []float64{1, 3},
		S: []Sense{LE, GE},
	}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{0},
		S: []Sense{LE},
	}
	if _, _, err := Solve(p); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Problem{
		{C: nil},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1}, S: nil},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, S: []Sense{LE}},
	}
	for i, p := range bad {
		if _, _, err := Solve(p); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestDegenerateCycling(t *testing.T) {
	// A classic degenerate instance (Beale's example) must terminate.
	p := &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
		S: []Sense{LE, LE, LE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+0.05) > 1e-6 {
		t.Errorf("Beale optimum = %v (x=%v), want -0.05", obj, x)
	}
}

func fig3Setup(t *testing.T) (*te.PathSet, []float64) {
	t.Helper()
	g := graph.Triangle()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 1)] = 1
	d[ps.Pairs.Index(0, 2)] = 1
	d[ps.Pairs.Index(1, 2)] = 1
	return ps, d
}

func TestMLUMinTriangle(t *testing.T) {
	ps, d := fig3Setup(t)
	cfg, obj, err := MLUMin(ps, d)
	if err != nil {
		t.Fatal(err)
	}
	// Directed-edge model: all direct is optimal, MLU = 0.5.
	if math.Abs(obj-0.5) > 1e-7 {
		t.Errorf("optimal MLU = %v, want 0.5", obj)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := cfg.MLU(d); math.Abs(m-obj) > 1e-6 {
		t.Errorf("recomputed MLU %v != LP objective %v", m, obj)
	}
}

func TestMLUMinMatchesKnownOptimum(t *testing.T) {
	// Two nodes joined through two relay nodes: 0->1 direct cap 1, and via
	// 2 with cap 10. Demand 2 must split to equalize utilization.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 0, 10)
	g.MustAddEdge(2, 1, 10)
	g.MustAddEdge(1, 2, 10)
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 1)] = 2
	_, obj, err := MLUMin(ps, d)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: x on direct (util x/1), 2-x via relay (util (2-x)/10);
	// equalize: x = 20/11... but capacity 1 vs 10: x/1 = (2-x)/10 -> x = 2/11,
	// MLU = 2/11.
	want := 2.0 / 11.0
	if math.Abs(obj-want) > 1e-7 {
		t.Errorf("MLU = %v, want %v", obj, want)
	}
}

func TestMLUMinCappedForcesSpread(t *testing.T) {
	ps, d := fig3Setup(t)
	// Cap every path ratio at 0.5 => every pair must split 50/50,
	// reproducing TE scheme 2 of Figure 3.
	caps := make([]float64, ps.NumPaths())
	for p := range caps {
		caps[p] = 0.5
	}
	cfg, obj, err := MLUMinCapped(ps, d, caps)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for p, r := range cfg.R {
		if r > 0.5+1e-7 {
			t.Errorf("path %d ratio %v exceeds cap", p, r)
		}
	}
	// Directed model MLU of the 50/50 config on unit demands: each edge
	// carries 0.5 (direct) + 0.5 (one relay) = 1.0 over capacity 2 = 0.5...
	// compute expected directly:
	want := cfg.MLU(d)
	if math.Abs(obj-want) > 1e-6 {
		t.Errorf("objective %v vs recomputed %v", obj, want)
	}
}

func TestMLUMinCappedInfeasibleCaps(t *testing.T) {
	ps, d := fig3Setup(t)
	caps := make([]float64, ps.NumPaths())
	for p := range caps {
		caps[p] = 0.3 // 2 paths per pair -> max total 0.6 < 1
	}
	if _, _, err := MLUMinCapped(ps, d, caps); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSensitivityCapsFeasibilityRepair(t *testing.T) {
	ps, _ := fig3Setup(t)
	// Bound so tight every pair would be infeasible; SensitivityCaps must
	// scale caps up so each pair can still sum to 1.
	caps := SensitivityCaps(ps, ConstantF(0.01))
	for _, pp := range ps.PairPaths {
		sum := 0.0
		for _, p := range pp {
			sum += caps[p]
		}
		if sum < 1-1e-9 {
			t.Errorf("pair caps sum %v < 1 after repair", sum)
		}
	}
	// Infinite bound passes through.
	caps = SensitivityCaps(ps, ConstantF(math.Inf(1)))
	for _, c := range caps {
		if !math.IsInf(c, 1) {
			t.Errorf("cap %v, want +Inf", c)
		}
	}
}

func TestSensitivityCapsScaling(t *testing.T) {
	// Triangle: min capacity 2, so normalized capacity of every path is 1
	// for direct paths (cap 2/2=1)... direct path C_p=2, normalized 2/2=1;
	// bound 0.7 => cap = 0.7.
	ps, _ := fig3Setup(t)
	caps := SensitivityCaps(ps, ConstantF(0.7))
	for p := range caps {
		want := 0.7 * ps.Cap[p] / 2
		if math.Abs(caps[p]-want) > 1e-9 && caps[p] >= want {
			t.Errorf("path %d cap %v, want %v (or repaired up)", p, caps[p], want)
		}
	}
}

func TestLinearFMonotone(t *testing.T) {
	vars := []float64{5, 1, 3, 9}
	f := LinearF(vars, 0.2, 0.8)
	// Most stable (pair 1) gets 0.8; most bursty (pair 3) gets 0.2.
	if math.Abs(f(1)-0.8) > 1e-12 {
		t.Errorf("f(stable) = %v", f(1))
	}
	if math.Abs(f(3)-0.2) > 1e-12 {
		t.Errorf("f(bursty) = %v", f(3))
	}
	// Monotone: higher variance -> lower bound.
	if !(f(1) >= f(2) && f(2) >= f(0) && f(0) >= f(3)) {
		t.Errorf("LinearF not monotone: %v %v %v %v", f(1), f(2), f(0), f(3))
	}
}

func TestPiecewiseF(t *testing.T) {
	vars := []float64{5, 1, 3, 9}
	f := PiecewiseF(vars, 0.3, 0.9, 0.5)
	// Ranks: pair1=0, pair2=1, pair0=2, pair3=3. Breakpoint 0.5*4=2.
	if f(1) != 0.9 || f(2) != 0.9 {
		t.Errorf("stable pairs: %v %v, want 0.9", f(1), f(2))
	}
	if f(0) != 0.3 || f(3) != 0.3 {
		t.Errorf("bursty pairs: %v %v, want 0.3", f(0), f(3))
	}
}

func TestFaultAwareMLUMin(t *testing.T) {
	g := graph.FullMesh(4, 10)
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	fs := te.NewFailureSet(g, [][2]int{{0, 1}})
	cfg, _, err := FaultAwareMLUMin(ps, d, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p := range cfg.R {
		if fs.PathDown(ps, p) && cfg.R[p] > 1e-9 {
			t.Errorf("failed path %d carries ratio %v", p, cfg.R[p])
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: on random small instances the LP optimum is never worse than
// heuristic configs (shortest-path-only and uniform), and the returned
// config achieves the reported objective.
func TestMLUMinDominatesHeuristics(t *testing.T) {
	g := graph.GEANT()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := make([]float64, ps.Pairs.Count())
		for i := range d {
			d[i] = rng.Float64() * 2
		}
		cfg, obj, err := MLUMin(ps, d)
		if err != nil {
			return false
		}
		if math.Abs(cfg.MLU(d)-obj) > 1e-5*(1+obj) {
			return false
		}
		sp := te.NewConfig(ps).MLU(d)
		un := te.UniformConfig(ps).MLU(d)
		return obj <= sp+1e-7 && obj <= un+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

func TestMLUMinDemandSizeMismatch(t *testing.T) {
	ps, _ := fig3Setup(t)
	if _, _, err := MLUMin(ps, []float64{1}); err == nil {
		t.Error("wrong demand size accepted")
	}
	if _, _, err := MLUMinCapped(ps, make([]float64, ps.Pairs.Count()), []float64{1}); err == nil {
		t.Error("wrong caps size accepted")
	}
	caps := make([]float64, ps.NumPaths())
	caps[0] = -1
	if _, _, err := MLUMinCapped(ps, make([]float64, ps.Pairs.Count()), caps); err == nil {
		t.Error("negative cap accepted")
	}
}
