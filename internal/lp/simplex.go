// Package lp is a dense two-phase simplex linear-programming solver plus
// builders for the TE linear programs of the paper (MLU minimization,
// Appendix B; desensitization and fine-grained path-sensitivity caps,
// Appendix C; fault-aware variants). It substitutes for Gurobi in the
// original artifact.
//
// The solver targets the small and medium problem instances used for exact
// baselines and cross-checks; large (ToR-scale) instances should use the
// projected-gradient solver in internal/solver, mirroring the paper's own
// observation that LP does not scale to such topologies.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

const (
	// LE means a·x <= b.
	LE Sense = iota
	// GE means a·x >= b.
	GE
	// EQ means a·x == b.
	EQ
)

// Problem is a linear program in the form
//
//	minimize  c·x
//	subject to A[i]·x (S[i]) B[i]   for every row i
//	           x >= 0
type Problem struct {
	C []float64
	A [][]float64
	B []float64
	S []Sense
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: no variables")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.S) {
		return fmt.Errorf("lp: %d rows, %d rhs, %d senses", len(p.A), len(p.B), len(p.S))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the optimal x and objective.
// It returns ErrInfeasible or ErrUnbounded for such problems.
func Solve(p *Problem) ([]float64, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	m := len(p.A)

	// Normalize to b >= 0 and count slack/artificial variables.
	type rowInfo struct {
		sense Sense
		flip  bool
	}
	rows := make([]rowInfo, m)
	nSlack := 0
	for i := range p.A {
		s := p.S[i]
		flip := p.B[i] < 0
		if flip {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		rows[i] = rowInfo{sense: s, flip: flip}
		if s != EQ {
			nSlack++
		}
	}
	// Columns: n structural + nSlack slacks + m artificials (one per row that
	// needs it: GE and EQ always; LE rows use their slack as the basis).
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows × (total + 1); last column is rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	for i := range p.A {
		row := make([]float64, total+1)
		sign := 1.0
		if rows[i].flip {
			sign = -1
		}
		for j, v := range p.A[i] {
			row[j] = sign * v
		}
		row[total] = sign * p.B[i]
		switch rows[i].sense {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		t[i] = row
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		reduce(obj, t, basis)
		if err := iterate(t, obj, basis, total); err != nil {
			return nil, 0, err
		}
		// After reduce, obj's rhs holds -(phase-1 objective value); a
		// strictly positive optimum means no feasible point exists.
		if -obj[total] > eps {
			return nil, 0, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		for i, b := range basis {
			if b < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless.
				basis[i] = -1
			}
		}
	}

	// Phase 2: original objective (artificial columns frozen at zero).
	obj := make([]float64, total+1)
	copy(obj, p.C)
	reduce(obj, t, basis)
	if err := iterate2(t, obj, basis, n+nSlack); err != nil {
		return nil, 0, err
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = t[i][total]
		}
	}
	return x, dotVec(p.C, x), nil
}

// reduce prices out basic variables from obj.
func reduce(obj []float64, t [][]float64, basis []int) {
	for i, b := range basis {
		if b < 0 {
			continue
		}
		if c := obj[b]; c != 0 {
			for j := range obj {
				obj[j] -= c * t[i][j]
			}
		}
	}
}

// iterate runs simplex iterations over all columns (phase 1).
func iterate(t [][]float64, obj []float64, basis []int, nCols int) error {
	return iterate2(t, obj, basis, nCols)
}

// iterate2 runs simplex with Dantzig pricing and a Bland fallback to
// guarantee termination, considering only the first nCols columns as
// entering candidates.
func iterate2(t [][]float64, obj []float64, basis []int, nCols int) error {
	total := len(obj) - 1
	degenerate := 0
	for iter := 0; ; iter++ {
		// Entering column.
		enter := -1
		if degenerate < 20 {
			best := -eps
			for j := 0; j < nCols; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			// Bland's rule under degeneracy.
			for j := 0; j < nCols; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := range t {
			a := t[i][enter]
			if a > eps {
				r := t[i][total] / a
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		if bestRatio < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		pivotObj(t, obj, basis, leave, enter)
	}
}

// pivot performs a basis change on the tableau only.
func pivot(t [][]float64, basis []int, leave, enter int) {
	pivotRow := t[leave]
	pv := pivotRow[enter]
	inv := 1 / pv
	for j := range pivotRow {
		pivotRow[j] *= inv
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		row := t[i]
		for j := range row {
			row[j] -= f * pivotRow[j]
		}
	}
	basis[leave] = enter
}

// pivotObj pivots tableau and objective row together.
func pivotObj(t [][]float64, obj []float64, basis []int, leave, enter int) {
	pivot(t, basis, leave, enter)
	f := obj[enter]
	if f != 0 {
		pr := t[leave]
		for j := range obj {
			obj[j] -= f * pr[j]
		}
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range b {
		s += a[i] * b[i]
	}
	return s
}
