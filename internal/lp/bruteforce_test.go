package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestSimplexOptimalityAgainstSampling generates random feasible LPs and
// verifies that (a) the simplex solution satisfies every constraint, and
// (b) no randomly sampled feasible point achieves a better objective.
func TestSimplexOptimalityAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		nv := 2 + rng.Intn(3)
		nc := 2 + rng.Intn(3)
		p := &Problem{C: make([]float64, nv)}
		for i := range p.C {
			p.C[i] = rng.NormFloat64()
		}
		// Constraints a·x <= b with a >= 0 and b > 0: box-like, always
		// feasible (x = 0) and bounded in the positive orthant... boundedness
		// of the LP requires c >= 0 or bounded polytope; add an explicit
		// simplex bound Σx <= B to guarantee it.
		for i := 0; i < nc; i++ {
			row := make([]float64, nv)
			for j := range row {
				row[j] = rng.Float64()
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 1+rng.Float64()*3)
			p.S = append(p.S, LE)
		}
		bound := make([]float64, nv)
		for j := range bound {
			bound[j] = 1
		}
		p.A = append(p.A, bound)
		p.B = append(p.B, 5)
		p.S = append(p.S, LE)

		x, obj, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		feasible := func(x []float64) bool {
			for i, row := range p.A {
				dot := 0.0
				for j := range row {
					dot += row[j] * x[j]
				}
				if dot > p.B[i]+1e-7 {
					return false
				}
			}
			for _, v := range x {
				if v < -1e-9 {
					return false
				}
			}
			return true
		}
		if !feasible(x) {
			t.Fatalf("trial %d: simplex point infeasible: %v", trial, x)
		}
		// Sample candidate points: random scaled corners and interior picks.
		for s := 0; s < 4000; s++ {
			cand := make([]float64, nv)
			for j := range cand {
				cand[j] = rng.Float64() * 5
			}
			if !feasible(cand) {
				continue
			}
			co := 0.0
			for j := range cand {
				co += p.C[j] * cand[j]
			}
			if co < obj-1e-6 {
				t.Fatalf("trial %d: sampled point %v beats simplex: %v < %v", trial, cand, co, obj)
			}
		}
	}
}

// TestSimplexEqualityFeasibility solves LPs with equality rows and verifies
// the equalities hold exactly.
func TestSimplexEqualityFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		nv := 3 + rng.Intn(3)
		p := &Problem{C: make([]float64, nv)}
		for i := range p.C {
			p.C[i] = rng.Float64()
		}
		// One normalization equality Σx = 1 plus random LE rows.
		eq := make([]float64, nv)
		for j := range eq {
			eq[j] = 1
		}
		p.A = append(p.A, eq)
		p.B = append(p.B, 1)
		p.S = append(p.S, EQ)
		for i := 0; i < 2; i++ {
			row := make([]float64, nv)
			for j := range row {
				row[j] = rng.Float64()
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 0.5+rng.Float64())
			p.S = append(p.S, LE)
		}
		x, _, err := Solve(p)
		if err == ErrInfeasible {
			continue // legitimately infeasible draw
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if math.Abs(sum-1) > 1e-7 {
			t.Fatalf("trial %d: equality violated, sum=%v", trial, sum)
		}
	}
}
