package lp

import (
	"fmt"
	"math"

	"figret/internal/te"
)

// This file builds the TE linear programs of the paper on top of the simplex
// solver. Variable layout for all of them: x[0..P-1] are the per-path split
// ratios r_p, x[P] is the MLU variable θ.
//
//	minimize θ
//	s.t.  Σ_{p∈P_sd} r_p = 1                      (per SD pair)
//	      Σ_{p∋e} D_{sd(p)}·r_p − θ·c_e ≤ 0       (per edge)
//	      r_p ≤ cap_p                             (optional sensitivity caps)
//
// which is Appendix B's formulation plus Equation (4)'s constraints.

// MLUMin solves the exact MLU-minimizing TE configuration for demand d
// (the Omniscient baseline when d is the true demand, the
// demand-prediction baseline when d is a prediction).
func MLUMin(ps *te.PathSet, d []float64) (*te.Config, float64, error) {
	return MLUMinCapped(ps, d, nil)
}

// MLUMinCapped solves MLU minimization with optional per-path upper bounds
// caps (caps[p] bounds r_p; pass nil for none, math.Inf(1) entries are
// skipped). This implements the desensitization-based TE of [37,44] when
// caps[p] = F·C_p with constant F, and the fine-grained Appendix C variants
// when caps vary per SD pair.
func MLUMinCapped(ps *te.PathSet, d []float64, caps []float64) (*te.Config, float64, error) {
	if len(d) != ps.Pairs.Count() {
		return nil, 0, fmt.Errorf("lp: demand has %d entries, want %d", len(d), ps.Pairs.Count())
	}
	if caps != nil && len(caps) != ps.NumPaths() {
		return nil, 0, fmt.Errorf("lp: caps has %d entries, want %d", len(caps), ps.NumPaths())
	}
	P := ps.NumPaths()
	nv := P + 1
	theta := P
	var A [][]float64
	var B []float64
	var S []Sense

	// Pair conservation: Σ r_p = 1.
	for _, pp := range ps.PairPaths {
		row := make([]float64, nv)
		for _, p := range pp {
			row[p] = 1
		}
		A = append(A, row)
		B = append(B, 1)
		S = append(S, EQ)
	}
	// Edge utilization: Σ_p∋e d·r_p − c_e·θ ≤ 0.
	ne := ps.G.NumEdges()
	edgeRows := make([][]float64, ne)
	for e := 0; e < ne; e++ {
		row := make([]float64, nv)
		row[theta] = -ps.G.Edge(e).Capacity
		edgeRows[e] = row
	}
	for p, eids := range ps.EdgeIDs {
		dp := d[ps.PairOf[p]]
		if dp == 0 {
			continue
		}
		for _, e := range eids {
			edgeRows[e][p] += dp
		}
	}
	for e := 0; e < ne; e++ {
		A = append(A, edgeRows[e])
		B = append(B, 0)
		S = append(S, LE)
	}
	// Sensitivity caps.
	if caps != nil {
		for p, c := range caps {
			if math.IsInf(c, 1) {
				continue
			}
			if c < 0 {
				return nil, 0, fmt.Errorf("lp: negative cap %v on path %d", c, p)
			}
			row := make([]float64, nv)
			row[p] = 1
			A = append(A, row)
			B = append(B, c)
			S = append(S, LE)
		}
	}
	c := make([]float64, nv)
	c[theta] = 1
	x, obj, err := Solve(&Problem{C: c, A: A, B: B, S: S})
	if err != nil {
		return nil, 0, err
	}
	// Normalize away any numerical slack from the solver before wrapping.
	cfg := configFromRaw(ps, x[:P])
	return cfg, obj, nil
}

func configFromRaw(ps *te.PathSet, raw []float64) *te.Config {
	c := te.NewConfig(ps)
	copy(c.R, raw)
	c.Normalize()
	return c
}

// SensitivityCaps converts a per-pair sensitivity bound function F into
// per-path ratio caps cap_p = F(sd)·C_p (Equation 4: r_p/C_p ≤ F(s,d) ⇔
// r_p ≤ F(s,d)·C_p). Capacities are normalized so the topology's minimum
// equals 1, matching the paper's parameter conventions in Appendix C.
// Bounds are sanitized so every pair stays feasible: if a pair's caps sum
// to < 1 they are scaled up to sum to exactly 1.
func SensitivityCaps(ps *te.PathSet, f func(pair int) float64) []float64 {
	minCap := ps.G.MinCapacity()
	if minCap <= 0 {
		minCap = 1
	}
	caps := make([]float64, ps.NumPaths())
	for p := range caps {
		bound := f(ps.PairOf[p])
		if math.IsInf(bound, 1) {
			caps[p] = math.Inf(1)
			continue
		}
		caps[p] = bound * ps.Cap[p] / minCap
	}
	for _, pp := range ps.PairPaths {
		sum := 0.0
		inf := false
		for _, p := range pp {
			if math.IsInf(caps[p], 1) {
				inf = true
				break
			}
			sum += caps[p]
		}
		if inf || sum >= 1 {
			continue
		}
		scale := 1 / sum * (1 + 1e-9)
		for _, p := range pp {
			caps[p] *= scale
		}
	}
	return caps
}

// ConstantF returns the desensitization-based TE's constant sensitivity
// bound (Google Jupiter hedging): F(s,d) ≡ bound for every pair.
func ConstantF(bound float64) func(pair int) float64 {
	return func(int) float64 { return bound }
}

// LinearF implements the Appendix C.1 heuristic: pairs are ordered by
// historical traffic variance; the allowed sensitivity decreases linearly
// from max (most stable pair) to min (most bursty pair).
func LinearF(variances []float64, min, max float64) func(pair int) float64 {
	order := rankOf(variances)
	n := float64(len(variances) - 1)
	return func(pair int) float64 {
		if n <= 0 {
			return max
		}
		frac := float64(order[pair]) / n // 0 = most stable
		return max - frac*(max-min)
	}
}

// PiecewiseF implements the Appendix C.2 heuristic: pairs below the
// breakpoint quantile of the variance ordering get the loose bound max,
// pairs above it get the tight bound min.
func PiecewiseF(variances []float64, min, max, breakpoint float64) func(pair int) float64 {
	order := rankOf(variances)
	n := float64(len(variances))
	return func(pair int) float64 {
		if float64(order[pair]) < breakpoint*n {
			return max
		}
		return min
	}
}

// rankOf returns each element's rank (0 = smallest) in ascending order.
func rankOf(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value for determinism (n is pair count; fine for the
	// sizes LP handles).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	rank := make([]int, len(xs))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}

// FaultAwareMLUMin solves MLU minimization restricted to the paths that
// survive the failure set: failed paths are forced to ratio 0 (the "FA Des
// TE" oracle of §5.3 when combined with caps). Pairs with no surviving path
// make the problem infeasible.
func FaultAwareMLUMin(ps *te.PathSet, d []float64, fs *te.FailureSet, caps []float64) (*te.Config, float64, error) {
	adjusted := make([]float64, ps.NumPaths())
	if caps != nil {
		copy(adjusted, caps)
	} else {
		for p := range adjusted {
			adjusted[p] = math.Inf(1)
		}
	}
	for p := range adjusted {
		if fs.PathDown(ps, p) {
			adjusted[p] = 0
		}
	}
	return MLUMinCapped(ps, d, adjusted)
}
