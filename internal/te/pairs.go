// Package te implements the traffic-engineering model of §3 of the FIGRET
// paper: source-destination pair indexing, candidate path sets with their
// incidence structures (Function 1 of Appendix D.1), TE configurations
// (per-path split ratios), Max Link Utilization evaluation, path sensitivity
// S_p = r_p / C_p, and the failure-rerouting policy of §4.5.
package te

import "fmt"

// Pairs provides a dense indexing of all ordered source-destination pairs
// (s,d), s != d, over n vertices. Pair index layout is row-major by source
// with the diagonal removed: pairs of source s occupy indices
// s*(n-1) .. s*(n-1)+n-2.
type Pairs struct {
	n int
}

// NewPairs returns the pair indexing for n vertices.
func NewPairs(n int) Pairs {
	if n < 2 {
		panic(fmt.Sprintf("te: need at least 2 vertices, got %d", n))
	}
	return Pairs{n: n}
}

// N returns the vertex count.
func (p Pairs) N() int { return p.n }

// Count returns the number of ordered SD pairs, n*(n-1).
func (p Pairs) Count() int { return p.n * (p.n - 1) }

// Index returns the dense index of pair (s,d). It panics if s==d or either
// endpoint is out of range.
func (p Pairs) Index(s, d int) int {
	if s == d || s < 0 || d < 0 || s >= p.n || d >= p.n {
		panic(fmt.Sprintf("te: invalid pair (%d,%d) for n=%d", s, d, p.n))
	}
	if d > s {
		return s*(p.n-1) + d - 1
	}
	return s*(p.n-1) + d
}

// SD returns the (source, destination) of a pair index.
func (p Pairs) SD(idx int) (s, d int) {
	if idx < 0 || idx >= p.Count() {
		panic(fmt.Sprintf("te: pair index %d out of range [0,%d)", idx, p.Count()))
	}
	s = idx / (p.n - 1)
	d = idx % (p.n - 1)
	if d >= s {
		d++
	}
	return s, d
}
