package te

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"figret/internal/graph"
)

func TestPairsRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 23} {
		p := NewPairs(n)
		if p.Count() != n*(n-1) {
			t.Fatalf("n=%d Count=%d", n, p.Count())
		}
		seen := make([]bool, p.Count())
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				idx := p.Index(s, d)
				if seen[idx] {
					t.Fatalf("n=%d duplicate index %d for (%d,%d)", n, idx, s, d)
				}
				seen[idx] = true
				gs, gd := p.SD(idx)
				if gs != s || gd != d {
					t.Fatalf("n=%d SD(Index(%d,%d)) = (%d,%d)", n, s, d, gs, gd)
				}
			}
		}
	}
}

func TestPairsPanics(t *testing.T) {
	p := NewPairs(3)
	for _, c := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%d,%d) should panic", c[0], c[1])
				}
			}()
			p.Index(c[0], c[1])
		}()
	}
}

func trianglePS(t *testing.T) *PathSet {
	t.Helper()
	ps, err := NewPathSet(graph.Triangle(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestPathSetTriangle(t *testing.T) {
	ps := trianglePS(t)
	if ps.Pairs.Count() != 6 {
		t.Fatalf("pairs = %d", ps.Pairs.Count())
	}
	// Each pair in a triangle has exactly 2 simple paths.
	if ps.NumPaths() != 12 {
		t.Fatalf("paths = %d, want 12", ps.NumPaths())
	}
	for pi, pp := range ps.PairPaths {
		if len(pp) != 2 {
			t.Errorf("pair %d has %d paths", pi, len(pp))
		}
		// First path is the direct one (1 hop).
		if len(ps.Paths[pp[0]]) != 2 {
			t.Errorf("pair %d first path not direct: %v", pi, ps.Paths[pp[0]])
		}
		if ps.Cap[pp[0]] != 2 {
			t.Errorf("pair %d direct cap = %v", pi, ps.Cap[pp[0]])
		}
	}
}

// demand builds the Figure 3 demand vector: A->B, A->C, B->C.
func fig3Demand(ps *PathSet, ab, ac, bc float64) []float64 {
	d := make([]float64, ps.Pairs.Count())
	d[ps.Pairs.Index(0, 1)] = ab
	d[ps.Pairs.Index(0, 2)] = ac
	d[ps.Pairs.Index(1, 2)] = bc
	return d
}

// setRatio sets the split of pair (s,d): direct path gets rDirect, two-hop
// gets 1-rDirect.
func setRatio(ps *PathSet, c *Config, s, d int, rDirect float64) {
	pp := ps.PairPaths[ps.Pairs.Index(s, d)]
	for _, p := range pp {
		if len(ps.Paths[p]) == 2 {
			c.R[p] = rDirect
		} else {
			c.R[p] = 1 - rDirect
		}
	}
}

// TestFig3WorkedExample reproduces the exact MLU numbers of the paper's
// Figure 3 trade-off example under the shared-link convention it uses.
func TestFig3WorkedExample(t *testing.T) {
	ps := trianglePS(t)
	normal := fig3Demand(ps, 1, 1, 1)
	burst1 := fig3Demand(ps, 4, 1, 1)
	burst2 := fig3Demand(ps, 1, 4, 1)
	burst3 := fig3Demand(ps, 1, 1, 4)

	check := func(name string, c *Config, d []float64, want float64) {
		t.Helper()
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ps.SharedLinkMLU(d, c.R)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: MLU = %v, want %v", name, got, want)
		}
	}

	// TE scheme 1: everything on shortest (direct) paths.
	s1 := NewConfig(ps)
	check("scheme1 normal", s1, normal, 0.5)
	check("scheme1 burst1", s1, burst1, 2)
	check("scheme1 burst2", s1, burst2, 2)
	check("scheme1 burst3", s1, burst3, 2)

	// TE scheme 2: 50/50 everywhere.
	s2 := NewConfig(ps)
	setRatio(ps, s2, 0, 1, 0.5)
	setRatio(ps, s2, 0, 2, 0.5)
	setRatio(ps, s2, 1, 2, 0.5)
	check("scheme2 normal", s2, normal, 0.75)
	check("scheme2 burst1", s2, burst1, 1.5)
	check("scheme2 burst2", s2, burst2, 1.5)
	check("scheme2 burst3", s2, burst3, 1.5)

	// TE scheme 3: hedge only B->C (62.5% direct / 37.5% via A).
	s3 := NewConfig(ps)
	setRatio(ps, s3, 1, 2, 0.625)
	check("scheme3 normal", s3, normal, 0.6875)
	check("scheme3 burst1", s3, burst1, 2.1875)
	check("scheme3 burst2", s3, burst2, 2.1875)
	check("scheme3 burst3", s3, burst3, 1.25)
}

func TestMLUDirected(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	d := fig3Demand(ps, 1, 1, 1)
	m, arg := ps.MLU(d, c.R)
	if m != 0.5 {
		t.Errorf("directed MLU = %v, want 0.5", m)
	}
	if arg < 0 || arg >= ps.G.NumEdges() {
		t.Errorf("argmax edge %d out of range", arg)
	}
	// Zero demand.
	z := make([]float64, ps.Pairs.Count())
	if m, _ := ps.MLU(z, c.R); m != 0 {
		t.Errorf("zero-demand MLU = %v", m)
	}
}

func TestEdgeFlowsReuseBuffer(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	d := fig3Demand(ps, 1, 2, 3)
	buf := make([]float64, ps.G.NumEdges())
	f1 := ps.EdgeFlows(d, c.R, buf)
	if &f1[0] != &buf[0] {
		t.Error("buffer was not reused")
	}
	f2 := ps.EdgeFlows(d, c.R, nil)
	for i := range f1 {
		if math.Abs(f1[i]-f2[i]) > 1e-12 {
			t.Fatalf("flow %d differs: %v vs %v", i, f1[i], f2[i])
		}
	}
}

func TestEdgeCSRMatchesEdgeIDs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Triangle(), graph.GEANT()} {
		ps, err := NewPathSet(g, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids, start := ps.EdgeCSR()
		if len(start) != ps.NumPaths()+1 {
			t.Fatalf("start has %d entries for %d paths", len(start), ps.NumPaths())
		}
		for p, eids := range ps.EdgeIDs {
			span := ids[start[p]:start[p+1]]
			if len(span) != len(eids) {
				t.Fatalf("path %d: CSR span %d edges, EdgeIDs %d", p, len(span), len(eids))
			}
			for i, e := range eids {
				if int(span[i]) != e {
					t.Fatalf("path %d edge %d: CSR %d, EdgeIDs %d", p, i, span[i], e)
				}
			}
		}
		caps := ps.EdgeCaps()
		for e := 0; e < ps.G.NumEdges(); e++ {
			if caps[e] != ps.G.Edge(e).Capacity {
				t.Fatalf("edge %d capacity cache %v, graph %v", e, caps[e], ps.G.Edge(e).Capacity)
			}
		}
	}
}

func TestEdgeCSRLazyBuild(t *testing.T) {
	// PathSets assembled by hand (without NewPathSet) must still serve
	// EdgeFlows via the lazily built CSR.
	full := trianglePS(t)
	ps := &PathSet{
		G: full.G, Pairs: full.Pairs,
		Paths: full.Paths, PairOf: full.PairOf, EdgeIDs: full.EdgeIDs,
		Cap: full.Cap, PairPaths: full.PairPaths,
	}
	r := make([]float64, ps.NumPaths())
	d := make([]float64, ps.Pairs.Count())
	for i := range r {
		r[i] = 0.5
	}
	for i := range d {
		d[i] = float64(i + 1)
	}
	got := ps.EdgeFlows(d, r, nil)
	want := full.EdgeFlows(d, r, nil)
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("edge %d: lazy CSR flow %v, eager %v", e, got[e], want[e])
		}
	}
}

func TestEdgeFlowsMatchesNaive(t *testing.T) {
	ps, err := NewPathSet(graph.GEANT(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = rng.Float64() * 3
	}
	cfg := UniformConfig(ps)
	got := ps.EdgeFlows(d, cfg.R, nil)
	// Naive slice-of-slices reference.
	want := make([]float64, ps.G.NumEdges())
	for p, eids := range ps.EdgeIDs {
		f := d[ps.PairOf[p]] * cfg.R[p]
		for _, e := range eids {
			want[e] += f
		}
	}
	for e := range want {
		if math.Abs(got[e]-want[e]) > 1e-12 {
			t.Fatalf("edge %d: CSR flow %v, naive %v", e, got[e], want[e])
		}
	}
}

func TestConfigValidateAndNormalize(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.R[0] = 0.7 // break pair sums
	if err := c.Validate(); err == nil {
		t.Error("broken config validated")
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		t.Errorf("normalize did not repair: %v", err)
	}
	// NaN rejected.
	c2 := NewConfig(ps)
	c2.R[1] = math.NaN()
	if err := c2.Validate(); err == nil {
		t.Error("NaN ratio validated")
	}
	// All-zero pair becomes uniform.
	c3 := NewConfig(ps)
	for _, p := range ps.PairPaths[0] {
		c3.R[p] = 0
	}
	c3.Normalize()
	for _, p := range ps.PairPaths[0] {
		if math.Abs(c3.R[p]-0.5) > 1e-12 {
			t.Errorf("zero pair not uniform after Normalize: %v", c3.R[p])
		}
	}
	// Negative clipped.
	c4 := NewConfig(ps)
	pp := ps.PairPaths[0]
	c4.R[pp[0]] = -0.5
	c4.R[pp[1]] = 0.5
	c4.Normalize()
	if c4.R[pp[0]] != 0 || c4.R[pp[1]] != 1 {
		t.Errorf("negative clip failed: %v %v", c4.R[pp[0]], c4.R[pp[1]])
	}
}

// Property: Normalize always yields a valid config from arbitrary raw input.
func TestNormalizeProperty(t *testing.T) {
	ps := trianglePS(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConfig(ps)
		for i := range c.R {
			c.R[i] = rng.NormFloat64()
		}
		c.Normalize()
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MLU is monotone in demand and 1-homogeneous in demand scale.
func TestMLUScalingProperty(t *testing.T) {
	ps, err := NewPathSet(graph.GEANT(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := UniformConfig(ps)
	rng := rand.New(rand.NewSource(5))
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = rng.Float64()
	}
	m1, _ := ps.MLU(d, c.R)
	d2 := make([]float64, len(d))
	for i := range d {
		d2[i] = 3 * d[i]
	}
	m2, _ := ps.MLU(d2, c.R)
	if math.Abs(m2-3*m1) > 1e-9 {
		t.Errorf("homogeneity broken: %v vs 3*%v", m2, m1)
	}
	// Monotone: raising one demand never lowers MLU.
	d[7] *= 10
	m3, _ := ps.MLU(d, c.R)
	if m3 < m1-1e-12 {
		t.Errorf("monotonicity broken: %v < %v", m3, m1)
	}
}

func TestSensitivities(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	s := ps.Sensitivities(c.R, false)
	for p := range s {
		want := c.R[p] / ps.Cap[p]
		if math.Abs(s[p]-want) > 1e-12 {
			t.Errorf("S[%d] = %v, want %v", p, s[p], want)
		}
	}
	// Normalized: min capacity 2 scales to 1, so sensitivities double.
	sn := ps.Sensitivities(c.R, true)
	for p := range sn {
		if math.Abs(sn[p]-2*s[p]) > 1e-12 {
			t.Errorf("normalized S[%d] = %v, want %v", p, sn[p], 2*s[p])
		}
	}
	// Max per pair of a direct-only config: 0.5 on the direct path.
	mx := ps.MaxPairSensitivities(c.R, false)
	for pi, v := range mx {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("pair %d max sensitivity = %v, want 0.5", pi, v)
		}
	}
}

func TestRerouteProportional(t *testing.T) {
	// Paper's example: (0.5, 0.3, 0.2) with first path failed -> (0, 0.6, 0.4).
	g := graph.FullMesh(4, 10)
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConfig(ps)
	pi := ps.Pairs.Index(0, 1)
	pp := ps.PairPaths[pi]
	if len(pp) != 3 {
		t.Fatalf("need 3 candidate paths, got %d", len(pp))
	}
	c.R[pp[0]], c.R[pp[1]], c.R[pp[2]] = 0.5, 0.3, 0.2
	// Fail the direct link 0-1 (pp[0] is the direct path).
	fs := NewFailureSet(g, [][2]int{{0, 1}})
	if !fs.PathDown(ps, pp[0]) {
		t.Fatal("direct path should be down")
	}
	out := Reroute(c, fs)
	if out.R[pp[0]] != 0 {
		t.Errorf("failed path ratio = %v", out.R[pp[0]])
	}
	if math.Abs(out.R[pp[1]]-0.6) > 1e-12 || math.Abs(out.R[pp[2]]-0.4) > 1e-12 {
		t.Errorf("proportional redistribution = (%v,%v), want (0.6,0.4)", out.R[pp[1]], out.R[pp[2]])
	}
	// Original untouched.
	if c.R[pp[0]] != 0.5 {
		t.Error("Reroute mutated input")
	}
}

func TestRerouteEqualSplit(t *testing.T) {
	// Paper's example: (1, 0, 0) with first path failed -> (0, 0.5, 0.5).
	g := graph.FullMesh(4, 10)
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConfig(ps)
	pi := ps.Pairs.Index(0, 1)
	pp := ps.PairPaths[pi]
	c.R[pp[0]], c.R[pp[1]], c.R[pp[2]] = 1, 0, 0
	fs := NewFailureSet(g, [][2]int{{0, 1}})
	out := Reroute(c, fs)
	if out.R[pp[0]] != 0 || math.Abs(out.R[pp[1]]-0.5) > 1e-12 || math.Abs(out.R[pp[2]]-0.5) > 1e-12 {
		t.Errorf("equal redistribution = (%v,%v,%v), want (0,0.5,0.5)",
			out.R[pp[0]], out.R[pp[1]], out.R[pp[2]])
	}
}

// Property: rerouting conserves each pair's total ratio unless the pair is
// fully disconnected, and never leaves traffic on a failed path.
func TestRerouteConservationProperty(t *testing.T) {
	g := graph.GEANT()
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConfig(ps)
		for i := range c.R {
			c.R[i] = rng.Float64()
		}
		c.Normalize()
		// Fail two random links.
		es := g.Edges()
		var links [][2]int
		for len(links) < 2 {
			e := es[rng.Intn(len(es))]
			links = append(links, [2]int{e.From, e.To})
		}
		fs := NewFailureSet(g, links)
		out := Reroute(c, fs)
		for pi, pp := range ps.PairPaths {
			sum, aliveCount := 0.0, 0
			for _, p := range pp {
				if fs.PathDown(ps, p) {
					if out.R[p] != 0 {
						return false
					}
				} else {
					aliveCount++
				}
				sum += out.R[p]
			}
			if aliveCount == 0 {
				if sum != 0 {
					return false
				}
				continue
			}
			if math.Abs(sum-1) > 1e-9 {
				_ = pi
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSharedLinkMLUVersusDirected(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	d := fig3Demand(ps, 1, 1, 1)
	dir, _ := ps.MLU(d, c.R)
	shared := ps.SharedLinkMLU(d, c.R)
	if shared < dir {
		t.Errorf("shared-link MLU %v < directed %v (must dominate)", shared, dir)
	}
}

func TestNewPathSetErrors(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	// Vertex 2 unreachable.
	if _, err := NewPathSet(g, 3, nil); err == nil {
		t.Error("disconnected graph should fail")
	}
	if _, err := NewPathSet(graph.Triangle(), 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestMaxPathsPerPair(t *testing.T) {
	ps := trianglePS(t)
	if got := ps.MaxPathsPerPair(); got != 2 {
		t.Errorf("MaxPathsPerPair = %d, want 2", got)
	}
}

func TestUtilizations(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	d := fig3Demand(ps, 1, 0, 0)
	u := ps.Utilizations(d, c.R)
	id, _ := ps.G.EdgeID(0, 1)
	if math.Abs(u[id]-0.5) > 1e-12 {
		t.Errorf("utilization of (0,1) = %v, want 0.5", u[id])
	}
	for e, v := range u {
		if e != id && v != 0 {
			t.Errorf("edge %d has spurious utilization %v", e, v)
		}
	}
}
