package te

import (
	"fmt"
	"math"
	"sync"

	"figret/internal/graph"
)

// PathSet holds the candidate paths for every SD pair of a topology together
// with the precomputed incidence structures that map split ratios to edge
// flows (the SDtoPath and PathtoEdge matrices of Function 1, Appendix D.1,
// stored sparsely).
//
// A PathSet is immutable after construction and safe for concurrent use.
type PathSet struct {
	G     *graph.Graph
	Pairs Pairs

	// Paths is the flat list of all candidate paths across all pairs.
	Paths []graph.Path
	// PairOf[p] is the pair index served by path p.
	PairOf []int
	// EdgeIDs[p] lists the edge indices traversed by path p.
	EdgeIDs [][]int
	// Cap[p] is the path capacity C_p = min edge capacity along p.
	Cap []float64
	// PairPaths[k] lists the path indices serving pair k (ordered by length).
	PairPaths [][]int

	// Flat CSR mirror of EdgeIDs, built lazily: csrEdges[csrStart[p]:
	// csrStart[p+1]] are path p's edge ids in one contiguous array. The
	// hot loops (EdgeFlows, the training loss gradient, the gradient
	// solver) walk this layout instead of the slice-of-slices, trading
	// one indirection per path for none and keeping the edge ids dense
	// in cache. csrCap caches per-edge capacities for the same loops.
	csrOnce  sync.Once
	csrEdges []int32
	csrStart []int32
	csrCap   []float64
}

// PathSelector chooses candidate paths for one SD pair.
type PathSelector func(g *graph.Graph, s, d, k int) []graph.Path

// YenSelector returns the paper's default path selection: Yen's K shortest
// paths by hop count.
func YenSelector(g *graph.Graph, s, d, k int) []graph.Path {
	return g.KShortestPaths(s, d, k, graph.HopWeight)
}

// NewPathSet computes candidate paths for every SD pair of g using sel
// (k paths per pair where the topology allows). It returns an error if any
// pair has no path (disconnected topology).
func NewPathSet(g *graph.Graph, k int, sel PathSelector) (*PathSet, error) {
	if k <= 0 {
		return nil, fmt.Errorf("te: path count k=%d must be positive", k)
	}
	if sel == nil {
		sel = YenSelector
	}
	n := g.NumVertices()
	pairs := NewPairs(n)
	ps := &PathSet{
		G:         g,
		Pairs:     pairs,
		PairPaths: make([][]int, pairs.Count()),
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			pi := pairs.Index(s, d)
			cand := sel(g, s, d, k)
			if len(cand) == 0 {
				return nil, fmt.Errorf("te: no path from %d to %d", s, d)
			}
			for _, p := range cand {
				eids, ok := p.Edges(g)
				if !ok {
					return nil, fmt.Errorf("te: selector returned invalid path %v for (%d,%d)", p, s, d)
				}
				id := len(ps.Paths)
				ps.Paths = append(ps.Paths, p)
				ps.PairOf = append(ps.PairOf, pi)
				ps.EdgeIDs = append(ps.EdgeIDs, eids)
				ps.Cap = append(ps.Cap, p.Capacity(g))
				ps.PairPaths[pi] = append(ps.PairPaths[pi], id)
			}
		}
	}
	ps.ensureCSR()
	return ps, nil
}

// NumPaths returns the total number of candidate paths.
func (ps *PathSet) NumPaths() int { return len(ps.Paths) }

// ensureCSR builds the flat edge-incidence layout. It runs eagerly in
// NewPathSet and lazily (via sync.Once, so still concurrency-safe) for
// PathSets assembled by hand in tests.
func (ps *PathSet) ensureCSR() {
	ps.csrOnce.Do(func() {
		total := 0
		for _, eids := range ps.EdgeIDs {
			total += len(eids)
		}
		ps.csrEdges = make([]int32, 0, total)
		ps.csrStart = make([]int32, len(ps.EdgeIDs)+1)
		for p, eids := range ps.EdgeIDs {
			for _, e := range eids {
				ps.csrEdges = append(ps.csrEdges, int32(e))
			}
			ps.csrStart[p+1] = int32(len(ps.csrEdges))
		}
		ne := ps.G.NumEdges()
		ps.csrCap = make([]float64, ne)
		for e := 0; e < ne; e++ {
			ps.csrCap[e] = ps.G.Edge(e).Capacity
		}
	})
}

// EdgeCSR returns the flat edge-incidence layout: ids[start[p]:start[p+1]]
// are the edge indices of path p. Both slices are shared and must not be
// modified.
func (ps *PathSet) EdgeCSR() (ids []int32, start []int32) {
	ps.ensureCSR()
	return ps.csrEdges, ps.csrStart
}

// EdgeCaps returns the cached per-edge capacity vector (shared; read-only).
func (ps *PathSet) EdgeCaps() []float64 {
	ps.ensureCSR()
	return ps.csrCap
}

// MaxPathsPerPair returns the largest candidate set size over all pairs.
func (ps *PathSet) MaxPathsPerPair() int {
	m := 0
	for _, pp := range ps.PairPaths {
		if len(pp) > m {
			m = len(pp)
		}
	}
	return m
}

// EdgeFlows accumulates the per-edge flow induced by demand vector d (indexed
// by pair) and split ratios r (indexed by path): f_e = Σ_p d[pair(p)]·r[p]
// over paths containing e. The result has one entry per directed edge.
// dst, if non-nil and correctly sized, is reused to avoid allocation.
func (ps *PathSet) EdgeFlows(d, r []float64, dst []float64) []float64 {
	ps.ensureCSR()
	ne := ps.G.NumEdges()
	if dst == nil || len(dst) != ne {
		dst = make([]float64, ne)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	ids, start := ps.csrEdges, ps.csrStart
	pairOf := ps.PairOf
	for p := range pairOf {
		f := d[pairOf[p]] * r[p]
		if f == 0 {
			continue
		}
		for _, e := range ids[start[p]:start[p+1]] {
			dst[e] += f
		}
	}
	return dst
}

// MLU returns the max link utilization induced by demand d under split
// ratios r, and the index of the arg-max edge. For an all-zero demand it
// returns (0, 0).
func (ps *PathSet) MLU(d, r []float64) (float64, int) {
	flows := ps.EdgeFlows(d, r, nil)
	return ps.MLUFromFlows(flows)
}

// MLUFromFlows converts per-edge flows to (max utilization, argmax edge).
func (ps *PathSet) MLUFromFlows(flows []float64) (float64, int) {
	best, arg := 0.0, 0
	for e, f := range flows {
		u := f / ps.G.Edge(e).Capacity
		if u > best {
			best, arg = u, e
		}
	}
	return best, arg
}

// Utilizations returns per-edge utilization f_e / c_e for demand d under r.
func (ps *PathSet) Utilizations(d, r []float64) []float64 {
	flows := ps.EdgeFlows(d, r, nil)
	for e := range flows {
		flows[e] /= ps.G.Edge(e).Capacity
	}
	return flows
}

// SharedLinkMLU evaluates MLU treating each pair of opposite directed edges
// as one undirected link whose capacity is shared by both directions:
// u(a,b) = (f_{a->b} + f_{b->a}) / c. This is the convention of the paper's
// Figure 3 worked example ("A↔B: 2"); the evaluation sections use the
// per-directed-edge MLU instead.
func (ps *PathSet) SharedLinkMLU(d, r []float64) float64 {
	flows := ps.EdgeFlows(d, r, nil)
	best := 0.0
	for e, f := range flows {
		ed := ps.G.Edge(e)
		total := f
		if rev, ok := ps.G.EdgeID(ed.To, ed.From); ok {
			total += flows[rev]
		}
		if u := total / ed.Capacity; u > best {
			best = u
		}
	}
	return best
}

// Sensitivities returns S_p = r_p / C_p for every path (the paper's path
// sensitivity metric, §4.1). Capacities can optionally be normalized so the
// topology's smallest edge capacity counts as 1, as the paper does when
// plotting Figure 8; pass normalize=true for that convention.
func (ps *PathSet) Sensitivities(r []float64, normalize bool) []float64 {
	scale := 1.0
	if normalize {
		if m := ps.G.MinCapacity(); m > 0 {
			scale = m
		}
	}
	s := make([]float64, len(r))
	for p := range r {
		s[p] = r[p] * scale / ps.Cap[p]
	}
	return s
}

// MaxPairSensitivities returns S^max_sd per pair: the maximum sensitivity
// among the paths serving each pair (used by the L2 loss term, Eq. 8).
func (ps *PathSet) MaxPairSensitivities(r []float64, normalize bool) []float64 {
	s := ps.Sensitivities(r, normalize)
	out := make([]float64, ps.Pairs.Count())
	for i := range out {
		out[i] = math.Inf(-1)
	}
	for p, v := range s {
		if pi := ps.PairOf[p]; v > out[pi] {
			out[pi] = v
		}
	}
	for i, v := range out {
		if math.IsInf(v, -1) {
			out[i] = 0
		}
	}
	return out
}
