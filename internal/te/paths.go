package te

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"figret/internal/graph"
)

// PathSet holds the candidate paths for every SD pair of a topology together
// with the precomputed incidence structures that map split ratios to edge
// flows (the SDtoPath and PathtoEdge matrices of Function 1, Appendix D.1,
// stored sparsely).
//
// A PathSet is immutable after construction and safe for concurrent use.
type PathSet struct {
	G     *graph.Graph
	Pairs Pairs
	// K is the candidate-path budget the set was computed with (paths per
	// pair where the topology allows; pairs may hold fewer). PathStore
	// uses it to content-address the set on disk.
	K int

	// Paths is the flat list of all candidate paths across all pairs.
	Paths []graph.Path
	// PairOf[p] is the pair index served by path p.
	PairOf []int
	// EdgeIDs[p] lists the edge indices traversed by path p.
	EdgeIDs [][]int
	// Cap[p] is the path capacity C_p = min edge capacity along p.
	Cap []float64
	// PairPaths[k] lists the path indices serving pair k (ordered by length).
	PairPaths [][]int

	// Flat CSR mirror of EdgeIDs, built lazily: csrEdges[csrStart[p]:
	// csrStart[p+1]] are path p's edge ids in one contiguous array. The
	// hot loops (EdgeFlows, the training loss gradient, the gradient
	// solver) walk this layout instead of the slice-of-slices, trading
	// one indirection per path for none and keeping the edge ids dense
	// in cache. csrCap caches per-edge capacities for the same loops.
	csrOnce  sync.Once
	csrEdges []int32
	csrStart []int32
	csrCap   []float64
}

// PathSelector chooses candidate paths for one SD pair.
type PathSelector func(g *graph.Graph, s, d, k int) []graph.Path

// YenSelector returns the paper's default path selection: Yen's K shortest
// paths by hop count.
func YenSelector(g *graph.Graph, s, d, k int) []graph.Path {
	return g.KShortestPaths(s, d, k, graph.HopWeight)
}

// SelectorYen is the content-address name of the default Yen selector.
const SelectorYen = "yen"

// PathSetOptions configures NewPathSetOpt.
type PathSetOptions struct {
	// Workers sizes the precomputation worker pool; <= 0 selects
	// runtime.NumCPU(), 1 runs sequentially. The resulting PathSet is
	// bitwise identical for every worker count: each pair's candidate
	// list lands in an index-addressed slot and the set is flattened in
	// pair order, so scheduling never reorders output.
	Workers int
	// Selector overrides path selection. Nil selects Yen's algorithm run
	// on per-worker solvers with reused scratch (graph.YenSolver). A
	// non-nil Selector must be safe for concurrent use when Workers != 1
	// (it is called from multiple goroutines with distinct pairs).
	Selector PathSelector
	// SelectorName content-addresses the selector for Store lookups.
	// Defaults to SelectorYen when Selector is nil. A custom Selector
	// with an empty SelectorName disables the Store (an unnamed selector
	// cannot be addressed on disk).
	SelectorName string
	// Store, when non-nil, is consulted before computing: a cache hit
	// (same topology content hash, k and selector name) reloads the
	// persisted set instead of solving, and a miss persists the freshly
	// computed set for the next process. Corrupt or stale entries are
	// treated as misses and overwritten (self-healing), and persistence
	// is best-effort: a failed write (read-only or full cache volume)
	// never discards the freshly computed set — the next process simply
	// recomputes. Call PathStore.Save directly to treat a write failure
	// as an error.
	Store *PathStore
}

// NewPathSet computes candidate paths for every SD pair of g using sel
// (k paths per pair where the topology allows). It returns an error if any
// pair has no path (disconnected topology). Precomputation fans out across
// runtime.NumCPU() workers; use NewPathSetOpt to pin the worker count or
// attach an on-disk PathStore. Output is identical for any worker count.
func NewPathSet(g *graph.Graph, k int, sel PathSelector) (*PathSet, error) {
	return NewPathSetOpt(g, k, PathSetOptions{Selector: sel})
}

// NewPathSetOpt is NewPathSet with explicit precomputation options.
func NewPathSetOpt(g *graph.Graph, k int, opt PathSetOptions) (*PathSet, error) {
	if k <= 0 {
		return nil, fmt.Errorf("te: path count k=%d must be positive", k)
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	selName := opt.SelectorName
	if opt.Selector == nil && selName == "" {
		selName = SelectorYen
	}
	if opt.Store != nil && selName != "" {
		if ps, err := opt.Store.Load(g, k, selName); err == nil {
			return ps, nil
		} else if !IsPathCacheMiss(err) {
			return nil, err
		}
	}
	pairs := NewPairs(g.NumVertices())
	perPair, err := computePairPaths(g, k, pairs, opt)
	if err != nil {
		return nil, err
	}
	ps, err := assemblePathSet(g, k, pairs, perPair)
	if err != nil {
		return nil, err
	}
	if opt.Store != nil && selName != "" {
		// Best-effort: the computed set is valid regardless of whether
		// it could be persisted; failing startup over a cache write
		// would invert the store's purpose.
		_ = opt.Store.Save(ps, selName)
	}
	return ps, nil
}

// computePairPaths runs the per-pair selector over all SD pairs on a worker
// pool and returns the candidate lists in index-addressed slots (slot pi
// holds pair pi's paths), so the output layout is independent of worker
// count and scheduling. Pair indices are claimed in ascending order and a
// failure stops further claims; because every claimed index runs to
// completion, the smallest failing pair is always among the completed ones
// and the returned error is deterministic.
func computePairPaths(g *graph.Graph, k int, pairs Pairs, opt PathSetOptions) ([][]graph.Path, error) {
	count := pairs.Count()
	perPair := make([][]graph.Path, count)
	// newSel builds one worker's selector: the shared custom selector, or
	// a worker-owned Yen solver whose Dijkstra/spur scratch is reused
	// across every pair the worker claims.
	newSel := func() PathSelector {
		if opt.Selector != nil {
			return opt.Selector
		}
		ys := graph.NewYenSolver(g)
		return func(g *graph.Graph, s, d, k int) []graph.Path {
			return ys.KShortestPaths(s, d, k, graph.HopWeight)
		}
	}
	solve := func(sel PathSelector, pi int) error {
		s, d := pairs.SD(pi)
		cand := sel(g, s, d, k)
		if len(cand) == 0 {
			return fmt.Errorf("te: no path from %d to %d", s, d)
		}
		perPair[pi] = cand
		return nil
	}
	workers := opt.Workers
	if workers > count {
		workers = count
	}
	if workers == 1 {
		sel := newSel()
		for pi := 0; pi < count; pi++ {
			if err := solve(sel, pi); err != nil {
				return nil, err
			}
		}
		return perPair, nil
	}
	errs := make([]error, count)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sel := newSel()
			for {
				// Check-then-claim, exactly as eval.Parallel: indices are
				// claimed ascending, so every index below a failing one
				// has been claimed and completes, making the smallest
				// failing index deterministic.
				if failed.Load() {
					return
				}
				pi := int(next.Add(1)) - 1
				if pi >= count {
					return
				}
				if err := solve(sel, pi); err != nil {
					errs[pi] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return perPair, nil
}

// assemblePathSet flattens index-addressed per-pair candidate lists into a
// PathSet in pair order — the same order the original sequential
// implementation appended in, which is what keeps parallel output bitwise
// identical to sequential. It validates every path against g (also the
// integrity backstop for PathStore loads).
func assemblePathSet(g *graph.Graph, k int, pairs Pairs, perPair [][]graph.Path) (*PathSet, error) {
	ps := &PathSet{
		G:         g,
		Pairs:     pairs,
		K:         k,
		PairPaths: make([][]int, pairs.Count()),
	}
	for pi, cand := range perPair {
		if len(cand) == 0 {
			s, d := pairs.SD(pi)
			return nil, fmt.Errorf("te: no path from %d to %d", s, d)
		}
		for _, p := range cand {
			eids, ok := p.Edges(g)
			if !ok {
				s, d := pairs.SD(pi)
				return nil, fmt.Errorf("te: selector returned invalid path %v for (%d,%d)", p, s, d)
			}
			id := len(ps.Paths)
			ps.Paths = append(ps.Paths, p)
			ps.PairOf = append(ps.PairOf, pi)
			ps.EdgeIDs = append(ps.EdgeIDs, eids)
			ps.Cap = append(ps.Cap, p.Capacity(g))
			ps.PairPaths[pi] = append(ps.PairPaths[pi], id)
		}
	}
	ps.ensureCSR()
	return ps, nil
}

// NumPaths returns the total number of candidate paths.
func (ps *PathSet) NumPaths() int { return len(ps.Paths) }

// ensureCSR builds the flat edge-incidence layout. It runs eagerly in
// NewPathSet and lazily (via sync.Once, so still concurrency-safe) for
// PathSets assembled by hand in tests.
func (ps *PathSet) ensureCSR() {
	ps.csrOnce.Do(func() {
		total := 0
		for _, eids := range ps.EdgeIDs {
			total += len(eids)
		}
		ps.csrEdges = make([]int32, 0, total)
		ps.csrStart = make([]int32, len(ps.EdgeIDs)+1)
		for p, eids := range ps.EdgeIDs {
			for _, e := range eids {
				ps.csrEdges = append(ps.csrEdges, int32(e))
			}
			ps.csrStart[p+1] = int32(len(ps.csrEdges))
		}
		ne := ps.G.NumEdges()
		ps.csrCap = make([]float64, ne)
		for e := 0; e < ne; e++ {
			ps.csrCap[e] = ps.G.Edge(e).Capacity
		}
	})
}

// EdgeCSR returns the flat edge-incidence layout: ids[start[p]:start[p+1]]
// are the edge indices of path p. Both slices are shared and must not be
// modified.
func (ps *PathSet) EdgeCSR() (ids []int32, start []int32) {
	ps.ensureCSR()
	return ps.csrEdges, ps.csrStart
}

// EdgeCaps returns the cached per-edge capacity vector (shared; read-only).
func (ps *PathSet) EdgeCaps() []float64 {
	ps.ensureCSR()
	return ps.csrCap
}

// MaxPathsPerPair returns the largest candidate set size over all pairs.
func (ps *PathSet) MaxPathsPerPair() int {
	m := 0
	for _, pp := range ps.PairPaths {
		if len(pp) > m {
			m = len(pp)
		}
	}
	return m
}

// EdgeFlows accumulates the per-edge flow induced by demand vector d (indexed
// by pair) and split ratios r (indexed by path): f_e = Σ_p d[pair(p)]·r[p]
// over paths containing e. The result has one entry per directed edge.
// dst, if non-nil and correctly sized, is reused to avoid allocation.
func (ps *PathSet) EdgeFlows(d, r []float64, dst []float64) []float64 {
	ps.ensureCSR()
	ne := ps.G.NumEdges()
	if dst == nil || len(dst) != ne {
		dst = make([]float64, ne)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	ids, start := ps.csrEdges, ps.csrStart
	pairOf := ps.PairOf
	for p := range pairOf {
		f := d[pairOf[p]] * r[p]
		if f == 0 {
			continue
		}
		for _, e := range ids[start[p]:start[p+1]] {
			dst[e] += f
		}
	}
	return dst
}

// MLU returns the max link utilization induced by demand d under split
// ratios r, and the index of the arg-max edge. For an all-zero demand it
// returns (0, 0).
func (ps *PathSet) MLU(d, r []float64) (float64, int) {
	flows := ps.EdgeFlows(d, r, nil)
	return ps.MLUFromFlows(flows)
}

// MLUFromFlows converts per-edge flows to (max utilization, argmax edge).
func (ps *PathSet) MLUFromFlows(flows []float64) (float64, int) {
	best, arg := 0.0, 0
	for e, f := range flows {
		u := f / ps.G.Edge(e).Capacity
		if u > best {
			best, arg = u, e
		}
	}
	return best, arg
}

// Utilizations returns per-edge utilization f_e / c_e for demand d under r.
func (ps *PathSet) Utilizations(d, r []float64) []float64 {
	flows := ps.EdgeFlows(d, r, nil)
	for e := range flows {
		flows[e] /= ps.G.Edge(e).Capacity
	}
	return flows
}

// SharedLinkMLU evaluates MLU treating each pair of opposite directed edges
// as one undirected link whose capacity is shared by both directions:
// u(a,b) = (f_{a->b} + f_{b->a}) / c. This is the convention of the paper's
// Figure 3 worked example ("A↔B: 2"); the evaluation sections use the
// per-directed-edge MLU instead.
func (ps *PathSet) SharedLinkMLU(d, r []float64) float64 {
	flows := ps.EdgeFlows(d, r, nil)
	best := 0.0
	for e, f := range flows {
		ed := ps.G.Edge(e)
		total := f
		if rev, ok := ps.G.EdgeID(ed.To, ed.From); ok {
			total += flows[rev]
		}
		if u := total / ed.Capacity; u > best {
			best = u
		}
	}
	return best
}

// Sensitivities returns S_p = r_p / C_p for every path (the paper's path
// sensitivity metric, §4.1). Capacities can optionally be normalized so the
// topology's smallest edge capacity counts as 1, as the paper does when
// plotting Figure 8; pass normalize=true for that convention.
func (ps *PathSet) Sensitivities(r []float64, normalize bool) []float64 {
	scale := 1.0
	if normalize {
		if m := ps.G.MinCapacity(); m > 0 {
			scale = m
		}
	}
	s := make([]float64, len(r))
	for p := range r {
		s[p] = r[p] * scale / ps.Cap[p]
	}
	return s
}

// MaxPairSensitivities returns S^max_sd per pair: the maximum sensitivity
// among the paths serving each pair (used by the L2 loss term, Eq. 8).
func (ps *PathSet) MaxPairSensitivities(r []float64, normalize bool) []float64 {
	s := ps.Sensitivities(r, normalize)
	out := make([]float64, ps.Pairs.Count())
	for i := range out {
		out[i] = math.Inf(-1)
	}
	for p, v := range s {
		if pi := ps.PairOf[p]; v > out[pi] {
			out[pi] = v
		}
	}
	for i, v := range out {
		if math.IsInf(v, -1) {
			out[i] = 0
		}
	}
	return out
}
