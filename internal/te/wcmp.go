package te

import (
	"fmt"
	"math"
)

// This file implements WCMP (Weighted-Cost Multi-Path) quantization. Real
// switches realize split ratios as small integer weight tables, not
// arbitrary reals; the paper's deployability argument (§7) is that FIGRET
// "only needs switches that support WCMP". QuantizeWCMP converts a
// configuration's ratios into per-pair integer weights with a bounded table
// size, using the largest-remainder method, so the resulting configuration
// is exactly implementable in such hardware.

// QuantizeWCMP returns a copy of c whose per-pair ratios are multiples of
// 1/tableSize: each pair's ratio vector becomes integer weights summing to
// tableSize. tableSize must be positive. Weights are assigned by the
// largest-remainder method, which minimizes the per-path L1 rounding error
// among all integer apportionments.
//
// Pairs whose ratios are all (approximately) zero — e.g. disconnected by
// te.Reroute after their every candidate path failed — are preserved as
// all-zero rather than apportioned: quantization never resurrects a failed
// path. Every other pair's weights sum to exactly tableSize even when
// floating-point drift pushes its ratio sum slightly off 1, so the output
// always satisfies WCMPWeights.
func QuantizeWCMP(c *Config, tableSize int) (*Config, error) {
	if tableSize <= 0 {
		return nil, fmt.Errorf("te: WCMP table size %d must be positive", tableSize)
	}
	out := c.Clone()
	for _, pp := range c.ps.PairPaths {
		quantizePair(out.R, pp, tableSize)
	}
	return out, nil
}

// quantizePair rounds the ratios at indices pp to multiples of 1/total:
// zero-mass pairs become exactly zero, positive-mass pairs become integer
// weights summing to exactly total.
func quantizePair(r []float64, pp []int, total int) {
	var mass float64
	for _, p := range pp {
		mass += r[p]
	}
	if mass < 1e-9 {
		// Disconnected pair: no traffic to apportion. Clearing (rather
		// than largest-remainder over an all-zero vector, which would
		// hand every path one slot) keeps failed paths at ratio 0.
		for _, p := range pp {
			r[p] = 0
		}
		return
	}
	type rem struct {
		p    int
		frac float64
	}
	// Floor allocation plus remainder ranking.
	floorSum := 0
	rems := make([]rem, 0, len(pp))
	weights := make(map[int]int, len(pp))
	for _, p := range pp {
		exact := r[p] * float64(total)
		w := int(math.Floor(exact + 1e-12))
		weights[p] = w
		floorSum += w
		rems = append(rems, rem{p: p, frac: exact - float64(w)})
	}
	// Sort by descending remainder (deterministic tie-break on path index).
	for i := 0; i < len(rems); i++ {
		for j := i + 1; j < len(rems); j++ {
			if rems[j].frac > rems[i].frac+1e-15 ||
				(math.Abs(rems[j].frac-rems[i].frac) <= 1e-15 && rems[j].p < rems[i].p) {
				rems[i], rems[j] = rems[j], rems[i]
			}
		}
	}
	// Distribute missing slots to the largest remainders, cycling if the
	// deficit exceeds the path count (ratios summing well below 1).
	missing := total - floorSum
	for i := 0; missing > 0; i++ {
		weights[rems[i%len(rems)].p]++
		missing--
	}
	// Strip excess slots from the smallest remainders (ratios summing
	// above 1 can make floorSum > total), never driving a weight negative.
	for i := len(rems) - 1; missing < 0; i-- {
		if i < 0 {
			i = len(rems) - 1
		}
		if w := weights[rems[i].p]; w > 0 {
			weights[rems[i].p] = w - 1
			missing++
		}
	}
	inv := 1 / float64(total)
	for _, p := range pp {
		r[p] = float64(weights[p]) * inv
	}
}

// WCMPError returns the maximum absolute per-path ratio difference between
// c and its quantized counterpart q.
func WCMPError(c, q *Config) float64 {
	worst := 0.0
	for p := range c.R {
		if d := math.Abs(c.R[p] - q.R[p]); d > worst {
			worst = d
		}
	}
	return worst
}

// WCMPWeights extracts the integer weight table of a quantized
// configuration for one pair (weights per candidate path, summing to
// tableSize — or all zero for a pair disconnected by failures, which
// carries no traffic). It errors if the configuration is not a multiple of
// 1/tableSize.
func WCMPWeights(c *Config, pair, tableSize int) ([]int, error) {
	pp := c.ps.PairPaths[pair]
	out := make([]int, len(pp))
	sum := 0
	for i, p := range pp {
		w := c.R[p] * float64(tableSize)
		rounded := math.Round(w)
		if math.Abs(w-rounded) > 1e-6 {
			return nil, fmt.Errorf("te: ratio %v of path %d is not a multiple of 1/%d", c.R[p], p, tableSize)
		}
		out[i] = int(rounded)
		sum += out[i]
	}
	if sum != tableSize && sum != 0 {
		return nil, fmt.Errorf("te: pair %d weights sum to %d, want %d or 0", pair, sum, tableSize)
	}
	return out, nil
}
