package te

import (
	"fmt"
	"math"
)

// Config is a TE configuration: one split ratio per candidate path. Ratios of
// the paths serving the same SD pair must sum to 1 (the constraint
// Σ_{p∈P_sd} r_p = 1 of §3).
type Config struct {
	ps *PathSet
	// R holds the split ratio for each path, aligned with ps.Paths.
	R []float64
}

// NewConfig returns a configuration with all of each pair's traffic on its
// first (shortest) candidate path.
func NewConfig(ps *PathSet) *Config {
	c := &Config{ps: ps, R: make([]float64, ps.NumPaths())}
	for _, pp := range ps.PairPaths {
		c.R[pp[0]] = 1
	}
	return c
}

// UniformConfig returns a configuration splitting each pair's traffic evenly
// across its candidate paths (the maximal-hedging strategy of Fig. 3(d)).
func UniformConfig(ps *PathSet) *Config {
	c := &Config{ps: ps, R: make([]float64, ps.NumPaths())}
	for _, pp := range ps.PairPaths {
		w := 1 / float64(len(pp))
		for _, p := range pp {
			c.R[p] = w
		}
	}
	return c
}

// FromRatios wraps raw ratios in a Config after validating them.
func FromRatios(ps *PathSet, r []float64) (*Config, error) {
	c := &Config{ps: ps, R: r}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// PathSet returns the path set this configuration is defined over.
func (c *Config) PathSet() *PathSet { return c.ps }

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	return &Config{ps: c.ps, R: append([]float64(nil), c.R...)}
}

// Validate checks that ratios are finite, non-negative and sum to 1 for each
// pair (within tolerance).
func (c *Config) Validate() error {
	if len(c.R) != c.ps.NumPaths() {
		return fmt.Errorf("te: ratio vector has %d entries, want %d", len(c.R), c.ps.NumPaths())
	}
	for p, r := range c.R {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < -1e-9 {
			return fmt.Errorf("te: ratio[%d] = %v invalid", p, r)
		}
	}
	for pi, pp := range c.ps.PairPaths {
		sum := 0.0
		for _, p := range pp {
			sum += c.R[p]
		}
		if math.Abs(sum-1) > 1e-6 {
			s, d := c.ps.Pairs.SD(pi)
			return fmt.Errorf("te: ratios of pair (%d,%d) sum to %v, want 1", s, d, sum)
		}
	}
	return nil
}

// Normalize rescales each pair's ratios to sum to 1 (projecting negative
// entries to 0 first); pairs whose ratios sum to 0 get a uniform split. This
// is the feasibility-enforcement step the paper applies to raw DNN outputs
// (§6, "can be easily enforced by normalizing the outputs").
func (c *Config) Normalize() {
	for _, pp := range c.ps.PairPaths {
		sum := 0.0
		for _, p := range pp {
			if c.R[p] < 0 {
				c.R[p] = 0
			}
			sum += c.R[p]
		}
		if sum <= 0 {
			w := 1 / float64(len(pp))
			for _, p := range pp {
				c.R[p] = w
			}
			continue
		}
		for _, p := range pp {
			c.R[p] /= sum
		}
	}
}

// MLU evaluates max link utilization for demand vector d.
func (c *Config) MLU(d []float64) float64 {
	m, _ := c.ps.MLU(d, c.R)
	return m
}

// MaxSensitivity returns the maximum path sensitivity across all paths
// (the COUDER-style global robustness metric).
func (c *Config) MaxSensitivity(normalize bool) float64 {
	best := 0.0
	for _, s := range c.ps.Sensitivities(c.R, normalize) {
		if s > best {
			best = s
		}
	}
	return best
}
