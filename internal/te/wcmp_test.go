package te

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"figret/internal/graph"
)

func TestQuantizeWCMPBasic(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	pp := ps.PairPaths[0]
	c.R[pp[0]], c.R[pp[1]] = 0.63, 0.37
	q, err := QuantizeWCMP(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0.63*8 = 5.04 -> 5; 0.37*8 = 2.96 -> 3.
	if math.Abs(q.R[pp[0]]-5.0/8) > 1e-12 || math.Abs(q.R[pp[1]]-3.0/8) > 1e-12 {
		t.Errorf("quantized = (%v, %v)", q.R[pp[0]], q.R[pp[1]])
	}
	// Original untouched.
	if c.R[pp[0]] != 0.63 {
		t.Error("input mutated")
	}
	if _, err := QuantizeWCMP(c, 0); err == nil {
		t.Error("table size 0 accepted")
	}
}

func TestQuantizeWCMPErrorBound(t *testing.T) {
	// Property: per-path error of largest-remainder quantization is below
	// 1/tableSize, and ratios stay a valid distribution.
	g := graph.FullMesh(5, 10)
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConfig(ps)
		for i := range c.R {
			c.R[i] = rng.Float64()
		}
		c.Normalize()
		for _, size := range []int{4, 16, 64} {
			q, err := QuantizeWCMP(c, size)
			if err != nil {
				return false
			}
			if q.Validate() != nil {
				return false
			}
			if WCMPError(c, q) >= 1/float64(size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeWCMPConvergesToExact(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	c.R[ps.PairPaths[0][0]] = 0.7391
	c.R[ps.PairPaths[0][1]] = 0.2609
	prev := math.Inf(1)
	for _, size := range []int{2, 8, 32, 128, 1024} {
		q, err := QuantizeWCMP(c, size)
		if err != nil {
			t.Fatal(err)
		}
		e := WCMPError(c, q)
		if e > prev+1e-12 {
			t.Errorf("error grew with table size %d: %v -> %v", size, prev, e)
		}
		prev = e
	}
	if prev > 1e-3 {
		t.Errorf("large table error %v", prev)
	}
}

func TestQuantizeWCMPMLUImpactShrinks(t *testing.T) {
	// The MLU of the quantized config approaches the ideal config's MLU.
	g := graph.GEANT()
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	c := NewConfig(ps)
	for i := range c.R {
		c.R[i] = rng.Float64()
	}
	c.Normalize()
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = rng.Float64()
	}
	ideal := c.MLU(d)
	q4, _ := QuantizeWCMP(c, 4)
	q64, _ := QuantizeWCMP(c, 64)
	gap4 := math.Abs(q4.MLU(d) - ideal)
	gap64 := math.Abs(q64.MLU(d) - ideal)
	if gap64 > gap4+1e-12 {
		t.Errorf("MLU gap did not shrink: table 4 gap %v, table 64 gap %v", gap4, gap64)
	}
	if gap64 > 0.05*ideal {
		t.Errorf("table-64 MLU gap %v too large vs ideal %v", gap64, ideal)
	}
}

func TestWCMPWeights(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	pp := ps.PairPaths[0]
	c.R[pp[0]], c.R[pp[1]] = 0.75, 0.25
	q, err := QuantizeWCMP(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WCMPWeights(q, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 3 || w[1] != 1 {
		t.Errorf("weights = %v, want [3 1]", w)
	}
	// Non-quantized config rejected.
	c.R[pp[0]], c.R[pp[1]] = 0.701, 0.299
	if _, err := WCMPWeights(c, 0, 4); err == nil {
		t.Error("non-multiple ratios accepted")
	}
}

func TestQuantizeZeroPair(t *testing.T) {
	// A pair concentrated on one path stays concentrated.
	ps := trianglePS(t)
	c := NewConfig(ps)
	q, err := QuantizeWCMP(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	for p, r := range q.R {
		if r != c.R[p] {
			t.Errorf("path %d changed: %v -> %v", p, c.R[p], r)
		}
	}
}

// TestQuantizeZeroMassPairStaysZero: a pair whose every ratio is ~0 (the
// state te.Reroute leaves a fully disconnected pair in) must quantize to
// all-zero weights, not be resurrected with one slot per path.
func TestQuantizeZeroMassPairStaysZero(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	dead := 2 // zero out pair 2's paths
	for _, p := range ps.PairPaths[dead] {
		c.R[p] = 0
	}
	q, err := QuantizeWCMP(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps.PairPaths[dead] {
		if q.R[p] != 0 {
			t.Fatalf("dead pair path %d resurrected with ratio %v", p, q.R[p])
		}
	}
	w, err := WCMPWeights(q, dead, 16)
	if err != nil {
		t.Fatalf("WCMPWeights on zero-mass pair: %v", err)
	}
	for i, v := range w {
		if v != 0 {
			t.Fatalf("zero-mass weight[%d] = %d, want 0", i, v)
		}
	}
	// Live pairs still get full tables.
	for pi := range ps.PairPaths {
		if pi == dead {
			continue
		}
		w, err := WCMPWeights(q, pi, 16)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, v := range w {
			sum += v
		}
		if sum != 16 {
			t.Fatalf("pair %d weights sum to %d, want 16", pi, sum)
		}
	}
}

// TestQuantizeOverflowMassStripsExcess: ratios summing slightly above 1 can
// make the floor allocation exceed the table; the excess must be stripped
// from the smallest remainders so WCMPWeights still accepts the output.
func TestQuantizeOverflowMassStripsExcess(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	pp := ps.PairPaths[0] // triangle pairs have 2 candidate paths
	if len(pp) != 2 {
		t.Fatalf("setup: pair 0 has %d paths", len(pp))
	}
	// 0.55 + 0.55 = 1.10: exact weights (11, 11) with tableSize 20 floor
	// to 22 > 20; two slots must come back off the smaller remainders.
	c.R[pp[0]], c.R[pp[1]] = 0.55, 0.55
	q, err := QuantizeWCMP(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WCMPWeights(q, 0, 20)
	if err != nil {
		t.Fatalf("WCMPWeights rejected overflow-quantized pair: %v", err)
	}
	sum := 0
	for _, v := range w {
		sum += v
	}
	if sum != 20 {
		t.Fatalf("weights %v sum to %d, want 20", w, sum)
	}
}

// TestQuantizeAlwaysSatisfiesWCMPWeights fuzzes quantization with ratio
// vectors drifted off the simplex in both directions: every pair of the
// output must be accepted by WCMPWeights.
func TestQuantizeAlwaysSatisfiesWCMPWeights(t *testing.T) {
	ps := trianglePS(t)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		c := UniformConfig(ps)
		for pi, pp := range ps.PairPaths {
			switch pi % 3 {
			case 0: // zero mass
				for _, p := range pp {
					c.R[p] = 0
				}
			default: // random mass in [0.9, 1.1], unevenly split
				mass := 0.9 + 0.2*rng.Float64()
				var sum float64
				raw := make([]float64, len(pp))
				for i := range raw {
					raw[i] = rng.Float64()
					sum += raw[i]
				}
				for i, p := range pp {
					c.R[p] = raw[i] / sum * mass
				}
			}
		}
		for _, table := range []int{1, 4, 16, 64} {
			q, err := QuantizeWCMP(c, table)
			if err != nil {
				t.Fatal(err)
			}
			for pi := range ps.PairPaths {
				if _, err := WCMPWeights(q, pi, table); err != nil {
					t.Fatalf("trial %d table %d pair %d: %v", trial, table, pi, err)
				}
			}
		}
	}
}

// TestRerouteQuantizeRoundTrip is the failure-path integration check:
// failing every link of a vertex disconnects its pairs; after Reroute and
// QuantizeWCMP the failed paths must stay at exactly zero and every
// surviving pair must still quantize to a full table.
func TestRerouteQuantizeRoundTrip(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	// Fail links (0,1) and (1,2): vertex 1 is cut off entirely.
	fs := NewFailureSet(ps.G, [][2]int{{0, 1}, {1, 2}})
	r := Reroute(c, fs)
	q, err := QuantizeWCMP(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range ps.PairPaths {
		s, d := ps.Pairs.SD(pi)
		w, err := WCMPWeights(q, pi, 8)
		if err != nil {
			t.Fatalf("pair (%d,%d): %v", s, d, err)
		}
		sum := 0
		for _, v := range w {
			sum += v
		}
		if s == 1 || d == 1 {
			if sum != 0 {
				t.Fatalf("disconnected pair (%d,%d) quantized to weights %v", s, d, w)
			}
			continue
		}
		if sum != 8 {
			t.Fatalf("surviving pair (%d,%d) weights %v sum to %d, want 8", s, d, w, sum)
		}
	}
	// No failed path anywhere may carry weight.
	for p := range q.R {
		if fs.PathDown(ps, p) && q.R[p] != 0 {
			t.Fatalf("failed path %d carries quantized ratio %v", p, q.R[p])
		}
	}
}
