package te

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"figret/internal/graph"
)

func TestQuantizeWCMPBasic(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	pp := ps.PairPaths[0]
	c.R[pp[0]], c.R[pp[1]] = 0.63, 0.37
	q, err := QuantizeWCMP(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0.63*8 = 5.04 -> 5; 0.37*8 = 2.96 -> 3.
	if math.Abs(q.R[pp[0]]-5.0/8) > 1e-12 || math.Abs(q.R[pp[1]]-3.0/8) > 1e-12 {
		t.Errorf("quantized = (%v, %v)", q.R[pp[0]], q.R[pp[1]])
	}
	// Original untouched.
	if c.R[pp[0]] != 0.63 {
		t.Error("input mutated")
	}
	if _, err := QuantizeWCMP(c, 0); err == nil {
		t.Error("table size 0 accepted")
	}
}

func TestQuantizeWCMPErrorBound(t *testing.T) {
	// Property: per-path error of largest-remainder quantization is below
	// 1/tableSize, and ratios stay a valid distribution.
	g := graph.FullMesh(5, 10)
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConfig(ps)
		for i := range c.R {
			c.R[i] = rng.Float64()
		}
		c.Normalize()
		for _, size := range []int{4, 16, 64} {
			q, err := QuantizeWCMP(c, size)
			if err != nil {
				return false
			}
			if q.Validate() != nil {
				return false
			}
			if WCMPError(c, q) >= 1/float64(size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeWCMPConvergesToExact(t *testing.T) {
	ps := trianglePS(t)
	c := UniformConfig(ps)
	c.R[ps.PairPaths[0][0]] = 0.7391
	c.R[ps.PairPaths[0][1]] = 0.2609
	prev := math.Inf(1)
	for _, size := range []int{2, 8, 32, 128, 1024} {
		q, err := QuantizeWCMP(c, size)
		if err != nil {
			t.Fatal(err)
		}
		e := WCMPError(c, q)
		if e > prev+1e-12 {
			t.Errorf("error grew with table size %d: %v -> %v", size, prev, e)
		}
		prev = e
	}
	if prev > 1e-3 {
		t.Errorf("large table error %v", prev)
	}
}

func TestQuantizeWCMPMLUImpactShrinks(t *testing.T) {
	// The MLU of the quantized config approaches the ideal config's MLU.
	g := graph.GEANT()
	ps, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	c := NewConfig(ps)
	for i := range c.R {
		c.R[i] = rng.Float64()
	}
	c.Normalize()
	d := make([]float64, ps.Pairs.Count())
	for i := range d {
		d[i] = rng.Float64()
	}
	ideal := c.MLU(d)
	q4, _ := QuantizeWCMP(c, 4)
	q64, _ := QuantizeWCMP(c, 64)
	gap4 := math.Abs(q4.MLU(d) - ideal)
	gap64 := math.Abs(q64.MLU(d) - ideal)
	if gap64 > gap4+1e-12 {
		t.Errorf("MLU gap did not shrink: table 4 gap %v, table 64 gap %v", gap4, gap64)
	}
	if gap64 > 0.05*ideal {
		t.Errorf("table-64 MLU gap %v too large vs ideal %v", gap64, ideal)
	}
}

func TestWCMPWeights(t *testing.T) {
	ps := trianglePS(t)
	c := NewConfig(ps)
	pp := ps.PairPaths[0]
	c.R[pp[0]], c.R[pp[1]] = 0.75, 0.25
	q, err := QuantizeWCMP(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WCMPWeights(q, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 3 || w[1] != 1 {
		t.Errorf("weights = %v, want [3 1]", w)
	}
	// Non-quantized config rejected.
	c.R[pp[0]], c.R[pp[1]] = 0.701, 0.299
	if _, err := WCMPWeights(c, 0, 4); err == nil {
		t.Error("non-multiple ratios accepted")
	}
}

func TestQuantizeZeroPair(t *testing.T) {
	// A pair concentrated on one path stays concentrated.
	ps := trianglePS(t)
	c := NewConfig(ps)
	q, err := QuantizeWCMP(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	for p, r := range q.R {
		if r != c.R[p] {
			t.Errorf("path %d changed: %v -> %v", p, c.R[p], r)
		}
	}
}
