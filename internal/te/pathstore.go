package te

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"figret/internal/graph"
)

// Process-wide path-cache counters, aggregated across every PathStore
// (stores are created ad hoc — experiments.NewEnv, cmd/served — and not
// retained, so per-store counters would be unreachable by the time a
// metrics scrape wants them).
var pathCacheHits, pathCacheMisses atomic.Uint64

// PathCacheStats returns the process-wide PathStore load totals: hits
// are Loads that returned a usable entry, misses are Loads that found
// the entry absent, corrupt or keyed differently (the recomputation
// path). Monotonic; safe for concurrent use.
func PathCacheStats() (hits, misses uint64) {
	return pathCacheHits.Load(), pathCacheMisses.Load()
}

// PathStore is a versioned on-disk cache of candidate-path precomputations,
// content-addressed by (topology content hash, k, selector name): every
// process serving, training on or evaluating the same topology shares one
// Yen precomputation instead of each paying the full n² solve at startup.
//
// Entries are standalone binary files (one per key) under the store
// directory, written atomically (temp file + rename) in the checksummed
// format documented in DESIGN.md §8: a magic/version header, the full
// address key, the per-pair vertex sequences of every candidate path, and a
// trailing CRC-32 over everything before it. Load rebuilds the PathSet
// through the same assembly path as a fresh computation — edge ids,
// capacities and the CSR mirror are re-derived from the live graph, never
// trusted from disk — so a loaded set is bitwise identical to the computed
// one. Any mismatch (truncation, bit rot, foreign format, stale version,
// different topology/k/selector) surfaces as a cache miss, and
// NewPathSetOpt then recomputes and overwrites the entry.
//
// A PathStore is safe for concurrent use by multiple processes: writers
// never publish partial files, and readers fully validate whatever they
// find.
type PathStore struct {
	dir string
}

// NewPathStore opens (creating if needed) a path cache rooted at dir.
func NewPathStore(dir string) (*PathStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("te: path store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("te: path store: %w", err)
	}
	return &PathStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *PathStore) Dir() string { return st.dir }

// pathCacheMissError reports that a store lookup found no usable entry; the
// reason distinguishes absent, corrupt and mismatched files for logging.
type pathCacheMissError struct{ reason string }

func (e *pathCacheMissError) Error() string {
	return "te: path cache miss: " + e.reason
}

// IsPathCacheMiss reports whether err is a PathStore cache miss (entry
// absent, corrupt, or keyed to a different topology/k/selector) — the
// recoverable outcome NewPathSetOpt responds to by computing fresh.
func IsPathCacheMiss(err error) bool {
	_, ok := err.(*pathCacheMissError)
	return ok
}

// On-disk format constants.
const (
	pathStoreMagic   = "FIGPATHS"
	pathStoreVersion = 1
)

// entryPath returns the file name for a key: a hex digest over the full
// address, so distinct (topology, k, selector) triples never collide on one
// file and the directory stays flat.
func (st *PathStore) entryPath(topoHash [sha256.Size]byte, k int, selector string) string {
	h := sha256.New()
	h.Write(topoHash[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(k))
	h.Write(buf[:])
	h.Write([]byte(selector))
	sum := h.Sum(nil)
	return filepath.Join(st.dir, "paths-"+hex.EncodeToString(sum[:16])+".bin")
}

// Save persists ps under (ps.G content hash, ps.K, selector), atomically
// replacing any existing entry for the key.
func (st *PathStore) Save(ps *PathSet, selector string) error {
	if ps.K <= 0 {
		return fmt.Errorf("te: path store: path set has no k recorded")
	}
	if selector == "" {
		return fmt.Errorf("te: path store: empty selector name")
	}
	topoHash := ps.G.ContentHash()

	var payload bytes.Buffer
	payload.WriteString(pathStoreMagic)
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		payload.Write(b[:])
	}
	writeU32(pathStoreVersion)
	payload.Write(topoHash[:])
	writeU32(uint32(ps.K))
	writeU32(uint32(ps.G.NumVertices()))
	writeU32(uint32(len(selector)))
	payload.WriteString(selector)
	writeU32(uint32(ps.Pairs.Count()))
	for _, pp := range ps.PairPaths {
		writeU32(uint32(len(pp)))
		for _, p := range pp {
			path := ps.Paths[p]
			writeU32(uint32(len(path)))
			for _, v := range path {
				writeU32(uint32(v))
			}
		}
	}
	writeU32(crc32.ChecksumIEEE(payload.Bytes()))

	dst := st.entryPath(topoHash, ps.K, selector)
	tmp, err := os.CreateTemp(st.dir, "paths-*.tmp")
	if err != nil {
		return fmt.Errorf("te: path store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("te: path store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("te: path store: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("te: path store: %w", err)
	}
	return nil
}

// Load reloads the cached path set for (g, k, selector). It returns a
// pathCacheMissError (see IsPathCacheMiss) when no valid entry exists; any
// other error is an I/O fault. On success the returned PathSet is bitwise
// identical to computing it fresh on g.
func (st *PathStore) Load(g *graph.Graph, k int, selector string) (*PathSet, error) {
	topoHash := g.ContentHash()
	data, err := os.ReadFile(st.entryPath(topoHash, k, selector))
	if os.IsNotExist(err) {
		pathCacheMisses.Add(1)
		return nil, &pathCacheMissError{reason: "no entry"}
	}
	if err != nil {
		return nil, fmt.Errorf("te: path store: %w", err)
	}
	perPair, err := decodePathStoreEntry(data, topoHash, k, g.NumVertices(), selector)
	if err != nil {
		pathCacheMisses.Add(1)
		return nil, err
	}
	ps, err := assemblePathSet(g, k, NewPairs(g.NumVertices()), perPair)
	if err != nil {
		// Paths that no longer exist in g mean the entry belongs to a
		// different (hash-colliding or hand-edited) topology: a miss, not
		// a fault.
		pathCacheMisses.Add(1)
		return nil, &pathCacheMissError{reason: err.Error()}
	}
	pathCacheHits.Add(1)
	return ps, nil
}

// decodePathStoreEntry validates an entry's framing, checksum and address
// key against the expected values and returns the per-pair vertex paths.
func decodePathStoreEntry(data []byte, topoHash [sha256.Size]byte, k, n int, selector string) ([][]graph.Path, error) {
	miss := func(format string, args ...interface{}) ([][]graph.Path, error) {
		return nil, &pathCacheMissError{reason: fmt.Sprintf(format, args...)}
	}
	// Checksum first: everything else assumes intact bytes.
	if len(data) < len(pathStoreMagic)+4 {
		return miss("truncated entry (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return miss("checksum mismatch")
	}
	r := &byteReader{data: body}
	if string(r.bytes(len(pathStoreMagic))) != pathStoreMagic {
		return miss("bad magic")
	}
	if v := r.u32(); v != pathStoreVersion {
		return miss("format version %d, want %d", v, pathStoreVersion)
	}
	var gotHash [sha256.Size]byte
	copy(gotHash[:], r.bytes(sha256.Size))
	if gotHash != topoHash {
		return miss("topology hash mismatch")
	}
	if gotK := int(r.u32()); gotK != k {
		return miss("k=%d, want %d", gotK, k)
	}
	if gotN := int(r.u32()); gotN != n {
		return miss("%d vertices, want %d", gotN, n)
	}
	if got := string(r.bytes(int(r.u32()))); got != selector {
		return miss("selector %q, want %q", got, selector)
	}
	pairs := NewPairs(n)
	if gotPairs := int(r.u32()); gotPairs != pairs.Count() {
		return miss("%d pairs, want %d", gotPairs, pairs.Count())
	}
	perPair := make([][]graph.Path, pairs.Count())
	for pi := range perPair {
		np := int(r.u32())
		if np <= 0 || np > k || r.failed {
			return miss("pair %d has %d paths", pi, np)
		}
		cand := make([]graph.Path, np)
		for i := range cand {
			plen := int(r.u32())
			if plen < 2 || plen > n || r.failed {
				return miss("pair %d path %d has length %d", pi, i, plen)
			}
			p := make(graph.Path, plen)
			for j := range p {
				v := int(r.u32())
				if v < 0 || v >= n {
					return miss("pair %d path %d visits vertex %d", pi, i, v)
				}
				p[j] = v
			}
			cand[i] = p
		}
		perPair[pi] = cand
	}
	if r.failed || r.off != len(body) {
		return miss("trailing or missing bytes")
	}
	return perPair, nil
}

// byteReader is a bounds-checked little-endian cursor; out-of-range reads
// set failed and return zeros instead of panicking, so decode loops can
// validate once per record.
type byteReader struct {
	data   []byte
	off    int
	failed bool
}

func (r *byteReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.data) {
		r.failed = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
