package te

import (
	"os"
	"path/filepath"
	"testing"

	"figret/internal/graph"
)

// samePathSet asserts every exported structure (and the CSR mirror) of two
// path sets is bitwise identical.
func samePathSet(t *testing.T, got, want *PathSet) {
	t.Helper()
	if got.NumPaths() != want.NumPaths() {
		t.Fatalf("%d paths, want %d", got.NumPaths(), want.NumPaths())
	}
	for p := range want.Paths {
		if !got.Paths[p].Equal(want.Paths[p]) {
			t.Fatalf("path %d = %v, want %v", p, got.Paths[p], want.Paths[p])
		}
		if got.PairOf[p] != want.PairOf[p] {
			t.Fatalf("PairOf[%d] = %d, want %d", p, got.PairOf[p], want.PairOf[p])
		}
		if got.Cap[p] != want.Cap[p] {
			t.Fatalf("Cap[%d] = %v, want %v", p, got.Cap[p], want.Cap[p])
		}
		if len(got.EdgeIDs[p]) != len(want.EdgeIDs[p]) {
			t.Fatalf("EdgeIDs[%d] length mismatch", p)
		}
		for i := range want.EdgeIDs[p] {
			if got.EdgeIDs[p][i] != want.EdgeIDs[p][i] {
				t.Fatalf("EdgeIDs[%d][%d] = %d, want %d", p, i, got.EdgeIDs[p][i], want.EdgeIDs[p][i])
			}
		}
	}
	for pi := range want.PairPaths {
		if len(got.PairPaths[pi]) != len(want.PairPaths[pi]) {
			t.Fatalf("PairPaths[%d] length mismatch", pi)
		}
		for i := range want.PairPaths[pi] {
			if got.PairPaths[pi][i] != want.PairPaths[pi][i] {
				t.Fatalf("PairPaths[%d][%d] mismatch", pi, i)
			}
		}
	}
	gIDs, gStart := got.EdgeCSR()
	wIDs, wStart := want.EdgeCSR()
	if len(gIDs) != len(wIDs) || len(gStart) != len(wStart) {
		t.Fatal("CSR layout size mismatch")
	}
	for i := range wIDs {
		if gIDs[i] != wIDs[i] {
			t.Fatalf("csrEdges[%d] mismatch", i)
		}
	}
	for i := range wStart {
		if gStart[i] != wStart[i] {
			t.Fatalf("csrStart[%d] mismatch", i)
		}
	}
}

// TestNewPathSetParallelBitwise is the determinism contract of the worker
// pool: any worker count produces exactly the sequential path set.
func TestNewPathSetParallelBitwise(t *testing.T) {
	g := graph.GEANT()
	want, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8} {
		got, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		samePathSet(t, got, want)
	}
	// The legacy constructor (which now defaults to all CPUs) must agree.
	legacy, err := NewPathSet(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	samePathSet(t, legacy, want)
}

// TestNewPathSetParallelCustomSelector runs the pool over a user-supplied
// (concurrency-safe) selector and checks worker-count independence there
// too.
func TestNewPathSetParallelCustomSelector(t *testing.T) {
	g := graph.Triangle()
	sel := func(g *graph.Graph, s, d, k int) []graph.Path {
		// Shortest path only, ignoring k: a deliberately odd selector.
		return g.KShortestPaths(s, d, 1, graph.HopWeight)
	}
	want, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: 1, Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: 4, Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	samePathSet(t, got, want)
	if want.NumPaths() != want.Pairs.Count() {
		t.Fatalf("custom selector should yield 1 path per pair, got %d for %d pairs",
			want.NumPaths(), want.Pairs.Count())
	}
}

// TestNewPathSetParallelDisconnected pins the deterministic error: the
// smallest unreachable pair is reported regardless of worker count.
func TestNewPathSetParallelDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 2, 1)
	want := "te: no path from 0 to 2"
	for _, workers := range []int{1, 2, 8} {
		_, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: workers})
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: err = %v, want %q", workers, err, want)
		}
	}
}

func TestPathStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewPathStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GEANT()
	want, err := NewPathSetOpt(g, 3, PathSetOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store holds %d files, want 1", len(entries))
	}
	// Direct reload.
	got, err := store.Load(g, 3, SelectorYen)
	if err != nil {
		t.Fatal(err)
	}
	samePathSet(t, got, want)
	if got.K != 3 {
		t.Fatalf("loaded K = %d, want 3", got.K)
	}
	// Through the constructor (cache hit path).
	hit, err := NewPathSetOpt(g, 3, PathSetOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	samePathSet(t, hit, want)
}

func TestPathStoreMissOnDifferentKey(t *testing.T) {
	store, err := NewPathStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GEANT()
	if _, err := NewPathSetOpt(g, 3, PathSetOptions{Store: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(g, 2, SelectorYen); !IsPathCacheMiss(err) {
		t.Fatalf("different k: err = %v, want cache miss", err)
	}
	if _, err := store.Load(g, 3, "raecke-8"); !IsPathCacheMiss(err) {
		t.Fatalf("different selector: err = %v, want cache miss", err)
	}
	other := graph.Triangle()
	if _, err := store.Load(other, 3, SelectorYen); !IsPathCacheMiss(err) {
		t.Fatalf("different topology: err = %v, want cache miss", err)
	}
}

// TestPathStoreCorruptionSelfHeals: a corrupt entry is a miss, and the next
// constructor call recomputes and overwrites it with a valid one.
func TestPathStoreCorruptionSelfHeals(t *testing.T) {
	dir := t.TempDir()
	store, err := NewPathStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GEANT()
	want, err := NewPathSetOpt(g, 3, PathSetOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	name := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range [][]byte{
		flipByte(data, len(data)/2), // bit rot in the middle
		data[:len(data)/3],          // truncation
		{},                          // empty file
	} {
		if err := os.WriteFile(name, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(g, 3, SelectorYen); !IsPathCacheMiss(err) {
			t.Fatalf("corrupt entry: err = %v, want cache miss", err)
		}
		healed, err := NewPathSetOpt(g, 3, PathSetOptions{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		samePathSet(t, healed, want)
		// The rewrite must be valid on disk again.
		reloaded, err := store.Load(g, 3, SelectorYen)
		if err != nil {
			t.Fatal(err)
		}
		samePathSet(t, reloaded, want)
		data, err = os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xff
	return out
}

// TestPathStoreCustomSelectorUnnamed: a custom selector without a name must
// bypass the store entirely (nothing written, nothing read).
func TestPathStoreCustomSelectorUnnamed(t *testing.T) {
	dir := t.TempDir()
	store, err := NewPathStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sel := func(g *graph.Graph, s, d, k int) []graph.Path {
		return g.KShortestPaths(s, d, k, graph.HopWeight)
	}
	if _, err := NewPathSetOpt(graph.Triangle(), 3, PathSetOptions{Selector: sel, Store: store}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("unnamed selector wrote %d cache entries, want 0", len(entries))
	}
}

// TestPathStoreSaveBestEffort: an unwritable cache must not fail the
// constructor — the computed set is returned and the next run recomputes.
func TestPathStoreSaveBestEffort(t *testing.T) {
	dir := t.TempDir()
	store, err := NewPathStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	g := graph.Triangle()
	ps, err := NewPathSetOpt(g, 3, PathSetOptions{Store: store})
	if err != nil {
		t.Fatalf("unwritable store failed the compute: %v", err)
	}
	want, err := NewPathSetOpt(g, 3, PathSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samePathSet(t, ps, want)
}
