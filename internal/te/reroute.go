package te

import "figret/internal/graph"

// FailureSet marks failed directed edges of the topology a PathSet was built
// on. Use NewFailureSet to derive it from failed links.
type FailureSet struct {
	edgeDown []bool
}

// NewFailureSet builds a FailureSet from undirected link failures: each
// (a,b) entry fails both directed edges a->b and b->a if present.
func NewFailureSet(g *graph.Graph, links [][2]int) *FailureSet {
	fs := &FailureSet{edgeDown: make([]bool, g.NumEdges())}
	for _, l := range links {
		if id, ok := g.EdgeID(l[0], l[1]); ok {
			fs.edgeDown[id] = true
		}
		if id, ok := g.EdgeID(l[1], l[0]); ok {
			fs.edgeDown[id] = true
		}
	}
	return fs
}

// PathDown reports whether path p (by index into ps) traverses a failed edge.
func (fs *FailureSet) PathDown(ps *PathSet, p int) bool {
	for _, e := range ps.EdgeIDs[p] {
		if fs.edgeDown[e] {
			return true
		}
	}
	return false
}

// Reroute applies the failure-handling policy of §4.5 to c and returns a new
// configuration:
//
//   - the ratio of every failed path is moved to the pair's surviving paths
//     proportionally to their existing ratios, e.g. (0.5,0.3,0.2) with the
//     first path failed becomes (0, 0.6, 0.4);
//   - if the surviving paths all have ratio 0, the failed ratio is divided
//     equally among them, e.g. (1,0,0) becomes (0, 0.5, 0.5);
//   - if a pair loses every path, its ratios are all set to 0 (the pair is
//     disconnected; its demand is dropped and does not contribute to MLU).
//
// Rerouting requires no retraining — it is a post-processing step on any
// configuration, which is exactly how FIGRET handles failures.
func Reroute(c *Config, fs *FailureSet) *Config {
	out := c.Clone()
	ps := c.ps
	for _, pp := range ps.PairPaths {
		var failedMass float64
		var aliveSum float64
		alive := 0
		for _, p := range pp {
			if fs.PathDown(ps, p) {
				failedMass += out.R[p]
				out.R[p] = 0
			} else {
				aliveSum += out.R[p]
				alive++
			}
		}
		if failedMass == 0 {
			continue
		}
		switch {
		case alive == 0:
			// Pair fully disconnected; nothing to carry the traffic.
		case aliveSum > 0:
			scale := (aliveSum + failedMass) / aliveSum
			for _, p := range pp {
				if !fs.PathDown(ps, p) {
					out.R[p] *= scale
				}
			}
		default:
			w := failedMass / float64(alive)
			for _, p := range pp {
				if !fs.PathDown(ps, p) {
					out.R[p] = w
				}
			}
		}
	}
	return out
}

// MLUUnderFailure evaluates the MLU of demand d after rerouting c around fs.
// Failed edges carry no traffic by construction (their paths were zeroed).
func MLUUnderFailure(c *Config, fs *FailureSet, d []float64) float64 {
	return Reroute(c, fs).MLU(d)
}
