package graph

import (
	"sort"
)

// KShortestPaths computes up to k loopless shortest paths from src to dst
// under weight w using Yen's algorithm, as used by the paper for candidate
// path precomputation ("we employ Yen's algorithm to precompute the three
// shortest paths between every pair of nodes").
//
// Paths are returned sorted by total weight (ties broken by the vertex
// sequence for determinism). Fewer than k paths are returned when the graph
// does not contain k distinct simple paths.
func (g *Graph) KShortestPaths(src, dst, k int, w EdgeWeight) []Path {
	return NewYenSolver(g).KShortestPaths(src, dst, k, w)
}

// yenCand is one Yen candidate path with its cached total weight.
type yenCand struct {
	p    Path
	cost float64
}

// YenSolver runs Yen's K-shortest-paths queries on one graph with reusable
// scratch: the Dijkstra working arrays, the spur-search ban masks and the
// candidate list are allocated once and shared across queries. Whole-topology
// precomputation issues one query per SD pair with several Dijkstra runs
// each; reusing the scratch removes that per-query allocation churn, which
// keeps a worker pool of solvers GC-quiet (the compute itself still
// dominates single-thread wall clock).
//
// Results are identical to Graph.KShortestPaths — only working storage is
// reused; every returned path is freshly allocated. A YenSolver is NOT safe
// for concurrent use: give each goroutine its own solver (they are cheap,
// three O(V) and two O(E) slices).
type YenSolver struct {
	g         *Graph
	sc        *dijkstraScratch
	banEdge   []bool
	banVertex []bool
	cands     []yenCand
}

// NewYenSolver returns a solver bound to g. The graph must not gain vertices
// or edges while the solver is in use.
func NewYenSolver(g *Graph) *YenSolver {
	return &YenSolver{
		g:         g,
		sc:        newDijkstraScratch(g.n),
		banEdge:   make([]bool, len(g.edges)),
		banVertex: make([]bool, g.n),
	}
}

// KShortestPaths is Graph.KShortestPaths evaluated on the solver's scratch.
func (ys *YenSolver) KShortestPaths(src, dst, k int, w EdgeWeight) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	g := ys.g
	first, _, ok := g.shortestPathWith(ys.sc, src, dst, w, nil, nil)
	if !ok {
		return nil
	}
	accepted := make([]Path, 0, k)
	accepted = append(accepted, first)
	candidates := ys.cands[:0]

	pathCost := func(p Path) float64 {
		var c float64
		for i := 0; i+1 < len(p); i++ {
			id, _ := g.EdgeID(p[i], p[i+1])
			c += w(g.edges[id])
		}
		return c
	}

	haveCand := func(p Path) bool {
		for _, c := range candidates {
			if c.p.Equal(p) {
				return true
			}
		}
		return false
	}

	banEdge := ys.banEdge
	banVertex := ys.banVertex

	for len(accepted) < k {
		prevPath := accepted[len(accepted)-1]
		// For each spur node in the previous accepted path.
		for i := 0; i+1 < len(prevPath); i++ {
			spur := prevPath[i]
			root := prevPath[:i+1]

			for j := range banEdge {
				banEdge[j] = false
			}
			for j := range banVertex {
				banVertex[j] = false
			}
			// Ban edges that would recreate an already-accepted path sharing
			// this root.
			for _, ap := range accepted {
				if len(ap) > i && Path(ap[:i+1]).Equal(Path(root)) {
					if id, ok := g.EdgeID(ap[i], ap[i+1]); ok {
						banEdge[id] = true
					}
				}
			}
			// Ban root vertices except the spur node to keep paths simple.
			for _, v := range root[:len(root)-1] {
				banVertex[v] = true
			}

			spurPath, _, ok := g.shortestPathWith(ys.sc, spur, dst, w, banVertex, banEdge)
			if !ok {
				continue
			}
			total := append(Path(nil), root[:len(root)-1]...)
			total = append(total, spurPath...)
			if !haveCand(total) {
				candidates = append(candidates, yenCand{p: total, cost: pathCost(total)})
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].cost != candidates[b].cost {
				return candidates[a].cost < candidates[b].cost
			}
			return lessPath(candidates[a].p, candidates[b].p)
		})
		best := candidates[0]
		// Pop-front by copying down so the candidate buffer keeps its
		// backing array across queries.
		copy(candidates, candidates[1:])
		candidates = candidates[:len(candidates)-1]
		dup := false
		for _, ap := range accepted {
			if ap.Equal(best.p) {
				dup = true
				break
			}
		}
		if !dup {
			accepted = append(accepted, best.p)
		}
	}
	ys.cands = candidates[:0]
	sort.SliceStable(accepted, func(a, b int) bool {
		ca, cb := pathCost(accepted[a]), pathCost(accepted[b])
		if ca != cb {
			return ca < cb
		}
		return lessPath(accepted[a], accepted[b])
	})
	return accepted
}

func lessPath(a, b Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// IsSimple reports whether p visits no vertex twice.
func (p Path) IsSimple() bool {
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
