package graph

import (
	"fmt"
	"math/rand"
)

// The constructors in this file produce the eight topology families of the
// paper's Table 1. Node and directed-edge counts match the table exactly:
//
//	GEANT     WAN          23 /   74
//	UsCarrier WAN         158 /  378
//	Cogentco  WAN         197 /  486
//	pFabric   ToR-level     9 /   72   (full mesh)
//	Meta DB   PoD-level     4 /   12   (full mesh)
//	Meta DB   ToR-level   155 / 7194   (random regular-ish)
//	Meta WEB  PoD-level     8 /   56   (full mesh)
//	Meta WEB  ToR-level   324 / 31520  (random regular-ish)
//
// The WAN topologies are synthetic reconstructions (ring + seeded chords)
// with the published node/link counts — the Topology Zoo adjacency data is
// not redistributed here; DESIGN.md documents the substitution.

// FullMesh returns a complete directed graph on n vertices with uniform
// edge capacity.
func FullMesh(n int, capacity float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.MustAddEdge(i, j, capacity)
			}
		}
	}
	return g
}

// RingWithChords returns a connected graph with exactly `links` undirected
// links (2*links directed edges): a Hamiltonian ring plus links-n seeded
// random chords. Capacities alternate between baseCap and 4*baseCap to give
// the capacity heterogeneity real WANs exhibit.
func RingWithChords(n, links int, baseCap float64, seed int64) (*Graph, error) {
	if links < n {
		return nil, fmt.Errorf("graph: need at least %d links for a ring on %d vertices, got %d", n, n, links)
	}
	maxLinks := n * (n - 1) / 2
	if links > maxLinks {
		return nil, fmt.Errorf("graph: %d links exceeds complete graph size %d", links, maxLinks)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	capFor := func(i int) float64 {
		if i%3 == 0 {
			return 4 * baseCap
		}
		return baseCap
	}
	li := 0
	for i := 0; i < n; i++ {
		if err := g.AddLink(i, (i+1)%n, capFor(li)); err != nil {
			return nil, err
		}
		li++
	}
	for li < links {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if _, exists := g.EdgeID(a, b); exists {
			continue
		}
		if err := g.AddLink(a, b, capFor(li)); err != nil {
			return nil, err
		}
		li++
	}
	return g, nil
}

// RandomRegularish returns a connected graph on n vertices with exactly
// `links` undirected links and near-uniform degree, built as a ring (for
// guaranteed connectivity) plus seeded random chords chosen preferring
// low-degree endpoints. It models the ToR-level direct-connect fabrics the
// paper derives from Jellyfish-style random regular graphs.
func RandomRegularish(n, links int, capacity float64, seed int64) (*Graph, error) {
	if links < n {
		return nil, fmt.Errorf("graph: need at least %d links, got %d", n, links)
	}
	maxLinks := n * (n - 1) / 2
	if links > maxLinks {
		return nil, fmt.Errorf("graph: %d links exceeds complete graph size %d", links, maxLinks)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	deg := make([]int, n)
	addLink := func(a, b int) bool {
		if a == b {
			return false
		}
		if _, exists := g.EdgeID(a, b); exists {
			return false
		}
		g.MustAddEdge(a, b, capacity)
		g.MustAddEdge(b, a, capacity)
		deg[a]++
		deg[b]++
		return true
	}
	for i := 0; i < n; i++ {
		addLink(i, (i+1)%n)
	}
	added := n
	// Pick endpoints among the lowest-degree vertices to keep degrees even.
	for added < links {
		a := pickLowDegree(rng, deg)
		b := pickLowDegree(rng, deg)
		if addLink(a, b) {
			added++
		}
	}
	return g, nil
}

// pickLowDegree samples a vertex with probability decreasing in its degree:
// it draws two uniform candidates and keeps the one with smaller degree.
func pickLowDegree(rng *rand.Rand, deg []int) int {
	a := rng.Intn(len(deg))
	b := rng.Intn(len(deg))
	if deg[b] < deg[a] {
		return b
	}
	return a
}

// Topology names accepted by ByName.
const (
	TopoGEANT     = "geant"
	TopoUsCarrier = "uscarrier"
	TopoCogentco  = "cogentco"
	TopoPFabric   = "pfabric"
	TopoPoDDB     = "pod-db"
	TopoPoDWEB    = "pod-web"
	TopoToRDB     = "tor-db"
	TopoToRWEB    = "tor-web"
	TopoLargeWAN  = "large-wan"
)

// AllTopologies lists the eight evaluation topologies in the paper's order.
func AllTopologies() []string {
	return []string{
		TopoGEANT, TopoUsCarrier, TopoCogentco, TopoPFabric,
		TopoPoDDB, TopoPoDWEB, TopoToRDB, TopoToRWEB,
	}
}

// GEANT returns the 23-node / 74-directed-edge WAN topology (37 links):
// a ring plus 14 chords with heterogeneous capacities, shaped after the
// public pan-European GEANT network.
func GEANT() *Graph {
	g := New(23)
	// 23 ring links.
	ringCaps := []float64{40, 10, 10, 40, 10, 40, 40, 10, 10, 40, 10, 10,
		40, 10, 40, 10, 10, 40, 10, 40, 10, 10, 40}
	for i := 0; i < 23; i++ {
		if err := g.AddLink(i, (i+1)%23, ringCaps[i]); err != nil {
			panic(err)
		}
	}
	// 14 chords connecting the major hubs.
	chords := []struct {
		a, b int
		c    float64
	}{
		{0, 5, 40}, {0, 11, 40}, {2, 7, 10}, {3, 9, 40}, {4, 14, 10},
		{5, 16, 40}, {6, 12, 10}, {8, 18, 40}, {9, 20, 10}, {10, 15, 40},
		{1, 13, 10}, {7, 21, 40}, {12, 19, 10}, {16, 22, 40},
	}
	for _, ch := range chords {
		if err := g.AddLink(ch.a, ch.b, ch.c); err != nil {
			panic(err)
		}
	}
	return g
}

// UsCarrier returns a 158-node / 378-directed-edge synthetic WAN.
func UsCarrier() *Graph {
	g, err := RingWithChords(158, 189, 10, 1581)
	if err != nil {
		panic(err)
	}
	return g
}

// Cogentco returns a 197-node / 486-directed-edge synthetic WAN.
func Cogentco() *Graph {
	g, err := RingWithChords(197, 243, 10, 1971)
	if err != nil {
		panic(err)
	}
	return g
}

// PFabric returns the 9-ToR full-mesh direct-connect topology (72 directed
// edges) used for the pFabric workload.
func PFabric() *Graph { return FullMesh(9, 10) }

// PoDDB returns the Meta DB cluster PoD-level full mesh (4 nodes, 12 edges).
func PoDDB() *Graph { return FullMesh(4, 10) }

// PoDWEB returns the Meta WEB cluster PoD-level full mesh (8 nodes, 56 edges).
func PoDWEB() *Graph { return FullMesh(8, 10) }

// ToRDB returns the Meta DB cluster ToR-level topology: 155 nodes and
// 7194 directed edges (3597 links).
func ToRDB() *Graph {
	g, err := RandomRegularish(155, 3597, 10, 155)
	if err != nil {
		panic(err)
	}
	return g
}

// ToRWEB returns the Meta WEB cluster ToR-level topology: 324 nodes and
// 31520 directed edges (15760 links).
func ToRWEB() *Graph {
	g, err := RandomRegularish(324, 15760, 10, 324)
	if err != nil {
		panic(err)
	}
	return g
}

// LargeWAN returns a 220-node / 660-directed-edge synthetic WAN (330
// links), larger than any of the paper's Table 1 WANs. It exists to stress
// whole-topology candidate-path precomputation: with 48,180 SD pairs it is
// the workload BenchmarkNewPathSetParallel measures the worker-pool and
// PathStore speedups on. It is not part of AllTopologies (the paper's
// evaluation set) but is served by ByName as "large-wan".
func LargeWAN() *Graph {
	g, err := RingWithChords(220, 330, 10, 2201)
	if err != nil {
		panic(err)
	}
	return g
}

// ByName returns the named evaluation topology. Names are the Topo*
// constants; unknown names yield an error.
func ByName(name string) (*Graph, error) {
	switch name {
	case TopoGEANT:
		return GEANT(), nil
	case TopoUsCarrier:
		return UsCarrier(), nil
	case TopoCogentco:
		return Cogentco(), nil
	case TopoPFabric:
		return PFabric(), nil
	case TopoPoDDB:
		return PoDDB(), nil
	case TopoPoDWEB:
		return PoDWEB(), nil
	case TopoToRDB:
		return ToRDB(), nil
	case TopoToRWEB:
		return ToRWEB(), nil
	case TopoLargeWAN:
		return LargeWAN(), nil
	default:
		return nil, fmt.Errorf("graph: unknown topology %q", name)
	}
}

// Triangle returns the 3-node topology of the paper's Figure 3 worked
// example: vertices A=0, B=1, C=2, every link capacity 2.
func Triangle() *Graph {
	g := New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 0, 2)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 0, 2)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 1, 2)
	return g
}
