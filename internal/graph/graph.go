// Package graph provides the capacitated directed-graph substrate used by
// every TE component: topology representation, shortest paths (Dijkstra),
// Yen's K-shortest simple paths, the topology families evaluated in the
// FIGRET paper (WAN, PoD-level and ToR-level data centers), and link-failure
// application.
//
// Vertices are dense integers 0..N-1. Edges are directed; an undirected
// physical link is modeled as two directed edges, one per direction, each
// carrying the full link capacity (the convention used by the paper's MLU
// definition, where utilization is per directed edge).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed capacitated edge.
type Edge struct {
	// From and To are vertex indices.
	From, To int
	// Capacity is the edge capacity in arbitrary demand units. Must be > 0.
	Capacity float64
}

// Graph is a directed capacitated graph with dense vertex indices.
//
// The zero value is an empty graph; use New to allocate one with a known
// vertex count.
type Graph struct {
	n     int
	edges []Edge
	// out[v] lists indices into edges for edges leaving v.
	out [][]int
	// index maps (from,to) -> edge index for O(1) lookup. Parallel edges are
	// not supported: adding a duplicate (from,to) pair is an error.
	index map[[2]int]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:     n,
		out:   make([][]int, n),
		index: make(map[[2]int]int),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i'th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddEdge adds a directed edge and returns its index. It returns an error if
// the endpoints are out of range, equal, the capacity is non-positive, or the
// edge already exists.
func (g *Graph) AddEdge(from, to int, capacity float64) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n)
	}
	if from == to {
		return 0, fmt.Errorf("graph: self-loop (%d,%d) not allowed", from, to)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("graph: edge (%d,%d) capacity %v must be positive", from, to, capacity)
	}
	key := [2]int{from, to}
	if _, dup := g.index[key]; dup {
		return 0, fmt.Errorf("graph: duplicate edge (%d,%d)", from, to)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.index[key] = id
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for topology
// constructors with statically known-valid input.
func (g *Graph) MustAddEdge(from, to int, capacity float64) int {
	id, err := g.AddEdge(from, to, capacity)
	if err != nil {
		panic(err)
	}
	return id
}

// AddLink adds the pair of directed edges (a->b, b->a) with the given
// capacity each, modelling one undirected physical link.
func (g *Graph) AddLink(a, b int, capacity float64) error {
	if _, err := g.AddEdge(a, b, capacity); err != nil {
		return err
	}
	if _, err := g.AddEdge(b, a, capacity); err != nil {
		return err
	}
	return nil
}

// EdgeID returns the index of edge (from,to) and whether it exists.
func (g *Graph) EdgeID(from, to int) (int, bool) {
	id, ok := g.index[[2]int{from, to}]
	return id, ok
}

// OutEdges returns the indices of edges leaving v. Callers must not mutate
// the returned slice.
func (g *Graph) OutEdges(v int) []int { return g.out[v] }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	for v := range g.out {
		c.out[v] = append([]int(nil), g.out[v]...)
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// RemoveLink returns a copy of g with both directions of link (a,b) removed.
// It is used to model a physical link failure. It returns an error if the
// link does not exist in either direction.
func (g *Graph) RemoveLink(a, b int) (*Graph, error) {
	if _, ok := g.EdgeID(a, b); !ok {
		return nil, fmt.Errorf("graph: link (%d,%d) does not exist", a, b)
	}
	if _, ok := g.EdgeID(b, a); !ok {
		return nil, fmt.Errorf("graph: reverse link (%d,%d) does not exist", b, a)
	}
	c := New(g.n)
	for _, e := range g.edges {
		if (e.From == a && e.To == b) || (e.From == b && e.To == a) {
			continue
		}
		c.MustAddEdge(e.From, e.To, e.Capacity)
	}
	return c, nil
}

// Connected reports whether every vertex is reachable from vertex 0
// following directed edges (sufficient for the symmetric graphs used here).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.out[v] {
			w := g.edges[ei].To
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// MinCapacity returns the smallest edge capacity, or 0 for an edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	m := g.edges[0].Capacity
	for _, e := range g.edges[1:] {
		if e.Capacity < m {
			m = e.Capacity
		}
	}
	return m
}

// Degrees returns the out-degree of every vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for v := range g.out {
		d[v] = len(g.out[v])
	}
	return d
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{vertices: %d, edges: %d}", g.n, len(g.edges))
}

// SortedEdgeList returns edges sorted by (From, To); useful for deterministic
// output in tools and tests.
func (g *Graph) SortedEdgeList() []Edge {
	es := append([]Edge(nil), g.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}
