package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	cases := []struct {
		name     string
		from, to int
		cap      float64
	}{
		{"self-loop", 1, 1, 1},
		{"negative cap", 1, 2, -1},
		{"zero cap", 1, 2, 0},
		{"out of range from", -1, 2, 1},
		{"out of range to", 0, 3, 1},
		{"duplicate", 0, 1, 5},
	}
	for _, c := range cases {
		if _, err := g.AddEdge(c.from, c.to, c.cap); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEdgeIDAndOutEdges(t *testing.T) {
	g := New(4)
	id01 := g.MustAddEdge(0, 1, 1)
	id02 := g.MustAddEdge(0, 2, 2)
	if got, ok := g.EdgeID(0, 1); !ok || got != id01 {
		t.Errorf("EdgeID(0,1)=%d,%v want %d,true", got, ok, id01)
	}
	if _, ok := g.EdgeID(1, 0); ok {
		t.Error("EdgeID(1,0) should not exist")
	}
	out := g.OutEdges(0)
	if len(out) != 2 || out[0] != id01 || out[1] != id02 {
		t.Errorf("OutEdges(0)=%v", out)
	}
	if len(g.OutEdges(3)) != 0 {
		t.Error("vertex 3 should have no out edges")
	}
}

func TestRemoveLink(t *testing.T) {
	g := New(3)
	if err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	h, err := g.RemoveLink(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Errorf("edges after removal = %d, want 2", h.NumEdges())
	}
	if _, ok := h.EdgeID(0, 1); ok {
		t.Error("edge (0,1) still present")
	}
	if _, ok := h.EdgeID(1, 0); ok {
		t.Error("edge (1,0) still present")
	}
	// Original graph untouched.
	if g.NumEdges() != 4 {
		t.Errorf("original mutated: %d edges", g.NumEdges())
	}
	if _, err := g.RemoveLink(0, 2); err == nil {
		t.Error("removing missing link should error")
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 1, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2, 1)
	if g.NumEdges() != 1 {
		t.Errorf("clone mutation leaked into original: %d edges", g.NumEdges())
	}
	if c.NumEdges() != 2 {
		t.Errorf("clone edges = %d, want 2", c.NumEdges())
	}
}

func TestShortestPathBasic(t *testing.T) {
	// 0-1-2 line plus a direct expensive 0->2.
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	p, d, ok := g.ShortestPath(0, 2, HopWeight, nil, nil)
	if !ok || d != 1 || !p.Equal(Path{0, 2}) {
		t.Errorf("got %v cost %v ok %v, want direct path", p, d, ok)
	}
	// Ban the direct edge.
	ban := make([]bool, g.NumEdges())
	id, _ := g.EdgeID(0, 2)
	ban[id] = true
	p, d, ok = g.ShortestPath(0, 2, HopWeight, nil, ban)
	if !ok || d != 2 || !p.Equal(Path{0, 1, 2}) {
		t.Errorf("banned: got %v cost %v", p, d)
	}
	// Unreachable.
	if _, _, ok := g.ShortestPath(2, 0, HopWeight, nil, nil); ok {
		t.Error("2->0 should be unreachable")
	}
}

func TestShortestPathWeights(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(0, 2, 1)
	// Under inverse-capacity weight the two-hop fat route wins.
	p, _, ok := g.ShortestPath(0, 2, InverseCapacityWeight, nil, nil)
	if !ok || !p.Equal(Path{0, 1, 2}) {
		t.Errorf("inverse-capacity path = %v", p)
	}
}

func TestPathCapacity(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 3)
	if c := (Path{0, 1, 2}).Capacity(g); c != 3 {
		t.Errorf("capacity = %v, want 3 (bottleneck)", c)
	}
	if c := (Path{0, 2}).Capacity(g); c != 0 {
		t.Errorf("invalid path capacity = %v, want 0", c)
	}
}

func TestKShortestPathsTriangle(t *testing.T) {
	g := Triangle()
	ps := g.KShortestPaths(1, 2, 3, HopWeight)
	if len(ps) != 2 {
		t.Fatalf("triangle B->C has 2 simple paths, got %d: %v", len(ps), ps)
	}
	if !ps[0].Equal(Path{1, 2}) {
		t.Errorf("first path %v, want direct", ps[0])
	}
	if !ps[1].Equal(Path{1, 0, 2}) {
		t.Errorf("second path %v, want via A", ps[1])
	}
}

func TestKShortestPathsProperties(t *testing.T) {
	g := GEANT()
	for _, pair := range [][2]int{{0, 12}, {3, 17}, {22, 5}} {
		ps := g.KShortestPaths(pair[0], pair[1], 3, HopWeight)
		if len(ps) != 3 {
			t.Fatalf("pair %v: got %d paths", pair, len(ps))
		}
		seen := map[string]bool{}
		prevLen := 0
		for _, p := range ps {
			if !p.IsSimple() {
				t.Errorf("pair %v: non-simple path %v", pair, p)
			}
			if p[0] != pair[0] || p[len(p)-1] != pair[1] {
				t.Errorf("pair %v: endpoints wrong in %v", pair, p)
			}
			if _, ok := p.Edges(g); !ok {
				t.Errorf("pair %v: path %v uses non-edges", pair, p)
			}
			key := pathKey(p)
			if seen[key] {
				t.Errorf("pair %v: duplicate path %v", pair, p)
			}
			seen[key] = true
			if len(p) < prevLen {
				t.Errorf("pair %v: paths not sorted by hop count", pair)
			}
			prevLen = len(p)
		}
	}
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func TestKShortestFirstIsShortest(t *testing.T) {
	// Property: first Yen path always equals Dijkstra's shortest path cost.
	g, err := RingWithChords(30, 45, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		s, d := rng.Intn(30), rng.Intn(30)
		if s == d {
			continue
		}
		_, want, ok := g.ShortestPath(s, d, HopWeight, nil, nil)
		if !ok {
			t.Fatalf("disconnected ring graph")
		}
		ps := g.KShortestPaths(s, d, 3, HopWeight)
		if len(ps) == 0 {
			t.Fatalf("no Yen paths for %d->%d", s, d)
		}
		if got := float64(len(ps[0]) - 1); got != want {
			t.Errorf("%d->%d: yen first cost %v, dijkstra %v", s, d, got, want)
		}
	}
}

func TestTopologySizes(t *testing.T) {
	cases := []struct {
		name           string
		nodes, edges   int
		wantConnected  bool
		skipExpensiveN int // if >0 skip when testing.Short and nodes >= this
	}{
		{TopoGEANT, 23, 74, true, 0},
		{TopoUsCarrier, 158, 378, true, 0},
		{TopoCogentco, 197, 486, true, 0},
		{TopoPFabric, 9, 72, true, 0},
		{TopoPoDDB, 4, 12, true, 0},
		{TopoPoDWEB, 8, 56, true, 0},
		{TopoToRDB, 155, 7194, true, 0},
		{TopoToRWEB, 324, 31520, true, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() != c.nodes {
				t.Errorf("nodes = %d, want %d", g.NumVertices(), c.nodes)
			}
			if g.NumEdges() != c.edges {
				t.Errorf("edges = %d, want %d", g.NumEdges(), c.edges)
			}
			if g.Connected() != c.wantConnected {
				t.Errorf("connected = %v, want %v", g.Connected(), c.wantConnected)
			}
		})
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown topology name should error")
	}
}

func TestTopologyDeterminism(t *testing.T) {
	a, b := ToRDB(), ToRDB()
	ea, eb := a.SortedEdgeList(), b.SortedEdgeList()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRingWithChordsErrors(t *testing.T) {
	if _, err := RingWithChords(10, 5, 1, 1); err == nil {
		t.Error("too few links should error")
	}
	if _, err := RingWithChords(4, 100, 1, 1); err == nil {
		t.Error("too many links should error")
	}
	if _, err := RandomRegularish(10, 5, 1, 1); err == nil {
		t.Error("too few links should error")
	}
	if _, err := RandomRegularish(4, 100, 1, 1); err == nil {
		t.Error("too many links should error")
	}
}

func TestFullMeshProperty(t *testing.T) {
	// Property: for any 2<=n<=10, FullMesh(n) has n(n-1) edges and is connected.
	f := func(raw uint8) bool {
		n := int(raw%9) + 2
		g := FullMesh(n, 1)
		return g.NumEdges() == n*(n-1) && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinCapacityAndDegrees(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 0, 9)
	if g.MinCapacity() != 2 {
		t.Errorf("MinCapacity = %v", g.MinCapacity())
	}
	d := g.Degrees()
	if d[0] != 1 || d[1] != 1 || d[2] != 1 {
		t.Errorf("Degrees = %v", d)
	}
	if New(0).MinCapacity() != 0 {
		t.Error("empty graph MinCapacity should be 0")
	}
}
