package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// enumerateSimplePaths returns every simple path from src to dst by DFS.
func enumerateSimplePaths(g *Graph, src, dst int) []Path {
	var out []Path
	visited := make([]bool, g.NumVertices())
	var cur Path
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		cur = append(cur, v)
		if v == dst {
			out = append(out, cur.Clone())
		} else {
			for _, ei := range g.OutEdges(v) {
				w := g.Edge(ei).To
				if !visited[w] {
					dfs(w)
				}
			}
		}
		visited[v] = false
		cur = cur[:len(cur)-1]
	}
	dfs(src)
	return out
}

// TestYenMatchesBruteForce verifies, on random small graphs, that Yen's
// K-shortest paths are exactly the K cheapest simple paths found by
// exhaustive enumeration.
func TestYenMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(3)
		g := New(n)
		// Random connected-ish graph: ring + random chords.
		for i := 0; i < n; i++ {
			g.MustAddEdge(i, (i+1)%n, 1+rng.Float64())
			g.MustAddEdge((i+1)%n, i, 1+rng.Float64())
		}
		for extra := 0; extra < n; extra++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if _, ok := g.EdgeID(a, b); ok {
				continue
			}
			g.MustAddEdge(a, b, 1+rng.Float64())
		}
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		for _, k := range []int{1, 3, 5} {
			yen := g.KShortestPaths(src, dst, k, HopWeight)
			all := enumerateSimplePaths(g, src, dst)
			sort.Slice(all, func(i, j int) bool {
				if len(all[i]) != len(all[j]) {
					return len(all[i]) < len(all[j])
				}
				return lessPath(all[i], all[j])
			})
			want := k
			if want > len(all) {
				want = len(all)
			}
			if len(yen) != want {
				t.Fatalf("trial %d k=%d: yen found %d paths, brute force %d (of %d total)",
					trial, k, len(yen), want, len(all))
			}
			// Compare hop-count multisets (exact path identity can differ
			// on ties, cost must match).
			for i := 0; i < want; i++ {
				if len(yen[i]) != len(all[i]) {
					t.Fatalf("trial %d k=%d rank %d: yen cost %d, brute force %d",
						trial, k, i, len(yen[i])-1, len(all[i])-1)
				}
			}
		}
	}
}
