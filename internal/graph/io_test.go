package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := GEANT()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", &back, g)
	}
	ea, eb := g.SortedEdgeList(), back.SortedEdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, ea[i], eb[i])
		}
	}
	// Adjacency index rebuilt correctly.
	if _, ok := back.EdgeID(0, 1); !ok {
		t.Error("edge index lost in round trip")
	}
}

func TestGraphJSONValidation(t *testing.T) {
	var g Graph
	bad := []string{
		`{"n":-1,"edges":[]}`,
		`{"n":2,"edges":[{"From":0,"To":0,"Capacity":1}]}`,
		`{"n":2,"edges":[{"From":0,"To":1,"Capacity":-1}]}`,
		`{"n":2,"edges":[{"From":0,"To":5,"Capacity":1}]}`,
		`{nope`,
	}
	for _, s := range bad {
		if err := json.Unmarshal([]byte(s), &g); err == nil {
			t.Errorf("accepted %s", s)
		}
	}
}

const sampleGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0"/>
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d1"/>
  <key attr.name="Capacity" attr.type="double" for="edge" id="d2"/>
  <graph edgedefault="undirected">
    <node id="n0"><data key="d0">Amsterdam</data></node>
    <node id="n1"><data key="d0">Brussels</data></node>
    <node id="n2"><data key="d0">Cologne</data></node>
    <edge source="n0" target="n1"><data key="d2">40</data></edge>
    <edge source="n1" target="n2"><data key="d2">10</data></edge>
    <edge source="n2" target="n0"/>
    <edge source="n2" target="n2"/>
  </graph>
</graphml>`

func TestReadGraphML(t *testing.T) {
	g, err := ReadGraphML(strings.NewReader(sampleGraphML), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("nodes = %d", g.NumVertices())
	}
	if g.NumEdges() != 6 { // 3 undirected links, self-loop dropped
		t.Fatalf("edges = %d", g.NumEdges())
	}
	id, ok := g.EdgeID(0, 1)
	if !ok || g.Edge(id).Capacity != 40 {
		t.Errorf("capacity(0,1) wrong: %v", g.Edge(id))
	}
	id, _ = g.EdgeID(1, 2)
	if g.Edge(id).Capacity != 10 {
		t.Errorf("capacity(1,2) = %v", g.Edge(id).Capacity)
	}
	// Edge without capacity data gets the default.
	id, _ = g.EdgeID(0, 2)
	if g.Edge(id).Capacity != 10 {
		t.Errorf("default capacity = %v", g.Edge(id).Capacity)
	}
	if !g.Connected() {
		t.Error("imported graph disconnected")
	}
}

func TestReadGraphMLDuplicateLinksMerged(t *testing.T) {
	src := `<graphml><graph edgedefault="undirected">
	<node id="a"/><node id="b"/>
	<edge source="a" target="b"/>
	<edge source="b" target="a"/>
	</graph></graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{DefaultCapacity: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want merged pair", g.NumEdges())
	}
	id, _ := g.EdgeID(0, 1)
	if g.Edge(id).Capacity != 10 {
		t.Errorf("merged capacity = %v, want 10", g.Edge(id).Capacity)
	}
}

func TestReadGraphMLErrors(t *testing.T) {
	cases := []string{
		`not xml at all<`,
		`<graphml><graph edgedefault="undirected"></graph></graphml>`,
		`<graphml><graph edgedefault="undirected"><node id="a"/><node id="a"/></graph></graphml>`,
		`<graphml><graph edgedefault="undirected"><node id="a"/><edge source="a" target="zz"/></graph></graphml>`,
		`<graphml><graph edgedefault="undirected"><node id="a"/><node id="b"/></graph></graphml>`,
	}
	for i, s := range cases {
		if _, err := ReadGraphML(strings.NewReader(s), GraphMLOptions{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadGraphMLDirected(t *testing.T) {
	src := `<graphml><graph edgedefault="directed">
	<node id="a"/><node id="b"/>
	<edge source="a" target="b"/>
	</graph></graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("directed edges = %d, want 1", g.NumEdges())
	}
}

func TestReadGraphMLCustomAttr(t *testing.T) {
	src := `<graphml>
	<key attr.name="bw" for="edge" id="k9"/>
	<graph edgedefault="undirected">
	<node id="a"/><node id="b"/>
	<edge source="a" target="b"><data key="k9"> 77 </data></edge>
	</graph></graphml>`
	g, err := ReadGraphML(strings.NewReader(src), GraphMLOptions{CapacityAttr: "bw"})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.EdgeID(0, 1)
	if g.Edge(id).Capacity != 77 {
		t.Errorf("custom attr capacity = %v", g.Edge(id).Capacity)
	}
}
