package graph

import (
	"fmt"
	"testing"
)

// TestYenSolverReuseMatchesFresh pins the YenSolver scratch-reuse contract:
// one solver queried across every SD pair returns exactly what a fresh
// Graph.KShortestPaths call returns for each pair.
func TestYenSolverReuseMatchesFresh(t *testing.T) {
	g, err := RingWithChords(30, 45, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	ys := NewYenSolver(g)
	for s := 0; s < g.NumVertices(); s++ {
		for d := 0; d < g.NumVertices(); d++ {
			if s == d {
				continue
			}
			got := ys.KShortestPaths(s, d, 3, HopWeight)
			want := g.KShortestPaths(s, d, 3, HopWeight)
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): %d paths reused vs %d fresh", s, d, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("(%d,%d) path %d: reused %v vs fresh %v", s, d, i, got[i], want[i])
				}
			}
		}
	}
}

// TestYenSolverResultsDoNotAlias ensures returned paths own their storage:
// a later query on the same solver must not mutate earlier results.
func TestYenSolverResultsDoNotAlias(t *testing.T) {
	g := Triangle()
	ys := NewYenSolver(g)
	first := ys.KShortestPaths(0, 1, 3, HopWeight)
	snapshot := make([]Path, len(first))
	for i, p := range first {
		snapshot[i] = p.Clone()
	}
	for s := 0; s < 3; s++ {
		for d := 0; d < 3; d++ {
			if s != d {
				ys.KShortestPaths(s, d, 3, HopWeight)
			}
		}
	}
	for i, p := range first {
		if !p.Equal(snapshot[i]) {
			t.Fatalf("path %d mutated by later queries: %v -> %v", i, snapshot[i], p)
		}
	}
}

// TestKShortestPathsFewerThanK covers graphs with fewer than k simple
// paths: the result holds every simple path exactly once, sorted, and never
// pads to k.
func TestKShortestPathsFewerThanK(t *testing.T) {
	// A 4-vertex line has exactly one simple path per pair.
	line := New(4)
	for i := 0; i < 3; i++ {
		if err := line.AddLink(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := line.KShortestPaths(0, 3, 3, HopWeight)
	if len(got) != 1 {
		t.Fatalf("line graph: got %d paths, want 1: %v", len(got), got)
	}
	if !got[0].Equal(Path{0, 1, 2, 3}) {
		t.Fatalf("line graph path = %v", got[0])
	}

	// A triangle has exactly two simple paths per pair, for any k >= 2.
	tri := Triangle()
	for _, k := range []int{2, 3, 10} {
		got := tri.KShortestPaths(0, 1, k, HopWeight)
		if len(got) != 2 {
			t.Fatalf("triangle k=%d: got %d paths, want 2: %v", k, len(got), got)
		}
		if !got[0].Equal(Path{0, 1}) || !got[1].Equal(Path{0, 2, 1}) {
			t.Fatalf("triangle k=%d paths = %v", k, got)
		}
	}

	seen := map[string]bool{}
	for _, p := range tri.KShortestPaths(0, 1, 10, HopWeight) {
		if !p.IsSimple() {
			t.Errorf("non-simple path %v", p)
		}
		key := fmt.Sprint(p)
		if seen[key] {
			t.Errorf("duplicate path %v", p)
		}
		seen[key] = true
	}
}

func TestContentHashProperties(t *testing.T) {
	a := GEANT()
	if a.ContentHash() != GEANT().ContentHash() {
		t.Error("identical topologies hash differently")
	}
	// Insertion order must not matter.
	fwd := New(3)
	fwd.MustAddEdge(0, 1, 2)
	fwd.MustAddEdge(1, 2, 3)
	rev := New(3)
	rev.MustAddEdge(1, 2, 3)
	rev.MustAddEdge(0, 1, 2)
	if fwd.ContentHash() != rev.ContentHash() {
		t.Error("edge insertion order changed the content hash")
	}
	// Capacity, edge set and vertex count must all matter.
	capChanged := New(3)
	capChanged.MustAddEdge(0, 1, 2)
	capChanged.MustAddEdge(1, 2, 4)
	if fwd.ContentHash() == capChanged.ContentHash() {
		t.Error("capacity change not reflected in hash")
	}
	moreVerts := New(4)
	moreVerts.MustAddEdge(0, 1, 2)
	moreVerts.MustAddEdge(1, 2, 3)
	if fwd.ContentHash() == moreVerts.ContentHash() {
		t.Error("vertex count not reflected in hash")
	}
}

func TestLargeWANShape(t *testing.T) {
	g := LargeWAN()
	if g.NumVertices() != 220 || g.NumEdges() != 660 {
		t.Fatalf("LargeWAN = %d vertices / %d edges, want 220/660", g.NumVertices(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("LargeWAN disconnected")
	}
	byName, err := ByName(TopoLargeWAN)
	if err != nil {
		t.Fatal(err)
	}
	if byName.ContentHash() != g.ContentHash() {
		t.Fatal("ByName(large-wan) differs from LargeWAN()")
	}
}
