package graph

import (
	"container/heap"
	"math"
)

// Path is a sequence of vertex indices; Path[0] is the source and
// Path[len-1] the destination. A valid path has length >= 2 and every
// consecutive pair is an edge of the graph.
type Path []int

// Equal reports whether two paths visit the same vertex sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Edges maps the path to its edge indices in g. It returns false if any hop
// is not an edge of g.
func (p Path) Edges(g *Graph) ([]int, bool) {
	if len(p) < 2 {
		return nil, false
	}
	ids := make([]int, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		id, ok := g.EdgeID(p[i], p[i+1])
		if !ok {
			return nil, false
		}
		ids = append(ids, id)
	}
	return ids, true
}

// Capacity returns the path capacity: the minimum capacity over the path's
// edges (the paper's C_p). It returns 0 if the path is invalid in g.
func (p Path) Capacity(g *Graph) float64 {
	ids, ok := p.Edges(g)
	if !ok {
		return 0
	}
	c := math.Inf(1)
	for _, id := range ids {
		if cap := g.Edge(id).Capacity; cap < c {
			c = cap
		}
	}
	return c
}

// EdgeWeight gives the cost of traversing an edge; used to parameterize
// shortest-path computations (hop count, inverse capacity, custom).
type EdgeWeight func(e Edge) float64

// HopWeight weights every edge 1, so shortest path = fewest hops.
func HopWeight(Edge) float64 { return 1 }

// InverseCapacityWeight weights an edge by 1/capacity, preferring fat links.
func InverseCapacityWeight(e Edge) float64 { return 1 / e.Capacity }

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstraScratch holds the per-search working arrays of Dijkstra's
// algorithm so repeated searches (Yen's algorithm runs hundreds per pair,
// path precomputation millions per topology) reuse one set of buffers
// instead of allocating three O(V) slices plus a heap per call.
type dijkstraScratch struct {
	dist []float64
	prev []int
	done []bool
	q    pq
}

func newDijkstraScratch(n int) *dijkstraScratch {
	return &dijkstraScratch{
		dist: make([]float64, n),
		prev: make([]int, n),
		done: make([]bool, n),
	}
}

// ShortestPath returns the minimum-weight path from src to dst under w, and
// whether one exists. banVertex and banEdge, if non-nil, exclude vertices and
// edge indices from the search (used by Yen's algorithm); banVertex[src] must
// be false.
func (g *Graph) ShortestPath(src, dst int, w EdgeWeight, banVertex []bool, banEdge []bool) (Path, float64, bool) {
	return g.shortestPathWith(newDijkstraScratch(g.n), src, dst, w, banVertex, banEdge)
}

// shortestPathWith is ShortestPath on caller-owned scratch. The returned
// path is freshly allocated; only the working arrays are reused, so the
// result is identical to ShortestPath.
func (g *Graph) shortestPathWith(sc *dijkstraScratch, src, dst int, w EdgeWeight, banVertex []bool, banEdge []bool) (Path, float64, bool) {
	dist, prev, done := sc.dist, sc.prev, sc.done
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
		done[i] = false
	}
	dist[src] = 0
	sc.q = append(sc.q[:0], pqItem{v: src, dist: 0})
	q := &sc.q
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] || it.dist > dist[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			break
		}
		for _, ei := range g.out[it.v] {
			if banEdge != nil && banEdge[ei] {
				continue
			}
			e := g.edges[ei]
			if banVertex != nil && banVertex[e.To] {
				continue
			}
			nd := it.dist + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.v
				heap.Push(q, pqItem{v: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	// Reconstruct.
	var rev Path
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst], true
}
