package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// This file provides topology serialization: a JSON format for round-trips
// within this repository, and a GraphML importer so the real Topology Zoo
// files (UsCarrier.graphml, Cogentco.graphml, ...) can be dropped in to
// replace the synthetic reconstructions when available.

// graphJSON is the portable JSON schema.
type graphJSON struct {
	N     int    `json:"n"`
	Edges []Edge `json:"edges"`
}

// MarshalJSON serializes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{N: g.n, Edges: g.edges})
}

// UnmarshalJSON restores a graph, validating every edge.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var j graphJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", j.N)
	}
	restored := New(j.N)
	for i, e := range j.Edges {
		if _, err := restored.AddEdge(e.From, e.To, e.Capacity); err != nil {
			return fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	*g = *restored
	return nil
}

// ContentHash returns a SHA-256 digest of the graph's content: the vertex
// count plus every edge's (From, To, Capacity), hashed in sorted (From, To)
// order so the digest is independent of edge insertion order. Two graphs
// hash equal iff they have the same vertices and the same capacitated edge
// set — the property te.PathStore uses to content-address cached candidate
// paths by topology.
func (g *Graph) ContentHash() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
	h.Write(buf[:])
	for _, e := range g.SortedEdgeList() {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.From))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.To))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Capacity))
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// GraphML parsing types (subset sufficient for Topology Zoo exports).
type graphmlFile struct {
	XMLName xml.Name     `xml:"graphml"`
	Keys    []graphmlKey `xml:"key"`
	Graph   graphmlGraph `xml:"graph"`
}

type graphmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
}

type graphmlGraph struct {
	EdgeDefault string        `xml:"edgedefault,attr"`
	Nodes       []graphmlNode `xml:"node"`
	Edges       []graphmlEdge `xml:"edge"`
}

type graphmlNode struct {
	ID string `xml:"id,attr"`
}

type graphmlEdge struct {
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Data   []graphmlData `xml:"data"`
}

type graphmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// GraphMLOptions configures the importer.
type GraphMLOptions struct {
	// DefaultCapacity is used for edges without a recognized capacity
	// attribute (default 10).
	DefaultCapacity float64
	// CapacityAttr names the edge attribute holding capacity/bandwidth
	// (default: any key whose attr.name contains "apacity" or "andwidth").
	CapacityAttr string
}

// ReadGraphML parses a GraphML topology (Topology Zoo style) into a Graph.
// Node IDs are mapped to dense integers in order of appearance; undirected
// edges (the Topology Zoo default) become directed edge pairs. Duplicate
// links between the same node pair are merged by summing capacities, since
// parallel edges are not supported.
func ReadGraphML(r io.Reader, opt GraphMLOptions) (*Graph, error) {
	if opt.DefaultCapacity == 0 {
		opt.DefaultCapacity = 10
	}
	var f graphmlFile
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("graph: graphml parse: %w", err)
	}
	if len(f.Graph.Nodes) == 0 {
		return nil, fmt.Errorf("graph: graphml has no nodes")
	}
	// Resolve the capacity key.
	capKey := ""
	for _, k := range f.Keys {
		if k.For != "edge" {
			continue
		}
		if opt.CapacityAttr != "" {
			if k.Name == opt.CapacityAttr {
				capKey = k.ID
				break
			}
			continue
		}
		if containsAny(k.Name, "apacity", "andwidth") {
			capKey = k.ID
			break
		}
	}

	id := make(map[string]int, len(f.Graph.Nodes))
	for _, n := range f.Graph.Nodes {
		if _, dup := id[n.ID]; dup {
			return nil, fmt.Errorf("graph: duplicate node id %q", n.ID)
		}
		id[n.ID] = len(id)
	}
	g := New(len(id))
	directed := f.Graph.EdgeDefault == "directed"
	// Accumulate capacities per (a,b) with a<b normalization for undirected.
	type link struct{ a, b int }
	caps := map[link]float64{}
	for i, e := range f.Graph.Edges {
		a, ok := id[e.Source]
		if !ok {
			return nil, fmt.Errorf("graph: edge %d references unknown node %q", i, e.Source)
		}
		b, ok := id[e.Target]
		if !ok {
			return nil, fmt.Errorf("graph: edge %d references unknown node %q", i, e.Target)
		}
		if a == b {
			continue // self-loops are meaningless for TE
		}
		c := opt.DefaultCapacity
		if capKey != "" {
			for _, d := range e.Data {
				if d.Key == capKey {
					if v, err := strconv.ParseFloat(trimSpace(d.Value), 64); err == nil && v > 0 {
						c = v
					}
				}
			}
		}
		if !directed && a > b {
			a, b = b, a
		}
		caps[link{a, b}] += c
	}
	// Sort links for deterministic edge ordering.
	links := make([]link, 0, len(caps))
	for l := range caps {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].a != links[j].a {
			return links[i].a < links[j].a
		}
		return links[i].b < links[j].b
	})
	for _, l := range links {
		c := caps[l]
		if directed {
			g.MustAddEdge(l.a, l.b, c)
			continue
		}
		if err := g.AddLink(l.a, l.b, c); err != nil {
			return nil, err
		}
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("graph: graphml has no usable edges")
	}
	return g, nil
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if containsStr(s, sub) {
			return true
		}
	}
	return false
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\n' || s[start] == '\t' || s[start] == '\r') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\n' || s[end-1] == '\t' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}
