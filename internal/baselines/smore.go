package baselines

import (
	"math"

	"figret/internal/graph"
	"figret/internal/te"
)

// RaeckeSelector approximates SMORE's Räcke oblivious-routing path
// selection: for each pair it extracts k paths by successive shortest-path
// computations under multiplicatively inflated edge costs, so later paths
// avoid edges already used (capacity-aware diversity). This reproduces the
// property Figure 6 tests — a diverse, congestion-aware path set chosen
// independently of any particular demand — without the full
// decomposition-tree machinery (see DESIGN.md §2 for the substitution).
func RaeckeSelector(inflation float64) te.PathSelector {
	if inflation <= 1 {
		inflation = 8
	}
	return func(g *graph.Graph, s, d, k int) []graph.Path {
		penalty := make(map[int]float64, 16)
		w := func(e graph.Edge) float64 {
			id, _ := g.EdgeID(e.From, e.To)
			base := 1 / e.Capacity
			if f, ok := penalty[id]; ok {
				return base * f
			}
			return base
		}
		var out []graph.Path
		for i := 0; i < k; i++ {
			p, _, ok := g.ShortestPath(s, d, w, nil, nil)
			if !ok {
				break
			}
			dup := false
			for _, q := range out {
				if q.Equal(p) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, p)
			}
			ids, _ := p.Edges(g)
			for _, id := range ids {
				if _, ok := penalty[id]; !ok {
					penalty[id] = 1
				}
				penalty[id] *= inflation
				if penalty[id] > 1e12 {
					penalty[id] = 1e12
				}
			}
			if dup {
				// All remaining shortest paths collapse onto known ones;
				// push harder before giving up.
				if allSaturated(penalty, inflation) {
					break
				}
			}
		}
		return out
	}
}

func allSaturated(penalty map[int]float64, inflation float64) bool {
	if len(penalty) == 0 {
		return true
	}
	for _, f := range penalty {
		if f < math.Pow(inflation, 6) {
			return false
		}
	}
	return true
}
