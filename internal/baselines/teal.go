package baselines

import (
	"figret/internal/figret"
	"figret/internal/te"
)

// NewTEAL builds the TEAL-like baseline: a neural network that maps a single
// demand matrix to a configuration optimized for that same demand
// (SelfTarget training). At evaluation time the configuration computed from
// D_{t-1} is applied to D_t, exactly the protocol of §5.1: "we apply the TE
// solution computed from the traffic demand of the preceding time snapshot
// to the next time snapshot". TEAL's GNN+RL machinery is substituted by the
// same FCN used elsewhere (DESIGN.md §2); what the evaluation isolates is
// the per-demand (history-free) nature of the scheme, which is preserved.
func NewTEAL(ps *te.PathSet, epochs int, seed int64) *figret.Model {
	return figret.New(ps, figret.Config{
		H:          1,
		Gamma:      0,
		Epochs:     epochs,
		Seed:       seed,
		SelfTarget: true,
	})
}
