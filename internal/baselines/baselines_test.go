package baselines

import (
	"math"
	"testing"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/traffic"
)

func setup(t *testing.T) (*te.PathSet, *traffic.Trace) {
	t.Helper()
	ps, err := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.DC(traffic.PoDDB, 4, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ps, tr
}

func TestOmniscientIsLowerEnvelope(t *testing.T) {
	ps, tr := setup(t)
	omni := &Omniscient{PS: ps, Solve: LPSolve}
	pred := &PredTE{PS: ps, Solve: LPSolve}
	o, err := Evaluate(omni, tr, 100, 110)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Evaluate(pred, tr, 100, 110)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o {
		if p[i] < o[i]-1e-7 {
			t.Errorf("snapshot %d: PredTE %v beat omniscient %v", i, p[i], o[i])
		}
	}
	norm := Normalize(p, o)
	for i, v := range norm {
		if v < 1-1e-6 {
			t.Errorf("normalized MLU %v < 1 at %d", v, i)
		}
	}
}

func TestDesTERespectsBound(t *testing.T) {
	ps, tr := setup(t)
	des := &DesTE{PS: ps, Solve: LPSolve, Bound: 0.5, H: 8}
	cfg, err := des.Advise(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized sensitivities must respect the constant bound (after the
	// feasibility repair, which can only loosen caps for pairs that would
	// otherwise be infeasible).
	minCap := ps.G.MinCapacity()
	for p, r := range cfg.R {
		s := r * minCap / ps.Cap[p]
		if s > 0.5+1e-6 {
			// Check whether this pair's caps were repaired.
			sum := 0.0
			for _, q := range ps.PairPaths[ps.PairOf[p]] {
				sum += 0.5 * ps.Cap[q] / minCap
			}
			if sum >= 1 {
				t.Errorf("path %d sensitivity %v exceeds bound", p, s)
			}
		}
	}
}

func TestDesTEWorseThanOmniscientInNormalCase(t *testing.T) {
	ps, tr := setup(t)
	omni := &Omniscient{PS: ps, Solve: LPSolve}
	des := &DesTE{PS: ps, Solve: LPSolve, Bound: 0.5}
	o, err := Evaluate(omni, tr, 100, 112)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Evaluate(des, tr, 100, 112)
	if err != nil {
		t.Fatal(err)
	}
	var so, sd float64
	for i := range o {
		so += o[i]
		sd += d[i]
	}
	if sd <= so {
		t.Errorf("DesTE average %v should exceed omniscient %v", sd, so)
	}
}

func TestFineGrainedDominatesConstantObjective(t *testing.T) {
	// Appendix C: relaxing the sensitivity caps of stable pairs (LinearF
	// with min equal to the constant bound) enlarges the feasible region,
	// so the optimized peak-matrix objective can only improve. On real
	// traffic the two must stay comparable (the paper reports ~5% gains;
	// here we only require no blow-up, since the magnitude depends on the
	// trace).
	ps, tr := setup(t)
	train, _ := tr.Split(0.75)
	vars := train.Variances()
	peak := tr.PeakMatrix(95, 8)

	constCaps := capsFor(ps, func(int) float64 { return 0.5 })
	lin := linearFForTest(vars, 0.5, 0.9)
	fineCaps := capsFor(ps, lin)
	_, objConst, err := LPSolve(ps, peak, constCaps)
	if err != nil {
		t.Fatal(err)
	}
	_, objFine, err := LPSolve(ps, peak, fineCaps)
	if err != nil {
		t.Fatal(err)
	}
	if objFine > objConst+1e-7 {
		t.Errorf("looser caps worsened objective: %v vs %v", objFine, objConst)
	}

	constant := &DesTE{PS: ps, Solve: LPSolve, Bound: 0.5, H: 8}
	fine := &FineGrainedDesTE{PS: ps, Solve: LPSolve, H: 8, F: lin, Label: "FG linear"}
	c, err := Evaluate(constant, tr, 95, 115)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Evaluate(fine, tr, 95, 115)
	if err != nil {
		t.Fatal(err)
	}
	var sc, sf float64
	for i := range c {
		sc += c[i]
		sf += f[i]
	}
	if sf > 1.1*sc {
		t.Errorf("fine-grained avg %v blew up vs constant %v", sf/20, sc/20)
	}
}

// capsFor mirrors lp.SensitivityCaps for tests (normalized capacities).
func capsFor(ps *te.PathSet, f func(int) float64) []float64 {
	minCap := ps.G.MinCapacity()
	caps := make([]float64, ps.NumPaths())
	for p := range caps {
		caps[p] = f(ps.PairOf[p]) * ps.Cap[p] / minCap
	}
	return caps
}

func linearFForTest(vars []float64, min, max float64) func(int) float64 {
	idx := make([]int, len(vars))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && vars[idx[j]] < vars[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	rank := make([]int, len(vars))
	for r, i := range idx {
		rank[i] = r
	}
	n := float64(len(vars) - 1)
	return func(pair int) float64 {
		return max - float64(rank[pair])/n*(max-min)
	}
}

func TestObliviousGuardsWorstCase(t *testing.T) {
	ps, tr := setup(t)
	train, _ := tr.Split(0.75)
	dmax := PeakDemand(train)
	obl, oblObj, err := ObliviousConfig(ps, dmax, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := obl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The oblivious config's worst box demand must be within its objective.
	_, worst := worstBoxDemand(ps, obl, dmax)
	if worst > oblObj*(1+1e-4) {
		t.Errorf("worst-case %v exceeds oblivious objective %v", worst, oblObj)
	}
	// Against the corner demand, oblivious should beat the all-direct
	// config (which concentrates everything on single links).
	direct := te.NewConfig(ps)
	_, wDirect := worstBoxDemand(ps, direct, dmax)
	if worst > wDirect+1e-9 {
		t.Errorf("oblivious worst case %v not better than direct's %v", worst, wDirect)
	}
}

func TestObliviousWorseInNormalCase(t *testing.T) {
	ps, tr := setup(t)
	train, test := tr.Split(0.75)
	dmax := PeakDemand(train)
	obl, _, err := ObliviousConfig(ps, dmax, 8)
	if err != nil {
		t.Fatal(err)
	}
	omni := &Omniscient{PS: ps, Solve: LPSolve}
	fix := &FixedScheme{Label: "Oblivious", Cfg: obl}
	o, err := Evaluate(omni, test, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(fix, test, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	var so, sb float64
	for i := range o {
		so += o[i]
		sb += b[i]
	}
	if sb <= so {
		t.Errorf("oblivious normal-case %v should exceed omniscient %v", sb, so)
	}
}

func TestCOPEBetween(t *testing.T) {
	// COPE should have better normal-case MLU than pure oblivious (it
	// optimizes the predicted set) while keeping a bounded worst case.
	ps, tr := setup(t)
	train, test := tr.Split(0.75)
	dmax := PeakDemand(train)
	pred := RecentDemands(train, 10)
	cope, copeObj, err := COPEConfig(ps, pred, dmax, 2.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cope.Validate(); err != nil {
		t.Fatal(err)
	}
	obl, _, err := ObliviousConfig(ps, dmax, 8)
	if err != nil {
		t.Fatal(err)
	}
	evalAvg := func(c *te.Config) float64 {
		s := 0.0
		for i := 0; i < 10; i++ {
			s += c.MLU(test.At(i))
		}
		return s / 10
	}
	if evalAvg(cope) >= evalAvg(obl) {
		t.Errorf("COPE normal-case %v not better than oblivious %v", evalAvg(cope), evalAvg(obl))
	}
	_, worst := worstBoxDemand(ps, cope, dmax)
	if worst > 2*copeObj*(1+1e-3) {
		t.Errorf("COPE worst case %v exceeds 2x objective %v", worst, copeObj)
	}
	// Invalid penalty rejected.
	if _, _, err := COPEConfig(ps, pred, dmax, 0.5, 4); err == nil {
		t.Error("penalty < 1 accepted")
	}
}

func TestRaeckeSelectorProperties(t *testing.T) {
	g := graph.GEANT()
	sel := RaeckeSelector(0) // default inflation
	for _, pair := range [][2]int{{0, 12}, {5, 19}} {
		paths := sel(g, pair[0], pair[1], 3)
		if len(paths) == 0 {
			t.Fatalf("no paths for %v", pair)
		}
		seen := map[string]bool{}
		for _, p := range paths {
			if p[0] != pair[0] || p[len(p)-1] != pair[1] {
				t.Errorf("bad endpoints in %v", p)
			}
			if !p.IsSimple() {
				t.Errorf("non-simple path %v", p)
			}
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			if seen[key] {
				t.Errorf("duplicate path %v", p)
			}
			seen[key] = true
		}
	}
	// Path set construction over the selector works end to end.
	ps, err := te.NewPathSet(g, 3, sel)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumPaths() < ps.Pairs.Count() {
		t.Error("fewer paths than pairs")
	}
}

func TestTEALIsPerDemand(t *testing.T) {
	ps, tr := setup(t)
	train, test := tr.Split(0.75)
	teal := NewTEAL(ps, 6, 11)
	if !teal.Cfg.SelfTarget || teal.Cfg.H != 1 {
		t.Fatalf("TEAL config wrong: %+v", teal.Cfg)
	}
	if _, err := teal.Train(train); err != nil {
		t.Fatal(err)
	}
	s := &NNScheme{Label: "TEAL", Model: teal}
	mlus, err := Evaluate(s, test, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mlus {
		if math.IsNaN(m) || m <= 0 {
			t.Errorf("bad TEAL MLU %v", m)
		}
	}
}

func TestGradSolveAsSolveFunc(t *testing.T) {
	ps, tr := setup(t)
	sf := GradSolve(solver.Options{Iters: 200})
	cfg, obj, err := sf(ps, tr.At(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	lpCfg, lpObj, err := LPSolve(ps, tr.At(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = lpCfg
	if obj > lpObj*1.05+1e-9 {
		t.Errorf("grad solve %v vs LP %v", obj, lpObj)
	}
}

func TestAutoSolvePicksByScale(t *testing.T) {
	small, _ := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	// AutoSolve on a small instance must agree with the LP (it IS the LP).
	d := make([]float64, small.Pairs.Count())
	for i := range d {
		d[i] = 1
	}
	_, a, err := AutoSolve(small)(small, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := LPSolve(small, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("AutoSolve small: %v vs LP %v", a, b)
	}
	big, err := te.NewPathSet(graph.ToRDB(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Just verify it returns without using the LP (fast enough to run).
	db := make([]float64, big.Pairs.Count())
	for i := range db {
		db[i] = 0.01
	}
	cfg, _, err := AutoSolve(big)(big, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateRangeErrors(t *testing.T) {
	ps, tr := setup(t)
	omni := &Omniscient{PS: ps, Solve: LPSolve}
	if _, err := Evaluate(omni, tr, 200, 100); err == nil {
		t.Error("empty range accepted")
	}
}

func TestEvaluateRejectsWarmupShift(t *testing.T) {
	// The legacy clamping silently returned a shorter, index-shifted
	// series when the scheme's warmup exceeded the requested start —
	// misaligning it against any base series over the same window. The
	// legacy path must now refuse instead.
	ps, tr := setup(t)
	pred := &PredTE{PS: ps, Solve: LPSolve} // warmup 1
	if _, err := Evaluate(pred, tr, 0, 10); err == nil {
		t.Fatal("warmup > from accepted; series would be index-shifted")
	}
	series, err := Evaluate(pred, tr, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Errorf("got %d MLUs, want 9", len(series))
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	// Zero base entries: 0/0 is defined as 1 (both idle), x/0 as +Inf.
	n := Normalize([]float64{0, 3, 2}, []float64{0, 0, 4})
	if n[0] != 1 {
		t.Errorf("0/0 = %v, want 1", n[0])
	}
	if !math.IsInf(n[1], 1) {
		t.Errorf("3/0 = %v, want +Inf", n[1])
	}
	if n[2] != 0.5 {
		t.Errorf("2/4 = %v, want 0.5", n[2])
	}
	// A shorter series normalizes against the base prefix.
	n = Normalize([]float64{2, 2}, []float64{1, 2, 4})
	if n[0] != 2 || n[1] != 1 {
		t.Errorf("prefix normalization = %v, want [2 1]", n)
	}
	// A series longer than its base cannot be aligned; that must panic
	// rather than read out of bounds or silently truncate.
	defer func() {
		if recover() == nil {
			t.Error("series longer than base accepted")
		}
	}()
	Normalize([]float64{1, 2}, []float64{1})
}

func TestNNSchemeWithFigret(t *testing.T) {
	ps, tr := setup(t)
	train, test := tr.Split(0.75)
	m := figret.New(ps, figret.Config{H: 4, Gamma: 1, Epochs: 5, Seed: 12})
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	s := &NNScheme{Label: "FIGRET", Model: m}
	if s.Warmup() != 4 {
		t.Errorf("warmup = %d", s.Warmup())
	}
	// Starting before the warmup is an explicit error now (the engine
	// aligns windows per scheme; the legacy path refuses to shift).
	if _, err := Evaluate(s, test, 0, 12); err == nil {
		t.Error("warmup > from accepted")
	}
	mlus, err := Evaluate(s, test, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(mlus) != 8 {
		t.Errorf("got %d MLUs, want 8", len(mlus))
	}
}
