// Package baselines implements the TE schemes FIGRET is evaluated against
// (§5.1): Omniscient TE, demand-prediction-based TE, desensitization-based
// TE (Google Jupiter hedging), demand-oblivious TE, COPE, SMORE-style path
// selection, and a TEAL-like per-demand learned scheme. All schemes share
// the Scheme interface so the experiment harness can evaluate them
// uniformly.
package baselines

import (
	"fmt"
	"math"
	"sync"

	"figret/internal/figret"
	"figret/internal/lp"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/traffic"
)

// SolveFunc computes a (near-)MLU-optimal configuration for a single demand
// with optional per-path ratio caps. The two implementations are LPSolve
// (exact simplex; small/medium instances) and GradSolve (projected gradient;
// any scale).
type SolveFunc func(ps *te.PathSet, d []float64, caps []float64) (*te.Config, float64, error)

// LPSolve is the exact LP implementation of SolveFunc.
func LPSolve(ps *te.PathSet, d []float64, caps []float64) (*te.Config, float64, error) {
	return lp.MLUMinCapped(ps, d, caps)
}

// GradSolve returns a SolveFunc backed by the projected-gradient solver.
func GradSolve(opt solver.Options) SolveFunc {
	return func(ps *te.PathSet, d []float64, caps []float64) (*te.Config, float64, error) {
		o := opt
		o.Caps = caps
		cfg, obj := solver.MinimizeMLU(ps, d, o)
		return cfg, obj, nil
	}
}

// WarmSolveFunc computes a (near-)MLU-optimal configuration for demand d
// starting from the split ratios initR (typically the previous snapshot's
// optimum). The evaluation engine's oracle uses it to cut solver
// iterations on temporally-correlated traces.
type WarmSolveFunc func(ps *te.PathSet, d, initR []float64) (*te.Config, float64, error)

// GradWarmSolve returns a WarmSolveFunc backed by the projected-gradient
// solver's warm-start entry point; opt.Iters should be well below the cold
// solve's budget (warm starts converge in a fraction of the iterations).
func GradWarmSolve(opt solver.Options) WarmSolveFunc {
	return func(ps *te.PathSet, d, initR []float64) (*te.Config, float64, error) {
		o := opt
		o.InitR = initR
		cfg, obj := solver.MinimizeMLU(ps, d, o)
		return cfg, obj, nil
	}
}

// AutoSolve picks LPSolve for instances small enough for dense simplex and
// GradSolve otherwise, mirroring the scalability split the paper reports.
func AutoSolve(ps *te.PathSet) SolveFunc {
	// Rows ≈ pairs + edges; dense tableaux beyond a few thousand rows are
	// not worth it.
	if ps.Pairs.Count()+ps.G.NumEdges() <= 1200 {
		return LPSolve
	}
	return GradSolve(solver.Options{})
}

// Scheme is a TE scheme under the paper's evaluation protocol: at snapshot
// t it must produce a configuration using only information available before
// D_t arrives (except Omniscient, the oracle).
//
// Concurrency contract: Advise must be safe for concurrent use and must be
// a pure function of (tr, t) — the parallel evaluation engine
// (internal/eval) issues Advise calls for many snapshots at once and relies
// on both properties for worker-count-independent results. Every scheme in
// this package satisfies the contract.
type Scheme interface {
	Name() string
	// Warmup is the first snapshot index the scheme can advise on.
	Warmup() int
	// Advise returns the configuration to apply to snapshot t of tr.
	Advise(tr *traffic.Trace, t int) (*te.Config, error)
}

// Omniscient is the oracle baseline: it optimizes for the true D_t.
// Its MLU is the normalizer for every Figure 5/6/7 result.
type Omniscient struct {
	PS    *te.PathSet
	Solve SolveFunc
}

// Name implements Scheme.
func (o *Omniscient) Name() string { return "Omniscient" }

// Warmup implements Scheme.
func (o *Omniscient) Warmup() int { return 0 }

// Advise implements Scheme.
func (o *Omniscient) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	cfg, _, err := o.Solve(o.PS, tr.At(t), nil)
	return cfg, err
}

// PredTE is demand-prediction-based TE: it optimizes for the previous
// snapshot's demand ("we apply the TE solution computed from the traffic
// demand of the preceding time snapshot to the next time snapshot").
type PredTE struct {
	PS    *te.PathSet
	Solve SolveFunc
}

// Name implements Scheme.
func (p *PredTE) Name() string { return "Pred TE" }

// Warmup implements Scheme.
func (p *PredTE) Warmup() int { return 1 }

// Advise implements Scheme.
func (p *PredTE) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	if t < 1 {
		return nil, fmt.Errorf("baselines: PredTE needs t >= 1")
	}
	cfg, _, err := p.Solve(p.PS, tr.At(t-1), nil)
	return cfg, err
}

// DesTE is desensitization-based TE — the scheme of Google's Jupiter data
// centers [37] and COUDER [44]: optimize MLU for the window-peak predicted
// matrix under a constant path-sensitivity cap.
type DesTE struct {
	PS *te.PathSet
	// H is the peak-tracking window (default 12).
	H int
	// Bound is the constant sensitivity bound F (default 2/3, the
	// "Original" setting of Appendix C's Tables 7/8).
	Bound float64
	Solve SolveFunc

	capsOnce sync.Once
	caps     []float64
}

// Name implements Scheme.
func (d *DesTE) Name() string { return "Des TE" }

// Warmup implements Scheme.
func (d *DesTE) Warmup() int { return 1 }

func (d *DesTE) params() (int, float64) {
	h := d.H
	if h == 0 {
		h = 12
	}
	b := d.Bound
	if b == 0 {
		b = 2.0 / 3.0
	}
	return h, b
}

// Advise implements Scheme.
func (d *DesTE) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	if t < 1 {
		return nil, fmt.Errorf("baselines: DesTE needs t >= 1")
	}
	h, bound := d.params()
	d.capsOnce.Do(func() {
		d.caps = lp.SensitivityCaps(d.PS, lp.ConstantF(bound))
	})
	peak := tr.PeakMatrix(t, h)
	cfg, _, err := d.Solve(d.PS, peak, d.caps)
	return cfg, err
}

// FineGrainedDesTE is the Appendix C variant: desensitization TE whose
// sensitivity bound F varies per SD pair via a heuristic function of the
// pair's historical variance (LinearF or PiecewiseF).
type FineGrainedDesTE struct {
	PS *te.PathSet
	// H is the peak-tracking window (default 12).
	H int
	// F maps pair index to its sensitivity bound.
	F func(pair int) float64
	// Label distinguishes parameterizations in reports.
	Label string
	Solve SolveFunc

	capsOnce sync.Once
	caps     []float64
}

// Name implements Scheme.
func (d *FineGrainedDesTE) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "FG Des TE"
}

// Warmup implements Scheme.
func (d *FineGrainedDesTE) Warmup() int { return 1 }

// Advise implements Scheme.
func (d *FineGrainedDesTE) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	if t < 1 {
		return nil, fmt.Errorf("baselines: FineGrainedDesTE needs t >= 1")
	}
	h := d.H
	if h == 0 {
		h = 12
	}
	d.capsOnce.Do(func() {
		d.caps = lp.SensitivityCaps(d.PS, d.F)
	})
	peak := tr.PeakMatrix(t, h)
	cfg, _, err := d.Solve(d.PS, peak, d.caps)
	return cfg, err
}

// NNScheme adapts a trained figret.Model (FIGRET, DOTE, or TEAL-like) to the
// Scheme interface. Advise is safe for concurrent use: inference runs on a
// pool of goroutine-confined figret.Predictor contexts, whose outputs are
// bitwise identical to Model.PredictAt.
type NNScheme struct {
	Label string
	Model *figret.Model

	pool sync.Pool // of *figret.Predictor
}

// Name implements Scheme.
func (s *NNScheme) Name() string { return s.Label }

// Warmup implements Scheme.
func (s *NNScheme) Warmup() int { return s.Model.Cfg.H }

// Advise implements Scheme.
func (s *NNScheme) Advise(tr *traffic.Trace, t int) (*te.Config, error) {
	p, _ := s.pool.Get().(*figret.Predictor)
	if p == nil {
		p = s.Model.NewPredictor()
	}
	defer s.pool.Put(p)
	return p.PredictAt(tr, t)
}

// FixedScheme wraps a precomputed static configuration (Oblivious, COPE).
type FixedScheme struct {
	Label string
	Cfg   *te.Config
}

// Name implements Scheme.
func (f *FixedScheme) Name() string { return f.Label }

// Warmup implements Scheme.
func (f *FixedScheme) Warmup() int { return 0 }

// Advise implements Scheme.
func (f *FixedScheme) Advise(*traffic.Trace, int) (*te.Config, error) {
	return f.Cfg, nil
}

// Evaluate runs a scheme sequentially over the test snapshots [from, to)
// of tr and returns one MLU per snapshot. Callers normalize by the
// Omniscient series to obtain the paper's normalized MLU.
//
// The scheme must be able to advise on every requested snapshot: if
// s.Warmup() exceeds from, Evaluate returns an explicit error instead of
// silently starting late — the historical clamping behavior returned a
// shorter series whose indices were shifted relative to any base series
// evaluated over the same [from, to), corrupting Normalize results.
// internal/eval.Run aligns windows per scheme (and evaluates in parallel);
// prefer it for multi-scheme comparisons.
func Evaluate(s Scheme, tr *traffic.Trace, from, to int) ([]float64, error) {
	if from < s.Warmup() {
		return nil, fmt.Errorf("baselines: %s warmup %d exceeds evaluation start %d (use eval.Run for per-scheme window alignment)",
			s.Name(), s.Warmup(), from)
	}
	if to > tr.Len() {
		to = tr.Len()
	}
	if from >= to {
		return nil, fmt.Errorf("baselines: empty evaluation range [%d,%d)", from, to)
	}
	out := make([]float64, 0, to-from)
	for t := from; t < to; t++ {
		cfg, err := s.Advise(tr, t)
		if err != nil {
			return nil, fmt.Errorf("baselines: %s at t=%d: %w", s.Name(), t, err)
		}
		out = append(out, cfg.MLU(tr.At(t)))
	}
	return out, nil
}

// Normalize divides each entry of series by the matching entry of base,
// guarding against division by zero: a zero base entry maps a zero series
// entry to 1 (both schemes idle) and a positive one to +Inf. The series
// may be shorter than the base, in which case the extra base entries are
// ignored — entry i of the series must correspond to entry i of the base
// (aligned starts); it must not be longer.
func Normalize(series, base []float64) []float64 {
	if len(series) > len(base) {
		panic(fmt.Sprintf("baselines: series length %d exceeds base length %d", len(series), len(base)))
	}
	out := make([]float64, len(series))
	for i := range series {
		if base[i] > 0 {
			out[i] = series[i] / base[i]
		} else if series[i] == 0 {
			out[i] = 1
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
