package baselines

import (
	"math"
	"math/rand"
	"testing"

	"figret/internal/graph"
	"figret/internal/te"
)

// TestWorstBoxDemandMatchesExhaustive verifies the closed-form box
// adversary against exhaustive enumeration of all 2^k box corners on a tiny
// instance (the maximum of a linear function over a box is at a corner).
func TestWorstBoxDemandMatchesExhaustive(t *testing.T) {
	g := graph.FullMesh(3, 5) // 6 pairs -> 64 corners
	ps, err := te.NewPathSet(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		cfg := te.NewConfig(ps)
		for i := range cfg.R {
			cfg.R[i] = rng.Float64()
		}
		cfg.Normalize()
		dmax := make([]float64, ps.Pairs.Count())
		for i := range dmax {
			dmax[i] = rng.Float64() * 4
		}
		_, got := worstBoxDemand(ps, cfg, dmax)

		// Exhaustive corner sweep.
		k := ps.Pairs.Count()
		best := 0.0
		d := make([]float64, k)
		for mask := 0; mask < 1<<k; mask++ {
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					d[i] = dmax[i]
				} else {
					d[i] = 0
				}
			}
			if m := cfg.MLU(d); m > best {
				best = m
			}
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: closed-form worst %v, exhaustive %v", trial, got, best)
		}
	}
}

// TestObliviousBeatsDirectOnEveryCorner: the oblivious configuration's MLU
// on every box corner stays within its certified objective.
func TestObliviousBeatsDirectOnEveryCorner(t *testing.T) {
	g := graph.FullMesh(3, 5)
	ps, err := te.NewPathSet(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dmax := []float64{2, 3, 1, 2, 4, 1}
	obl, obj, err := ObliviousConfig(ps, dmax, 10)
	if err != nil {
		t.Fatal(err)
	}
	k := ps.Pairs.Count()
	d := make([]float64, k)
	for mask := 0; mask < 1<<k; mask++ {
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				d[i] = dmax[i]
			} else {
				d[i] = 0
			}
		}
		if m := obl.MLU(d); m > obj*(1+1e-6) {
			t.Fatalf("corner %b: MLU %v exceeds oblivious objective %v", mask, m, obj)
		}
	}
}
