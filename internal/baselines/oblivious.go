package baselines

import (
	"fmt"

	"figret/internal/lp"
	"figret/internal/te"
	"figret/internal/traffic"
)

// This file implements demand-oblivious TE [Applegate & Cohen 2003] and COPE
// [Wang et al. 2006] over a box-bounded demand uncertainty set, via a
// cutting-plane (adversarial best-response) loop:
//
//  1. Solve min_R max_{D in set} MLU(R, D) over a finite working set of
//     demand matrices (one LP with per-demand edge constraints).
//  2. Find the worst-case demand for the current R inside the box
//     [0, dmax_sd]^pairs. Because edge utilization is linear in D with
//     non-negative coefficients, the per-edge maximizer sets every
//     contributing demand to its upper bound, so the global worst case is
//     computable in closed form edge by edge.
//  3. If the worst case exceeds the working-set optimum, add it and repeat.
//
// COPE additionally keeps the recently observed demands in the working set
// at full weight while the box worst case is only enforced up to a penalty
// ratio, reproducing its "optimize predicted set, retain a worst-case
// guarantee" behavior.

// ObliviousConfig precomputes the oblivious routing configuration for the
// demand box [0, dmax]. dmax is typically the per-pair training peak.
func ObliviousConfig(ps *te.PathSet, dmax []float64, maxIters int) (*te.Config, float64, error) {
	return cuttingPlane(ps, nil, dmax, 1, maxIters)
}

// COPEConfig precomputes a COPE configuration: the working set starts from
// the observed demands (the "predicted set"); the box worst case is
// enforced only up to penaltyRatio times the predicted-set objective.
func COPEConfig(ps *te.PathSet, predicted [][]float64, dmax []float64, penaltyRatio float64, maxIters int) (*te.Config, float64, error) {
	if penaltyRatio < 1 {
		return nil, 0, fmt.Errorf("baselines: penalty ratio %v must be >= 1", penaltyRatio)
	}
	return cuttingPlane(ps, predicted, dmax, penaltyRatio, maxIters)
}

// cuttingPlane is the shared solver. Demands in `seed` are enforced at
// utilization <= θ; box worst cases are enforced at <= penaltyRatio·θ.
func cuttingPlane(ps *te.PathSet, seed [][]float64, dmax []float64, penaltyRatio float64, maxIters int) (*te.Config, float64, error) {
	if len(dmax) != ps.Pairs.Count() {
		return nil, 0, fmt.Errorf("baselines: dmax has %d entries, want %d", len(dmax), ps.Pairs.Count())
	}
	if maxIters <= 0 {
		maxIters = 12
	}
	working := make([][]float64, 0, len(seed)+maxIters)
	weights := make([]float64, 0, len(seed)+maxIters) // constraint slack: util <= w·θ
	for _, d := range seed {
		working = append(working, d)
		weights = append(weights, 1)
	}
	if len(working) == 0 {
		// Start from the box's corner demand.
		working = append(working, append([]float64(nil), dmax...))
		weights = append(weights, penaltyRatio)
	}

	var cfg *te.Config
	var obj float64
	for iter := 0; iter < maxIters; iter++ {
		var err error
		cfg, obj, err = solveMultiDemand(ps, working, weights)
		if err != nil {
			return nil, 0, err
		}
		worst, wMLU := worstBoxDemand(ps, cfg, dmax)
		// The worst box demand must satisfy util <= penaltyRatio·θ.
		if wMLU <= penaltyRatio*obj*(1+1e-6) {
			return cfg, obj, nil
		}
		working = append(working, worst)
		weights = append(weights, penaltyRatio)
	}
	return cfg, obj, nil
}

// solveMultiDemand solves
//
//	min θ  s.t. Σ r_p = 1 per pair;  util_e(D_i) ≤ w_i·θ  for all i, e.
func solveMultiDemand(ps *te.PathSet, demands [][]float64, weights []float64) (*te.Config, float64, error) {
	P := ps.NumPaths()
	nv := P + 1
	theta := P
	var A [][]float64
	var B []float64
	var S []lp.Sense
	for _, pp := range ps.PairPaths {
		row := make([]float64, nv)
		for _, p := range pp {
			row[p] = 1
		}
		A = append(A, row)
		B = append(B, 1)
		S = append(S, lp.EQ)
	}
	ne := ps.G.NumEdges()
	for di, d := range demands {
		rows := make([][]float64, ne)
		for e := 0; e < ne; e++ {
			row := make([]float64, nv)
			row[theta] = -weights[di] * ps.G.Edge(e).Capacity
			rows[e] = row
		}
		for p, eids := range ps.EdgeIDs {
			dp := d[ps.PairOf[p]]
			if dp == 0 {
				continue
			}
			for _, e := range eids {
				rows[e][p] += dp
			}
		}
		for e := 0; e < ne; e++ {
			A = append(A, rows[e])
			B = append(B, 0)
			S = append(S, lp.LE)
		}
	}
	c := make([]float64, nv)
	c[theta] = 1
	x, obj, err := lp.Solve(&lp.Problem{C: c, A: A, B: B, S: S})
	if err != nil {
		return nil, 0, err
	}
	cfg := te.NewConfig(ps)
	copy(cfg.R, x[:P])
	cfg.Normalize()
	return cfg, obj, nil
}

// worstBoxDemand returns the demand in [0, dmax] maximizing MLU under cfg,
// and that MLU. Utilization of edge e is Σ_pair coef_{e,pair}·d_pair with
// coef ≥ 0, so per edge the maximizer is d_pair = dmax_pair wherever
// coef > 0; the global maximizer is the best edge's choice.
func worstBoxDemand(ps *te.PathSet, cfg *te.Config, dmax []float64) ([]float64, float64) {
	ne := ps.G.NumEdges()
	k := ps.Pairs.Count()
	// coef[e*k+pair] accumulated sparsely via path traversal.
	coef := make([]float64, ne*k)
	for p, eids := range ps.EdgeIDs {
		r := cfg.R[p]
		if r == 0 {
			continue
		}
		pair := ps.PairOf[p]
		for _, e := range eids {
			coef[e*k+pair] += r
		}
	}
	bestE, bestU := -1, -1.0
	for e := 0; e < ne; e++ {
		u := 0.0
		row := coef[e*k : (e+1)*k]
		for pair, c := range row {
			if c > 0 {
				u += c * dmax[pair]
			}
		}
		u /= ps.G.Edge(e).Capacity
		if u > bestU {
			bestU, bestE = u, e
		}
	}
	worst := make([]float64, k)
	if bestE >= 0 {
		row := coef[bestE*k : (bestE+1)*k]
		for pair, c := range row {
			if c > 0 {
				worst[pair] = dmax[pair]
			}
		}
	}
	return worst, bestU
}

// PeakDemand returns the per-pair maximum over a trace, the usual dmax for
// the oblivious/COPE uncertainty box.
func PeakDemand(tr *traffic.Trace) []float64 {
	k := tr.Pairs.Count()
	out := make([]float64, k)
	for _, s := range tr.Snapshots {
		for i, v := range s {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// RecentDemands returns the last n snapshots of a trace (deep-copied), the
// COPE "predicted set".
func RecentDemands(tr *traffic.Trace, n int) [][]float64 {
	if n > tr.Len() {
		n = tr.Len()
	}
	out := make([][]float64, 0, n)
	for i := tr.Len() - n; i < tr.Len(); i++ {
		out = append(out, append([]float64(nil), tr.At(i)...))
	}
	return out
}
