// Package eval is the shared evaluation engine behind every experiment:
// a worker pool evaluates (scheme × snapshot) cells in parallel, an
// Oracle memoizes and warm-starts the omniscient solves that normalize
// every result, and Run assembles per-scheme raw and normalized MLU
// series with candlestick statistics and severe-congestion rates.
//
// Determinism contract: Run's output is bitwise identical for every
// worker count. Three properties make that hold — (1) every cell's value
// is a pure function of (scheme, trace, snapshot), required of Scheme
// implementations (see baselines.Scheme's concurrency contract); (2) cell
// results land in preallocated slots indexed by (scheme, snapshot), so
// scheduling order never reorders output; (3) the oracle base is computed
// before scheme cells run, in warm-start chains whose block boundaries
// are anchored to the evaluation window rather than to the worker layout.
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"figret/internal/baselines"
	"figret/internal/traffic"
)

// Window is a half-open snapshot range [From, To) of a trace. To is
// clamped to the trace length by Run.
type Window struct {
	From, To int
}

// Options configures Run.
type Options struct {
	// Workers is the size of the evaluation worker pool; <= 0 selects
	// runtime.NumCPU(). Results are bitwise identical for any value.
	Workers int
	// Oracle normalizes the series. Nil evaluates raw MLUs only (Norm is
	// nil and statistics are computed over Raw).
	Oracle *Oracle
	// SevereThreshold is the normalized-MLU bound above which a snapshot
	// counts as a severe-congestion incident (default 2, the paper's
	// criterion).
	SevereThreshold float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.SevereThreshold == 0 {
		o.SevereThreshold = 2
	}
	return o
}

// SchemeSeries is one scheme's evaluation over its aligned window.
type SchemeSeries struct {
	Name string
	// From is the first evaluated snapshot: the window start, pushed to
	// the scheme's warmup when that is later. Raw[i] and Norm[i] describe
	// snapshot From+i.
	From int
	// Raw is the scheme's MLU per snapshot of [From, To).
	Raw []float64
	// Norm is Raw normalized by the omniscient base at the matching
	// snapshots (nil when Run had no oracle).
	Norm []float64
	// Stats summarizes Norm (or Raw without an oracle).
	Stats traffic.Candlestick
	// AvgNorm is the mean of Norm (or Raw without an oracle).
	AvgNorm float64
	// SevereCongestion is the fraction of snapshots whose normalized MLU
	// exceeds the severe threshold (0 without an oracle).
	SevereCongestion float64
}

// Result is the output of one Run.
type Result struct {
	// From, To is the clamped evaluation window.
	From, To int
	// Base is the omniscient MLU per snapshot of [From, To); nil when Run
	// had no oracle.
	Base []float64
	// Schemes holds one series per input scheme, in input order.
	Schemes []SchemeSeries
}

// Scheme returns the named series, or nil.
func (r *Result) Scheme(name string) *SchemeSeries {
	for i := range r.Schemes {
		if r.Schemes[i].Name == name {
			return &r.Schemes[i]
		}
	}
	return nil
}

// Run evaluates every scheme over the snapshots of win, normalizes by the
// oracle base, and summarizes. Schemes whose warmup starts after win.From
// are aligned explicitly: their series begin at the warmup index (recorded
// in SchemeSeries.From) and normalize against the matching base entries —
// never index-shifted. A scheme whose warmup leaves no snapshot in the
// window is an error.
func Run(schemes []baselines.Scheme, tr *traffic.Trace, win Window, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(schemes) == 0 {
		return nil, fmt.Errorf("eval: no schemes")
	}
	from, to := win.From, win.To
	if to > tr.Len() {
		to = tr.Len()
	}
	if from < 0 || from >= to {
		return nil, fmt.Errorf("eval: empty evaluation window [%d,%d) (trace length %d)", from, to, tr.Len())
	}

	res := &Result{From: from, To: to, Schemes: make([]SchemeSeries, len(schemes))}
	for si, s := range schemes {
		sFrom := from
		if w := s.Warmup(); w > sFrom {
			sFrom = w
		}
		if sFrom >= to {
			return nil, fmt.Errorf("eval: %s warmup %d leaves no snapshot in window [%d,%d)", s.Name(), s.Warmup(), from, to)
		}
		res.Schemes[si] = SchemeSeries{
			Name: s.Name(),
			From: sFrom,
			Raw:  make([]float64, to-sFrom),
		}
	}

	// Phase 1: the oracle base, before any scheme cell runs — scheme
	// solves that consult the oracle cache (Oracle.CachedSolve) then see a
	// fully-populated window regardless of scheduling.
	if opt.Oracle != nil {
		base, err := opt.Oracle.Series(tr, from, to, opt.Workers)
		if err != nil {
			return nil, err
		}
		res.Base = base
	}

	// Phase 2: (scheme × snapshot) cells on the worker pool.
	type cell struct{ si, t int }
	var cells []cell
	for si := range res.Schemes {
		for t := res.Schemes[si].From; t < to; t++ {
			cells = append(cells, cell{si, t})
		}
	}
	err := Parallel(len(cells), opt.Workers, func(i int) error {
		c := cells[i]
		s := schemes[c.si]
		cfg, err := s.Advise(tr, c.t)
		if err != nil {
			return fmt.Errorf("eval: %s at t=%d: %w", s.Name(), c.t, err)
		}
		res.Schemes[c.si].Raw[c.t-res.Schemes[c.si].From] = cfg.MLU(tr.At(c.t))
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: aligned normalization and summary statistics.
	for si := range res.Schemes {
		ss := &res.Schemes[si]
		summary := ss.Raw
		if res.Base != nil {
			ss.Norm = baselines.Normalize(ss.Raw, res.Base[ss.From-from:])
			summary = ss.Norm
			severe := 0
			for _, v := range ss.Norm {
				if v > opt.SevereThreshold {
					severe++
				}
			}
			ss.SevereCongestion = float64(severe) / float64(len(ss.Norm))
		}
		ss.Stats = traffic.Summarize(summary)
		var sum float64
		for _, v := range summary {
			sum += v
		}
		ss.AvgNorm = sum / float64(len(summary))
	}
	return res, nil
}

// Parallel runs fn(i) for every i in [0, n) on up to workers goroutines
// (<= 0 selects runtime.NumCPU()) and returns the error of the
// smallest-indexed failing call. A failure cancels the pool: indices not
// yet claimed are skipped, so a scheme erroring on its first cell does
// not pay for the hundreds of remaining ones. Because indices are
// claimed in strictly ascending order, every index smaller than a
// failing one has already been claimed and runs to completion — the
// globally smallest failing index is therefore always among the
// completed calls, and the returned error is deterministic. fn must
// confine its writes to caller-owned storage for index i; under that
// discipline output is identical for any worker count. It is the
// engine's worker-pool primitive, exported for experiments whose cell
// structure is richer than (scheme × snapshot) — e.g. the failure
// study's (failure-set × snapshot) grid.
func Parallel(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// The failure check must precede the claim: indices are
				// claimed in ascending order, so a failure at index j can
				// only be observed by workers that have not yet claimed
				// their next (larger) index — every claimed index runs to
				// completion, which is what makes the smallest failing
				// index deterministic.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MeanQuantile returns the mean of xs and its q'th quantile — the
// (avg, p90)-style pair several robustness tables report.
func MeanQuantile(xs []float64, q float64) (mean, quant float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs)), traffic.Quantile(xs, q)
}
