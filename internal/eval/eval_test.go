package eval

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"figret/internal/baselines"
	"figret/internal/graph"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/traffic"
)

func setup(t *testing.T) (*te.PathSet, *traffic.Trace) {
	t.Helper()
	ps, err := te.NewPathSet(graph.FullMesh(4, 10), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.DC(traffic.PoDDB, 4, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ps, tr
}

func lpOracle(ps *te.PathSet) *Oracle {
	return NewOracle(ps, baselines.LPSolve, nil)
}

func gradOracle(ps *te.PathSet) *Oracle {
	return NewOracle(ps, baselines.GradSolve(solver.Options{Iters: 400}),
		baselines.GradWarmSolve(solver.Options{Iters: 120}))
}

// TestRunDeterministicAcrossWorkerCounts is the engine's core contract:
// bitwise-identical output for any worker count.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ps, tr := setup(t)
	win := Window{From: 1, To: 25}
	runWith := func(workers int) *Result {
		t.Helper()
		// Fresh oracle per run so cache state cannot mask divergence.
		orc := gradOracle(ps)
		schemes := []baselines.Scheme{
			&baselines.PredTE{PS: ps, Solve: orc.CachedSolve},
			&baselines.DesTE{PS: ps, Solve: baselines.LPSolve, H: 8},
			&baselines.FixedScheme{Label: "Uniform", Cfg: te.UniformConfig(ps)},
		}
		res, err := Run(schemes, tr, win, Options{Workers: workers, Oracle: orc})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := runWith(1)
	for _, workers := range []int{2, 4, 7} {
		got := runWith(workers)
		for i := range ref.Base {
			if got.Base[i] != ref.Base[i] {
				t.Fatalf("workers=%d: base[%d] %v != %v", workers, i, got.Base[i], ref.Base[i])
			}
		}
		for si := range ref.Schemes {
			r, g := ref.Schemes[si], got.Schemes[si]
			if r.From != g.From || len(r.Raw) != len(g.Raw) {
				t.Fatalf("workers=%d: %s window mismatch", workers, r.Name)
			}
			for i := range r.Raw {
				if g.Raw[i] != r.Raw[i] || g.Norm[i] != r.Norm[i] {
					t.Fatalf("workers=%d: %s[%d] raw %v/%v norm %v/%v",
						workers, r.Name, i, g.Raw[i], r.Raw[i], g.Norm[i], r.Norm[i])
				}
			}
		}
	}
}

// TestRunAlignsWarmupWindows covers the engine fix for the legacy
// series-misalignment bug: a scheme whose warmup starts after the window
// gets a shorter series normalized against the MATCHING base entries.
func TestRunAlignsWarmupWindows(t *testing.T) {
	ps, tr := setup(t)
	orc := lpOracle(ps)
	omniLike := &baselines.Omniscient{PS: ps, Solve: orc.CachedSolve} // warmup 0
	des := &baselines.DesTE{PS: ps, Solve: baselines.LPSolve, H: 8}   // warmup 1
	res, err := Run([]baselines.Scheme{omniLike, des}, tr, Window{From: 0, To: 12},
		Options{Workers: 3, Oracle: orc})
	if err != nil {
		t.Fatal(err)
	}
	full := res.Scheme("Omniscient")
	late := res.Scheme("Des TE")
	if full.From != 0 || len(full.Raw) != 12 {
		t.Fatalf("full series misaligned: from %d len %d", full.From, len(full.Raw))
	}
	if late.From != 1 || len(late.Raw) != 11 {
		t.Fatalf("late series misaligned: from %d len %d", late.From, len(late.Raw))
	}
	// The omniscient-backed scheme must normalize to exactly 1 everywhere;
	// Des TE's entry i describes snapshot 1+i, so its normalizer is
	// Base[1+i] — verified against a direct recomputation.
	for i, v := range full.Norm {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("omniscient norm[%d] = %v, want 1", i, v)
		}
	}
	for i, v := range late.Norm {
		want := late.Raw[i] / res.Base[1+i]
		if v != want {
			t.Errorf("Des TE norm[%d] = %v, want %v (aligned base)", i, v, want)
		}
	}
	// A warmup that exhausts the window is an explicit error.
	big := &baselines.DesTE{PS: ps, Solve: baselines.LPSolve, H: 8}
	if _, err := Run([]baselines.Scheme{big}, tr, Window{From: 0, To: 1}, Options{Oracle: orc}); err == nil {
		t.Error("warmup exhausting the window accepted")
	}
}

func TestRunValidation(t *testing.T) {
	ps, tr := setup(t)
	if _, err := Run(nil, tr, Window{0, 5}, Options{}); err == nil {
		t.Error("no schemes accepted")
	}
	s := &baselines.FixedScheme{Label: "U", Cfg: te.UniformConfig(ps)}
	if _, err := Run([]baselines.Scheme{s}, tr, Window{50, 10}, Options{}); err == nil {
		t.Error("inverted window accepted")
	}
	// To beyond the trace clamps rather than failing.
	res, err := Run([]baselines.Scheme{s}, tr, Window{From: tr.Len() - 3, To: tr.Len() + 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schemes[0].Raw) != 3 {
		t.Errorf("clamped series length %d, want 3", len(res.Schemes[0].Raw))
	}
	if res.Schemes[0].Norm != nil {
		t.Error("norm series without an oracle")
	}
}

// TestOracleCacheAccounting covers hit/miss bookkeeping and cross-view
// sharing: a trace slice shares snapshot storage with its parent, so the
// oracle computed through either is one entry.
func TestOracleCacheAccounting(t *testing.T) {
	ps, tr := setup(t)
	orc := lpOracle(ps)
	if _, err := orc.Series(tr, 10, 20, 4); err != nil {
		t.Fatal(err)
	}
	hits, misses := orc.Stats()
	if hits != 0 || misses != 10 {
		t.Fatalf("after cold series: hits %d misses %d, want 0/10", hits, misses)
	}
	if orc.Len() != 10 {
		t.Fatalf("cache holds %d entries, want 10", orc.Len())
	}
	// Same window again: all hits.
	base1, err := orc.Series(tr, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses = orc.Stats()
	if hits != 10 || misses != 10 {
		t.Fatalf("after warm series: hits %d misses %d, want 10/10", hits, misses)
	}
	// The same snapshots through a slice view hit the same entries.
	view := tr.Slice(5, 30)
	base2, err := orc.Series(view, 5, 15, 2) // view index 5+i = trace index 10+i
	if err != nil {
		t.Fatal(err)
	}
	hits, _ = orc.Stats()
	if hits != 20 {
		t.Fatalf("slice view missed the cache: hits %d, want 20", hits)
	}
	for i := range base1 {
		if base1[i] != base2[i] {
			t.Fatalf("view base[%d] %v != %v", i, base2[i], base1[i])
		}
	}
	// CachedSolve shares the same entries and returns mutation-safe copies.
	cfg, mlu, err := orc.CachedSolve(ps, tr.At(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mlu != base1[2] {
		t.Errorf("CachedSolve MLU %v != series %v", mlu, base1[2])
	}
	cfg.R[0] = -1
	cfg2, _, err := orc.CachedSolve(ps, tr.At(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.R[0] == -1 {
		t.Error("CachedSolve returned a shared configuration")
	}
}

// TestOracleWarmStartAgreement: warm-started chains must agree with
// cold solves within tolerance on a temporally-correlated trace.
func TestOracleWarmStartAgreement(t *testing.T) {
	ps, tr := setup(t)
	cold := NewOracle(ps, baselines.GradSolve(solver.Options{Iters: 400}), nil)
	warm := gradOracle(ps)
	warm.BlockSize = 8
	cb, err := cold.Series(tr, 0, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := warm.Series(tr, 0, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The exact optimum as the yardstick.
	for i := range cb {
		_, opt, err := baselines.LPSolve(ps, tr.At(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if opt <= 0 {
			continue
		}
		if wb[i] > opt*1.05+1e-9 {
			t.Errorf("warm[%d] = %v vs optimum %v (>5%%)", i, wb[i], opt)
		}
		if wb[i] > cb[i]*1.05+1e-9 {
			t.Errorf("warm[%d] = %v vs cold %v (>5%%)", i, wb[i], cb[i])
		}
	}
}

// TestOracleSeriesDuplicateSnapshotsWorkerIndependent is the regression
// test for a subtle determinism break: when the same demand content
// recurs in two different warm-start blocks, the chains race to fill one
// shared cache entry with DIFFERENT warm-seeded solves, making the
// series depend on which block ran first — i.e. on the worker count.
// Series must therefore consult only pre-call cache state while chains
// run (results are published afterwards, in ascending order).
func TestOracleSeriesDuplicateSnapshotsWorkerIndependent(t *testing.T) {
	ps, tr := setup(t)
	// Duplicate one snapshot's content across two blocks of size 4:
	// trace index 2 (block 0) and index 6 (block 1) share a slice.
	dup := tr.At(2)
	tr.Snapshots[6] = dup
	var ref []float64
	for _, workers := range []int{1, 2, 4} {
		orc := gradOracle(ps)
		orc.BlockSize = 4
		base, err := orc.Series(tr, 0, 12, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = base
			continue
		}
		for i := range ref {
			if base[i] != ref[i] {
				t.Fatalf("workers=%d: base[%d] %v != %v (duplicate-content chain race)",
					workers, i, base[i], ref[i])
			}
		}
	}
}

func TestOracleSeriesWorkerIndependent(t *testing.T) {
	ps, tr := setup(t)
	var ref []float64
	for _, workers := range []int{1, 3, 5} {
		orc := gradOracle(ps)
		orc.BlockSize = 4
		base, err := orc.Series(tr, 2, 22, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = base
			continue
		}
		for i := range ref {
			if base[i] != ref[i] {
				t.Fatalf("workers=%d: base[%d] %v != %v", workers, i, base[i], ref[i])
			}
		}
	}
}

func TestOracleErrorPropagates(t *testing.T) {
	ps, tr := setup(t)
	boom := fmt.Errorf("solver exploded")
	orc := NewOracle(ps, func(*te.PathSet, []float64, []float64) (*te.Config, float64, error) {
		return nil, 0, boom
	}, nil)
	if _, err := orc.Series(tr, 0, 4, 2); err == nil {
		t.Fatal("solver error swallowed")
	}
	// The failed entry is cached; subsequent lookups return the error too.
	if _, err := orc.MLU(tr.At(0)); err == nil {
		t.Fatal("cached error lost")
	}
}

func TestParallel(t *testing.T) {
	// Every index runs exactly once, for any worker count.
	for _, workers := range []int{1, 2, 8, 100} {
		var counts [57]atomic.Int64
		err := Parallel(len(counts), workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	// The smallest-indexed error wins, deterministically.
	err := Parallel(20, 8, func(i int) error {
		if i == 7 || i == 13 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 7" {
		t.Fatalf("got %v, want fail 7", err)
	}
	if err := Parallel(0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatal("empty Parallel errored")
	}
}

func TestMeanQuantile(t *testing.T) {
	mean, p90 := MeanQuantile([]float64{1, 2, 3, 4}, 0.5)
	if mean != 2.5 || p90 != 2.5 {
		t.Errorf("got (%v, %v), want (2.5, 2.5)", mean, p90)
	}
	if m, _ := MeanQuantile(nil, 0.5); !math.IsNaN(m) {
		t.Errorf("empty mean = %v, want NaN", m)
	}
}
