package eval

import (
	"fmt"
	"math"
	"sync"

	"figret/internal/baselines"
	"figret/internal/te"
	"figret/internal/traffic"
)

// Oracle is a memoized optimal-TE solver: the optimal-MLU solve for a
// demand matrix is computed once per process and shared by everything
// that needs it — the omniscient normalization base of every experiment,
// every scheme whose advice is an optimal solve of some matrix (PredTE's
// advice for snapshot t is exactly the omniscient solve of snapshot t-1;
// Des TE's advice is a capped solve of a window peak matrix), and
// repeated experiment runs over the same trace.
//
// Entries are content-addressed: two demand slices with equal entries
// share one solve, wherever they were allocated (trace views, recomputed
// peak matrices, repeated runs). Hash collisions are chained and resolved
// by exact comparison, so a hit is always the solve of the identical
// problem. Capped solves are cached too, keyed by (demand, caps) content;
// neither demands nor caps may be mutated after a solve.
//
// When Warm is set, Series solves temporally-adjacent snapshots as
// warm-started chains: each snapshot's solve is seeded with the previous
// snapshot's optimal split ratios and runs far fewer iterations. Chains
// are bounded to BlockSize snapshots and anchored to the requested
// window, so a Series result depends only on the window and the cache
// contents — never on how many workers computed it.
type Oracle struct {
	PS *te.PathSet
	// Solve is the cold solve (exact LP or full-budget gradient solve).
	Solve baselines.SolveFunc
	// Warm, if non-nil, is the reduced-budget warm-started solve used
	// inside Series chains. Nil disables warm starts (appropriate for the
	// exact LP, which has nothing to warm).
	Warm baselines.WarmSolveFunc
	// BlockSize bounds each warm-start chain (default 16). Block
	// boundaries are anchored at the window start, so results are
	// independent of the worker count.
	BlockSize int

	mu     sync.Mutex
	cache  map[solveKey][]*oracleEntry
	hits   uint64
	misses uint64
}

// NewOracle returns an oracle over ps backed by the given cold solve and
// optional warm-started solve.
func NewOracle(ps *te.PathSet, solve baselines.SolveFunc, warm baselines.WarmSolveFunc) *Oracle {
	return &Oracle{PS: ps, Solve: solve, Warm: warm}
}

// solveKey buckets cache entries by a content hash of the demand and caps
// vectors (caps nil for the uncapped omniscient solves). Buckets chain
// entries compared by exact content equality, so collisions cannot
// corrupt results and equal problems share one solve no matter where
// their slices were allocated.
type solveKey struct {
	hash   uint64
	n      int
	capped bool
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFloats(h uint64, xs []float64) uint64 {
	for _, v := range xs {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}

func makeKey(d, caps []float64) solveKey {
	h := fnvFloats(fnvOffset64, d)
	if caps != nil {
		h = fnvFloats(h, caps)
	}
	return solveKey{hash: h, n: len(d), capped: caps != nil}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracleEntry is a single-flight cache slot: the first goroutine to claim
// a key computes it and closes done; everyone else waits.
type oracleEntry struct {
	d    []float64 // the problem this entry answers (exact-match chain)
	caps []float64
	done chan struct{}
	r    []float64 // optimal split ratios (seed for warm starts)
	mlu  float64
	err  error
}

// Stats returns the cache hit/miss counters.
func (o *Oracle) Stats() (hits, misses uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits, o.misses
}

// Len returns the number of cached solves.
func (o *Oracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	//figret:allow(detrange) integer count over all chains; addition is order-independent
	for _, chain := range o.cache {
		n += len(chain)
	}
	return n
}

// claim returns the cache slot for (d, caps) and whether the caller owns
// the computation (single flight: exactly one claimer per slot computes).
func (o *Oracle) claim(d, caps []float64) (*oracleEntry, bool) {
	k := makeKey(d, caps)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cache == nil {
		o.cache = make(map[solveKey][]*oracleEntry)
	}
	for _, e := range o.cache[k] {
		if equalFloats(e.d, d) && equalFloats(e.caps, caps) {
			o.hits++
			return e, false
		}
	}
	o.misses++
	e := &oracleEntry{d: d, caps: caps, done: make(chan struct{})}
	o.cache[k] = append(o.cache[k], e)
	return e, true
}

// fill completes a claimed entry.
func (e *oracleEntry) fill(cfg *te.Config, mlu float64, err error) {
	if err == nil {
		e.r = append([]float64(nil), cfg.R...)
		e.mlu = mlu
	}
	e.err = err
	close(e.done)
}

// solve returns the memoized entry for (d, caps), computing it cold on a
// cache miss. Cold solves are pure functions of the problem, so the entry
// value is independent of which goroutine computes it.
func (o *Oracle) solve(d, caps []float64) *oracleEntry {
	e, owned := o.claim(d, caps)
	if !owned {
		<-e.done
		return e
	}
	cfg, mlu, err := o.Solve(o.PS, d, caps)
	e.fill(cfg, mlu, err)
	return e
}

// peek returns the ready cache entry for (d, caps) if one exists, nil
// otherwise, updating the hit/miss counters. Unlike claim it never
// inserts: Series uses it so concurrent chains see only pre-call cache
// state, keeping warm-started results worker-count independent.
func (o *Oracle) peek(d, caps []float64) *oracleEntry {
	k := makeKey(d, caps)
	o.mu.Lock()
	for _, e := range o.cache[k] {
		if equalFloats(e.d, d) && equalFloats(e.caps, caps) {
			o.hits++
			o.mu.Unlock()
			<-e.done
			return e
		}
	}
	o.misses++
	o.mu.Unlock()
	return nil
}

// publish inserts an externally-computed solve unless an equal problem is
// already cached (first writer wins; counters untouched — the lookup was
// already accounted by peek).
func (o *Oracle) publish(d []float64, r []float64, mlu float64, err error) {
	k := makeKey(d, nil)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cache == nil {
		o.cache = make(map[solveKey][]*oracleEntry)
	}
	for _, e := range o.cache[k] {
		if equalFloats(e.d, d) {
			return
		}
	}
	e := &oracleEntry{d: d, r: r, mlu: mlu, err: err, done: make(chan struct{})}
	close(e.done)
	o.cache[k] = append(o.cache[k], e)
}

// MLU returns the memoized optimal MLU for demand d (cold solve on miss).
func (o *Oracle) MLU(d []float64) (float64, error) {
	e := o.solve(d, nil)
	return e.mlu, e.err
}

// CachedSolve is a baselines.SolveFunc backed by the cache. Passing it as
// a scheme's Solve lets the scheme reuse oracle work: PredTE built on
// CachedSolve costs nothing on snapshots the oracle base has covered, and
// Des TE's capped peak-matrix solves are shared across repeated runs. The
// returned configuration is a fresh copy; callers may mutate it freely.
func (o *Oracle) CachedSolve(ps *te.PathSet, d, caps []float64) (*te.Config, float64, error) {
	if ps != o.PS || len(d) == 0 {
		return o.Solve(ps, d, caps)
	}
	e := o.solve(d, caps)
	if e.err != nil {
		return nil, 0, e.err
	}
	cfg := te.NewConfig(o.PS)
	copy(cfg.R, e.r)
	return cfg, e.mlu, nil
}

// Series returns the optimal MLU for snapshots [from, to) of tr, filling
// the cache. Uncached snapshots are solved in warm-started chains of up to
// BlockSize snapshots; chains run in parallel on up to workers goroutines.
// For a fixed window and cache state the result is bitwise identical for
// any worker count: block boundaries are anchored at from, snapshots
// within a block are solved strictly in trace order, and chains consult
// only cache state from before the call — a warm-started result computed
// by one chain is never visible to a concurrently-running chain (it is
// published afterwards, in ascending trace order), so even a demand
// matrix recurring at several positions cannot make one chain's seed
// depend on another chain's progress.
func (o *Oracle) Series(tr *traffic.Trace, from, to, workers int) ([]float64, error) {
	if from < 0 || to > tr.Len() || from >= to {
		return nil, fmt.Errorf("eval: oracle window [%d,%d) invalid for trace length %d", from, to, tr.Len())
	}
	block := o.BlockSize
	if block <= 0 {
		block = 16
	}
	out := make([]float64, to-from)
	// computed[i] holds the ratios of a solve performed by this call
	// (nil where the cache already answered).
	computed := make([][]float64, to-from)
	nBlocks := (to - from + block - 1) / block
	err := Parallel(nBlocks, workers, func(bi int) error {
		lo := from + bi*block
		hi := lo + block
		if hi > to {
			hi = to
		}
		var prev []float64 // previous snapshot's optimum within this chain
		for t := lo; t < hi; t++ {
			d := tr.At(t)
			if e := o.peek(d, nil); e != nil {
				if e.err != nil {
					return fmt.Errorf("eval: oracle at t=%d: %w", t, e.err)
				}
				out[t-from] = e.mlu
				prev = e.r
				continue
			}
			var cfg *te.Config
			var mlu float64
			var err error
			if prev != nil && o.Warm != nil {
				cfg, mlu, err = o.Warm(o.PS, d, prev)
			} else {
				cfg, mlu, err = o.Solve(o.PS, d, nil)
			}
			if err != nil {
				return fmt.Errorf("eval: oracle at t=%d: %w", t, err)
			}
			r := append([]float64(nil), cfg.R...)
			out[t-from] = mlu
			computed[t-from] = r
			prev = r
		}
		return nil
	})
	// Publish this call's solves in ascending trace order (deterministic
	// first-writer-wins for recurring demand contents) even on error, so
	// completed work is not lost.
	for i, r := range computed {
		if r != nil {
			o.publish(tr.At(from+i), r, out[i], nil)
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
