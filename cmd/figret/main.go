// Command figret is the library's CLI: generate synthetic traces, train a
// FIGRET (or DOTE) model, evaluate it against baselines, and inspect
// topologies.
//
// Usage:
//
//	figret topo     -topo geant
//	figret gen      -topo tor-db -T 300 -out trace.json
//	figret train    -topo pod-db -T 200 -gamma 1 -epochs 10 -out model.json
//	figret eval     -topo pod-db -T 200 -model model.json
//	figret simulate -topo pod-db -delay 2
//	figret convert  -in trace.csv -n 20 -out trace.fgt
//
// Traces read and write in three formats, picked by file extension: .json
// (dense snapshot arrays), .csv (sparse t,src,dst,demand rows), and .fgt —
// the memory-mapped columnar store of internal/tracestore, the format for
// traces bigger than RAM. gen writes whichever the -out extension names,
// and convert translates between any pair. -tracecache names a directory
// of .fgt files shared with scenarios/served: each (topology, T, seed)
// trace is generated once, then every later run memory-maps it:
//
//	figret train -topo cogentco -scale full -tracecache ~/.cache/figret-traces -out model.json
//
// Candidate-path precomputation fans out across all CPUs by default
// (-pathworkers pins the pool size; results are bitwise identical for any
// value), and -pathcache names an on-disk path cache shared with the
// experiments and served commands, so a topology's Yen precomputation is
// paid once per machine rather than once per process:
//
//	figret train -topo cogentco -scale full -pathcache ~/.cache/figret-paths -out model.json
//	figret eval  -topo cogentco -scale full -pathcache ~/.cache/figret-paths -model model.json
//
// Training itself is data-parallel: -trainworkers sizes the worker pool
// (0 = all CPUs) with a bitwise worker-count-independent loss trajectory,
// and -macrobatch accumulates that many micro-batches of -batch samples
// per optimizer step (gradient accumulation):
//
//	figret train -topo pod-db -batch 32 -trainworkers 4 -macrobatch 2 -out model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/netsim"
	"figret/internal/te"
	"figret/internal/tracestore"
	"figret/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		topo   = fs.String("topo", "pod-db", "topology name (geant uscarrier cogentco pfabric pod-db pod-web tor-db tor-web large-wan)")
		scale  = fs.String("scale", "fast", "fast|full topology sizing")
		T      = fs.Int("T", 200, "trace length")
		H      = fs.Int("H", 12, "history window")
		gamma  = fs.Float64("gamma", 1, "robustness loss weight (0 = DOTE)")
		epochs = fs.Int("epochs", 10, "training epochs")
		batch  = fs.Int("batch", 1, "training minibatch size (1 = the paper's per-sample protocol; larger batches train faster)")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "", "output file (gen/train/convert); gen and convert pick the trace format from the extension: .json, .csv or .fgt")
		model  = fs.String("model", "", "model file (eval)")
		delay  = fs.Int("delay", 1, "controller installation delay in intervals (simulate)")
		in     = fs.String("in", "", "input trace file (convert); format picked from the extension: .json, .csv or .fgt")
		nVerts = fs.Int("n", 0, "vertex count of a .csv input trace (convert; the sparse CSV format does not carry it)")

		pathCache   = fs.String("pathcache", "", "directory of the on-disk candidate-path cache (shared across figret/experiments/served runs; empty = recompute every run)")
		pathWorkers = fs.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")
		traceCache  = fs.String("tracecache", "", "directory of the on-disk columnar trace store shared across figret/scenarios/served runs; traces are generated once, then memory-mapped (empty = regenerate in RAM)")

		trainWorkers = fs.Int("trainworkers", 0, "training worker pool size (0 = all CPUs); the loss trajectory and trained weights are bitwise identical for any value")
		macroBatch   = fs.Int("macrobatch", 1, "micro-batches accumulated per optimizer step (gradient accumulation; effective batch = batch*macrobatch)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}
	paths := pathOptions{cache: *pathCache, workers: *pathWorkers, traceCache: *traceCache}
	train := trainOptions{workers: *trainWorkers, macro: *macroBatch}

	var err error
	switch cmd {
	case "topo":
		err = runTopo(*topo, sc, paths)
	case "gen":
		err = runGen(*topo, sc, *T, *seed, *out, paths)
	case "train":
		err = runTrain(*topo, sc, *T, *H, *gamma, *epochs, *batch, *seed, *out, paths, train)
	case "eval":
		err = runEval(*topo, sc, *T, *H, *seed, *model, paths)
	case "simulate":
		err = runSimulate(*topo, sc, *T, *H, *gamma, *epochs, *batch, *seed, *delay, paths, train)
	case "convert":
		err = runConvert(*in, *out, *nVerts)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figret:", err)
		os.Exit(1)
	}
}

// pathOptions carries the precomputation-cache flags: the candidate-path
// cache and the memory-mapped trace cache.
type pathOptions struct {
	cache      string
	workers    int
	traceCache string
}

// trainOptions carries the data-parallel training flags. Both knobs are
// perf/memory trades only: every value yields bitwise the same model
// (macro-batches change the optimizer schedule, but deterministically).
type trainOptions struct {
	workers int
	macro   int
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: figret <topo|gen|train|eval|simulate|convert> [flags]
  topo      print topology statistics
  gen       generate a synthetic trace (.json, .csv or .fgt by -out extension)
  train     train a FIGRET model and save it (JSON)
  eval      evaluate a trained model against DOTE/omniscient
  simulate  run the fluid control-loop simulation with controller delay
  convert   translate a trace between .json, .csv and .fgt (memory-mapped store)`)
}

func buildEnv(topo string, sc experiments.Scale, T int, seed int64, paths pathOptions) (*experiments.Env, error) {
	return experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: paths.cache, PathWorkers: paths.workers,
		TraceCache: paths.traceCache,
	})
}

func runTopo(topo string, sc experiments.Scale, paths pathOptions) error {
	env, err := buildEnv(topo, sc, 10, 1, paths)
	if err != nil {
		return err
	}
	g := env.G
	fmt.Printf("topology %s: %d nodes, %d directed edges, min capacity %g\n",
		topo, g.NumVertices(), g.NumEdges(), g.MinCapacity())
	fmt.Printf("SD pairs: %d, candidate paths: %d (K=%d)\n",
		env.PS.Pairs.Count(), env.PS.NumPaths(), env.Paths)
	degs := g.Degrees()
	min, max := degs[0], degs[0]
	for _, d := range degs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	fmt.Printf("out-degree: min %d, max %d\n", min, max)
	return nil
}

// traceJSON is the on-disk trace format.
type traceJSON struct {
	N         int         `json:"n"`
	Snapshots [][]float64 `json:"snapshots"`
}

func runGen(topo string, sc experiments.Scale, T int, seed int64, out string, paths pathOptions) error {
	if out == "" {
		return fmt.Errorf("gen requires -out")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	if err := writeTraceFile(out, env.Trace); err != nil {
		return err
	}
	fmt.Printf("wrote %d snapshots (%d pairs) to %s\n", env.Trace.Len(), env.Trace.Pairs.Count(), out)
	return nil
}

// readTraceFile loads a trace in the format named by path's extension.
// n is required only for .csv, whose sparse rows don't carry the vertex
// count. The returned closer releases a .fgt file's memory mapping and
// must be called after the trace's last use; for the other formats it is
// a no-op.
func readTraceFile(path string, n int) (*traffic.Trace, func() error, error) {
	noop := func() error { return nil }
	switch ext := filepath.Ext(path); ext {
	case ".json":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		tr := new(traffic.Trace)
		if err := json.Unmarshal(data, tr); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return tr, noop, nil
	case ".csv":
		if n == 0 {
			return nil, nil, fmt.Errorf("reading %s requires -n (CSV does not carry the vertex count)", path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		tr, err := traffic.ReadCSV(f, n)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return tr, noop, nil
	case ".fgt":
		tr, r, err := tracestore.Load(path)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return tr, r.Close, nil
	default:
		return nil, nil, fmt.Errorf("%s: unknown trace extension %q (want .json, .csv or .fgt)", path, ext)
	}
}

// writeTraceFile writes a trace in the format named by path's extension.
func writeTraceFile(path string, tr *traffic.Trace) error {
	switch ext := filepath.Ext(path); ext {
	case ".json":
		data, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data, 0o644)
	case ".csv":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	case ".fgt":
		return tracestore.WriteTrace(path, tr, tracestore.Options{})
	default:
		return fmt.Errorf("%s: unknown trace extension %q (want .json, .csv or .fgt)", path, ext)
	}
}

// runConvert translates a trace between the three on-disk formats.
// Demand values survive every direction bitwise: JSON floats round-trip
// through strconv, CSV rows use 'g' formatting with full precision, and
// the store serializes raw Float64bits.
func runConvert(in, out string, n int) error {
	if in == "" || out == "" {
		return fmt.Errorf("convert requires -in and -out")
	}
	tr, closer, err := readTraceFile(in, n)
	if err != nil {
		return err
	}
	defer closer()
	if err := writeTraceFile(out, tr); err != nil {
		return err
	}
	fmt.Printf("converted %d snapshots (%d pairs): %s -> %s\n", tr.Len(), tr.Pairs.Count(), in, out)
	return nil
}

func runTrain(topo string, sc experiments.Scale, T, H int, gamma float64, epochs, batch int, seed int64, out string, paths pathOptions, train trainOptions) error {
	if out == "" {
		return fmt.Errorf("train requires -out")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: train.workers, MacroBatch: train.macro,
	})
	stats, err := m.Train(env.Train)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d epochs; train MLU %0.4f -> %0.4f\n",
		len(stats.EpochMLU), stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1])
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("saved model (%d parameters) to %s\n", m.Net.NumParams(), out)
	return nil
}

func runEval(topo string, sc experiments.Scale, T, H int, seed int64, modelPath string, paths pathOptions) error {
	if modelPath == "" {
		return fmt.Errorf("eval requires -model")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	m, err := figret.LoadModel(env.PS, data)
	if err != nil {
		return err
	}
	h := m.Cfg.H
	scheme := &baselines.NNScheme{Label: "model", Model: m}
	from, to := h, env.Test.Len()
	if to-from > 40 {
		to = from + 40
	}
	// The engine evaluates snapshots in parallel and normalizes by its
	// memoized omniscient oracle; results are identical for any -workers.
	run, err := eval.Run([]baselines.Scheme{scheme}, env.Test,
		eval.Window{From: from, To: to}, env.EvalOptions())
	if err != nil {
		return err
	}
	ss := run.Scheme("model")
	fmt.Printf("normalized MLU over %d test snapshots: avg %.3f median %.3f p75 %.3f max %.3f\n",
		len(ss.Norm), ss.Stats.Mean, ss.Stats.Median, ss.Stats.P75, ss.Stats.Max)
	return nil
}

func runSimulate(topo string, sc experiments.Scale, T, H int, gamma float64, epochs, batch int, seed int64, delay int, paths pathOptions, train trainOptions) error {
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	// Stress the network so losses are visible: scale the trace to push the
	// mean uniform-config MLU toward 1.
	env.Trace.Scale(2)
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: train.workers, MacroBatch: train.macro,
	})
	if _, err := m.Train(env.Train); err != nil {
		return err
	}
	loop := &netsim.ControlLoop{
		Advise:  func(t int) (*te.Config, error) { return m.PredictAt(env.Test, t) },
		Initial: te.UniformConfig(env.PS),
		Delay:   delay,
	}
	from, to := H, env.Test.Len()
	if to-from > 40 {
		to = from + 40
	}
	res, err := loop.Run(env.Test.At, from, to)
	if err != nil {
		return err
	}
	fmt.Printf("control-loop simulation on %s (delay %d intervals, %d intervals simulated)\n",
		topo, delay, len(res.PerInterval))
	fmt.Printf("mean MLU %.3f, peak MLU %.3f, mean loss %.4f\n", res.MeanMLU, res.PeakMLU, res.MeanLoss)
	return nil
}
