// Command figret is the library's CLI: generate synthetic traces, train a
// FIGRET (or DOTE) model, evaluate it against baselines, and inspect
// topologies.
//
// Usage:
//
//	figret topo     -topo geant
//	figret gen      -topo tor-db -T 300 -out trace.json
//	figret train    -topo pod-db -T 200 -gamma 1 -epochs 10 -out model.json
//	figret eval     -topo pod-db -T 200 -model model.json
//	figret simulate -topo pod-db -delay 2
//
// Candidate-path precomputation fans out across all CPUs by default
// (-pathworkers pins the pool size; results are bitwise identical for any
// value), and -pathcache names an on-disk path cache shared with the
// experiments and served commands, so a topology's Yen precomputation is
// paid once per machine rather than once per process:
//
//	figret train -topo cogentco -scale full -pathcache ~/.cache/figret-paths -out model.json
//	figret eval  -topo cogentco -scale full -pathcache ~/.cache/figret-paths -model model.json
//
// Training itself is data-parallel: -trainworkers sizes the worker pool
// (0 = all CPUs) with a bitwise worker-count-independent loss trajectory,
// and -macrobatch accumulates that many micro-batches of -batch samples
// per optimizer step (gradient accumulation):
//
//	figret train -topo pod-db -batch 32 -trainworkers 4 -macrobatch 2 -out model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/netsim"
	"figret/internal/te"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		topo   = fs.String("topo", "pod-db", "topology name (geant uscarrier cogentco pfabric pod-db pod-web tor-db tor-web large-wan)")
		scale  = fs.String("scale", "fast", "fast|full topology sizing")
		T      = fs.Int("T", 200, "trace length")
		H      = fs.Int("H", 12, "history window")
		gamma  = fs.Float64("gamma", 1, "robustness loss weight (0 = DOTE)")
		epochs = fs.Int("epochs", 10, "training epochs")
		batch  = fs.Int("batch", 1, "training minibatch size (1 = the paper's per-sample protocol; larger batches train faster)")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "", "output file (gen/train)")
		model  = fs.String("model", "", "model file (eval)")
		delay  = fs.Int("delay", 1, "controller installation delay in intervals (simulate)")

		pathCache   = fs.String("pathcache", "", "directory of the on-disk candidate-path cache (shared across figret/experiments/served runs; empty = recompute every run)")
		pathWorkers = fs.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")

		trainWorkers = fs.Int("trainworkers", 0, "training worker pool size (0 = all CPUs); the loss trajectory and trained weights are bitwise identical for any value")
		macroBatch   = fs.Int("macrobatch", 1, "micro-batches accumulated per optimizer step (gradient accumulation; effective batch = batch*macrobatch)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}
	paths := pathOptions{cache: *pathCache, workers: *pathWorkers}
	train := trainOptions{workers: *trainWorkers, macro: *macroBatch}

	var err error
	switch cmd {
	case "topo":
		err = runTopo(*topo, sc, paths)
	case "gen":
		err = runGen(*topo, sc, *T, *seed, *out, paths)
	case "train":
		err = runTrain(*topo, sc, *T, *H, *gamma, *epochs, *batch, *seed, *out, paths, train)
	case "eval":
		err = runEval(*topo, sc, *T, *H, *seed, *model, paths)
	case "simulate":
		err = runSimulate(*topo, sc, *T, *H, *gamma, *epochs, *batch, *seed, *delay, paths, train)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figret:", err)
		os.Exit(1)
	}
}

// pathOptions carries the candidate-path precomputation flags.
type pathOptions struct {
	cache   string
	workers int
}

// trainOptions carries the data-parallel training flags. Both knobs are
// perf/memory trades only: every value yields bitwise the same model
// (macro-batches change the optimizer schedule, but deterministically).
type trainOptions struct {
	workers int
	macro   int
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: figret <topo|gen|train|eval|simulate> [flags]
  topo      print topology statistics
  gen       generate a synthetic trace (JSON)
  train     train a FIGRET model and save it (JSON)
  eval      evaluate a trained model against DOTE/omniscient
  simulate  run the fluid control-loop simulation with controller delay`)
}

func buildEnv(topo string, sc experiments.Scale, T int, seed int64, paths pathOptions) (*experiments.Env, error) {
	return experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: paths.cache, PathWorkers: paths.workers,
	})
}

func runTopo(topo string, sc experiments.Scale, paths pathOptions) error {
	env, err := buildEnv(topo, sc, 10, 1, paths)
	if err != nil {
		return err
	}
	g := env.G
	fmt.Printf("topology %s: %d nodes, %d directed edges, min capacity %g\n",
		topo, g.NumVertices(), g.NumEdges(), g.MinCapacity())
	fmt.Printf("SD pairs: %d, candidate paths: %d (K=%d)\n",
		env.PS.Pairs.Count(), env.PS.NumPaths(), env.Paths)
	degs := g.Degrees()
	min, max := degs[0], degs[0]
	for _, d := range degs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	fmt.Printf("out-degree: min %d, max %d\n", min, max)
	return nil
}

// traceJSON is the on-disk trace format.
type traceJSON struct {
	N         int         `json:"n"`
	Snapshots [][]float64 `json:"snapshots"`
}

func runGen(topo string, sc experiments.Scale, T int, seed int64, out string, paths pathOptions) error {
	if out == "" {
		return fmt.Errorf("gen requires -out")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	data, err := json.Marshal(traceJSON{N: env.G.NumVertices(), Snapshots: env.Trace.Snapshots})
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d snapshots (%d pairs) to %s\n", env.Trace.Len(), env.Trace.Pairs.Count(), out)
	return nil
}

func runTrain(topo string, sc experiments.Scale, T, H int, gamma float64, epochs, batch int, seed int64, out string, paths pathOptions, train trainOptions) error {
	if out == "" {
		return fmt.Errorf("train requires -out")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: train.workers, MacroBatch: train.macro,
	})
	stats, err := m.Train(env.Train)
	if err != nil {
		return err
	}
	fmt.Printf("trained %d epochs; train MLU %0.4f -> %0.4f\n",
		len(stats.EpochMLU), stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1])
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("saved model (%d parameters) to %s\n", m.Net.NumParams(), out)
	return nil
}

func runEval(topo string, sc experiments.Scale, T, H int, seed int64, modelPath string, paths pathOptions) error {
	if modelPath == "" {
		return fmt.Errorf("eval requires -model")
	}
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	m, err := figret.LoadModel(env.PS, data)
	if err != nil {
		return err
	}
	h := m.Cfg.H
	scheme := &baselines.NNScheme{Label: "model", Model: m}
	from, to := h, env.Test.Len()
	if to-from > 40 {
		to = from + 40
	}
	// The engine evaluates snapshots in parallel and normalizes by its
	// memoized omniscient oracle; results are identical for any -workers.
	run, err := eval.Run([]baselines.Scheme{scheme}, env.Test,
		eval.Window{From: from, To: to}, env.EvalOptions())
	if err != nil {
		return err
	}
	ss := run.Scheme("model")
	fmt.Printf("normalized MLU over %d test snapshots: avg %.3f median %.3f p75 %.3f max %.3f\n",
		len(ss.Norm), ss.Stats.Mean, ss.Stats.Median, ss.Stats.P75, ss.Stats.Max)
	return nil
}

func runSimulate(topo string, sc experiments.Scale, T, H int, gamma float64, epochs, batch int, seed int64, delay int, paths pathOptions, train trainOptions) error {
	env, err := buildEnv(topo, sc, T, seed, paths)
	if err != nil {
		return err
	}
	// Stress the network so losses are visible: scale the trace to push the
	// mean uniform-config MLU toward 1.
	env.Trace.Scale(2)
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: train.workers, MacroBatch: train.macro,
	})
	if _, err := m.Train(env.Train); err != nil {
		return err
	}
	loop := &netsim.ControlLoop{
		Advise:  func(t int) (*te.Config, error) { return m.PredictAt(env.Test, t) },
		Initial: te.UniformConfig(env.PS),
		Delay:   delay,
	}
	from, to := H, env.Test.Len()
	if to-from > 40 {
		to = from + 40
	}
	res, err := loop.Run(env.Test.At, from, to)
	if err != nil {
		return err
	}
	fmt.Printf("control-loop simulation on %s (delay %d intervals, %d intervals simulated)\n",
		topo, delay, len(res.PerInterval))
	fmt.Printf("mean MLU %.3f, peak MLU %.3f, mean loss %.4f\n", res.MeanMLU, res.PeakMLU, res.MeanLoss)
	return nil
}
