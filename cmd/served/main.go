// Command served is the online TE controller daemon: it serves routing
// decisions for one or more topologies over the HTTP/JSON API in
// internal/serve, with hot-swappable model checkpoints, streaming demand
// ingest, failure rerouting, churn limiting and drift-triggered
// background retraining.
//
// For each named topology the daemon builds the evaluation environment
// (topology, candidate paths, a synthetic bootstrap trace), trains a
// bootstrap FIGRET checkpoint on the trace's training split, and starts
// a per-topology controller. Checkpoints trained elsewhere are swapped
// in at runtime:
//
//	served -topos pod-db,geant -addr :8080
//	curl -X POST :8080/v1/topologies/pod-db/snapshots -d '{"demand": [...]}'
//	curl :8080/v1/topologies/pod-db/routing
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints --data-binary @model.json
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints/rollback
//	curl :8080/v1/metrics
//
// With -bootstrap=false the daemon starts without models: routing serves
// the uniform fallback until a checkpoint is uploaded.
//
// Next to the API listener the daemon runs an ops listener (-opsaddr)
// with the Prometheus scrape and the probes:
//
//	curl :9090/metrics        Prometheus text exposition (figret_* series)
//	curl :9090/healthz        liveness (200 from boot until shutdown begins)
//	curl :9090/readyz         readiness (200 once every topology has served
//	                          a real decision; 503 with the reason before)
//	go tool pprof :9090/debug/pprof/profile
//
// The ops listener is up before bootstrap training starts, so liveness
// and scrapes work while readiness still reports the warming topologies.
// Logs are structured (log/slog); -loglevel/-logformat or the
// FIGRET_LOG_LEVEL/FIGRET_LOG_FORMAT environment variables tune them,
// and -tracelog emits a debug record per decision-pipeline stage.
//
// The daemon exits only through graceful shutdown: SIGINT/SIGTERM stops
// the listeners, drains every controller (pending sync ingests are
// answered, not dropped) within -draintimeout, and flushes upgraded wire
// streams by closing them.
//
// With -drive the binary becomes a load generator instead of a daemon:
// it replays demand snapshots against an already-running served
// instance — over the pipelined binary wire protocol by default
// (sustained decisions/sec, RTT quantiles, delta mix), or as a
// synchronous JSON closed-loop replay with -drivetransport json:
//
//	served -topos geant -drive http://127.0.0.1:8080 -driven 20000
//	served -topos geant -drive http://127.0.0.1:8080 -drivetransport json
//
// Startup cost is dominated by candidate-path precomputation (Yen's
// algorithm over all SD pairs of every served topology). It fans out
// across all CPUs by default (-pathworkers pins the pool), and -pathcache
// names an on-disk path cache shared with the figret and experiments
// CLIs: with a warm cache the daemon skips the solve entirely and comes
// up in seconds even for large WANs:
//
//	served -topos cogentco,uscarrier -scale full -pathcache /var/cache/figret-paths
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/obs"
	"figret/internal/serve"
	"figret/internal/te"
	"figret/internal/tracestore"
)

func main() {
	var (
		topos     = flag.String("topos", "pod-db", "comma-separated topologies to serve (geant uscarrier cogentco pfabric pod-db pod-web tor-db tor-web)")
		addr      = flag.String("addr", ":8080", "HTTP listen address of the serving API")
		opsAddr   = flag.String("opsaddr", ":9090", "ops listen address for /metrics, /healthz, /readyz and /debug/pprof (empty disables)")
		scale     = flag.String("scale", "fast", "fast|full topology sizing")
		bootstrap = flag.Bool("bootstrap", true, "train a bootstrap checkpoint per topology at startup")
		T         = flag.Int("T", 200, "bootstrap trace length")
		H         = flag.Int("H", 12, "history window of bootstrap models")
		gamma     = flag.Float64("gamma", 1, "robustness loss weight of bootstrap models (0 = DOTE)")
		epochs    = flag.Int("epochs", 6, "bootstrap training epochs")
		batch     = flag.Int("batch", 16, "bootstrap training minibatch size")
		seed      = flag.Int64("seed", 1, "random seed")
		history   = flag.Int("history", 256, "sliding demand-window capacity per topology")
		churn     = flag.Float64("churn", 0, "per-interval L1 churn limit (0 = unlimited)")
		drift     = flag.Bool("drift", true, "enable drift-triggered background retraining")

		logLevel  = flag.String("loglevel", envOr("FIGRET_LOG_LEVEL", "info"), "log level: debug|info|warn|error (env FIGRET_LOG_LEVEL)")
		logFormat = flag.String("logformat", envOr("FIGRET_LOG_FORMAT", "text"), "log format: text|json (env FIGRET_LOG_FORMAT)")
		traceLog  = flag.Bool("tracelog", false, "emit a debug log record per decision-pipeline stage (expensive at decision rate; requires -loglevel debug)")
		drainT    = flag.Duration("draintimeout", 10*time.Second, "graceful-shutdown budget for draining controllers")

		pathCache   = flag.String("pathcache", "", "directory of the on-disk candidate-path cache; a warm cache brings multi-topology daemons up in seconds instead of re-running Yen per process")
		pathWorkers = flag.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")
		traceCache  = flag.String("tracecache", "", "directory of the on-disk columnar trace store shared with figret/scenarios; bootstrap traces are generated once, then memory-mapped")
		spool       = flag.String("spool", "", "directory where each controller spools every ingested snapshot to an on-disk trace store (<dir>/<topology>.fgt); the in-RAM window stays bounded by -history, and a restarted daemon recovers the spool and resumes where it stopped")

		trainWorkers = flag.Int("trainworkers", 0, "worker pool size for bootstrap and drift retraining (0 = all CPUs); trained weights are bitwise identical for any value")

		drive          = flag.String("drive", "", "load-generator mode: instead of serving, drive the daemon at this base URL (e.g. http://127.0.0.1:8080); the first -topos entry names the target topology")
		driveN         = flag.Int("driven", 0, "load-generator request count (0 = one pass over the topology's trace)")
		driveAsync     = flag.Bool("driveasync", false, "load-generate asynchronous ingests (acks) instead of per-request decisions (wire transport only)")
		driveTransport = flag.String("drivetransport", "wire", "drive-mode transport: wire (pipelined binary stream) or json (synchronous closed-loop HTTP replay)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}

	if *drive != "" {
		topo := strings.TrimSpace(strings.Split(*topos, ",")[0])
		if err := runDrive(logger, *drive, topo, *driveTransport, sc, *T, *seed, *driveN, *driveAsync, *pathCache, *pathWorkers); err != nil {
			logger.Error("drive failed", "topology", topo, "err", err)
			os.Exit(1)
		}
		return
	}

	expected := splitTopos(*topos)
	if len(expected) == 0 {
		logger.Error("no topologies to serve", "topos", *topos)
		os.Exit(2)
	}

	// Observability comes up first: the ops listener answers liveness and
	// scrapes while bootstrap training still runs, and readiness reports
	// which topology it is waiting for.
	metrics := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(metrics)
	tel := serve.NewTelemetry(metrics)
	if *traceLog {
		tel.LogSpans(logger)
	}

	reg := serve.NewRegistry()
	srv := serve.NewServer(reg)
	srv.UseTelemetry(tel)

	var draining atomic.Bool
	ops := &obs.Ops{
		Metrics: metrics,
		Logger:  logger,
		Healthz: func() error {
			if draining.Load() {
				return errors.New("shutting down")
			}
			return nil
		},
		Readyz: func() error {
			if draining.Load() {
				return errors.New("shutting down")
			}
			return srv.Ready(expected...)
		},
	}
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = startListener(logger, "ops", *opsAddr, ops.Handler())
	}

	if *pathCache != "" {
		tel.RegisterCacheStats("paths", "", te.PathCacheStats)
	}
	if *traceCache != "" {
		tel.RegisterCacheStats("traces", "", experiments.TraceCacheStats)
	}
	if *traceCache != "" || *spool != "" {
		registerTracestoreMetrics(metrics)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	for _, topo := range expected {
		if err := addTopology(logger, tel, srv, reg, topo, sc, *bootstrap, *T, *H, *gamma, *epochs, *batch, *seed, *history, *churn, *drift, *pathCache, *traceCache, *spool, *pathWorkers, *trainWorkers); err != nil {
			logger.Error("topology bootstrap failed", "topology", topo, "err", err)
			os.Exit(1)
		}
		if ctx.Err() != nil {
			break // signalled mid-bootstrap: skip straight to the drain
		}
	}

	apiSrv := startListener(logger, "api", *addr, srv.Handler())
	logger.Info("serving", "addr", *addr, "ops", *opsAddr, "topologies", expected)

	// The only exit path: wait for the signal, then drain gracefully —
	// probes flip first (load balancers stop routing), listeners stop
	// accepting, wire streams flush and close, controllers answer their
	// queued sync ingests.
	<-ctx.Done()
	stop()
	draining.Store(true)
	logger.Info("shutdown requested, draining", "timeout", *drainT)

	shCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := apiSrv.Shutdown(shCtx); err != nil {
		logger.Warn("api listener shutdown", "err", err)
	}
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("controller drain incomplete", "err", err)
	}
	if opsSrv != nil {
		// Last: the metrics page stays scrapeable through the drain.
		if err := opsSrv.Shutdown(shCtx); err != nil {
			logger.Warn("ops listener shutdown", "err", err)
		}
	}
	logger.Info("shutdown complete")
}

// registerTracestoreMetrics exports the process-wide trace-store
// counters (shared by the trace cache and the ingest spools) as
// scrape-time Prometheus counters.
func registerTracestoreMetrics(reg *obs.Registry) {
	reg.CounterFunc("figret_tracestore_blocks_written_total",
		"Trace-store block writes, including tail-block rewrites.",
		func() float64 { return float64(tracestore.Stats().BlocksWritten) })
	reg.CounterFunc("figret_tracestore_bytes_written_total",
		"Bytes handed to the OS by trace-store block writes.",
		func() float64 { return float64(tracestore.Stats().BytesWritten) })
	reg.CounterFunc("figret_tracestore_blocks_verified_total",
		"Trace-store blocks whose payload checksum was validated.",
		func() float64 { return float64(tracestore.Stats().BlocksVerified) })
	reg.CounterFunc("figret_tracestore_bytes_mapped_total",
		"Bytes memory-mapped (or heap-loaded) by trace-store readers.",
		func() float64 { return float64(tracestore.Stats().BytesMapped) })
	reg.CounterFunc("figret_tracestore_opens_total",
		"Successfully-opened trace-store readers.",
		func() float64 { return float64(tracestore.Stats().Opens) })
}

// envOr returns the environment value when set, else def.
func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func splitTopos(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// newLogger builds the process logger from level/format names.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad log level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// startListener binds addr synchronously (so a taken port fails fast,
// before bootstrap) and serves h in the background.
func startListener(logger *slog.Logger, name, addr string, h http.Handler) *http.Server {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "listener", name, "addr", addr, "err", err)
		os.Exit(1)
	}
	s := &http.Server{Addr: addr, Handler: h}
	go func() {
		if err := s.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listener failed", "listener", name, "addr", addr, "err", err)
			os.Exit(1)
		}
	}()
	logger.Info("listening", "listener", name, "addr", ln.Addr().String())
	return s
}

// runDrive is the load-generator mode. The wire transport rebuilds the
// topology's environment (path set + synthetic trace, no training),
// dials the running daemon's binary stream and pipelines demand
// snapshots at the adaptive window's sustainable rate; the json
// transport runs the synchronous closed-loop Replay over plain HTTP.
// Both log how many decisions the daemon actually served, which the e2e
// smoke gate asserts on.
func runDrive(logger *slog.Logger, baseURL, topo, transport string, sc experiments.Scale, T int, seed int64, n int, async bool,
	pathCache string, pathWorkers int) error {
	env, err := experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: pathCache, PathWorkers: pathWorkers,
	})
	if err != nil {
		return err
	}
	switch transport {
	case "json":
		res, err := serve.Replay(serve.NewClient(baseURL), topo, env.PS, env.Test, serve.ReplayOptions{})
		if err != nil {
			return err
		}
		logger.Info("drive replay done", "transport", "json", "topology", topo,
			"decisions", len(res.Decisions), "mean_mlu", res.MeanMLU, "versions", res.Versions)
		return nil
	case "wire":
		res, err := serve.LoadGen(baseURL, topo, env.PS, env.Test, serve.LoadOptions{Requests: n, Async: async})
		if err != nil {
			return err
		}
		s := &res.Stream
		logger.Info("drive done", "transport", "wire", "topology", topo,
			"requests", s.Requests, "elapsed", s.Elapsed.Round(time.Millisecond),
			"decisions_per_sec", int(res.DecisionsPerSec), "requests_per_sec", int(res.RequestsPerSec))
		logger.Info("drive rtt", "mean_us", int(s.MeanRTTMicros), "p50_us", int(s.P50RTTMicros),
			"p99_us", int(s.P99RTTMicros), "window_min", s.MinWindow, "window_max", s.MaxWindow,
			"window_final", s.FinalWindow, "backoffs", s.CongestionEvents)
		logger.Info("drive transfer", "deltas", res.Bin.Deltas, "fulls", res.Bin.Fulls,
			"resyncs", res.Bin.Resyncs, "redials", res.Bin.Redials,
			"bytes_sent", s.BytesSent, "bytes_received", s.BytesReceived)
		return nil
	default:
		return fmt.Errorf("unknown drive transport %q (want wire or json)", transport)
	}
}

func addTopology(logger *slog.Logger, tel *serve.Telemetry, srv *serve.Server, reg *serve.Registry, topo string, sc experiments.Scale,
	bootstrap bool, T, H int, gamma float64, epochs, batch int, seed int64,
	history int, churn float64, drift bool, pathCache, traceCache, spool string, pathWorkers, trainWorkers int) error {
	env, err := experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: pathCache, PathWorkers: pathWorkers,
		TraceCache: traceCache,
	})
	if err != nil {
		return err
	}
	if err := reg.AddTopology(topo, env.PS); err != nil {
		return err
	}
	opt := serve.ControllerOptions{HistoryCap: history, MaxChurn: churn, Spool: spool}
	if drift {
		// Shadow evaluations normalize against the environment's memoized
		// omniscient oracle; solves run in the background and are shared
		// across retrains.
		oracle := eval.NewOracle(env.PS, baselines.AutoSolve(env.PS), nil)
		tel.RegisterCacheStats("oracle", topo, oracle.Stats)
		opt.Drift = &serve.DriftOptions{
			Oracle:       oracle,
			TrainWorkers: trainWorkers,
		}
	}
	if _, err := srv.Add(topo, opt); err != nil {
		return err
	}
	if !bootstrap {
		logger.Info("topology ready", "topology", topo, "checkpoint", "none (uniform fallback until upload)")
		return nil
	}
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: trainWorkers,
	})
	stats, err := m.Train(env.Train)
	if err != nil {
		return err
	}
	ck, err := reg.Install(topo, m, "bootstrap")
	if err != nil {
		return err
	}
	logger.Info("topology ready", "topology", topo, "version", ck.Version,
		"params", m.Net.NumParams(),
		"train_mlu_first", stats.EpochMLU[0], "train_mlu_last", stats.EpochMLU[len(stats.EpochMLU)-1])
	return nil
}
